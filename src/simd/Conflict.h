//===- simd/Conflict.h - vpconflictd and conflict-free subsets --*- C++ -*-===//
//
// Part of the cfv project: reproduction of Jiang & Agrawal, CGO 2018.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The conflict-detection primitive at the heart of the paper (§2.1):
/// vpconflictd "tests each element in the index vector for equality with
/// all preceding elements"; lane i's result has bit j set iff j < i and
/// idx[j] == idx[i].  conflictFreeSubset() is the paper's
/// v_get_conflict_free_subset: the active lanes with no preceding *active*
/// duplicate, i.e. the first occurrence of every distinct index.  These
/// lanes can absorb partial reduction results and then be scattered to
/// memory without write conflicts.
///
//===----------------------------------------------------------------------===//

#ifndef CFV_SIMD_CONFLICT_H
#define CFV_SIMD_CONFLICT_H

#include "simd/Mask.h"
#include "simd/Vec.h"
#include "simd/Vec64.h"

namespace cfv {
namespace simd {

/// Emulation of vpconflictd: lane i's value has bit j set iff j < i and
/// Idx[j] == Idx[i].
inline VecI32<backend::Scalar> conflictBits(VecI32<backend::Scalar> Idx) {
  VecI32<backend::Scalar> R;
  for (int I = 0; I < kLanes; ++I) {
    int32_t Bits = 0;
    for (int J = 0; J < I; ++J)
      if (Idx.Lane[J] == Idx.Lane[I])
        Bits |= 1 << J;
    R.Lane[I] = Bits;
  }
  return R;
}

/// Emulation of the 64-bit vpconflictq, same bit semantics over 8 lanes.
inline VecI64<backend::Scalar> conflictBits(VecI64<backend::Scalar> Idx) {
  VecI64<backend::Scalar> R;
  for (int I = 0; I < kLanes64; ++I) {
    int64_t Bits = 0;
    for (int J = 0; J < I; ++J)
      if (Idx.Lane[J] == Idx.Lane[I])
        Bits |= int64_t(1) << J;
    R.Lane[I] = Bits;
  }
  return R;
}

#if CFV_HAVE_AVX512
inline VecI32<backend::Avx512> conflictBits(VecI32<backend::Avx512> Idx) {
  return VecI32<backend::Avx512>(_mm512_conflict_epi32(Idx.Raw));
}

inline VecI64<backend::Avx512> conflictBits(VecI64<backend::Avx512> Idx) {
  return VecI64<backend::Avx512>(_mm512_conflict_epi64(Idx.Raw));
}
#endif

/// The paper's v_get_conflict_free_subset(active, vindex): returns the
/// subset of \p Active lanes whose index does not appear in any preceding
/// active lane.  Implemented exactly as described in §3.2 -- vpconflictd
/// followed by a compare with the zero vector -- with the conflict bits of
/// inactive lanes masked off first so that retired lanes cannot shadow
/// live ones.
template <typename B>
inline Mask16 conflictFreeSubset(Mask16 Active, VecI32<B> Idx) {
  VecI32<B> Conf = conflictBits(Idx);
  // Drop conflict bits that refer to inactive lanes.
  Conf = Conf & VecI32<B>::broadcast(static_cast<int32_t>(Active));
  return Conf.maskEq(Active, VecI32<B>::zero());
}

/// 64-bit variant (vpconflictq path); only the low 8 bits of the masks
/// are significant.
template <typename B>
inline Mask16 conflictFreeSubset(Mask16 Active, VecI64<B> Idx) {
  VecI64<B> Conf = conflictBits(Idx);
  Conf = Conf & VecI64<B>::broadcast(static_cast<int64_t>(Active));
  return Conf.maskEq(Active, VecI64<B>::zero());
}

} // namespace simd
} // namespace cfv

#endif // CFV_SIMD_CONFLICT_H
