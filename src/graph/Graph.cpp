//===- graph/Graph.cpp - Edge-list and CSR graph structures --------------===//
//
// Part of the cfv project: reproduction of Jiang & Agrawal, CGO 2018.
//
//===----------------------------------------------------------------------===//

#include "graph/Graph.h"

#include <cassert>

using namespace cfv;
using namespace cfv::graph;

Csr graph::buildCsr(const EdgeList &E) {
  Csr C;
  C.NumNodes = E.NumNodes;
  C.RowBegin.assign(E.NumNodes + 1, 0);
  const int64_t M = E.numEdges();
  for (int64_t I = 0; I < M; ++I) {
    assert(E.Src[I] >= 0 && E.Src[I] < E.NumNodes && "source out of range");
    ++C.RowBegin[E.Src[I] + 1];
  }
  for (int32_t V = 0; V < E.NumNodes; ++V)
    C.RowBegin[V + 1] += C.RowBegin[V];

  C.Col.resize(M);
  if (E.isWeighted())
    C.Weight.resize(M);
  std::vector<int64_t> Cursor(C.RowBegin.begin(), C.RowBegin.end() - 1);
  for (int64_t I = 0; I < M; ++I) {
    const int64_t P = Cursor[E.Src[I]]++;
    C.Col[P] = E.Dst[I];
    if (E.isWeighted())
      C.Weight[P] = E.Weight[I];
  }
  return C;
}

AlignedVector<int32_t> graph::outDegrees(const EdgeList &E) {
  return outDegrees(E.Src.data(), E.numEdges(), E.NumNodes);
}

AlignedVector<int32_t> graph::outDegrees(const int32_t *Src, int64_t NumEdges,
                                         int32_t NumNodes) {
  AlignedVector<int32_t> Deg(NumNodes, 0);
  for (int64_t I = 0; I < NumEdges; ++I)
    ++Deg[Src[I]];
  return Deg;
}

EdgeList graph::sortByDestination(const EdgeList &E) {
  // Stable counting sort on the destination vertex.
  EdgeList R;
  R.NumNodes = E.NumNodes;
  const int64_t M = E.numEdges();
  R.Src.resize(M);
  R.Dst.resize(M);
  if (E.isWeighted())
    R.Weight.resize(M);

  std::vector<int64_t> Count(E.NumNodes + 1, 0);
  for (int64_t I = 0; I < M; ++I) {
    assert(E.Dst[I] >= 0 && E.Dst[I] < E.NumNodes && "dest out of range");
    ++Count[E.Dst[I] + 1];
  }
  for (int32_t V = 0; V < E.NumNodes; ++V)
    Count[V + 1] += Count[V];
  for (int64_t I = 0; I < M; ++I) {
    const int64_t P = Count[E.Dst[I]]++;
    R.Src[P] = E.Src[I];
    R.Dst[P] = E.Dst[I];
    if (E.isWeighted())
      R.Weight[P] = E.Weight[I];
  }
  return R;
}
