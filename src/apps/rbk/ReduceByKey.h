//===- apps/rbk/ReduceByKey.h - reduce_by_key comparator --------*- C++ -*-===//
//
// Part of the cfv project: reproduction of Jiang & Agrawal, CGO 2018.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The §4.5 / Table 2 comparison against library reduce_by_key.  Thrust's
/// CPU backend on a single core is a sequential segmented reduction over
/// consecutive equal keys; reduceByKeySerial implements that contract
/// from scratch (Thrust is not available offline; see DESIGN.md §2).
/// reduceByKeyInvec is the in-vector-reduction counterpart over sorted
/// keys, provided both as the Table 2 contender and as a reusable library
/// routine the paper's §4.5 says existing libraries lack.
///
/// runRbkComparison reproduces the Table 2 experiment: 1000 iterations of
/// "reductions on the columns of the sparse matrix", i.e. summing a value
/// per edge into its destination vertex, done once through the
/// reduce_by_key contract (requiring destination-sorted edges and a
/// compact output that is then scattered) and once with in-vector
/// reduction directly into the destination array.
///
//===----------------------------------------------------------------------===//

#ifndef CFV_APPS_RBK_REDUCEBYKEY_H
#define CFV_APPS_RBK_REDUCEBYKEY_H

#include "core/RunOptions.h"
#include "graph/Graph.h"
#include "util/AlignedAlloc.h"
#include "util/Stats.h"

#include <cstdint>

namespace cfv {
namespace apps {

/// Segmented reduction with Thrust semantics: every run of consecutive
/// equal keys produces one (key, sum) output pair.  \p OutKeys/\p OutVals
/// must have room for \p N entries.  Returns the number of output pairs.
int64_t reduceByKeySerial(const int32_t *Keys, const float *Vals, int64_t N,
                          int32_t *OutKeys, float *OutVals);

/// Same contract, vectorized with in-vector reduction: each 16-lane block
/// collapses its duplicate keys in-register; runs spanning block
/// boundaries are merged on output.
int64_t reduceByKeyInvec(const int32_t *Keys, const float *Vals, int64_t N,
                         int32_t *OutKeys, float *OutVals);

/// Same contract implemented the way a generic library backend composes
/// it -- Thrust's host path decomposes reduce_by_key into a head-flags
/// pass, a segment scan and an output gather, each streaming over
/// temporary arrays.  This is the §4.5 comparator: the decomposition is
/// what makes library reduce_by_key slow relative to the fused
/// in-register reduction.  \p SegmentScratch must hold \p N int32_t.
int64_t reduceByKeyLibraryStyle(const int32_t *Keys, const float *Vals,
                                int64_t N, int32_t *SegmentScratch,
                                int32_t *OutKeys, float *OutVals);

struct RbkResult {
  double InvecSeconds = 0.0;
  /// The §4.5 comparator: library-style multi-pass reduce_by_key.
  double ThrustLikeSeconds = 0.0;
  /// A best-case fused scalar loop (tighter than any generic library),
  /// reported for context.
  double FusedSerialSeconds = 0.0;
  /// Checksums of the destination array after the final iteration, for
  /// cross-validation of the paths.
  double InvecChecksum = 0.0;
  double ThrustLikeChecksum = 0.0;
  double FusedSerialChecksum = 0.0;
  /// Mean D1 and its distribution over the invec contender's passes
  /// (histogram empty when observability is compiled out).
  double MeanD1 = 0.0;
  LaneHistogram D1Hist;
};

/// Table 2: \p Iterations rounds of reducing one value per edge into its
/// destination vertex, with both implementations.  \p O carries the
/// parallel-engine thread count (applied to the invec contender; the
/// library-style and fused-serial baselines stay single-core).
RbkResult runRbkComparison(const graph::EdgeList &G, int Iterations,
                           const core::RunOptions &O);

/// Deprecated single-core convenience overload; prefer the RunOptions
/// overload or cfv::run (core/Api.h).
RbkResult runRbkComparison(const graph::EdgeList &G, int Iterations = 1000);

} // namespace apps
} // namespace cfv

#endif // CFV_APPS_RBK_REDUCEBYKEY_H
