//===-- verify/Oracle.h - Metamorphic differential oracle -------*- C++ -*-===//
//
// The oracle hierarchy (DESIGN.md §11):
//
//   classifier    pattern::classifyRange against the naive std::set/
//                 std::map reference every workload is tagged with at
//                 generation time (always on -- one scan);
//   kernel tier   every compiled backend x {invec-alg1, invec-alg2,
//                 masking, adaptive, pattern} x {1, N} privatized chunks
//                 against a scalar double-precision reference, for float
//                 add (ULP budget scaled by reduction depth), float
//                 min/max (exact), and int32 add/min/max (exact);
//   system tier   cfv::run over the same stream lifted to a SNAP graph:
//                 every version x backend x thread count of pagerank,
//                 sssp, and spmv against the serial scalar run, plus a
//                 pattern on-vs-off equivalence leg for pagerank/spmv;
//   service tier  the stream written as a SNAP file and served twice by
//                 service::Service -- cold then cached -- asserting both
//                 runs agree with the direct facade call.
//
// Failures shrink to minimal reproducers (greedy delta-debugging on the
// failing combination only) and dump as replayable corpus files; every
// failure also carries a one-line JSON record so CI can archive it.
//
//===----------------------------------------------------------------------===//

#ifndef CFV_VERIFY_ORACLE_H
#define CFV_VERIFY_ORACLE_H

#include "verify/Gen.h"
#include "verify/Kernels.h"

#include <functional>
#include <optional>
#include <string>
#include <vector>

namespace cfv {
namespace verify {

struct OracleOptions {
  bool KernelTier = true;
  bool SystemTier = false;
  bool ServiceTier = false;
  /// Exercise the AVX-512 kernel set when the build compiled it and the
  /// host can run it; the scalar set always runs.
  bool UseAvx512 = true;
  /// Exercise the AVX2 (synthesized conflict detection, 8-lane) kernel
  /// set when the build compiled it and the host can run it.
  bool UseAvx2 = true;
  /// Deliberate defect compiled into the pipelines (oracle self-test).
  InjectedBug Bug = InjectedBug::None;
  /// Privatized chunk counts per pipeline (1 = plain loop; >1 mirrors
  /// the ParallelEngine's per-worker accumulators + merge).
  std::vector<int> ChunkCounts = {1, 3};
  /// Where shrunken reproducers are written; empty disables corpus dumps.
  std::string CorpusDir;
  /// Scratch directory for service-tier SNAP files (defaults to
  /// CorpusDir, else /tmp).
  std::string ScratchDir;
};

struct OracleFailure {
  CaseSpec Spec;        ///< spec of the original (pre-shrink) case
  std::string Where;    ///< "classifier" | "kernel" | "system" | "service"
  std::string Pipeline; ///< pipeline or "app/version" tag
  std::string Backend;
  std::string Op;       ///< operator (kernel tier) or "" elsewhere
  int Chunks = 1;
  int64_t Elements = 0; ///< stream length after shrinking
  int64_t Slot = -1;    ///< first disagreeing slot
  double Want = 0.0;
  double Got = 0.0;
  std::string Detail;
  std::string CorpusPath; ///< shrunken reproducer, "" if not written

  /// One-line structured record: {"ok":false,"error":"oracle_mismatch",...}.
  std::string toJson() const;
};

/// Runs every enabled tier over \p W.  Returns the first failure, already
/// shrunk and (when OracleOptions::CorpusDir is set) dumped as a corpus
/// file; std::nullopt when every combination agrees.
std::optional<OracleFailure> checkWorkload(const Workload &W,
                                           const OracleOptions &O);

/// Greedy delta-debugging: removes stream segments (halving lengths down
/// to single elements), then compacts the index universe, as long as
/// \p StillFails holds.  \p W must fail on entry; the result does too.
/// Exposed for the harness's own tests.
Workload shrinkWorkload(Workload W,
                        const std::function<bool(const Workload &)> &StillFails);

} // namespace verify
} // namespace cfv

#endif // CFV_VERIFY_ORACLE_H
