//===- bench/pattern_bench.cpp - Pattern-dispatch speedup harness ---------===//
//
// Part of the cfv project: reproduction of Jiang & Agrawal, CGO 2018.
//
//===----------------------------------------------------------------------===//
//
// Per-class speedup breakdown for the pattern subsystem (src/pattern/):
// for each generator family that lands in a specialized tile class, time
// the adaptive baseline (AdaptiveReducer -- the paper's §3.4 policy, the
// strongest general-purpose path this repo has) against classify-then-
// dispatch over the same stream, same output array, same operator.
// Classification is timed separately: in production it runs once at
// dataset-prep time and is memoized in the DatasetCache, so the steady
// state the dispatch numbers model is "schedule reused across
// iterations", exactly like the paper's amortized inspector.
//
//   $ bench/pattern_bench
//   {"bench":"pattern_dispatch","family":"distinct_round_robin",
//    "tile_class":"conflict_free","backend":"avx512","n":1048576,...,
//    "adaptive_ns_per_elem":...,"pattern_ns_per_elem":...,"speedup":...}
//
// One JSON line per family, so scripts/bench_collect.sh folds the run
// into BENCH_<rev>.json unmodified.  The acceptance gate reads the
// "speedup" field: >= 1.3x on the conflict-free and monotone families,
// and the "general" control row (where dispatch routes every tile back
// to the baseline) must stay within 2% of it.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "core/Adaptive.h"
#include "core/InvecReduce.h"
#include "pattern/Classify.h"
#include "pattern/Dispatch.h"
#include "simd/Traits.h"
#include "util/AlignedAlloc.h"
#include "util/Timer.h"
#include "verify/Gen.h"

#include <algorithm>
#include <cstdio>
#include <cstring>

using namespace cfv;
using namespace cfv::bench;

namespace {

using B = simd::NativeBackend;
using IVec = simd::VecI32<B>;
using FVec = simd::VecF32<B>;
constexpr int kL = B::kLanes;
constexpr simd::Mask16 kFull = simd::BackendTraits<B>::kFullMask;

constexpr int64_t kN = 1 << 20;  ///< elements per family (multiple of 16)
constexpr int32_t kUniverse = 4096;
constexpr int kReps = 7;         ///< timed repetitions; min wins

/// Adaptive baseline: the §3.4 policy over the whole stream, private
/// aux array merged at the end -- the exact shape the apps run when
/// CFV_PATTERN=off.
double runAdaptiveBaseline(const verify::Workload &W, float *Out,
                           double *Sink) {
  double Best = 1e300;
  AlignedVector<float> Aux(static_cast<size_t>(W.arraySize()));
  for (int Rep = 0; Rep < kReps; ++Rep) {
    std::memset(Out, 0, sizeof(float) * static_cast<size_t>(W.arraySize()));
    std::fill(Aux.begin(), Aux.end(), 0.0f);
    core::AdaptiveReducer<simd::OpAdd, float, B> Red(Aux.data(), Aux.size());
    WallTimer T;
    for (int64_t I = 0; I < kN; I += kL) {
      const IVec Idx = IVec::load(W.Idx.data() + I);
      FVec Val = FVec::load(W.Val.data() + I);
      const simd::Mask16 M = Red.reduce(kFull, Idx, Val);
      core::accumulateScatter<simd::OpAdd>(M, Idx, Val, Out);
    }
    Red.mergeInto(Out);
    Best = std::min(Best, T.seconds());
    for (int32_t I = 0; I < W.arraySize(); ++I)
      *Sink += Out[I];
  }
  return Best;
}

/// Classify-then-dispatch: specialized kernels per certified tile,
/// General tiles falling back to the same adaptive reducer the apps keep
/// for their unspecialized path (so the "general" control row measures
/// pure dispatch overhead, not an algorithm swap).
double runPatternDispatch(const verify::Workload &W,
                          const pattern::PatternResult &P, float *Out,
                          double *Sink) {
  double Best = 1e300;
  AlignedVector<float> Aux(static_cast<size_t>(W.arraySize()));
  for (int Rep = 0; Rep < kReps; ++Rep) {
    std::memset(Out, 0, sizeof(float) * static_cast<size_t>(W.arraySize()));
    std::fill(Aux.begin(), Aux.end(), 0.0f);
    const pattern::DenseSink<simd::OpAdd, float> S(Out);
    core::AdaptiveReducer<simd::OpAdd, float, B> Red(Aux.data(), Aux.size());
    WallTimer T;
    for (int64_t Tile = 0; Tile < P.numTiles(); ++Tile) {
      const int64_t Lo = Tile * P.TileLen;
      const int64_t Hi = std::min<int64_t>(kN, Lo + P.TileLen);
      const int32_t *Idx = W.Idx.data() + Lo;
      const float *Val = W.Val.data() + Lo;
      const auto Payload = [&](simd::Mask16 Active, int64_t I) {
        return FVec::maskLoad(FVec::broadcast(0.0f), Active, Val + I);
      };
      if (pattern::runTileSpecialized<simd::OpAdd, float, B>(
              P.Tiles[static_cast<size_t>(Tile)], Idx, Hi - Lo, Payload, S))
        continue;
      for (int64_t I = Lo; I < Hi; I += kL) {
        const IVec Iv = IVec::load(W.Idx.data() + I);
        FVec Vv = FVec::load(W.Val.data() + I);
        const simd::Mask16 M = Red.reduce(kFull, Iv, Vv);
        core::accumulateScatter<simd::OpAdd>(M, Iv, Vv, Out);
      }
    }
    Red.mergeInto(Out);
    Best = std::min(Best, T.seconds());
    for (int32_t I = 0; I < W.arraySize(); ++I)
      *Sink += Out[I];
  }
  return Best;
}

void benchFamily(verify::IdxPattern Family, int32_t Universe) {
  verify::CaseSpec Spec;
  Spec.Seed = benchSeed();
  Spec.N = kN;
  Spec.Universe = Universe;
  Spec.Idx = Family;
  const verify::Workload W = verify::genWorkload(Spec);

  // Classification cost, amortized per element (one scan; memoized at
  // prep time in production, so it is NOT part of the dispatch loop).
  WallTimer CT;
  const pattern::PatternResult P =
      pattern::classifyStream(W.Idx.data(), kN, pattern::kStreamTileLen);
  const double ClassifySec = CT.seconds();

  // Dominant tile class: what the dispatcher actually sees, which for
  // these synthetic families should be uniform across tiles.
  int Dominant = 0;
  for (int C = 1; C < pattern::kNumTileClasses; ++C)
    if (P.Counts[C] > P.Counts[Dominant])
      Dominant = C;

  AlignedVector<float> Out(static_cast<size_t>(W.arraySize()));
  double Sink = 0.0;
  const double AdaptiveSec = runAdaptiveBaseline(W, Out.data(), &Sink);
  const double PatternSec = runPatternDispatch(W, P, Out.data(), &Sink);
  if (Sink == 42.125)  // consume the checksum so nothing dead-codes
    std::fprintf(stderr, "# %f\n", Sink);

  std::printf("{\"bench\":\"pattern_dispatch\",\"family\":\"%s\","
              "\"tile_class\":\"%s\",\"backend\":\"%s\",\"n\":%lld,"
              "\"tiles\":%lld,\"adaptive_ns_per_elem\":%.4f,"
              "\"pattern_ns_per_elem\":%.4f,\"classify_ns_per_elem\":%.4f,"
              "\"speedup\":%.3f}\n",
              verify::idxPatternName(Family),
              pattern::tileClassName(static_cast<pattern::TileClass>(Dominant)),
              B::kName, static_cast<long long>(kN),
              static_cast<long long>(P.numTiles()),
              AdaptiveSec / kN * 1e9, PatternSec / kN * 1e9,
              ClassifySec / kN * 1e9, AdaptiveSec / PatternSec);
}

} // namespace

int main() {
  // One row per family that exercises a distinct tile class, plus the
  // uniform-over-small-universe control that classifies General (its
  // "speedup" is the dispatch overhead: must stay within 2% of 1.0).
  benchFamily(verify::IdxPattern::DistinctRoundRobin, kUniverse);
  benchFamily(verify::IdxPattern::Monotone, kUniverse);
  benchFamily(verify::IdxPattern::SmallAlphabet, kUniverse);
  benchFamily(verify::IdxPattern::HotBucket, kUniverse);
  benchFamily(verify::IdxPattern::Uniform, /*Universe=*/64);
  return 0;
}
