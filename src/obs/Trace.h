//===- obs/Trace.h - Span tracing with chrome://tracing export --*- C++ -*-===//
//
// Part of the cfv project (see obs/Metrics.h for the subsystem overview).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Span tracing for the run pipeline (load -> inspector -> tile -> kernel
/// -> merge) and the serving pipeline (queue -> prep -> kernel).  A Span
/// is an RAII guard: construction stamps the start on the canonical
/// monotonic clock (util/Clock.h -- the same clock deadlines use),
/// destruction stamps the duration and pushes one complete event into the
/// calling thread's ring buffer.  recordAt() emits a span retroactively
/// from externally measured times, so a component that already times a
/// phase for its protocol response (e.g. the service telemetry split) can
/// publish the *same* numbers as a span instead of re-measuring -- the
/// NDJSON schema and the trace cannot drift apart.
///
/// Rings are per-thread and bounded: when full, the oldest events are
/// overwritten (a trace wants the most recent activity) and a dropped
/// counter keeps the loss observable.  Each ring has its own mutex;
/// spans are per-phase / per-iteration, never per-vector, so the
/// uncontended lock costs nanoseconds and keeps the exporter race-free
/// under TSan.
///
/// Tracing is off by default: Span construction is a single relaxed
/// atomic load until Tracer::setEnabled(true) (cfv_run --trace,
/// CFV_TRACE=1).  With -DCFV_OBS=0 everything here compiles to nothing.
///
/// Export is the chrome://tracing / Perfetto JSON array-of-events format:
///   {"traceEvents":[{"name":...,"cat":...,"ph":"X","ts":us,"dur":us,
///                    "pid":1,"tid":N}]}
///
//===----------------------------------------------------------------------===//

#ifndef CFV_OBS_TRACE_H
#define CFV_OBS_TRACE_H

#ifndef CFV_OBS
#define CFV_OBS 1
#endif

#include "util/Clock.h"

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace cfv {
namespace obs {

/// One completed span.  Times are seconds on the monotonic clock.
struct SpanEvent {
  std::string Name;
  std::string Cat;
  double StartSeconds = 0.0;
  double DurSeconds = 0.0;
  int Tid = 0;
};

/// Events a single thread ring holds before overwriting the oldest.
inline constexpr std::size_t kTraceRingCapacity = 4096;

#if CFV_OBS

/// Process-wide trace collector.
class Tracer {
public:
  static Tracer &instance();

  /// Master switch.  Off (the default) makes Span construction a single
  /// relaxed load and nothing is recorded.
  void setEnabled(bool On) { Enabled.store(On, std::memory_order_relaxed); }
  bool enabled() const { return Enabled.load(std::memory_order_relaxed); }

  /// Emits a completed span retroactively from externally measured
  /// times.  No-op while disabled.
  void recordAt(const char *Name, const char *Cat, double StartSeconds,
                double DurSeconds);

  /// Snapshot of every ring, oldest-first per thread.
  std::vector<SpanEvent> collect() const;

  /// Events lost to ring overwrites since the last clear().
  uint64_t droppedCount() const;

  /// Empties every ring and zeroes the dropped counter (rings themselves
  /// persist; threads keep their ids).
  void clear();

  /// Serializes collect() as chrome://tracing JSON.
  std::string renderChromeJson() const;

  /// renderChromeJson() to \p Path; false (with a stderr note) on I/O
  /// failure.
  bool writeChromeJson(const std::string &Path) const;

  Tracer(const Tracer &) = delete;
  Tracer &operator=(const Tracer &) = delete;

private:
  Tracer() = default;
  std::atomic<bool> Enabled{false};
};

/// RAII span: stamps start now, records on destruction.  Name/Cat must
/// outlive the span (string literals and appIdName() qualify).
class Span {
public:
  Span(const char *Name, const char *Cat = "run")
      : Name(Name), Cat(Cat),
        Armed(Tracer::instance().enabled()),
        Start(Armed ? monotonicSeconds() : 0.0) {}

  ~Span() {
    if (Armed)
      Tracer::instance().recordAt(Name, Cat, Start,
                                  monotonicSeconds() - Start);
  }

  Span(const Span &) = delete;
  Span &operator=(const Span &) = delete;

private:
  const char *Name;
  const char *Cat;
  bool Armed;
  double Start;
};

#else // !CFV_OBS

class Tracer {
public:
  static Tracer &instance() {
    static Tracer T;
    return T;
  }
  void setEnabled(bool) {}
  bool enabled() const { return false; }
  void recordAt(const char *, const char *, double, double) {}
  std::vector<SpanEvent> collect() const { return {}; }
  uint64_t droppedCount() const { return 0; }
  void clear() {}
  std::string renderChromeJson() const { return "{\"traceEvents\":[]}\n"; }
  bool writeChromeJson(const std::string &) const { return true; }
};

class Span {
public:
  Span(const char *, const char * = "run") {}
};

#endif // CFV_OBS

} // namespace obs
} // namespace cfv

#endif // CFV_OBS_TRACE_H
