//===- tests/dispatch_test.cpp - Runtime backend dispatch ------------------===//
//
// Part of the cfv project: reproduction of Jiang & Agrawal, CGO 2018.
//
//===----------------------------------------------------------------------===//
//
// Selection-rule unit tests plus backend-equivalence checks: every
// dispatched application must produce the same answer through the scalar
// table as through each SIMD tier's table (AVX2 and AVX-512).  On a host
// without a tier the comparison degrades to scalar-vs-scalar and is
// trivially equal -- the graceful-fallback path itself is what's
// exercised then.
//
//===----------------------------------------------------------------------===//

#include "core/Dispatch.h"
#include "core/InvecReduce.h"
#include "graph/Generators.h"
#include "pattern/Classify.h"
#include "pattern/Dispatch.h"
#include "util/Status.h"
#include "workload/KeyGen.h"

#include "gtest/gtest.h"

#include <algorithm>
#include <cmath>

using namespace cfv;
using namespace cfv::apps;

namespace {

/// The SIMD tiers every equivalence test compares against scalar.
constexpr core::BackendKind kSimdTiers[] = {core::BackendKind::Avx2,
                                            core::BackendKind::Avx512};

/// Restores automatic backend selection after each test.
class DispatchTest : public ::testing::Test {
protected:
  void TearDown() override { core::resetBackendForTest(); }

  template <typename Fn> auto onBackendPair(core::BackendKind K, Fn &&Run) {
    core::setBackend(core::BackendKind::Scalar);
    auto Scalar = Run();
    core::setBackend(K); // falls back if absent
    auto Simd = Run();
    core::resetBackendForTest();
    return std::make_pair(std::move(Scalar), std::move(Simd));
  }
};

} // namespace

TEST_F(DispatchTest, ParseBackendKind) {
  ASSERT_TRUE(core::parseBackendKind("scalar").ok());
  EXPECT_EQ(*core::parseBackendKind("scalar"), core::BackendKind::Scalar);
  ASSERT_TRUE(core::parseBackendKind("avx2").ok());
  EXPECT_EQ(*core::parseBackendKind("avx2"), core::BackendKind::Avx2);
  ASSERT_TRUE(core::parseBackendKind("avx512").ok());
  EXPECT_EQ(*core::parseBackendKind("avx512"), core::BackendKind::Avx512);
  const auto Bad = core::parseBackendKind("sse2");
  ASSERT_FALSE(Bad.ok());
  EXPECT_EQ(Bad.status().code(), ErrorCode::InvalidArgument);
  EXPECT_NE(Bad.status().message().find("sse2"), std::string::npos);
}

TEST_F(DispatchTest, ResolvePrecedence) {
  std::string Note;
  // Explicit env value wins regardless of availability.
  EXPECT_EQ(core::resolveBackendKind("scalar", true, true, &Note),
            core::BackendKind::Scalar);
  EXPECT_TRUE(Note.empty());
  EXPECT_EQ(core::resolveBackendKind("avx512", false, false, &Note),
            core::BackendKind::Avx512);
  EXPECT_EQ(core::resolveBackendKind("avx2", false, false, &Note),
            core::BackendKind::Avx2);
  // No value: best available (avx512 > avx2 > scalar).
  EXPECT_EQ(core::resolveBackendKind(nullptr, true, true, &Note),
            core::BackendKind::Avx512);
  EXPECT_EQ(core::resolveBackendKind(nullptr, false, true, &Note),
            core::BackendKind::Avx2);
  EXPECT_EQ(core::resolveBackendKind(nullptr, false, false, &Note),
            core::BackendKind::Scalar);
  EXPECT_EQ(core::resolveBackendKind("", true, true, &Note),
            core::BackendKind::Avx512);
  // Unparseable value: diagnostic note, automatic choice.
  EXPECT_EQ(core::resolveBackendKind("turbo", false, false, &Note),
            core::BackendKind::Scalar);
  EXPECT_NE(Note.find("turbo"), std::string::npos);
  EXPECT_EQ(core::resolveBackendKind("turbo", false, true, &Note),
            core::BackendKind::Avx2);
}

TEST_F(DispatchTest, TablesReportTheirKind) {
  const core::DispatchTable &S = core::dispatchFor(core::BackendKind::Scalar);
  EXPECT_EQ(S.Kind, core::BackendKind::Scalar);
  EXPECT_STREQ(S.Name, "scalar");

  const core::DispatchTable &B = core::dispatchFor(core::BackendKind::Avx512);
  if (core::avx512Available()) {
    EXPECT_EQ(B.Kind, core::BackendKind::Avx512);
    EXPECT_STREQ(B.Name, "avx512");
    EXPECT_EQ(core::avx512UnavailableReason(), nullptr);
  } else {
    // Graceful degradation: avx512 -> avx2 -> scalar, whichever runs.
    EXPECT_NE(B.Kind, core::BackendKind::Avx512);
    ASSERT_NE(core::avx512UnavailableReason(), nullptr);
  }

  const core::DispatchTable &A2 = core::dispatchFor(core::BackendKind::Avx2);
  if (core::avx2Available()) {
    EXPECT_EQ(A2.Kind, core::BackendKind::Avx2);
    EXPECT_STREQ(A2.Name, "avx2");
    EXPECT_EQ(core::avx2UnavailableReason(), nullptr);
  } else {
    EXPECT_EQ(A2.Kind, core::BackendKind::Scalar);
    ASSERT_NE(core::avx2UnavailableReason(), nullptr);
  }
}

TEST_F(DispatchTest, BackendInfosListEveryTier) {
  const std::vector<core::BackendInfo> Infos = core::backendInfos();
  ASSERT_EQ(Infos.size(), 3u);
  EXPECT_STREQ(Infos[0].Name, "scalar");
  EXPECT_EQ(Infos[0].Lanes, 16);
  EXPECT_TRUE(Infos[0].Compiled);
  EXPECT_TRUE(Infos[0].Available);
  EXPECT_STREQ(Infos[1].Name, "avx2");
  EXPECT_EQ(Infos[1].Lanes, 8);
  EXPECT_STREQ(Infos[2].Name, "avx512");
  EXPECT_EQ(Infos[2].Lanes, 16);
  for (const core::BackendInfo &I : Infos) {
    // Available implies compiled; unavailable tiers explain themselves.
    EXPECT_TRUE(!I.Available || I.Compiled) << I.Name;
    EXPECT_TRUE(I.Available || I.Unavailable != nullptr) << I.Name;
    EXPECT_EQ(I.Available, I.Kind == core::BackendKind::Avx512
                               ? core::avx512Available()
                           : I.Kind == core::BackendKind::Avx2
                               ? core::avx2Available()
                               : true)
        << I.Name;
  }
}

TEST_F(DispatchTest, OverrideSticksUntilReset) {
  core::setBackend(core::BackendKind::Scalar);
  EXPECT_EQ(core::dispatch().Kind, core::BackendKind::Scalar);
  core::resetBackendForTest();
  // Automatic selection picks the best tier the host can run.
  const core::BackendKind Want = core::avx512Available()
                                     ? core::BackendKind::Avx512
                                 : core::avx2Available()
                                     ? core::BackendKind::Avx2
                                     : core::BackendKind::Scalar;
  EXPECT_EQ(core::dispatch().Kind, Want);
}

TEST_F(DispatchTest, PageRankAgreesAcrossBackends) {
  const graph::EdgeList G = graph::genRmat(10, 6000, 42);
  PageRankOptions O;
  O.MaxIterations = 5;
  O.Tolerance = 0.0f;
  for (const core::BackendKind K : kSimdTiers) {
    SCOPED_TRACE(core::backendName(K));
    const auto [A, B] = onBackendPair(
        K, [&] { return runPageRank(G, PrVersion::TilingInvec, O); });
    ASSERT_EQ(A.Rank.size(), B.Rank.size());
    for (std::size_t I = 0; I < A.Rank.size(); ++I)
      ASSERT_NEAR(A.Rank[I], B.Rank[I], 2e-4f) << "vertex " << I;
  }
}

TEST_F(DispatchTest, FrontierSsspAgreesAcrossBackends) {
  const graph::EdgeList G = graph::genRmat(10, 8000, 7, /*MaxWeight=*/16.0f);
  FrontierOptions O;
  for (const core::BackendKind K : kSimdTiers) {
    SCOPED_TRACE(core::backendName(K));
    const auto [A, B] = onBackendPair(K, [&] {
      return runFrontier(G, FrApp::Sssp, FrVersion::NontilingInvec, O);
    });
    ASSERT_EQ(A.Value.size(), B.Value.size());
    for (std::size_t I = 0; I < A.Value.size(); ++I)
      ASSERT_FLOAT_EQ(A.Value[I], B.Value[I]) << "vertex " << I;
  }
}

TEST_F(DispatchTest, AggregationAgreesAcrossBackends) {
  const int64_t Rows = 50000;
  const int32_t Card = 512;
  const auto Keys = workload::genKeys(workload::KeyDist::Zipf, Rows, Card, 11);
  const auto Vals = workload::genValues(Rows, 12);
  for (const core::BackendKind K : kSimdTiers) {
    SCOPED_TRACE(core::backendName(K));
    const auto [A, B] = onBackendPair(K, [&] {
      return runAggregation(Keys.data(), Vals.data(), Rows, Card,
                            AggVersion::LinearInvec);
    });
    ASSERT_EQ(A.Groups.size(), B.Groups.size());
    for (std::size_t I = 0; I < A.Groups.size(); ++I) {
      ASSERT_EQ(A.Groups[I].Key, B.Groups[I].Key);
      ASSERT_EQ(A.Groups[I].Cnt, B.Groups[I].Cnt);
      ASSERT_NEAR(A.Groups[I].Sum, B.Groups[I].Sum,
                  1e-4f * (1.0f + std::abs(A.Groups[I].Sum)));
    }
  }
}

TEST_F(DispatchTest, ReduceByKeyAgreesAcrossBackends) {
  const int64_t N = 20000;
  auto Keys = workload::genKeys(workload::KeyDist::Zipf, N, 256, 21);
  std::sort(Keys.begin(), Keys.end());
  const auto Vals = workload::genValues(N, 22);
  struct Out {
    AlignedVector<int32_t> K;
    AlignedVector<float> V;
    int64_t Runs;
  };
  for (const core::BackendKind K : kSimdTiers) {
    SCOPED_TRACE(core::backendName(K));
    const auto [A, B] = onBackendPair(K, [&] {
      Out O;
      O.K.resize(N);
      O.V.resize(N);
      O.Runs = reduceByKeyInvec(Keys.data(), Vals.data(), N, O.K.data(),
                                O.V.data());
      return O;
    });
    ASSERT_EQ(A.Runs, B.Runs);
    for (int64_t I = 0; I < A.Runs; ++I) {
      ASSERT_EQ(A.K[I], B.K[I]);
      ASSERT_NEAR(A.V[I], B.V[I], 1e-4f * (1.0f + std::abs(A.V[I])));
    }
  }
}

TEST_F(DispatchTest, MoldynAgreesAcrossBackends) {
  MoldynOptions O;
  O.Cells = 4;
  for (const core::BackendKind K : kSimdTiers) {
    SCOPED_TRACE(core::backendName(K));
    const auto [A, B] = onBackendPair(
        K, [&] { return runMoldyn(O, MdVersion::TilingInvec, 2); });
    EXPECT_EQ(A.Atoms, B.Atoms);
    EXPECT_EQ(A.Pairs, B.Pairs);
    EXPECT_NEAR(A.FinalKinetic, B.FinalKinetic,
                1e-3 * (1.0 + std::abs(A.FinalKinetic)));
    EXPECT_NEAR(A.FinalPotential, B.FinalPotential,
                1e-3 * (1.0 + std::abs(A.FinalPotential)));
  }
}

TEST_F(DispatchTest, SpmvAgreesAcrossBackends) {
  const graph::EdgeList M = graph::genRmat(9, 4000, 33, /*MaxWeight=*/4.0f);
  AlignedVector<float> X(M.NumNodes, 1.0f);
  for (const core::BackendKind K : kSimdTiers) {
    SCOPED_TRACE(core::backendName(K));
    const auto [A, B] = onBackendPair(
        K, [&] { return runSpmv(M, X.data(), SpmvVersion::CooInvec, 1); });
    ASSERT_EQ(A.Y.size(), B.Y.size());
    for (std::size_t I = 0; I < A.Y.size(); ++I)
      ASSERT_NEAR(A.Y[I], B.Y[I], 1e-4f * (1.0f + std::abs(A.Y[I])));
  }
}

namespace {

/// Streams forced into each specialized tile class (see
/// pattern_classifier_test.cpp for the classification-side assertions).
AlignedVector<int32_t> classStream(pattern::TileClass C, int64_t N) {
  AlignedVector<int32_t> Idx(static_cast<size_t>(N));
  for (int64_t I = 0; I < N; ++I) {
    int32_t X = 0;
    switch (C) {
    case pattern::TileClass::ConflictFree:
      X = static_cast<int32_t>(I % 16);
      break;
    case pattern::TileClass::Monotone:
      X = static_cast<int32_t>(I / 3);
      break;
    case pattern::TileClass::SmallAlphabet: {
      static const int32_t Alpha[5] = {3, 9, 1, 7, 5};
      X = Alpha[I % 5];
      break;
    }
    case pattern::TileClass::HotBucket:
      X = (I % 5 < 3) ? 7 : static_cast<int32_t>(20 + (I * 7) % 60);
      break;
    case pattern::TileClass::General:
      X = static_cast<int32_t>((I / 2 * 7) % 24);
      break;
    }
    Idx[static_cast<size_t>(I)] = X;
  }
  return Idx;
}

/// One specialized-kernel pass at backend \p B's lane width.
template <typename Op, typename B>
AlignedVector<float> runPatternTile(const AlignedVector<int32_t> &Idx,
                                    const AlignedVector<float> &Val,
                                    int32_t U) {
  const int64_t N = static_cast<int64_t>(Idx.size());
  const pattern::TileInfo Info = pattern::classifyRange(Idx.data(), N);
  AlignedVector<float> Out(static_cast<size_t>(U));
  core::fillIdentity<Op>(Out.data(), Out.size());
  const pattern::DenseSink<Op, float> Sink(Out.data());
  using V = simd::VecForT<float, B>;
  const float *Vp = Val.data();
  const auto Payload = [&](simd::Mask16 Active, int64_t I) {
    return V::maskLoad(V::broadcast(Op::template identity<float>()), Active,
                       Vp + I);
  };
  const bool Handled = pattern::runTileSpecialized<Op, float, B>(
      Info, Idx.data(), N, Payload, Sink);
  EXPECT_TRUE(Handled);
  return Out;
}

} // namespace

/// Each specialized pattern kernel must produce the same answer at every
/// compiled lane width: 16-lane scalar emulation vs. 8-lane AVX2 vs.
/// 16-lane AVX-512 intrinsics, including the non-lane-multiple tail.
TEST_F(DispatchTest, PatternKernelsAgreeAcrossBackends) {
  using S = simd::backend::Scalar;
  constexpr pattern::TileClass Specialized[] = {
      pattern::TileClass::ConflictFree, pattern::TileClass::Monotone,
      pattern::TileClass::SmallAlphabet, pattern::TileClass::HotBucket};
  const int32_t U = 96;
  for (const int64_t N : {64L, 160L, 163L, 13L}) {
    const auto Vals = workload::genValues(N, 99);
    for (const pattern::TileClass C : Specialized) {
      SCOPED_TRACE(std::string(pattern::tileClassName(C)) + " n=" +
                   std::to_string(N));
      const auto Idx = classStream(C, N);

      // In-order scalar reference: the specialized kernels may only
      // reassociate, never drop or double-count.
      std::vector<double> Ref(static_cast<size_t>(U), 0.0);
      for (int64_t I = 0; I < N; ++I)
        Ref[static_cast<size_t>(Idx[static_cast<size_t>(I)])] +=
            static_cast<double>(Vals[static_cast<size_t>(I)]);

      const auto CheckRef = [&](const AlignedVector<float> &Got) {
        for (int32_t I = 0; I < U; ++I)
          ASSERT_NEAR(Got[static_cast<size_t>(I)],
                      static_cast<float>(Ref[static_cast<size_t>(I)]),
                      1e-4f * (1.0f +
                               std::abs(static_cast<float>(
                                   Ref[static_cast<size_t>(I)]))))
              << "slot " << I;
      };
      const auto Scalar = runPatternTile<simd::OpAdd, S>(Idx, Vals, U);
      CheckRef(Scalar);
#if CFV_HAVE_AVX2
      if (core::avx2Available())
        CheckRef(runPatternTile<simd::OpAdd, simd::backend::Avx2>(Idx, Vals,
                                                                  U));
#endif
#if CFV_HAVE_AVX512
      if (core::avx512Available())
        CheckRef(runPatternTile<simd::OpAdd, simd::backend::Avx512>(
            Idx, Vals, U));
#endif
    }
  }
}

/// Min is exact under any association, so the backends must agree
/// bit-for-bit -- this pins the identity-lane handling (inactive lanes
/// and the expand/blend paths must contribute Op identity, not zero).
TEST_F(DispatchTest, PatternKernelsMinExactAcrossBackends) {
  using S = simd::backend::Scalar;
  const int32_t U = 96;
  const int64_t N = 157;
  const auto Vals = workload::genValues(N, 17);
  for (const pattern::TileClass C :
       {pattern::TileClass::ConflictFree, pattern::TileClass::Monotone,
        pattern::TileClass::SmallAlphabet, pattern::TileClass::HotBucket}) {
    SCOPED_TRACE(pattern::tileClassName(C));
    const auto Idx = classStream(C, N);
    const auto Scalar = runPatternTile<simd::OpMin, S>(Idx, Vals, U);
    std::vector<float> Ref(static_cast<size_t>(U),
                           simd::OpMin::identity<float>());
    for (int64_t I = 0; I < N; ++I)
      Ref[static_cast<size_t>(Idx[static_cast<size_t>(I)])] = std::min(
          Ref[static_cast<size_t>(Idx[static_cast<size_t>(I)])],
          Vals[static_cast<size_t>(I)]);
    for (int32_t I = 0; I < U; ++I)
      ASSERT_EQ(Scalar[static_cast<size_t>(I)], Ref[static_cast<size_t>(I)])
          << "slot " << I;
#if CFV_HAVE_AVX2
    if (core::avx2Available()) {
      const auto A2 =
          runPatternTile<simd::OpMin, simd::backend::Avx2>(Idx, Vals, U);
      for (int32_t I = 0; I < U; ++I)
        ASSERT_EQ(A2[static_cast<size_t>(I)], Scalar[static_cast<size_t>(I)])
            << "slot " << I;
    }
#endif
#if CFV_HAVE_AVX512
    if (core::avx512Available()) {
      const auto A5 =
          runPatternTile<simd::OpMin, simd::backend::Avx512>(Idx, Vals, U);
      for (int32_t I = 0; I < U; ++I)
        ASSERT_EQ(A5[static_cast<size_t>(I)], Scalar[static_cast<size_t>(I)])
            << "slot " << I;
    }
#endif
  }
}

/// The router's contract: General tiles come back unhandled (the caller
/// keeps its adaptive path) but are still tallied for observability.
TEST_F(DispatchTest, PatternRouterRejectsGeneralButTallies) {
  using S = simd::backend::Scalar;
  const int64_t N = 67; // 4 full scalar vectors + a 3-lane tail
  const auto Idx = classStream(pattern::TileClass::General, N);
  const pattern::TileInfo Info = pattern::classifyRange(Idx.data(), N);
  ASSERT_EQ(Info.Class, pattern::TileClass::General);
  AlignedVector<float> Out(96, 0.0f);
  const pattern::DenseSink<simd::OpAdd, float> Sink(Out.data());
  pattern::DispatchCounts Counts;
  const auto Payload = [&](simd::Mask16, int64_t) {
    return simd::VecF32<S>::zero();
  };
  const bool Handled = pattern::runTileSpecialized<simd::OpAdd, float, S>(
      Info, Idx.data(), N, Payload, Sink, &Counts);
  EXPECT_FALSE(Handled);
  const int G = static_cast<int>(pattern::TileClass::General);
  EXPECT_EQ(Counts.Tiles[G], 1);
  EXPECT_EQ(Counts.Vectors[G], 5);
  EXPECT_EQ(Counts.LaneWidth, 16);
  // Untouched: General routing must not write through the sink.
  for (float V : Out)
    EXPECT_EQ(V, 0.0f);
}

TEST_F(DispatchTest, MeshAgreesAcrossBackends) {
  const Mesh M = makeTriangulatedGrid(16, 16, 5);
  AlignedVector<float> U0(M.NumCells, 0.0f);
  U0[0] = 100.0f;
  for (const core::BackendKind K : kSimdTiers) {
    SCOPED_TRACE(core::backendName(K));
    const auto [A, B] = onBackendPair(K, [&] {
      return runMeshDiffusion(M, U0.data(), 10, 0.2f, MeshVersion::Invec);
    });
    ASSERT_EQ(A.U.size(), B.U.size());
    for (std::size_t I = 0; I < A.U.size(); ++I)
      ASSERT_NEAR(A.U[I], B.U[I], 1e-4f * (1.0f + std::abs(A.U[I])));
  }
}
