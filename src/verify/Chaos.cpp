//===-- verify/Chaos.cpp - Fault-schedule chaos tier ----------------------===//

#include "verify/Chaos.h"

#include "graph/Generators.h"
#include "resilience/Fault.h"
#include "service/Json.h"
#include "service/Protocol.h"
#include "service/Service.h"
#include "util/Clock.h"
#include "util/Prng.h"
#include "verify/ServeFuzz.h"

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <future>
#include <map>
#include <string>
#include <thread>
#include <utility>
#include <vector>

namespace cfv {
namespace verify {

namespace {

uint64_t hashString(const std::string &S) {
  uint64_t H = 0xcbf29ce484222325ULL;
  for (char C : S) {
    H ^= static_cast<unsigned char>(C);
    H *= 0x100000001b3ULL;
  }
  return H;
}

/// The forced schedule for the round's featured point.  The two points
/// that burn wall time when they fire (worker stalls eat 1.5x the
/// watchdog budget, slow tiles sleep) get lower rates so a round stays
/// seconds, not minutes.
fault::Rule forcedRule(fault::Point P) {
  fault::Rule R;
  R.M = fault::Rule::Mode::Probability;
  switch (P) {
  case fault::Point::SchedWorkerStall:
    R.P = 0.03;
    break;
  case fault::Point::KernelSlowTile:
    R.P = 0.10;
    break;
  default:
    R.P = 0.25;
    break;
  }
  return R;
}

/// Every fault round arms ALL points: the featured one at its forced
/// rate, the rest as low-probability background noise, so faults
/// compose instead of arriving one at a time.
fault::Plan roundPlan(uint64_t Seed, int Round) {
  fault::Plan P;
  P.Seed = Seed + static_cast<uint64_t>(Round) * 0x9E3779B9ULL;
  const int Featured = (Round - 1) % fault::kNumPoints;
  for (int I = 0; I < fault::kNumPoints; ++I) {
    if (I == Featured) {
      P.Rules[I] = forcedRule(static_cast<fault::Point>(I));
    } else {
      P.Rules[I].M = fault::Rule::Mode::Probability;
      P.Rules[I].P = static_cast<fault::Point>(I) ==
                             fault::Point::SchedWorkerStall
                         ? 0.01
                         : 0.02;
    }
  }
  return P;
}

/// The chaos dataset loader: fabricated graphs like the fuzzer's, but it
/// consults the graph-I/O fault points itself -- an injected loader
/// bypasses readSnapEdgeList, so the io.* schedules would otherwise
/// never be reachable from this tier.
service::DatasetCache::Loader chaosLoader() {
  return [](const service::DatasetKey &K) -> Expected<graph::EdgeList> {
    if (fault::fire(fault::Point::IoReadError))
      return Status::error(ErrorCode::IoError,
                           "chaos loader: injected read error on '" +
                               K.Source + "'");
    if (fault::fire(fault::Point::IoShortRead))
      return Status::error(ErrorCode::IoError,
                           "chaos loader: injected short read on '" +
                               K.Source + "'");
    std::this_thread::sleep_for(std::chrono::microseconds(500));
    if (K.Source.find("missing") != std::string::npos)
      return Status::error(ErrorCode::NotFound,
                           "chaos loader: no dataset '" + K.Source + "'");
    const uint64_t H = hashString(K.Source);
    graph::EdgeList G = graph::genUniform(4, 40 + H % 80, H);
    if (K.Weighted && !G.isWeighted()) {
      G.Weight.resize(G.Src.size());
      Xoshiro256 WRng(K.WeightSeed);
      for (auto &W : G.Weight)
        W = 1.0f + WRng.nextFloat() * 63.0f;
    }
    return G;
  };
}

bool close(double A, double B) {
  return std::fabs(A - B) <=
         1e-9 * std::max(1.0, std::max(std::fabs(A), std::fabs(B)));
}

} // namespace

Expected<ChaosStats> runChaos(const ChaosOptions &O) {
  ChaosStats St;
  // Golden checksums: signature -> checksum from the fault-free round.
  // The signature pins everything that legitimately changes the answer
  // (the verbatim request line plus the concrete version / thread count /
  // iteration count that actually ran), so two entries with equal
  // signatures MUST agree.
  std::map<std::string, double> Golden;

  // Arm the out-of-core path for the whole run unless the caller chose a
  // budget: every prepared dataset then takes the CFVM write/map route,
  // so the io.map_fail rotation actually reaches MappedCsr::open, and
  // the degradation contract -- a failed map falls back in-core with
  // identical checksums -- is enforced by the golden comparison below.
  // Set before any Service exists; setenv under live workers would race
  // their getenv calls.
  struct MapBytesGuard {
    bool Armed = std::getenv("CFV_MAP_BYTES") == nullptr;
    MapBytesGuard() {
      if (Armed)
        setenv("CFV_MAP_BYTES", "65536", 1);
    }
    ~MapBytesGuard() {
      if (Armed)
        unsetenv("CFV_MAP_BYTES");
    }
  } MapBytes;
  (void)MapBytes;

  const double T0 = monotonicSeconds();
  const double Budget = O.Minutes * 60.0;
  fault::Injector &Inj = fault::Injector::instance();

  int Round = 0;
  while (true) {
    if (Round == 0) {
      Inj.disarm(); // golden round: ambient CFV_FAULTS must not leak in
    } else if (Budget > 0.0 ? monotonicSeconds() - T0 >= Budget
                            : Round > O.Rounds) {
      break;
    } else {
      Inj.configure(roundPlan(O.Seed, Round));
    }
    const std::string Armed =
        Round == 0
            ? "none"
            : std::string(fault::pointName(
                  static_cast<fault::Point>((Round - 1) % fault::kNumPoints)));

    auto violation = [&](const std::string &What, const std::string &Line) {
      Inj.disarm();
      return Status::error(ErrorCode::Unavailable,
                           "chaos invariant violated (round " +
                               std::to_string(Round) + ", featured fault " +
                               Armed + ", seed " + std::to_string(O.Seed) +
                               "): " + What + " | line: " + Line);
    };

    service::Service::Config C;
    C.QueueDepth = O.QueueDepth;
    C.Workers = O.Workers;
    C.ShedQueuePct = 75; // shedding is part of the surface under test
    C.ShedLatencyMs = 0.0;
    C.WatchdogMs = O.WatchdogMs;
    C.Loader = chaosLoader();
    service::Service Svc(C);

    // Identical traffic every round: the stream is a pure function of the
    // run seed, so only the armed fault schedule differs from the golden
    // round and any divergence in an Ok answer is the fault's doing.
    Xoshiro256 Rng(O.Seed ^ 0xC4A05C4A05ULL);
    std::vector<std::pair<std::string, std::future<service::ServeResponse>>>
        Pending;

    auto reapOne = [&]() -> Status {
      auto Front = std::move(Pending.front());
      Pending.erase(Pending.begin());
      // The hang bound: a lost reply (promise dropped, wedged worker the
      // watchdog missed) surfaces as a timeout here instead of blocking
      // the harness forever.
      if (Front.second.wait_for(std::chrono::seconds(30)) !=
          std::future_status::ready)
        return violation("request did not resolve within 30s (hang)",
                         Front.first);
      const service::ServeResponse R = Front.second.get();
      const Expected<json::Value> Parsed = json::parse(R.toJson());
      if (!Parsed.ok())
        return violation("response does not round-trip through json::parse: " +
                             R.toJson(),
                         Front.first);
      if (!R.Ok) {
        ++St.Failed;
        if (R.Error.ok())
          return violation("failed response carries an Ok status: " +
                               R.toJson(),
                           Front.first);
        return Status();
      }
      ++St.Ok;
      if (R.TimedOut)
        return Status();
      // serve.conn_drop models the client vanishing after the response
      // was computed: the reply is consumed and discarded -- cfv_serve's
      // client_gone path -- so the books must balance without it.
      if (fault::fire(fault::Point::ServeConnDrop))
        return Status();
      const std::string Sig = Front.first + "|" + R.Version + "|" +
                              std::to_string(R.Threads) + "|" +
                              std::to_string(R.Iterations);
      if (Round == 0) {
        Golden.emplace(Sig, R.Checksum);
      } else {
        const auto It = Golden.find(Sig);
        if (It != Golden.end()) {
          ++St.ChecksumsChecked;
          if (!close(It->second, R.Checksum))
            return violation("Ok response diverges from the golden round: "
                             "checksum " +
                                 std::to_string(R.Checksum) + " != golden " +
                                 std::to_string(It->second),
                             Front.first);
        }
      }
      return Status();
    };

    for (int64_t I = 0; I < O.LinesPerRound; ++I) {
      std::string Line;
      const uint32_t Roll = Rng.nextBounded(20);
      if (Roll < 12)
        Line = fuzzValidLine(Rng, I);
      else if (Roll < 17)
        Line = fuzzMutateLine(fuzzValidLine(Rng, I), Rng);
      else if (Roll < 19) {
        static const char *Cmds[] = {"{\"cmd\":\"stats\"}",
                                     "{\"cmd\":\"metrics\"}", "GET /metrics"};
        Line = Cmds[Rng.nextBounded(3)];
      } else {
        Line.resize(Rng.nextBounded(48));
        for (auto &Ch : Line)
          Ch = static_cast<char>(Rng.nextBounded(256));
      }
      ++St.Lines;

      const service::ClassifiedLine CL = service::classifyLine(Line);
      if (CL.Kind == service::LineKind::Request) {
        ++St.Requests;
        Pending.emplace_back(Line, Svc.submit(CL.Request));
      } else if (CL.Kind == service::LineKind::Malformed ||
                 CL.Kind == service::LineKind::UnknownCmd ||
                 CL.Kind == service::LineKind::BadRequest) {
        if (CL.Error.ok())
          return violation("rejected line without a structured error", Line);
      }

      while (Pending.size() > static_cast<size_t>(2 * O.QueueDepth))
        if (Status S = reapOne(); !S.ok())
          return S;
    }

    while (!Pending.empty())
      if (Status S = reapOne(); !S.ok())
        return S;
    Svc.drain();

    // Exactly-one-reply bookkeeping: everything admitted completed, and
    // nothing is still queued behind a drained barrier.
    const service::RequestScheduler::Stats Q = Svc.schedulerStats();
    if (Q.Queued != 0)
      return violation("requests still queued after drain", "");
    if (Q.Submitted != Q.Completed)
      return violation("scheduler books do not balance: submitted " +
                           std::to_string(Q.Submitted) + " != completed " +
                           std::to_string(Q.Completed),
                       "");
    St.Shed += Q.Shed;
    St.WatchdogTrips += Q.WatchdogTrips;
    St.FaultsInjected += static_cast<int64_t>(Inj.totalFired());
    if (!O.Quiet)
      std::fprintf(stderr,
                   "cfv_check: chaos round %d (featured %s) ok: %lld fired, "
                   "%lld shed, %lld watchdog trips (%.1fs)\n",
                   Round, Armed.c_str(),
                   static_cast<long long>(Inj.totalFired()),
                   static_cast<long long>(Q.Shed),
                   static_cast<long long>(Q.WatchdogTrips),
                   monotonicSeconds() - T0);
    if (Round > 0)
      ++St.Rounds;
    ++Round;
  }

  Inj.disarm();
  return St;
}

} // namespace verify
} // namespace cfv
