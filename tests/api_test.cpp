//===- tests/api_test.cpp - The Figure 7 programming interface -----------===//
//
// Part of the cfv project: reproduction of Jiang & Agrawal, CGO 2018.
//
//===----------------------------------------------------------------------===//

#include "core/Api.h"

#include "simd/Traits.h"
#include "util/AlignedAlloc.h"
#include "util/Prng.h"

#include "gtest/gtest.h"

#include <array>

using namespace cfv;

// The facade's vector width follows the build's fastest backend (16 for
// scalar/AVX-512, 8 for an AVX2-only build), so the expectations below
// are computed from kLanes rather than written as 16-lane literals.
constexpr int kLanes = simd::NativeBackend::kLanes;
constexpr mask kFull = simd::BackendTraits<simd::NativeBackend>::kFullMask;

TEST(Api, InvecAddReturnsConflictFreeMask) {
  alignas(64) int32_t Idx[kLanes];
  for (int I = 0; I < kLanes; ++I)
    Idx[I] = I % 3; // every index appears in several lanes
  vfloat Data = vfloat::broadcast(1.0f);
  const mask M = invec_add(kFull, vint::load(Idx), Data);
  EXPECT_EQ(M, 0x0007) << "first occurrence of indices 0, 1, 2";
  alignas(64) float Out[kLanes];
  Data.store(Out);
  for (int G = 0; G < 3; ++G) {
    float Count = 0.0f;
    for (int I = 0; I < kLanes; ++I)
      Count += Idx[I] == G ? 1.0f : 0.0f;
    EXPECT_EQ(Out[G], Count) << "group " << G << " sum of ones";
  }
}

TEST(Api, InvecMinReducesToGroupMinimum) {
  alignas(64) int32_t Idx[kLanes];
  alignas(64) float Val[kLanes];
  for (int I = 0; I < kLanes; ++I) {
    Idx[I] = I % 2;
    Val[I] = static_cast<float>(kLanes - I);
  }
  vfloat Data = vfloat::load(Val);
  const mask M = invec_min(kFull, vint::load(Idx), Data);
  EXPECT_EQ(M, 0x0003);
  alignas(64) float Out[kLanes];
  Data.store(Out);
  EXPECT_EQ(Out[0], 2.0f) << "min over even lanes kLanes,...,2";
  EXPECT_EQ(Out[1], 1.0f) << "min over odd lanes kLanes-1,...,1";
}

TEST(Api, InvecMaxAndMul) {
  alignas(64) int32_t Idx[kLanes];
  for (int I = 0; I < kLanes; ++I)
    Idx[I] = 0;
  vint DataI = vint::broadcast(2);
  EXPECT_EQ(invec_mul(kFull, vint::load(Idx), DataI), 0x0001);
  alignas(64) int32_t Out[kLanes];
  DataI.store(Out);
  EXPECT_EQ(Out[0], 1 << kLanes) << "2^kLanes from multiplying all lanes";

  vfloat DataF = vfloat::broadcast(-3.0f);
  vint Iota = vint::iota();
  EXPECT_EQ(invec_max(0x00FF, Iota, DataF), 0x00FF);
}

/// The paper's Figure 7: the vectorized PageRank inner loop written
/// against the public API, validated against the scalar loop.
TEST(Api, Figure7PageRankLoopMatchesScalar) {
  constexpr int32_t N = 64;
  constexpr int64_t E = 256;
  Xoshiro256 Rng(0x777);

  AlignedVector<int32_t> N1(E), N2(E);
  for (int64_t J = 0; J < E; ++J) {
    N1[J] = static_cast<int32_t>(Rng.nextBounded(N));
    N2[J] = static_cast<int32_t>(Rng.nextBounded(8)); // heavy conflicts
  }
  AlignedVector<float> Rank(N), NNeighbor(N, 1.0f);
  for (int32_t V = 0; V < N; ++V)
    Rank[V] = Rng.nextFloat() + 0.1f;
  for (int64_t J = 0; J < E; ++J)
    NNeighbor[N1[J]] += 1.0f;

  // Scalar reference (Figure 1).
  AlignedVector<float> SumRef(N, 0.0f);
  for (int64_t J = 0; J < E; ++J)
    SumRef[N2[J]] += Rank[N1[J]] / NNeighbor[N1[J]];

  // Figure 7 with the API (E is a multiple of the vector width here).
  AlignedVector<float> Sum(N, 0.0f);
  for (int64_t J = 0; J < E; J += kLanes) {
    const vint Vnx = vint::load(N1.data() + J);
    const vint Vny = vint::load(N2.data() + J);
    const vfloat Vrankx = vfloat::gather(Rank.data(), Vnx);
    const vfloat Vnnx = vfloat::gather(NNeighbor.data(), Vnx);
    vfloat Vadd = Vrankx / Vnnx;
    const mask M = invec_add(kFull, Vny, Vadd);
    core::accumulateScatter<simd::OpAdd>(M, Vny, Vadd, Sum.data());
  }

  for (int32_t V = 0; V < N; ++V)
    EXPECT_NEAR(Sum[V], SumRef[V], 1e-3) << "vertex " << V;
}

TEST(Api, IntOverloadsReduceInPlace) {
  alignas(64) int32_t Idx[kLanes];
  for (int I = 0; I < kLanes; ++I)
    Idx[I] = I / 4; // groups of four
  mask GroupHeads = 0;
  for (int I = 0; I < kLanes; I += 4)
    GroupHeads |= simd::laneBit(I);
  vint Data = vint::broadcast(1);
  const mask M = invec_add(kFull, vint::load(Idx), Data);
  EXPECT_EQ(M, GroupHeads);
  alignas(64) int32_t Out[kLanes];
  Data.store(Out);
  for (int G = 0; G < kLanes / 4; ++G)
    EXPECT_EQ(Out[G * 4], 4);

  vint DataMin = vint::iota();
  const mask Mm = invec_min(kFull, vint::load(Idx), DataMin);
  EXPECT_EQ(Mm, GroupHeads);
  DataMin.store(Out);
  for (int G = 0; G < kLanes / 4; ++G)
    EXPECT_EQ(Out[G * 4], G * 4) << "group minimum is its first lane";
}
