//===- simd/Mask.h - 16-bit lane masks --------------------------*- C++ -*-===//
//
// Part of the cfv project: reproduction of Jiang & Agrawal, CGO 2018.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lane masks and bit-manipulation helpers.  A mask is a plain uint16_t
/// (one bit per lane, bit 0 = lane 0) on both backends; AVX-512's __mmask16
/// is itself an unsigned 16-bit integer so no wrapper type is needed and
/// masks convert freely between backends.
///
//===----------------------------------------------------------------------===//

#ifndef CFV_SIMD_MASK_H
#define CFV_SIMD_MASK_H

#include "simd/Backend.h"

#include <bit>
#include <cassert>
#include <cstdint>

namespace cfv {
namespace simd {

/// One bit per lane; bit i corresponds to lane i.
using Mask16 = uint16_t;

/// All 16 lanes active.
inline constexpr Mask16 kAllLanes = 0xFFFF;

/// Number of set bits (active lanes).
inline int popcount(Mask16 M) { return std::popcount(unsigned(M)); }

/// Index of the least significant set bit.  \p M must be nonzero.
inline int firstLane(Mask16 M) {
  assert(M != 0 && "firstLane on empty mask");
  return std::countr_zero(unsigned(M));
}

/// Isolates the least significant set bit (the paper's
/// "mreduce & (~mreduce + 1)" idiom, Algorithm 1 line 6).
inline Mask16 lowestBit(Mask16 M) {
  return static_cast<Mask16>(M & (~unsigned(M) + 1));
}

/// The mask containing only lane \p Lane.
inline Mask16 laneBit(int Lane) {
  assert(Lane >= 0 && Lane < kMaxLanes && "lane out of range");
  return static_cast<Mask16>(1u << Lane);
}

/// True when lane \p Lane is set in \p M.
inline bool testLane(Mask16 M, int Lane) { return (M >> Lane) & 1u; }

} // namespace simd
} // namespace cfv

#endif // CFV_SIMD_MASK_H
