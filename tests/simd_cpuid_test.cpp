//===- tests/simd_cpuid_test.cpp - CPU capability probing ------------------===//
//
// Part of the cfv project: reproduction of Jiang & Agrawal, CGO 2018.
//
//===----------------------------------------------------------------------===//

#include "simd/Backend.h"
#include "simd/CpuId.h"

#include "gtest/gtest.h"

using namespace cfv;

TEST(CpuId, CapsAreSelfConsistent) {
  const simd::Caps C = simd::detectCaps();
  // hasAvx512() requires every ingredient.
  if (C.hasAvx512()) {
    EXPECT_TRUE(C.Avx512F);
    EXPECT_TRUE(C.Avx512Cd);
    EXPECT_TRUE(C.OsZmm);
  }
  // The OS can only enable zmm state through xsave.
  if (C.OsZmm) {
    EXPECT_TRUE(C.Osxsave);
  }
}

TEST(CpuId, CachedCapsMatchFreshProbe) {
  const simd::Caps Fresh = simd::detectCaps();
  const simd::Caps &Cached = simd::caps();
  EXPECT_EQ(Cached.Osxsave, Fresh.Osxsave);
  EXPECT_EQ(Cached.OsZmm, Fresh.OsZmm);
  EXPECT_EQ(Cached.Avx512F, Fresh.Avx512F);
  EXPECT_EQ(Cached.Avx512Cd, Fresh.Avx512Cd);
  EXPECT_EQ(Cached.hasAvx512(), Fresh.hasAvx512());
}

#if CFV_HAVE_AVX512
TEST(CpuId, ProbeAgreesWithRunningAvx512Binary) {
  // This test binary was compiled *for* AVX-512F/CD and is executing
  // right now, so the runtime probe must report the same.
  EXPECT_TRUE(simd::caps().hasAvx512());
}
#endif
