//===- tests/cfv_check_cli_test.cpp - cfv_check CLI contract -------------===//
//
// Part of the cfv project: reproduction of Jiang & Agrawal, CGO 2018.
//
//===----------------------------------------------------------------------===//
//
// Drives the cfv_check verifier binary (path injected as CFV_CHECK_BIN by
// CMake) in subprocesses: clean runs exit 0 with a JSON success record,
// injected kernel bugs exit 1 with a shrunk reproducer whose corpus file
// replays, fuzz-serve runs hold their invariants, and bad flags exit 2.
//
//===----------------------------------------------------------------------===//

#include "service/Json.h"

#include "gtest/gtest.h"

#include <cstdio>
#include <cstdlib>
#include <string>
#include <sys/wait.h>

using namespace cfv;

namespace {

#ifndef CFV_CHECK_BIN
#error "CFV_CHECK_BIN must be defined to the cfv_check binary path"
#endif

struct CliResult {
  int Code = -1;
  std::string Stdout;
};

/// Runs `cfv_check <Args>`, capturing stdout (stderr discarded).
CliResult runCli(const std::string &Args) {
  const std::string Out = ::testing::TempDir() + "cfv_check_cli_out.txt";
  const std::string Cmd = std::string("\"") + CFV_CHECK_BIN + "\" " + Args +
                          " >" + Out + " 2>/dev/null";
  CliResult R;
  const int Rc = std::system(Cmd.c_str());
  if (Rc != -1 && WIFEXITED(Rc))
    R.Code = WEXITSTATUS(Rc);
  if (std::FILE *F = std::fopen(Out.c_str(), "r")) {
    char Buf[4096];
    std::size_t N;
    while ((N = std::fread(Buf, 1, sizeof(Buf), F)) > 0)
      R.Stdout.append(Buf, N);
    std::fclose(F);
  }
  std::remove(Out.c_str());
  return R;
}

/// First line of the captured stdout, parsed as JSON.
Expected<json::Value> firstJsonLine(const CliResult &R) {
  const std::size_t Eol = R.Stdout.find('\n');
  return json::parse(Eol == std::string::npos ? R.Stdout
                                              : R.Stdout.substr(0, Eol));
}

} // namespace

TEST(CfvCheckCli, HelpExitsZero) { EXPECT_EQ(runCli("--help").Code, 0); }

TEST(CfvCheckCli, BadFlagsExitTwo) {
  EXPECT_EQ(runCli("--no-such-flag").Code, 2);
  EXPECT_EQ(runCli("--cases").Code, 2);
  EXPECT_EQ(runCli("--cases banana").Code, 2);
  EXPECT_EQ(runCli("--inject made_up_bug").Code, 2);
  EXPECT_EQ(runCli("--backend sse2").Code, 2);
  // Nothing to do: zero cases, no time budget, no replay, no fuzz.
  EXPECT_EQ(runCli("--cases 0").Code, 2);
}

TEST(CfvCheckCli, CleanRunPassesWithJsonRecord) {
  // Enough cases to cover every pattern combination; the system and
  // service tiers run on their default cadence.
  const CliResult R = runCli("--seed 42 --cases 60 --quiet --corpus-dir " +
                             std::string(::testing::TempDir()));
  EXPECT_EQ(R.Code, 0) << R.Stdout;
  const Expected<json::Value> J = firstJsonLine(R);
  ASSERT_TRUE(J.ok()) << R.Stdout;
  EXPECT_EQ(J->getNumber("cases", 0), 60.0);
  EXPECT_EQ(J->getString("injected", ""), "none");
}

TEST(CfvCheckCli, InjectedBugCaughtShrunkAndReplayable) {
  const std::string Dir = ::testing::TempDir();
  const CliResult R =
      runCli("--seed 42 --cases 200 --quiet --system-every 0 "
             "--service-every 0 --inject drop_conflict_lane --corpus-dir " +
             Dir);
  EXPECT_EQ(R.Code, 1);
  const Expected<json::Value> J = firstJsonLine(R);
  ASSERT_TRUE(J.ok()) << R.Stdout;
  EXPECT_EQ(J->getString("error", ""), "oracle_mismatch");
  // The acceptance bar: shrunk to a tiny reproducer.
  EXPECT_GT(J->getNumber("elements", 0), 0.0);
  EXPECT_LE(J->getNumber("elements", 1000), 32.0);

  // The reproducer replays: with the bug it fails again, without it the
  // same corpus file passes every tier.
  const std::string Repro = J->getString("reproducer", "");
  ASSERT_FALSE(Repro.empty());
  EXPECT_EQ(runCli("--quiet --inject drop_conflict_lane --system-every 0 "
                   "--service-every 0 --replay " +
                   Repro)
                .Code,
            1);
  EXPECT_EQ(runCli("--quiet --replay " + Repro).Code, 0);
  std::remove(Repro.c_str());
}

TEST(CfvCheckCli, SkipTailInjectionCaught) {
  const CliResult R =
      runCli("--seed 7 --cases 200 --quiet --system-every 0 "
             "--service-every 0 --inject skip_tail --corpus-dir " +
             std::string(::testing::TempDir()));
  EXPECT_EQ(R.Code, 1);
  const Expected<json::Value> J = firstJsonLine(R);
  ASSERT_TRUE(J.ok()) << R.Stdout;
  EXPECT_LE(J->getNumber("elements", 1000), 32.0);
  const std::string Repro = J->getString("reproducer", "");
  if (!Repro.empty())
    std::remove(Repro.c_str());
}

TEST(CfvCheckCli, FuzzServeHoldsInvariants) {
  const CliResult R = runCli("--seed 11 --cases 0 --fuzz-serve 300 --quiet");
  EXPECT_EQ(R.Code, 0) << R.Stdout;
  const Expected<json::Value> J = firstJsonLine(R);
  ASSERT_TRUE(J.ok()) << R.Stdout;
  EXPECT_EQ(J->getNumber("fuzz_lines", 0), 300.0);
}

TEST(CfvCheckCli, ReplayOfGarbageExitsTwo) {
  const std::string Path = ::testing::TempDir() + "cfv_check_garbage.snap";
  std::FILE *F = std::fopen(Path.c_str(), "w");
  ASSERT_NE(F, nullptr);
  std::fputs("not a corpus\n", F);
  std::fclose(F);
  EXPECT_EQ(runCli("--replay " + Path).Code, 2);
  EXPECT_EQ(runCli("--replay /nonexistent/corpus.snap").Code, 2);
  std::remove(Path.c_str());
}
