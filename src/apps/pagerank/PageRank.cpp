//===- apps/pagerank/PageRank.cpp - PageRank, five versions --------------===//
//
// Part of the cfv project: reproduction of Jiang & Agrawal, CGO 2018.
//
//===----------------------------------------------------------------------===//

#include "apps/pagerank/PageRank.h"

#include "core/Adaptive.h"
#include "core/Backends.h"
#include "core/Variant.h"
#include "inspector/Grouping.h"
#include "inspector/Tiling.h"
#include "masking/ConflictMask.h"
#include "util/Timer.h"

#include <cmath>
#include <functional>
#include <memory>

using namespace cfv;
using namespace cfv::apps;

using B = simd::NativeBackend;
using IVec = simd::VecI32<B>;
using FVec = simd::VecF32<B>;
using simd::kLanes;
using simd::Mask16;

#if CFV_VARIANT_PRIMARY
const char *apps::versionName(PrVersion V) {
  switch (V) {
  case PrVersion::NontilingSerial:
    return "nontiling_serial";
  case PrVersion::TilingSerial:
    return "tiling_serial";
  case PrVersion::TilingGrouping:
    return "tiling_and_grouping";
  case PrVersion::TilingMask:
    return "tiling_and_mask";
  case PrVersion::TilingInvec:
    return "tiling_and_invec";
  }
  return "unknown";
}
#endif // CFV_VARIANT_PRIMARY

namespace {

/// Mutable per-run state shared by all versions.
struct PrState {
  int32_t N;
  int64_t M;
  AlignedVector<float> Rank; ///< current rank per vertex
  AlignedVector<float> Sum;  ///< irregular-reduction target
  AlignedVector<float> DegF; ///< out-degree as float (nneighbor)
};

PrState makeState(const graph::EdgeList &G) {
  PrState S;
  S.N = G.NumNodes;
  S.M = G.numEdges();
  S.Rank.assign(S.N, 1.0f / static_cast<float>(S.N));
  S.Sum.assign(S.N, 0.0f);
  S.DegF.resize(S.N);
  const AlignedVector<int32_t> Deg = graph::outDegrees(G);
  for (int32_t V = 0; V < S.N; ++V)
    S.DegF[V] = static_cast<float>(Deg[V]);
  return S;
}

/// The regular (vertex-indexed) phase: damp the accumulated sums into new
/// ranks, reset the sums, and return the L1 rank change.  Identical in
/// every version; the total rank mass stays near 1, so the L1 change
/// doubles as the relative change of the termination test.
float applyDampingAndReset(PrState &S, float Damping) {
  const float Base = (1.0f - Damping) / static_cast<float>(S.N);
  float Delta = 0.0f;
  for (int32_t V = 0; V < S.N; ++V) {
    const float NewRank = Base + Damping * S.Sum[V];
    Delta += std::fabs(NewRank - S.Rank[V]);
    S.Rank[V] = NewRank;
    S.Sum[V] = 0.0f;
  }
  return Delta;
}

/// Serial edge phase: Figure 1's loop verbatim.
void edgePhaseSerial(PrState &S, const int32_t *Src, const int32_t *Dst) {
  for (int64_t J = 0; J < S.M; ++J) {
    const int32_t Nx = Src[J];
    const int32_t Ny = Dst[J];
    S.Sum[Ny] += S.Rank[Nx] / S.DegF[Nx];
  }
}

/// Conflict-masking edge phase (Figure 3 applied to Figure 1).
void edgePhaseMask(PrState &S, const int32_t *Src, const int32_t *Dst,
                   SimdUtilCounter &Util) {
  auto LoadIdx = [&](IVec Pos, Mask16 Lanes) {
    return IVec::maskGather(IVec::zero(), Lanes, Dst, Pos);
  };
  auto Commit = [&](Mask16 Safe, IVec Pos, IVec Idx) {
    const IVec Vnx = IVec::maskGather(IVec::zero(), Safe, Src, Pos);
    const FVec Vrank = FVec::maskGather(FVec::zero(), Safe, S.Rank.data(),
                                        Vnx);
    const FVec Vdeg = FVec::maskGather(FVec::broadcast(1.0f), Safe,
                                       S.DegF.data(), Vnx);
    const FVec Vadd = Vrank / Vdeg;
    const FVec Vsum = FVec::maskGather(FVec::zero(), Safe, S.Sum.data(), Idx);
    (Vsum + Vadd).maskScatter(Safe, S.Sum.data(), Idx);
  };
  masking::maskedStreamLoop<B>(S.M, LoadIdx, masking::AllLanesNeedUpdate{},
                               Commit, &Util);
}

/// In-vector reduction edge phase (Figure 7), with the §3.4 adaptive
/// Algorithm 1/2 policy.
void edgePhaseInvec(
    PrState &S, const int32_t *Src, const int32_t *Dst,
    core::AdaptiveReducer<simd::OpAdd, float, B> &Reducer) {
  const int64_t Whole = S.M - S.M % kLanes;
  for (int64_t J = 0; J < Whole; J += kLanes) {
    const IVec Vnx = IVec::load(Src + J);
    const IVec Vny = IVec::load(Dst + J);
    const FVec Vrank = FVec::gather(S.Rank.data(), Vnx);
    const FVec Vdeg = FVec::gather(S.DegF.data(), Vnx);
    FVec Vadd = Vrank / Vdeg;
    const Mask16 Mret = Reducer.reduce(simd::kAllLanes, Vny, Vadd);
    core::accumulateScatter<simd::OpAdd>(Mret, Vny, Vadd, S.Sum.data());
  }
  // Tail lanes, processed with a partial active mask.
  if (Whole != S.M) {
    const Mask16 Active =
        static_cast<Mask16>((1u << (S.M - Whole)) - 1u);
    const IVec Vnx = IVec::maskLoad(IVec::zero(), Active, Src + Whole);
    const IVec Vny = IVec::maskLoad(IVec::zero(), Active, Dst + Whole);
    const FVec Vrank = FVec::maskGather(FVec::zero(), Active, S.Rank.data(),
                                        Vnx);
    const FVec Vdeg = FVec::maskGather(FVec::broadcast(1.0f), Active,
                                       S.DegF.data(), Vnx);
    FVec Vadd = Vrank / Vdeg;
    const Mask16 Mret = Reducer.reduce(Active, Vny, Vadd);
    core::accumulateScatter<simd::OpAdd>(Mret, Vny, Vadd, S.Sum.data());
  }
  Reducer.mergeInto(S.Sum.data());
}

/// Inspector/executor edge phase over pre-grouped, conflict-free lanes.
void edgePhaseGrouped(PrState &S, const AlignedVector<int32_t> &GSrc,
                      const AlignedVector<int32_t> &GDst,
                      const AlignedVector<Mask16> &GroupMask) {
  const int64_t NumGroups = static_cast<int64_t>(GroupMask.size());
  for (int64_t G = 0; G < NumGroups; ++G) {
    const Mask16 M = GroupMask[G];
    const IVec Vnx = IVec::load(GSrc.data() + G * kLanes);
    const IVec Vny = IVec::load(GDst.data() + G * kLanes);
    const FVec Vrank = FVec::maskGather(FVec::zero(), M, S.Rank.data(), Vnx);
    const FVec Vdeg = FVec::maskGather(FVec::broadcast(1.0f), M,
                                       S.DegF.data(), Vnx);
    const FVec Vadd = Vrank / Vdeg;
    // Destinations within a group are pairwise distinct: the
    // gather/add/scatter below cannot lose updates.
    const FVec Vsum = FVec::maskGather(FVec::zero(), M, S.Sum.data(), Vny);
    (Vsum + Vadd).maskScatter(M, S.Sum.data(), Vny);
  }
}

} // namespace

// This translation unit is compiled once per backend variant; the public
// apps::runPageRank forwards here through core::dispatch().
PageRankResult apps::CFV_VARIANT_NS::runPageRank(const graph::EdgeList &G,
                                                 PrVersion V,
                                                 const PageRankOptions &O) {
  PageRankResult R;
  PrState S = makeState(G);

  // --- Inspector phases -------------------------------------------------
  AlignedVector<int32_t> TSrc, TDst;      // tiled edge order
  AlignedVector<int32_t> GSrc, GDst;      // grouped + padded edge order
  AlignedVector<Mask16> GroupMask;
  const bool Tiled = V != PrVersion::NontilingSerial;

  if (Tiled) {
    WallTimer T;
    inspector::TilingResult Tiling =
        inspector::tileByDestination(G.Dst.data(), S.M, S.N, O.TileBlockBits);
    TSrc = inspector::applyPermutation(Tiling.Order, G.Src.data());
    TDst = inspector::applyPermutation(Tiling.Order, G.Dst.data());
    R.TilingSeconds = T.seconds();

    if (V == PrVersion::TilingGrouping) {
      WallTimer TG;
      inspector::GroupingResult Grouping =
          inspector::groupConflictFree(G.Dst.data(), S.N, Tiling);
      // Padded lanes use vertex 0, which is always a valid gather target;
      // they are masked out of every store.
      GSrc = inspector::applyGrouping(Grouping, G.Src.data(), int32_t(0));
      GDst = inspector::applyGrouping(Grouping, G.Dst.data(), int32_t(0));
      GroupMask = std::move(Grouping.GroupMask);
      R.GroupingSeconds = TG.seconds();
    }
  }

  const int32_t *Src = Tiled ? TSrc.data() : G.Src.data();
  const int32_t *Dst = Tiled ? TDst.data() : G.Dst.data();

  // --- Executor ----------------------------------------------------------
  SimdUtilCounter Util;
  AlignedVector<float> Aux; // Algorithm 2 auxiliary reduction array
  std::unique_ptr<core::AdaptiveReducer<simd::OpAdd, float, B>> Reducer;
  if (V == PrVersion::TilingInvec) {
    Aux.assign(S.N, 0.0f);
    Reducer = std::make_unique<core::AdaptiveReducer<simd::OpAdd, float, B>>(
        Aux.data(), Aux.size());
  }

  const std::function<void()> EdgePhase = [&] {
    switch (V) {
    case PrVersion::NontilingSerial:
    case PrVersion::TilingSerial:
      edgePhaseSerial(S, Src, Dst);
      return;
    case PrVersion::TilingGrouping:
      edgePhaseGrouped(S, GSrc, GDst, GroupMask);
      return;
    case PrVersion::TilingMask:
      edgePhaseMask(S, Src, Dst, Util);
      return;
    case PrVersion::TilingInvec:
      edgePhaseInvec(S, Src, Dst, *Reducer);
      return;
    }
  };

  WallTimer Compute;
  for (int Iter = 0; Iter < O.MaxIterations; ++Iter) {
    EdgePhase();
    const float Delta = applyDampingAndReset(S, O.Damping);
    ++R.Iterations;
    if (Delta < O.Tolerance)
      break;
  }
  R.ComputeSeconds = Compute.seconds();

  R.Rank = std::move(S.Rank);
  R.SimdUtil = Util.utilization();
  if (Reducer) {
    R.MeanD1 = Reducer->meanD1();
    R.UsedAlg2 = Reducer->usingAlg2();
  }
  return R;
}
