//===- examples/aggregation_example.cpp - Group-by aggregation ------------===//
//
// Part of the cfv project: reproduction of Jiang & Agrawal, CGO 2018.
//
//===----------------------------------------------------------------------===//
//
// The paper's database workload: the query
//   SELECT G, count(*), sum(V), sum(V*V) FROM R GROUP BY G
// over a heavy-hitter key distribution (one key owns half the rows) --
// the adversarial case where conflict-masking collapses to near-serial
// speed while in-vector reduction keeps full SIMD utilization.
//
// Build & run:  ./examples/aggregation_example
//
//===----------------------------------------------------------------------===//

#include "apps/agg/Aggregation.h"
#include "workload/KeyGen.h"

#include <cstdio>

using namespace cfv;
using namespace cfv::apps;
using namespace cfv::workload;

int main() {
  constexpr int64_t N = 4000000;
  constexpr int32_t Cardinality = 1 << 12;
  const auto Keys = genKeys(KeyDist::HeavyHitter, N, Cardinality, 2018);
  const auto Vals = genValues(N, 2019);
  std::printf("aggregating %lld rows into %d groups (heavy-hitter keys)\n",
              static_cast<long long>(N), Cardinality);

  const AggVersion Versions[] = {
      AggVersion::LinearSerial, AggVersion::LinearMask,
      AggVersion::LinearInvec, AggVersion::BucketInvec};

  double SerialSec = 0.0;
  AggResult Check;
  for (const AggVersion V : Versions) {
    const AggResult R =
        runAggregation(Keys.data(), Vals.data(), N, Cardinality, V);
    if (V == AggVersion::LinearSerial) {
      SerialSec = R.Seconds;
      Check = R;
    }
    std::printf("%-14s %7.1f Mrows/s (%.2fx vs serial), %lld groups\n",
                versionName(V), R.MRowsPerSec,
                SerialSec / R.Seconds, static_cast<long long>(R.numGroups()));
  }

  // Show the hot group's aggregates from the serial run.
  for (const GroupAgg &G : Check.Groups) {
    if (G.Key != 0)
      continue;
    std::printf("hot group (key 0): count=%.0f sum=%.1f sum_sq=%.1f "
                "(~half of all rows)\n",
                G.Cnt, G.Sum, G.SumSq);
  }
  return 0;
}
