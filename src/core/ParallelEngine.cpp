//===- core/ParallelEngine.cpp - Multi-core execution engine --------------===//
//
// Part of the cfv project: reproduction of Jiang & Agrawal, CGO 2018.
//
//===----------------------------------------------------------------------===//

#include "core/ParallelEngine.h"

#include "core/CostModel.h"
#include "obs/Metrics.h"
#include "resilience/Fault.h"
#include "util/Env.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cstdlib>
#include <thread>

namespace cfv {
namespace core {

namespace {

/// True on a thread currently executing a pool job; a nested run() from
/// such a thread degrades to serial execution instead of deadlocking on
/// the pool it is itself draining.
thread_local bool InParallelRegion = false;

} // namespace

//===----------------------------------------------------------------------===//
// Thread-count policy
//===----------------------------------------------------------------------===//

int hardwareThreads() {
  const unsigned H = std::thread::hardware_concurrency();
  return H > 0 ? static_cast<int>(H) : 1;
}

int resolveThreads(int Requested) {
  if (Requested >= 1)
    return std::min(Requested, kMaxThreads);
  // Unset or unparsable keeps the library serial; 0 (or a negative value,
  // clamped up to 0) means "all hardware threads".
  const long long V = env::intVar("CFV_THREADS", /*Default=*/1,
                                  /*Min=*/0, /*Max=*/kMaxThreads);
  if (V <= 0)
    return std::min(hardwareThreads(), kMaxThreads);
  return static_cast<int>(V);
}

//===----------------------------------------------------------------------===//
// Iteration-space partitioning
//===----------------------------------------------------------------------===//

std::vector<int64_t> chunkBounds(int64_t N, int Threads, int64_t Align) {
  assert(Threads >= 1 && Align >= 1);
  std::vector<int64_t> Bounds(static_cast<size_t>(Threads) + 1);
  Bounds[0] = 0;
  for (int T = 1; T < Threads; ++T) {
    const int64_t Raw = N * T / Threads;
    const int64_t Rounded = (Raw + Align - 1) / Align * Align;
    Bounds[T] = std::min<int64_t>(N, std::max(Rounded, Bounds[T - 1]));
  }
  Bounds[Threads] = N;
  return Bounds;
}

std::vector<int64_t>
chunkBoundsFromTilesSharded(const std::vector<int64_t> &TileBegin,
                            int Threads) {
  if (Threads > 1) {
    if (const std::shared_ptr<const numa::ShardPlan> Plan =
            numa::currentPlan(Threads)) {
      std::vector<int64_t> Bounds =
          numa::shardedBoundsFromTiles(TileBegin, *Plan);
      numa::recordShardMetrics(*Plan, Bounds);
      return Bounds;
    }
  }
  return chunkBoundsFromTiles(TileBegin, Threads);
}

std::vector<int64_t> chunkBoundsFromTiles(const std::vector<int64_t> &TileBegin,
                                          int Threads) {
  assert(Threads >= 1 && !TileBegin.empty());
  const int64_t NumTiles = static_cast<int64_t>(TileBegin.size()) - 1;
  const int64_t N = TileBegin.back();
  std::vector<int64_t> Bounds(static_cast<size_t>(Threads) + 1);
  Bounds[0] = 0;
  int64_t Tile = 0;
  for (int T = 1; T < Threads; ++T) {
    const int64_t Target = N * T / Threads;
    while (Tile < NumTiles && TileBegin[Tile] < Target)
      ++Tile;
    Bounds[T] = std::max(TileBegin[Tile], Bounds[T - 1]);
  }
  Bounds[Threads] = N;
  return Bounds;
}

//===----------------------------------------------------------------------===//
// Privatized accumulator targets
//===----------------------------------------------------------------------===//

void applySpillAdd(const SpillListF &L, float *Base) {
  const int64_t K = L.size();
  if (K == 0)
    return;
  obs::Span MergeSpan("engine:spill_merge", "merge");
  for (int64_t I = 0; I < K; ++I)
    Base[L.Idx[static_cast<size_t>(I)]] += L.Val[static_cast<size_t>(I)];
}

bool useDensePrivatization(int64_t Elems, int64_t ElemBytes,
                           int64_t TotalUpdates, int Threads) {
  const int64_t CapBytes = env::intVar(
      "CFV_PRIVATE_DENSE_MAX", /*Default=*/int64_t(256) << 20,
      /*Min=*/0, /*Max=*/int64_t(1) << 46);
  if (Elems * ElemBytes > CapBytes)
    return false;
  const int T = std::max(Threads, 1);
  return privatizeDense(Elems, TotalUpdates / T);
}

//===----------------------------------------------------------------------===//
// Worker pool
//===----------------------------------------------------------------------===//

ParallelEngine &ParallelEngine::instance() {
  static ParallelEngine Engine;
  return Engine;
}

ParallelEngine::~ParallelEngine() {
  {
    std::lock_guard<std::mutex> Lock(Mu);
    Quit = true;
  }
  CvJob.notify_all();
  for (std::thread &W : Workers)
    W.join();
}

void ParallelEngine::ensureWorkers(int Needed) {
  std::lock_guard<std::mutex> Lock(Mu);
  while (static_cast<int>(Workers.size()) < Needed) {
    const int Slot = static_cast<int>(Workers.size());
    // The new worker must not mistake the current generation for a fresh
    // job, so it captures the generation counter before it starts waiting.
    const uint64_t StartGen = Generation;
    Workers.emplace_back(
        [this, Slot, StartGen] { workerLoop(Slot, StartGen); });
  }
}

void ParallelEngine::workerLoop(int Slot, uint64_t StartGen) {
  uint64_t SeenGen = StartGen;
  // CPU this worker is currently pinned to (-1 = free-floating); only
  // re-pins when the active plan's assignment differs, so back-to-back
  // runs under one topology pay one syscall total.
  int PinnedCpu = -1;
  for (;;) {
    const std::function<void(int)> *MyJob = nullptr;
    int MyThreads = 0;
    std::shared_ptr<const numa::ShardPlan> MyPlan;
    {
      std::unique_lock<std::mutex> Lock(Mu);
      CvJob.wait(Lock, [&] { return Quit || Generation != SeenGen; });
      if (Quit)
        return;
      SeenGen = Generation;
      if (Slot + 1 >= JobThreads)
        continue; // job does not need this worker
      MyJob = Job;
      MyThreads = JobThreads;
      MyPlan = ActivePlan;
    }
    const int WantCpu = MyPlan && Slot + 1 < MyPlan->Threads
                            ? MyPlan->CpuOfWorker[Slot + 1]
                            : -1;
    if (WantCpu != PinnedCpu) {
      if (WantCpu >= 0) {
        const bool Ok = numa::pinThreadToCpu(WantCpu);
        numa::notePin(Ok);
        PinnedCpu = Ok ? WantCpu : -1;
      } else {
        numa::unpinThread();
        PinnedCpu = -1;
      }
    }
    (void)MyThreads;
    InParallelRegion = true;
    (*MyJob)(Slot + 1);
    InParallelRegion = false;
    {
      std::lock_guard<std::mutex> Lock(Mu);
      if (--Remaining == 0)
        CvDone.notify_all();
    }
  }
}

void ParallelEngine::run(int Threads, const std::function<void(int)> &Body) {
  Threads = std::min(std::max(Threads, 1), kMaxThreads);
  obs::Span RunSpan("engine:run", "kernel");
  if (obs::enabled()) {
    static obs::Counter &Runs = obs::MetricsRegistry::instance().counter(
        "cfv_engine_runs_total", "",
        "Parallel-engine job launches (one per kernel pass)");
    Runs.inc();
  }
  // kernel.slow_tile models a pathologically slow pass (page-cache miss
  // storm, thermal throttling): the pass still completes correctly, just
  // late -- what the scheduler's watchdog and cooperative deadlines must
  // absorb.  Bounded so a chaos run cannot wedge on it.
  if (fault::fire(fault::Point::KernelSlowTile))
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  if (Threads == 1 || InParallelRegion) {
    Body(0);
    return;
  }
  std::lock_guard<std::mutex> RunLock(RunMu);
  ensureWorkers(Threads - 1);
  // Resolve the NUMA shard plan on the caller (the thread holding any
  // per-run ScopedMode override); workers pick it up with the job.  The
  // caller itself (worker 0) is never pinned -- the engine must not
  // perturb its caller's affinity.
  std::shared_ptr<const numa::ShardPlan> Plan = numa::currentPlan(Threads);
  {
    std::lock_guard<std::mutex> Lock(Mu);
    Job = &Body;
    JobThreads = Threads;
    Remaining = Threads - 1;
    ActivePlan = std::move(Plan);
    ++Generation;
  }
  CvJob.notify_all();
  InParallelRegion = true;
  Body(0);
  InParallelRegion = false;
  {
    std::unique_lock<std::mutex> Lock(Mu);
    CvDone.wait(Lock, [&] { return Remaining == 0; });
    Job = nullptr;
    JobThreads = 0;
    ActivePlan = nullptr;
  }
}

} // namespace core
} // namespace cfv
