//===- tests/verify_adaptive_test.cpp - Adaptive policy flapping ---------===//
//
// Part of the cfv project: reproduction of Jiang & Agrawal, CGO 2018.
//
//===----------------------------------------------------------------------===//
//
// Phase-shifting D1 distributions through the §3.4 adaptive policy: each
// phase of a workload commits its own Algorithm 1/2 decision, and every
// commitment must (a) match what the D1 stream dictates, (b) appear in
// the cfv_adaptive_decisions_total{alg=...} counters, and (c) never
// change the reduction result -- correctness is invariant under policy
// flapping as long as the final mergeInto runs.
//
//===----------------------------------------------------------------------===//

#include "TestHelpers.h"

#include "core/Adaptive.h"
#include "obs/Metrics.h"

#include <vector>

using namespace cfv;
using namespace cfv::core;
using namespace cfv::simd;
using namespace cfv::test;

namespace {

constexpr int kArr = 64;
constexpr unsigned kWindow = 4;

/// A phase is a homogeneous stretch of vectors with a target conflict
/// shape.  D1 is the number of *distinct* conflicting indices per vector
/// (the §3.4 statistic), so HighD1 spreads the lanes over four hot
/// indices (D1 = 4 > 1 commits Algorithm 2; a single hot index would be
/// D1 = 1 and correctly stay on Algorithm 1); LowD1 keeps all lanes
/// distinct (D1 = 0).
enum class PhaseKind { LowD1, HighD1 };

struct Phase {
  PhaseKind Kind;
  int Vectors;
};

void appendPhase(PhaseKind K, int Vectors, Xoshiro256 &Rng,
                 std::vector<Lane16i> &Idx, std::vector<Lane16f> &Val) {
  for (int V = 0; V < Vectors; ++V) {
    Lane16i L;
    if (K == PhaseKind::HighD1) {
      const int32_t Base = static_cast<int32_t>(Rng.nextBounded(kArr - 4));
      for (int I = 0; I < kMaxLanes; ++I)
        L[I] = Base + I % 4; // four distinct hot indices, 4 lanes each
    } else {
      for (int I = 0; I < kMaxLanes; ++I)
        L[I] = (V * kMaxLanes + I) % kArr; // distinct within the vector
    }
    Idx.push_back(L);
    Val.push_back(randomFloats(Rng));
  }
}

double counterValue(const char *Alg) {
  return obs::MetricsRegistry::instance()
      .counter("cfv_adaptive_decisions_total",
               std::string("alg=\"") + Alg + "\"")
      .value();
}

/// Runs one reducer per phase (the per-pass policy the engine applies to
/// each kernel invocation), returning the scattered result and whether
/// each phase committed to Algorithm 2.
AlignedVector<float> runPhased(const std::vector<Phase> &Phases,
                               uint64_t Seed,
                               std::vector<bool> *Committed = nullptr) {
  Xoshiro256 Rng(Seed);
  AlignedVector<float> Main(kArr, 0.0f), Aux(kArr, 0.0f);
  for (const Phase &P : Phases) {
    std::vector<Lane16i> Idx;
    std::vector<Lane16f> Val;
    appendPhase(P.Kind, P.Vectors, Rng, Idx, Val);
    AdaptiveReducer<OpAdd, float, backend::Scalar> Red(Aux.data(), Aux.size(),
                                                       kWindow);
    for (std::size_t I = 0; I < Idx.size(); ++I) {
      auto D = loadF<backend::Scalar>(Val[I]);
      const auto IV = loadIdx<backend::Scalar>(Idx[I]);
      const Mask16 M = Red.reduce(kAllLanes, IV, D);
      accumulateScatter<OpAdd>(M, IV, D, Main.data());
    }
    Red.mergeInto(Main.data());
    if (Committed)
      Committed->push_back(Red.usingAlg2());
  }
  return Main;
}

/// Scalar ground truth: replays the same phase schedule (same seed, so
/// the same indices and values) lane by lane.
AlignedVector<float> refPhased(const std::vector<Phase> &Phases,
                               uint64_t Seed) {
  Xoshiro256 Rng(Seed);
  AlignedVector<float> Main(kArr, 0.0f);
  for (const Phase &P : Phases) {
    std::vector<Lane16i> Idx;
    std::vector<Lane16f> Val;
    appendPhase(P.Kind, P.Vectors, Rng, Idx, Val);
    for (std::size_t I = 0; I < Idx.size(); ++I)
      for (int L = 0; L < kMaxLanes; ++L)
        Main[Idx[I][L]] += Val[I][L];
  }
  return Main;
}

void expectNear(const AlignedVector<float> &Ref,
                const AlignedVector<float> &Got) {
  ASSERT_EQ(Ref.size(), Got.size());
  for (std::size_t I = 0; I < Ref.size(); ++I)
    EXPECT_NEAR(Ref[I], Got[I], 1e-3f + 1e-4f * std::fabs(Ref[I]))
        << "slot " << I;
}

TEST(VerifyAdaptive, PhasesCommitWhatTheirD1Dictates) {
  const std::vector<Phase> Phases = {{PhaseKind::LowD1, 12},
                                     {PhaseKind::HighD1, 12},
                                     {PhaseKind::LowD1, 12},
                                     {PhaseKind::HighD1, 12}};
  std::vector<bool> Committed;
  const AlignedVector<float> Got = runPhased(Phases, 0xF1A9, &Committed);
  ASSERT_EQ(Committed.size(), Phases.size());
  for (std::size_t P = 0; P < Phases.size(); ++P)
    EXPECT_EQ(Committed[P], Phases[P].Kind == PhaseKind::HighD1)
        << "phase " << P;
  expectNear(refPhased(Phases, 0xF1A9), Got);
}

TEST(VerifyAdaptive, DecisionsMatchTheMetricCounters) {
  // 3 low-D1 phases -> 3 alg=1 commits; 2 high-D1 phases -> 2 alg=2.
  const std::vector<Phase> Phases = {{PhaseKind::LowD1, 8},
                                     {PhaseKind::HighD1, 8},
                                     {PhaseKind::LowD1, 8},
                                     {PhaseKind::HighD1, 8},
                                     {PhaseKind::LowD1, 8}};
  const double Alg1Before = counterValue("1");
  const double Alg2Before = counterValue("2");
  runPhased(Phases, 0xBEE);
  EXPECT_DOUBLE_EQ(counterValue("1") - Alg1Before, 3.0);
  EXPECT_DOUBLE_EQ(counterValue("2") - Alg2Before, 2.0);
}

TEST(VerifyAdaptive, ShortPhaseNeverClosesTheWindow) {
  // Fewer vectors than the sampling window: the policy must stay on
  // Algorithm 1 and record no decision at all.
  const std::vector<Phase> Phases = {{PhaseKind::HighD1,
                                      static_cast<int>(kWindow) - 1}};
  const double Alg1Before = counterValue("1");
  const double Alg2Before = counterValue("2");
  std::vector<bool> Committed;
  const AlignedVector<float> Got = runPhased(Phases, 0x51, &Committed);
  EXPECT_FALSE(Committed[0]);
  EXPECT_DOUBLE_EQ(counterValue("1") - Alg1Before, 0.0);
  EXPECT_DOUBLE_EQ(counterValue("2") - Alg2Before, 0.0);
  expectNear(refPhased(Phases, 0x51), Got);
}

TEST(VerifyAdaptive, FlappingKeepsTheResultInvariant) {
  // Rapid alternation right at the window size: whatever the policy does,
  // the merged result equals the scalar fold.
  std::vector<Phase> Phases;
  for (int P = 0; P < 10; ++P)
    Phases.push_back({P % 2 ? PhaseKind::HighD1 : PhaseKind::LowD1,
                      static_cast<int>(kWindow)});
  expectNear(refPhased(Phases, 0xAB), runPhased(Phases, 0xAB));
}

TEST(VerifyAdaptive, MergeIsIdempotentAndComplete) {
  // After mergeInto, the auxiliary array must be spent: merging again
  // changes nothing.
  Xoshiro256 Rng(0x77);
  AlignedVector<float> Main(kArr, 0.0f), Aux(kArr, 0.0f);
  AdaptiveReducer<OpAdd, float, backend::Scalar> Red(Aux.data(), Aux.size(),
                                                     kWindow);
  std::vector<Lane16i> Idx;
  std::vector<Lane16f> Val;
  appendPhase(PhaseKind::HighD1, 16, Rng, Idx, Val);
  for (std::size_t I = 0; I < Idx.size(); ++I) {
    auto D = loadF<backend::Scalar>(Val[I]);
    const auto IV = loadIdx<backend::Scalar>(Idx[I]);
    accumulateScatter<OpAdd>(Red.reduce(kAllLanes, IV, D), IV, D,
                             Main.data());
  }
  ASSERT_TRUE(Red.usingAlg2());
  EXPECT_TRUE(Red.needsMerge());
  Red.mergeInto(Main.data());
  EXPECT_FALSE(Red.needsMerge());
  const AlignedVector<float> Snapshot = Main;
  Red.mergeInto(Main.data());
  for (int I = 0; I < kArr; ++I)
    EXPECT_EQ(Main[I], Snapshot[I]);
}

} // namespace
