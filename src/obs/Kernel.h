//===- obs/Kernel.h - Kernel conflict telemetry -----------------*- C++ -*-===//
//
// Part of the cfv project (see obs/Metrics.h for the subsystem overview).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The bridge between the hot kernels and the metrics registry.  Kernels
/// never touch the registry directly: each worker accumulates plain
/// local LaneHistogram / ConflictCounter state (util/Stats.h) at a cost
/// of one array increment per vector pass, the per-worker state is
/// merged deterministically after the parallel region, and the run
/// facade flushes the totals here exactly once per run.  That keeps the
/// per-pass overhead inside the <=3% budget while still exporting the
/// paper's full distributions:
///
///   cfv_kernel_d1_lanes{app=...}      D1 per vector pass (drives §3.4)
///   cfv_kernel_useful_lanes{app=...}  lane utilization per pass
///   cfv_run_kernel_seconds{app=...}   executor time
///   cfv_run_prep_seconds{app=...}     inspector (tiling/grouping) time
///   cfv_runs_total / cfv_runs_alg2_total / cfv_edges_processed_total
///   cfv_adaptive_decisions_total{alg=...}  one per sampling-window close
///   cfv_adaptive_commit_d1            mean D1 at the moment of decision
///
/// recordAdaptiveDecision() is the §3.4 policy made observable: the
/// AdaptiveReducer calls it when its sampling window commits, so an
/// operator can count Alg 1 vs Alg 2 commitments and see the D1 values
/// that caused them.  These entry points are out-of-line on purpose --
/// variant-compiled TUs (the AVX-512 object set) link against the one
/// baseline definition, so both kernel sets feed one registry.
///
//===----------------------------------------------------------------------===//

#ifndef CFV_OBS_KERNEL_H
#define CFV_OBS_KERNEL_H

#ifndef CFV_OBS
#define CFV_OBS 1
#endif

#include "util/Stats.h"

#include <cstdint>

namespace cfv {
namespace obs {

/// One finished run's kernel-level telemetry, as flushed by cfv::run.
struct RunTelemetry {
  const char *App = "";     ///< appIdName() string (static lifetime)
  const char *Backend = ""; ///< core::backendName() string (static lifetime)
  /// 32-bit lanes of the backend that executed; sizes the lane-histogram
  /// buckets (16 for scalar/avx512, 8 for avx2).
  int LaneWidth = 16;
  double PrepSeconds = 0.0;
  double KernelSeconds = 0.0;
  uint64_t EdgesProcessed = 0;
  double SimdUtil = 1.0;
  double MeanD1 = 0.0;
  bool UsedAlg2 = false;
  const LaneHistogram *D1 = nullptr;   ///< per-pass D1 distribution
  const LaneHistogram *Util = nullptr; ///< per-pass useful-lane distribution
};

#if CFV_OBS

/// Flushes one run's telemetry into the registry.  No-op when the
/// runtime kill switch (CFV_OBS=0 in the environment) is set.
void recordRun(const RunTelemetry &T);

/// Records one adaptive-policy commitment (sampling window closed).
void recordAdaptiveDecision(bool UseAlg2, double MeanD1);

#else

inline void recordRun(const RunTelemetry &) {}
inline void recordAdaptiveDecision(bool, double) {}

#endif // CFV_OBS

} // namespace obs
} // namespace cfv

#endif // CFV_OBS_KERNEL_H
