//===-- service/Protocol.h - NDJSON line classification ---------*- C++ -*-===//
//
// The cfv_serve wire protocol, factored out of the tool so the line
// classification logic is a library function: cfv_serve's Session drives
// it for real traffic and the verification harness's protocol fuzzer
// (verify/ServeFuzz) drives it with adversarial bytes -- both exercise the
// exact code that faces the network.
//
//===----------------------------------------------------------------------===//

#ifndef CFV_SERVICE_PROTOCOL_H
#define CFV_SERVICE_PROTOCOL_H

#include "service/Service.h"
#include "util/Status.h"

#include <string>

namespace cfv {
namespace service {

/// What one input line means.  The protocol answers every line except
/// Empty and HttpGet with exactly one NDJSON response line.
enum class LineKind {
  Empty,      ///< blank line: ignored
  HttpGet,    ///< raw "GET ..." -- one-shot HTTP Prometheus scrape
  Shutdown,   ///< {"cmd":"shutdown"}
  Stats,      ///< {"cmd":"stats"}
  Metrics,    ///< {"cmd":"metrics"}
  Backends,   ///< {"cmd":"backends"} -- compiled/available SIMD tiers
  UnknownCmd, ///< {"cmd":"..."} with an unrecognized verb
  Malformed,  ///< not valid JSON
  BadRequest, ///< valid JSON, rejected by parseRequest
  Request     ///< an admissible work request
};
const char *lineKindName(LineKind K);

struct ClassifiedLine {
  LineKind Kind = LineKind::Empty;
  /// The "id" the line carried, echoed on error responses ("" if none).
  std::string Id;
  /// Filled for Malformed / UnknownCmd / BadRequest.
  Status Error;
  /// Filled for Request.
  ServeRequest Request;
};

/// Classifies one line of input (without its trailing newline).  Total:
/// any byte sequence yields a ClassifiedLine, never an exception.
ClassifiedLine classifyLine(const std::string &Line);

//===----------------------------------------------------------------------===//
// Shared verb renderers
//
// The response bodies for the introspection verbs and the error channel,
// shared by every front-end (the stdin Session in tools/cfv_serve.cpp and
// the multi-client event-loop server in src/net/) so the wire schema
// cannot drift between them.
//===----------------------------------------------------------------------===//

/// {"cmd":"stats"}: cache + scheduler counters plus the merged metrics
/// registry.
std::string statsJson(const Service &S);

/// {"cmd":"metrics"}: the Prometheus exposition, JSON-wrapped.
std::string metricsJson();

/// {"cmd":"backends"}: the compiled/available SIMD tier matrix plus the
/// tier the process-wide selection resolves to.
std::string backendsJson();

/// One structured NDJSON error response echoing \p Id ("" omits it).
std::string errorJson(const std::string &Id, const Status &S);

} // namespace service
} // namespace cfv

#endif // CFV_SERVICE_PROTOCOL_H
