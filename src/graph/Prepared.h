//===- graph/Prepared.h - Shareable dataset + derived schedules -*- C++ -*-===//
//
// Part of the cfv project: reproduction of Jiang & Agrawal, CGO 2018.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A loaded graph together with its memoized derived artifacts: the CSR
/// adjacency, out-degrees, and the inspector's destination-block tiling
/// schedules.  The paper's executor amortizes inspector cost across
/// iterations of one run; PreparedGraph extends that amortization across
/// *runs* -- the serving layer caches one PreparedGraph per dataset and
/// every request against it reuses the schedules instead of rebuilding
/// them (the same argument that motivates precomputed schedules in
/// Autovesk's pipeline).
///
/// The object is logically const after construction: artifacts build
/// lazily under an internal mutex on first use and are immutable
/// afterwards, so concurrent requests may share one instance.  References
/// returned by the accessors stay valid for the lifetime of the
/// PreparedGraph (the dataset cache hands out shared_ptr ownership, so an
/// in-flight run keeps its dataset alive across an eviction).
///
//===----------------------------------------------------------------------===//

#ifndef CFV_GRAPH_PREPARED_H
#define CFV_GRAPH_PREPARED_H

#include "graph/Graph.h"
#include "graph/MappedCsr.h"
#include "inspector/Tiling.h"
#include "pattern/Pattern.h"

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>

namespace cfv {
namespace graph {

/// Version of the derived-artifact formats (CSR / tiling / pattern
/// classification) this binary produces and understands.
/// service::DatasetCache folds it into its keys, so bumping it here
/// orphans every cached artifact built under the old layout instead of
/// serving it misinterpreted.  Bump whenever any derived artifact
/// changes format or semantics; the pattern schema contributes its own
/// component so classifier-threshold changes invalidate too.
/// (3: the out-of-core CFVM mapped-CSR artifact joined the family.)
constexpr int kDerivedSchemaVersion = 3 * 100 + pattern::kPatternSchemaVersion;

class PreparedGraph {
public:
  explicit PreparedGraph(EdgeList G);

  /// The loaded edge list (immutable).
  const EdgeList &edges() const { return Edges; }

  /// Memoized CSR adjacency (graph::buildCsr on first use).
  const Csr &csr() const;

  /// Memoized out-degree array (graph::outDegrees on first use).
  const AlignedVector<int32_t> &outDegrees() const;

  /// Memoized destination-block tiling for \p BlockBits (one schedule per
  /// distinct block size; apps overwhelmingly use the default 16).  When
  /// the pattern subsystem is not disabled (CFV_PATTERN != off), the
  /// returned schedule carries its per-tile classification
  /// (TilingResult::Pattern), attached before publication so concurrent
  /// readers never observe it half-built.
  const inspector::TilingResult &tiling(int BlockBits) const;

  /// Memoized out-of-core backing (graph::MappedCsr): the edge list is
  /// serialized once to a CFVM file under CFV_MAP_DIR (default /tmp),
  /// mapped, and the file unlinked immediately -- the mapping keeps it
  /// alive, and nothing leaks on crash.  Returns nullptr when the write
  /// or map fails (callers stay on the in-core path); the failure is
  /// memoized too, so a broken CFV_MAP_DIR costs one attempt per
  /// dataset, not one per request.
  std::shared_ptr<const MappedCsr> mappedCsr() const;

  /// Memoized pattern classification of the *flat* destination stream in
  /// pseudo-tiles (pattern::classifyStream), for stream-shaped consumers
  /// that reduce by Src rather than a tiled order (SpMV COO reduces into
  /// rows): classifies Edges.Src.  Built even when CFV_PATTERN=off --
  /// callers that ask for it want it.
  const pattern::PatternResult &streamPattern() const;

  /// Resident bytes: edge list plus every artifact built so far.  Grows
  /// as lazy artifacts materialize; the dataset cache re-reads it on each
  /// access so the byte budget covers derived schedules, not just raw
  /// edges.
  int64_t approxBytes() const {
    return BaseBytes + ArtifactBytes.load(std::memory_order_relaxed);
  }

  PreparedGraph(const PreparedGraph &) = delete;
  PreparedGraph &operator=(const PreparedGraph &) = delete;

private:
  EdgeList Edges;
  int64_t BaseBytes = 0;

  mutable std::mutex Mu; // guards lazy construction below
  mutable std::unique_ptr<Csr> CsrPtr;
  mutable std::unique_ptr<AlignedVector<int32_t>> Degrees;
  mutable std::map<int, std::unique_ptr<inspector::TilingResult>> Tilings;
  mutable std::unique_ptr<pattern::PatternResult> StreamPattern;
  mutable std::shared_ptr<const MappedCsr> Mapped;
  mutable bool MappedTried = false;
  mutable std::atomic<int64_t> ArtifactBytes{0};
};

} // namespace graph
} // namespace cfv

#endif // CFV_GRAPH_PREPARED_H
