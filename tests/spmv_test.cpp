//===- tests/spmv_test.cpp - Sparse matrix-vector multiply -----------------===//
//
// Part of the cfv project: reproduction of Jiang & Agrawal, CGO 2018.
//
//===----------------------------------------------------------------------===//

#include "apps/spmv/Spmv.h"

#include "graph/Generators.h"
#include "util/Prng.h"

#include "gtest/gtest.h"

#include <cmath>

using namespace cfv;
using namespace cfv::apps;
using namespace cfv::graph;

namespace {

constexpr SpmvVersion kAllVersions[] = {
    SpmvVersion::CooSerial, SpmvVersion::CsrSerial, SpmvVersion::CooMask,
    SpmvVersion::CooInvec, SpmvVersion::CooGrouping};

/// Dense reference y = A*x in double precision.
AlignedVector<double> denseReference(const EdgeList &A,
                                     const AlignedVector<float> &X) {
  AlignedVector<double> Y(A.NumNodes, 0.0);
  for (int64_t E = 0; E < A.numEdges(); ++E)
    Y[A.Src[E]] += static_cast<double>(A.Weight[E]) * X[A.Dst[E]];
  return Y;
}

AlignedVector<float> randomX(int32_t N, uint64_t Seed) {
  Xoshiro256 Rng(Seed);
  AlignedVector<float> X(N);
  for (float &V : X)
    V = Rng.nextFloat() - 0.5f;
  return X;
}

} // namespace

class SpmvVersions : public ::testing::TestWithParam<SpmvVersion> {};

TEST_P(SpmvVersions, MatchesDenseReferenceOnSkewedMatrix) {
  const EdgeList A = genRmat(9, 8000, 0x5A, 4.0f);
  const auto X = randomX(A.NumNodes, 1);
  const auto Want = denseReference(A, X);
  const SpmvResult R = runSpmv(A, X.data(), GetParam());
  for (int32_t V = 0; V < A.NumNodes; ++V)
    ASSERT_NEAR(R.Y[V], Want[V], 1e-3 + 1e-4 * std::fabs(Want[V]))
        << versionName(GetParam()) << " row " << V;
}

TEST_P(SpmvVersions, MatchesDenseReferenceOnClusteredMatrix) {
  const EdgeList A = genClustered(9, 6000, 0x5B, 8, 0.05, 4.0f);
  const auto X = randomX(A.NumNodes, 2);
  const auto Want = denseReference(A, X);
  const SpmvResult R = runSpmv(A, X.data(), GetParam());
  for (int32_t V = 0; V < A.NumNodes; ++V)
    ASSERT_NEAR(R.Y[V], Want[V], 1e-3 + 1e-4 * std::fabs(Want[V]));
}

TEST_P(SpmvVersions, RepeatsAccumulate) {
  const EdgeList A = genUniform(6, 300, 0x5C, 2.0f);
  const auto X = randomX(A.NumNodes, 3);
  const auto Want = denseReference(A, X);
  const SpmvResult R = runSpmv(A, X.data(), GetParam(), /*Repeats=*/3);
  for (int32_t V = 0; V < A.NumNodes; ++V)
    ASSERT_NEAR(R.Y[V], 3.0 * Want[V], 1e-3 + 3e-4 * std::fabs(Want[V]));
}

TEST_P(SpmvVersions, TinyMatricesAndTails) {
  for (const int64_t Nnz : {1, 15, 16, 17}) {
    const EdgeList A = genUniform(4, Nnz, static_cast<uint64_t>(Nnz), 2.0f);
    const auto X = randomX(A.NumNodes, 4);
    const auto Want = denseReference(A, X);
    const SpmvResult R = runSpmv(A, X.data(), GetParam());
    for (int32_t V = 0; V < A.NumNodes; ++V)
      ASSERT_NEAR(R.Y[V], Want[V], 1e-4) << "nnz " << Nnz;
  }
}

INSTANTIATE_TEST_SUITE_P(AllVersions, SpmvVersions,
                         ::testing::ValuesIn(kAllVersions),
                         [](const auto &Info) {
                           return versionName(Info.param);
                         });

TEST(Spmv, HotRowMatrixStressesConflicts) {
  // Every nonzero lands in row 0.
  EdgeList A;
  A.NumNodes = 32;
  Xoshiro256 Rng(0x5D);
  for (int E = 0; E < 333; ++E) {
    A.Src.push_back(0);
    A.Dst.push_back(static_cast<int32_t>(Rng.nextBounded(32)));
    A.Weight.push_back(1.0f);
  }
  const auto X = randomX(32, 5);
  const auto Want = denseReference(A, X);
  for (const SpmvVersion V : kAllVersions) {
    const SpmvResult R = runSpmv(A, X.data(), V);
    ASSERT_NEAR(R.Y[0], Want[0], 1e-2) << versionName(V);
  }
}

TEST(Spmv, StatsReported) {
  const EdgeList A = genClustered(9, 6000, 0x5E, 4, 0.05, 4.0f);
  const auto X = randomX(A.NumNodes, 6);
  const SpmvResult Mask = runSpmv(A, X.data(), SpmvVersion::CooMask);
  EXPECT_LT(Mask.SimdUtil, 1.0) << "clustered rows must conflict";
  const SpmvResult Invec = runSpmv(A, X.data(), SpmvVersion::CooInvec);
  EXPECT_GT(Invec.MeanD1, 0.5);
  const SpmvResult Grp = runSpmv(A, X.data(), SpmvVersion::CooGrouping);
  EXPECT_GT(Grp.PrepSeconds, 0.0);
}
