//===- examples/fp64_reduction.cpp - 64-bit lanes (vpconflictq) -----------===//
//
// Part of the cfv project: reproduction of Jiang & Agrawal, CGO 2018.
//
//===----------------------------------------------------------------------===//
//
// The paper works with 32-bit elements (16 lanes); this library extends
// in-vector reduction to 64-bit data -- 8 lanes of double / int64_t, with
// conflicts detected by vpconflictq.  The example accumulates a
// double-precision Kahan-free histogram whose values would lose digits
// in float, and cross-checks the fp64 PageRank application.
//
// Build & run:  ./examples/fp64_reduction
//
//===----------------------------------------------------------------------===//

#include "apps/pagerank/PageRank64.h"
#include "core/Api.h"
#include "graph/Generators.h"
#include "util/Prng.h"

#include <cmath>
#include <cstdio>

using namespace cfv;

// Native 64-bit lane geometry: 8 on the 512-bit-shaped backends, 4 on
// the AVX2 tier (simd::kLanes64 is the widest shape, not this build's).
constexpr int kL64 = vlong::kLanes;
constexpr mask kFull64 = simd::BackendTraits<simd::NativeBackend>::kFullMask64;

int main() {
  // Part 1: double-precision scatter-add with duplicate indices.  The
  // per-item values differ by 12 orders of magnitude -- float would
  // swallow the small ones entirely.
  constexpr int64_t N = 64 * 1024;
  constexpr int32_t Buckets = 16;
  Xoshiro256 Rng(64);
  AlignedVector<int64_t> Idx(N);
  AlignedVector<double> Val(N);
  AlignedVector<double> ExactSum(Buckets, 0.0);
  for (int64_t I = 0; I < N; ++I) {
    Idx[I] = static_cast<int64_t>(Rng.nextBounded(Buckets));
    Val[I] = (I % 2 == 0) ? 1.0e9 : 1.0e-3;
    ExactSum[Idx[I]] += Val[I];
  }

  AlignedVector<double> Hist(Buckets, 0.0);
  for (int64_t I = 0; I < N; I += kL64) {
    const vlong VIdx = vlong::load(Idx.data() + I);
    vdouble VVal = vdouble::load(Val.data() + I);
    const mask Safe = invec_add(kFull64, VIdx, VVal);
    core::accumulateScatter<simd::OpAdd>(Safe, VIdx, VVal, Hist.data());
  }

  double MaxRel = 0.0;
  for (int32_t B = 0; B < Buckets; ++B)
    MaxRel = std::max(MaxRel,
                      std::fabs(Hist[B] - ExactSum[B]) / ExactSum[B]);
  std::printf("fp64 histogram over %lld mixed-magnitude items: max "
              "relative error vs exact %.2e\n",
              static_cast<long long>(N), MaxRel);

  // Part 2: double-precision PageRank on the 8-lane path.
  const graph::EdgeList G = graph::genRmat(15, 500000, 7);
  const apps::PageRank64Result Serial =
      apps::runPageRank64(G, apps::Pr64Version::Serial);
  const apps::PageRank64Result Invec =
      apps::runPageRank64(G, apps::Pr64Version::Invec);
  double MaxDiff = 0.0;
  for (std::size_t V = 0; V < Serial.Rank.size(); ++V)
    MaxDiff = std::max(MaxDiff, std::fabs(Serial.Rank[V] - Invec.Rank[V]));
  std::printf("fp64 PageRank (%d vertices, %lld edges): serial %.3fs, "
              "invec %.3fs, max |diff| %.2e\n",
              G.NumNodes, static_cast<long long>(G.numEdges()),
              Serial.ComputeSeconds, Invec.ComputeSeconds, MaxDiff);
  return MaxRel < 1e-9 && MaxDiff < 1e-9 ? 0 : 1;
}
