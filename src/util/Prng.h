//===- util/Prng.h - Deterministic pseudo-random generators -----*- C++ -*-===//
//
// Part of the cfv project (see AlignedAlloc.h for the project banner).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small, fast, deterministic PRNGs used by the workload generators and by
/// the property-based tests.  Determinism matters: every experiment in the
/// paper reproduction must generate the identical input when re-run, so we
/// avoid std::random_device and the unspecified distributions of <random>.
///
//===----------------------------------------------------------------------===//

#ifndef CFV_UTIL_PRNG_H
#define CFV_UTIL_PRNG_H

#include <cassert>
#include <cstdint>

namespace cfv {

/// SplitMix64: tiny generator, used for seeding and cheap streams.
class SplitMix64 {
public:
  explicit SplitMix64(uint64_t Seed) : State(Seed) {}

  uint64_t next() {
    uint64_t Z = (State += 0x9e3779b97f4a7c15ULL);
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
    return Z ^ (Z >> 31);
  }

private:
  uint64_t State;
};

/// xoshiro256**: the main workhorse generator.
class Xoshiro256 {
public:
  explicit Xoshiro256(uint64_t Seed) {
    SplitMix64 SM(Seed);
    for (uint64_t &W : S)
      W = SM.next();
  }

  uint64_t next() {
    const uint64_t Result = rotl(S[1] * 5, 7) * 9;
    const uint64_t T = S[1] << 17;
    S[2] ^= S[0];
    S[3] ^= S[1];
    S[1] ^= S[2];
    S[0] ^= S[3];
    S[2] ^= T;
    S[3] = rotl(S[3], 45);
    return Result;
  }

  /// Uniform integer in [0, Bound).  \p Bound must be nonzero.
  uint32_t nextBounded(uint32_t Bound) {
    assert(Bound != 0 && "nextBounded requires a nonzero bound");
    // Lemire's multiply-shift rejection-free approximation is fine here:
    // the bias is < 2^-32 which is irrelevant for workload generation.
    return static_cast<uint32_t>(
        (static_cast<uint64_t>(static_cast<uint32_t>(next())) * Bound) >> 32);
  }

  /// Uniform float in [0, 1).
  float nextFloat() {
    return static_cast<float>(next() >> 40) * 0x1.0p-24f;
  }

  /// Uniform double in [0, 1).
  double nextDouble() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

private:
  static uint64_t rotl(uint64_t X, int K) {
    return (X << K) | (X >> (64 - K));
  }

  uint64_t S[4];
};

} // namespace cfv

#endif // CFV_UTIL_PRNG_H
