//===- examples/quickstart.cpp - In-vector reduction in 60 lines ----------===//
//
// Part of the cfv project: reproduction of Jiang & Agrawal, CGO 2018.
//
//===----------------------------------------------------------------------===//
//
// The smallest useful program: build a histogram with conflicting SIMD
// updates resolved by in-vector reduction.  A plain full-width scatter
// would lose updates whenever two lanes hit the same bucket; invec_add
// merges those lanes in-register first (the paper's core idea), after
// which the returned mask marks lanes that are safe to scatter.
//
// Build & run:  ./examples/quickstart
//
//===----------------------------------------------------------------------===//

#include "core/Api.h"
#include "simd/Traits.h"
#include "util/AlignedAlloc.h"
#include "util/Prng.h"

#include <cstdio>

using namespace cfv;

// The facade's width follows the build's fastest backend (8 or 16 lanes).
constexpr int kLanes = simd::NativeBackend::kLanes;
constexpr mask kFull = simd::BackendTraits<simd::NativeBackend>::kFullMask;

int main() {
  // 4096 random items falling into 8 buckets: every vector is
  // guaranteed to carry many conflicting bucket indices.
  constexpr int64_t N = 4096;
  constexpr int32_t Buckets = 8;
  Xoshiro256 Rng(2018);
  AlignedVector<int32_t> Items(N);
  for (int32_t &X : Items)
    X = static_cast<int32_t>(Rng.nextBounded(Buckets));

  AlignedVector<float> Histogram(Buckets, 0.0f);

  for (int64_t I = 0; I < N; I += kLanes) {
    const vint Idx = vint::load(Items.data() + I);
    vfloat Ones = vfloat::broadcast(1.0f);

    // Merge duplicate buckets inside the register; Safe marks the lanes
    // holding the per-bucket partial sums (all distinct indices).
    const mask Safe = invec_add(kFull, Idx, Ones);

    // Read-modify-write those lanes without any conflict.
    core::accumulateScatter<simd::OpAdd>(Safe, Idx, Ones,
                                         Histogram.data());
  }

  std::printf("histogram of %lld items over %d buckets:\n",
              static_cast<long long>(N), Buckets);
  float Total = 0.0f;
  for (int32_t B = 0; B < Buckets; ++B) {
    std::printf("  bucket %d: %6.0f\n", B, Histogram[B]);
    Total += Histogram[B];
  }
  std::printf("  total:    %6.0f (expected %lld)\n", Total,
              static_cast<long long>(N));
  return Total == static_cast<float>(N) ? 0 : 1;
}
