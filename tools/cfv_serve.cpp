//===- tools/cfv_serve.cpp - Long-lived NDJSON serving front-end ----------===//
//
// Part of the cfv project: reproduction of Jiang & Agrawal, CGO 2018.
//
//===----------------------------------------------------------------------===//
//
// A long-lived front-end over the serving layer (src/service/): reads one
// JSON request per line from stdin (or a TCP client with --port), answers
// one JSON response per line on stdout, in submission order.  Datasets
// and their inspector schedules are cached across requests, so repeated
// requests against one dataset skip both the load and the inspector --
// the cross-request amortization argument of the serving layer.
//
//   $ echo '{"app":"pagerank","dataset":"higgs-twitter-sim"}' | cfv_serve
//   {"ok":true,"app":"pagerank","version":"tiling_and_invec",...}
//
// Protocol:
//   {"app":"pagerank","dataset":"higgs-twitter-sim","version":"invec",
//    "iters":10,"threads":2,"source":0,"scale":1.0,"timeout_ms":500,
//    "id":"r1"}                   -> one response line, same "id"
//   {"cmd":"stats"}               -> cache + scheduler counters plus the
//                                    merged metrics registry (answered
//                                    immediately, even mid-load)
//   {"cmd":"metrics"}             -> Prometheus text exposition, JSON-
//                                    wrapped in {"prometheus":"..."}
//   {"cmd":"shutdown"}            -> drains and exits 0
//   GET <path> ...                -> raw HTTP/1.0 Prometheus scrape on
//                                    the same port (answers and closes)
//   malformed line                -> structured parse_error response;
//                                    the server keeps serving
//
// Responses carry the result digest (checksum) plus latency telemetry:
// queue_seconds, load_seconds (0 exactly on a cache hit), prep_seconds,
// kernel_seconds, simd_util, mean_d1, cache_hit.
//
//===----------------------------------------------------------------------===//

#include "net/Server.h"
#include "obs/Metrics.h"
#include "resilience/Fault.h"
#include "service/NetIo.h"
#include "service/Protocol.h"
#include "service/Service.h"
#include "util/Env.h"

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <future>
#include <string>

#if defined(__unix__) || defined(__APPLE__)
#define CFV_SERVE_HAVE_TCP 1
#include <csignal>
#include <poll.h>
#include <unistd.h>
#else
#define CFV_SERVE_HAVE_TCP 0
#endif

using namespace cfv;

namespace {

#if CFV_SERVE_HAVE_TCP
/// SIGTERM/SIGINT request a graceful drain: stop admitting, finish (or
/// structured-fail) everything in flight, flush metrics, exit 0.
std::atomic<bool> DrainRequested{false};

void onDrainSignal(int) { DrainRequested.store(true); }

void installSignalHandlers() {
  service::netio::ignoreSigpipe(); // client disconnects are EPIPE, not death
  struct sigaction SA;
  std::memset(&SA, 0, sizeof(SA));
  SA.sa_handler = onDrainSignal;
  sigemptyset(&SA.sa_mask);
  SA.sa_flags = 0; // deliberately no SA_RESTART: poll/accept must EINTR
  ::sigaction(SIGTERM, &SA, nullptr);
  ::sigaction(SIGINT, &SA, nullptr);
}

bool drainRequested() { return DrainRequested.load(); }
#else
void installSignalHandlers() {}
bool drainRequested() { return false; }
#endif

[[noreturn]] void usage(int Code) {
  std::fprintf(
      Code ? stderr : stdout,
      "usage: cfv_serve [options]\n"
      "\n"
      "Reads newline-delimited JSON requests from stdin and writes one\n"
      "JSON response per line to stdout, in submission order.\n"
      "\n"
      "options:\n"
      "  --queue-depth <n>    admission-control queue bound (default 64);\n"
      "                       a full queue answers {\"ok\":false,\n"
      "                       \"error\":\"unavailable\"} immediately\n"
      "  --workers <n>        scheduler worker threads (default 1; each\n"
      "                       request still parallelizes internally via\n"
      "                       --threads / CFV_THREADS)\n"
      "  --cache-bytes <n>    dataset cache budget in bytes\n"
      "                       (default $CFV_CACHE_BYTES, else 256 MiB;\n"
      "                       0 = unlimited)\n"
      "  --port <p>           serve many concurrent TCP clients on port p\n"
      "                       (epoll event loop; 0 = ephemeral port,\n"
      "                       printed to stderr; Linux only)\n"
      "  --shed-queue-pct <n> shed with {\"error\":\"overloaded\"} once the\n"
      "                       queue passes n%% of --queue-depth (default\n"
      "                       $CFV_SHED_QUEUE_PCT, else 100 = off)\n"
      "  --shed-latency-ms <n> shed when observed task latency (EWMA)\n"
      "                       exceeds n ms and a backlog exists (default\n"
      "                       $CFV_SHED_LATENCY_MS, else 0 = off)\n"
      "  --watchdog-ms <n>    fail requests whose worker stalls past n ms\n"
      "                       with a structured error (default\n"
      "                       $CFV_WATCHDOG_MS, else 0 = off)\n"
      "  --faults <spec>      arm the fault injector, e.g.\n"
      "                       io.read_error:p=0.05,cache.alloc_fail:nth=3\n"
      "                       (schedules: always, p=<prob>, nth=<k>,\n"
      "                       burst=<n>@<k>; seeded by CFV_SEED; default\n"
      "                       $CFV_FAULTS)\n"
      "\n"
      "SIGTERM/SIGINT drain gracefully: admission stops, in-flight\n"
      "requests finish (or fail structurally), metrics flush to stderr,\n"
      "exit 0.\n"
      "\n"
      "requests (one JSON object per line):\n"
      "  {\"app\":\"pagerank\",\"dataset\":\"higgs-twitter-sim\"}\n"
      "  {\"app\":\"sssp\",\"file\":\"graph.txt\",\"source\":3,\"id\":\"r7\"}\n"
      "  fields: app (required), version, dataset, file, scale, seed,\n"
      "          source, iters, threads, timeout_ms, id\n"
      "  {\"cmd\":\"stats\"}     cache/scheduler counters + metrics registry\n"
      "                       (answered immediately, even mid-load)\n"
      "  {\"cmd\":\"metrics\"}   Prometheus text, JSON-wrapped\n"
      "  {\"cmd\":\"backends\"}  compiled/available SIMD tiers + selection\n"
      "  {\"cmd\":\"shutdown\"}  drain and exit\n"
      "  GET /metrics ...     HTTP/1.1 Prometheus scrape (with --port;\n"
      "                       /healthz also answers)\n"
      "\n"
      "environment: CFV_BACKEND, CFV_THREADS, CFV_VALIDATE, CFV_SCALE,\n"
      "             CFV_CACHE_BYTES, CFV_MAX_CONNS, CFV_BATCH_WINDOW_US,\n"
      "             CFV_LISTEN_BACKLOG, CFV_IDLE_TIMEOUT_MS (see README)\n");
  std::exit(Code);
}

struct Options {
  int QueueDepth = 64;
  int Workers = 1;
  int64_t CacheBytes = -1; ///< defer to CFV_CACHE_BYTES
  int Port = -1;           ///< -1 = stdin/stdout; 0 = ephemeral TCP
  int ShedQueuePct = -1;   ///< defer to CFV_SHED_QUEUE_PCT
  double ShedLatencyMs = -1.0; ///< defer to CFV_SHED_LATENCY_MS
  double WatchdogMs = -1.0;    ///< defer to CFV_WATCHDOG_MS
  std::string Faults;      ///< fault-injector spec; "" = CFV_FAULTS
};

long long parseIntFlag(const std::string &Flag, const char *Text) {
  char *End = nullptr;
  errno = 0;
  const long long V = std::strtoll(Text, &End, 0);
  if (End == Text || *End != '\0' || errno == ERANGE) {
    std::fprintf(stderr, "error: %s needs an integer, got '%s'\n",
                 Flag.c_str(), Text);
    usage(2);
  }
  return V;
}

Options parseArgs(int Argc, char **Argv) {
  Options O;
  for (int I = 1; I < Argc; ++I) {
    const std::string Arg = Argv[I];
    auto Value = [&]() -> const char * {
      if (I + 1 >= Argc) {
        std::fprintf(stderr, "error: %s needs a value\n", Arg.c_str());
        usage(2);
      }
      return Argv[++I];
    };
    if (Arg == "--queue-depth") {
      const long long N = parseIntFlag(Arg, Value());
      if (N < 1 || N > 1 << 20) {
        std::fprintf(stderr, "error: --queue-depth needs [1, 2^20]\n");
        usage(2);
      }
      O.QueueDepth = static_cast<int>(N);
    } else if (Arg == "--workers") {
      const long long N = parseIntFlag(Arg, Value());
      if (N < 1 || N > 256) {
        std::fprintf(stderr, "error: --workers needs [1, 256]\n");
        usage(2);
      }
      O.Workers = static_cast<int>(N);
    } else if (Arg == "--cache-bytes") {
      const long long N = parseIntFlag(Arg, Value());
      if (N < 0) {
        std::fprintf(stderr, "error: --cache-bytes needs >= 0\n");
        usage(2);
      }
      O.CacheBytes = N;
    } else if (Arg == "--port") {
      const long long N = parseIntFlag(Arg, Value());
      if (N < 0 || N > 65535) {
        std::fprintf(stderr, "error: --port needs [0, 65535]\n");
        usage(2);
      }
      O.Port = static_cast<int>(N);
    } else if (Arg == "--shed-queue-pct") {
      const long long N = parseIntFlag(Arg, Value());
      if (N < 1 || N > 100) {
        std::fprintf(stderr, "error: --shed-queue-pct needs [1, 100]\n");
        usage(2);
      }
      O.ShedQueuePct = static_cast<int>(N);
    } else if (Arg == "--shed-latency-ms") {
      O.ShedLatencyMs = static_cast<double>(parseIntFlag(Arg, Value()));
    } else if (Arg == "--watchdog-ms") {
      O.WatchdogMs = static_cast<double>(parseIntFlag(Arg, Value()));
    } else if (Arg == "--faults") {
      O.Faults = Value();
    } else if (Arg == "--help" || Arg == "-h")
      usage(0);
    else {
      std::fprintf(stderr, "error: unknown option '%s'\n", Arg.c_str());
      usage(2);
    }
  }
  return O;
}

// The protocol renderers (statsJson, metricsJson, backendsJson,
// errorJson) live in service/Protocol.cpp, shared with net::Server so
// the stdin session and the event-loop front-end cannot drift.

/// Serves one line-oriented stream.  Returns true when a shutdown
/// command ended the session (as opposed to EOF).
///
/// Responses come back in submission order: each admitted request's
/// future is appended to a deque, and completed fronts are flushed as
/// they finish -- on POSIX the input wait is a poll() loop that ticks
/// flushReady(), so an interactive client gets each answer without
/// having to send another line first (and everything drains at
/// shutdown/EOF).  Parse errors and unknown commands answer inline,
/// after everything already pending, so request ordering stays exact.
/// The introspection verbs (stats, metrics) deliberately do NOT drain
/// the queue: they answer immediately so an operator can observe a
/// server mid-load, which is the whole point of scraping a live
/// system.  A raw HTTP GET line turns the stream into a one-shot
/// Prometheus scrape.
class Session {
public:
  Session(service::Service &S, std::FILE *In, std::FILE *Out)
      : Svc(S), In(In), Out(Out) {}

  bool run() {
    std::string Line;
    while (readLine(Line)) {
      // service::classifyLine is the shared protocol front-end; the
      // verify harness fuzzes the same function (verify/ServeFuzz).
      const service::ClassifiedLine C = service::classifyLine(Line);
      switch (C.Kind) {
      case service::LineKind::Empty:
        continue;
      case service::LineKind::HttpGet:
        serveHttpScrape();
        return false;
      case service::LineKind::Malformed:
      case service::LineKind::UnknownCmd:
      case service::LineKind::BadRequest:
        // A bad line is a request-level failure, not a server failure:
        // answer it (after everything already pending) and keep serving.
        flushAll();
        writeLine(service::errorJson(C.Id, C.Error));
        continue;
      case service::LineKind::Shutdown:
        flushAll();
        writeLine("{\"ok\":true,\"bye\":true}");
        return true;
      case service::LineKind::Stats:
        flushReady(); // no drain: stats must answer mid-load
        writeLine(service::statsJson(Svc));
        continue;
      case service::LineKind::Metrics:
        flushReady();
        writeLine(service::metricsJson());
        continue;
      case service::LineKind::Backends:
        flushReady(); // introspection: answer immediately, mid-load too
        writeLine(service::backendsJson());
        continue;
      case service::LineKind::Request:
        Pending.push_back(Svc.submit(C.Request));
        flushReady();
        continue;
      }
    }
    // EOF or drain signal: every admitted request still owes (and gets)
    // its completion -- flushAll consumes all pending futures.
    flushAll();
    return false;
  }

private:
#if CFV_SERVE_HAVE_TCP
  /// Unbuffered poll-driven line reader: while input is quiet, completed
  /// responses flush every tick instead of waiting for the next request
  /// line.  Bypasses the FILE buffer (own Buf) so poll() never sleeps on
  /// data that has already been read.
  bool readLine(std::string &L) {
    L.clear();
    while (true) {
      while (Pos < Buf.size()) {
        const char C = Buf[Pos++];
        if (C == '\n')
          return true;
        L.push_back(C);
      }
      if (drainRequested())
        return false; // graceful drain: stop admitting, run() flushes
      Buf.clear();
      Pos = 0;
      pollfd P;
      P.fd = ::fileno(In);
      P.events = POLLIN;
      P.revents = 0;
      const int R = ::poll(&P, 1, Pending.empty() ? 500 : 50);
      if (R == 0) {
        flushReady();
        continue;
      }
      if (R < 0) {
        if (errno == EINTR)
          continue; // the drain check above sees SIGTERM next pass
        return !L.empty();
      }
      char Tmp[4096];
      const ssize_t N = ::read(::fileno(In), Tmp, sizeof(Tmp));
      if (N <= 0)
        return !L.empty();
      Buf.assign(Tmp, static_cast<std::size_t>(N));
    }
  }
#else
  bool readLine(std::string &L) {
    L.clear();
    int C;
    while ((C = std::fgetc(In)) != EOF) {
      if (C == '\n')
        return true;
      L.push_back(static_cast<char>(C));
    }
    return !L.empty();
  }
#endif

  /// Delivers raw bytes to the client (stdout; the TCP path lives in
  /// net::Server now, with its own backpressure and fault injection).
  void emit(const std::string &Bytes) {
    std::fwrite(Bytes.data(), 1, Bytes.size(), Out);
    std::fflush(Out);
  }

  void writeLine(const std::string &S) { emit(S + "\n"); }

  void flushFront() {
    // get() before the gone-check: the future must be consumed either
    // way so every admitted request completes exactly once.
    writeLine(Pending.front().get().toJson());
    Pending.pop_front();
  }

  void flushReady() {
    while (!Pending.empty() &&
           Pending.front().wait_for(std::chrono::seconds(0)) ==
               std::future_status::ready)
      flushFront();
  }

  void flushAll() {
    while (!Pending.empty())
      flushFront();
  }

  /// Answers a raw HTTP request line with the Prometheus exposition and
  /// closes the stream -- `curl http://127.0.0.1:<port>/metrics` against
  /// a --port server.  Any path serves the same body; request headers
  /// are drained so the response isn't racing the client's send.
  void serveHttpScrape() {
    std::string Header;
    while (readLine(Header) && !Header.empty() && Header != "\r")
      ;
    const std::string Body =
        obs::MetricsRegistry::instance().renderPrometheus();
    char Header2[160];
    std::snprintf(Header2, sizeof(Header2),
                  "HTTP/1.0 200 OK\r\n"
                  "Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n"
                  "Content-Length: %zu\r\n"
                  "Connection: close\r\n"
                  "\r\n",
                  Body.size());
    emit(std::string(Header2) + Body);
  }

  service::Service &Svc;
  std::FILE *In;
  std::FILE *Out;
  std::string Buf; ///< poll-reader input buffer
  std::size_t Pos = 0;
  std::deque<std::future<service::ServeResponse>> Pending;
};

#if defined(__linux__)
/// TCP mode: the epoll event-loop front-end (net::Server) -- many
/// concurrent clients, per-connection pipelining, same-dataset
/// micro-batching, pre-parse admission control, and an HTTP/1.1
/// /metrics + /healthz surface on the same port.
int serveTcp(service::Service &Svc, int Port) {
  net::Server::Config C;
  C.Port = Port;
  C.ShouldDrain = [] { return drainRequested(); };
  net::Server Server(Svc, C);
  const Status S = Server.listen();
  if (!S.ok()) {
    std::fprintf(stderr, "cfv_serve: %s\n", S.toString().c_str());
    return 1;
  }
  std::fprintf(stderr, "cfv_serve: listening on 127.0.0.1:%d\n",
               Server.boundPort());
  return Server.run();
}
#endif

} // namespace

int main(int Argc, char **Argv) {
  const Options O = parseArgs(Argc, Argv);
  installSignalHandlers();

  // --faults overrides the ambient CFV_FAULTS arming (which the
  // injector's first instance() performs on its own).
  if (!O.Faults.empty()) {
    const uint64_t Seed = static_cast<uint64_t>(
        env::intVar("CFV_SEED", 0xCAFEBABELL, INT64_MIN, INT64_MAX));
    const Expected<fault::Plan> P = fault::parsePlan(O.Faults, Seed);
    if (!P.ok()) {
      std::fprintf(stderr, "error: --faults: %s\n",
                   P.status().message().c_str());
      return 2;
    }
    fault::Injector::instance().configure(*P);
  }

  service::Service::Config C;
  C.CacheBytes = O.CacheBytes;
  C.QueueDepth = O.QueueDepth;
  C.Workers = O.Workers;
  C.ShedQueuePct = O.ShedQueuePct;
  C.ShedLatencyMs = O.ShedLatencyMs;
  C.WatchdogMs = O.WatchdogMs;
  service::Service Svc(C);

  int Rc = 0;
  if (O.Port >= 0) {
#if defined(__linux__)
    Rc = serveTcp(Svc, O.Port);
#else
    std::fprintf(stderr, "error: --port is not supported on this platform\n");
    return 2;
#endif
  } else {
    Session(Svc, stdin, stdout).run();
  }

  // Graceful drain epilogue: everything admitted has answered by now
  // (sessions flush their pending futures before returning); drain() is
  // the belt-and-braces barrier, then the final metrics state goes to
  // stderr so a supervisor's last scrape is never lost.
  Svc.drain();
  if (drainRequested())
    std::fprintf(stderr, "cfv_serve: drained on signal; final metrics:\n%s",
                 obs::MetricsRegistry::instance().renderPrometheus().c_str());
  return Rc;
}
