//===- graph/Datasets.h - Named synthetic dataset registry ------*- C++ -*-===//
//
// Part of the cfv project: reproduction of Jiang & Agrawal, CGO 2018.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The registry of synthetic stand-ins for the paper's Table 1 datasets.
/// SNAP graphs cannot be downloaded in this offline environment, so each
/// dataset maps to a generator configuration reproducing its character
/// (degree skew), at a size scaled so the full benchmark suite runs in
/// minutes (multiply with the CFV_SCALE environment variable to grow
/// toward paper-scale inputs).
///
//===----------------------------------------------------------------------===//

#ifndef CFV_GRAPH_DATASETS_H
#define CFV_GRAPH_DATASETS_H

#include "graph/Graph.h"
#include "util/Status.h"

#include <string>
#include <vector>

namespace cfv {
namespace graph {

/// A generated dataset together with the paper-side identity it stands
/// in for (printed by the harnesses next to measured numbers).
struct Dataset {
  std::string Name;      ///< e.g. "higgs-twitter-sim"
  std::string PaperName; ///< e.g. "higgs-twitter"
  std::string PaperDims; ///< Table 1 "Dimensions", e.g. "457K*457K"
  std::string PaperNnz;  ///< Table 1 "NNZ", e.g. "15M"
  EdgeList Edges;
};

/// Names accepted by makeGraphDataset, in Table 1 order.
std::vector<std::string> graphDatasetNames();

/// Builds a named dataset.  \p Scale multiplies the default edge count
/// (1.0 = quick-bench size, clamped to [0.01, 1000]); \p Weighted
/// attaches uniform [1,64) float weights for the path algorithms.
/// Unknown names and out-of-contract scales come back as an error
/// Status naming the accepted values.
Expected<Dataset> makeGraphDataset(const std::string &Name, double Scale,
                                   bool Weighted);

/// Reads the CFV_SCALE environment variable (default 1.0, clamped to
/// [0.01, 1000]); shared by all benchmark harnesses.
double envScale();

} // namespace graph
} // namespace cfv

#endif // CFV_GRAPH_DATASETS_H
