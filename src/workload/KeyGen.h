//===- workload/KeyGen.h - Skewed group-by key generators -------*- C++ -*-===//
//
// Part of the cfv project: reproduction of Jiang & Agrawal, CGO 2018.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The three skewed key distributions of §4.1 (after Cieslewicz & Ross,
/// SIGMOD'10), used by the Figure 13 aggregation sweep:
///
///   heavy-hitter    one key receives 50% of the rows; the remainder are
///                   uniform over the other keys.
///   Zipf            Zipfian with exponent 0.5.
///   moving cluster  keys drawn from a 64-wide window that slides
///                   linearly across the key domain.
///
/// A uniform distribution is included for tests and ablations.  All
/// generators are deterministic in (Seed, N, Cardinality).
///
//===----------------------------------------------------------------------===//

#ifndef CFV_WORKLOAD_KEYGEN_H
#define CFV_WORKLOAD_KEYGEN_H

#include "util/AlignedAlloc.h"

#include <cstdint>

namespace cfv {
namespace workload {

enum class KeyDist { HeavyHitter, Zipf, MovingCluster, Uniform };

/// Paper-facing name ("heavy hitter", "Zipf", "moving cluster").
const char *distName(KeyDist D);

/// Generates \p N keys in [0, Cardinality) under distribution \p D.
AlignedVector<int32_t> genKeys(KeyDist D, int64_t N, int32_t Cardinality,
                               uint64_t Seed);

/// Uniform float aggregation values in [0, 1).
AlignedVector<float> genValues(int64_t N, uint64_t Seed);

} // namespace workload
} // namespace cfv

#endif // CFV_WORKLOAD_KEYGEN_H
