//===- bench/scale_numa.cpp - NUMA sharding + out-of-core contrast --------===//
//
// Part of the cfv project: reproduction of Jiang & Agrawal, CGO 2018.
//
//===----------------------------------------------------------------------===//
//
// Two contrasts the perf gate tracks per revision, one JSON line each
// (scripts/bench_collect.sh folds them into BENCH_<rev>.json):
//
//   part=shard  -- flat chunking vs NUMA-sharded execution at the full
//     thread count.  A synthetic topology (numa::setTopologyForTest)
//     splits the machine's CPUs into 2 and 4 nodes, so the sharded code
//     path -- node-major tile assignment, worker pinning, the two-level
//     merge -- is exercised and timed even on single-node CI hardware.
//     On such hardware the contrast measures overhead (expect ~1.0x);
//     on real multi-socket machines it measures the locality win.
//
//   part=map  -- in-core EdgeList arrays vs the mmap-backed CFVM file
//     (graph::MappedCsr) with a residency budget of a quarter of the
//     backing, so the advisory window actually evicts and re-faults.
//     Measures the streaming overhead of the out-of-core path the same
//     apps take when CFV_MAP_BYTES is set.
//
//===----------------------------------------------------------------------===//

#include "core/Api.h"
#include "core/ParallelEngine.h"
#include "graph/Datasets.h"
#include "graph/Generators.h"
#include "graph/MappedCsr.h"
#include "graph/Prepared.h"
#include "numa/Topology.h"

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

using namespace cfv;

namespace {

/// Splits CPUs 0..Hw-1 into \p Nodes contiguous synthetic nodes.
numa::Topology syntheticNodes(int Hw, int Nodes) {
  numa::Topology T;
  T.NodeCpus.resize(static_cast<size_t>(Nodes));
  for (int C = 0; C < Hw; ++C)
    T.NodeCpus[static_cast<size_t>(C * Nodes / Hw)].push_back(C);
  return T;
}

double runOnce(const char *App, AppRequest R, AppResult *Out = nullptr) {
  const Expected<AppResult> Res = run(R);
  if (!Res.ok()) {
    std::fprintf(stderr, "%s: %s\n", App, Res.status().message().c_str());
    return -1.0;
  }
  if (Out)
    *Out = *Res;
  return Res->ComputeSeconds;
}

/// part=shard: flat vs sharded under synthetic 2/4-node topologies.
void shardContrast(const char *App, const AppRequest &Req, int Threads) {
  AppRequest R = Req;
  R.Options.Threads = Threads;

  R.Options.Numa = core::NumaChoice::Off;
  const double Flat = runOnce(App, R);
  if (Flat < 0.0)
    return;
  std::printf("{\"bench\":\"scale_numa\",\"part\":\"shard\",\"app\":\"%s\","
              "\"numa\":\"off\",\"nodes\":1,\"threads\":%d,"
              "\"compute_seconds\":%.6f}\n",
              App, Threads, Flat);
  std::fflush(stdout);

  for (const int Nodes : {2, 4}) {
    if (Threads < Nodes)
      continue;
    // Synthetic CPU ids 0..Threads-1: on machines with fewer real CPUs
    // the pins fail gracefully (cfv_numa_pin_failures_total) but the
    // sharded assignment and two-level merge still run, so single-node
    // CI hardware exercises and times the code path.
    const numa::Topology T = syntheticNodes(Threads, Nodes);
    numa::setTopologyForTest(&T);
    R.Options.Numa = core::NumaChoice::Auto;
    AppResult Res;
    const double Sharded = runOnce(App, R, &Res);
    numa::setTopologyForTest(nullptr);
    if (Sharded < 0.0)
      return;
    std::printf(
        "{\"bench\":\"scale_numa\",\"part\":\"shard\",\"app\":\"%s\","
        "\"numa\":\"auto\",\"nodes\":%d,\"threads\":%d,"
        "\"compute_seconds\":%.6f,\"speedup\":%.3f}\n",
        App, Res.NumaNodes, Threads, Sharded,
        Sharded > 0.0 ? Flat / Sharded : 0.0);
    std::fflush(stdout);
  }
}

/// part=map: in-core arrays vs the mmap-backed CFVM file under a
/// residency budget that forces the window to evict.
void mapContrast(const char *App, const AppRequest &Req,
                 const graph::PreparedGraph &P, int Threads) {
  AppRequest R = Req;
  R.Options.Threads = Threads;

  const double InCore = runOnce(App, R);
  if (InCore < 0.0)
    return;
  std::printf("{\"bench\":\"scale_numa\",\"part\":\"map\",\"app\":\"%s\","
              "\"map\":\"incore\",\"threads\":%d,"
              "\"compute_seconds\":%.6f}\n",
              App, Threads, InCore);
  std::fflush(stdout);

  const std::shared_ptr<const graph::MappedCsr> M = P.mappedCsr();
  if (!M) {
    std::fprintf(stderr, "%s: mappedCsr unavailable, skipping map leg\n",
                 App);
    return;
  }
  R.Mapped = M.get();
  AppResult Res;
  const double Mapped = runOnce(App, R, &Res);
  if (Mapped < 0.0)
    return;
  std::printf(
      "{\"bench\":\"scale_numa\",\"part\":\"map\",\"app\":\"%s\","
      "\"map\":\"mapped\",\"threads\":%d,\"compute_seconds\":%.6f,"
      "\"used_mapped\":%s,\"window_evictions\":%lld,"
      "\"window_refaults\":%lld,\"speedup\":%.3f}\n",
      App, Threads, Mapped, Res.UsedMappedCsr ? "true" : "false",
      static_cast<long long>(M->windowEvictions()),
      static_cast<long long>(M->windowRefaults()),
      Mapped > 0.0 ? InCore / Mapped : 0.0);
  std::fflush(stdout);
}

} // namespace

int main() {
  const double Scale = graph::envScale();
  std::fprintf(stderr, "workload scale: %.2f (set CFV_SCALE to change)\n",
               Scale);

  graph::EdgeList G = graph::genRmat(
      20, static_cast<int64_t>(4000000 * Scale), 42, /*MaxWeight=*/16.0f);
  const int Hw = core::hardwareThreads();
  // At least 4 workers so the 2- and 4-node synthetic shardings both
  // engage; on smaller machines that oversubscribes, which is fine --
  // the contrast stays apples-to-apples because flat and sharded legs
  // run at the same count.
  const int ShardThreads = Hw < 4 ? 4 : Hw;

  {
    AppRequest R;
    R.App = AppId::PageRank;
    R.Graph = &G;
    R.Options.MaxIterations = 5;
    shardContrast("pagerank", R, ShardThreads);
  }
  {
    AppRequest R;
    R.App = AppId::Sssp;
    R.Graph = &G;
    shardContrast("sssp", R, ShardThreads);
  }
  {
    AppRequest R;
    R.App = AppId::Spmv;
    R.Graph = &G;
    R.Options.MaxIterations = 5;
    shardContrast("spmv", R, ShardThreads);
  }

  // The map contrast serializes the edge list once into a CFVM backing;
  // a quarter-of-total budget guarantees window eviction traffic.  Set
  // before the PreparedGraph first touches mappedCsr() -- the budget is
  // read when the file is opened.
  graph::PreparedGraph P(std::move(G));
  const int64_t Quarter =
      (static_cast<int64_t>(P.edges().numEdges()) * 16) / 4;
  setenv("CFV_MAP_BYTES", std::to_string(Quarter).c_str(), 1);

  for (const int Threads : {1, Hw}) {
    {
      AppRequest R;
      R.App = AppId::PageRank;
      R.Graph = &P.edges();
      R.Options.MaxIterations = 5;
      mapContrast("pagerank", R, P, Threads);
    }
    {
      AppRequest R;
      R.App = AppId::Spmv;
      R.Graph = &P.edges();
      R.Options.MaxIterations = 5;
      mapContrast("spmv", R, P, Threads);
    }
    if (Threads == Hw)
      break; // Hw may be 1; don't emit the same rows twice
  }
  return 0;
}
