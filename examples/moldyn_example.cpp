//===- examples/moldyn_example.cpp - Lennard-Jones molecular dynamics -----===//
//
// Part of the cfv project: reproduction of Jiang & Agrawal, CGO 2018.
//
//===----------------------------------------------------------------------===//
//
// The paper's particle-simulation workload: Lennard-Jones MD where every
// neighbor pair accumulates +F into atom i and -F into atom j -- a double
// irregular reduction and the densest conflict pattern in the evaluation.
// Runs a short simulation with the serial and in-vector force kernels and
// reports energies (physics sanity) and timings.
//
// Build & run:  ./examples/moldyn_example
//
//===----------------------------------------------------------------------===//

#include "apps/moldyn/Moldyn.h"

#include <cstdio>

using namespace cfv;
using namespace cfv::apps;

int main() {
  MoldynOptions O;
  O.Cells = 8; // 2048 atoms
  std::printf("Lennard-Jones MD: %d atoms, cutoff %.1f sigma, dt %.3f\n",
              4 * O.Cells * O.Cells * O.Cells, O.Cutoff, O.TimeStep);

  for (const MdVersion V :
       {MdVersion::TilingSerial, MdVersion::TilingMask,
        MdVersion::TilingInvec}) {
    const MoldynResult R = runMoldyn(O, V, /*Iterations=*/20);
    std::printf("%-22s %6.3fs compute for 20 steps over %lld pairs",
                versionName(V), R.ComputeSeconds,
                static_cast<long long>(R.Pairs));
    if (V == MdVersion::TilingMask)
      std::printf("  (simd_util %.1f%%)", R.SimdUtil * 100.0);
    if (V == MdVersion::TilingInvec)
      std::printf("  (mean D1 %.2f)", R.MeanD1);
    std::printf("\n      energies: kinetic %.1f, potential %.1f\n",
                R.FinalKinetic, R.FinalPotential);
  }
  return 0;
}
