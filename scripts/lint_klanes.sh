#!/usr/bin/env bash
# Fails when in-tree code uses the deprecated global simd::kLanes.
#
# The lane count became a per-backend property when the AVX2 tier landed
# (8 x i32 vs the 16 x i32 scalar/AVX-512 shape).  Algorithm code must
# take its stride from BackendTraits<B>::kLanes and size any
# backend-agnostic buffer with simd::kMaxLanes; the old global alias in
# simd/Backend.h survives one release, [[deprecated]], for out-of-tree
# users only.  This lint keeps new in-tree uses from creeping back in.
#
# Usage: scripts/lint_klanes.sh   (run from anywhere inside the repo)
set -u

cd "$(dirname "$0")/.."

# The definition site (simd/Backend.h) is the single allowed mention.
# `simd::kLanes64` never existed as a global, so the \b boundary plus the
# negative lookahead-style filter below keeps kMaxLanes/kLanes64 legal.
violations=$(grep -rn --include='*.h' --include='*.cpp' \
    -e 'using simd::kLanes\b' \
    -e 'simd::kLanes\b' \
    src tests tools bench examples 2>/dev/null \
  | grep -v 'simd::kLanes64' \
  | grep -v 'simd::kMaxLanes' \
  | grep -v '^src/simd/Backend\.h:')

if [ -n "$violations" ]; then
  echo "error: new uses of the deprecated global simd::kLanes:" >&2
  echo "$violations" >&2
  echo >&2
  echo "Use BackendTraits<B>::kLanes for loop strides and" >&2
  echo "simd::kMaxLanes for backend-agnostic buffer sizes" >&2
  echo "(see src/simd/Backend.h and src/simd/Traits.h)." >&2
  exit 1
fi
echo "lint_klanes: OK (no deprecated simd::kLanes uses)"
