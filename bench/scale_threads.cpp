//===- bench/scale_threads.cpp - Multi-core scaling harness ---------------===//
//
// Part of the cfv project: reproduction of Jiang & Agrawal, CGO 2018.
//
//===----------------------------------------------------------------------===//
//
// Thread-scaling sweep over the unified cfv::run facade: each application
// runs its best SIMD version at 1, 2, 4, ... hardware threads, and one
// JSON object per (app, thread-count) is emitted on stdout -- one line
// each, ready for jq or a plotting script.  The paper's single-core
// claim is that conflict-free vectorization beats scalar code; this
// harness shows how the same kernels scale when the parallel engine
// privatizes their accumulators across cores.
//
//===----------------------------------------------------------------------===//

#include "core/Api.h"
#include "core/Dispatch.h"
#include "core/ParallelEngine.h"
#include "graph/Datasets.h"
#include "graph/Generators.h"
#include "workload/KeyGen.h"

#include <cstdio>
#include <string>
#include <vector>

using namespace cfv;

namespace {

std::vector<int> threadSweep() {
  const int Hw = core::hardwareThreads();
  std::vector<int> Sweep;
  for (int T = 1; T < Hw; T *= 2)
    Sweep.push_back(T);
  Sweep.push_back(Hw);
  return Sweep;
}

void emitJson(const char *App, const AppResult &R, double BaseSeconds) {
  std::printf("{\"app\":\"%s\",\"version\":\"%s\",\"backend\":\"%s\","
              "\"threads\":%d,\"compute_seconds\":%.6f,"
              "\"prep_seconds\":%.6f,\"speedup_vs_1\":%.3f}\n",
              App, R.VersionName.c_str(),
              core::backendName(R.Backend),
              R.Threads, R.ComputeSeconds, R.PrepSeconds,
              R.ComputeSeconds > 0.0 ? BaseSeconds / R.ComputeSeconds : 0.0);
  std::fflush(stdout);
}

/// Runs \p R once per sweep entry, emitting one JSON line each.
void sweep(const char *App, AppRequest R) {
  double BaseSeconds = 0.0;
  for (const int T : threadSweep()) {
    R.Options.Threads = T;
    const Expected<AppResult> Res = run(R);
    if (!Res.ok()) {
      std::fprintf(stderr, "%s: %s\n", App, Res.status().message().c_str());
      return;
    }
    if (T == 1)
      BaseSeconds = Res->ComputeSeconds;
    emitJson(App, *Res, BaseSeconds);
  }
}

} // namespace

int main() {
  const double Scale = graph::envScale();
  std::fprintf(stderr, "workload scale: %.2f (set CFV_SCALE to change)\n",
               Scale);

  const int64_t Rows = static_cast<int64_t>(2000000 * Scale);
  const graph::EdgeList G =
      graph::genRmat(20, static_cast<int64_t>(8000000 * Scale), 42,
                     /*MaxWeight=*/16.0f);
  const auto Keys = workload::genKeys(workload::KeyDist::Zipf, Rows, 4096, 11);
  const auto Vals = workload::genValues(Rows, 12);
  const apps::Mesh M = apps::makeTriangulatedGrid(512, 512, 5);
  AlignedVector<float> U0(M.NumCells, 0.0f);
  U0[0] = 100.0f;

  {
    AppRequest R;
    R.App = AppId::PageRank;
    R.Graph = &G;
    R.Options.MaxIterations = 10;
    sweep("pagerank", R);
  }
  {
    AppRequest R;
    R.App = AppId::Sssp;
    R.Graph = &G;
    sweep("sssp", R);
  }
  {
    AppRequest R;
    R.App = AppId::Moldyn;
    R.Moldyn.Cells = 12;
    R.Options.MaxIterations = 5;
    sweep("moldyn", R);
  }
  {
    AppRequest R;
    R.App = AppId::Agg;
    R.Keys = Keys.data();
    R.Vals = Vals.data();
    R.Rows = Rows;
    R.Cardinality = 4096;
    sweep("agg", R);
  }
  {
    AppRequest R;
    R.App = AppId::Spmv;
    R.Graph = &G;
    R.Options.MaxIterations = 10; // repeats
    sweep("spmv", R);
  }
  {
    AppRequest R;
    R.App = AppId::Mesh;
    R.MeshIn = &M;
    R.U0 = U0.data();
    R.Options.MaxIterations = 50;
    R.Dt = 0.2f;
    sweep("mesh", R);
  }
  return 0;
}
