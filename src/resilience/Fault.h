//===- resilience/Fault.h - Deterministic fault injection -------*- C++ -*-===//
//
// Part of the cfv project: reproduction of Jiang & Agrawal, CGO 2018.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The resilience layer's fault injector: a registry of named fault
/// points threaded through the layers that touch the outside world
/// (graph I/O, the dataset cache, the request scheduler, the parallel
/// engine, the serve front-end).  Each point evaluates a deterministic
/// per-seed schedule, so a chaos run that found a bug replays exactly
/// from its seed: the decision for the k-th evaluation of a point is a
/// pure function of (seed, point, k), independent of thread timing.
///
/// Schedules (one Rule per point):
///   - off          never fires (the default; an unarmed injector costs
///                  one relaxed atomic load per evaluation),
///   - always       fires on every evaluation,
///   - p=<prob>     fires each evaluation with probability p,
///   - nth=<k>      fires exactly once, on the k-th evaluation (1-based),
///   - burst=<n>@<k> fires on evaluations [k, k+n) (1-based).
///
/// Configuration comes from the CFV_FAULTS environment variable or the
/// cfv_serve --faults flag, as a comma-separated list of
/// "<point>:<schedule>" clauses, e.g.
///
///   CFV_FAULTS="io.read_error:p=0.01,cache.alloc_fail:nth=5"
///
/// Layering: util < obs < resilience < everything else -- any layer may
/// consult a fault point.  Compiling with -DCFV_FAULTS=OFF (CMake)
/// reduces fault::fire() to a constant false the optimizer deletes, so
/// production builds carry zero injection overhead.
///
//===----------------------------------------------------------------------===//

#ifndef CFV_RESILIENCE_FAULT_H
#define CFV_RESILIENCE_FAULT_H

#ifndef CFV_FAULTS
#define CFV_FAULTS 1
#endif

#include "util/Status.h"

#include <atomic>
#include <cstdint>
#include <string>

namespace cfv {
namespace fault {

/// Every named fault point in the system.  Adding one: extend the enum,
/// pointName(), and wire fault::fire(Point::...) at the injection site.
enum class Point : int {
  IoReadError,          ///< graph I/O read fails outright
  IoShortRead,          ///< graph I/O stops mid-file (truncated input)
  CacheAllocFail,       ///< dataset load hits memory pressure
  CacheCorruptArtifact, ///< loaded artifact fails its integrity check
  SchedWorkerStall,     ///< a scheduler worker stalls before its task
  KernelSlowTile,       ///< a kernel pass runs pathologically slowly
  ServeConnDrop,        ///< the TCP client vanishes mid-response
  IoMapFail,            ///< mmap of the out-of-core CSR backing fails
};
inline constexpr int kNumPoints = 8;

/// "io.read_error", "cache.alloc_fail", ... (the CFV_FAULTS spelling).
const char *pointName(Point P);

/// Parses a point name; unknown names are an InvalidArgument listing the
/// valid spellings.
Expected<Point> parsePoint(const std::string &Name);

/// One point's schedule.
struct Rule {
  enum class Mode { Off, Always, Probability, Nth, Burst };
  Mode M = Mode::Off;
  double P = 0.0;     ///< Probability mode: chance per evaluation
  uint64_t Nth = 0;   ///< Nth mode: the single 1-based hit that fires
  uint64_t Start = 0; ///< Burst mode: first 1-based hit that fires
  uint64_t Len = 0;   ///< Burst mode: number of consecutive hits
};

/// A full injector configuration: one rule per point plus the seed that
/// makes probability schedules deterministic.
struct Plan {
  Rule Rules[kNumPoints];
  uint64_t Seed = 0;

  bool anyArmed() const {
    for (const Rule &R : Rules)
      if (R.M != Rule::Mode::Off)
        return true;
    return false;
  }
};

/// Parses a CFV_FAULTS-style spec ("point:mode,point:mode") into a Plan.
/// An empty spec is a valid, fully-disarmed plan.
Expected<Plan> parsePlan(const std::string &Spec, uint64_t Seed);

#if CFV_FAULTS

/// The process-wide injector.  configure() swaps in a new plan and
/// resets the per-point evaluation counters; disarm() turns every point
/// off.  The first instance() call arms from the CFV_FAULTS environment
/// variable (seeded by CFV_SEED) so every tool picks up ambient faults
/// without plumbing.
class Injector {
public:
  static Injector &instance();

  void configure(const Plan &P);
  void disarm();

  bool armed() const { return Armed.load(std::memory_order_relaxed); }

  /// Evaluates \p P's schedule; true means the caller must inject its
  /// failure now.  Hot path when disarmed: one relaxed load.
  bool shouldFire(Point P);

  /// Monotonic counters since the last configure(): schedule
  /// evaluations and actual fires of \p P.
  uint64_t evaluated(Point P) const;
  uint64_t fired(Point P) const;
  /// Total fires across every point since the last configure().
  uint64_t totalFired() const;

  Injector(const Injector &) = delete;
  Injector &operator=(const Injector &) = delete;

private:
  Injector();

  std::atomic<bool> Armed{false};
  struct PointState {
    Rule R;
    std::atomic<uint64_t> Evals{0};
    std::atomic<uint64_t> Fires{0};
  };
  PointState Points[kNumPoints];
  uint64_t Seed = 0;
};

/// The injection-site entry point: true when the fault at \p P must be
/// injected now.  Disarmed cost is one relaxed atomic load.
inline bool fire(Point P) {
  Injector &I = Injector::instance();
  if (!I.armed())
    return false;
  return I.shouldFire(P);
}

#else // !CFV_FAULTS

// Compiled-out stubs: fire() is a constant the optimizer deletes, and
// the Injector keeps its surface so tools build unconditionally (a
// configure() on a compiled-out build is a silent no-op).

class Injector {
public:
  static Injector &instance() {
    static Injector I;
    return I;
  }
  void configure(const Plan &) {}
  void disarm() {}
  bool armed() const { return false; }
  bool shouldFire(Point) { return false; }
  uint64_t evaluated(Point) const { return 0; }
  uint64_t fired(Point) const { return 0; }
  uint64_t totalFired() const { return 0; }
};

inline bool fire(Point) { return false; }

#endif // CFV_FAULTS

} // namespace fault
} // namespace cfv

#endif // CFV_RESILIENCE_FAULT_H
