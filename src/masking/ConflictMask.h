//===- masking/ConflictMask.h - Conflict-masking baseline -------*- C++ -*-===//
//
// Part of the cfv project: reproduction of Jiang & Agrawal, CGO 2018.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The conflict-masking approach of Figure 3, the baseline the paper
/// compares against.  A window of B::kLanes stream items is kept in
/// flight; each
/// pass (1) gathers the reduction indices, (2) computes which lanes still
/// need an update, (3) extracts the conflict-free subset of those lanes,
/// (4) lets the application commit exactly those lanes, and (5) refills
/// the committed lanes with fresh stream items.  Lanes whose updates
/// conflict are deferred to the next pass, so SIMD utilization -- and
/// with it performance -- degrades with the input's duplicate density.
///
/// The driver is generic over three callables so every application (graph
/// kernels, Moldyn, aggregation) reuses one audited implementation:
///
///   LoadIdxFn:  (VecI32 Positions, Mask16 Lanes) -> VecI32
///       gathers the reduction index of the stream item at each position.
///   NeedsFn:    (Mask16 Lanes, VecI32 Positions, VecI32 Idx) -> Mask16
///       which of the lanes actually require a write (Figure 3's
///       "compute mtodo"); lanes not selected are consumed without a
///       write.  Pass allLanesNeedUpdate for unconditional reductions.
///   CommitFn:   (Mask16 Safe, VecI32 Positions, VecI32 Idx) -> void
///       performs gather/compute/scatter for the conflict-free lanes.
///
//===----------------------------------------------------------------------===//

#ifndef CFV_MASKING_CONFLICTMASK_H
#define CFV_MASKING_CONFLICTMASK_H

#include "simd/Backend.h"
#include "simd/Conflict.h"
#include "simd/Mask.h"
#include "simd/Vec.h"
#include "util/Stats.h"

#include <cassert>
#include <cstdint>

namespace cfv {
namespace masking {

using simd::Mask16;

/// NeedsFn for unconditional reductions: every in-flight lane writes.
struct AllLanesNeedUpdate {
  template <typename V> Mask16 operator()(Mask16 Lanes, V, V) const {
    return Lanes;
  }
};

/// Runs the Figure-3 conflict-masking loop over a stream of \p N items.
///
/// \p Util, when non-null, accumulates the SIMD utilization the paper
/// reports for the mask versions: committed lanes over total lane slots.
template <typename B, typename LoadIdxFn, typename NeedsFn, typename CommitFn>
void maskedStreamLoop(int64_t N, LoadIdxFn LoadIdx, NeedsFn Needs,
                      CommitFn Commit, SimdUtilCounter *Util = nullptr) {
  using IVec = simd::VecI32<B>;
  constexpr int kWidth = B::kLanes;
  if (N <= 0)
    return;

  // Lane l starts on stream position l; Next is the first unissued item.
  IVec Positions = IVec::iota();
  int64_t Next = kWidth;
  const IVec Limit = IVec::broadcast(
      static_cast<int32_t>(N < INT32_MAX ? N : INT32_MAX));
  Mask16 Active = Positions.lt(Limit);

  while (Active) {
    const IVec Idx = LoadIdx(Positions, Active);
    // Figure 3 line 2: which lanes still need to write.
    const Mask16 Todo = Needs(Active, Positions, Idx);
    const Mask16 Skipped = static_cast<Mask16>(Active & ~Todo);
    // Figure 3 line 3: the conflict-free subset of the writing lanes.
    const Mask16 Safe = simd::conflictFreeSubset(Todo, Idx);
    // Figure 3 lines 4-5: compute and mask-scatter the safe lanes.
    if (Safe)
      Commit(Safe, Positions, Idx);

    const Mask16 Consumed = static_cast<Mask16>(Skipped | Safe);
    assert(Consumed != 0 && "a pass must always consume at least one lane: "
                            "the conflict-free subset of a nonempty Todo is "
                            "nonempty, and an empty Todo skips all lanes");
    // SIMD utilization of the conflict-masked *write* phase: of the lanes
    // that wanted to write this pass, how many could do so conflict free.
    // This is the quantity the input distribution dictates (§2.3) and the
    // one the paper's simd_util annotations track: ~98% for PageRank's
    // mostly-distinct destinations down to ~7-28% under clustered or
    // doubly-conflicting updates.
    if (Util && Todo)
      Util->recordPass(simd::popcount(Safe), simd::popcount(Todo));

    // Figure 3 line 6: refill the consumed lanes with the next items.
    const int Refill = simd::popcount(Consumed);
    IVec Fresh = IVec::broadcast(static_cast<int32_t>(Next)) + IVec::iota();
    Fresh = IVec::expand(Consumed, Fresh);
    Positions = IVec::blend(Consumed, Positions, Fresh);
    Next += Refill;
    Active = Positions.lt(Limit);
  }
}

} // namespace masking
} // namespace cfv

#endif // CFV_MASKING_CONFLICTMASK_H
