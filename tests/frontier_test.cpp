//===- tests/frontier_test.cpp - Frontier set ----------------------------===//
//
// Part of the cfv project: reproduction of Jiang & Agrawal, CGO 2018.
//
//===----------------------------------------------------------------------===//

#include "graph/Frontier.h"

#include "gtest/gtest.h"

using namespace cfv;
using namespace cfv::graph;

TEST(Frontier, StartsEmpty) {
  Frontier F(10);
  EXPECT_TRUE(F.empty());
  EXPECT_EQ(F.size(), 0);
}

TEST(Frontier, AddDeduplicates) {
  Frontier F(10);
  F.add(3);
  F.add(3);
  F.add(7);
  F.add(3);
  EXPECT_EQ(F.size(), 2);
  EXPECT_TRUE(F.contains(3));
  EXPECT_TRUE(F.contains(7));
  EXPECT_FALSE(F.contains(0));
}

TEST(Frontier, FlagsMirrorMembership) {
  Frontier F(8);
  F.add(1);
  F.add(6);
  const int32_t *Flags = F.flags();
  for (int32_t V = 0; V < 8; ++V)
    EXPECT_EQ(Flags[V], (V == 1 || V == 6) ? 1 : 0);
}

TEST(Frontier, ClearResetsEverything) {
  Frontier F(8);
  F.add(2);
  F.add(5);
  F.clear();
  EXPECT_TRUE(F.empty());
  EXPECT_FALSE(F.contains(2));
  EXPECT_EQ(F.flags()[5], 0);
  F.add(2); // reusable after clear
  EXPECT_EQ(F.size(), 1);
}

TEST(Frontier, SwapExchangesContents) {
  Frontier A(8), B(8);
  A.add(1);
  B.add(2);
  B.add(3);
  A.swap(B);
  EXPECT_EQ(A.size(), 2);
  EXPECT_TRUE(A.contains(2));
  EXPECT_EQ(B.size(), 1);
  EXPECT_TRUE(B.contains(1));
}

TEST(Frontier, VerticesPreserveInsertionOrder) {
  Frontier F(16);
  F.add(9);
  F.add(0);
  F.add(4);
  const auto &V = F.vertices();
  ASSERT_EQ(V.size(), 3u);
  EXPECT_EQ(V[0], 9);
  EXPECT_EQ(V[1], 0);
  EXPECT_EQ(V[2], 4);
}
