//===- graph/Io.h - SNAP-format edge-list I/O -------------------*- C++ -*-===//
//
// Part of the cfv project: reproduction of Jiang & Agrawal, CGO 2018.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reading and writing edge lists in the SNAP text format the paper's
/// datasets ship in: '#'-prefixed comment lines followed by one
/// whitespace-separated "src dst [weight]" pair per line.  With network
/// access, the paper's exact higgs-twitter / soc-Pokec / amazon0312
/// inputs can be dropped in and run through every harness in place of
/// the synthetic stand-ins.
///
/// Vertex ids are compacted to [0, NumNodes); the mapping is dense over
/// the ids seen (SNAP files frequently skip ids).  Errors are reported
/// via the returned std::optional -- the library is exception free.
///
//===----------------------------------------------------------------------===//

#ifndef CFV_GRAPH_IO_H
#define CFV_GRAPH_IO_H

#include "graph/Graph.h"

#include <optional>
#include <string>

namespace cfv {
namespace graph {

/// Parses a SNAP edge list from \p Path.  Returns std::nullopt (and, if
/// \p Error is non-null, a diagnostic) on I/O or parse failure.
/// Weighted rows must carry a third column on every edge line.
std::optional<EdgeList> readSnapEdgeList(const std::string &Path,
                                         std::string *Error = nullptr);

/// Writes \p G to \p Path in SNAP format (with a comment header); returns
/// false on I/O failure.
bool writeSnapEdgeList(const std::string &Path, const EdgeList &G);

} // namespace graph
} // namespace cfv

#endif // CFV_GRAPH_IO_H
