//===- simd/Backend.h - SIMD backend selection ------------------*- C++ -*-===//
//
// Part of the cfv project: reproduction of Jiang & Agrawal, CGO 2018.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Backend tags for the multi-width SIMD abstraction.  Every primitive in
/// src/simd and every algorithm in src/core is templated on a backend:
///
///   - backend::Avx512  uses AVX-512F/CD intrinsics, the exact instruction
///     sequences the paper describes (vpconflictd, masked gather/scatter,
///     masked horizontal reductions).  16 x i32 lanes.  Only defined when
///     the translation unit is compiled with AVX-512F and AVX-512CD.
///   - backend::Avx2    uses AVX2 intrinsics over 256-bit vectors (8 x i32
///     lanes).  AVX2 has no vpconflictd; simd/Conflict.h synthesizes the
///     same semantics with a rotate/compare network, and the scatter /
///     compress primitives missing from the ISA are emulated through small
///     stack buffers with the same lane-ordering guarantees.  Only defined
///     when the TU is compiled with AVX2 enabled.
///   - backend::Scalar  is a bit-exact emulation of the same semantics in
///     portable C++.  It documents what each intrinsic does, makes the
///     library usable on any machine, and serves as the differential
///     oracle for the test suite.
///
/// The paper targets 512-bit vectors of 32-bit elements (§3.4: "a SIMD
/// vector can accommodate 16 integers or single-precision floats"); the
/// scalar emulation mirrors that 16-lane shape so it stays the bit-exact
/// oracle for the AVX-512 tier.  Lane counts are per-backend statics —
/// consult BackendTraits<B>::kLanes (simd/Traits.h) from algorithm code,
/// never a global constant.
///
//===----------------------------------------------------------------------===//

#ifndef CFV_SIMD_BACKEND_H
#define CFV_SIMD_BACKEND_H

#if defined(__AVX512F__) && defined(__AVX512CD__)
#define CFV_HAVE_AVX512 1
#else
#define CFV_HAVE_AVX512 0
#endif

#if defined(__AVX2__)
#define CFV_HAVE_AVX2 1
#else
#define CFV_HAVE_AVX2 0
#endif

#if CFV_HAVE_AVX512 || CFV_HAVE_AVX2
#include <immintrin.h>
#endif

namespace cfv {
namespace simd {

/// Upper bound on the 32-bit lane count across every backend this build
/// could select.  Use it to size stack spill buffers that must fit any
/// backend's vector; use BackendTraits<B>::kLanes for loop strides.
inline constexpr int kMaxLanes = 16;

namespace backend {

/// Portable emulation backend; always available.  Mirrors the paper's
/// 512-bit shape: 16 x i32 / 8 x i64.
struct Scalar {
  static constexpr int kLanes = 16;
  static constexpr int kLanes64 = 8;
  static constexpr const char *kName = "scalar";
};

#if CFV_HAVE_AVX2
/// AVX2 backend over 256-bit vectors (requires -mavx2 or equivalent).
/// Conflict detection is synthesized (simd/Conflict.h).
struct Avx2 {
  static constexpr int kLanes = 8;
  static constexpr int kLanes64 = 4;
  static constexpr const char *kName = "avx2";
};
#endif

#if CFV_HAVE_AVX512
/// Native AVX-512 backend (requires -mavx512f -mavx512cd or equivalent).
struct Avx512 {
  static constexpr int kLanes = 16;
  static constexpr int kLanes64 = 8;
  static constexpr const char *kName = "avx512";
};
#endif

} // namespace backend

#if CFV_HAVE_AVX512
/// The fastest backend available in this build.
using NativeBackend = backend::Avx512;
#elif CFV_HAVE_AVX2
using NativeBackend = backend::Avx2;
#else
using NativeBackend = backend::Scalar;
#endif

/// Deprecated: the old global 32-bit lane count, valid only when every
/// backend was 16 lanes wide.  Use BackendTraits<B>::kLanes (per-backend)
/// or kMaxLanes (buffer sizing) instead.  Kept one release for out-of-tree
/// users; scripts/lint_klanes.sh fails CI on new in-tree uses.
[[deprecated("use BackendTraits<B>::kLanes or simd::kMaxLanes")]]
inline constexpr int kLanes = 16;

} // namespace simd
} // namespace cfv

#endif // CFV_SIMD_BACKEND_H
