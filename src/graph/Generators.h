//===- graph/Generators.h - Synthetic graph generators ----------*- C++ -*-===//
//
// Part of the cfv project: reproduction of Jiang & Agrawal, CGO 2018.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic synthetic graph generators standing in for the SNAP
/// datasets the paper evaluates on (not redistributable offline; see
/// DESIGN.md §2).  R-MAT reproduces the heavy-tailed degree distribution
/// of the social graphs (higgs-twitter, soc-Pokec); the uniform generator
/// matches the flat degree profile of amazon0312.  What matters for the
/// paper's phenomena is the collision density of edge destinations inside
/// 16-lane windows, which these distributions span from skewed to flat.
///
//===----------------------------------------------------------------------===//

#ifndef CFV_GRAPH_GENERATORS_H
#define CFV_GRAPH_GENERATORS_H

#include "graph/Graph.h"

#include <cstdint>

namespace cfv {
namespace graph {

/// R-MAT recursive matrix generator (Chakrabarti et al.).  \p ScaleBits
/// gives NumNodes = 2^ScaleBits; quadrant probabilities default to the
/// standard skewed (0.57, 0.19, 0.19, 0.05).  When \p MaxWeight > 0,
/// uniform float weights in [1, MaxWeight) are attached.
EdgeList genRmat(int ScaleBits, int64_t NumEdges, uint64_t Seed,
                 float MaxWeight = 0.0f, double A = 0.57, double B = 0.19,
                 double C = 0.19);

/// Uniform (Erdos-Renyi style) edge sampler over 2^ScaleBits vertices.
EdgeList genUniform(int ScaleBits, int64_t NumEdges, uint64_t Seed,
                    float MaxWeight = 0.0f);

/// Community-locality generator: most edges connect a vertex to a near
/// neighbor (|dst - src| < Window, wrapping), a small fraction are long
/// links.  Models co-purchase graphs like amazon0312, whose tight local
/// clustering -- not degree skew -- is what makes consecutive edges hit
/// the same destinations inside a SIMD vector.
EdgeList genClustered(int ScaleBits, int64_t NumEdges, uint64_t Seed,
                      int32_t Window = 16, double LongLinkFraction = 0.05,
                      float MaxWeight = 0.0f);

} // namespace graph
} // namespace cfv

#endif // CFV_GRAPH_GENERATORS_H
