//===- pattern/Dispatch.h - Class-specialized tile kernels ------*- C++ -*-===//
//
// Part of the cfv project: reproduction of Jiang & Agrawal, CGO 2018.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The executor side of the pattern subsystem: one kernel per TileClass,
/// width-generic over the BackendTraits backends exactly like
/// core/InvecReduce.h.  The app TUs (compiled per ISA variant)
/// instantiate these at their own lane width, so one source serves
/// scalar, AVX2, and AVX-512.
///
/// Per-class cost per vector, against the paper's 2 + 8*D1 (Alg 1) and
/// 7 + 8*D2 (Alg 2):
///
///   ConflictFree   ~2      gather-combine-scatter, zero conflict work
///   Monotone       ~2 + 4*log2(L)   segmented in-register scan; one
///                  scatter lane per run instead of one merge loop
///                  iteration per duplicate lane
///   SmallAlphabet  ~3*A    A compare/reduce folds into a register-
///                  resident accumulator; memory is touched once per
///                  *tile*, not per vector (A = alphabet size <= 16)
///   HotBucket      ~5 + 8*D1'  the dominant target leaves the vector
///                  before Alg 1 runs, so the residual D1' is small
///   General        caller's existing Alg1/Alg2/adaptive path
///
/// Contracts the classifier certifies (pattern/Classify.h) and the
/// kernels assert in debug builds:
///   - kernels walk a tile from its own first element in lane-aligned
///     steps, so every vector sits inside a certified 16-lane window;
///   - the payload callback returns the operator identity in inactive
///     lanes (gather defaults / maskLoad fills already do this);
///   - a sub-range of a tile may be dispatched on the tile's TileInfo
///     (chunk splits): every class predicate is closed under taking
///     contiguous, lane-aligned sub-ranges.
///
//===----------------------------------------------------------------------===//

#ifndef CFV_PATTERN_DISPATCH_H
#define CFV_PATTERN_DISPATCH_H

#include "core/InvecReduce.h"
#include "pattern/Pattern.h"
#include "simd/Mask.h"
#include "simd/Ops.h"
#include "simd/Reduce.h"
#include "simd/Traits.h"
#include "simd/Vec.h"

#include <cassert>
#include <cstdint>

namespace cfv {
namespace pattern {

using simd::Mask16;

/// Minimal sink for the verification pipelines and benches: dense
/// read-modify-write with \p Op.  The apps pass core::FloatSink instead
/// (same commit/add surface, OpAdd).
template <typename Op, typename T> class DenseSink {
public:
  explicit DenseSink(T *Base) : Base(Base) {}

  void add(int32_t I, T V) const {
    Base[I] = Op::template apply<T>(Base[I], V);
  }

  template <typename IV, typename V>
  void commit(Mask16 M, IV Idx, V Data) const {
    core::accumulateScatter<Op>(M, Idx, Data, Base);
  }

private:
  T *Base;
};

namespace detail {

template <typename B> inline Mask16 tileTailMask(int64_t Left) {
  constexpr int kLanes = simd::BackendTraits<B>::kLanes;
  constexpr Mask16 kFull = simd::BackendTraits<B>::kFullMask;
  return Left >= kLanes ? kFull : static_cast<Mask16>((1u << Left) - 1u);
}

} // namespace detail

/// ConflictFree: the classifier certified pairwise-distinct indices in
/// every window, so the per-vector conflict check disappears entirely --
/// the pure gather/compute/scatter the paper's Figure 1 wishes it could
/// emit.
template <typename Op, typename T, typename B, typename PayloadFn,
          typename SinkT>
inline void runTileConflictFree(const int32_t *Idx, int64_t N,
                                PayloadFn &&Payload, const SinkT &Out) {
  using IV = simd::VecI32<B>;
  constexpr int kLanes = simd::BackendTraits<B>::kLanes;
  for (int64_t I = 0; I < N; I += kLanes) {
    const Mask16 Active = detail::tileTailMask<B>(N - I);
    const IV Iv = IV::maskLoad(IV::zero(), Active, Idx + I);
    const auto Vv = Payload(Active, I);
    assert(simd::conflictFreeSubset(Active, Iv) == Active &&
           "tile certified conflict-free but a window has duplicates");
    Out.commit(Active, Iv, Vv);
  }
}

/// Monotone: indices are non-decreasing, so duplicates form contiguous
/// runs.  A segmented Hillis-Steele scan folds each run into its last
/// lane in log2(lanes) shift/blend steps (index equality at distance d
/// implies run membership precisely because the stream is sorted), and
/// only last-occurrence lanes scatter -- one memory touch per run.  Runs
/// spanning vector (or chunk) boundaries stay correct because each piece
/// read-modify-writes the same slot sequentially.
template <typename Op, typename T, typename B, typename PayloadFn,
          typename SinkT>
inline void runTileMonotone(const int32_t *Idx, int64_t N,
                            PayloadFn &&Payload, const SinkT &Out) {
  using IV = simd::VecI32<B>;
  using V = simd::VecForT<T, B>;
  constexpr int kLanes = simd::BackendTraits<B>::kLanes;
  constexpr Mask16 kFull = simd::BackendTraits<B>::kFullMask;
  const V Id = V::broadcast(Op::template identity<T>());
  // Inactive lanes load index -1, which no real target equals, so they
  // can never join a run.
  const IV NoIdx = IV::broadcast(-1);

  for (int64_t I = 0; I < N; I += kLanes) {
    const Mask16 Active = detail::tileTailMask<B>(N - I);
    const IV Iv = IV::maskLoad(NoIdx, Active, Idx + I);
    V Vv = Payload(Active, I);

    for (int D = 1; D < kLanes; D <<= 1) {
      // Lanes >= D receive lane (i - D)'s index/partial via expand.
      const Mask16 Elig = static_cast<Mask16>((kFull << D) & kFull);
      const IV Pidx = IV::expand(Elig, Iv);
      V Pval = V::expand(Elig, Vv);
      // expand zero-fills unselected lanes; blend the operator identity
      // back in so non-additive operators stay correct.
      Pval = V::blend(Elig, Id, Pval);
      const Mask16 Same =
          Iv.maskEq(static_cast<Mask16>(Elig & Active), Pidx);
      Vv = V::blend(Same, Vv, Op::template combine<V>(Vv, Pval));
    }

    // A lane is its run's last occurrence unless its (active) successor
    // carries the same index.  compress with lanes 1.. selected shifts
    // the index vector down one lane; the top lane has no successor.
    const IV Nidx = IV::compress(static_cast<Mask16>(kFull & ~1u), Iv);
    const Mask16 SuccActive = static_cast<Mask16>(Active >> 1);
    const Mask16 NotLast = Iv.maskEq(SuccActive, Nidx);
    const Mask16 Last = static_cast<Mask16>(Active & ~NotLast);
    Out.commit(Last, Iv, Vv);
  }
}

/// SmallAlphabet: at most kMaxAlphabet distinct targets in the tile, so
/// the whole reduction privatizes into a register-resident accumulator
/// row -- one compare + masked horizontal fold per alphabet entry per
/// vector, and a single read-modify-write per entry per *tile*.  Lanes
/// outside the recorded alphabet (possible only on misclassification)
/// fall through Algorithm 1, so the kernel is correct unconditionally.
template <typename Op, typename T, typename B, typename PayloadFn,
          typename SinkT>
inline void runTileSmallAlphabet(const TileInfo &Info, const int32_t *Idx,
                                 int64_t N, PayloadFn &&Payload,
                                 const SinkT &Out) {
  using IV = simd::VecI32<B>;
  using V = simd::VecForT<T, B>;
  constexpr int kLanes = simd::BackendTraits<B>::kLanes;
  const int A = Info.AlphabetSize;
  assert(A > 0 && A <= kMaxAlphabet && "SmallAlphabet tile without alphabet");

  T Acc[kMaxAlphabet];
  IV AlphaVec[kMaxAlphabet];
  for (int K = 0; K < A; ++K) {
    Acc[K] = Op::template identity<T>();
    AlphaVec[K] = IV::broadcast(Info.Alphabet[K]);
  }
  const IV NoIdx = IV::broadcast(-1);

  for (int64_t I = 0; I < N; I += kLanes) {
    const Mask16 Active = detail::tileTailMask<B>(N - I);
    const IV Iv = IV::maskLoad(NoIdx, Active, Idx + I);
    V Vv = Payload(Active, I);
    Mask16 Covered = 0;
    for (int K = 0; K < A; ++K) {
      const Mask16 M = Iv.maskEq(Active, AlphaVec[K]);
      if (!M)
        continue;
      Acc[K] = Op::template apply<T>(Acc[K], simd::maskedReduce<Op>(M, Vv));
      Covered = static_cast<Mask16>(Covered | M);
    }
    const Mask16 Rest = static_cast<Mask16>(Active & ~Covered);
    if (Rest) {
      assert(false && "SmallAlphabet tile touched a target off-alphabet");
      const core::InvecResult IR = core::invecReduce<Op>(Rest, Iv, Vv);
      Out.commit(IR.Ret, Iv, Vv);
    }
  }
  for (int K = 0; K < A; ++K)
    Out.add(Info.Alphabet[K], Acc[K]);
}

/// HotBucket: the dominant target's lanes fold into a scalar
/// accumulator before Algorithm 1 sees the vector, so the merge loop
/// runs on the sparse remainder only (residual D1 near zero for the
/// streams that land here).  Correct for any hot-share -- the split is
/// exact, not statistical.
template <typename Op, typename T, typename B, typename PayloadFn,
          typename SinkT>
inline void runTileHotBucket(const TileInfo &Info, const int32_t *Idx,
                             int64_t N, PayloadFn &&Payload,
                             const SinkT &Out) {
  using IV = simd::VecI32<B>;
  using V = simd::VecForT<T, B>;
  constexpr int kLanes = simd::BackendTraits<B>::kLanes;
  assert(Info.HotIdx >= 0 && "HotBucket tile without a dominant target");

  T HotAcc = Op::template identity<T>();
  const IV Hot = IV::broadcast(Info.HotIdx);
  const IV NoIdx = IV::broadcast(-1);

  for (int64_t I = 0; I < N; I += kLanes) {
    const Mask16 Active = detail::tileTailMask<B>(N - I);
    const IV Iv = IV::maskLoad(NoIdx, Active, Idx + I);
    V Vv = Payload(Active, I);
    const Mask16 HotM = Iv.maskEq(Active, Hot);
    if (HotM)
      HotAcc =
          Op::template apply<T>(HotAcc, simd::maskedReduce<Op>(HotM, Vv));
    const Mask16 Rest = static_cast<Mask16>(Active & ~HotM);
    if (Rest) {
      const core::InvecResult IR = core::invecReduce<Op>(Rest, Iv, Vv);
      Out.commit(IR.Ret, Iv, Vv);
    }
  }
  Out.add(Info.HotIdx, HotAcc);
}

/// Routes one tile (or a lane-aligned sub-range of it) to its class
/// kernel.  Returns false for General -- the caller runs its existing
/// Alg1/Alg2/adaptive path -- and tallies \p Counts either way so the
/// dispatch mix is observable.
template <typename Op, typename T, typename B, typename PayloadFn,
          typename SinkT>
inline bool runTileSpecialized(const TileInfo &Info, const int32_t *Idx,
                               int64_t N, PayloadFn &&Payload,
                               const SinkT &Out,
                               DispatchCounts *Counts = nullptr) {
  constexpr int kLanes = simd::BackendTraits<B>::kLanes;
  if (Counts) {
    const int C = static_cast<int>(Info.Class);
    const int64_t Full = N / kLanes;
    const int Tail = static_cast<int>(N % kLanes);
    Counts->Tiles[C] += 1;
    Counts->Vectors[C] += Full + (Tail ? 1 : 0);
    Counts->Util[C].add(static_cast<unsigned>(kLanes),
                        static_cast<uint64_t>(Full));
    if (Tail)
      Counts->Util[C].add(static_cast<unsigned>(Tail));
    Counts->LaneWidth = kLanes;
  }
  switch (Info.Class) {
  case TileClass::ConflictFree:
    runTileConflictFree<Op, T, B>(Idx, N, Payload, Out);
    return true;
  case TileClass::Monotone:
    runTileMonotone<Op, T, B>(Idx, N, Payload, Out);
    return true;
  case TileClass::SmallAlphabet:
    runTileSmallAlphabet<Op, T, B>(Info, Idx, N, Payload, Out);
    return true;
  case TileClass::HotBucket:
    runTileHotBucket<Op, T, B>(Info, Idx, N, Payload, Out);
    return true;
  case TileClass::General:
    return false;
  }
  return false;
}

} // namespace pattern
} // namespace cfv

#endif // CFV_PATTERN_DISPATCH_H
