//===- tests/io_fuzz_corpus_test.cpp - Deterministic I/O fuzz smoke --------===//
//
// Part of the cfv project: reproduction of Jiang & Agrawal, CGO 2018.
//
//===----------------------------------------------------------------------===//
//
// Not a coverage-guided fuzzer -- a deterministic corpus sweep.  A valid
// SNAP edge list is mutated a few hundred times with an LCG (fixed seed,
// so failures replay exactly) and fed through readSnapEdgeList.  The
// parser's contract under arbitrary bytes is "return ok() or an error
// Status"; any crash, sanitizer report, or hang fails the test run.
//
//===----------------------------------------------------------------------===//

#include "graph/Io.h"

#include "gtest/gtest.h"

#include <cstdint>
#include <cstdio>
#include <string>

using namespace cfv;

namespace {

/// Minimal deterministic generator (no <random> so the byte stream is
/// pinned across standard libraries).
class Lcg {
public:
  explicit Lcg(uint64_t Seed) : State(Seed) {}
  uint64_t next() {
    State = State * 6364136223846793005ULL + 1442695040888963407ULL;
    return State >> 16;
  }
  uint64_t below(uint64_t N) { return next() % N; }

private:
  uint64_t State;
};

std::string validCorpus() {
  std::string S = "# fuzz seed graph\n";
  Lcg Rng(0x5eedULL);
  for (int I = 0; I < 64; ++I) {
    S += std::to_string(Rng.below(100));
    S += '\t';
    S += std::to_string(Rng.below(100));
    S += '\t';
    S += std::to_string(1 + Rng.below(63));
    S += ".5\n";
  }
  return S;
}

/// Writes \p Data to a scratch file and parses it; the assertion is
/// simply that we come back with a definite ok-or-error answer.
void parseBytes(const std::string &Data, const std::string &Tag) {
  const std::string Path =
      ::testing::TempDir() + "cfv_fuzz_" + Tag + ".txt";
  std::FILE *F = std::fopen(Path.c_str(), "wb");
  ASSERT_NE(F, nullptr);
  if (!Data.empty()) {
    ASSERT_EQ(std::fwrite(Data.data(), 1, Data.size(), F), Data.size());
  }
  std::fclose(F);
  const Expected<graph::EdgeList> G = graph::readSnapEdgeList(Path);
  if (G.ok())
    EXPECT_GT(G->NumNodes, 0);
  else
    EXPECT_FALSE(G.status().message().empty());
  std::remove(Path.c_str());
}

} // namespace

TEST(IoFuzzCorpus, SeedParsesClean) {
  parseBytes(validCorpus(), "seed");
}

TEST(IoFuzzCorpus, SingleByteMutationsNeverCrash) {
  const std::string Seed = validCorpus();
  Lcg Rng(0xfa22ULL);
  for (int Case = 0; Case < 200; ++Case) {
    std::string S = Seed;
    S[Rng.below(S.size())] = static_cast<char>(Rng.below(256));
    parseBytes(S, "flip");
  }
}

TEST(IoFuzzCorpus, ChunkSplicesNeverCrash) {
  const std::string Seed = validCorpus();
  Lcg Rng(0xc0deULL);
  for (int Case = 0; Case < 100; ++Case) {
    std::string S = Seed;
    const std::size_t At = Rng.below(S.size());
    switch (Rng.below(3)) {
    case 0: // delete a run of bytes
      S.erase(At, Rng.below(40));
      break;
    case 1: { // insert random bytes (including NULs and newlines)
      std::string Ins;
      for (uint64_t I = 0, N = Rng.below(40); I < N; ++I)
        Ins += static_cast<char>(Rng.below(256));
      S.insert(At, Ins);
      break;
    }
    default: // duplicate a prefix at a random point
      S.insert(At, S.substr(0, Rng.below(S.size())));
      break;
    }
    parseBytes(S, "splice");
  }
}

TEST(IoFuzzCorpus, AdversarialHandWrittenCases) {
  parseBytes("", "empty");
  parseBytes("\n\n\n", "blank");
  parseBytes("# only comments\n# nothing else\n", "comments");
  parseBytes(std::string(4096, 'a'), "longjunk");
  parseBytes(std::string(4096, '\0'), "nuls");
  parseBytes("1 2\n" + std::string(600, ' ') + "3 4\n", "overlong");
  parseBytes("9223372036854775807 9223372036854775807\n", "maxid");
  parseBytes("99999999999999999999 1\n", "overflowid");
  parseBytes("-1 2\n", "negative");
  parseBytes("1 2 3 4\n", "extracol");
  parseBytes("1 2 1e99999\n", "hugeweight");
  parseBytes("1\t2\r\n3\t4\r\n", "crlf");
  parseBytes("1 2 0.5\n3 4\n", "mixedcols");
}
