//===- core/Api.cpp - The unified cfv::run facade -------------------------===//
//
// Part of the cfv project: reproduction of Jiang & Agrawal, CGO 2018.
//
//===----------------------------------------------------------------------===//

#include "core/Api.h"

#include "core/ParallelEngine.h"
#include "graph/MappedCsr.h"
#include "graph/Prepared.h"
#include "numa/Topology.h"
#include "pattern/Classify.h"
#include "obs/Kernel.h"
#include "obs/Trace.h"
#include "util/AlignedAlloc.h"
#include "util/Timer.h"

#include <cmath>
#include <memory>
#include <optional>
#include <utility>

using namespace cfv;

namespace {

constexpr int64_t kMaxCardinality = int64_t(1) << 24;

Status invalid(std::string Msg) {
  return Status::error(ErrorCode::InvalidArgument, std::move(Msg));
}

Status badVersion(AppId App, AppVersion V) {
  const char *Names[] = {"default",     "serial",      "tiling_serial",
                         "grouping",    "mask",        "invec",
                         "bucket_mask", "bucket_invec", "csr_serial"};
  return invalid(std::string("version '") +
                 Names[static_cast<int>(V)] + "' is not available for app '" +
                 appIdName(App) + "'");
}

/// Whether \p R's out-of-core backing is compatible with its graph: same
/// node count, matching or hollow edge list, and weights where the app
/// needs them -- the same condition the apps apply before substituting
/// the mapped pointers.
bool mappedCompatible(const AppRequest &R, bool NeedsWeights) {
  return R.Mapped && R.Graph && R.Mapped->numNodes() == R.Graph->NumNodes &&
         (R.Graph->numEdges() == 0 ||
          R.Graph->numEdges() == R.Mapped->numEdges()) &&
         (!NeedsWeights || R.Mapped->isWeighted());
}

/// Edge count of one full pass: the EdgeList's, or the mapped backing's
/// when the EdgeList is hollow.
int64_t effectiveEdges(const AppRequest &R, bool NeedsWeights) {
  if (R.Graph->numEdges() > 0)
    return R.Graph->numEdges();
  return mappedCompatible(R, NeedsWeights) ? R.Mapped->numEdges() : 0;
}

/// Checks the graph input shared by the graph-consuming apps.
Status checkGraph(const AppRequest &R, bool NeedsWeights) {
  if (!R.Graph)
    return invalid(std::string(appIdName(R.App)) +
                   " requires AppRequest::Graph");
  if (R.Graph->NumNodes <= 0)
    return invalid("graph has no vertices");
  // An edgeless graph vacuously satisfies the weight requirement, and a
  // weighted mapped backing satisfies it on the graph's behalf.
  if (NeedsWeights && R.Graph->numEdges() > 0 && !R.Graph->isWeighted() &&
      !mappedCompatible(R, NeedsWeights))
    return invalid(std::string(appIdName(R.App)) +
                   " requires edge weights on the graph");
  return Status();
}

Expected<apps::PrVersion> mapPageRank(AppVersion V) {
  switch (V) {
  case AppVersion::Serial:
    return apps::PrVersion::NontilingSerial;
  case AppVersion::TilingSerial:
    return apps::PrVersion::TilingSerial;
  case AppVersion::Grouping:
    return apps::PrVersion::TilingGrouping;
  case AppVersion::Mask:
    return apps::PrVersion::TilingMask;
  case AppVersion::Default:
  case AppVersion::Invec:
    return apps::PrVersion::TilingInvec;
  default:
    return badVersion(AppId::PageRank, V);
  }
}

Expected<apps::Pr64Version> mapPageRank64(AppVersion V) {
  switch (V) {
  case AppVersion::Serial:
    return apps::Pr64Version::Serial;
  case AppVersion::Default:
  case AppVersion::Invec:
    return apps::Pr64Version::Invec;
  default:
    return badVersion(AppId::PageRank64, V);
  }
}

Expected<apps::FrVersion> mapFrontier(AppId App, AppVersion V) {
  switch (V) {
  case AppVersion::Serial:
    return apps::FrVersion::NontilingSerial;
  case AppVersion::Mask:
    return apps::FrVersion::NontilingMask;
  case AppVersion::Default:
  case AppVersion::Invec:
    return apps::FrVersion::NontilingInvec;
  case AppVersion::Grouping:
    return apps::FrVersion::TilingGrouping;
  default:
    return badVersion(App, V);
  }
}

Expected<apps::MdVersion> mapMoldyn(AppVersion V) {
  switch (V) {
  case AppVersion::Serial:
  case AppVersion::TilingSerial:
    return apps::MdVersion::TilingSerial;
  case AppVersion::Grouping:
    return apps::MdVersion::TilingGrouping;
  case AppVersion::Mask:
    return apps::MdVersion::TilingMask;
  case AppVersion::Default:
  case AppVersion::Invec:
    return apps::MdVersion::TilingInvec;
  default:
    return badVersion(AppId::Moldyn, V);
  }
}

Expected<apps::AggVersion> mapAgg(AppVersion V) {
  switch (V) {
  case AppVersion::Serial:
    return apps::AggVersion::LinearSerial;
  case AppVersion::Mask:
    return apps::AggVersion::LinearMask;
  case AppVersion::BucketMask:
    return apps::AggVersion::BucketMask;
  case AppVersion::Default:
  case AppVersion::Invec:
    return apps::AggVersion::LinearInvec;
  case AppVersion::BucketInvec:
    return apps::AggVersion::BucketInvec;
  default:
    return badVersion(AppId::Agg, V);
  }
}

Expected<apps::SpmvVersion> mapSpmv(AppVersion V) {
  switch (V) {
  case AppVersion::Serial:
    return apps::SpmvVersion::CooSerial;
  case AppVersion::CsrSerial:
    return apps::SpmvVersion::CsrSerial;
  case AppVersion::Mask:
    return apps::SpmvVersion::CooMask;
  case AppVersion::Default:
  case AppVersion::Invec:
    return apps::SpmvVersion::CooInvec;
  case AppVersion::Grouping:
    return apps::SpmvVersion::CooGrouping;
  default:
    return badVersion(AppId::Spmv, V);
  }
}

Expected<apps::MeshVersion> mapMesh(AppVersion V) {
  switch (V) {
  case AppVersion::Serial:
    return apps::MeshVersion::Serial;
  case AppVersion::Mask:
    return apps::MeshVersion::Mask;
  case AppVersion::Default:
  case AppVersion::Invec:
    return apps::MeshVersion::Invec;
  case AppVersion::Grouping:
    return apps::MeshVersion::Grouping;
  default:
    return badVersion(AppId::Mesh, V);
  }
}

/// Copies the shared RunOptions base into a derived option struct,
/// restoring the app's own MaxIterations default when the request left
/// it at 0.
template <typename OptionsT>
void fillBase(OptionsT &O, const core::RunOptions &Base) {
  const int AppDefault = O.MaxIterations;
  static_cast<core::RunOptions &>(O) = Base;
  if (Base.MaxIterations <= 0)
    O.MaxIterations = AppDefault;
}

apps::FrApp frontierApp(AppId App) {
  switch (App) {
  case AppId::Sswp:
    return apps::FrApp::Sswp;
  case AppId::Wcc:
    return apps::FrApp::Wcc;
  case AppId::Bfs:
    return apps::FrApp::Bfs;
  default:
    return apps::FrApp::Sssp;
  }
}

} // namespace

const char *cfv::appIdName(AppId A) {
  switch (A) {
  case AppId::PageRank:
    return "pagerank";
  case AppId::PageRank64:
    return "pagerank64";
  case AppId::Sssp:
    return "sssp";
  case AppId::Sswp:
    return "sswp";
  case AppId::Wcc:
    return "wcc";
  case AppId::Bfs:
    return "bfs";
  case AppId::Moldyn:
    return "moldyn";
  case AppId::Agg:
    return "agg";
  case AppId::Rbk:
    return "rbk";
  case AppId::Spmv:
    return "spmv";
  case AppId::Mesh:
    return "mesh";
  }
  return "unknown";
}

Expected<AppId> cfv::parseAppId(const std::string &Name) {
  static const struct {
    const char *Name;
    AppId Id;
  } Table[] = {
      {"pagerank", AppId::PageRank}, {"pagerank64", AppId::PageRank64},
      {"sssp", AppId::Sssp},         {"sswp", AppId::Sswp},
      {"wcc", AppId::Wcc},           {"bfs", AppId::Bfs},
      {"moldyn", AppId::Moldyn},     {"agg", AppId::Agg},
      {"rbk", AppId::Rbk},           {"spmv", AppId::Spmv},
      {"mesh", AppId::Mesh},
  };
  for (const auto &E : Table)
    if (Name == E.Name)
      return E.Id;
  return invalid("unknown application '" + Name + "'");
}

Expected<AppVersion> cfv::parseAppVersion(AppId App, const std::string &Name) {
  static const struct {
    const char *Name;
    AppVersion V;
  } Table[] = {
      // Unified spellings.
      {"default", AppVersion::Default},
      {"serial", AppVersion::Serial},
      {"tiling_serial", AppVersion::TilingSerial},
      {"grouping", AppVersion::Grouping},
      {"mask", AppVersion::Mask},
      {"invec", AppVersion::Invec},
      {"bucket_mask", AppVersion::BucketMask},
      {"bucket_invec", AppVersion::BucketInvec},
      {"csr_serial", AppVersion::CsrSerial},
      // Historical per-app spellings (versionName outputs and the
      // original cfv_run vocabulary).
      {"nontiling_serial", AppVersion::Serial},
      {"nontiling_and_mask", AppVersion::Mask},
      {"nontiling_and_invec", AppVersion::Invec},
      {"tiling_and_grouping", AppVersion::Grouping},
      {"tiling_and_mask", AppVersion::Mask},
      {"tiling_and_invec", AppVersion::Invec},
      {"linear_serial", AppVersion::Serial},
      {"linear_mask", AppVersion::Mask},
      {"linear_invec", AppVersion::Invec},
      {"coo_serial", AppVersion::Serial},
      {"coo_mask", AppVersion::Mask},
      {"coo_invec", AppVersion::Invec},
      {"coo_grouping", AppVersion::Grouping},
  };
  for (const auto &E : Table) {
    if (Name != E.Name)
      continue;
    AppVersion V = E.V;
    // Moldyn has no untiled serial path: its "tiling_serial" is the
    // unified Serial.
    if (App == AppId::Moldyn && V == AppVersion::TilingSerial)
      V = AppVersion::Serial;
    // Validate availability through the same mapping run() uses.
    Status Check;
    switch (App) {
    case AppId::PageRank:
      Check = mapPageRank(V).status();
      break;
    case AppId::PageRank64:
      Check = mapPageRank64(V).status();
      break;
    case AppId::Sssp:
    case AppId::Sswp:
    case AppId::Wcc:
    case AppId::Bfs:
      Check = mapFrontier(App, V).status();
      break;
    case AppId::Moldyn:
      Check = mapMoldyn(V).status();
      break;
    case AppId::Agg:
      Check = mapAgg(V).status();
      break;
    case AppId::Rbk:
      Check = V == AppVersion::Default
                  ? Status()
                  : badVersion(AppId::Rbk, V);
      break;
    case AppId::Spmv:
      Check = mapSpmv(V).status();
      break;
    case AppId::Mesh:
      Check = mapMesh(V).status();
      break;
    }
    if (!Check.ok())
      return Check;
    return V;
  }
  return invalid("unknown version '" + Name + "' for app '" +
                 appIdName(App) + "'");
}

Expected<AppResult> cfv::run(const AppRequest &Request) {
  // Local copy so prepared-dataset artifacts can be wired into the
  // options without mutating the caller's request.
  AppRequest R = Request;
  // Top-level span covering validation, prep, and the kernel; the name is
  // the static appIdName string so the tracer never copies a dying buffer.
  obs::Span RunSpan(appIdName(R.App), "run");
  if (R.Options.Threads < 0)
    return invalid("Threads must be >= 0 (0 defers to CFV_THREADS)");

  // Prepared-dataset handle: adopt its graph and thread its memoized
  // schedules into the options of the apps that consume them.  First-use
  // materialization (cold request) is timed and charged to PrepSeconds
  // below; warm requests find the artifacts already built.
  double ArtifactSeconds = 0.0;
  if (R.Prepared) {
    if (!R.Graph)
      R.Graph = &R.Prepared->edges();
    else if (R.Graph != &R.Prepared->edges())
      return invalid("AppRequest::Graph contradicts AppRequest::Prepared");
    WallTimer ArtifactTimer;
    switch (R.App) {
    case AppId::PageRank:
      // (PageRank64 runs untiled; only the 32-bit app consumes tiling.)
      if (R.Version != AppVersion::Serial)
        R.Options.SharedTiling =
            &R.Prepared->tiling(apps::PageRankOptions().TileBlockBits);
      break;
    case AppId::Sssp:
    case AppId::Sswp:
    case AppId::Wcc:
    case AppId::Bfs:
      R.Options.SharedCsr = &R.Prepared->csr();
      if (R.Version == AppVersion::Grouping)
        R.Options.SharedTiling =
            &R.Prepared->tiling(apps::FrontierOptions().TileBlockBits);
      break;
    case AppId::Spmv:
      if (R.Version == AppVersion::CsrSerial)
        R.Options.SharedCsr = &R.Prepared->csr();
      // The COO invec path dispatches on the memoized row-stream
      // classification (pseudo-tiles over Src).
      else if ((R.Version == AppVersion::Default ||
                R.Version == AppVersion::Invec) &&
               pattern::resolveMode(R.Options.Pattern) != pattern::Mode::Off)
        R.Options.SharedPattern = &R.Prepared->streamPattern();
      break;
    default:
      break;
    }
    ArtifactSeconds = ArtifactTimer.seconds();
  }

  // Out-of-core wiring: when a byte budget is set (CFV_MAP_BYTES) and the
  // app can stream a mapped backing, materialize the prepared dataset's
  // CFVM artifact and hand it to the app.  A failed write/map simply
  // leaves R.Mapped null -- the in-core path is always a valid fallback.
  std::shared_ptr<const graph::MappedCsr> MappedKeep;
  const bool MappedCapable =
      R.App == AppId::PageRank || R.App == AppId::Sssp ||
      R.App == AppId::Sswp || R.App == AppId::Wcc || R.App == AppId::Bfs ||
      R.App == AppId::Spmv;
  if (!R.Mapped && R.Prepared && MappedCapable &&
      graph::mapBytesBudget() > 0) {
    WallTimer MapTimer;
    MappedKeep = R.Prepared->mappedCsr();
    R.Mapped = MappedKeep.get();
    ArtifactSeconds += MapTimer.seconds();
  }
  R.Options.SharedMapped = R.Mapped;

  // Per-run NUMA override: a thread-local scoped mode, never a mutation
  // of process-global state.  The parallel engine resolves its shard
  // plan on this thread, so the override is visible exactly for the
  // duration of this run.
  std::optional<numa::ScopedMode> NumaGuard;
  if (R.Options.Numa != core::NumaChoice::Env)
    NumaGuard.emplace(R.Options.Numa == core::NumaChoice::Off
                          ? numa::Mode::Off
                      : R.Options.Numa == core::NumaChoice::Interleave
                          ? numa::Mode::Interleave
                          : numa::Mode::Auto);

  // Resolve the backend without touching process-global dispatch state:
  // an explicit choice goes through dispatchFor (which degrades tier by
  // tier when the requested ISA cannot run), Auto through the cached
  // process-wide selection.
  const core::BackendKind Requested =
      R.Options.Backend == core::BackendChoice::Scalar
          ? core::BackendKind::Scalar
      : R.Options.Backend == core::BackendChoice::Avx2
          ? core::BackendKind::Avx2
          : core::BackendKind::Avx512;
  const core::DispatchTable &T = R.Options.Backend == core::BackendChoice::Auto
                                     ? core::dispatch()
                                     : core::dispatchFor(Requested);

  AppResult Res;
  Res.App = R.App;
  Res.Backend = T.Kind;
  Res.Threads = core::resolveThreads(R.Options.Threads);

  switch (R.App) {
  case AppId::PageRank: {
    if (Status S = checkGraph(R, /*NeedsWeights=*/false); !S.ok())
      return S;
    const Expected<apps::PrVersion> V = mapPageRank(R.Version);
    if (!V.ok())
      return V.status();
    apps::PageRankOptions O;
    fillBase(O, R.Options);
    apps::PageRankResult PR = T.PageRank(*R.Graph, *V, O);
    Res.VersionName = apps::versionName(*V);
    Res.Values = std::move(PR.Rank);
    Res.Iterations = PR.Iterations;
    Res.ComputeSeconds = PR.ComputeSeconds;
    Res.PrepSeconds = PR.TilingSeconds + PR.GroupingSeconds;
    Res.SimdUtil = PR.SimdUtil;
    Res.MeanD1 = PR.MeanD1;
    Res.UsedAlg2 = PR.UsedAlg2;
    Res.D1Hist = PR.D1Hist;
    Res.UtilHist = PR.UtilHist;
    Res.TimedOut = PR.TimedOut;
    for (int C = 0; C < 5; ++C)
      Res.PatternTiles[C] = PR.PatternTiles[C];
    Res.UsedMappedCsr = mappedCompatible(R, /*NeedsWeights=*/false);
    Res.EdgesProcessed = static_cast<int64_t>(PR.Iterations) *
                         effectiveEdges(R, /*NeedsWeights=*/false);
    break;
  }
  case AppId::PageRank64: {
    if (Status S = checkGraph(R, /*NeedsWeights=*/false); !S.ok())
      return S;
    const Expected<apps::Pr64Version> V = mapPageRank64(R.Version);
    if (!V.ok())
      return V.status();
    apps::PageRankOptions O;
    fillBase(O, R.Options);
    apps::PageRank64Result PR = T.PageRank64(*R.Graph, *V, O);
    Res.VersionName = *V == apps::Pr64Version::Serial ? "serial" : "invec";
    Res.Values64 = std::move(PR.Rank);
    Res.Iterations = PR.Iterations;
    Res.ComputeSeconds = PR.ComputeSeconds;
    Res.MeanD1 = PR.MeanD1;
    Res.D1Hist = PR.D1Hist;
    Res.EdgesProcessed =
        static_cast<int64_t>(PR.Iterations) * R.Graph->numEdges();
    break;
  }
  case AppId::Sssp:
  case AppId::Sswp:
  case AppId::Wcc:
  case AppId::Bfs: {
    const bool NeedsWeights = R.App == AppId::Sssp || R.App == AppId::Sswp;
    if (Status S = checkGraph(R, NeedsWeights); !S.ok())
      return S;
    if (R.Source < 0 || R.Source >= R.Graph->NumNodes)
      return invalid("source vertex out of range");
    const Expected<apps::FrVersion> V = mapFrontier(R.App, R.Version);
    if (!V.ok())
      return V.status();
    apps::FrontierOptions O;
    fillBase(O, R.Options);
    O.Source = R.Source;
    apps::FrontierResult FR = T.Frontier(*R.Graph, frontierApp(R.App), *V, O);
    Res.VersionName = apps::versionName(*V);
    Res.Values = std::move(FR.Value);
    Res.Iterations = FR.Iterations;
    Res.ComputeSeconds = FR.ComputeSeconds;
    Res.PrepSeconds = FR.TilingSeconds + FR.GroupingSeconds;
    Res.SimdUtil = FR.SimdUtil;
    Res.MeanD1 = FR.MeanD1;
    Res.D1Hist = FR.D1Hist;
    Res.UtilHist = FR.UtilHist;
    Res.TimedOut = FR.TimedOut;
    Res.EdgesProcessed = FR.EdgesProcessed;
    Res.UsedMappedCsr = mappedCompatible(R, NeedsWeights);
    break;
  }
  case AppId::Moldyn: {
    const Expected<apps::MdVersion> V = mapMoldyn(R.Version);
    if (!V.ok())
      return V.status();
    if (R.Moldyn.Cells <= 0)
      return invalid("moldyn requires Cells > 0");
    apps::MoldynOptions O = R.Moldyn;
    fillBase(O, R.Options);
    const int Iterations = R.Options.MaxIterations > 0
                               ? R.Options.MaxIterations
                               : 20;
    Res.Moldyn = apps::runMoldyn(O, *V, Iterations, T.MoldynForces, T.Lanes);
    Res.VersionName = apps::versionName(*V);
    Res.Iterations = Iterations;
    Res.ComputeSeconds = Res.Moldyn.ComputeSeconds;
    Res.PrepSeconds = Res.Moldyn.NeighborSeconds + Res.Moldyn.TilingSeconds +
                      Res.Moldyn.GroupingSeconds;
    Res.SimdUtil = Res.Moldyn.SimdUtil;
    Res.MeanD1 = Res.Moldyn.MeanD1;
    Res.D1Hist = Res.Moldyn.D1Hist;
    Res.UtilHist = Res.Moldyn.UtilHist;
    Res.EdgesProcessed = Res.Moldyn.Pairs;
    break;
  }
  case AppId::Agg: {
    if (!R.Keys || !R.Vals)
      return invalid("agg requires AppRequest::Keys and Vals");
    if (R.Rows <= 0)
      return invalid("agg requires Rows > 0");
    if (R.Cardinality < 1 || R.Cardinality > kMaxCardinality)
      return invalid("agg Cardinality must be in [1, 2^24]");
    const Expected<apps::AggVersion> V = mapAgg(R.Version);
    if (!V.ok())
      return V.status();
    apps::AggResult AR = T.Aggregation(R.Keys, R.Vals, R.Rows, R.Cardinality,
                                       *V, R.Options);
    Res.VersionName = apps::versionName(*V);
    Res.Groups = std::move(AR.Groups);
    Res.Iterations = 1;
    Res.ComputeSeconds = AR.Seconds;
    Res.SimdUtil = AR.SimdUtil;
    Res.MeanD1 = AR.MeanD1;
    Res.D1Hist = AR.D1Hist;
    Res.UtilHist = AR.UtilHist;
    for (int C = 0; C < 5; ++C)
      Res.PatternTiles[C] = AR.PatternTiles[C];
    Res.EdgesProcessed = R.Rows;
    break;
  }
  case AppId::Rbk: {
    if (Status S = checkGraph(R, /*NeedsWeights=*/false); !S.ok())
      return S;
    if (R.Version != AppVersion::Default)
      return badVersion(AppId::Rbk, R.Version);
    const int Iterations = R.Options.MaxIterations > 0
                               ? R.Options.MaxIterations
                               : 1000;
    Res.Rbk = T.RbkComparison(*R.Graph, Iterations, R.Options);
    Res.VersionName = "comparison";
    Res.Iterations = Iterations;
    Res.ComputeSeconds = Res.Rbk.InvecSeconds;
    Res.MeanD1 = Res.Rbk.MeanD1;
    Res.D1Hist = Res.Rbk.D1Hist;
    Res.EdgesProcessed =
        static_cast<int64_t>(Iterations) * R.Graph->numEdges();
    break;
  }
  case AppId::Spmv: {
    if (Status S = checkGraph(R, /*NeedsWeights=*/true); !S.ok())
      return S;
    const Expected<apps::SpmvVersion> V = mapSpmv(R.Version);
    if (!V.ok())
      return V.status();
    const int Repeats = R.Options.MaxIterations > 0
                            ? R.Options.MaxIterations
                            : 1;
    AlignedVector<float> Ones;
    const float *X = R.X;
    if (!X) {
      Ones.assign(R.Graph->NumNodes, 1.0f);
      X = Ones.data();
    }
    apps::SpmvResult SR = T.Spmv(*R.Graph, X, *V, Repeats, R.Options);
    Res.VersionName = apps::versionName(*V);
    Res.Values = std::move(SR.Y);
    Res.Iterations = Repeats;
    Res.ComputeSeconds = SR.Seconds;
    Res.PrepSeconds = SR.PrepSeconds;
    Res.SimdUtil = SR.SimdUtil;
    Res.MeanD1 = SR.MeanD1;
    Res.D1Hist = SR.D1Hist;
    Res.UtilHist = SR.UtilHist;
    for (int C = 0; C < 5; ++C)
      Res.PatternTiles[C] = SR.PatternTiles[C];
    Res.UsedMappedCsr = mappedCompatible(R, /*NeedsWeights=*/true);
    Res.EdgesProcessed = static_cast<int64_t>(Repeats) *
                         effectiveEdges(R, /*NeedsWeights=*/true);
    break;
  }
  case AppId::Mesh: {
    if (!R.MeshIn)
      return invalid("mesh requires AppRequest::MeshIn");
    if (R.MeshIn->NumCells <= 0)
      return invalid("mesh has no cells");
    if (!R.U0)
      return invalid("mesh requires AppRequest::U0");
    const Expected<apps::MeshVersion> V = mapMesh(R.Version);
    if (!V.ok())
      return V.status();
    const int Sweeps = R.Options.MaxIterations > 0
                           ? R.Options.MaxIterations
                           : 50;
    apps::MeshRunResult MR =
        T.MeshDiffusion(*R.MeshIn, R.U0, Sweeps, R.Dt, *V, R.Options);
    Res.VersionName = apps::versionName(*V);
    Res.Values = std::move(MR.U);
    Res.Iterations = Sweeps;
    Res.ComputeSeconds = MR.ComputeSeconds;
    Res.PrepSeconds = MR.GroupSeconds;
    Res.SimdUtil = MR.SimdUtil;
    Res.MeanD1 = MR.MeanD1;
    Res.D1Hist = MR.D1Hist;
    Res.UtilHist = MR.UtilHist;
    Res.EdgesProcessed =
        static_cast<int64_t>(Sweeps) * R.MeshIn->numEdges();
    break;
  }
  }
  Res.PrepSeconds += ArtifactSeconds;
  Res.PatternModeName =
      pattern::modeName(pattern::resolveMode(R.Options.Pattern));
  // Report the shard plan the engine used (the NumaGuard override is
  // still live here, so this resolves exactly what the run saw).
  if (const std::shared_ptr<const numa::ShardPlan> Plan =
          numa::currentPlan(Res.Threads))
    Res.NumaNodes = Plan->Nodes;

  // One registry flush per run: counters, phase timings, and the merged
  // kernel distributions, labeled by app.
  obs::RunTelemetry Tel;
  Tel.App = appIdName(R.App);
  Tel.Backend = core::backendName(Res.Backend);
  Tel.LaneWidth = Res.Backend == core::BackendKind::Avx2 ? 8 : 16;
  Tel.PrepSeconds = Res.PrepSeconds;
  Tel.KernelSeconds = Res.ComputeSeconds;
  Tel.EdgesProcessed =
      Res.EdgesProcessed > 0 ? static_cast<uint64_t>(Res.EdgesProcessed) : 0;
  Tel.SimdUtil = Res.SimdUtil;
  Tel.MeanD1 = Res.MeanD1;
  Tel.UsedAlg2 = Res.UsedAlg2;
  Tel.D1 = &Res.D1Hist;
  Tel.Util = &Res.UtilHist;
  obs::recordRun(Tel);
  return Res;
}

double cfv::resultChecksum(const AppResult &R) {
  switch (R.App) {
  case AppId::PageRank64: {
    double Mass = 0.0;
    for (double X : R.Values64)
      Mass += X;
    return Mass;
  }
  case AppId::Agg: {
    double Sum = 0.0;
    for (const apps::GroupAgg &G : R.Groups)
      Sum += G.Sum;
    return Sum;
  }
  case AppId::Rbk:
    return R.Rbk.InvecChecksum;
  case AppId::Moldyn:
    return R.Moldyn.FinalPotential;
  case AppId::Spmv: {
    double Norm = 0.0;
    for (float Y : R.Values)
      Norm += static_cast<double>(Y) * Y;
    return Norm;
  }
  default: {
    // Skip non-finite entries (unreachable vertices hold +/-inf) so the
    // checksum stays a valid JSON number.
    double Mass = 0.0;
    for (float X : R.Values)
      if (std::isfinite(X))
        Mass += X;
    return Mass;
  }
  }
}
