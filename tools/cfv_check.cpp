//===-- tools/cfv_check.cpp - Property-based verification driver ----------===//
//
// Drives the verify subsystem: deterministic adversarial case enumeration
// through the differential oracle (kernel / system / service tiers), the
// serve-protocol fuzzer, corpus replay, and deliberate bug injection for
// oracle self-tests.
//
//   cfv_check --seed 42 --cases 500            # reproducible quick run
//   cfv_check --cases 0 --minutes 30           # soak (time-bounded)
//   cfv_check --inject drop_conflict_lane      # must exit 1 + reproducer
//   cfv_check --replay corpus/cfv-repro-*.snap # re-run a shrunk case
//
// Exit codes: 0 all checks passed, 1 oracle mismatch or fuzz invariant
// violation (one structured JSON record on stdout), 2 usage error.
//
//===----------------------------------------------------------------------===//

#include "core/Dispatch.h"
#include "service/Json.h"
#include "util/Clock.h"
#include "util/Env.h"
#include "verify/Chaos.h"
#include "verify/Gen.h"
#include "verify/Oracle.h"
#include "verify/ServeFuzz.h"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

using namespace cfv;

namespace {

[[noreturn]] void usage(int Code) {
  std::fprintf(
      Code ? stderr : stdout,
      "usage: cfv_check [options]\n"
      "\n"
      "Property-based differential verification of the cfv kernels,\n"
      "applications, and serving layer on generated adversarial\n"
      "workloads.  Deterministic: a (seed, case) pair always generates\n"
      "the same stream, so any CI failure replays locally.\n"
      "\n"
      "options:\n"
      "  --seed <s>          run seed (default $CFV_SEED, else 3405691582)\n"
      "  --cases <n>         cases to enumerate (default 200; 0 = only the\n"
      "                      --minutes budget bounds the run)\n"
      "  --minutes <m>       soft time budget; stops at the first bound hit\n"
      "                      (default 0 = none)\n"
      "  --backend <b>       scalar | avx2 | avx512 | all (default all:\n"
      "                      every SIMD tier this build/host can run is\n"
      "                      checked against the scalar reference)\n"
      "  --system-every <k>  run the cfv::run system tier every k-th case\n"
      "                      (default 16; 0 disables)\n"
      "  --service-every <k> run the cold/cached service tier every k-th\n"
      "                      case (default 64; 0 disables)\n"
      "  --fuzz-serve <n>    fuzz the serve protocol with n lines after the\n"
      "                      oracle cases (default 0)\n"
      "  --fuzz-conns <c>    concurrent fuzz client sessions against one\n"
      "                      service (default 1; > 1 adds mid-batch\n"
      "                      disconnects and pipelined garbage)\n"
      "  --chaos             run the chaos tier: serve-fuzz traffic with the\n"
      "                      fault injector armed (rotating forced point per\n"
      "                      round); --minutes bounds it, otherwise one pass\n"
      "                      over every fault point runs.  Implies --cases 0\n"
      "                      unless --cases is given explicitly\n"
      "  --inject <bug>      compile a deliberate defect into the verify\n"
      "                      pipelines: none | drop_conflict_lane |\n"
      "                      skip_tail | no_aux_merge (oracle self-test;\n"
      "                      the run must fail)\n"
      "  --corpus-dir <d>    where shrunken reproducers are written\n"
      "                      (default .)\n"
      "  --replay <file>     re-check one corpus file and exit\n"
      "  --quiet             no progress on stderr\n"
      "  --help\n");
  std::exit(Code);
}

int64_t parseIntFlag(const char *Flag, const char *Text) {
  char *End = nullptr;
  const long long V = std::strtoll(Text, &End, 10);
  if (End == Text || *End != '\0' || V < 0) {
    std::fprintf(stderr, "error: bad value '%s' for %s\n", Text, Flag);
    std::exit(2);
  }
  return V;
}

uint64_t parseSeedFlag(const char *Text) {
  char *End = nullptr;
  const unsigned long long V = std::strtoull(Text, &End, 0);
  if (End == Text || *End != '\0') {
    std::fprintf(stderr, "error: bad value '%s' for --seed\n", Text);
    std::exit(2);
  }
  return V;
}

struct Options {
  uint64_t Seed = 0;
  int64_t Cases = 200;
  double Minutes = 0.0;
  std::string Backend = "all";
  int64_t SystemEvery = 16;
  int64_t ServiceEvery = 64;
  int64_t FuzzServe = 0;
  int64_t FuzzConns = 1;
  bool Chaos = false;
  bool CasesExplicit = false;
  verify::InjectedBug Bug = verify::InjectedBug::None;
  std::string CorpusDir = ".";
  std::string Replay;
  bool Quiet = false;
};

Options parseArgs(int Argc, char **Argv) {
  Options O;
  // The shared seed knob: benchmarks and the soak job both route through
  // CFV_SEED so one environment variable pins a whole pipeline.
  O.Seed = static_cast<uint64_t>(
      env::intVar("CFV_SEED", 0xCAFEBABELL, INT64_MIN, INT64_MAX));
  auto need = [&](int &I, const char *Flag) -> const char * {
    if (I + 1 >= Argc) {
      std::fprintf(stderr, "error: %s needs a value\n", Flag);
      std::exit(2);
    }
    return Argv[++I];
  };
  for (int I = 1; I < Argc; ++I) {
    const std::string Arg = Argv[I];
    if (Arg == "--seed")
      O.Seed = parseSeedFlag(need(I, "--seed"));
    else if (Arg == "--cases") {
      O.Cases = parseIntFlag("--cases", need(I, "--cases"));
      O.CasesExplicit = true;
    }
    else if (Arg == "--minutes") {
      const char *T = need(I, "--minutes");
      char *End = nullptr;
      O.Minutes = std::strtod(T, &End);
      if (End == T || *End != '\0' || O.Minutes < 0) {
        std::fprintf(stderr, "error: bad value '%s' for --minutes\n", T);
        std::exit(2);
      }
    } else if (Arg == "--backend") {
      O.Backend = need(I, "--backend");
      if (O.Backend != "scalar" && O.Backend != "avx2" &&
          O.Backend != "avx512" && O.Backend != "all") {
        std::fprintf(stderr,
                     "error: --backend wants scalar|avx2|avx512|all\n");
        std::exit(2);
      }
    } else if (Arg == "--system-every")
      O.SystemEvery = parseIntFlag("--system-every", need(I, "--system-every"));
    else if (Arg == "--service-every")
      O.ServiceEvery =
          parseIntFlag("--service-every", need(I, "--service-every"));
    else if (Arg == "--fuzz-serve")
      O.FuzzServe = parseIntFlag("--fuzz-serve", need(I, "--fuzz-serve"));
    else if (Arg == "--fuzz-conns") {
      O.FuzzConns = parseIntFlag("--fuzz-conns", need(I, "--fuzz-conns"));
      if (O.FuzzConns < 1 || O.FuzzConns > 64) {
        std::fprintf(stderr, "error: --fuzz-conns wants [1, 64]\n");
        std::exit(2);
      }
    }
    else if (Arg == "--chaos")
      O.Chaos = true;
    else if (Arg == "--inject") {
      const Expected<verify::InjectedBug> B =
          verify::parseInjectedBug(need(I, "--inject"));
      if (!B.ok()) {
        std::fprintf(stderr, "error: %s\n", B.status().message().c_str());
        std::exit(2);
      }
      O.Bug = *B;
    } else if (Arg == "--corpus-dir")
      O.CorpusDir = need(I, "--corpus-dir");
    else if (Arg == "--replay")
      O.Replay = need(I, "--replay");
    else if (Arg == "--quiet")
      O.Quiet = true;
    else if (Arg == "--help" || Arg == "-h")
      usage(0);
    else {
      std::fprintf(stderr, "error: unknown option '%s'\n", Arg.c_str());
      usage(2);
    }
  }
  // A chaos run is usually standalone: unless the caller also asked for
  // oracle cases, the --minutes budget belongs to the chaos tier alone.
  if (O.Chaos && !O.CasesExplicit)
    O.Cases = 0;
  if (O.Cases == 0 && O.Minutes == 0.0 && O.Replay.empty() &&
      O.FuzzServe == 0 && !O.Chaos) {
    std::fprintf(stderr,
                 "error: nothing to do (--cases 0 needs --minutes, "
                 "--replay, --fuzz-serve, or --chaos)\n");
    std::exit(2);
  }
  return O;
}

verify::OracleOptions oracleOptions(const Options &O) {
  verify::OracleOptions OO;
  // The scalar reference always runs; a named tier narrows the SIMD side
  // of the comparison to just that tier.
  OO.UseAvx2 = O.Backend == "avx2" || O.Backend == "all";
  OO.UseAvx512 = O.Backend == "avx512" || O.Backend == "all";
  OO.Bug = O.Bug;
  OO.CorpusDir = O.CorpusDir;
  return OO;
}

[[noreturn]] void failWith(const verify::OracleFailure &F) {
  std::printf("%s\n", F.toJson().c_str());
  std::exit(1);
}

} // namespace

int main(int Argc, char **Argv) {
  const Options O = parseArgs(Argc, Argv);

  if (O.Backend == "avx512" && !core::avx512Available()) {
    std::fprintf(stderr,
                 "error: --backend avx512 requested but this build/host "
                 "cannot run AVX-512\n");
    return 2;
  }
  if (O.Backend == "avx2" && !core::avx2Available()) {
    std::fprintf(stderr,
                 "error: --backend avx2 requested but this build/host "
                 "cannot run AVX2\n");
    return 2;
  }

  // Corpus replay: one workload, all tiers.
  if (!O.Replay.empty()) {
    const Expected<verify::Workload> W = verify::readCorpus(O.Replay);
    if (!W.ok()) {
      std::fprintf(stderr, "error: %s\n", W.status().message().c_str());
      return 2;
    }
    verify::OracleOptions OO = oracleOptions(O);
    OO.SystemTier = O.SystemEvery > 0;
    OO.ServiceTier = O.ServiceEvery > 0;
    if (const auto F = verify::checkWorkload(*W, OO))
      failWith(*F);
    json::ObjectWriter J;
    J.field("ok", true).field("replayed", O.Replay).field(
        "spec", W->Spec.toString());
    std::printf("%s\n", J.str().c_str());
    return 0;
  }

  const double T0 = monotonicSeconds();
  const double Budget = O.Minutes * 60.0;
  uint64_t CaseNo = 0;
  while (true) {
    if (O.Cases > 0 && CaseNo >= static_cast<uint64_t>(O.Cases))
      break;
    if (Budget > 0.0 && monotonicSeconds() - T0 >= Budget)
      break;
    if (O.Cases == 0 && (Budget == 0.0 || O.Chaos))
      break; // --fuzz-serve / --chaos only (chaos owns the time budget)
    const verify::CaseSpec Spec = verify::specForCase(O.Seed, CaseNo);
    const verify::Workload W = verify::genWorkload(Spec);
    verify::OracleOptions OO = oracleOptions(O);
    OO.SystemTier = O.SystemEvery > 0 && CaseNo % O.SystemEvery == 0;
    OO.ServiceTier = O.ServiceEvery > 0 && CaseNo % O.ServiceEvery == 0;
    if (const auto F = verify::checkWorkload(W, OO))
      failWith(*F);
    ++CaseNo;
    if (!O.Quiet && CaseNo % 100 == 0)
      std::fprintf(stderr, "cfv_check: %" PRIu64 " cases ok (%.1fs)\n",
                   CaseNo, monotonicSeconds() - T0);
  }

  int64_t FuzzLines = 0;
  if (O.FuzzServe > 0) {
    verify::FuzzOptions FO;
    FO.Seed = O.Seed;
    FO.Lines = O.FuzzServe;
    FO.Connections = static_cast<int>(O.FuzzConns);
    const Expected<verify::FuzzStats> R = verify::fuzzService(FO);
    if (!R.ok()) {
      json::ObjectWriter J;
      J.field("ok", false)
          .field("error", "fuzz_invariant")
          .field("detail", R.status().message());
      std::printf("%s\n", J.str().c_str());
      return 1;
    }
    FuzzLines = R->Lines;
    if (!O.Quiet)
      std::fprintf(stderr,
                   "cfv_check: serve fuzz ok (%" PRId64 " lines, %" PRId64
                   " requests, %" PRId64 " ok, %" PRId64 " failed, %" PRId64
                   " rejected lines, %" PRId64 " abandoned, %" PRId64
                   " conns)\n",
                   R->Lines, R->Requests, R->Ok, R->Failed, R->BadLines,
                   R->Abandoned, O.FuzzConns);
  }

  verify::ChaosStats CS;
  if (O.Chaos) {
    verify::ChaosOptions CO;
    CO.Seed = O.Seed;
    CO.Minutes = O.Minutes;
    CO.Quiet = O.Quiet;
    const Expected<verify::ChaosStats> R = verify::runChaos(CO);
    if (!R.ok()) {
      json::ObjectWriter J;
      J.field("ok", false)
          .field("error", "chaos_invariant")
          .field("detail", R.status().message());
      std::printf("%s\n", J.str().c_str());
      return 1;
    }
    CS = *R;
    if (!O.Quiet)
      std::fprintf(stderr,
                   "cfv_check: chaos ok (%" PRId64 " fault rounds, %" PRId64
                   " lines, %" PRId64 " requests, %" PRId64
                   " faults injected, %" PRId64 " checksums matched, %" PRId64
                   " shed, %" PRId64 " watchdog trips)\n",
                   CS.Rounds, CS.Lines, CS.Requests, CS.FaultsInjected,
                   CS.ChecksumsChecked, CS.Shed, CS.WatchdogTrips);
  }

  json::ObjectWriter J;
  J.field("ok", true)
      .field("seed", O.Seed)
      .field("cases", static_cast<int64_t>(CaseNo))
      .field("fuzz_lines", FuzzLines)
      .field("chaos_rounds", CS.Rounds)
      .field("chaos_faults", CS.FaultsInjected)
      .field("chaos_checksums", CS.ChecksumsChecked)
      .field("seconds", monotonicSeconds() - T0)
      .field("backend", O.Backend)
      .field("injected", verify::injectedBugName(O.Bug));
  std::printf("%s\n", J.str().c_str());
  return 0;
}
