//===- tests/fault_injector_test.cpp - Fault injector contracts -----------===//
//
// Part of the cfv project: reproduction of Jiang & Agrawal, CGO 2018.
//
//===----------------------------------------------------------------------===//
//
// The resilience layer's injector: the CFV_FAULTS grammar, schedule
// semantics (always / off / nth / burst / probability), the determinism
// guarantee (a firing decision is a pure function of seed, point, and
// hit index), and the counters chaos rounds report from.
//
//===----------------------------------------------------------------------===//

#include "resilience/Fault.h"

#include "gtest/gtest.h"

#include <algorithm>
#include <string>
#include <vector>

using namespace cfv;
using namespace cfv::fault;

namespace {

TEST(FaultPlanTest, PointNamesRoundTrip) {
  for (int I = 0; I < kNumPoints; ++I) {
    const Point P = static_cast<Point>(I);
    const Expected<Point> Back = parsePoint(pointName(P));
    ASSERT_TRUE(Back.ok()) << pointName(P);
    EXPECT_EQ(*Back, P);
  }
}

TEST(FaultPlanTest, UnknownPointListsValidSpellings) {
  const Expected<Point> P = parsePoint("io.write_error");
  ASSERT_FALSE(P.ok());
  EXPECT_EQ(P.status().code(), ErrorCode::InvalidArgument);
  // The error is the documentation: it must enumerate what IS valid.
  EXPECT_NE(P.status().message().find("io.read_error"), std::string::npos);
  EXPECT_NE(P.status().message().find("serve.conn_drop"), std::string::npos);
}

TEST(FaultPlanTest, ParsesEverySchedule) {
  const Expected<Plan> P = parsePlan(
      "io.read_error:always,io.short_read:p=0.25,cache.alloc_fail:nth=5,"
      "sched.worker_stall:burst=3@10,kernel.slow_tile:off",
      42);
  ASSERT_TRUE(P.ok()) << P.status().toString();
  EXPECT_EQ(P->Seed, 42u);
  EXPECT_EQ(P->Rules[static_cast<int>(Point::IoReadError)].M,
            Rule::Mode::Always);
  const Rule &Prob = P->Rules[static_cast<int>(Point::IoShortRead)];
  EXPECT_EQ(Prob.M, Rule::Mode::Probability);
  EXPECT_DOUBLE_EQ(Prob.P, 0.25);
  const Rule &Nth = P->Rules[static_cast<int>(Point::CacheAllocFail)];
  EXPECT_EQ(Nth.M, Rule::Mode::Nth);
  EXPECT_EQ(Nth.Nth, 5u);
  const Rule &Burst = P->Rules[static_cast<int>(Point::SchedWorkerStall)];
  EXPECT_EQ(Burst.M, Rule::Mode::Burst);
  EXPECT_EQ(Burst.Start, 10u);
  EXPECT_EQ(Burst.Len, 3u);
  EXPECT_EQ(P->Rules[static_cast<int>(Point::KernelSlowTile)].M,
            Rule::Mode::Off);
  // Unmentioned points stay off.
  EXPECT_EQ(P->Rules[static_cast<int>(Point::ServeConnDrop)].M,
            Rule::Mode::Off);
  EXPECT_TRUE(P->anyArmed());
}

TEST(FaultPlanTest, EmptySpecIsDisarmed) {
  const Expected<Plan> P = parsePlan("", 1);
  ASSERT_TRUE(P.ok());
  EXPECT_FALSE(P->anyArmed());
}

TEST(FaultPlanTest, RejectsMalformedSpecs) {
  for (const char *Bad :
       {"io.read_error", "bogus.point:always", "io.read_error:p=2.0",
        "io.read_error:p=", "io.read_error:nth=0", "io.read_error:burst=3",
        "io.read_error:burst=0@5", "io.read_error:burst=3@0",
        "io.read_error:sometimes"}) {
    const Expected<Plan> P = parsePlan(Bad, 1);
    EXPECT_FALSE(P.ok()) << "spec '" << Bad << "' should not parse";
    if (!P.ok()) {
      EXPECT_EQ(P.status().code(), ErrorCode::InvalidArgument);
    }
  }
}

#if CFV_FAULTS

/// Arms only \p P with \p R (everything else off) on the process-wide
/// injector; counters reset.
void arm(Point P, Rule R, uint64_t Seed = 7) {
  Plan Pl;
  Pl.Seed = Seed;
  Pl.Rules[static_cast<int>(P)] = R;
  Injector::instance().configure(Pl);
}

class FaultInjectorTest : public ::testing::Test {
protected:
  // Every test leaves the process-wide injector disarmed so suites
  // running after this one see no ambient faults.
  void TearDown() override { Injector::instance().disarm(); }
};

TEST_F(FaultInjectorTest, DisarmedCostsNothingAndNeverFires) {
  Injector::instance().disarm();
  EXPECT_FALSE(Injector::instance().armed());
  for (int I = 0; I < 100; ++I)
    EXPECT_FALSE(fire(Point::IoReadError));
}

TEST_F(FaultInjectorTest, AlwaysFiresEveryEvaluation) {
  Rule R;
  R.M = Rule::Mode::Always;
  arm(Point::CacheAllocFail, R);
  for (int I = 0; I < 10; ++I)
    EXPECT_TRUE(fire(Point::CacheAllocFail));
  // Other points stay cold even while the injector is armed.
  EXPECT_FALSE(fire(Point::IoReadError));
  EXPECT_EQ(Injector::instance().evaluated(Point::CacheAllocFail), 10u);
  EXPECT_EQ(Injector::instance().fired(Point::CacheAllocFail), 10u);
  EXPECT_EQ(Injector::instance().totalFired(), 10u);
}

TEST_F(FaultInjectorTest, NthFiresExactlyOnce) {
  Rule R;
  R.M = Rule::Mode::Nth;
  R.Nth = 4;
  arm(Point::IoShortRead, R);
  std::vector<int> Fired;
  for (int I = 1; I <= 10; ++I)
    if (fire(Point::IoShortRead))
      Fired.push_back(I);
  EXPECT_EQ(Fired, std::vector<int>({4}));
}

TEST_F(FaultInjectorTest, BurstFiresTheConfiguredWindow) {
  Rule R;
  R.M = Rule::Mode::Burst;
  R.Start = 3;
  R.Len = 2;
  arm(Point::ServeConnDrop, R);
  std::vector<int> Fired;
  for (int I = 1; I <= 8; ++I)
    if (fire(Point::ServeConnDrop))
      Fired.push_back(I);
  EXPECT_EQ(Fired, std::vector<int>({3, 4}));
}

TEST_F(FaultInjectorTest, ProbabilityIsDeterministicPerSeed) {
  Rule R;
  R.M = Rule::Mode::Probability;
  R.P = 0.3;
  auto decisions = [&](uint64_t Seed) {
    arm(Point::KernelSlowTile, R, Seed);
    std::vector<bool> D;
    for (int I = 0; I < 200; ++I)
      D.push_back(fire(Point::KernelSlowTile));
    return D;
  };
  const std::vector<bool> A = decisions(123);
  const std::vector<bool> B = decisions(123);
  // The replay guarantee: a chaos failure reproduces from its seed.
  EXPECT_EQ(A, B);
  EXPECT_NE(A, decisions(124));
  // And the rate is actually in the neighborhood of p.
  const int64_t Fires = static_cast<int64_t>(
      std::count(A.begin(), A.end(), true));
  EXPECT_GT(Fires, 200 * 0.3 / 3);
  EXPECT_LT(Fires, 200 * 0.3 * 3);
}

TEST_F(FaultInjectorTest, ConfigureResetsCounters) {
  Rule R;
  R.M = Rule::Mode::Always;
  arm(Point::IoReadError, R);
  for (int I = 0; I < 5; ++I)
    fire(Point::IoReadError);
  EXPECT_EQ(Injector::instance().fired(Point::IoReadError), 5u);
  arm(Point::IoReadError, R);
  EXPECT_EQ(Injector::instance().evaluated(Point::IoReadError), 0u);
  EXPECT_EQ(Injector::instance().fired(Point::IoReadError), 0u);
}

#endif // CFV_FAULTS

} // namespace
