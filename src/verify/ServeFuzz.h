//===-- verify/ServeFuzz.h - Serve-protocol fuzzer --------------*- C++ -*-===//
//
// Structured fuzzer for the cfv_serve NDJSON protocol, run in-process so
// ASan/UBSan see every byte: a grammar generator emits valid request
// lines, a mutator corrupts them (byte flips, truncation, duplicate keys,
// deep nesting, huge numbers, long strings), and every line is pushed
// through the exact service::classifyLine front-end cfv_serve uses, with
// admitted requests submitted to a real service::Service whose dataset
// loader is injected (fabricated graphs, optional delays) to provoke
// queue-full rejections, deadline expiry, and mid-load interleavings.
//
// Invariants checked on every line / response:
//   - classifyLine returns a kind (totality; crashes are the fuzz signal),
//   - every response's wire form round-trips through the strict JSON
//     parser, and failed responses carry a non-Ok structured error code,
//   - after drain() the scheduler books balance:
//     Submitted == Completed + Expired and nothing stays queued.
//
//===----------------------------------------------------------------------===//

#ifndef CFV_VERIFY_SERVEFUZZ_H
#define CFV_VERIFY_SERVEFUZZ_H

#include "util/Status.h"

#include <cstdint>
#include <string>

namespace cfv {

class Xoshiro256;

namespace verify {

struct FuzzOptions {
  uint64_t Seed = 0;
  int64_t Lines = 500;
  /// Small queue so bursts actually hit admission control.
  int QueueDepth = 4;
  int Workers = 2;
  /// Injected dataset-load delay, making mid-load interleavings and tiny
  /// deadlines reachable (milliseconds).
  double LoadDelayMs = 1.0;
  /// Concurrent client sessions fuzzing one Service (the multi-client
  /// front-end's world).  1 keeps the historical single-session stream;
  /// > 1 splits Lines across that many threads, each with its own RNG
  /// stream and id namespace, and additionally exercises mid-batch
  /// disconnects (pending responses abandoned un-reaped) and pipelined
  /// garbage directly behind a valid request.
  int Connections = 1;
};

struct FuzzStats {
  int64_t Lines = 0;
  int64_t Requests = 0;   ///< lines admitted and submitted
  int64_t Ok = 0;         ///< successful responses
  int64_t Failed = 0;     ///< structured failure responses
  int64_t BadLines = 0;   ///< malformed / unknown-cmd / bad-request
  int64_t Commands = 0;   ///< stats / metrics / shutdown / GET lines
  /// Responses abandoned by a simulated mid-batch disconnect (the
  /// request still completes service-side; the books must still
  /// balance).  Only nonzero with Connections > 1.
  int64_t Abandoned = 0;
};

/// Runs the fuzzer.  Returns stats on success; on an invariant violation
/// returns a Status whose message embeds the offending line so the caller
/// (cfv_check) can archive it as a reproducer.
Expected<FuzzStats> fuzzService(const FuzzOptions &O);

/// The fuzzer's traffic generators, exported so the chaos tier
/// (verify/Chaos.h) drives the same grammar while faults are armed.
/// fuzzValidLine emits a syntactically valid request line (possibly
/// semantically hostile); fuzzMutateLine corrupts one.
std::string fuzzValidLine(Xoshiro256 &Rng, int64_t Id);
std::string fuzzMutateLine(std::string L, Xoshiro256 &Rng);

} // namespace verify
} // namespace cfv

#endif // CFV_VERIFY_SERVEFUZZ_H
