//===-- verify/Chaos.h - Fault-schedule chaos tier --------------*- C++ -*-===//
//
// The verification harness's chaos tier: ServeFuzz's traffic grammar
// replayed against a real service::Service while the resilience layer's
// fault injector is armed.  Round 0 runs fault-free and records a golden
// checksum per request signature; every later round re-plays the SAME
// deterministic traffic stream with a rotating forced fault point (plus
// low-probability background faults on every other point), so across a
// full run each of the seven points fires under load.
//
// Invariants checked:
//   - no crash (the run itself is the probe; ASan jobs sharpen it),
//   - no hang: every future resolves within a hard bound,
//   - every admitted request yields exactly one structured reply (books
//     balance after drain; failed replies carry non-Ok codes),
//   - a fault never corrupts a success: any Ok response whose signature
//     completed in the golden round must reproduce its checksum.
//
//===----------------------------------------------------------------------===//

#ifndef CFV_VERIFY_CHAOS_H
#define CFV_VERIFY_CHAOS_H

#include "util/Status.h"

#include <cstdint>

namespace cfv {
namespace verify {

struct ChaosOptions {
  uint64_t Seed = 0;
  /// Fault rounds after the golden round (>= 7 visits every point once).
  /// When Minutes > 0 rounds instead cycle until the budget is spent.
  int Rounds = 7;
  double Minutes = 0.0;
  int64_t LinesPerRound = 250;
  /// Small queue + small worker pool: rejections, shedding, and deadline
  /// races stay routine events rather than corner cases.
  int QueueDepth = 4;
  int Workers = 2;
  /// Watchdog budget for the per-round service; stalled-worker faults
  /// must be answered by a watchdog trip, not a hung future.
  double WatchdogMs = 250.0;
  bool Quiet = true;
};

struct ChaosStats {
  int64_t Rounds = 0; ///< fault rounds completed (golden round excluded)
  int64_t Lines = 0;
  int64_t Requests = 0;
  int64_t Ok = 0;
  int64_t Failed = 0;
  int64_t FaultsInjected = 0;   ///< injector fires across all rounds
  int64_t ChecksumsChecked = 0; ///< Ok responses compared against golden
  int64_t Shed = 0;
  int64_t WatchdogTrips = 0;
};

/// Runs the chaos tier.  Returns stats on success; on an invariant
/// violation returns a Status whose message embeds the round, the armed
/// schedule, and the offending line, so the failure replays from its
/// seed.  Owns the process-wide fault injector for the duration (and
/// leaves it disarmed).
Expected<ChaosStats> runChaos(const ChaosOptions &O);

} // namespace verify
} // namespace cfv

#endif // CFV_VERIFY_CHAOS_H
