//===- service/Json.cpp - Minimal JSON parsing and writing ----------------===//
//
// Part of the cfv project: reproduction of Jiang & Agrawal, CGO 2018.
//
//===----------------------------------------------------------------------===//

#include "service/Json.h"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>

using namespace cfv;
using namespace cfv::json;

//===----------------------------------------------------------------------===//
// Value
//===----------------------------------------------------------------------===//

const Value *Value::find(const std::string &Key) const {
  if (K != Kind::Object)
    return nullptr;
  // Last occurrence wins, matching the usual reader behavior.
  const Value *Found = nullptr;
  for (const auto &[Name, V] : Obj)
    if (Name == Key)
      Found = &V;
  return Found;
}

std::string Value::getString(const std::string &Key,
                             const std::string &Default) const {
  const Value *V = find(Key);
  return V && V->isString() ? V->str() : Default;
}

double Value::getNumber(const std::string &Key, double Default) const {
  const Value *V = find(Key);
  return V && V->isNumber() ? V->number() : Default;
}

int64_t Value::getInt(const std::string &Key, int64_t Default) const {
  const Value *V = find(Key);
  if (!V || !V->isNumber())
    return Default;
  const double N = V->number();
  if (!std::isfinite(N) || N < -9.2e18 || N > 9.2e18)
    return Default;
  return static_cast<int64_t>(N);
}

bool Value::getBool(const std::string &Key, bool Default) const {
  const Value *V = find(Key);
  return V && V->isBool() ? V->boolean() : Default;
}

Value Value::makeBool(bool V) {
  Value X;
  X.K = Kind::Bool;
  X.B = V;
  return X;
}

Value Value::makeNumber(double V) {
  Value X;
  X.K = Kind::Number;
  X.Num = V;
  return X;
}

Value Value::makeString(std::string V) {
  Value X;
  X.K = Kind::String;
  X.Str = std::move(V);
  return X;
}

Value Value::makeArray(std::vector<Value> V) {
  Value X;
  X.K = Kind::Array;
  X.Arr = std::move(V);
  return X;
}

Value Value::makeObject(std::vector<std::pair<std::string, Value>> V) {
  Value X;
  X.K = Kind::Object;
  X.Obj = std::move(V);
  return X;
}

//===----------------------------------------------------------------------===//
// Parser
//===----------------------------------------------------------------------===//

namespace {

constexpr int kMaxDepth = 64;

class Parser {
public:
  explicit Parser(const std::string &Text) : S(Text) {}

  Expected<Value> run() {
    skipWs();
    Value V;
    if (Status St = parseValue(V, 0); !St.ok())
      return St;
    skipWs();
    if (Pos != S.size())
      return errorAt("trailing content after JSON value");
    return V;
  }

private:
  Status errorAt(const std::string &Msg) const {
    return Status::error(ErrorCode::ParseError,
                         Msg + " at offset " + std::to_string(Pos));
  }

  void skipWs() {
    while (Pos < S.size() && (S[Pos] == ' ' || S[Pos] == '\t' ||
                              S[Pos] == '\n' || S[Pos] == '\r'))
      ++Pos;
  }

  bool consume(char C) {
    if (Pos < S.size() && S[Pos] == C) {
      ++Pos;
      return true;
    }
    return false;
  }

  Status parseValue(Value &Out, int Depth) {
    if (Depth > kMaxDepth)
      return errorAt("nesting too deep");
    if (Pos >= S.size())
      return errorAt("unexpected end of input");
    switch (S[Pos]) {
    case '{':
      return parseObject(Out, Depth);
    case '[':
      return parseArray(Out, Depth);
    case '"': {
      std::string Str;
      if (Status St = parseString(Str); !St.ok())
        return St;
      Out = Value::makeString(std::move(Str));
      return Status();
    }
    case 't':
      if (S.compare(Pos, 4, "true") == 0) {
        Pos += 4;
        Out = Value::makeBool(true);
        return Status();
      }
      return errorAt("bad literal");
    case 'f':
      if (S.compare(Pos, 5, "false") == 0) {
        Pos += 5;
        Out = Value::makeBool(false);
        return Status();
      }
      return errorAt("bad literal");
    case 'n':
      if (S.compare(Pos, 4, "null") == 0) {
        Pos += 4;
        Out = Value::makeNull();
        return Status();
      }
      return errorAt("bad literal");
    default:
      return parseNumber(Out);
    }
  }

  Status parseObject(Value &Out, int Depth) {
    ++Pos; // '{'
    std::vector<std::pair<std::string, Value>> Members;
    skipWs();
    if (consume('}')) {
      Out = Value::makeObject(std::move(Members));
      return Status();
    }
    while (true) {
      skipWs();
      if (Pos >= S.size() || S[Pos] != '"')
        return errorAt("expected object key string");
      std::string Key;
      if (Status St = parseString(Key); !St.ok())
        return St;
      skipWs();
      if (!consume(':'))
        return errorAt("expected ':'");
      skipWs();
      Value V;
      if (Status St = parseValue(V, Depth + 1); !St.ok())
        return St;
      Members.emplace_back(std::move(Key), std::move(V));
      skipWs();
      if (consume(','))
        continue;
      if (consume('}'))
        break;
      return errorAt("expected ',' or '}'");
    }
    Out = Value::makeObject(std::move(Members));
    return Status();
  }

  Status parseArray(Value &Out, int Depth) {
    ++Pos; // '['
    std::vector<Value> Items;
    skipWs();
    if (consume(']')) {
      Out = Value::makeArray(std::move(Items));
      return Status();
    }
    while (true) {
      skipWs();
      Value V;
      if (Status St = parseValue(V, Depth + 1); !St.ok())
        return St;
      Items.push_back(std::move(V));
      skipWs();
      if (consume(','))
        continue;
      if (consume(']'))
        break;
      return errorAt("expected ',' or ']'");
    }
    Out = Value::makeArray(std::move(Items));
    return Status();
  }

  Status parseString(std::string &Out) {
    ++Pos; // opening quote
    Out.clear();
    while (true) {
      if (Pos >= S.size())
        return errorAt("unterminated string");
      const unsigned char C = static_cast<unsigned char>(S[Pos]);
      if (C == '"') {
        ++Pos;
        return Status();
      }
      if (C < 0x20)
        return errorAt("unescaped control character in string");
      if (C != '\\') {
        Out.push_back(static_cast<char>(C));
        ++Pos;
        continue;
      }
      ++Pos; // backslash
      if (Pos >= S.size())
        return errorAt("unterminated escape");
      const char E = S[Pos++];
      switch (E) {
      case '"':
      case '\\':
      case '/':
        Out.push_back(E);
        break;
      case 'b':
        Out.push_back('\b');
        break;
      case 'f':
        Out.push_back('\f');
        break;
      case 'n':
        Out.push_back('\n');
        break;
      case 'r':
        Out.push_back('\r');
        break;
      case 't':
        Out.push_back('\t');
        break;
      case 'u': {
        unsigned Code = 0;
        if (Status St = parseHex4(Code); !St.ok())
          return St;
        // Combine a surrogate pair when present.
        if (Code >= 0xD800 && Code <= 0xDBFF && Pos + 1 < S.size() &&
            S[Pos] == '\\' && S[Pos + 1] == 'u') {
          Pos += 2;
          unsigned Low = 0;
          if (Status St = parseHex4(Low); !St.ok())
            return St;
          if (Low < 0xDC00 || Low > 0xDFFF)
            return errorAt("bad low surrogate");
          Code = 0x10000 + ((Code - 0xD800) << 10) + (Low - 0xDC00);
        }
        appendUtf8(Out, Code);
        break;
      }
      default:
        return errorAt("bad escape character");
      }
    }
  }

  Status parseHex4(unsigned &Out) {
    if (Pos + 4 > S.size())
      return errorAt("truncated \\u escape");
    Out = 0;
    for (int I = 0; I < 4; ++I) {
      const char C = S[Pos++];
      Out <<= 4;
      if (C >= '0' && C <= '9')
        Out |= static_cast<unsigned>(C - '0');
      else if (C >= 'a' && C <= 'f')
        Out |= static_cast<unsigned>(C - 'a' + 10);
      else if (C >= 'A' && C <= 'F')
        Out |= static_cast<unsigned>(C - 'A' + 10);
      else
        return errorAt("bad hex digit in \\u escape");
    }
    return Status();
  }

  static void appendUtf8(std::string &Out, unsigned Code) {
    if (Code < 0x80) {
      Out.push_back(static_cast<char>(Code));
    } else if (Code < 0x800) {
      Out.push_back(static_cast<char>(0xC0 | (Code >> 6)));
      Out.push_back(static_cast<char>(0x80 | (Code & 0x3F)));
    } else if (Code < 0x10000) {
      Out.push_back(static_cast<char>(0xE0 | (Code >> 12)));
      Out.push_back(static_cast<char>(0x80 | ((Code >> 6) & 0x3F)));
      Out.push_back(static_cast<char>(0x80 | (Code & 0x3F)));
    } else {
      Out.push_back(static_cast<char>(0xF0 | (Code >> 18)));
      Out.push_back(static_cast<char>(0x80 | ((Code >> 12) & 0x3F)));
      Out.push_back(static_cast<char>(0x80 | ((Code >> 6) & 0x3F)));
      Out.push_back(static_cast<char>(0x80 | (Code & 0x3F)));
    }
  }

  Status parseNumber(Value &Out) {
    const size_t Begin = Pos;
    if (Pos < S.size() && S[Pos] == '-')
      ++Pos;
    while (Pos < S.size() &&
           ((S[Pos] >= '0' && S[Pos] <= '9') || S[Pos] == '.' ||
            S[Pos] == 'e' || S[Pos] == 'E' || S[Pos] == '+' || S[Pos] == '-'))
      ++Pos;
    if (Pos == Begin)
      return errorAt("expected a JSON value");
    const std::string Tok = S.substr(Begin, Pos - Begin);
    errno = 0;
    char *End = nullptr;
    const double V = std::strtod(Tok.c_str(), &End);
    if (End != Tok.c_str() + Tok.size() || errno == ERANGE ||
        !std::isfinite(V)) {
      Pos = Begin;
      return errorAt("bad number '" + Tok + "'");
    }
    Out = Value::makeNumber(V);
    return Status();
  }

  const std::string &S;
  size_t Pos = 0;
};

} // namespace

Expected<Value> json::parse(const std::string &Text) {
  return Parser(Text).run();
}

//===----------------------------------------------------------------------===//
// Writer
//===----------------------------------------------------------------------===//

std::string json::escape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (const unsigned char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\b':
      Out += "\\b";
      break;
    case '\f':
      Out += "\\f";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (C < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out.push_back(static_cast<char>(C));
      }
    }
  }
  return Out;
}

void ObjectWriter::key(const char *Key) {
  if (!First)
    Out += ",";
  First = false;
  Out += "\"";
  Out += escape(Key);
  Out += "\":";
}

ObjectWriter &ObjectWriter::field(const char *Key, const std::string &V) {
  key(Key);
  Out += "\"" + escape(V) + "\"";
  return *this;
}

ObjectWriter &ObjectWriter::field(const char *Key, const char *V) {
  return field(Key, std::string(V));
}

ObjectWriter &ObjectWriter::field(const char *Key, double V) {
  key(Key);
  if (!std::isfinite(V)) {
    Out += "null";
    return *this;
  }
  char Buf[40];
  std::snprintf(Buf, sizeof(Buf), "%.9g", V);
  Out += Buf;
  return *this;
}

ObjectWriter &ObjectWriter::field(const char *Key, int64_t V) {
  key(Key);
  Out += std::to_string(V);
  return *this;
}

ObjectWriter &ObjectWriter::field(const char *Key, uint64_t V) {
  key(Key);
  Out += std::to_string(V);
  return *this;
}

ObjectWriter &ObjectWriter::field(const char *Key, bool V) {
  key(Key);
  Out += V ? "true" : "false";
  return *this;
}

ObjectWriter &ObjectWriter::fieldRaw(const char *Key, const std::string &Raw) {
  key(Key);
  Out += Raw;
  return *this;
}
