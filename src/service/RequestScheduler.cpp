//===- service/RequestScheduler.cpp - Bounded fair work queue -------------===//
//
// Part of the cfv project: reproduction of Jiang & Agrawal, CGO 2018.
//
//===----------------------------------------------------------------------===//

#include "service/RequestScheduler.h"

#include <algorithm>
#include <chrono>

using namespace cfv;
using namespace cfv::service;

namespace {
double nowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
} // namespace

RequestScheduler::RequestScheduler(Config C) : Cfg(C) {
  const int N = std::max(1, Cfg.Workers);
  Workers.reserve(N);
  for (int I = 0; I < N; ++I)
    Workers.emplace_back([this] { workerLoop(); });
}

RequestScheduler::~RequestScheduler() {
  {
    std::lock_guard<std::mutex> Lock(Mu);
    Stop = true;
  }
  CvWork.notify_all();
  for (std::thread &W : Workers)
    W.join();
}

Status RequestScheduler::submit(const std::string &Key, double TimeoutSeconds,
                                Task T) {
  {
    std::lock_guard<std::mutex> Lock(Mu);
    if (Stop)
      return Status::error(ErrorCode::Unavailable, "scheduler shutting down");
    if (QueuedCount >= Cfg.QueueDepth) {
      ++Counters.Rejected;
      return Status::error(ErrorCode::Unavailable,
                           "queue full (" + std::to_string(Cfg.QueueDepth) +
                               " requests pending); retry later");
    }
    Pending P;
    P.Run = std::move(T);
    P.EnqueuedAt = nowSeconds();
    P.Deadline = TimeoutSeconds > 0.0 ? P.EnqueuedAt + TimeoutSeconds : 0.0;
    auto It = Queues.find(Key);
    if (It == Queues.end()) {
      Queues.emplace(Key, std::deque<Pending>{}).first->second.push_back(
          std::move(P));
      KeyOrder.push_back(Key);
    } else {
      It->second.push_back(std::move(P));
    }
    ++QueuedCount;
    ++Counters.Submitted;
    Counters.Queued = QueuedCount;
  }
  CvWork.notify_one();
  return Status();
}

bool RequestScheduler::popLocked(Pending &Out) {
  if (KeyOrder.empty())
    return false;
  Cursor %= KeyOrder.size();
  std::deque<Pending> &Q = Queues[KeyOrder[Cursor]];
  Out = std::move(Q.front());
  Q.pop_front();
  if (Q.empty()) {
    Queues.erase(KeyOrder[Cursor]);
    KeyOrder.erase(KeyOrder.begin() + static_cast<ptrdiff_t>(Cursor));
    // Cursor now points at the next key in the ring.
  } else {
    ++Cursor;
  }
  --QueuedCount;
  Counters.Queued = QueuedCount;
  return true;
}

void RequestScheduler::workerLoop() {
  std::unique_lock<std::mutex> Lock(Mu);
  while (true) {
    CvWork.wait(Lock, [this] { return Stop || QueuedCount > 0; });
    Pending P;
    if (!popLocked(P)) {
      if (Stop)
        return;
      continue;
    }
    ++Running;
    TaskInfo Info;
    const double Now = nowSeconds();
    Info.QueueSeconds = std::max(0.0, Now - P.EnqueuedAt);
    Info.DeadlineExpired = P.Deadline > 0.0 && Now >= P.Deadline;
    if (Info.DeadlineExpired)
      ++Counters.Expired;
    Lock.unlock();
    P.Run(Info);
    Lock.lock();
    --Running;
    ++Counters.Completed;
    if (QueuedCount == 0 && Running == 0)
      CvIdle.notify_all();
  }
}

void RequestScheduler::drain() {
  std::unique_lock<std::mutex> Lock(Mu);
  CvIdle.wait(Lock, [this] { return QueuedCount == 0 && Running == 0; });
}

RequestScheduler::Stats RequestScheduler::stats() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Counters;
}
