//===- simd/Reduce.h - Masked horizontal reductions -------------*- C++ -*-===//
//
// Part of the cfv project: reproduction of Jiang & Agrawal, CGO 2018.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's v_horizontal_reduce(mreduce, vdata): folds the lanes
/// selected by a mask into one scalar with an associative operator.  On
/// AVX-512 these map to the _mm512_mask_reduce_* intrinsic sequences
/// (log2(16) = 4 shuffle+op steps); the scalar backend folds in lane
/// order.  Because the fold orders differ, float add/mul results can
/// differ between backends in the last ulps -- an inherent property of
/// reassociated reductions.
///
//===----------------------------------------------------------------------===//

#ifndef CFV_SIMD_REDUCE_H
#define CFV_SIMD_REDUCE_H

#include "simd/Mask.h"
#include "simd/Ops.h"
#include "simd/Vec.h"
#include "simd/Vec64.h"

#include <type_traits>

namespace cfv {
namespace simd {

/// Scalar-backend masked reduction (lane order, starting from the
/// operator's identity).
template <typename Op>
inline float maskedReduce(Mask16 M, VecF32<backend::Scalar> V) {
  float R = Op::template identity<float>();
  for (int I = 0; I < backend::Scalar::kLanes; ++I)
    if (testLane(M, I))
      R = Op::template apply<float>(R, V.Lane[I]);
  return R;
}

template <typename Op>
inline int32_t maskedReduce(Mask16 M, VecI32<backend::Scalar> V) {
  int32_t R = Op::template identity<int32_t>();
  for (int I = 0; I < backend::Scalar::kLanes; ++I)
    if (testLane(M, I))
      R = Op::template apply<int32_t>(R, V.Lane[I]);
  return R;
}

template <typename Op>
inline double maskedReduce(Mask16 M, VecF64<backend::Scalar> V) {
  double R = Op::template identity<double>();
  for (int I = 0; I < kLanes64; ++I)
    if (testLane(M, I))
      R = Op::template apply<double>(R, V.Lane[I]);
  return R;
}

template <typename Op>
inline int64_t maskedReduce(Mask16 M, VecI64<backend::Scalar> V) {
  int64_t R = Op::template identity<int64_t>();
  for (int I = 0; I < kLanes64; ++I)
    if (testLane(M, I))
      R = Op::template apply<int64_t>(R, V.Lane[I]);
  return R;
}

#if CFV_HAVE_AVX2

/// AVX2 has no mask_reduce intrinsics; spill and fold in lane order,
/// which bit-matches the scalar backend (the AVX-512 tree fold may differ
/// in the last ulps for float add/mul, as documented above).
template <typename Op>
inline float maskedReduce(Mask16 M, VecF32<backend::Avx2> V) {
  alignas(32) float Buf[VecF32<backend::Avx2>::kLanes];
  V.store(Buf);
  float R = Op::template identity<float>();
  for (int I = 0; I < VecF32<backend::Avx2>::kLanes; ++I)
    if (testLane(M, I))
      R = Op::template apply<float>(R, Buf[I]);
  return R;
}

template <typename Op>
inline int32_t maskedReduce(Mask16 M, VecI32<backend::Avx2> V) {
  alignas(32) int32_t Buf[VecI32<backend::Avx2>::kLanes];
  V.store(Buf);
  int32_t R = Op::template identity<int32_t>();
  for (int I = 0; I < VecI32<backend::Avx2>::kLanes; ++I)
    if (testLane(M, I))
      R = Op::template apply<int32_t>(R, Buf[I]);
  return R;
}

template <typename Op>
inline double maskedReduce(Mask16 M, VecF64<backend::Avx2> V) {
  alignas(32) double Buf[VecF64<backend::Avx2>::kLanes];
  V.store(Buf);
  double R = Op::template identity<double>();
  for (int I = 0; I < VecF64<backend::Avx2>::kLanes; ++I)
    if (testLane(M, I))
      R = Op::template apply<double>(R, Buf[I]);
  return R;
}

template <typename Op>
inline int64_t maskedReduce(Mask16 M, VecI64<backend::Avx2> V) {
  alignas(32) int64_t Buf[VecI64<backend::Avx2>::kLanes];
  V.store(Buf);
  int64_t R = Op::template identity<int64_t>();
  for (int I = 0; I < VecI64<backend::Avx2>::kLanes; ++I)
    if (testLane(M, I))
      R = Op::template apply<int64_t>(R, Buf[I]);
  return R;
}

#endif // CFV_HAVE_AVX2

#if CFV_HAVE_AVX512

template <typename Op>
inline float maskedReduce(Mask16 M, VecF32<backend::Avx512> V) {
  if constexpr (std::is_same_v<Op, OpAdd>)
    return _mm512_mask_reduce_add_ps(M, V.Raw);
  else if constexpr (std::is_same_v<Op, OpMul>)
    return _mm512_mask_reduce_mul_ps(M, V.Raw);
  else if constexpr (std::is_same_v<Op, OpMin>)
    return _mm512_mask_reduce_min_ps(M, V.Raw);
  else {
    static_assert(std::is_same_v<Op, OpMax>, "unknown reduction operator");
    return _mm512_mask_reduce_max_ps(M, V.Raw);
  }
}

template <typename Op>
inline int32_t maskedReduce(Mask16 M, VecI32<backend::Avx512> V) {
  if constexpr (std::is_same_v<Op, OpAdd>)
    return _mm512_mask_reduce_add_epi32(M, V.Raw);
  else if constexpr (std::is_same_v<Op, OpMul>)
    return _mm512_mask_reduce_mul_epi32(M, V.Raw);
  else if constexpr (std::is_same_v<Op, OpMin>)
    return _mm512_mask_reduce_min_epi32(M, V.Raw);
  else if constexpr (std::is_same_v<Op, OpAnd>)
    return _mm512_mask_reduce_and_epi32(M, V.Raw);
  else if constexpr (std::is_same_v<Op, OpOr>)
    return _mm512_mask_reduce_or_epi32(M, V.Raw);
  else {
    static_assert(std::is_same_v<Op, OpMax>, "unknown reduction operator");
    return _mm512_mask_reduce_max_epi32(M, V.Raw);
  }
}

template <typename Op>
inline double maskedReduce(Mask16 M, VecF64<backend::Avx512> V) {
  const __mmask8 M8 = static_cast<__mmask8>(M);
  if constexpr (std::is_same_v<Op, OpAdd>)
    return _mm512_mask_reduce_add_pd(M8, V.Raw);
  else if constexpr (std::is_same_v<Op, OpMul>)
    return _mm512_mask_reduce_mul_pd(M8, V.Raw);
  else if constexpr (std::is_same_v<Op, OpMin>)
    return _mm512_mask_reduce_min_pd(M8, V.Raw);
  else {
    static_assert(std::is_same_v<Op, OpMax>, "unknown reduction operator");
    return _mm512_mask_reduce_max_pd(M8, V.Raw);
  }
}

template <typename Op>
inline int64_t maskedReduce(Mask16 M, VecI64<backend::Avx512> V) {
  const __mmask8 M8 = static_cast<__mmask8>(M);
  if constexpr (std::is_same_v<Op, OpAdd>)
    return _mm512_mask_reduce_add_epi64(M8, V.Raw);
  else if constexpr (std::is_same_v<Op, OpMul>)
    return _mm512_mask_reduce_mul_epi64(M8, V.Raw);
  else if constexpr (std::is_same_v<Op, OpMin>)
    return _mm512_mask_reduce_min_epi64(M8, V.Raw);
  else if constexpr (std::is_same_v<Op, OpAnd>)
    return _mm512_mask_reduce_and_epi64(M8, V.Raw);
  else if constexpr (std::is_same_v<Op, OpOr>)
    return _mm512_mask_reduce_or_epi64(M8, V.Raw);
  else {
    static_assert(std::is_same_v<Op, OpMax>, "unknown reduction operator");
    return _mm512_mask_reduce_max_epi64(M8, V.Raw);
  }
}

#endif // CFV_HAVE_AVX512

} // namespace simd
} // namespace cfv

#endif // CFV_SIMD_REDUCE_H
