//===- tests/adaptive_test.cpp - Adaptive Algorithm 1/2 policy -----------===//
//
// Part of the cfv project: reproduction of Jiang & Agrawal, CGO 2018.
//
//===----------------------------------------------------------------------===//

#include "TestHelpers.h"

#include "core/Adaptive.h"

using namespace cfv;
using namespace cfv::core;
using namespace cfv::simd;
using namespace cfv::test;

namespace {

constexpr int kArr = 64;

/// Runs a stream of index/value vectors through an AdaptiveReducer and
/// returns the final reduction array.
template <typename B>
AlignedVector<float> runStream(const std::vector<Lane16i> &IdxStream,
                               const std::vector<Lane16f> &ValStream,
                               bool *UsedAlg2 = nullptr,
                               unsigned Window = 8) {
  AlignedVector<float> Main(kArr, 0.0f), Aux(kArr, 0.0f);
  AdaptiveReducer<OpAdd, float, B> Red(Aux.data(), Aux.size(), Window);
  for (std::size_t I = 0; I < IdxStream.size(); ++I) {
    auto D = loadF<B>(ValStream[I]);
    const auto Idx = loadIdx<B>(IdxStream[I]);
    const Mask16 M = Red.reduce(kAllLanes, Idx, D);
    accumulateScatter<OpAdd>(M, Idx, D, Main.data());
  }
  Red.mergeInto(Main.data());
  if (UsedAlg2)
    *UsedAlg2 = Red.usingAlg2();
  return Main;
}

/// Scalar ground truth of the whole stream.
AlignedVector<float> refStream(const std::vector<Lane16i> &IdxStream,
                               const std::vector<Lane16f> &ValStream) {
  AlignedVector<float> Main(kArr, 0.0f);
  for (std::size_t I = 0; I < IdxStream.size(); ++I)
    for (int L = 0; L < kMaxLanes; ++L)
      Main[IdxStream[I][L]] += ValStream[I][L];
  return Main;
}

void makeStream(uint32_t Universe, uint64_t Seed, int Vectors,
                std::vector<Lane16i> &Idx, std::vector<Lane16f> &Val) {
  Xoshiro256 Rng(Seed);
  for (int I = 0; I < Vectors; ++I) {
    Idx.push_back(randomIndices(Rng, Universe));
    Val.push_back(randomFloats(Rng));
  }
}

} // namespace

template <typename B> class AdaptiveTest : public ::testing::Test {};
TYPED_TEST_SUITE(AdaptiveTest, AllBackends, );

TYPED_TEST(AdaptiveTest, StaysOnAlg1ForCleanIndices) {
  using B = TypeParam;
  std::vector<Lane16i> Idx;
  std::vector<Lane16f> Val;
  // Distinct indices in every vector: D1 = 0 throughout.
  Xoshiro256 Rng(1);
  for (int V = 0; V < 32; ++V) {
    Lane16i L;
    for (int I = 0; I < kMaxLanes; ++I)
      L[I] = (I + V) % kArr;
    Idx.push_back(L);
    Val.push_back(randomFloats(Rng));
  }
  bool UsedAlg2 = true;
  const auto Got = runStream<B>(Idx, Val, &UsedAlg2);
  EXPECT_FALSE(UsedAlg2);
  const auto Want = refStream(Idx, Val);
  for (int I = 0; I < kArr; ++I)
    EXPECT_NEAR(Got[I], Want[I], 1e-3);
}

TYPED_TEST(AdaptiveTest, SwitchesToAlg2UnderHeavyDuplication) {
  using B = TypeParam;
  std::vector<Lane16i> Idx;
  std::vector<Lane16f> Val;
  // Universe of 4: every vector has ~4 distinct conflicting lanes, the
  // paper's hash-aggregation regime (D1 can reach 4 -> Algorithm 2).
  makeStream(4, 7, 64, Idx, Val);
  bool UsedAlg2 = false;
  const auto Got = runStream<B>(Idx, Val, &UsedAlg2);
  EXPECT_TRUE(UsedAlg2);
  const auto Want = refStream(Idx, Val);
  for (int I = 0; I < kArr; ++I)
    EXPECT_NEAR(Got[I], Want[I], 2e-3);
}

TYPED_TEST(AdaptiveTest, ResultsCorrectAcrossDensities) {
  using B = TypeParam;
  for (const uint32_t Universe : {2u, 4u, 8u, 16u, 64u}) {
    std::vector<Lane16i> Idx;
    std::vector<Lane16f> Val;
    makeStream(Universe, Universe * 31, 48, Idx, Val);
    const auto Got = runStream<B>(Idx, Val);
    const auto Want = refStream(Idx, Val);
    for (int I = 0; I < kArr; ++I)
      ASSERT_NEAR(Got[I], Want[I], 2e-3)
          << "universe " << Universe << " entry " << I;
  }
}

TYPED_TEST(AdaptiveTest, MeanD1Reported) {
  using B = TypeParam;
  AlignedVector<float> Aux(kArr, 0.0f);
  AdaptiveReducer<OpAdd, float, B> Red(Aux.data(), Aux.size(), 4);
  // Vectors where all lanes share one index: D1 = 1 every time.
  for (int I = 0; I < 4; ++I) {
    auto D = VecF32<B>::broadcast(1.0f);
    Red.reduce(kAllLanes, VecI32<B>::broadcast(I), D);
  }
  EXPECT_DOUBLE_EQ(Red.meanD1(), 1.0);
  EXPECT_FALSE(Red.usingAlg2()) << "policy requires D1 > 1";
}

TYPED_TEST(AdaptiveTest, MergeIsIdempotent) {
  using B = TypeParam;
  AlignedVector<float> Main(kArr, 0.0f), Aux(kArr, 0.0f);
  AdaptiveReducer<OpAdd, float, B> Red(Aux.data(), Aux.size(), 1);
  // Force Algorithm 2 with a fully duplicated first vector.
  Lane16i Idx;
  for (int I = 0; I < kMaxLanes; ++I)
    Idx[I] = I % 4;
  for (int V = 0; V < 3; ++V) {
    auto D = VecF32<B>::broadcast(1.0f);
    const Mask16 M = Red.reduce(kAllLanes, loadIdx<B>(Idx), D);
    accumulateScatter<OpAdd>(M, loadIdx<B>(Idx), D, Main.data());
  }
  EXPECT_TRUE(Red.usingAlg2());
  EXPECT_TRUE(Red.needsMerge());
  Red.mergeInto(Main.data());
  EXPECT_FALSE(Red.needsMerge());
  const AlignedVector<float> Snapshot = Main;
  Red.mergeInto(Main.data()); // second merge must be a no-op
  EXPECT_EQ(Main, Snapshot);
  // 3 vectors x 16 lanes over 4 indices -> 12 each.
  for (int I = 0; I < 4; ++I)
    EXPECT_FLOAT_EQ(Main[I], 12.0f);
}
