//===- tests/graph_io_test.cpp - SNAP edge-list I/O ------------------------===//
//
// Part of the cfv project: reproduction of Jiang & Agrawal, CGO 2018.
//
//===----------------------------------------------------------------------===//

#include "graph/Generators.h"
#include "graph/Io.h"

#include "gtest/gtest.h"

#include <cstdio>
#include <fstream>

using namespace cfv;
using namespace cfv::graph;

namespace {

/// RAII temp file path.
class TempFile {
public:
  TempFile() {
    char Buf[] = "/tmp/cfv_io_test_XXXXXX";
    const int Fd = mkstemp(Buf);
    EXPECT_GE(Fd, 0);
    if (Fd >= 0)
      close(Fd);
    PathStr = Buf;
  }
  ~TempFile() { std::remove(PathStr.c_str()); }
  const std::string &path() const { return PathStr; }

private:
  std::string PathStr;
};

void writeText(const std::string &Path, const std::string &Text) {
  std::ofstream Out(Path);
  Out << Text;
}

} // namespace

TEST(SnapIo, ReadsCommentsAndEdges) {
  TempFile F;
  writeText(F.path(), "# Directed graph\n"
                      "# FromNodeId\tToNodeId\n"
                      "0\t1\n"
                      "1\t2\n"
                      "0\t2\n");
  const auto G = readSnapEdgeList(F.path());
  ASSERT_TRUE(G.has_value());
  EXPECT_EQ(G->NumNodes, 3);
  EXPECT_EQ(G->numEdges(), 3);
  EXPECT_FALSE(G->isWeighted());
  EXPECT_EQ(G->Src[2], 0);
  EXPECT_EQ(G->Dst[2], 2);
}

TEST(SnapIo, CompactsSparseIds) {
  TempFile F;
  // SNAP files often skip ids; they must be densified.
  writeText(F.path(), "1000000 5\n5 777\n");
  const auto G = readSnapEdgeList(F.path());
  ASSERT_TRUE(G.has_value());
  EXPECT_EQ(G->NumNodes, 3);
  for (int64_t E = 0; E < G->numEdges(); ++E) {
    EXPECT_LT(G->Src[E], 3);
    EXPECT_LT(G->Dst[E], 3);
  }
  // Same raw id maps to the same compact id.
  EXPECT_EQ(G->Dst[0], G->Src[1]);
}

TEST(SnapIo, ReadsWeights) {
  TempFile F;
  writeText(F.path(), "0 1 2.5\n1 0 0.25\n");
  const auto G = readSnapEdgeList(F.path());
  ASSERT_TRUE(G.has_value());
  ASSERT_TRUE(G->isWeighted());
  EXPECT_FLOAT_EQ(G->Weight[0], 2.5f);
  EXPECT_FLOAT_EQ(G->Weight[1], 0.25f);
}

TEST(SnapIo, RejectsMissingFile) {
  std::string Error;
  const auto G = readSnapEdgeList("/nonexistent/cfv.txt", &Error);
  EXPECT_FALSE(G.has_value());
  EXPECT_NE(Error.find("cannot open"), std::string::npos);
}

TEST(SnapIo, RejectsMalformedLine) {
  TempFile F;
  writeText(F.path(), "0 1\nbogus line\n");
  std::string Error;
  const auto G = readSnapEdgeList(F.path(), &Error);
  EXPECT_FALSE(G.has_value());
  EXPECT_NE(Error.find("parse error"), std::string::npos);
  EXPECT_NE(Error.find(":2"), std::string::npos) << "line number reported";
}

TEST(SnapIo, RejectsInconsistentColumns) {
  TempFile F;
  writeText(F.path(), "0 1 2.0\n1 2\n");
  std::string Error;
  const auto G = readSnapEdgeList(F.path(), &Error);
  EXPECT_FALSE(G.has_value());
  EXPECT_NE(Error.find("inconsistent"), std::string::npos);
}

TEST(SnapIo, RejectsEmptyFile) {
  TempFile F;
  writeText(F.path(), "# only comments\n");
  std::string Error;
  const auto G = readSnapEdgeList(F.path(), &Error);
  EXPECT_FALSE(G.has_value());
  EXPECT_NE(Error.find("no edges"), std::string::npos);
}

TEST(SnapIo, RejectsNegativeIds) {
  TempFile F;
  writeText(F.path(), "0 -3\n");
  const auto G = readSnapEdgeList(F.path());
  EXPECT_FALSE(G.has_value());
}

TEST(SnapIo, RoundTripsUnweighted) {
  const EdgeList G = genUniform(8, 500, 99);
  TempFile F;
  ASSERT_TRUE(writeSnapEdgeList(F.path(), G));
  const auto Back = readSnapEdgeList(F.path());
  ASSERT_TRUE(Back.has_value());
  ASSERT_EQ(Back->numEdges(), G.numEdges());
  // Our writer emits compact ids, so the reader preserves them as long as
  // first occurrence order is id order... verify edge-by-edge against a
  // remap of the original.
  for (int64_t E = 0; E < G.numEdges(); ++E) {
    EXPECT_EQ(Back->Src[E] == Back->Dst[E], G.Src[E] == G.Dst[E]);
  }
  EXPECT_FALSE(Back->isWeighted());
}

TEST(SnapIo, RoundTripsWeightsExactly) {
  const EdgeList G = genRmat(7, 300, 12, 16.0f);
  TempFile F;
  ASSERT_TRUE(writeSnapEdgeList(F.path(), G));
  const auto Back = readSnapEdgeList(F.path());
  ASSERT_TRUE(Back.has_value());
  ASSERT_TRUE(Back->isWeighted());
  ASSERT_EQ(Back->numEdges(), G.numEdges());
  for (int64_t E = 0; E < G.numEdges(); ++E)
    ASSERT_NEAR(Back->Weight[E], G.Weight[E], 1e-4f * G.Weight[E]);
}
