//===-- service/Protocol.cpp - NDJSON line classification -----------------===//

#include "service/Protocol.h"

#include "core/Dispatch.h"
#include "obs/Metrics.h"
#include "service/Json.h"

namespace cfv {
namespace service {

const char *lineKindName(LineKind K) {
  switch (K) {
  case LineKind::Empty:
    return "empty";
  case LineKind::HttpGet:
    return "http_get";
  case LineKind::Shutdown:
    return "shutdown";
  case LineKind::Stats:
    return "stats";
  case LineKind::Metrics:
    return "metrics";
  case LineKind::Backends:
    return "backends";
  case LineKind::UnknownCmd:
    return "unknown_cmd";
  case LineKind::Malformed:
    return "malformed";
  case LineKind::BadRequest:
    return "bad_request";
  case LineKind::Request:
    return "request";
  }
  return "unknown";
}

ClassifiedLine classifyLine(const std::string &Line) {
  ClassifiedLine C;
  if (Line.empty())
    return C;
  if (Line.rfind("GET ", 0) == 0) {
    C.Kind = LineKind::HttpGet;
    return C;
  }
  const Expected<json::Value> V = json::parse(Line);
  if (!V.ok()) {
    // A malformed line is a request-level failure, not a server failure.
    C.Kind = LineKind::Malformed;
    C.Error = V.status();
    return C;
  }
  C.Id = V->getString("id", "");
  const std::string Cmd = V->getString("cmd", "");
  if (Cmd == "shutdown") {
    C.Kind = LineKind::Shutdown;
    return C;
  }
  if (Cmd == "stats") {
    C.Kind = LineKind::Stats;
    return C;
  }
  if (Cmd == "metrics") {
    C.Kind = LineKind::Metrics;
    return C;
  }
  if (Cmd == "backends") {
    C.Kind = LineKind::Backends;
    return C;
  }
  if (!Cmd.empty()) {
    C.Kind = LineKind::UnknownCmd;
    C.Error = Status::error(ErrorCode::InvalidArgument,
                            "unknown cmd '" + Cmd + "'");
    return C;
  }
  Expected<ServeRequest> R = parseRequest(*V);
  if (!R.ok()) {
    C.Kind = LineKind::BadRequest;
    C.Error = R.status();
    return C;
  }
  C.Kind = LineKind::Request;
  C.Request = *R;
  return C;
}

std::string statsJson(const Service &S) {
  const CacheStats C = S.cacheStats();
  const RequestScheduler::Stats Q = S.schedulerStats();
  json::ObjectWriter W;
  W.field("ok", true)
      .field("cache_hits", C.Hits)
      .field("cache_misses", C.Misses)
      .field("cache_coalesced", C.Coalesced)
      .field("cache_evictions", C.Evictions)
      .field("cache_resident_bytes", C.ResidentBytes)
      .field("cache_entries", C.Entries)
      .field("cache_emergency_evictions", C.EmergencyEvictions)
      .field("cache_circuit_rejects", C.CircuitRejects)
      .field("cache_open_circuits", C.OpenCircuits)
      .field("submitted", Q.Submitted)
      .field("rejected", Q.Rejected)
      .field("completed", Q.Completed)
      .field("expired", Q.Expired)
      .field("shed", Q.Shed)
      .field("watchdog_trips", Q.WatchdogTrips)
      .field("queued", Q.Queued)
      // The merged observability registry: every per-thread shard of
      // every counter/histogram summed at this instant, plus gauge
      // callbacks sampled live.  Mirrors the flat fields above and adds
      // the kernel-level distributions (D1, lane utilization).
      .fieldRaw("metrics", obs::MetricsRegistry::instance().renderJson());
  return W.str();
}

std::string metricsJson() {
  json::ObjectWriter W;
  W.field("ok", true).field("prometheus",
                            obs::MetricsRegistry::instance().renderPrometheus());
  return W.str();
}

std::string backendsJson() {
  std::string Rows;
  for (const core::BackendInfo &I : core::backendInfos()) {
    json::ObjectWriter R;
    R.field("name", I.Name)
        .field("lanes", I.Lanes)
        .field("conflict", I.Conflict)
        .field("compiled", I.Compiled)
        .field("available", I.Available);
    if (!I.Available)
      R.field("reason", I.Unavailable ? I.Unavailable : "");
    if (!Rows.empty())
      Rows += ",";
    Rows += R.str();
  }
  json::ObjectWriter W;
  W.field("ok", true)
      .fieldRaw("backends", "[" + Rows + "]")
      .field("selected", core::dispatch().Name);
  return W.str();
}

std::string errorJson(const std::string &Id, const Status &S) {
  ServeResponse R;
  R.Id = Id;
  R.Ok = false;
  R.Error = S;
  return R.toJson();
}

} // namespace service
} // namespace cfv
