//===- graph/Io.cpp - SNAP-format edge-list I/O ---------------------------===//
//
// Part of the cfv project: reproduction of Jiang & Agrawal, CGO 2018.
//
//===----------------------------------------------------------------------===//

#include "graph/Io.h"

#include "resilience/Fault.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <unordered_map>

using namespace cfv;
using namespace cfv::graph;

namespace {

bool isLineEnd(char C) { return C == '\n' || C == '\r' || C == '\0'; }

const char *skipBlanks(const char *P) {
  while (*P == ' ' || *P == '\t')
    ++P;
  return P;
}

} // namespace

Expected<EdgeList> graph::readSnapEdgeList(const std::string &Path) {
  if (fault::fire(fault::Point::IoReadError))
    return Status::error(ErrorCode::IoError,
                         "injected read error on '" + Path + "'");

  std::FILE *F = std::fopen(Path.c_str(), "r");
  if (!F)
    return Status::error(ErrorCode::IoError, "cannot open '" + Path + "'");

  EdgeList G;
  std::unordered_map<long long, int32_t> Remap;
  constexpr std::size_t kMaxNodes =
      static_cast<std::size_t>(std::numeric_limits<int32_t>::max());

  char Line[512];
  int64_t LineNo = 0;
  int Columns = 0;        // 2 or 3, fixed by the first edge line
  int64_t FirstEdgeLine = 0;

  auto FailAt = [&](ErrorCode C, const std::string &What) {
    std::fclose(F);
    return Status::error(C, What + " at " + Path + ":" +
                                std::to_string(LineNo));
  };

  while (std::fgets(Line, sizeof(Line), F)) {
    ++LineNo;
    // A short read is a mid-file truncation: the parse so far was fine
    // and the file just ends.  Evaluated every 256 lines so small test
    // graphs and multi-megabyte inputs both get a shot at it.
    if (LineNo % 256 == 0 && fault::fire(fault::Point::IoShortRead))
      return FailAt(ErrorCode::IoError, "injected short read");
    const std::size_t Len = std::strlen(Line);
    if (Len + 1 == sizeof(Line) && Line[Len - 1] != '\n')
      return FailAt(ErrorCode::ParseError,
                    "line longer than " + std::to_string(sizeof(Line) - 2) +
                        " bytes");

    // Skip comments and blank lines.
    const char *P = skipBlanks(Line);
    if (*P == '#' || isLineEnd(*P))
      continue;

    // Two mandatory integer id columns.
    long long Id[2];
    for (int C = 0; C < 2; ++C) {
      const char *ColName = C == 0 ? "source id" : "destination id";
      char *End = nullptr;
      errno = 0;
      Id[C] = std::strtoll(P, &End, 10);
      if (End == P)
        return FailAt(ErrorCode::ParseError,
                      std::string("expected integer ") + ColName);
      if (errno == ERANGE)
        return FailAt(ErrorCode::OutOfRange,
                      std::string(ColName) + " out of 64-bit range");
      if (Id[C] < 0)
        return FailAt(ErrorCode::ParseError,
                      std::string("negative ") + ColName + " " +
                          std::to_string(Id[C]));
      P = End;
    }

    // Optional weight column; anything after it is an error.
    int Got = 2;
    float W = 0.0f;
    P = skipBlanks(P);
    if (!isLineEnd(*P)) {
      char *End = nullptr;
      errno = 0;
      W = std::strtof(P, &End);
      if (End == P)
        return FailAt(ErrorCode::ParseError, "expected numeric weight");
      if (errno == ERANGE)
        return FailAt(ErrorCode::OutOfRange, "weight out of float range");
      P = skipBlanks(End);
      if (!isLineEnd(*P))
        return FailAt(ErrorCode::ParseError,
                      "trailing characters after weight column");
      Got = 3;
    }

    if (Columns == 0) {
      Columns = Got;
      FirstEdgeLine = LineNo;
    } else if (Columns != Got) {
      return FailAt(ErrorCode::ParseError,
                    std::string(Got == 3
                                    ? "weighted row in an unweighted"
                                    : "unweighted row in a weighted") +
                        " edge list (format fixed by line " +
                        std::to_string(FirstEdgeLine) + ")");
    }

    int32_t Compact[2];
    for (int C = 0; C < 2; ++C) {
      const auto It = Remap.find(Id[C]);
      if (It != Remap.end()) {
        Compact[C] = It->second;
        continue;
      }
      if (Remap.size() >= kMaxNodes)
        return FailAt(ErrorCode::OutOfRange,
                      "more than 2^31-1 distinct vertex ids");
      Compact[C] = static_cast<int32_t>(Remap.size());
      Remap.emplace(Id[C], Compact[C]);
    }
    G.Src.push_back(Compact[0]);
    G.Dst.push_back(Compact[1]);
    if (Got == 3)
      G.Weight.push_back(W);
  }

  const bool ReadFailed = std::ferror(F) != 0;
  std::fclose(F);
  if (ReadFailed)
    return Status::error(ErrorCode::IoError, "read error on '" + Path + "'");
  if (Remap.empty())
    return Status::error(ErrorCode::ParseError,
                         "no edges found in '" + Path + "'");

  G.NumNodes = static_cast<int32_t>(Remap.size());
  return G;
}

Status graph::writeSnapEdgeList(const std::string &Path, const EdgeList &G) {
  std::FILE *F = std::fopen(Path.c_str(), "w");
  if (!F)
    return Status::error(ErrorCode::IoError,
                         "cannot open '" + Path + "' for writing");
  std::fprintf(F, "# cfv edge list: %d nodes, %lld edges%s\n", G.NumNodes,
               static_cast<long long>(G.numEdges()),
               G.isWeighted() ? ", weighted" : "");
  std::fprintf(F, "# src\tdst%s\n", G.isWeighted() ? "\tweight" : "");
  for (int64_t E = 0; E < G.numEdges(); ++E) {
    if (G.isWeighted())
      std::fprintf(F, "%d\t%d\t%.6g\n", G.Src[E], G.Dst[E], G.Weight[E]);
    else
      std::fprintf(F, "%d\t%d\n", G.Src[E], G.Dst[E]);
  }
  const bool Ok = std::ferror(F) == 0;
  std::fclose(F);
  if (!Ok)
    return Status::error(ErrorCode::IoError,
                         "write error on '" + Path + "'");
  return Status();
}
