//===- core/Guard.h - Differential validation of in-vector reduction -*- C++ //
//
// Part of the cfv project: reproduction of Jiang & Agrawal, CGO 2018.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The opt-in differential guard (CFV_VALIDATE=1): every invecReduce /
/// invecReduce2 batch is re-checked against a plain-C reference that
/// replays Algorithm 1/2 semantics lane by lane, in the scalar backend's
/// evaluation order, and the process aborts with a structured diagnostic
/// on disagreement.  This turns the test suite's scalar oracle into a
/// production tripwire: a miscompiled kernel, a CPU erratum, or a bad
/// dispatch decision is caught at the first wrong batch instead of
/// surfacing as silently corrupt ranks/distances/aggregates.
///
/// The reference deliberately uses plain lane arrays rather than
/// instantiating backend::Scalar vector templates: this header is
/// compiled into the AVX-512 kernel translation units too, and scalar
/// template instantiations there could be compiled with AVX-512 codegen
/// and then be chosen by the linker for baseline code paths (a fat-binary
/// ODR hazard; see DESIGN.md).
///
/// Comparison policy: integer operators and float min/max must agree
/// exactly (they select or combine without rounding differences); float
/// add/mul are compared under a small relative tolerance because the
/// AVX-512 masked horizontal reductions fold in tree order while the
/// reference folds in lane order, which differs in the last ulps (see
/// simd/Reduce.h).
///
//===----------------------------------------------------------------------===//

#ifndef CFV_CORE_GUARD_H
#define CFV_CORE_GUARD_H

#include "simd/Mask.h"

#include <cmath>
#include <cstdint>
#include <tuple>
#include <type_traits>
#include <utility>

namespace cfv {
namespace core {
namespace guard {

/// Process-wide switch, initialized from the CFV_VALIDATE environment
/// variable ("1"/"on"/"yes" enable; unset/"0" disable).
extern const bool EnvEnabled;
/// Test override; tristate (-1 = follow EnvEnabled).
extern int ForcedState;

inline bool enabled() {
  return __builtin_expect(ForcedState >= 0 ? ForcedState != 0 : EnvEnabled, 0);
}

/// Forces the guard on/off regardless of the environment (tests).
void setEnabled(bool On);
/// Reverts to the environment-driven setting.
void clearForcedState();

[[noreturn]] void reportMaskMismatch(const char *Alg, const char *Op,
                                     const char *Field, unsigned Expected,
                                     unsigned Got);
[[noreturn]] void reportCountMismatch(const char *Alg, const char *Op,
                                      int Expected, int Got);
[[noreturn]] void reportLaneMismatch(const char *Alg, const char *Op,
                                     int Payload, int Lane, long long IdxValue,
                                     double Expected, double Got);

/// Element type of a vector (int32_t/float for the 32-bit vectors,
/// int64_t/double for the 64-bit extension).
template <typename V>
using LaneT = decltype(std::declval<const V &>().extract(0));

/// Lane count of a vector type, declared by the vector itself (16 or 8
/// for the 512-bit-shaped backends, 8 or 4 for AVX2).
template <typename V> inline constexpr int kLaneCount = V::kLanes;

/// A plain-array snapshot of one payload vector, sized for the widest
/// backend.
template <typename V> struct Lanes {
  alignas(64) LaneT<V> A[simd::kMaxLanes] = {};
};

template <typename Tuple, typename... Vs, std::size_t... Is>
inline void snapshotImpl(Tuple &T, std::index_sequence<Is...>,
                         const Vs &...Data) {
  (Data.store(std::get<Is>(T).A), ...);
}

/// Stores every payload's lanes into the matching tuple slot.
template <typename... Vs>
inline void snapshot(std::tuple<Lanes<Vs>...> &T, const Vs &...Data) {
  snapshotImpl(T, std::index_sequence_for<Vs...>{}, Data...);
}

/// Equality up to reduction-order rounding for floating payloads.
template <typename T> inline bool lanesAgree(T Want, T Got) {
  if constexpr (std::is_floating_point_v<T>) {
    if (Want == Got)
      return true; // covers min/max exactness and the common case
    const double W = static_cast<double>(Want), G = static_cast<double>(Got);
    const double Tol = sizeof(T) == 4 ? 1e-4 : 1e-10;
    const double Mag = std::fmax(std::fabs(W), std::fabs(G));
    return std::fabs(W - G) <= Tol * (1.0 + Mag);
  } else {
    return Want == Got;
  }
}

/// The lane-by-lane reference analysis shared by both algorithms:
/// occurrence ranks, group leaders, conflict-free subsets, and the merge
/// count the impl must report.
struct RefGroups {
  simd::Mask16 Ret1 = 0;     ///< first occurrences (Algorithm 1's ret)
  simd::Mask16 Ret2 = 0;     ///< second occurrences (Algorithm 2 only)
  simd::Mask16 Eligible = 0; ///< lanes folded into their leader
  int Distinct = 0;             ///< expected merge-iteration count
  int Leader[simd::kMaxLanes];  ///< group leader lane; -1 when inactive
};

template <typename IdxT>
inline RefGroups analyze(bool Alg2, simd::Mask16 Active, const IdxT *Idx,
                         int NumLanes) {
  RefGroups G;
  for (int I = 0; I < NumLanes; ++I)
    G.Leader[I] = -1;
  for (int I = 0; I < NumLanes; ++I) {
    if (!simd::testLane(Active, I))
      continue;
    G.Leader[I] = I;
    for (int J = 0; J < I; ++J) {
      if (simd::testLane(Active, J) && Idx[J] == Idx[I]) {
        G.Leader[I] = G.Leader[J];
        break;
      }
    }
  }
  // Occurrence rank within each group, in ascending lane order.
  int Rank[simd::kMaxLanes] = {};
  int Count[simd::kMaxLanes] = {};
  for (int I = 0; I < NumLanes; ++I)
    if (G.Leader[I] >= 0)
      Rank[I] = ++Count[G.Leader[I]];
  for (int I = 0; I < NumLanes; ++I) {
    if (G.Leader[I] < 0)
      continue;
    if (Rank[I] == 1)
      G.Ret1 |= simd::laneBit(I);
    if (Alg2 && Rank[I] == 2)
      G.Ret2 |= simd::laneBit(I);
    if (!(Alg2 && Rank[I] == 2))
      G.Eligible |= simd::laneBit(I);
  }
  const int MergeRank = Alg2 ? 3 : 2;
  for (int I = 0; I < NumLanes; ++I)
    if (G.Leader[I] == I && Count[I] >= MergeRank)
      ++G.Distinct;
  return G;
}

/// Verifies one payload vector against the reference fold.  Leader lanes
/// must hold the fold (from the operator identity, ascending lane order)
/// of their group's eligible members; every other lane must be untouched.
template <typename Op, typename IdxT, typename V>
inline void checkPayload(const char *Alg, const RefGroups &G, const IdxT *Idx,
                         int NumLanes, const Lanes<V> &Before, const V &AfterV,
                         int PayloadNo) {
  using T = LaneT<V>;
  alignas(64) T After[simd::kMaxLanes] = {};
  AfterV.store(After);
  for (int I = 0; I < NumLanes; ++I) {
    T Want;
    if (G.Leader[I] == I) {
      Want = Op::template identity<T>();
      for (int M = I; M < NumLanes; ++M)
        if (G.Leader[M] == I && simd::testLane(G.Eligible, M))
          Want = Op::template apply<T>(Want, Before.A[M]);
    } else {
      Want = Before.A[I];
    }
    if (!lanesAgree(Want, After[I]))
      reportLaneMismatch(Alg, Op::name(), PayloadNo, I,
                         static_cast<long long>(Idx[I]),
                         static_cast<double>(Want),
                         static_cast<double>(After[I]));
  }
}

template <typename Op, typename IdxT, typename Tuple, typename... Vs,
          std::size_t... Is>
inline void checkPayloadsImpl(const char *Alg, const RefGroups &G,
                              const IdxT *Idx, int NumLanes,
                              const Tuple &Before, std::index_sequence<Is...>,
                              const Vs &...After) {
  (checkPayload<Op>(Alg, G, Idx, NumLanes, std::get<Is>(Before), After,
                    static_cast<int>(Is)),
   ...);
}

template <typename Op, typename IdxT, typename... Vs>
inline void checkPayloads(const char *Alg, const RefGroups &G, const IdxT *Idx,
                          int NumLanes, const std::tuple<Lanes<Vs>...> &Before,
                          const Vs &...After) {
  checkPayloadsImpl<Op>(Alg, G, Idx, NumLanes, Before,
                        std::index_sequence_for<Vs...>{}, After...);
}

} // namespace guard
} // namespace core
} // namespace cfv

#endif // CFV_CORE_GUARD_H
