//===- simd/CpuId.h - Runtime CPU capability detection ----------*- C++ -*-===//
//
// Part of the cfv project: reproduction of Jiang & Agrawal, CGO 2018.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runtime detection of the SIMD features the paper's technique needs:
/// AVX-512F (the 512-bit foundation) and AVX-512CD (vpconflictd), plus
/// the OS-enablement half of the story -- a CPU may implement AVX-512
/// while the kernel has not enabled zmm/opmask state saving, in which
/// case executing any 512-bit instruction faults.  The full predicate is
///
///   hasAvx512() == CPUID.7.EBX[AVX512F] && CPUID.7.EBX[AVX512CD]
///                  && OSXSAVE && XCR0[opmask|zmm_hi256|hi16_zmm]
///
/// core/Dispatch.h uses this to pick a kernel set at startup; the scalar
/// backend remains the always-available fallback.
///
//===----------------------------------------------------------------------===//

#ifndef CFV_SIMD_CPUID_H
#define CFV_SIMD_CPUID_H

namespace cfv {
namespace simd {

/// What the host CPU and OS support, as probed by cpuid/xgetbv.
struct Caps {
  bool Osxsave = false;  ///< CPUID.1.ECX[27]: xgetbv is usable
  bool OsYmm = false;    ///< XCR0 sse + avx (ymm) state enabled
  bool OsZmm = false;    ///< XCR0 opmask + zmm_hi256 + hi16_zmm enabled
  bool Avx2 = false;     ///< CPUID.7.EBX[5]
  bool Avx512F = false;  ///< CPUID.7.EBX[16]
  bool Avx512Cd = false; ///< CPUID.7.EBX[28]

  /// True when the AVX-512 kernel set can execute without faulting:
  /// foundation + conflict detection present and OS state enabled.
  bool hasAvx512() const { return Avx512F && Avx512Cd && OsZmm; }

  /// True when the AVX2 kernel set (256-bit, synthesized conflict
  /// detection) can execute: AVX2 present and OS ymm state enabled.
  bool hasAvx2() const { return Avx2 && OsYmm; }
};

/// Probes the hardware directly (uncached).  On non-x86 builds every
/// field is false.
Caps detectCaps();

/// The cached result of detectCaps() for this process.
const Caps &caps();

} // namespace simd
} // namespace cfv

#endif // CFV_SIMD_CPUID_H
