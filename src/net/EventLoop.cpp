//===- net/EventLoop.cpp - epoll readiness loop ---------------------------===//
//
// Part of the cfv project: reproduction of Jiang & Agrawal, CGO 2018.
//
//===----------------------------------------------------------------------===//

#include "net/EventLoop.h"

#if defined(__linux__)

#include <cerrno>
#include <cstring>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

using namespace cfv;
using namespace cfv::net;

EventLoop::EventLoop() {
  EpollFd = ::epoll_create1(EPOLL_CLOEXEC);
  WakeFd = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (EpollFd >= 0 && WakeFd >= 0) {
    epoll_event Ev{};
    Ev.events = EPOLLIN;
    Ev.data.fd = WakeFd;
    if (::epoll_ctl(EpollFd, EPOLL_CTL_ADD, WakeFd, &Ev) != 0) {
      ::close(WakeFd);
      WakeFd = -1;
    }
  }
}

EventLoop::~EventLoop() {
  if (WakeFd >= 0)
    ::close(WakeFd);
  if (EpollFd >= 0)
    ::close(EpollFd);
}

bool EventLoop::add(int Fd, uint32_t Events, Callback Cb) {
  epoll_event Ev{};
  Ev.events = Events;
  Ev.data.fd = Fd;
  const bool Known = Callbacks.count(Fd) != 0;
  if (::epoll_ctl(EpollFd, Known ? EPOLL_CTL_MOD : EPOLL_CTL_ADD, Fd, &Ev) != 0)
    return false;
  Callbacks[Fd] = std::move(Cb);
  return true;
}

bool EventLoop::mod(int Fd, uint32_t Events) {
  epoll_event Ev{};
  Ev.events = Events;
  Ev.data.fd = Fd;
  return ::epoll_ctl(EpollFd, EPOLL_CTL_MOD, Fd, &Ev) == 0;
}

void EventLoop::del(int Fd) {
  ::epoll_ctl(EpollFd, EPOLL_CTL_DEL, Fd, nullptr);
  Callbacks.erase(Fd);
}

void EventLoop::deferClose(int Fd) {
  del(Fd);
  DeferredCloses.push_back(Fd);
}

void EventLoop::post(std::function<void()> Fn) {
  {
    std::lock_guard<std::mutex> Lock(PostedMu);
    Posted.push_back(std::move(Fn));
  }
  const uint64_t One = 1;
  // A full eventfd counter (EAGAIN) already guarantees a pending wakeup.
  ssize_t Ignored = ::write(WakeFd, &One, sizeof(One));
  (void)Ignored;
}

void EventLoop::drainWake() {
  uint64_t Count = 0;
  while (::read(WakeFd, &Count, sizeof(Count)) > 0) {
  }
}

void EventLoop::runPosted() {
  std::vector<std::function<void()>> Batch;
  {
    std::lock_guard<std::mutex> Lock(PostedMu);
    Batch.swap(Posted);
  }
  for (auto &Fn : Batch)
    Fn();
}

void EventLoop::stop() {
  post([this] { Stopped = true; });
}

void EventLoop::run(int TickMs, const std::function<void()> &OnTick,
                    const std::function<bool()> &ShouldExit) {
  Stopped = false;
  epoll_event Events[64];
  while (!Stopped) {
    int N = ::epoll_wait(EpollFd, Events, 64, TickMs > 0 ? TickMs : -1);
    if (N < 0) {
      if (errno != EINTR)
        break; // unrecoverable epoll failure
      // A signal (SIGTERM drain) interrupted the wait: dispatch nothing,
      // but fall through so OnTick/ShouldExit observe the flag promptly.
      N = 0;
    }
    for (int I = 0; I < N; ++I) {
      const int Fd = Events[I].data.fd;
      if (Fd == WakeFd) {
        drainWake();
        continue;
      }
      // The callback may have been removed by an earlier callback in
      // this same batch (deferClose) -- skip the stale event.
      auto It = Callbacks.find(Fd);
      if (It == Callbacks.end())
        continue;
      // Copy: the callback may deferClose its own fd, erasing the entry
      // out from under the reference.
      Callback Cb = It->second;
      Cb(Events[I].events);
    }
    // Close after dispatch so an fd number freed here cannot be handed
    // out by accept() and then hit by a stale event from this batch.
    for (int Fd : DeferredCloses)
      ::close(Fd);
    DeferredCloses.clear();
    runPosted();
    if (OnTick)
      OnTick();
    if (ShouldExit && ShouldExit())
      break;
  }
  // Posted work can land between the last dispatch and exit; flush so
  // completions are never silently dropped.
  runPosted();
  for (int Fd : DeferredCloses)
    ::close(Fd);
  DeferredCloses.clear();
}

#endif // __linux__
