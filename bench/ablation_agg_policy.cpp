//===- bench/ablation_agg_policy.cpp - §3.4 policy on hash aggregation ----===//
//
// Part of the cfv project: reproduction of Jiang & Agrawal, CGO 2018.
//
//===----------------------------------------------------------------------===//
//
// §3.4's concrete claim about applications: "Only for hash-based
// aggregation, D1 can reach 4, and in this case, Algorithm 2 has clear
// advantage over Algorithm 1 and achieves D2 of about 1."  This harness
// forces the linear_invec aggregation onto Algorithm 1, Algorithm 2 and
// the adaptive policy across the three skewed distributions and a
// cardinality sweep, reporting throughput and the observed D1.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "apps/agg/Aggregation.h"
#include "util/TablePrinter.h"
#include "workload/KeyGen.h"

#include <cstdlib>

using namespace cfv;
using namespace cfv::apps;
using namespace cfv::bench;
using namespace cfv::workload;

namespace {

double envScaleLocal() {
  const char *S = std::getenv("CFV_SCALE");
  if (!S)
    return 1.0;
  const double V = std::atof(S);
  return V < 0.01 ? 0.01 : (V > 1000.0 ? 1000.0 : V);
}

} // namespace

int main() {
  banner("Ablation (§3.4, aggregation)",
         "linear_invec under forced Algorithm 1 / Algorithm 2 / adaptive");
  const double Scale = envScaleLocal();
  const int64_t N = static_cast<int64_t>(2.0e6 * Scale);
  std::printf("rows per run: %lld\n", static_cast<long long>(N));

  const KeyDist Dists[] = {KeyDist::HeavyHitter, KeyDist::Zipf,
                           KeyDist::MovingCluster};

  TablePrinter T({"distribution", "log2(card)", "mean D1",
                  "alg1 Mrows/s", "alg2 Mrows/s", "adaptive Mrows/s",
                  "adaptive matches best"});
  for (const KeyDist D : Dists) {
    for (const int LogC : {6, 10, 14, 18}) {
      const int32_t C = int32_t(1) << LogC;
      const auto Keys = genKeys(D, N, C, 0xAB + LogC);
      const auto Vals = genValues(N, 0xCD + LogC);
      const AggResult A1 = runAggregationWithPolicy(
          Keys.data(), Vals.data(), N, C, InvecPolicy::Alg1);
      const AggResult A2 = runAggregationWithPolicy(
          Keys.data(), Vals.data(), N, C, InvecPolicy::Alg2);
      const AggResult Ad = runAggregationWithPolicy(
          Keys.data(), Vals.data(), N, C, InvecPolicy::Adaptive);
      const double Best = std::max(A1.MRowsPerSec, A2.MRowsPerSec);
      T.addRow({distName(D), std::to_string(LogC),
                TablePrinter::fmt(A1.MeanD1, 3),
                TablePrinter::fmt(A1.MRowsPerSec, 1),
                TablePrinter::fmt(A2.MRowsPerSec, 1),
                TablePrinter::fmt(Ad.MRowsPerSec, 1),
                Ad.MRowsPerSec > 0.9 * Best ? "yes" : "no"});
    }
  }
  T.print();

  paperNote("with aggregation-like duplicate density (D1 well above 1) "
            "Algorithm 2 should overtake Algorithm 1; with low D1 the two "
            "converge and the adaptive policy should track the winner");
  return 0;
}
