//===- bench/fig11_wcc.cpp - Figure 11 harness ----------------------------===//
//
// Part of the cfv project: reproduction of Jiang & Agrawal, CGO 2018.
//
//===----------------------------------------------------------------------===//

#include "FrontierBench.h"

int main() {
  return cfv::bench::runFrontierFigure(
      "Figure 11", cfv::apps::FrApp::Wcc,
      "invec 1.6-2.1x over serial; mask below serial (17-29% SIMD util); "
      "grouping overhead dominates as in SSSP/SSWP");
}
