//===- service/RequestScheduler.h - Bounded fair work queue -----*- C++ -*-===//
//
// Part of the cfv project: reproduction of Jiang & Agrawal, CGO 2018.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The serving layer's admission-controlled work queue.  Requests enter
/// a bounded queue (submit() rejects with Unavailable when full -- the
/// caller turns that into a structured backpressure response instead of
/// an unbounded pileup); worker threads drain it with per-key fairness:
/// requests are FIFO within one fairness key (typically the application
/// name), and keys are served round-robin, so a burst of pagerank
/// requests cannot starve a single queued sssp.
///
/// Deadlines are cooperative.  A task whose deadline passes while still
/// queued is not dropped: it runs with TaskInfo::DeadlineExpired set so
/// it can emit a structured deadline_exceeded response -- every accepted
/// request produces exactly one response.  In-run cancellation is the
/// app's job via core::RunOptions::DeadlineSteadySeconds.
///
/// The scheduler owns plain worker threads, not the parallel engine:
/// each task runs cfv::run, which dispatches onto the per-run
/// ParallelEngine pool internally.  One scheduler worker (the default)
/// serializes kernels -- the right choice when each kernel already uses
/// every core.
///
//===----------------------------------------------------------------------===//

#ifndef CFV_SERVICE_REQUEST_SCHEDULER_H
#define CFV_SERVICE_REQUEST_SCHEDULER_H

#include "util/Status.h"

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace cfv {
namespace service {

/// What the scheduler tells a task when it finally runs.
struct TaskInfo {
  /// Wall seconds the task sat in the queue.
  double QueueSeconds = 0.0;
  /// True when the task's timeout elapsed before it was dequeued; the
  /// task should answer deadline_exceeded without doing the work.
  bool DeadlineExpired = false;
};

class RequestScheduler {
public:
  using Task = std::function<void(const TaskInfo &)>;

  struct Config {
    /// Maximum queued (admitted, not yet running) tasks.
    int QueueDepth = 64;
    /// Worker threads draining the queue.
    int Workers = 1;
  };

  struct Stats {
    int64_t Submitted = 0;
    int64_t Rejected = 0;
    int64_t Completed = 0;
    /// Tasks whose deadline expired while queued.
    int64_t Expired = 0;
    /// Currently queued (not yet running).
    int64_t Queued = 0;
  };

  explicit RequestScheduler(Config C);
  ~RequestScheduler();

  /// Admits \p T under fairness key \p Key.  \p TimeoutSeconds > 0 sets
  /// an in-queue deadline (measured from now).  Returns Unavailable when
  /// the queue is full and the task was NOT admitted.
  Status submit(const std::string &Key, double TimeoutSeconds, Task T);

  /// Blocks until every admitted task has completed.
  void drain();

  Stats stats() const;

  RequestScheduler(const RequestScheduler &) = delete;
  RequestScheduler &operator=(const RequestScheduler &) = delete;

private:
  struct Pending {
    Task Run;
    double EnqueuedAt = 0.0; ///< steady seconds
    double Deadline = 0.0;   ///< steady seconds; 0 = none
  };

  void workerLoop();
  /// Caller holds Mu.  Pops the next task round-robin across keys; false
  /// when the queue is empty.
  bool popLocked(Pending &Out);

  const Config Cfg;

  mutable std::mutex Mu;
  std::condition_variable CvWork;  ///< work available / shutting down
  std::condition_variable CvIdle;  ///< queue drained and workers idle
  std::map<std::string, std::deque<Pending>> Queues;
  std::vector<std::string> KeyOrder; ///< round-robin ring of active keys
  size_t Cursor = 0;
  int64_t QueuedCount = 0;
  int Running = 0;
  bool Stop = false;
  Stats Counters;

  std::vector<std::thread> Workers;
};

} // namespace service
} // namespace cfv

#endif // CFV_SERVICE_REQUEST_SCHEDULER_H
