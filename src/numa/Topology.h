//===- numa/Topology.h - NUMA topology probe and shard plans ----*- C++ -*-===//
//
// Part of the cfv project: reproduction of Jiang & Agrawal, CGO 2018.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Topology-aware execution for the parallel engine.  The inspector's
/// destination-block tiles are the unit of work, so NUMA sharding is an
/// inspector-time decision: assign contiguous tile shards to NUMA nodes,
/// pin each pool worker to a CPU of its node, keep the privatized
/// accumulators node-local (a worker's replica is allocated and touched
/// by the worker that fills it), and merge in two levels -- the usual
/// fixed-pairing tree *within* each node, then one deterministic
/// cross-node fold in node order.  Because the pairing is still fixed
/// given (threads, plan), results stay run-to-run deterministic, and the
/// tiled apps stay bit-identical to serial at any topology (each
/// destination tile is owned by exactly one worker, so cross-worker
/// merge adds are exact zeros).
///
/// Components:
///  - Topology: per-node CPU lists.  Probed libnuma-free from
///    /sys/devices/system/node/node*/cpulist, with a graceful
///    single-node fallback (macOS-like environments, restricted
///    containers).  A synthetic topology can be injected through the
///    CFV_NUMA_TOPOLOGY environment variable ("0-3;4-7" -- one
///    semicolon-separated cpulist per node) or setTopologyForTest, so
///    the multi-node code paths are testable on any machine.
///  - Mode: the CFV_NUMA=off|auto|interleave knob (default auto, which
///    only engages on a genuinely multi-node topology at threads > 1 --
///    single-node CI behavior is unchanged).  Auto groups consecutive
///    workers per node (contiguous tile shards, node-local accesses);
///    Interleave assigns workers round-robin across nodes (spreads
///    memory traffic, the classic bandwidth-bound fallback).
///  - ShardPlan: the resolved worker->node and worker->CPU assignment
///    for one run's thread count, consumed by the engine (pinning), the
///    chunker (per-node tile shards), and the merge (two levels).
///
/// Layering: util < obs < numa < core -- the engine and the apps consult
/// this; nothing here calls back up.
///
//===----------------------------------------------------------------------===//

#ifndef CFV_NUMA_TOPOLOGY_H
#define CFV_NUMA_TOPOLOGY_H

#include "util/Status.h"

#include <cstdint>
#include <memory>
#include <vector>

namespace cfv {
namespace numa {

//===----------------------------------------------------------------------===//
// Topology
//===----------------------------------------------------------------------===//

/// Per-node CPU id lists.  nodes() >= 1 always; a machine without
/// exposed NUMA information reports one node holding every CPU.
struct Topology {
  std::vector<std::vector<int>> NodeCpus;

  int nodes() const { return static_cast<int>(NodeCpus.size()); }
  int totalCpus() const {
    int N = 0;
    for (const auto &C : NodeCpus)
      N += static_cast<int>(C.size());
    return N;
  }
};

/// Parses a synthetic topology spec: one cpulist per node, separated by
/// ';', each in sysfs cpulist syntax ("0-3,8" = CPUs 0,1,2,3,8).  Every
/// node must contain at least one CPU.
Expected<Topology> parseTopologySpec(const std::string &Spec);

/// The effective topology: a test override (setTopologyForTest) wins,
/// then CFV_NUMA_TOPOLOGY (parsed per distinct value; malformed specs
/// note once to stderr and fall through), then the sysfs probe (cached
/// for the process), then the single-node fallback.
Topology currentTopology();

/// Injects \p T as the topology for this process (nullptr restores the
/// probed one).  Test seam: multi-node plans without multi-node hardware.
void setTopologyForTest(const Topology *T);

//===----------------------------------------------------------------------===//
// Mode
//===----------------------------------------------------------------------===//

/// CFV_NUMA vocabulary.  Off disables sharding and pinning entirely;
/// Auto engages contiguous per-node shards when the topology has more
/// than one node; Interleave round-robins workers across nodes.
enum class Mode { Off, Auto, Interleave };

/// "off" / "auto" / "interleave".
const char *modeName(Mode M);

/// Resolves the effective mode: a live ScopedMode override wins, then
/// CFV_NUMA (unknown values note once and mean Auto), then Auto.
Mode resolveMode();

/// Thread-local mode override, the per-run request channel
/// (RunOptions::Numa through the cfv::run facade).  Process-global
/// dispatch state is never mutated; the override lives on the calling
/// thread for the duration of the run.
class ScopedMode {
public:
  /// No-op: keeps the ambient mode.
  ScopedMode();
  /// Overrides resolveMode() to \p M until destruction.
  explicit ScopedMode(Mode M);
  ~ScopedMode();

  ScopedMode(const ScopedMode &) = delete;
  ScopedMode &operator=(const ScopedMode &) = delete;

private:
  bool Engaged = false;
  bool HadPrev = false;
  Mode Prev = Mode::Off;
};

//===----------------------------------------------------------------------===//
// Shard plans
//===----------------------------------------------------------------------===//

/// The resolved worker->node and worker->CPU assignment for one thread
/// count.  Worker 0 is the calling thread (never pinned -- the engine
/// must not perturb its caller's affinity); workers 1..Threads-1 are
/// pool threads.  WorkersOfNode lists worker ids per node in ascending
/// order; under Auto they are contiguous runs, under Interleave strided.
struct ShardPlan {
  int Threads = 1;
  int Nodes = 1;
  Mode PlanMode = Mode::Off;
  std::vector<int> NodeOfWorker;               ///< size Threads
  std::vector<std::vector<int>> WorkersOfNode; ///< ascending per node
  std::vector<int> CpuOfWorker;                ///< size Threads; -1 unpinned

  /// Whether sharded execution is in effect (more than one node got
  /// workers).  An inactive plan means flat behavior everywhere.
  bool active() const { return Nodes > 1; }
};

/// Builds the shard plan for \p Threads workers on \p T under \p M.
/// Returns an inactive plan when M == Off, Threads <= 1, or the
/// topology has a single node.
ShardPlan planShards(int Threads, const Topology &T, Mode M);

/// The plan the current run should use: planShards(resolveMode(),
/// currentTopology()).  Returns nullptr when the plan would be inactive,
/// so call sites stay one branch on the flat path.
std::shared_ptr<const ShardPlan> currentPlan(int Threads);

//===----------------------------------------------------------------------===//
// Worker pinning
//===----------------------------------------------------------------------===//

/// Pins the calling thread to \p Cpu (sched_setaffinity).  Failures are
/// tolerated -- restricted containers reject affinity changes -- and
/// reported by the return value; execution stays correct unpinned.
bool pinThreadToCpu(int Cpu);

/// Restores the calling thread's affinity to every CPU of the topology
/// (used when a pool worker outlives the plan that pinned it).
void unpinThread();

//===----------------------------------------------------------------------===//
// Sharded tile chunking
//===----------------------------------------------------------------------===//

/// Two-level tile partition: tiles split across nodes proportionally to
/// each node's worker count (contiguous shards, boundaries on tile
/// starts), then across the node's workers.  Returns Threads + 1
/// monotone bounds compatible with core::chunkBoundsFromTiles; under an
/// Auto plan consecutive workers of one node cover one node shard.
/// \p TileBegin is TilingResult::TileBegin (numTiles() + 1 entries).
std::vector<int64_t>
shardedBoundsFromTiles(const std::vector<int64_t> &TileBegin,
                       const ShardPlan &Plan);

//===----------------------------------------------------------------------===//
// cfv_numa_* metrics
//===----------------------------------------------------------------------===//

/// Publishes the cfv_numa_nodes gauge and records per-node shard sizes
/// (cfv_numa_shard_elements histogram) for a freshly planned run.
void recordShardMetrics(const ShardPlan &Plan,
                        const std::vector<int64_t> &Bounds);

/// Accounts one cross-node merge: wall seconds of the node-head fold
/// plus the bytes it moved across nodes (the remote-access estimate:
/// every byte of a node head folded into the base array crosses nodes).
void noteCrossNodeMerge(double Seconds, int64_t Bytes);

/// Counts one worker pin attempt (cfv_numa_pins_total; failures land in
/// cfv_numa_pin_failures_total).
void notePin(bool Ok);

} // namespace numa
} // namespace cfv

#endif // CFV_NUMA_TOPOLOGY_H
