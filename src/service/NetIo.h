//===- service/NetIo.h - Robust POSIX socket I/O helpers --------*- C++ -*-===//
//
// Part of the cfv project: reproduction of Jiang & Agrawal, CGO 2018.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The serving front-end's socket write discipline.  A TCP client can
/// vanish at any byte: write(2) may be interrupted (EINTR), may accept
/// only part of the buffer (partial write), and -- once the peer has
/// closed -- raises SIGPIPE, which kills the process by default.  These
/// helpers make that survivable: ignoreSigpipe() turns the signal into
/// an EPIPE errno, and writeAll() loops over EINTR and partial writes
/// until the buffer is out or the peer is definitively gone, so the
/// caller sees one boolean: delivered, or client_gone.
///
/// Header-only and POSIX-only; the non-POSIX serve path stays on stdio.
///
//===----------------------------------------------------------------------===//

#ifndef CFV_SERVICE_NET_IO_H
#define CFV_SERVICE_NET_IO_H

#if defined(__unix__) || defined(__APPLE__)

#include <cerrno>
#include <csignal>
#include <cstddef>
#include <unistd.h>

namespace cfv {
namespace service {
namespace netio {

/// Turns SIGPIPE into an EPIPE errno from write(2).  Idempotent; call
/// once before serving sockets.
inline void ignoreSigpipe() { ::signal(SIGPIPE, SIG_IGN); }

/// Writes all \p Len bytes of \p Data to \p Fd, retrying interrupted
/// calls and continuing partial writes.  Returns false when the peer is
/// gone or the fd is otherwise unwritable (EPIPE, ECONNRESET, EBADF,
/// ...); the stream should be treated as closed.
inline bool writeAll(int Fd, const char *Data, std::size_t Len) {
  while (Len > 0) {
    const ssize_t N = ::write(Fd, Data, Len);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    Data += N;
    Len -= static_cast<std::size_t>(N);
  }
  return true;
}

} // namespace netio
} // namespace service
} // namespace cfv

#endif // POSIX

#endif // CFV_SERVICE_NET_IO_H
