//===- bench/fig09_sssp.cpp - Figure 9 harness ----------------------------===//
//
// Part of the cfv project: reproduction of Jiang & Agrawal, CGO 2018.
//
//===----------------------------------------------------------------------===//

#include "FrontierBench.h"

int main() {
  return cfv::bench::runFrontierFigure(
      "Figure 9", cfv::apps::FrApp::Sssp,
      "nontiling_and_mask at or below serial speed (poor SIMD util, "
      "27-80%); nontiling_and_invec 2.2-2.7x over serial, 2.3-11.8x over "
      "mask; tiling_and_grouping's huge grouping overhead (log-scale "
      "y-axis) yields no KNL speedup");
}
