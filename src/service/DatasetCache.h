//===- service/DatasetCache.h - Memoized dataset registry -------*- C++ -*-===//
//
// Part of the cfv project: reproduction of Jiang & Agrawal, CGO 2018.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The serving layer's dataset registry: loaded graphs and their derived
/// inspector artifacts (CSR adjacency, destination-block tilings) are
/// memoized behind shared-ownership PreparedGraph handles, keyed by the
/// full identity of the input -- source name/path, synthetic scale,
/// weightedness, and the weight-attachment seed.  Two requests that
/// differ in any of those load separately; two that agree share one
/// PreparedGraph, so the inspector cost the paper amortizes across
/// iterations is amortized across *requests* here.
///
/// Concurrency contract (populate-once): the first requester of a key
/// becomes the loader; concurrent requesters for the same key block on a
/// condition variable until the load publishes, then share the result --
/// the cache never runs two loads for one key.  A failed load is not
/// cached: every coalesced waiter receives the error and the next
/// request retries.
///
/// Eviction is LRU over a byte budget (CFV_CACHE_BYTES, 0 = unlimited).
/// Resident bytes are re-polled from PreparedGraph::approxBytes() on
/// every access, so lazily materialized schedules count against the
/// budget as they appear.  Eviction only drops the cache's reference:
/// handles already returned keep their dataset alive (shared_ptr), so an
/// in-flight run is never invalidated.
///
//===----------------------------------------------------------------------===//

#ifndef CFV_SERVICE_DATASET_CACHE_H
#define CFV_SERVICE_DATASET_CACHE_H

#include "graph/Prepared.h"
#include "util/Status.h"

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>

namespace cfv {
namespace service {

/// The full identity of a loadable dataset.  Every field participates in
/// the cache key: requests differing in normalization parameters (scale,
/// weight attachment, seed) must not share a graph.
struct DatasetKey {
  /// Synthetic dataset name ("higgs-twitter-sim", ...) or a SNAP
  /// edge-list path, per FromFile.
  std::string Source;
  bool FromFile = false;
  /// Synthetic workload scale (ignored for files).
  double Scale = 1.0;
  /// Whether the consumer needs edge weights (path algorithms); for
  /// unweighted file inputs this attaches uniform [1,64) weights.
  bool Weighted = false;
  /// Seed for the weight attachment above.
  uint64_t WeightSeed = 0xCF5EEDULL;
  /// Derived-artifact schema version the entry's PreparedGraph was built
  /// under (graph::kDerivedSchemaVersion).  Participates in the key so a
  /// version bump -- tiling layout change, pattern-classifier threshold
  /// change -- orphans stale cached artifacts instead of serving them
  /// misinterpreted.  Callers normally leave the default.
  int Schema = graph::kDerivedSchemaVersion;

  bool operator<(const DatasetKey &O) const {
    if (Source != O.Source)
      return Source < O.Source;
    if (FromFile != O.FromFile)
      return FromFile < O.FromFile;
    if (Scale != O.Scale)
      return Scale < O.Scale;
    if (Weighted != O.Weighted)
      return Weighted < O.Weighted;
    if (WeightSeed != O.WeightSeed)
      return WeightSeed < O.WeightSeed;
    return Schema < O.Schema;
  }
  bool operator==(const DatasetKey &O) const {
    return !(*this < O) && !(O < *this);
  }

  /// "higgs-twitter-sim scale=1 weighted seed=..." for logs/telemetry.
  std::string toString() const;
};

/// One cache access: the shared handle plus how it was satisfied.
struct CacheLookup {
  std::shared_ptr<const graph::PreparedGraph> Graph;
  /// True only when the entry was already resident and ready at lookup
  /// time; in that case LoadSeconds is exactly 0.0 (the warm-request
  /// contract the serve tests assert on).
  bool Hit = false;
  /// Wall seconds this call spent loading (the loader) or blocked
  /// waiting on another request's load (coalesced waiters).
  double LoadSeconds = 0.0;
};

/// Monotonic counters; ResidentBytes/Entries/OpenCircuits are the
/// current state.
struct CacheStats {
  int64_t Hits = 0;
  int64_t Misses = 0;
  /// Requests that blocked on another request's in-flight load instead
  /// of loading themselves (a subset of Misses).
  int64_t Coalesced = 0;
  int64_t Evictions = 0;
  /// Evictions taken by emergencyEvict() / the byte-pressure watermark
  /// (a subset of Evictions).
  int64_t EmergencyEvictions = 0;
  /// Requests refused because the key's circuit breaker was open.
  int64_t CircuitRejects = 0;
  int64_t ResidentBytes = 0;
  int64_t Entries = 0;
  /// Dataset keys whose circuit is currently open.
  int64_t OpenCircuits = 0;
};

class DatasetCache {
public:
  /// Produces the edge list for a key.  Injectable so tests can count
  /// loads, delay them, or fabricate graphs of a known size.
  using Loader = std::function<Expected<graph::EdgeList>(const DatasetKey &)>;

  /// \p ByteBudget caps resident bytes (<= 0 means unlimited).  The
  /// budget is best effort: the most recent entry is always kept, so one
  /// oversized dataset still serves rather than thrashing.
  explicit DatasetCache(int64_t ByteBudget, Loader L = defaultLoader());

  /// Looks up \p Key, loading it on a miss (populate-once under
  /// concurrency).  Errors come from the loader verbatim.
  Expected<CacheLookup> get(const DatasetKey &Key);

  CacheStats stats() const;

  /// Drops every idle entry (held handles stay valid).
  void clear();

  /// Sheds every idle Ready entry immediately -- the memory-pressure
  /// panic button.  Held handles stay valid (shared_ptr); in-flight
  /// loads are untouched.  Counted as EmergencyEvictions.
  void emergencyEvict();

  /// Loads via the dataset registry (synthetic names) or SNAP reader
  /// (files), attaching weights per the key.
  static Loader defaultLoader();

  /// CFV_CACHE_BYTES (default 256 MiB, 0 = unlimited).
  static int64_t envCacheBytes();

  /// Unregisters this cache's live gauges (resident bytes / entries).
  ~DatasetCache();

  DatasetCache(const DatasetCache &) = delete;
  DatasetCache &operator=(const DatasetCache &) = delete;

private:
  struct Entry {
    enum class State { Loading, Ready } St = State::Loading;
    std::shared_ptr<const graph::PreparedGraph> Graph;
    double LoadSeconds = 0.0;
    uint64_t LastUse = 0; ///< LRU tick
  };

  /// Per-key circuit breaker: after Threshold consecutive load failures
  /// the circuit opens and requests fail fast (Unavailable) until
  /// OpenUntil; the first request after that is the half-open probe
  /// (populate-once coalescing guarantees it is alone).  A successful
  /// probe closes the circuit; a failed one reopens it with doubled
  /// backoff.
  struct Breaker {
    int ConsecutiveFailures = 0;
    double OpenUntil = 0.0;       ///< steady seconds; 0 = closed
    double BackoffSeconds = 0.0;  ///< next open duration
  };

  /// Caller holds Mu.  Evicts least-recently-used Ready entries until
  /// resident bytes fit \p TargetBytes; never evicts \p Keep or entries
  /// still loading.  \p Emergency tags the evictions in the stats.
  void evictLocked(const DatasetKey &Keep, int64_t TargetBytes,
                   bool Emergency);
  int64_t residentBytesLocked() const;
  /// Caller holds Mu.  Records a load failure against \p Key's breaker
  /// (possibly opening the circuit).
  void loadFailedLocked(const DatasetKey &Key);
  int64_t openCircuitsLocked() const;

  const int64_t Budget;
  const Loader Load;
  const int CbThreshold;        ///< CFV_CB_THRESHOLD (0 disables)
  const double CbBackoffSeconds; ///< CFV_CB_BACKOFF_MS, initial open span
  const int PressurePct;        ///< CFV_CACHE_PRESSURE_PCT watermark

  mutable std::mutex Mu;
  std::condition_variable Cv; ///< signaled when any load publishes/fails
  std::map<DatasetKey, std::shared_ptr<Entry>> Entries;
  std::map<DatasetKey, Breaker> Breakers;
  uint64_t Tick = 0;
  CacheStats Counters;
};

} // namespace service
} // namespace cfv

#endif // CFV_SERVICE_DATASET_CACHE_H
