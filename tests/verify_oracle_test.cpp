//===- tests/verify_oracle_test.cpp - Differential oracle ----------------===//
//
// Part of the cfv project: reproduction of Jiang & Agrawal, CGO 2018.
//
//===----------------------------------------------------------------------===//
//
// The oracle must (a) pass every clean case on every compiled backend --
// this suite absorbs the old fuzz_differential_test's random-vs-scalar
// sweep -- and (b) catch each deliberately injected kernel defect, shrink
// it to a tiny reproducer, dump a corpus file that replays, and emit a
// parseable one-line JSON record.
//
//===----------------------------------------------------------------------===//

#include "verify/Oracle.h"

#include "service/Json.h"

#include "gtest/gtest.h"

#include <cstdio>
#include <string>

using namespace cfv;
using namespace cfv::verify;

namespace {

OracleOptions kernelOnly() {
  OracleOptions O;
  O.KernelTier = true;
  O.SystemTier = false;
  O.ServiceTier = false;
  return O;
}

TEST(VerifyOracle, CleanCasesPassAllBackends) {
  // 120 cases sweep every index pattern x value pattern combination at
  // several lengths; any disagreement between a vector pipeline and the
  // scalar reference -- on either backend -- is a bug in the kernels or
  // in the tolerance model, both of which we want to hear about.
  for (uint64_t CaseNo = 0; CaseNo < 120; ++CaseNo) {
    const Workload W = genWorkload(specForCase(0x5EED, CaseNo));
    const auto F = checkWorkload(W, kernelOnly());
    ASSERT_FALSE(F.has_value())
        << "case " << CaseNo << ": " << F->toJson();
  }
}

TEST(VerifyOracle, SystemTierAgreesOnLiftedGraphs) {
  OracleOptions O = kernelOnly();
  O.SystemTier = true;
  // Fewer cases: each one runs several full applications.
  for (uint64_t CaseNo = 0; CaseNo < 12; ++CaseNo) {
    const Workload W = genWorkload(specForCase(0xAB, CaseNo * 17 + 3));
    const auto F = checkWorkload(W, O);
    ASSERT_FALSE(F.has_value())
        << "case " << CaseNo << ": " << F->toJson();
  }
}

TEST(VerifyOracle, ServiceTierColdAndCachedAgree) {
  OracleOptions O = kernelOnly();
  O.KernelTier = false;
  O.ServiceTier = true;
  O.ScratchDir = ::testing::TempDir();
  for (uint64_t CaseNo : {40u, 87u}) {
    const Workload W = genWorkload(specForCase(0xCD, CaseNo));
    const auto F = checkWorkload(W, O);
    ASSERT_FALSE(F.has_value())
        << "case " << CaseNo << ": " << F->toJson();
  }
}

struct BugCase {
  InjectedBug Bug;
  uint64_t Seed; ///< run seed whose early cases expose the bug
};

class VerifyOracleInjection : public ::testing::TestWithParam<BugCase> {};

TEST_P(VerifyOracleInjection, CaughtShrunkAndReplayable) {
  const BugCase P = GetParam();
  OracleOptions O = kernelOnly();
  O.Bug = P.Bug;
  O.CorpusDir = ::testing::TempDir();

  std::optional<OracleFailure> F;
  for (uint64_t CaseNo = 0; CaseNo < 200 && !F; ++CaseNo)
    F = checkWorkload(genWorkload(specForCase(P.Seed, CaseNo)), O);
  ASSERT_TRUE(F.has_value())
      << "injected bug '" << injectedBugName(P.Bug) << "' escaped 200 cases";

  // The acceptance bar from the harness spec: a dropped conflict lane (and
  // every other injected defect) shrinks to a <= 32-element reproducer.
  EXPECT_LE(F->Elements, 32) << F->toJson();
  EXPECT_GE(F->Slot, 0);

  // The JSON record is one parseable line naming the failing combination.
  const Expected<json::Value> J = json::parse(F->toJson());
  ASSERT_TRUE(J.ok()) << F->toJson();
  EXPECT_EQ(J->getString("error", ""), "oracle_mismatch");
  EXPECT_FALSE(J->getString("pipeline", "").empty());

  // The dumped corpus replays: re-reading it and re-running the oracle
  // with the same injected bug fails again; without the bug it passes.
  ASSERT_FALSE(F->CorpusPath.empty());
  const Expected<Workload> R = readCorpus(F->CorpusPath);
  ASSERT_TRUE(R.ok()) << R.status().toString();
  OracleOptions NoDump = O;
  NoDump.CorpusDir.clear();
  EXPECT_TRUE(checkWorkload(*R, NoDump).has_value());
  NoDump.Bug = InjectedBug::None;
  EXPECT_FALSE(checkWorkload(*R, NoDump).has_value());
  std::remove(F->CorpusPath.c_str());
}

INSTANTIATE_TEST_SUITE_P(
    AllBugs, VerifyOracleInjection,
    ::testing::Values(BugCase{InjectedBug::DropConflictLane, 42},
                      BugCase{InjectedBug::SkipTail, 42},
                      BugCase{InjectedBug::NoAuxMerge, 42}),
    [](const ::testing::TestParamInfo<BugCase> &I) {
      return std::string(injectedBugName(I.param.Bug));
    });

TEST(VerifyOracle, ShrinkerFindsMinimalCore) {
  // Plant a single "poison" element; the shrinker must isolate it.
  CaseSpec S;
  S.Seed = 1;
  S.N = 96;
  S.Universe = 64;
  Workload W = genWorkload(S);
  W.Idx[57] = 63;
  W.Val[57] = 1024.0f;
  const auto StillFails = [](const Workload &C) {
    for (std::size_t I = 0; I < C.Idx.size(); ++I)
      if (C.Val[I] == 1024.0f)
        return true;
    return false;
  };
  const Workload Min = shrinkWorkload(W, StillFails);
  EXPECT_EQ(Min.Spec.N, 1);
  ASSERT_EQ(Min.Idx.size(), 1u);
  EXPECT_EQ(Min.Val[0], 1024.0f);
  // Universe compaction remaps the lone surviving index to 0.
  EXPECT_EQ(Min.Idx[0], 0);
  EXPECT_LE(Min.Spec.Universe, 2);
}

TEST(VerifyOracle, InjectedBugParserRoundTrips) {
  for (InjectedBug B : {InjectedBug::None, InjectedBug::DropConflictLane,
                        InjectedBug::SkipTail, InjectedBug::NoAuxMerge}) {
    const Expected<InjectedBug> R = parseInjectedBug(injectedBugName(B));
    ASSERT_TRUE(R.ok());
    EXPECT_EQ(*R, B);
  }
  EXPECT_FALSE(parseInjectedBug("made_up_bug").ok());
}

} // namespace
