//===- bench/BenchCommon.h - Shared benchmark harness helpers --*- C++ -*-===//
//
// Part of the cfv project: reproduction of Jiang & Agrawal, CGO 2018.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helpers shared by the per-figure harnesses: banner printing with the
/// paper-vs-measured framing, and the CFV_SCALE workload scaling shared
/// with graph::envScale().
///
/// Conventions: every harness prints (1) a banner naming the paper
/// figure/table it regenerates, (2) one column-aligned table per paper
/// panel with the same row labels the paper uses, and (3) a short
/// "paper reports" note stating the qualitative shape to compare against.
/// Absolute numbers are expected to differ (Xeon host vs KNL; synthetic
/// stand-in inputs); the shape -- who wins, by roughly what factor --
/// is the reproduction target (see EXPERIMENTS.md).
///
//===----------------------------------------------------------------------===//

#ifndef CFV_BENCH_BENCHCOMMON_H
#define CFV_BENCH_BENCHCOMMON_H

#include "obs/Metrics.h"
#include "util/Env.h"
#include "util/TablePrinter.h"

#include <cstdint>
#include <cstdio>
#include <string>

namespace cfv {
namespace bench {

/// Run seed every harness mixes into its workload generators.  Shared
/// with cfv_check's default so `CFV_SEED=n` pins a whole pipeline --
/// benchmarks, the verifier, and the nightly soak -- to one stream.
inline uint64_t benchSeed() {
  static const uint64_t S = static_cast<uint64_t>(
      env::intVar("CFV_SEED", 0xCF5EEDLL, INT64_MIN, INT64_MAX));
  return S;
}

inline void banner(const char *Experiment, const char *Title) {
  std::printf("\n");
  std::printf("==========================================================="
              "=====================\n");
  std::printf("%s -- %s\n", Experiment, Title);
  std::printf("==========================================================="
              "=====================\n");
}

inline void paperNote(const char *Note) {
  std::printf("paper reports: %s\n", Note);
}

inline void sectionHeader(const std::string &Text) {
  std::printf("\n--- %s ---\n", Text.c_str());
}

/// Formats a speedup multiplier like "2.31x" ("-" when the baseline is
/// degenerate).
inline std::string speedup(double BaselineSeconds, double Seconds) {
  if (Seconds <= 0.0 || BaselineSeconds <= 0.0)
    return "-";
  return TablePrinter::fmt(BaselineSeconds / Seconds, 2) + "x";
}

/// Formats a utilization percentage like the paper's "simd_util=97.96%".
inline std::string percent(double Fraction) {
  return TablePrinter::fmt(Fraction * 100.0, 2) + "%";
}

/// Latency percentile accumulator on the observability subsystem's
/// histogram (obs::HistogramData over the log2 latency layout the
/// serving metrics export as cfv_request_seconds).  Harness percentiles
/// and scraped quantiles share one bucketing and one interpolation, so
/// a bench p99 and a Prometheus-derived p99 cannot disagree by more
/// than a bucket.
class LatencyRecorder {
public:
  LatencyRecorder() : H(obs::log2Bounds(1e-6, 26)) {}

  void add(double Seconds) { H.add(Seconds); }

  /// Quantile in seconds, Q in [0, 1]; 0 while empty.
  double quantile(double Q) const { return H.quantile(Q); }
  double mean() const { return H.mean(); }
  uint64_t count() const { return H.TotalCount; }

private:
  obs::HistogramData H;
};

} // namespace bench
} // namespace cfv

#endif // CFV_BENCH_BENCHCOMMON_H
