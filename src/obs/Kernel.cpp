//===- obs/Kernel.cpp - Kernel conflict telemetry implementation ----------===//
//
// Part of the cfv project (see obs/Kernel.h for the metric catalog).
//
//===----------------------------------------------------------------------===//

#include "obs/Kernel.h"

#if CFV_OBS

#include "obs/Metrics.h"

#include <string>

namespace cfv {
namespace obs {

namespace {

/// Flushes a plain per-run LaneHistogram into a registry histogram by
/// bulk-observing each slot (one registry touch per slot, not per pass).
/// Bucket bounds follow the executing backend's lane width, and the
/// backend name joins the label set: an 8-lane avx2 series and a 16-lane
/// scalar/avx512 series must be distinct registry entries, since a
/// histogram's bounds are fixed at first registration.
void flushLanes(const char *Name, const char *App, const char *Backend,
                int LaneWidth, const LaneHistogram &H, const char *Help) {
  if (H.total() == 0)
    return;
  std::string Labels = std::string("app=\"") + App + "\"";
  if (Backend && *Backend)
    Labels += std::string(",backend=\"") + Backend + "\"";
  Histogram &Reg = MetricsRegistry::instance().histogram(
      Name, laneBounds(LaneWidth > 0 ? LaneWidth : 16), Labels, Help);
  for (unsigned I = 0; I < LaneHistogram::kSlots; ++I)
    if (H.count(I))
      Reg.observe(static_cast<double>(I), H.count(I));
}

} // namespace

void recordRun(const RunTelemetry &T) {
  if (!enabled())
    return;
  MetricsRegistry &R = MetricsRegistry::instance();
  const std::string AppLabel = std::string("app=\"") + T.App + "\"";

  R.counter("cfv_runs_total", AppLabel, "Completed kernel runs").inc();
  if (T.UsedAlg2)
    R.counter("cfv_runs_alg2_total", AppLabel,
              "Runs where the adaptive policy committed to Algorithm 2")
        .inc();
  if (T.EdgesProcessed)
    R.counter("cfv_edges_processed_total", AppLabel,
              "Edges (or elements) processed by kernels")
        .inc(T.EdgesProcessed);

  // Latency layouts: 1us..~33s doubling, the same shape serve latencies
  // use, so phase times line up column-for-column on a dashboard.
  R.histogram("cfv_run_kernel_seconds", log2Bounds(1e-6, 26), AppLabel,
              "Executor (kernel) seconds per run")
      .observe(T.KernelSeconds);
  if (T.PrepSeconds > 0.0)
    R.histogram("cfv_run_prep_seconds", log2Bounds(1e-6, 26), AppLabel,
                "Inspector (tiling/grouping/CSR) seconds per run")
        .observe(T.PrepSeconds);

  if (T.D1)
    flushLanes("cfv_kernel_d1_lanes", T.App, T.Backend, T.LaneWidth, *T.D1,
               "Distinct conflicting lanes (D1) per vector pass");
  if (T.Util)
    flushLanes("cfv_kernel_useful_lanes", T.App, T.Backend, T.LaneWidth,
               *T.Util,
               "Useful lanes per vector pass (SIMD utilization)");
}

void recordAdaptiveDecision(bool UseAlg2, double MeanD1) {
  if (!enabled())
    return;
  // Static references: the sampling window can close mid-kernel on a
  // worker thread, so resolve the registry lookups once per process
  // instead of taking the registry mutex on every decision.
  static Counter &Alg1 = MetricsRegistry::instance().counter(
      "cfv_adaptive_decisions_total", "alg=\"1\"",
      "Adaptive policy commitments after the D1 sampling window");
  static Counter &Alg2 = MetricsRegistry::instance().counter(
      "cfv_adaptive_decisions_total", "alg=\"2\"",
      "Adaptive policy commitments after the D1 sampling window");
  static Histogram &CommitD1 = MetricsRegistry::instance().histogram(
      "cfv_adaptive_commit_d1", laneBounds(16), "",
      "Mean D1 observed at the moment the adaptive policy committed");
  (UseAlg2 ? Alg2 : Alg1).inc();
  CommitD1.observe(MeanD1);
}

} // namespace obs
} // namespace cfv

#endif // CFV_OBS
