//===- util/Stats.h - Runtime counters and statistics -----------*- C++ -*-===//
//
// Part of the cfv project (see AlignedAlloc.h for the project banner).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Counters used to reproduce the paper's reported metrics: the SIMD
/// utilization of the conflict-masking approach (Figures 8-12 annotate
/// "simd_util = ...%") and the average number of distinct conflicting
/// lanes D1/D2 that drives the Algorithm 1 / Algorithm 2 choice (§3.4).
///
//===----------------------------------------------------------------------===//

#ifndef CFV_UTIL_STATS_H
#define CFV_UTIL_STATS_H

#include <cstdint>

namespace cfv {

/// Tracks SIMD utilization: the fraction of lane slots that carried useful
/// work over all vector passes executed.  The conflict-masking approach
/// re-runs a vector until all lanes commit, so its utilization is
/// (lanes committed) / (passes * width); in-vector reduction commits every
/// active lane in one pass.
class SimdUtilCounter {
public:
  void recordPass(unsigned UsefulLanes, unsigned Width) {
    Useful += UsefulLanes;
    Slots += Width;
  }

  /// Utilization in [0, 1]; 1.0 when nothing was recorded.
  double utilization() const {
    return Slots == 0 ? 1.0 : static_cast<double>(Useful) /
                                  static_cast<double>(Slots);
  }

  uint64_t passes(unsigned Width) const { return Slots / Width; }

  /// Folds another counter in (used to combine per-worker counters after
  /// a parallel region; merge order does not affect the result).
  void merge(const SimdUtilCounter &O) {
    Useful += O.Useful;
    Slots += O.Slots;
  }

  void reset() { Useful = Slots = 0; }

private:
  uint64_t Useful = 0;
  uint64_t Slots = 0;
};

/// Incremental mean without storing samples.
class RunningMean {
public:
  void add(double X) {
    ++N;
    Mean += (X - Mean) / static_cast<double>(N);
  }

  double mean() const { return Mean; }
  uint64_t count() const { return N; }

  /// Count-weighted combine of two means (per-worker statistics are
  /// merged in thread-id order after a parallel region, keeping the
  /// result deterministic at a fixed thread count).
  void merge(const RunningMean &O) {
    if (O.N == 0)
      return;
    const uint64_t Total = N + O.N;
    Mean += (O.Mean - Mean) * (static_cast<double>(O.N) /
                               static_cast<double>(Total));
    N = Total;
  }

  void reset() {
    N = 0;
    Mean = 0.0;
  }

private:
  uint64_t N = 0;
  double Mean = 0.0;
};

} // namespace cfv

#endif // CFV_UTIL_STATS_H
