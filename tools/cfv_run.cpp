//===- tools/cfv_run.cpp - Command-line application driver ----------------===//
//
// Part of the cfv project: reproduction of Jiang & Agrawal, CGO 2018.
//
//===----------------------------------------------------------------------===//
//
// Runs any of the library's applications on a named synthetic dataset or
// a SNAP edge-list file, with any execution strategy -- the command-line
// counterpart of the original artifact's run.sh scripts.  The tool is a
// thin shell over the unified cfv::run facade (core/Api.h): flags become
// an AppRequest, the AppResult becomes a report.
//
//   cfv_run pagerank --dataset higgs-twitter-sim --version invec
//   cfv_run sssp     --file soc-pokec.txt --version mask --source 3
//   cfv_run wcc      --dataset amazon0312-sim --version grouping
//   cfv_run moldyn   --cells 10 --version invec --iters 20
//   cfv_run agg      --dist zipf --cardinality 65536 --rows 4000000
//                    --version bucket_invec     (one line)
//   cfv_run spmv     --dataset higgs-twitter-sim --version invec
//   cfv_run pagerank --threads 8 --json
//
// Run `cfv_run --help` for the full grammar.
//
//===----------------------------------------------------------------------===//

#include "core/Api.h"
#include "core/Dispatch.h"
#include "core/ParallelEngine.h"
#include "graph/Datasets.h"
#include "graph/MappedCsr.h"
#include "graph/Prepared.h"
#include "graph/Io.h"
#include "obs/Metrics.h"
#include "obs/Trace.h"
#include "pattern/Pattern.h"
#include "service/Json.h"
#include "util/Prng.h"
#include "util/Timer.h"
#include "workload/KeyGen.h"

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <map>
#include <string>

using namespace cfv;

namespace {

[[noreturn]] void usage(int Code) {
  std::fprintf(
      Code ? stderr : stdout,
      "usage: cfv_run <app> [options]\n"
      "\n"
      "apps:\n"
      "  pagerank | pagerank64 | sssp | sswp | wcc | bfs | moldyn | agg |\n"
      "  rbk | spmv | mesh\n"
      "\n"
      "graph inputs (pagerank/pagerank64/sssp/sswp/wcc/bfs/rbk/spmv):\n"
      "  --dataset <name>     higgs-twitter-sim | soc-pokec-sim |\n"
      "                       amazon0312-sim   (default higgs-twitter-sim)\n"
      "  --file <path>        SNAP edge list instead of a synthetic input\n"
      "  --scale <x>          synthetic workload scale (default $CFV_SCALE)\n"
      "\n"
      "strategy:\n"
      "  --version <v>        serial | tiling_serial | grouping | mask |\n"
      "                       invec (graph apps; default invec)\n"
      "                       serial | grouping | mask | invec (moldyn/mesh)\n"
      "                       serial | mask | bucket_mask | invec |\n"
      "                       bucket_invec (agg)\n"
      "                       serial | csr_serial | mask | invec |\n"
      "                       grouping (spmv)\n"
      "                       (historical per-app spellings like\n"
      "                       coo_invec / linear_mask still accepted)\n"
      "\n"
      "execution:\n"
      "  --backend <b>        scalar | avx2 | avx512 | auto (default: best\n"
      "                       available; CFV_BACKEND=<b> is equivalent;\n"
      "                       requesting a tier this CPU lacks degrades to\n"
      "                       the next best with a note)\n"
      "  --backend list       print the compiled/available tier matrix and\n"
      "                       exit\n"
      "  --threads <n>        worker threads for the parallel engine\n"
      "                       (n >= 1; 0 = all hardware threads; default:\n"
      "                       CFV_THREADS, else 1)\n"
      "  --pattern <m>        off | classify-only | on: per-tile index-\n"
      "                       stream classification + specialized kernel\n"
      "                       dispatch for the invec versions (default:\n"
      "                       CFV_PATTERN, else on)\n"
      "  --numa <m>           off | auto | interleave: NUMA-sharded tile\n"
      "                       assignment, worker pinning, and the\n"
      "                       two-level merge (default: CFV_NUMA, else\n"
      "                       off; single-node machines run flat either\n"
      "                       way unless CFV_NUMA_TOPOLOGY fakes nodes)\n"
      "  --json               emit one JSON object instead of the report\n"
      "\n"
      "observability:\n"
      "  --trace <file>       record load/inspector/kernel/merge spans and\n"
      "                       write chrome://tracing JSON to <file> (load\n"
      "                       it at chrome://tracing or ui.perfetto.dev)\n"
      "  --metrics            after the run, dump the metrics registry as\n"
      "                       Prometheus text to stderr (stdout keeps the\n"
      "                       report/--json contract)\n"
      "\n"
      "app options:\n"
      "  --source <v>         source vertex (sssp/sswp/bfs; default 0)\n"
      "  --iters <n>          iteration cap / moldyn steps / spmv-rbk\n"
      "                       repeats (default per app)\n"
      "  --cells <n>          moldyn FCC cells per edge (default 8)\n"
      "  --rows <n>           agg input rows (default 4000000)\n"
      "  --cardinality <n>    agg group count (default 65536)\n"
      "  --dist <d>           agg keys: hh | zipf | mc | uniform\n"
      "  --seed <n>           generator seed override\n"
      "\n"
      "environment:\n"
      "  CFV_BACKEND=<b>      backend override (see --backend)\n"
      "  CFV_THREADS=<n>      worker thread default (see --threads)\n"
      "  CFV_PATTERN=<m>      pattern-subsystem default (see --pattern)\n"
      "  CFV_NUMA=<m>         NUMA-sharding default (see --numa)\n"
      "  CFV_NUMA_TOPOLOGY=<spec>  synthetic topology, one cpulist per\n"
      "                       node ('0-3;4-7')\n"
      "  CFV_MAP_BYTES=<n>    out-of-core mmap budget: prepared datasets\n"
      "                       stream edges from a CFVM backing file with\n"
      "                       an n-byte residency window (0 = in-core)\n"
      "  CFV_VALIDATE=1       re-check every in-vector reduction batch\n"
      "                       against scalar-order semantics (slow)\n"
      "  CFV_SCALE=<x>        synthetic workload scale\n");
  std::exit(Code);
}

/// `--backend list`: render the tier matrix (every known tier, compiled
/// in or not) plus the tier auto-selection would pick, then exit.
[[noreturn]] void listBackends() {
  std::printf("%-8s %5s  %-22s %-8s %s\n", "backend", "lanes", "conflict",
              "compiled", "available");
  for (const core::BackendInfo &I : core::backendInfos())
    std::printf("%-8s %5d  %-22s %-8s %s%s%s\n", I.Name, I.Lanes, I.Conflict,
                I.Compiled ? "yes" : "no", I.Available ? "yes" : "no",
                I.Available ? "" : "  -- ",
                I.Available ? "" : I.Unavailable ? I.Unavailable : "");
  std::printf("selected: %s\n", core::dispatch().Name);
  std::exit(0);
}

struct Options {
  std::string App;
  std::string Dataset = "higgs-twitter-sim";
  std::string File;
  std::string Version; ///< empty = per-app default (invec where available)
  std::string Dist = "zipf";
  double Scale = graph::envScale();
  int32_t Source = 0;
  int Iters = -1;
  int Threads = 0; ///< 0 = defer to CFV_THREADS unless --threads given
  int Cells = 8;
  int64_t Rows = 4000000;
  int64_t Cardinality = 65536;
  uint64_t Seed = 0xCF5EEDULL;
  core::BackendChoice Backend = core::BackendChoice::Auto;
  core::PatternMode Pattern = core::PatternMode::Env;
  core::NumaChoice Numa = core::NumaChoice::Env;
  bool Json = false;
  std::string TraceFile; ///< empty = tracing stays off
  bool Metrics = false;
};

/// Strict numeric flag parsing: the whole token must convert, and range
/// errors are fatal rather than silently saturating like atoi.
long long parseIntFlag(const std::string &Flag, const char *Text) {
  char *End = nullptr;
  errno = 0;
  const long long V = std::strtoll(Text, &End, 0);
  if (End == Text || *End != '\0' || errno == ERANGE) {
    std::fprintf(stderr, "error: %s needs an integer, got '%s'\n",
                 Flag.c_str(), Text);
    usage(2);
  }
  return V;
}

uint64_t parseSeedFlag(const std::string &Flag, const char *Text) {
  char *End = nullptr;
  errno = 0;
  const unsigned long long V = std::strtoull(Text, &End, 0);
  if (End == Text || *End != '\0' || errno == ERANGE) {
    std::fprintf(stderr, "error: %s needs an unsigned integer, got '%s'\n",
                 Flag.c_str(), Text);
    usage(2);
  }
  return V;
}

double parseFloatFlag(const std::string &Flag, const char *Text) {
  char *End = nullptr;
  errno = 0;
  const double V = std::strtod(Text, &End);
  if (End == Text || *End != '\0' || errno == ERANGE) {
    std::fprintf(stderr, "error: %s needs a number, got '%s'\n",
                 Flag.c_str(), Text);
    usage(2);
  }
  return V;
}

Options parseArgs(int Argc, char **Argv) {
  if (Argc < 2)
    usage(2);
  Options O;
  O.App = Argv[1];
  if (O.App == "--help" || O.App == "-h")
    usage(0);
  // `cfv_run --backend list` works without an app name: listing the tier
  // matrix is pure introspection.
  if (O.App == "--backend" && Argc >= 3 && std::string(Argv[2]) == "list")
    listBackends();
  for (int I = 2; I < Argc; ++I) {
    const std::string Arg = Argv[I];
    auto Value = [&]() -> const char * {
      if (I + 1 >= Argc) {
        std::fprintf(stderr, "error: %s needs a value\n", Arg.c_str());
        usage(2);
      }
      return Argv[++I];
    };
    if (Arg == "--dataset")
      O.Dataset = Value();
    else if (Arg == "--file")
      O.File = Value();
    else if (Arg == "--version")
      O.Version = Value();
    else if (Arg == "--dist")
      O.Dist = Value();
    else if (Arg == "--backend") {
      const std::string B = Value();
      if (B == "list")
        listBackends(); // prints the matrix and exits
      if (B == "auto") {
        O.Backend = core::BackendChoice::Auto;
        continue;
      }
      const Expected<core::BackendKind> K = core::parseBackendKind(B);
      if (!K.ok()) {
        std::fprintf(stderr, "error: %s\n", K.status().toString().c_str());
        usage(2);
      }
      O.Backend = *K == core::BackendKind::Scalar ? core::BackendChoice::Scalar
                  : *K == core::BackendKind::Avx2 ? core::BackendChoice::Avx2
                                                  : core::BackendChoice::Avx512;
    } else if (Arg == "--threads") {
      const long long N = parseIntFlag(Arg, Value());
      if (N < 0 || N > core::kMaxThreads) {
        std::fprintf(stderr,
                     "error: --threads needs a value in [0, %d], got %lld\n",
                     core::kMaxThreads, N);
        usage(2);
      }
      O.Threads = N == 0 ? core::hardwareThreads() : static_cast<int>(N);
    } else if (Arg == "--pattern") {
      const std::string P = Value();
      if (P == "off")
        O.Pattern = core::PatternMode::Off;
      else if (P == "classify-only" || P == "classify_only")
        O.Pattern = core::PatternMode::ClassifyOnly;
      else if (P == "on")
        O.Pattern = core::PatternMode::On;
      else {
        std::fprintf(stderr,
                     "error: --pattern needs off|classify-only|on, got "
                     "'%s'\n",
                     P.c_str());
        usage(2);
      }
    } else if (Arg == "--numa") {
      const std::string N = Value();
      if (N == "off")
        O.Numa = core::NumaChoice::Off;
      else if (N == "auto")
        O.Numa = core::NumaChoice::Auto;
      else if (N == "interleave")
        O.Numa = core::NumaChoice::Interleave;
      else {
        std::fprintf(stderr,
                     "error: --numa needs off|auto|interleave, got '%s'\n",
                     N.c_str());
        usage(2);
      }
    } else if (Arg == "--json")
      O.Json = true;
    else if (Arg == "--trace")
      O.TraceFile = Value();
    else if (Arg == "--metrics")
      O.Metrics = true;
    else if (Arg == "--scale")
      O.Scale = parseFloatFlag(Arg, Value());
    else if (Arg == "--source")
      O.Source = static_cast<int32_t>(parseIntFlag(Arg, Value()));
    else if (Arg == "--iters")
      O.Iters = static_cast<int>(parseIntFlag(Arg, Value()));
    else if (Arg == "--cells")
      O.Cells = static_cast<int>(parseIntFlag(Arg, Value()));
    else if (Arg == "--rows")
      O.Rows = parseIntFlag(Arg, Value());
    else if (Arg == "--cardinality")
      O.Cardinality = parseIntFlag(Arg, Value());
    else if (Arg == "--seed")
      O.Seed = parseSeedFlag(Arg, Value());
    else if (Arg == "--help" || Arg == "-h")
      usage(0);
    else {
      std::fprintf(stderr, "error: unknown option '%s'\n", Arg.c_str());
      usage(2);
    }
  }
  return O;
}

/// Failure reporting honours the output contract: under --json the tool
/// emits one machine-readable error record on stdout (same channel the
/// success object would use) so pipelines never have to scrape stderr,
/// then exits with the given code.
[[noreturn]] void fail(const Options &O, const Status &S, int Code) {
  std::fprintf(stderr, "error: %s\n", S.toString().c_str());
  if (O.Json) {
    json::ObjectWriter J;
    J.field("ok", false)
        .field("error", errorCodeName(S.code()))
        .field("detail", S.message());
    std::printf("%s\n", J.str().c_str());
  }
  std::exit(Code);
}

graph::EdgeList loadGraph(const Options &O, bool Weighted) {
  if (!O.File.empty()) {
    auto G = graph::readSnapEdgeList(O.File);
    if (!G.ok())
      fail(O, G.status(), 1);
    if (Weighted && !G->isWeighted()) {
      // Attach deterministic weights so path algorithms work on
      // unweighted SNAP files, as the paper's artifact does.
      Xoshiro256 Rng(O.Seed);
      G->Weight.resize(G->numEdges());
      for (float &W : G->Weight)
        W = 1.0f + Rng.nextFloat() * 63.0f;
      std::fprintf(stderr,
                   "note: attached uniform [1,64) weights to '%s'\n",
                   O.File.c_str());
    }
    return std::move(*G);
  }
  auto D = graph::makeGraphDataset(O.Dataset, O.Scale, Weighted);
  if (!D.ok())
    fail(O, D.status(), 2);
  return std::move(D->Edges);
}

// The load / kernel / prep split and the field names match cfv_serve's
// response schema, so the same scripts can digest either tool's output.
void printJson(const AppResult &R, double LoadSeconds) {
  std::printf("{\"app\":\"%s\",\"version\":\"%s\",\"backend\":\"%s\","
              "\"threads\":%d,\"iterations\":%d,"
              "\"load_seconds\":%.6f,\"kernel_seconds\":%.6f,"
              "\"prep_seconds\":%.6f,"
              "\"simd_util\":%.4f,\"mean_d1\":%.4f,"
              "\"edges_processed\":%lld,\"checksum\":%.8g,"
              "\"numa_nodes\":%d,\"used_mapped_csr\":%s,"
              "\"pattern_mode\":\"%s\",\"pattern_tiles\":{",
              appIdName(R.App), R.VersionName.c_str(),
              core::backendName(R.Backend), R.Threads, R.Iterations,
              LoadSeconds, R.ComputeSeconds, R.PrepSeconds, R.SimdUtil,
              R.MeanD1, static_cast<long long>(R.EdgesProcessed),
              resultChecksum(R), R.NumaNodes,
              R.UsedMappedCsr ? "true" : "false",
              R.PatternModeName.c_str());
  for (int C = 0; C < pattern::kNumTileClasses; ++C)
    std::printf("%s\"%s\":%lld", C ? "," : "",
                pattern::tileClassName(static_cast<pattern::TileClass>(C)),
                static_cast<long long>(R.PatternTiles[C]));
  std::printf("}}\n");
}

void printReport(const AppResult &R) {
  std::printf("%s %s: backend %s, %d thread%s\n", appIdName(R.App),
              R.VersionName.c_str(), core::backendName(R.Backend), R.Threads,
              R.Threads == 1 ? "" : "s");
  std::printf("  computing %.3fs  prep %.3fs  (%d iterations, %lld edge "
              "updates)\n",
              R.ComputeSeconds, R.PrepSeconds, R.Iterations,
              static_cast<long long>(R.EdgesProcessed));
  if (R.SimdUtil < 1.0)
    std::printf("  simd_util %.2f%%\n", R.SimdUtil * 100.0);
  if (R.MeanD1 > 0.0)
    std::printf("  mean D1 %.4f\n", R.MeanD1);
  int64_t PatTotal = 0;
  for (int C = 0; C < pattern::kNumTileClasses; ++C)
    PatTotal += R.PatternTiles[C];
  if (PatTotal > 0) {
    std::printf("  pattern (%s):", R.PatternModeName.c_str());
    for (int C = 0; C < pattern::kNumTileClasses; ++C)
      if (R.PatternTiles[C])
        std::printf(" %s %lld",
                    pattern::tileClassName(
                        static_cast<pattern::TileClass>(C)),
                    static_cast<long long>(R.PatternTiles[C]));
    std::printf("\n");
  }
  switch (R.App) {
  case AppId::Moldyn:
    std::printf("  %d atoms, %lld pairs\n", R.Moldyn.Atoms,
                static_cast<long long>(R.Moldyn.Pairs));
    std::printf("  kinetic %.2f  potential %.2f\n", R.Moldyn.FinalKinetic,
                R.Moldyn.FinalPotential);
    break;
  case AppId::Agg:
    std::printf("  %lld groups, value sum %.4f\n",
                static_cast<long long>(R.Groups.size()), resultChecksum(R));
    break;
  case AppId::Rbk:
    std::printf("  invec %.3fs (checksum %.4f)\n", R.Rbk.InvecSeconds,
                R.Rbk.InvecChecksum);
    std::printf("  library-style %.3fs (checksum %.4f)\n",
                R.Rbk.ThrustLikeSeconds, R.Rbk.ThrustLikeChecksum);
    std::printf("  fused serial %.3fs (checksum %.4f)\n",
                R.Rbk.FusedSerialSeconds, R.Rbk.FusedSerialChecksum);
    break;
  case AppId::Spmv:
    std::printf("  |y|^2 %.4g\n", resultChecksum(R));
    break;
  case AppId::PageRank:
  case AppId::PageRank64:
    std::printf("  rank mass %.4f\n", resultChecksum(R));
    break;
  case AppId::Mesh:
    std::printf("  conserved total %.2f\n", resultChecksum(R));
    break;
  default:
    break;
  }
}

} // namespace

int main(int Argc, char **Argv) {
  const Options O = parseArgs(Argc, Argv);
  if (!O.TraceFile.empty())
    obs::Tracer::instance().setEnabled(true);

  const Expected<AppId> App = parseAppId(O.App);
  if (!App.ok()) {
    std::fprintf(stderr, "error: %s\n", App.status().toString().c_str());
    usage(2);
  }
  const Expected<AppVersion> Version =
      parseAppVersion(*App, O.Version.empty() ? "default" : O.Version);
  if (!Version.ok()) {
    std::fprintf(stderr, "error: %s\n", Version.status().toString().c_str());
    usage(2);
  }

  AppRequest R;
  R.App = *App;
  R.Version = *Version;
  R.Options.Backend = O.Backend;
  R.Options.Threads = O.Threads;
  R.Options.Pattern = O.Pattern;
  R.Options.Numa = O.Numa;
  if (O.Iters > 0)
    R.Options.MaxIterations = O.Iters;

  // Inputs the request borrows must outlive cfv::run.  Their preparation
  // is timed separately so the JSON output reports the same
  // load-vs-kernel split as cfv_serve's telemetry.
  WallTimer LoadTimer;
  graph::EdgeList G;
  AlignedVector<int32_t> Keys;
  AlignedVector<float> Vals;
  AlignedVector<float> X;
  apps::Mesh M;
  AlignedVector<float> U0;

  switch (*App) {
  case AppId::PageRank:
  case AppId::PageRank64:
  case AppId::Wcc:
  case AppId::Bfs:
  case AppId::Rbk:
    G = loadGraph(O, /*Weighted=*/false);
    R.Graph = &G;
    R.Source = O.Source;
    if (*App == AppId::Rbk && O.Iters <= 0)
      R.Options.MaxIterations = 10; // keep the default CLI run short
    break;
  case AppId::Sssp:
  case AppId::Sswp:
    G = loadGraph(O, /*Weighted=*/true);
    R.Graph = &G;
    R.Source = O.Source;
    break;
  case AppId::Spmv: {
    G = loadGraph(O, /*Weighted=*/true);
    R.Graph = &G;
    Xoshiro256 Rng(O.Seed);
    X.resize(G.NumNodes);
    for (float &E : X)
      E = Rng.nextFloat();
    R.X = X.data();
    if (O.Iters <= 0)
      R.Options.MaxIterations = 10; // historical cfv_run default repeats
    break;
  }
  case AppId::Moldyn:
    R.Moldyn.Cells = O.Cells;
    R.Moldyn.Seed = O.Seed;
    break;
  case AppId::Agg: {
    const std::map<std::string, workload::KeyDist> Dists = {
        {"hh", workload::KeyDist::HeavyHitter},
        {"zipf", workload::KeyDist::Zipf},
        {"mc", workload::KeyDist::MovingCluster},
        {"uniform", workload::KeyDist::Uniform}};
    const auto DistIt = Dists.find(O.Dist);
    if (DistIt == Dists.end()) {
      std::fprintf(stderr, "error: unknown distribution '%s'\n",
                   O.Dist.c_str());
      return 2;
    }
    if (O.Cardinality <= 0 || O.Cardinality > (int64_t(1) << 24) ||
        O.Rows <= 0) {
      std::fprintf(stderr,
                   "error: --cardinality must be in [1, 2^24] and --rows "
                   "positive\n");
      return 2;
    }
    Keys = workload::genKeys(DistIt->second, O.Rows,
                             static_cast<int32_t>(O.Cardinality), O.Seed);
    Vals = workload::genValues(O.Rows, O.Seed ^ 1);
    R.Keys = Keys.data();
    R.Vals = Vals.data();
    R.Rows = O.Rows;
    R.Cardinality = O.Cardinality;
    break;
  }
  case AppId::Mesh: {
    // Square grid sized from --cells (cells per edge, like moldyn).
    const int32_t Side = std::max(4, O.Cells * 16);
    M = apps::makeTriangulatedGrid(Side, Side, O.Seed);
    Xoshiro256 Rng(O.Seed ^ 2);
    U0.resize(M.NumCells);
    for (float &V : U0)
      V = Rng.nextFloat();
    R.MeshIn = &M;
    R.U0 = U0.data();
    R.Dt = 0.4f;
    break;
  }
  }
  // CFV_MAP_BYTES asks for the out-of-core path: wrap the loaded edge
  // list in a PreparedGraph so the facade can serialize it to the CFVM
  // backing and auto-wire the mapped request (core/Api.cpp).  The
  // request then borrows the prepared copy instead of the moved-from G.
  std::unique_ptr<graph::PreparedGraph> Prep;
  if (R.Graph == &G && graph::mapBytesBudget() > 0) {
    Prep = std::make_unique<graph::PreparedGraph>(std::move(G));
    R.Graph = &Prep->edges();
    R.Prepared = Prep.get();
  }
  const double LoadSeconds = LoadTimer.seconds();
  // The span carries the same number the report prints (no re-measuring).
  obs::Tracer::instance().recordAt("tool:load", "load",
                                   monotonicSeconds() - LoadSeconds,
                                   LoadSeconds);

  const Expected<AppResult> Result = cfv::run(R);
  if (!Result.ok())
    fail(O, Result.status(), 1);
  if (O.Json)
    printJson(*Result, LoadSeconds);
  else
    printReport(*Result);
  if (O.Metrics)
    std::fputs(obs::MetricsRegistry::instance().renderPrometheus().c_str(),
               stderr);
  if (!O.TraceFile.empty() &&
      !obs::Tracer::instance().writeChromeJson(O.TraceFile))
    return 1;
  return 0;
}
