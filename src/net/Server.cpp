//===- net/Server.cpp - async multi-client serve front-end ----------------===//
//
// Part of the cfv project: reproduction of Jiang & Agrawal, CGO 2018.
//
//===----------------------------------------------------------------------===//

#include "net/Server.h"

#if defined(__linux__)

#include "obs/Metrics.h"
#include "resilience/Fault.h"
#include "service/NetIo.h"
#include "service/Protocol.h"
#include "util/Clock.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <netinet/in.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

using namespace cfv;
using namespace cfv::net;
using cfv::service::Service;
using cfv::service::ServeRequest;
using cfv::service::ServeResponse;

namespace {

obs::Counter &netCounter(const char *Name, const char *Help) {
  return obs::MetricsRegistry::instance().counter(Name, "", Help);
}

/// Best-effort "id" extraction from an unparsed request line, so a
/// pre-parse overload rejection can still be matched to its request by
/// a pipelining client.  Deliberately shallow: first "id" key, string
/// value, simple escapes skipped -- wrong ids only cost the client a
/// correlation, never the server a crash.
std::string quickId(const std::string &Line) {
  const std::size_t Key = Line.find("\"id\"");
  if (Key == std::string::npos)
    return "";
  std::size_t I = Key + 4;
  while (I < Line.size() && (Line[I] == ' ' || Line[I] == '\t'))
    ++I;
  if (I >= Line.size() || Line[I] != ':')
    return "";
  ++I;
  while (I < Line.size() && (Line[I] == ' ' || Line[I] == '\t'))
    ++I;
  if (I >= Line.size() || Line[I] != '"')
    return "";
  std::string Id;
  for (++I; I < Line.size() && Line[I] != '"'; ++I) {
    if (Line[I] == '\\' && I + 1 < Line.size())
      ++I; // keep the escaped char, drop the backslash
    Id.push_back(Line[I]);
  }
  return Id;
}

} // namespace

Server::Server(service::Service &S, Config C)
    : Svc(S), Cfg(C),
      Batches(Batcher::Config{static_cast<double>(C.BatchWindowUs) / 1e6,
                              64}) {}

Server::~Server() {
  if (Listener >= 0)
    ::close(Listener);
  for (auto &KV : Conns)
    ::close(KV.second->Fd);
  obs::MetricsRegistry::instance().removeGauge("cfv_net_conns_open");
}

Status Server::listen() {
  Listener = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (Listener < 0)
    return Status::error(ErrorCode::IoError,
                         std::string("socket: ") + std::strerror(errno));
  const int One = 1;
  ::setsockopt(Listener, SOL_SOCKET, SO_REUSEADDR, &One, sizeof(One));
  sockaddr_in Addr;
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sin_family = AF_INET;
  Addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  Addr.sin_port = htons(static_cast<uint16_t>(Cfg.Port));
  if (::bind(Listener, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) < 0)
    return Status::error(ErrorCode::IoError,
                         std::string("bind: ") + std::strerror(errno));
  if (::listen(Listener, Cfg.Backlog) < 0)
    return Status::error(ErrorCode::IoError,
                         std::string("listen: ") + std::strerror(errno));
  socklen_t Len = sizeof(Addr);
  if (::getsockname(Listener, reinterpret_cast<sockaddr *>(&Addr), &Len) == 0)
    BoundPort = ntohs(Addr.sin_port);
  else
    BoundPort = Cfg.Port;
  if (!Loop.valid())
    return Status::error(ErrorCode::IoError, "epoll initialization failed");
  return Status();
}

uint32_t Server::eventsFor(const Conn &C) const {
  uint32_t Ev = 0;
  if (!C.ReadClosed && !C.ReadShed && !Draining)
    Ev |= EPOLLIN;
  if (C.WrOff < C.WrBuf.size())
    Ev |= EPOLLOUT;
  return Ev;
}

void Server::updateInterest(Conn &C) {
  Loop.mod(C.Fd, eventsFor(C));
}

void Server::gateAccept() {
  const bool ShouldGate =
      Draining || static_cast<int>(Conns.size()) >= Cfg.MaxConns;
  if (ShouldGate == AcceptGated)
    return;
  AcceptGated = ShouldGate;
  // Gating keeps the fd registered with an empty interest mask: new
  // clients queue in the accept backlog instead of burning accept+close.
  Loop.mod(Listener, ShouldGate ? 0u : static_cast<uint32_t>(EPOLLIN));
}

void Server::acceptReady() {
  while (static_cast<int>(Conns.size()) < Cfg.MaxConns) {
    const int Fd = ::accept4(Listener, nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (Fd < 0)
      return; // EAGAIN (or transient error): wait for the next event
    auto C = std::make_unique<Conn>();
    C->Id = NextConnId++;
    C->Fd = Fd;
    C->LastActivity = monotonicSeconds();
    const uint64_t Id = C->Id;
    FdToConn[Fd] = Id;
    Conns[Id] = std::move(C);
    ++Counters.Accepted;
    netCounter("cfv_net_accepted_total", "Connections accepted").inc();
    Loop.add(Fd, EPOLLIN, [this, Id](uint32_t Events) { connReady(Id, Events); });
  }
  gateAccept();
}

void Server::connReady(uint64_t Id, uint32_t Events) {
  auto It = Conns.find(Id);
  if (It == Conns.end())
    return;
  Conn &C = *It->second;
  if (Events & (EPOLLERR | EPOLLHUP)) {
    // Peer vanished.  In-flight completions will find the conn gone and
    // count as dropped replies.
    closeConn(Id);
    return;
  }
  if (Events & EPOLLOUT)
    onWritable(C);
  if (Conns.count(Id) && (Events & EPOLLIN))
    onReadable(C);
}

void Server::onReadable(Conn &C) {
  const uint64_t Id = C.Id;
  char Tmp[8192];
  for (;;) {
    const service::netio::IoResult R =
        service::netio::readSome(C.Fd, Tmp, sizeof(Tmp));
    if (R.Bytes > 0) {
      C.RdBuf.append(Tmp, R.Bytes);
      C.LastActivity = monotonicSeconds();
    }
    if (R.St == service::netio::IoStatus::WouldBlock)
      break;
    if (R.St == service::netio::IoStatus::Gone) {
      // EOF or error.  Flush what we have (including a final
      // unterminated line), then either close now or hang on until the
      // admitted requests answer into the half-closed socket.
      consumeLines(C, /*Eof=*/true);
      auto It = Conns.find(Id);
      if (It == Conns.end())
        return; // a shutdown verb in the tail closed it already
      Conn &Cc = *It->second;
      Cc.ReadClosed = true;
      if (Cc.InFlight == 0 && Cc.WrOff >= Cc.WrBuf.size())
        closeConn(Id);
      else
        updateInterest(Cc);
      return;
    }
    // Done with room to spare means EOF hasn't been seen; keep reading
    // only if the buffer was filled exactly.
    if (R.Bytes < sizeof(Tmp))
      break;
  }
  consumeLines(C, /*Eof=*/false);
  if (Conns.count(Id))
    updateInterest(C);
}

void Server::consumeLines(Conn &C, bool Eof) {
  const uint64_t Id = C.Id;
  std::size_t Start = 0;
  for (;;) {
    if (!Conns.count(Id))
      return; // a line closed the connection; drop the rest
    const std::size_t Nl = C.RdBuf.find('\n', Start);
    if (Nl == std::string::npos)
      break;
    std::string Line = C.RdBuf.substr(Start, Nl - Start);
    Start = Nl + 1;
    if (!Line.empty() && Line.back() == '\r')
      Line.pop_back();
    handleLine(C, Line);
  }
  if (!Conns.count(Id))
    return;
  C.RdBuf.erase(0, Start);
  if (Eof && !C.RdBuf.empty()) {
    std::string Line;
    Line.swap(C.RdBuf);
    if (!Line.empty() && Line.back() == '\r')
      Line.pop_back();
    handleLine(C, Line);
  }
}

void Server::handleLine(Conn &C, const std::string &Line) {
  if (Draining)
    return; // drain admits nothing new; in-flight replies still deliver
  if (C.Http) {
    if (C.HttpReqLine.empty()) {
      if (!Line.empty())
        C.HttpReqLine = Line;
      return;
    }
    if (!Line.empty()) {
      // Header.  The only one that changes behavior is Connection.
      std::string Lower;
      Lower.reserve(Line.size());
      for (char Ch : Line)
        Lower.push_back(static_cast<char>(
            Ch >= 'A' && Ch <= 'Z' ? Ch - 'A' + 'a' : Ch));
      if (Lower.rfind("connection:", 0) == 0 &&
          Lower.find("close") != std::string::npos)
        C.HttpClose = true;
      return;
    }
    handleHttp(C);
    return;
  }

  if (Line.empty())
    return;

  if (Line.rfind("GET ", 0) == 0) {
    // The connection becomes an HTTP/1.1 client from here on.
    C.Http = true;
    C.HttpReqLine = Line;
    return;
  }

  // Admission control before parsing: when the scheduler would shed,
  // answer from a cheap id scan without paying for a JSON parse.
  // Control verbs stay observable under overload, so anything carrying
  // a "cmd" key takes the full path.
  if (Line.find("\"cmd\"") == std::string::npos) {
    int64_t RetryAfterMs = 0;
    if (Svc.wouldShed(&RetryAfterMs)) {
      ServeResponse Resp;
      Resp.Ok = false;
      Resp.Id = quickId(Line);
      Resp.Error = Status::error(ErrorCode::Overloaded,
                                 "overloaded: request shed before parse");
      Resp.RetryAfterMs = RetryAfterMs;
      ++Counters.PreparseShed;
      netCounter("cfv_net_shed_preparse_total",
                 "Requests shed by admission control before JSON parsing")
          .inc();
      sendLine(C, Resp.toJson());
      return;
    }
  }

  const service::ClassifiedLine Cl = service::classifyLine(Line);
  switch (Cl.Kind) {
  case service::LineKind::Empty:
    return;
  case service::LineKind::HttpGet:
    C.Http = true;
    C.HttpReqLine = Line;
    return;
  case service::LineKind::Malformed:
  case service::LineKind::UnknownCmd:
  case service::LineKind::BadRequest:
    // A bad line is a request-level failure, not a server failure.
    sendLine(C, service::errorJson(Cl.Id, Cl.Error));
    return;
  case service::LineKind::Shutdown:
    sendLine(C, "{\"ok\":true,\"bye\":true}");
    ShutdownSeen = true;
    beginDrain();
    return;
  case service::LineKind::Stats:
    sendLine(C, service::statsJson(Svc));
    return;
  case service::LineKind::Metrics:
    sendLine(C, service::metricsJson());
    return;
  case service::LineKind::Backends:
    sendLine(C, service::backendsJson());
    return;
  case service::LineKind::Request: {
    const uint64_t ConnId = C.Id;
    ++C.InFlight;
    ++TotalInFlight;
    Service::Completion Done = [this, ConnId](ServeResponse Resp) {
      // Completions fire on scheduler workers (or inline on this
      // thread); both routes converge on the loop thread.
      Loop.post([this, ConnId, Resp = std::move(Resp)]() mutable {
        completeOn(ConnId, std::move(Resp));
      });
    };
    Batches.add(Cl.Request, std::move(Done), monotonicSeconds(),
                [this](std::vector<Service::BatchItem> Items) {
                  flushBatch(std::move(Items));
                });
    return;
  }
  }
}

void Server::handleHttp(Conn &C) {
  std::string ReqLine;
  ReqLine.swap(C.HttpReqLine);
  ++Counters.HttpRequests;
  netCounter("cfv_net_http_requests_total", "HTTP requests served").inc();

  // "GET <path> HTTP/1.x"; HTTP/1.0 defaults to close.
  std::string Path = "/";
  bool Http10 = false;
  {
    const std::size_t Sp1 = ReqLine.find(' ');
    if (Sp1 != std::string::npos) {
      const std::size_t Sp2 = ReqLine.find(' ', Sp1 + 1);
      Path = ReqLine.substr(Sp1 + 1, Sp2 == std::string::npos
                                         ? std::string::npos
                                         : Sp2 - Sp1 - 1);
      if (Sp2 != std::string::npos &&
          ReqLine.compare(Sp2 + 1, std::string::npos, "HTTP/1.0") == 0)
        Http10 = true;
    }
  }
  const std::size_t Query = Path.find('?');
  if (Query != std::string::npos)
    Path.resize(Query);

  std::string Body;
  std::string ContentType = "text/plain; charset=utf-8";
  const char *StatusLine = "200 OK";
  if (Path == "/metrics") {
    Body = obs::MetricsRegistry::instance().renderPrometheus();
    ContentType = "text/plain; version=0.0.4; charset=utf-8";
  } else if (Path == "/healthz") {
    json::ObjectWriter W;
    W.field("ok", true)
        .field("draining", Draining)
        .field("connections", static_cast<int64_t>(Conns.size()))
        .field("in_flight", static_cast<int64_t>(TotalInFlight));
    Body = W.str() + "\n";
    ContentType = "application/json";
  } else {
    StatusLine = "404 Not Found";
    Body = "not found\n";
  }

  const bool Close = C.HttpClose || Http10;
  C.HttpClose = false;
  char Header[256];
  std::snprintf(Header, sizeof(Header),
                "HTTP/1.1 %s\r\n"
                "Content-Type: %s\r\n"
                "Content-Length: %zu\r\n"
                "Connection: %s\r\n"
                "\r\n",
                StatusLine, ContentType.c_str(), Body.size(),
                Close ? "close" : "keep-alive");
  if (Close)
    C.CloseAfterFlush = true;
  sendBytes(C, std::string(Header) + Body);
}

void Server::sendLine(Conn &C, const std::string &Json) {
  sendBytes(C, Json + "\n");
}

void Server::sendBytes(Conn &C, const std::string &Bytes) {
  // The serve.conn_drop fault point simulates a client vanishing
  // mid-response; the server must shrug, not die (chaos tier).
  if (fault::fire(fault::Point::ServeConnDrop)) {
    closeConn(C.Id);
    return;
  }
  C.WrBuf.append(Bytes);
  flushWrites(C);
}

void Server::flushWrites(Conn &C) {
  const uint64_t Id = C.Id;
  while (C.WrOff < C.WrBuf.size()) {
    const service::netio::IoResult R = service::netio::writeSome(
        C.Fd, C.WrBuf.data() + C.WrOff, C.WrBuf.size() - C.WrOff);
    C.WrOff += R.Bytes;
    if (R.St == service::netio::IoStatus::Gone) {
      closeConn(Id);
      return;
    }
    if (R.St == service::netio::IoStatus::WouldBlock)
      break;
  }
  if (C.WrOff >= C.WrBuf.size()) {
    C.WrBuf.clear();
    C.WrOff = 0;
    if (C.CloseAfterFlush || (C.ReadClosed && C.InFlight == 0)) {
      closeConn(Id);
      return;
    }
  } else if (C.WrOff > (1u << 16) && C.WrOff * 2 >= C.WrBuf.size()) {
    // Compact once the flushed prefix dominates the buffer.
    C.WrBuf.erase(0, C.WrOff);
    C.WrOff = 0;
  }
  // Write backpressure: a client that won't read can't force unbounded
  // buffering -- shed its read interest until it drains what it owes.
  const std::size_t Owed = C.WrBuf.size() - C.WrOff;
  const bool ShouldShed = Owed > Cfg.MaxWriteBuffer;
  if (ShouldShed != C.ReadShed) {
    C.ReadShed = ShouldShed;
    if (ShouldShed)
      netCounter("cfv_net_backpressure_total",
                 "Connections whose read interest was shed by write "
                 "backpressure")
          .inc();
  }
  updateInterest(C);
}

void Server::onWritable(Conn &C) { flushWrites(C); }

void Server::closeConn(uint64_t Id) {
  auto It = Conns.find(Id);
  if (It == Conns.end())
    return;
  FdToConn.erase(It->second->Fd);
  Loop.deferClose(It->second->Fd);
  Conns.erase(It);
  ++Counters.Closed;
  netCounter("cfv_net_closed_total", "Connections closed").inc();
  gateAccept();
}

void Server::completeOn(uint64_t ConnId, ServeResponse Resp) {
  --TotalInFlight;
  auto It = Conns.find(ConnId);
  if (It == Conns.end()) {
    // The client disconnected while its request ran; the reply has no
    // recipient.  The request still completed exactly once.
    ++Counters.RepliesDropped;
    netCounter("cfv_net_replies_dropped_total",
               "Completions whose connection was gone")
        .inc();
    return;
  }
  Conn &C = *It->second;
  --C.InFlight;
  sendLine(C, Resp.toJson());
  // sendLine may already have closed the conn (write error / fault).
  auto It2 = Conns.find(ConnId);
  if (It2 == Conns.end())
    return;
  Conn &Cc = *It2->second;
  if ((Draining || Cc.ReadClosed) && Cc.InFlight == 0 &&
      Cc.WrOff >= Cc.WrBuf.size())
    closeConn(ConnId);
}

void Server::flushBatch(std::vector<Service::BatchItem> Items) {
  if (Items.empty())
    return;
  ++Counters.FlushedBatches;
  Counters.FlushedBatchRequests += static_cast<int64_t>(Items.size());
  obs::MetricsRegistry::instance()
      .histogram("cfv_net_batch_size", obs::log2Bounds(1.0, 8), "",
                 "Requests per flushed micro-batch group")
      .observe(static_cast<double>(Items.size()));
  Svc.submitBatch(std::move(Items));
}

void Server::beginDrain() {
  if (Draining)
    return;
  Draining = true;
  gateAccept();
  // Anything still held by the batcher runs now; anything unread in a
  // connection buffer is abandoned (the client was told "bye" or got
  // SIGTERM semantics -- replies for admitted work still deliver).
  Batches.flushAll([this](std::vector<Service::BatchItem> Items) {
    flushBatch(std::move(Items));
  });
  std::vector<uint64_t> Idle;
  for (auto &KV : Conns) {
    Conn &C = *KV.second;
    if (C.InFlight == 0 && C.WrOff >= C.WrBuf.size())
      Idle.push_back(KV.first);
    else
      updateInterest(C); // drop read interest; keep flushing
  }
  for (uint64_t Id : Idle)
    closeConn(Id);
}

void Server::tick() {
  const double Now = monotonicSeconds();
  if (!Draining && Cfg.ShouldDrain && Cfg.ShouldDrain())
    beginDrain();
  if (!Draining)
    Batches.flushReady(Now, [this](std::vector<Service::BatchItem> Items) {
      flushBatch(std::move(Items));
    });
  if (Cfg.IdleTimeoutMs > 0 && !Draining) {
    const double Limit = static_cast<double>(Cfg.IdleTimeoutMs) / 1000.0;
    std::vector<uint64_t> Stale;
    for (auto &KV : Conns) {
      Conn &C = *KV.second;
      if (C.InFlight == 0 && C.WrOff >= C.WrBuf.size() &&
          Now - C.LastActivity > Limit)
        Stale.push_back(KV.first);
    }
    for (uint64_t Id : Stale) {
      ++Counters.IdleClosed;
      netCounter("cfv_net_idle_closed_total",
                 "Connections closed by the idle timeout")
          .inc();
      closeConn(Id);
    }
  }
}

int Server::run() {
  Loop.add(Listener, EPOLLIN, [this](uint32_t) { acceptReady(); });
  obs::MetricsRegistry::instance().gauge(
      "cfv_net_conns_open",
      [this] { return static_cast<double>(Conns.size()); }, "",
      "Currently open client connections");

  // The tick doubles as the batch-window clock: with batches pending the
  // loop wakes every millisecond to flush expired windows; otherwise a
  // coarse tick only serves the drain flag and idle timeouts.
  const int TickMs = Cfg.BatchWindowUs > 0 ? 1 : 100;
  Loop.run(TickMs, [this] { tick(); },
           [this] {
             return Draining && TotalInFlight == 0 &&
                    Batches.pending() == 0 && Conns.empty();
           });

  obs::MetricsRegistry::instance().removeGauge("cfv_net_conns_open");
  return 0;
}

Server::Stats Server::stats() const {
  Stats S = Counters;
  S.FlushedBatches = Batches.flushedBatches();
  S.FlushedBatchRequests = Batches.flushedRequests();
  return S;
}

#endif // __linux__
