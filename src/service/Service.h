//===- service/Service.h - The serving layer front door ---------*- C++ -*-===//
//
// Part of the cfv project: reproduction of Jiang & Agrawal, CGO 2018.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Ties the serving layer together: a ServeRequest names a graph
/// application and a dataset; Service resolves the dataset through the
/// DatasetCache (shared PreparedGraph handles, so inspector schedules
/// are computed once per dataset and reused across requests), admits the
/// work through the RequestScheduler (bounded queue, per-app fairness,
/// cooperative deadlines), and executes it via the cfv::run facade.  The
/// response carries the result digest plus the telemetry the caller
/// needs to reason about latency: queue wait, dataset load time, cache
/// hit, kernel time, SIMD utilization.
///
/// Service speaks structs; tools/cfv_serve.cpp wraps it in the NDJSON
/// protocol (parseRequest / ServeResponse::toJson below define that
/// mapping, shared with the tests).
///
/// Scope: the serving layer covers the graph-consuming applications
/// (pagerank, pagerank64, sssp, sswp, wcc, bfs, rbk, spmv) -- the ones
/// with a cacheable dataset.  Moldyn/agg/mesh generate their inputs per
/// run and are rejected with InvalidArgument.
///
//===----------------------------------------------------------------------===//

#ifndef CFV_SERVICE_SERVICE_H
#define CFV_SERVICE_SERVICE_H

#include "core/Api.h"
#include "service/DatasetCache.h"
#include "service/Json.h"
#include "service/RequestScheduler.h"

#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <string>

namespace cfv {
namespace service {

/// One serving request: which app, on which dataset, under which limits.
struct ServeRequest {
  /// Echoed back verbatim so callers can match responses to requests.
  std::string Id;
  std::string App;               ///< "pagerank", "sssp", ...
  std::string Version;           ///< "" = app default
  std::string Dataset = "higgs-twitter-sim"; ///< synthetic dataset name
  std::string File;              ///< SNAP file path; overrides Dataset
  double Scale = 1.0;
  uint64_t Seed = 0xCF5EEDULL;   ///< weight-attachment seed for files
  int32_t Source = 0;            ///< frontier-app source vertex
  int Iters = 0;                 ///< 0 = app default
  int Threads = 0;               ///< 0 = CFV_THREADS default
  double TimeoutMs = 0.0;        ///< 0 = none; measured from admission
};

/// One serving response: outcome, digest, and latency telemetry.
struct ServeResponse {
  bool Ok = false;
  std::string Id;
  /// Filled when !Ok (structured error channel).
  Status Error;
  /// Backoff hint accompanying an overloaded rejection (0 = none).
  int64_t RetryAfterMs = 0;

  std::string App;
  std::string Version; ///< concrete version that ran
  std::string Backend;
  int Lanes = 16;      ///< 32-bit SIMD lanes of the backend that ran
  int Threads = 0;
  int Iterations = 0;
  bool TimedOut = false;

  /// Result digest (cfv::resultChecksum).
  double Checksum = 0.0;
  int64_t EdgesProcessed = 0;
  double SimdUtil = 1.0;
  double MeanD1 = 0.0;

  /// Pattern-classification telemetry (mirrors cfv_run --json):
  /// resolved mode name ("off" | "classify-only" | "on") and the static
  /// tile-class mix in pattern::TileClass order.  All-zero counts mean
  /// the app did not classify (mode off, or a non-tiled version ran).
  std::string PatternMode;
  int64_t PatternTiles[5] = {};

  /// Telemetry: seconds queued, loading the dataset (0 exactly on a
  /// cache hit), materializing shared schedules, and in the kernel.
  double QueueSeconds = 0.0;
  double LoadSeconds = 0.0;
  double PrepSeconds = 0.0;
  double KernelSeconds = 0.0;
  bool CacheHit = false;

  /// The NDJSON wire form ({"id":...,"ok":true,...} one line, no '\n').
  std::string toJson() const;
};

/// Parses the NDJSON request object ({"app":"pagerank","dataset":...}).
/// Unknown fields are ignored; a missing "app" is an error.  Shared by
/// cfv_serve and the tests so both speak the same dialect.
Expected<ServeRequest> parseRequest(const json::Value &V);

class Service {
public:
  struct Config {
    /// Cache byte budget; < 0 defers to CFV_CACHE_BYTES.
    int64_t CacheBytes = -1;
    int QueueDepth = 64;
    int Workers = 1;
    /// Overload-protection overrides; negative defers to the CFV_SHED_*
    /// / CFV_WATCHDOG_MS environment knobs (see RequestScheduler).
    int ShedQueuePct = -1;
    double ShedLatencyMs = -1.0;
    double WatchdogMs = -1.0;
    /// Loader override for tests (null = DatasetCache::defaultLoader).
    DatasetCache::Loader Loader;
  };

  explicit Service(Config C);

  /// Admits \p R; the future resolves when the request completes.  A
  /// full queue resolves the future immediately with a structured
  /// Unavailable response (never throws, never blocks).
  std::future<ServeResponse> submit(ServeRequest R);

  /// The callback form submit() wraps: \p Done is invoked exactly once
  /// -- with the result, a structured rejection (called inline before
  /// submitAsync returns), or the watchdog's abandonment -- on whichever
  /// thread produced the outcome.  The event-loop front-end uses this to
  /// post completions back to its loop instead of parking a future.
  using Completion = std::function<void(ServeResponse)>;
  void submitAsync(ServeRequest R, Completion Done);

  /// One member of a same-dataset micro-batch.
  struct BatchItem {
    ServeRequest Req;
    Completion Done;
  };

  /// Admits \p Items -- which MUST all resolve to one datasetKeyFor()
  /// identity -- as a single scheduler task: one admission decision, one
  /// cache lookup, then every item executes against the shared
  /// PreparedGraph and its completion fires individually.  A rejection
  /// (queue full / shed / draining) rejects the whole batch, each item
  /// receiving the structured error.  An empty vector is a no-op.
  void submitBatch(std::vector<BatchItem> Items);

  /// The cache identity \p R resolves to (weightedness folded in from
  /// the app), i.e. the micro-batching coalescing key.  Requests whose
  /// app fails to parse group by the raw fields; they never reach the
  /// cache anyway.
  static DatasetKey datasetKeyFor(const ServeRequest &R);

  /// True when admission control would refuse a request arriving now
  /// (overload watermarks or hard queue bound); \p RetryAfterMs (may be
  /// null) receives the backoff hint.  Lets the network front-end shed
  /// before parsing bytes.
  bool wouldShed(int64_t *RetryAfterMs) const {
    return Sched.wouldShed(RetryAfterMs);
  }

  /// Blocks until every admitted request has completed.
  void drain();

  CacheStats cacheStats() const { return Cache.stats(); }
  RequestScheduler::Stats schedulerStats() const { return Sched.stats(); }

  Service(const Service &) = delete;
  Service &operator=(const Service &) = delete;

private:
  /// Runs one admitted request and records its metrics/spans; the phase
  /// telemetry in the response and the emitted spans come from the same
  /// measurements, so the NDJSON schema and traces cannot drift.
  /// \p Cancel (may be null) is raised by the watchdog after it has
  /// already answered the caller; the run stops cooperatively.
  /// \p Shared (may be null) is a batch's pre-resolved cache lookup; the
  /// request then skips its own DatasetCache round trip.
  ServeResponse execute(const ServeRequest &R, const TaskInfo &Info,
                        const std::atomic<bool> *Cancel,
                        const CacheLookup *Shared = nullptr);
  ServeResponse executeInner(const ServeRequest &R, const TaskInfo &Info,
                             const std::atomic<bool> *Cancel,
                             const CacheLookup *Shared);

  DatasetCache Cache;
  RequestScheduler Sched;
};

} // namespace service
} // namespace cfv

#endif // CFV_SERVICE_SERVICE_H
