//===- inspector/Tiling.cpp - Cache tiling of irregular updates ----------===//
//
// Part of the cfv project: reproduction of Jiang & Agrawal, CGO 2018.
//
//===----------------------------------------------------------------------===//

#include "inspector/Tiling.h"

#include <cassert>

using namespace cfv;
using namespace cfv::inspector;

TilingResult inspector::tileByDestination(const int32_t *Dst,
                                          int64_t NumEdges, int32_t NumNodes,
                                          int BlockBits) {
  assert(NumEdges >= 0 && NumNodes > 0 && BlockBits >= 0);
  TilingResult R;
  R.BlockBits = BlockBits;

  const int64_t NumTiles =
      ((static_cast<int64_t>(NumNodes) - 1) >> BlockBits) + 1;

  // Counting sort by destination block: count, prefix-sum, place.
  std::vector<int64_t> Count(NumTiles + 1, 0);
  for (int64_t E = 0; E < NumEdges; ++E) {
    const int64_t Tile = static_cast<int64_t>(Dst[E]) >> BlockBits;
    assert(Tile >= 0 && Tile < NumTiles && "destination out of range");
    ++Count[Tile + 1];
  }
  for (int64_t T = 0; T < NumTiles; ++T)
    Count[T + 1] += Count[T];
  R.TileBegin.assign(Count.begin(), Count.end());

  R.Order.resize(NumEdges);
  for (int64_t E = 0; E < NumEdges; ++E) {
    const int64_t Tile = static_cast<int64_t>(Dst[E]) >> BlockBits;
    R.Order[Count[Tile]++] = static_cast<int32_t>(E);
  }
  return R;
}
