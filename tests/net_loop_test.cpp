//===-- tests/net_loop_test.cpp - EventLoop + Batcher unit tests ----------===//
//
// The two single-threaded building blocks of the network front-end:
// the epoll readiness loop (callback dispatch, cross-thread post,
// deferred close, tick/exit plumbing) and the same-dataset micro-batch
// accumulator (grouping, window expiry, MaxBatch force-flush, drain).
//
//===----------------------------------------------------------------------===//

#if defined(__linux__)

#include "net/Batcher.h"
#include "net/EventLoop.h"

#include <gtest/gtest.h>

#include <sys/epoll.h>
#include <thread>
#include <unistd.h>
#include <vector>

using namespace cfv;
using namespace cfv::net;

namespace {

struct Pipe {
  int Rd = -1, Wr = -1;
  Pipe() {
    int Fds[2];
    EXPECT_EQ(0, ::pipe(Fds));
    Rd = Fds[0];
    Wr = Fds[1];
  }
  ~Pipe() {
    if (Rd >= 0)
      ::close(Rd);
    if (Wr >= 0)
      ::close(Wr);
  }
  void poke() { EXPECT_EQ(1, ::write(Wr, "x", 1)); }
};

TEST(EventLoopTest, DispatchesReadableCallback) {
  EventLoop Loop;
  ASSERT_TRUE(Loop.valid());
  Pipe P;
  int Fired = 0;
  ASSERT_TRUE(Loop.add(P.Rd, EPOLLIN, [&](uint32_t Events) {
    EXPECT_TRUE(Events & EPOLLIN);
    char C;
    EXPECT_EQ(1, ::read(P.Rd, &C, 1));
    if (++Fired == 3)
      Loop.stop();
    else
      P.poke();
  }));
  EXPECT_EQ(1u, Loop.watched());
  P.poke();
  Loop.run(/*TickMs=*/1000, nullptr, nullptr);
  EXPECT_EQ(3, Fired);
}

TEST(EventLoopTest, PostFromAnotherThreadWakesLoop) {
  EventLoop Loop;
  ASSERT_TRUE(Loop.valid());
  bool Ran = false;
  // No TickMs and no watched fds: only the eventfd wakeup can deliver
  // the posted task, which is exactly what this verifies.
  std::thread T([&] {
    Loop.post([&] {
      Ran = true;
      Loop.stop();
    });
  });
  Loop.run(/*TickMs=*/0, nullptr, nullptr);
  T.join();
  EXPECT_TRUE(Ran);
}

TEST(EventLoopTest, DeferCloseIsSafeFromOwnCallback) {
  EventLoop Loop;
  ASSERT_TRUE(Loop.valid());
  Pipe A, B;
  int Closed = -1;
  // A's callback closes A's fd mid-dispatch; B keeps the loop honest
  // afterwards.  deferClose must tolerate the callback erasing its own
  // registration out from under the dispatcher.
  ASSERT_TRUE(Loop.add(A.Rd, EPOLLIN, [&](uint32_t) {
    Closed = A.Rd;
    Loop.deferClose(A.Rd);
    A.Rd = -1; // loop owns the close now
  }));
  ASSERT_TRUE(Loop.add(B.Rd, EPOLLIN, [&](uint32_t) {
    char C;
    EXPECT_EQ(1, ::read(B.Rd, &C, 1));
    Loop.stop();
  }));
  A.poke();
  B.poke();
  Loop.run(/*TickMs=*/1000, nullptr, nullptr);
  EXPECT_GE(Closed, 0);
  EXPECT_EQ(1u, Loop.watched());
  // The closed fd really is closed: writing to its old pipe would be
  // visible as watched() shrinking, checked above.
}

TEST(EventLoopTest, TickAndShouldExit) {
  EventLoop Loop;
  ASSERT_TRUE(Loop.valid());
  int Ticks = 0;
  Loop.run(
      /*TickMs=*/1, [&] { ++Ticks; }, [&] { return Ticks >= 3; });
  EXPECT_GE(Ticks, 3);
}

TEST(EventLoopTest, ModChangesInterest) {
  EventLoop Loop;
  ASSERT_TRUE(Loop.valid());
  Pipe P;
  int Fired = 0;
  ASSERT_TRUE(Loop.add(P.Rd, EPOLLIN, [&](uint32_t) {
    char C;
    EXPECT_EQ(1, ::read(P.Rd, &C, 1));
    ++Fired;
  }));
  // Drop interest entirely (the server's accept-gating trick): data
  // arrives but the callback must not fire.
  ASSERT_TRUE(Loop.mod(P.Rd, 0));
  P.poke();
  int Ticks = 0;
  Loop.run(
      /*TickMs=*/1, [&] { ++Ticks; }, [&] { return Ticks >= 5; });
  EXPECT_EQ(0, Fired);
  // Restore interest: the still-pending byte fires immediately.
  ASSERT_TRUE(Loop.mod(P.Rd, EPOLLIN));
  Loop.run(
      /*TickMs=*/1000, nullptr, [&] { return Fired >= 1; });
  EXPECT_EQ(1, Fired);
}

// -- Batcher ----------------------------------------------------------------

service::ServeRequest makeReq(const std::string &Dataset,
                              const std::string &Id) {
  service::ServeRequest R;
  R.App = "pagerank";
  R.Dataset = Dataset;
  R.Id = Id;
  return R;
}

TEST(BatcherTest, GroupsByDatasetAndFlushesOnWindow) {
  Batcher::Config C;
  C.WindowSeconds = 10.0; // never expires inside this test
  Batcher B(C);
  std::vector<std::vector<service::Service::BatchItem>> Flushed;
  const Batcher::Sink Sink =
      [&](std::vector<service::Service::BatchItem> Items) {
        Flushed.push_back(std::move(Items));
      };

  B.add(makeReq("graph-a", "1"), nullptr, /*Now=*/0.0, Sink);
  B.add(makeReq("graph-b", "2"), nullptr, /*Now=*/0.1, Sink);
  B.add(makeReq("graph-a", "3"), nullptr, /*Now=*/0.2, Sink);
  EXPECT_EQ(3u, B.pending());
  EXPECT_TRUE(Flushed.empty());
  EXPECT_DOUBLE_EQ(10.0, B.nextDeadline()); // earliest group's deadline

  // Not expired yet.
  B.flushReady(/*Now=*/5.0, Sink);
  EXPECT_TRUE(Flushed.empty());

  // graph-a's window (opened at 0.0) expires first; graph-b (0.1+10)
  // follows at 10.1.
  B.flushReady(/*Now=*/10.05, Sink);
  ASSERT_EQ(1u, Flushed.size());
  EXPECT_EQ(2u, Flushed[0].size());
  EXPECT_EQ("1", Flushed[0][0].Req.Id);
  EXPECT_EQ("3", Flushed[0][1].Req.Id);
  EXPECT_EQ(1u, B.pending());

  B.flushReady(/*Now=*/10.2, Sink);
  ASSERT_EQ(2u, Flushed.size());
  EXPECT_EQ("2", Flushed[1][0].Req.Id);
  EXPECT_EQ(0u, B.pending());
  EXPECT_DOUBLE_EQ(0.0, B.nextDeadline());
  EXPECT_EQ(2, B.flushedBatches());
  EXPECT_EQ(3, B.flushedRequests());
}

TEST(BatcherTest, MaxBatchForcesImmediateFlush) {
  Batcher::Config C;
  C.WindowSeconds = 100.0;
  C.MaxBatch = 4;
  Batcher B(C);
  int Batches = 0;
  std::size_t LastSize = 0;
  const Batcher::Sink Sink =
      [&](std::vector<service::Service::BatchItem> Items) {
        ++Batches;
        LastSize = Items.size();
      };
  for (int I = 0; I < 4; ++I)
    B.add(makeReq("graph-a", std::to_string(I)), nullptr, 0.0, Sink);
  EXPECT_EQ(1, Batches);
  EXPECT_EQ(4u, LastSize);
  EXPECT_EQ(0u, B.pending());
}

TEST(BatcherTest, FlushAllDrainsEverything) {
  Batcher::Config C;
  C.WindowSeconds = 100.0;
  Batcher B(C);
  int Requests = 0;
  const Batcher::Sink Sink =
      [&](std::vector<service::Service::BatchItem> Items) {
        Requests += static_cast<int>(Items.size());
      };
  B.add(makeReq("graph-a", "1"), nullptr, 0.0, Sink);
  B.add(makeReq("graph-b", "2"), nullptr, 0.0, Sink);
  B.add(makeReq("graph-a", "3"), nullptr, 0.0, Sink);
  B.flushAll(Sink);
  EXPECT_EQ(3, Requests);
  EXPECT_EQ(0u, B.pending());
}

TEST(BatcherTest, DistinctScaleOrSeedDoesNotCoalesce) {
  // Same dataset name but different scale resolves to a different
  // DatasetKey -- batching must respect the full cache identity, or a
  // batch would run against the wrong PreparedGraph.
  Batcher::Config C;
  C.WindowSeconds = 100.0;
  Batcher B(C);
  int Batches = 0;
  const Batcher::Sink Sink =
      [&](std::vector<service::Service::BatchItem> Items) {
        ++Batches;
        EXPECT_EQ(1u, Items.size());
      };
  service::ServeRequest R1 = makeReq("graph-a", "1");
  service::ServeRequest R2 = makeReq("graph-a", "2");
  R2.Scale = 2.0;
  B.add(std::move(R1), nullptr, 0.0, Sink);
  B.add(std::move(R2), nullptr, 0.0, Sink);
  B.flushAll(Sink);
  EXPECT_EQ(2, Batches);
}

} // namespace

#endif // __linux__
