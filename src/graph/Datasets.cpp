//===- graph/Datasets.cpp - Named synthetic dataset registry -------------===//
//
// Part of the cfv project: reproduction of Jiang & Agrawal, CGO 2018.
//
//===----------------------------------------------------------------------===//

#include "graph/Datasets.h"

#include "graph/Generators.h"
#include "util/Env.h"

#include <cstdlib>

using namespace cfv;
using namespace cfv::graph;

std::vector<std::string> graph::graphDatasetNames() {
  return {"higgs-twitter-sim", "soc-pokec-sim", "amazon0312-sim"};
}

double graph::envScale() {
  return env::floatVar("CFV_SCALE", 1.0, 0.01, 1000.0);
}

namespace {

/// Extra vertex-scale bits so that growing CFV_SCALE grows the working
/// set (and with it the cache effects tiling targets), not just the edge
/// count.
int extraBits(double Scale) {
  int Bits = 0;
  while (Scale >= 2.0 && Bits < 6) {
    Scale /= 2.0;
    ++Bits;
  }
  return Bits;
}

} // namespace

Expected<Dataset> graph::makeGraphDataset(const std::string &Name,
                                          double Scale, bool Weighted) {
  if (!(Scale >= 0.01 && Scale <= 1000.0))
    return Status::error(ErrorCode::InvalidArgument,
                         "dataset scale " + std::to_string(Scale) +
                             " outside [0.01, 1000]");
  // Generator parameters are calibrated so the conflict density the
  // paper's phenomena hinge on -- reported as the mask version's SIMD
  // utilization -- lands near the paper's annotations and preserves the
  // higgs > pokec > amazon ordering (see EXPERIMENTS.md).
  const float MaxW = Weighted ? 64.0f : 0.0f;
  const int Extra = extraBits(Scale);
  Dataset D;
  D.Name = Name;
  if (Name == "higgs-twitter-sim") {
    // higgs-twitter: 457K vertices, 15M edges, strongly skewed retweet
    // cascade.  Stand-in: dense skewed R-MAT (paper simd_util ~98% for
    // tiled PageRank).
    D.PaperName = "higgs-twitter";
    D.PaperDims = "457K*457K";
    D.PaperNnz = "15M";
    D.Edges = genRmat(16 + Extra, int64_t(2.0e6 * Scale),
                      /*Seed=*/0x4516u, MaxW, 0.62, 0.17, 0.17);
    return D;
  }
  if (Name == "soc-pokec-sim") {
    // soc-Pokec: 1.6M vertices, 31M edges, social network with moderate
    // hub structure.  Stand-in: denser, more skewed R-MAT (paper
    // simd_util ~92% for tiled PageRank).
    D.PaperName = "soc-Pokec";
    D.PaperDims = "1.6M*1.6M";
    D.PaperNnz = "31M";
    D.Edges = genRmat(15 + Extra, int64_t(3.0e6 * Scale),
                      /*Seed=*/0x9a0cu, MaxW, 0.68, 0.14, 0.14);
    return D;
  }
  if (Name == "amazon0312-sim") {
    // amazon0312: 401K vertices, 3.2M edges of co-purchase links whose
    // tight community locality (not degree skew) packs duplicate
    // destinations into SIMD vectors (paper simd_util ~78% for tiled
    // PageRank, the lowest of the three).
    D.PaperName = "amazon0312";
    D.PaperDims = "401K*401K";
    D.PaperNnz = "3.2M";
    D.Edges = genClustered(17 + Extra, int64_t(1.6e6 * Scale),
                           /*Seed=*/0x0312u, /*Window=*/8,
                           /*LongLinkFraction=*/0.05, MaxW);
    return D;
  }
  std::string Known;
  for (const std::string &N : graphDatasetNames())
    Known += (Known.empty() ? "" : "|") + N;
  return Status::error(ErrorCode::NotFound, "unknown graph dataset '" +
                                                Name + "' (expected " +
                                                Known + ")");
}
