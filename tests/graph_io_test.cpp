//===- tests/graph_io_test.cpp - SNAP edge-list I/O ------------------------===//
//
// Part of the cfv project: reproduction of Jiang & Agrawal, CGO 2018.
//
//===----------------------------------------------------------------------===//

#include "graph/Generators.h"
#include "graph/Io.h"
#include "util/Status.h"

#include "gtest/gtest.h"

#include <cstdio>
#include <fstream>

using namespace cfv;
using namespace cfv::graph;

namespace {

/// RAII temp file path.
class TempFile {
public:
  TempFile() {
    char Buf[] = "/tmp/cfv_io_test_XXXXXX";
    const int Fd = mkstemp(Buf);
    EXPECT_GE(Fd, 0);
    if (Fd >= 0)
      close(Fd);
    PathStr = Buf;
  }
  ~TempFile() { std::remove(PathStr.c_str()); }
  const std::string &path() const { return PathStr; }

private:
  std::string PathStr;
};

void writeText(const std::string &Path, const std::string &Text) {
  std::ofstream Out(Path);
  Out << Text;
}

} // namespace

TEST(SnapIo, ReadsCommentsAndEdges) {
  TempFile F;
  writeText(F.path(), "# Directed graph\n"
                      "# FromNodeId\tToNodeId\n"
                      "0\t1\n"
                      "1\t2\n"
                      "0\t2\n");
  const auto G = readSnapEdgeList(F.path());
  ASSERT_TRUE(G.ok());
  EXPECT_EQ(G->NumNodes, 3);
  EXPECT_EQ(G->numEdges(), 3);
  EXPECT_FALSE(G->isWeighted());
  EXPECT_EQ(G->Src[2], 0);
  EXPECT_EQ(G->Dst[2], 2);
}

TEST(SnapIo, CompactsSparseIds) {
  TempFile F;
  // SNAP files often skip ids; they must be densified.
  writeText(F.path(), "1000000 5\n5 777\n");
  const auto G = readSnapEdgeList(F.path());
  ASSERT_TRUE(G.ok());
  EXPECT_EQ(G->NumNodes, 3);
  for (int64_t E = 0; E < G->numEdges(); ++E) {
    EXPECT_LT(G->Src[E], 3);
    EXPECT_LT(G->Dst[E], 3);
  }
  // Same raw id maps to the same compact id.
  EXPECT_EQ(G->Dst[0], G->Src[1]);
}

TEST(SnapIo, ReadsWeights) {
  TempFile F;
  writeText(F.path(), "0 1 2.5\n1 0 0.25\n");
  const auto G = readSnapEdgeList(F.path());
  ASSERT_TRUE(G.ok());
  ASSERT_TRUE(G->isWeighted());
  EXPECT_FLOAT_EQ(G->Weight[0], 2.5f);
  EXPECT_FLOAT_EQ(G->Weight[1], 0.25f);
}

TEST(SnapIo, RejectsMissingFile) {
  const auto G = readSnapEdgeList("/nonexistent/cfv.txt");
  ASSERT_FALSE(G.ok());
  EXPECT_EQ(G.status().code(), ErrorCode::IoError);
  EXPECT_NE(G.status().message().find("cannot open"), std::string::npos);
}

TEST(SnapIo, RejectsMalformedLine) {
  TempFile F;
  writeText(F.path(), "0 1\nbogus line\n");
  const auto G = readSnapEdgeList(F.path());
  ASSERT_FALSE(G.ok());
  EXPECT_EQ(G.status().code(), ErrorCode::ParseError);
  EXPECT_NE(G.status().message().find(":2"), std::string::npos)
      << "line number reported: " << G.status().message();
}

TEST(SnapIo, RejectsInconsistentColumns) {
  TempFile F;
  writeText(F.path(), "0 1 2.0\n1 2\n");
  const auto G = readSnapEdgeList(F.path());
  ASSERT_FALSE(G.ok());
  EXPECT_EQ(G.status().code(), ErrorCode::ParseError);
  // Both the offending line and the line that fixed the format.
  EXPECT_NE(G.status().message().find(":2"), std::string::npos);
  EXPECT_NE(G.status().message().find("line 1"), std::string::npos);
}

TEST(SnapIo, RejectsWeightedRowInUnweightedList) {
  TempFile F;
  writeText(F.path(), "0 1\n1 2 3.5\n");
  const auto G = readSnapEdgeList(F.path());
  ASSERT_FALSE(G.ok());
  EXPECT_EQ(G.status().code(), ErrorCode::ParseError);
  EXPECT_NE(G.status().message().find(":2"), std::string::npos);
}

TEST(SnapIo, RejectsEmptyFile) {
  TempFile F;
  writeText(F.path(), "# only comments\n");
  const auto G = readSnapEdgeList(F.path());
  ASSERT_FALSE(G.ok());
  EXPECT_NE(G.status().message().find("no edges"), std::string::npos);
}

TEST(SnapIo, RejectsNegativeIds) {
  TempFile F;
  writeText(F.path(), "0 -3\n");
  const auto G = readSnapEdgeList(F.path());
  ASSERT_FALSE(G.ok());
  EXPECT_EQ(G.status().code(), ErrorCode::ParseError);
  EXPECT_NE(G.status().message().find("negative"), std::string::npos);
  EXPECT_NE(G.status().message().find(":1"), std::string::npos);
}

TEST(SnapIo, RejectsIdsBeyond64Bits) {
  TempFile F;
  writeText(F.path(), "99999999999999999999999999 1\n");
  const auto G = readSnapEdgeList(F.path());
  ASSERT_FALSE(G.ok());
  EXPECT_EQ(G.status().code(), ErrorCode::OutOfRange);
}

TEST(SnapIo, RejectsTrailingJunk) {
  TempFile F;
  writeText(F.path(), "0 1 2.5 surprise\n");
  const auto G = readSnapEdgeList(F.path());
  ASSERT_FALSE(G.ok());
  EXPECT_EQ(G.status().code(), ErrorCode::ParseError);
  EXPECT_NE(G.status().message().find("trailing"), std::string::npos);
}

TEST(SnapIo, RejectsOverlongLine) {
  TempFile F;
  writeText(F.path(), "0 1" + std::string(600, ' ') + "\n");
  const auto G = readSnapEdgeList(F.path());
  ASSERT_FALSE(G.ok());
  EXPECT_EQ(G.status().code(), ErrorCode::ParseError);
  EXPECT_NE(G.status().message().find("line longer"), std::string::npos);
}

TEST(SnapIo, AcceptsCrLfLineEndings) {
  TempFile F;
  writeText(F.path(), "# header\r\n0 1\r\n1 2\r\n");
  const auto G = readSnapEdgeList(F.path());
  ASSERT_TRUE(G.ok()) << G.status().toString();
  EXPECT_EQ(G->numEdges(), 2);
}

TEST(SnapIo, RoundTripsUnweighted) {
  const EdgeList G = genUniform(8, 500, 99);
  TempFile F;
  ASSERT_TRUE(writeSnapEdgeList(F.path(), G).ok());
  const auto Back = readSnapEdgeList(F.path());
  ASSERT_TRUE(Back.ok());
  ASSERT_EQ(Back->numEdges(), G.numEdges());
  // Our writer emits compact ids, so the reader preserves them as long as
  // first occurrence order is id order... verify edge-by-edge against a
  // remap of the original.
  for (int64_t E = 0; E < G.numEdges(); ++E) {
    EXPECT_EQ(Back->Src[E] == Back->Dst[E], G.Src[E] == G.Dst[E]);
  }
  EXPECT_FALSE(Back->isWeighted());
}

TEST(SnapIo, RoundTripsWeightsExactly) {
  const EdgeList G = genRmat(7, 300, 12, 16.0f);
  TempFile F;
  ASSERT_TRUE(writeSnapEdgeList(F.path(), G).ok());
  const auto Back = readSnapEdgeList(F.path());
  ASSERT_TRUE(Back.ok());
  ASSERT_TRUE(Back->isWeighted());
  ASSERT_EQ(Back->numEdges(), G.numEdges());
  for (int64_t E = 0; E < G.numEdges(); ++E)
    ASSERT_NEAR(Back->Weight[E], G.Weight[E], 1e-4f * G.Weight[E]);
}
