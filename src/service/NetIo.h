//===- service/NetIo.h - Robust POSIX socket I/O helpers --------*- C++ -*-===//
//
// Part of the cfv project: reproduction of Jiang & Agrawal, CGO 2018.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The serving front-end's socket I/O discipline.  A TCP client can
/// vanish at any byte: write(2) may be interrupted (EINTR), may accept
/// only part of the buffer (partial write), and -- once the peer has
/// closed -- raises SIGPIPE, which kills the process by default.  These
/// helpers make that survivable: ignoreSigpipe() turns the signal into
/// an EPIPE errno, and writeAll() loops over EINTR and partial writes
/// until the buffer is out or the peer is definitively gone, so the
/// caller sees one boolean: delivered, or client_gone.
///
/// The event-loop server (src/net/) runs every connection non-blocking,
/// where a full socket buffer is not an error but a scheduling signal:
/// writeSome()/readSome() distinguish WouldBlock (re-arm the fd and come
/// back on EPOLLOUT/EPOLLIN) from Gone (close the connection), and
/// report partial progress so write backpressure continues exactly where
/// it stopped.
///
/// Header-only and POSIX-only; the non-POSIX serve path stays on stdio.
///
//===----------------------------------------------------------------------===//

#ifndef CFV_SERVICE_NET_IO_H
#define CFV_SERVICE_NET_IO_H

#if defined(__unix__) || defined(__APPLE__)

#include <cerrno>
#include <csignal>
#include <cstddef>
#include <fcntl.h>
#include <unistd.h>

namespace cfv {
namespace service {
namespace netio {

/// Turns SIGPIPE into an EPIPE errno from write(2).  Idempotent; call
/// once before serving sockets.
inline void ignoreSigpipe() { ::signal(SIGPIPE, SIG_IGN); }

/// Writes all \p Len bytes of \p Data to \p Fd, retrying interrupted
/// calls and continuing partial writes.  Returns false when the peer is
/// gone or the fd is otherwise unwritable (EPIPE, ECONNRESET, EBADF,
/// ...); the stream should be treated as closed.  Blocking fds only --
/// on a non-blocking fd use writeSome(), which understands EAGAIN.
inline bool writeAll(int Fd, const char *Data, std::size_t Len) {
  while (Len > 0) {
    const ssize_t N = ::write(Fd, Data, Len);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    Data += N;
    Len -= static_cast<std::size_t>(N);
  }
  return true;
}

/// Outcome of one non-blocking I/O attempt.
enum class IoStatus {
  Done,       ///< every requested byte moved
  WouldBlock, ///< kernel buffer full/empty; re-arm and retry on readiness
  Gone        ///< peer closed or fd unusable; treat the stream as dead
};

/// How far a writeSome()/readSome() call got: the terminal status plus
/// the bytes actually moved before it stopped (partial progress under
/// WouldBlock is normal and must be consumed by the caller's cursor).
struct IoResult {
  IoStatus St = IoStatus::Done;
  std::size_t Bytes = 0;
};

/// Writes as much of \p Data as the socket accepts without blocking:
/// loops over EINTR and partial writes, stops at EAGAIN/EWOULDBLOCK
/// with the byte count delivered so far.  Gone on EPIPE/ECONNRESET/...
inline IoResult writeSome(int Fd, const char *Data, std::size_t Len) {
  IoResult R;
  while (R.Bytes < Len) {
    const ssize_t N = ::write(Fd, Data + R.Bytes, Len - R.Bytes);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        R.St = IoStatus::WouldBlock;
        return R;
      }
      R.St = IoStatus::Gone;
      return R;
    }
    R.Bytes += static_cast<std::size_t>(N);
  }
  R.St = IoStatus::Done;
  return R;
}

/// Reads up to \p Cap bytes without blocking: loops over EINTR, stops at
/// EAGAIN with whatever arrived.  Gone covers both a clean EOF (read
/// returned 0) and hard errors -- either way the stream is over.  Done
/// with Bytes == Cap means the buffer filled; there may be more to read.
inline IoResult readSome(int Fd, char *Buf, std::size_t Cap) {
  IoResult R;
  while (R.Bytes < Cap) {
    const ssize_t N = ::read(Fd, Buf + R.Bytes, Cap - R.Bytes);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        R.St = IoStatus::WouldBlock;
        return R;
      }
      R.St = IoStatus::Gone;
      return R;
    }
    if (N == 0) { // EOF: Gone only if nothing useful arrived this call
      R.St = R.Bytes > 0 ? IoStatus::Done : IoStatus::Gone;
      return R;
    }
    R.Bytes += static_cast<std::size_t>(N);
  }
  R.St = IoStatus::Done;
  return R;
}

/// Sets O_NONBLOCK on \p Fd.  Returns false on fcntl failure.
inline bool setNonBlocking(int Fd) {
  const int Flags = ::fcntl(Fd, F_GETFL, 0);
  return Flags >= 0 && ::fcntl(Fd, F_SETFL, Flags | O_NONBLOCK) == 0;
}

} // namespace netio
} // namespace service
} // namespace cfv

#endif // POSIX

#endif // CFV_SERVICE_NET_IO_H
