//===- tests/numa_topology_test.cpp - Topology probe and shard plans ------===//
//
// Part of the cfv project: reproduction of Jiang & Agrawal, CGO 2018.
//
//===----------------------------------------------------------------------===//
//
// The numa layer in isolation: CFV_NUMA_TOPOLOGY spec parsing, the test
// seam, mode resolution with ScopedMode overrides, shard-plan shapes
// under Auto and Interleave, and the two-level tile chunking contract
// (monotone bounds, snapped to tile starts, full coverage).
//
//===----------------------------------------------------------------------===//

#include "numa/Topology.h"

#include "gtest/gtest.h"

#include <algorithm>
#include <cstdlib>
#include <vector>

using namespace cfv;
using namespace cfv::numa;

namespace {

/// Restores the probed topology when a test injects a synthetic one.
struct TopologyGuard {
  explicit TopologyGuard(const Topology &T) { setTopologyForTest(&T); }
  ~TopologyGuard() { setTopologyForTest(nullptr); }
};

Topology makeNodes(std::vector<std::vector<int>> NodeCpus) {
  Topology T;
  T.NodeCpus = std::move(NodeCpus);
  return T;
}

} // namespace

//===----------------------------------------------------------------------===//
// parseTopologySpec
//===----------------------------------------------------------------------===//

TEST(NumaTopology, ParsesMultiNodeSpec) {
  const Expected<Topology> T = parseTopologySpec("0-3;4-7");
  ASSERT_TRUE(T.ok()) << T.status().toString();
  ASSERT_EQ(T->nodes(), 2);
  EXPECT_EQ(T->NodeCpus[0], (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(T->NodeCpus[1], (std::vector<int>{4, 5, 6, 7}));
  EXPECT_EQ(T->totalCpus(), 8);
}

TEST(NumaTopology, ParsesRangesAndSingles) {
  const Expected<Topology> T = parseTopologySpec("0-1,8;2;3-3,9-10");
  ASSERT_TRUE(T.ok()) << T.status().toString();
  ASSERT_EQ(T->nodes(), 3);
  EXPECT_EQ(T->NodeCpus[0], (std::vector<int>{0, 1, 8}));
  EXPECT_EQ(T->NodeCpus[1], (std::vector<int>{2}));
  EXPECT_EQ(T->NodeCpus[2], (std::vector<int>{3, 9, 10}));
}

TEST(NumaTopology, RejectsMalformedSpecs) {
  EXPECT_FALSE(parseTopologySpec("").ok());
  EXPECT_FALSE(parseTopologySpec(";").ok());
  EXPECT_FALSE(parseTopologySpec(";0-3").ok()); // empty node
  // A trailing ';' is tolerated (no empty final token), like sysfs's
  // trailing newline.
  EXPECT_TRUE(parseTopologySpec("0-3;").ok());
  EXPECT_FALSE(parseTopologySpec("banana").ok());
  EXPECT_FALSE(parseTopologySpec("3-1").ok());    // inverted range
  EXPECT_FALSE(parseTopologySpec("-2").ok());     // negative cpu
  EXPECT_FALSE(parseTopologySpec("0-3x").ok());   // trailing junk
  EXPECT_FALSE(parseTopologySpec("0,,1").ok());   // empty element
  EXPECT_FALSE(parseTopologySpec("0-99999").ok()); // insane width
}

//===----------------------------------------------------------------------===//
// currentTopology and the test seam
//===----------------------------------------------------------------------===//

TEST(NumaTopology, CurrentTopologyAlwaysReportsANode) {
  const Topology T = currentTopology();
  ASSERT_GE(T.nodes(), 1);
  EXPECT_GE(T.totalCpus(), 1);
}

TEST(NumaTopology, TestOverrideWinsAndRestores) {
  const Topology Synthetic = makeNodes({{0, 1}, {2, 3}, {4, 5}});
  {
    TopologyGuard G(Synthetic);
    const Topology T = currentTopology();
    ASSERT_EQ(T.nodes(), 3);
    EXPECT_EQ(T.NodeCpus[2], (std::vector<int>{4, 5}));
  }
  // Back to the probed (or env) topology: at least one node, and not
  // necessarily the synthetic shape.
  EXPECT_GE(currentTopology().nodes(), 1);
}

TEST(NumaTopology, EnvSpecFeedsCurrentTopology) {
  setenv("CFV_NUMA_TOPOLOGY", "0-1;2-3", 1);
  const Topology T = currentTopology();
  unsetenv("CFV_NUMA_TOPOLOGY");
  ASSERT_EQ(T.nodes(), 2);
  EXPECT_EQ(T.NodeCpus[1], (std::vector<int>{2, 3}));
  // The test seam outranks the environment.
  const Topology Synthetic = makeNodes({{7}});
  TopologyGuard G(Synthetic);
  setenv("CFV_NUMA_TOPOLOGY", "0-3;4-7", 1);
  EXPECT_EQ(currentTopology().nodes(), 1);
  unsetenv("CFV_NUMA_TOPOLOGY");
}

//===----------------------------------------------------------------------===//
// Mode resolution
//===----------------------------------------------------------------------===//

TEST(NumaMode, NamesRoundTrip) {
  EXPECT_STREQ(modeName(Mode::Off), "off");
  EXPECT_STREQ(modeName(Mode::Auto), "auto");
  EXPECT_STREQ(modeName(Mode::Interleave), "interleave");
}

TEST(NumaMode, ScopedOverrideWinsAndNests) {
  {
    ScopedMode Off(Mode::Off);
    EXPECT_EQ(resolveMode(), Mode::Off);
    {
      ScopedMode Inter(Mode::Interleave);
      EXPECT_EQ(resolveMode(), Mode::Interleave);
    }
    EXPECT_EQ(resolveMode(), Mode::Off); // inner override popped
  }
  // No live override: CFV_NUMA (unset in the test env) means Auto.
  if (!std::getenv("CFV_NUMA"))
    EXPECT_EQ(resolveMode(), Mode::Auto);
}

TEST(NumaMode, DefaultConstructedScopeIsNoOp) {
  ScopedMode Outer(Mode::Interleave);
  {
    ScopedMode Noop;
    EXPECT_EQ(resolveMode(), Mode::Interleave);
  }
  EXPECT_EQ(resolveMode(), Mode::Interleave);
}

//===----------------------------------------------------------------------===//
// planShards
//===----------------------------------------------------------------------===//

TEST(NumaPlan, InactiveWhenOffSerialOrSingleNode) {
  const Topology Two = makeNodes({{0, 1}, {2, 3}});
  EXPECT_FALSE(planShards(4, Two, Mode::Off).active());
  EXPECT_FALSE(planShards(1, Two, Mode::Auto).active());
  EXPECT_FALSE(planShards(4, makeNodes({{0, 1, 2, 3}}), Mode::Auto).active());
  // Inactive plans still account every worker on node 0.
  const ShardPlan P = planShards(3, Two, Mode::Off);
  EXPECT_EQ(P.Nodes, 1);
  ASSERT_EQ(P.WorkersOfNode.size(), 1u);
  EXPECT_EQ(P.WorkersOfNode[0], (std::vector<int>{0, 1, 2}));
}

TEST(NumaPlan, AutoGroupsConsecutiveWorkersPerNode) {
  const Topology Two = makeNodes({{0, 1}, {2, 3}});
  const ShardPlan P = planShards(4, Two, Mode::Auto);
  ASSERT_TRUE(P.active());
  EXPECT_EQ(P.Nodes, 2);
  EXPECT_EQ(P.NodeOfWorker, (std::vector<int>{0, 0, 1, 1}));
  EXPECT_EQ(P.WorkersOfNode[0], (std::vector<int>{0, 1}));
  EXPECT_EQ(P.WorkersOfNode[1], (std::vector<int>{2, 3}));
  // Worker 0 is the caller and is never pinned; the rest draw CPUs from
  // their own node.
  EXPECT_EQ(P.CpuOfWorker[0], -1);
  EXPECT_EQ(P.CpuOfWorker[1], 1);
  EXPECT_EQ(P.CpuOfWorker[2], 2);
  EXPECT_EQ(P.CpuOfWorker[3], 3);
}

TEST(NumaPlan, InterleaveRoundRobinsWorkers) {
  const Topology Two = makeNodes({{0, 1}, {2, 3}});
  const ShardPlan P = planShards(4, Two, Mode::Interleave);
  ASSERT_TRUE(P.active());
  EXPECT_EQ(P.NodeOfWorker, (std::vector<int>{0, 1, 0, 1}));
  EXPECT_EQ(P.WorkersOfNode[0], (std::vector<int>{0, 2}));
  EXPECT_EQ(P.WorkersOfNode[1], (std::vector<int>{1, 3}));
}

TEST(NumaPlan, NeverPlansMoreNodesThanWorkers) {
  const Topology Four = makeNodes({{0}, {1}, {2}, {3}});
  const ShardPlan P = planShards(2, Four, Mode::Auto);
  EXPECT_EQ(P.Nodes, 2);
  const ShardPlan Q = planShards(6, Four, Mode::Auto);
  EXPECT_EQ(Q.Nodes, 4);
  // Every worker lands on exactly one node's list.
  int Listed = 0;
  for (const auto &Ws : Q.WorkersOfNode)
    Listed += static_cast<int>(Ws.size());
  EXPECT_EQ(Listed, 6);
}

//===----------------------------------------------------------------------===//
// currentPlan
//===----------------------------------------------------------------------===//

TEST(NumaPlan, CurrentPlanNullOnFlatPaths) {
  const Topology Two = makeNodes({{0, 1}, {2, 3}});
  TopologyGuard G(Two);
  {
    ScopedMode M(Mode::Off);
    EXPECT_EQ(currentPlan(4), nullptr);
  }
  {
    ScopedMode M(Mode::Auto);
    EXPECT_EQ(currentPlan(1), nullptr); // serial
    const std::shared_ptr<const ShardPlan> P = currentPlan(4);
    ASSERT_NE(P, nullptr);
    EXPECT_TRUE(P->active());
    EXPECT_EQ(P->Nodes, 2);
  }
}

//===----------------------------------------------------------------------===//
// shardedBoundsFromTiles
//===----------------------------------------------------------------------===//

namespace {

/// Checks the chunking contract shared with core::chunkBoundsFromTiles:
/// Threads + 1 monotone bounds, first 0, last N, every interior bound on
/// a tile start.
void expectValidBounds(const std::vector<int64_t> &Bounds,
                       const std::vector<int64_t> &TileBegin, int Threads) {
  ASSERT_EQ(Bounds.size(), static_cast<size_t>(Threads) + 1);
  EXPECT_EQ(Bounds.front(), 0);
  EXPECT_EQ(Bounds.back(), TileBegin.back());
  for (size_t I = 1; I < Bounds.size(); ++I)
    EXPECT_LE(Bounds[I - 1], Bounds[I]) << "bound " << I;
  for (size_t I = 1; I + 1 < Bounds.size(); ++I)
    EXPECT_NE(std::find(TileBegin.begin(), TileBegin.end(), Bounds[I]),
              TileBegin.end())
        << "interior bound " << Bounds[I] << " is not a tile start";
}

std::vector<int64_t> evenTiles(int NumTiles, int64_t TileElems) {
  std::vector<int64_t> TileBegin(static_cast<size_t>(NumTiles) + 1);
  for (int I = 0; I <= NumTiles; ++I)
    TileBegin[static_cast<size_t>(I)] = I * TileElems;
  return TileBegin;
}

} // namespace

TEST(NumaBounds, AutoBoundsMonotoneOnTileStartsCoverAll) {
  const std::vector<int64_t> TileBegin = evenTiles(8, 16);
  const Topology Two = makeNodes({{0, 1}, {2, 3}});
  const ShardPlan P = planShards(4, Two, Mode::Auto);
  const std::vector<int64_t> B = shardedBoundsFromTiles(TileBegin, P);
  expectValidBounds(B, TileBegin, 4);
  // Even tiles, even workers: the split is exact and each node shard is
  // contiguous over consecutive worker ids.
  EXPECT_EQ(B, (std::vector<int64_t>{0, 32, 64, 96, 128}));
}

TEST(NumaBounds, InterleaveBoundsStayMonotone) {
  const std::vector<int64_t> TileBegin = evenTiles(10, 7);
  const Topology Two = makeNodes({{0, 1}, {2, 3}});
  const ShardPlan P = planShards(4, Two, Mode::Interleave);
  expectValidBounds(shardedBoundsFromTiles(TileBegin, P), TileBegin, 4);
}

TEST(NumaBounds, UnevenTilesAndWorkerCounts) {
  // Ragged tile sizes; 3 workers over 2 nodes (node 0 gets 2).
  const std::vector<int64_t> TileBegin = {0, 5, 6, 30, 31, 60, 100};
  const Topology Two = makeNodes({{0, 1}, {2, 3}});
  for (const Mode M : {Mode::Auto, Mode::Interleave}) {
    const ShardPlan P = planShards(3, Two, M);
    expectValidBounds(shardedBoundsFromTiles(TileBegin, P), TileBegin, 3);
  }
  // More nodes than tiles: bounds may repeat (empty shards) but stay valid.
  const Topology Four = makeNodes({{0}, {1}, {2}, {3}});
  const std::vector<int64_t> OneTile = {0, 9};
  const ShardPlan P = planShards(4, Four, Mode::Auto);
  expectValidBounds(shardedBoundsFromTiles(OneTile, P), OneTile, 4);
}

TEST(NumaBounds, DegenerateInputs) {
  const Topology Two = makeNodes({{0, 1}, {2, 3}});
  const ShardPlan P = planShards(4, Two, Mode::Auto);
  // No tiles at all: every bound is zero.
  const std::vector<int64_t> Empty = {0};
  const std::vector<int64_t> B = shardedBoundsFromTiles(Empty, P);
  ASSERT_EQ(B.size(), 5u);
  for (const int64_t V : B)
    EXPECT_EQ(V, 0);
  // Serial plan: [0, N].
  const ShardPlan Serial = planShards(1, Two, Mode::Auto);
  const std::vector<int64_t> Tiles = evenTiles(4, 8);
  const std::vector<int64_t> S = shardedBoundsFromTiles(Tiles, Serial);
  ASSERT_EQ(S.size(), 2u);
  EXPECT_EQ(S[0], 0);
  EXPECT_EQ(S[1], 32);
}
