//===- simd/Vec64.h - 8-lane 64-bit vectors ---------------------*- C++ -*-===//
//
// Part of the cfv project: reproduction of Jiang & Agrawal, CGO 2018.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// VecI64<Backend> and VecF64<Backend>: 8-lane vectors of int64_t /
/// double.  The paper evaluates 32-bit elements (16 lanes); AVX-512CD's
/// vpconflictq makes the same in-vector reduction work on 64-bit data --
/// double-precision forces or wide accumulators -- at half the width.
/// Masks reuse Mask16 with only the low 8 bits significant
/// (kAllLanes64); all helpers in Mask.h operate unchanged.
///
/// The API mirrors Vec.h lane for lane; gathers/scatters take 64-bit
/// index vectors (vpgatherqq addressing).
///
//===----------------------------------------------------------------------===//

#ifndef CFV_SIMD_VEC64_H
#define CFV_SIMD_VEC64_H

#include "simd/Backend.h"
#include "simd/Mask.h"

#include <cassert>
#include <cstdint>

namespace cfv {
namespace simd {

/// Number of 64-bit lanes in the widest (512-bit-shaped) backends; also
/// the upper bound across backends, so it remains valid for buffer
/// sizing.  Per-backend widths live on the tags (B::kLanes64) and on the
/// vector types themselves (VecI64<B>::kLanes): 8 for Scalar/Avx512, 4
/// for Avx2.
inline constexpr int kLanes64 = 8;

/// All 8 lanes of a 512-bit-shaped 64-bit vector active.  The AVX2 tier's
/// full mask is (1u << VecI64<Avx2>::kLanes) - 1 = 0x000F.
inline constexpr Mask16 kAllLanes64 = 0x00FF;

template <typename B> struct VecI64;
template <typename B> struct VecF64;

//===----------------------------------------------------------------------===//
// Scalar backend
//===----------------------------------------------------------------------===//

/// 8 x int64_t, portable emulation backend.
template <> struct VecI64<backend::Scalar> {
  static constexpr int kLanes = backend::Scalar::kLanes64;

  alignas(64) int64_t Lane[kLanes64];

  static VecI64 zero() { return broadcast(0); }

  static VecI64 broadcast(int64_t X) {
    VecI64 R;
    for (int64_t &L : R.Lane)
      L = X;
    return R;
  }

  static VecI64 iota() {
    VecI64 R;
    for (int I = 0; I < kLanes64; ++I)
      R.Lane[I] = I;
    return R;
  }

  static VecI64 load(const int64_t *P) {
    VecI64 R;
    for (int I = 0; I < kLanes64; ++I)
      R.Lane[I] = P[I];
    return R;
  }

  static VecI64 maskLoad(VecI64 Src, Mask16 M, const int64_t *P) {
    for (int I = 0; I < kLanes64; ++I)
      if (testLane(M, I))
        Src.Lane[I] = P[I];
    return Src;
  }

  static VecI64 gather(const int64_t *Base, VecI64 Idx) {
    VecI64 R;
    for (int I = 0; I < kLanes64; ++I)
      R.Lane[I] = Base[Idx.Lane[I]];
    return R;
  }

  static VecI64 maskGather(VecI64 Src, Mask16 M, const int64_t *Base,
                           VecI64 Idx) {
    for (int I = 0; I < kLanes64; ++I)
      if (testLane(M, I))
        Src.Lane[I] = Base[Idx.Lane[I]];
    return Src;
  }

  void store(int64_t *P) const {
    for (int I = 0; I < kLanes64; ++I)
      P[I] = Lane[I];
  }

  void maskStore(Mask16 M, int64_t *P) const {
    for (int I = 0; I < kLanes64; ++I)
      if (testLane(M, I))
        P[I] = Lane[I];
  }

  void scatter(int64_t *Base, VecI64 Idx) const {
    for (int I = 0; I < kLanes64; ++I)
      Base[Idx.Lane[I]] = Lane[I];
  }

  void maskScatter(Mask16 M, int64_t *Base, VecI64 Idx) const {
    for (int I = 0; I < kLanes64; ++I)
      if (testLane(M, I))
        Base[Idx.Lane[I]] = Lane[I];
  }

  int64_t extract(int L) const {
    assert(L >= 0 && L < kLanes64 && "lane out of range");
    return Lane[L];
  }

  VecI64 broadcastLane(int L) const { return broadcast(extract(L)); }

  static VecI64 blend(Mask16 M, VecI64 A, VecI64 B) {
    for (int I = 0; I < kLanes64; ++I)
      if (testLane(M, I))
        A.Lane[I] = B.Lane[I];
    return A;
  }

  static VecI64 compress(Mask16 M, VecI64 V) {
    VecI64 R = zero();
    int Out = 0;
    for (int I = 0; I < kLanes64; ++I)
      if (testLane(M, I))
        R.Lane[Out++] = V.Lane[I];
    return R;
  }

  static VecI64 expand(Mask16 M, VecI64 V) {
    VecI64 R = zero();
    int In = 0;
    for (int I = 0; I < kLanes64; ++I)
      if (testLane(M, I))
        R.Lane[I] = V.Lane[In++];
    return R;
  }

  int compressStore(Mask16 M, int64_t *P) const {
    int Out = 0;
    for (int I = 0; I < kLanes64; ++I)
      if (testLane(M, I))
        P[Out++] = Lane[I];
    return Out;
  }

  friend VecI64 operator+(VecI64 A, VecI64 B) {
    for (int I = 0; I < kLanes64; ++I)
      A.Lane[I] += B.Lane[I];
    return A;
  }
  friend VecI64 operator-(VecI64 A, VecI64 B) {
    for (int I = 0; I < kLanes64; ++I)
      A.Lane[I] -= B.Lane[I];
    return A;
  }
  friend VecI64 operator*(VecI64 A, VecI64 B) {
    for (int I = 0; I < kLanes64; ++I)
      A.Lane[I] *= B.Lane[I];
    return A;
  }
  friend VecI64 operator&(VecI64 A, VecI64 B) {
    for (int I = 0; I < kLanes64; ++I)
      A.Lane[I] &= B.Lane[I];
    return A;
  }
  friend VecI64 operator|(VecI64 A, VecI64 B) {
    for (int I = 0; I < kLanes64; ++I)
      A.Lane[I] |= B.Lane[I];
    return A;
  }

  static VecI64 min(VecI64 A, VecI64 B) {
    for (int I = 0; I < kLanes64; ++I)
      A.Lane[I] = A.Lane[I] < B.Lane[I] ? A.Lane[I] : B.Lane[I];
    return A;
  }
  static VecI64 max(VecI64 A, VecI64 B) {
    for (int I = 0; I < kLanes64; ++I)
      A.Lane[I] = A.Lane[I] > B.Lane[I] ? A.Lane[I] : B.Lane[I];
    return A;
  }

  Mask16 eq(VecI64 O) const {
    Mask16 M = 0;
    for (int I = 0; I < kLanes64; ++I)
      if (Lane[I] == O.Lane[I])
        M |= laneBit(I);
    return M;
  }
  Mask16 lt(VecI64 O) const {
    Mask16 M = 0;
    for (int I = 0; I < kLanes64; ++I)
      if (Lane[I] < O.Lane[I])
        M |= laneBit(I);
    return M;
  }
  Mask16 gt(VecI64 O) const {
    Mask16 M = 0;
    for (int I = 0; I < kLanes64; ++I)
      if (Lane[I] > O.Lane[I])
        M |= laneBit(I);
    return M;
  }

  Mask16 maskEq(Mask16 Active, VecI64 O) const {
    return static_cast<Mask16>(eq(O) & Active);
  }
};

/// 8 x double, portable emulation backend.
template <> struct VecF64<backend::Scalar> {
  static constexpr int kLanes = backend::Scalar::kLanes64;

  alignas(64) double Lane[kLanes64];

  using IdxVec = VecI64<backend::Scalar>;

  static VecF64 zero() { return broadcast(0.0); }

  static VecF64 broadcast(double X) {
    VecF64 R;
    for (double &L : R.Lane)
      L = X;
    return R;
  }

  static VecF64 load(const double *P) {
    VecF64 R;
    for (int I = 0; I < kLanes64; ++I)
      R.Lane[I] = P[I];
    return R;
  }

  static VecF64 maskLoad(VecF64 Src, Mask16 M, const double *P) {
    for (int I = 0; I < kLanes64; ++I)
      if (testLane(M, I))
        Src.Lane[I] = P[I];
    return Src;
  }

  static VecF64 gather(const double *Base, IdxVec Idx) {
    VecF64 R;
    for (int I = 0; I < kLanes64; ++I)
      R.Lane[I] = Base[Idx.Lane[I]];
    return R;
  }

  static VecF64 maskGather(VecF64 Src, Mask16 M, const double *Base,
                           IdxVec Idx) {
    for (int I = 0; I < kLanes64; ++I)
      if (testLane(M, I))
        Src.Lane[I] = Base[Idx.Lane[I]];
    return Src;
  }

  void store(double *P) const {
    for (int I = 0; I < kLanes64; ++I)
      P[I] = Lane[I];
  }

  void maskStore(Mask16 M, double *P) const {
    for (int I = 0; I < kLanes64; ++I)
      if (testLane(M, I))
        P[I] = Lane[I];
  }

  void scatter(double *Base, IdxVec Idx) const {
    for (int I = 0; I < kLanes64; ++I)
      Base[Idx.Lane[I]] = Lane[I];
  }

  void maskScatter(Mask16 M, double *Base, IdxVec Idx) const {
    for (int I = 0; I < kLanes64; ++I)
      if (testLane(M, I))
        Base[Idx.Lane[I]] = Lane[I];
  }

  double extract(int L) const {
    assert(L >= 0 && L < kLanes64 && "lane out of range");
    return Lane[L];
  }

  VecF64 broadcastLane(int L) const { return broadcast(extract(L)); }

  static VecF64 blend(Mask16 M, VecF64 A, VecF64 B) {
    for (int I = 0; I < kLanes64; ++I)
      if (testLane(M, I))
        A.Lane[I] = B.Lane[I];
    return A;
  }

  static VecF64 compress(Mask16 M, VecF64 V) {
    VecF64 R = zero();
    int Out = 0;
    for (int I = 0; I < kLanes64; ++I)
      if (testLane(M, I))
        R.Lane[Out++] = V.Lane[I];
    return R;
  }

  static VecF64 expand(Mask16 M, VecF64 V) {
    VecF64 R = zero();
    int In = 0;
    for (int I = 0; I < kLanes64; ++I)
      if (testLane(M, I))
        R.Lane[I] = V.Lane[In++];
    return R;
  }

  int compressStore(Mask16 M, double *P) const {
    int Out = 0;
    for (int I = 0; I < kLanes64; ++I)
      if (testLane(M, I))
        P[Out++] = Lane[I];
    return Out;
  }

  friend VecF64 operator+(VecF64 A, VecF64 B) {
    for (int I = 0; I < kLanes64; ++I)
      A.Lane[I] += B.Lane[I];
    return A;
  }
  friend VecF64 operator-(VecF64 A, VecF64 B) {
    for (int I = 0; I < kLanes64; ++I)
      A.Lane[I] -= B.Lane[I];
    return A;
  }
  friend VecF64 operator*(VecF64 A, VecF64 B) {
    for (int I = 0; I < kLanes64; ++I)
      A.Lane[I] *= B.Lane[I];
    return A;
  }
  friend VecF64 operator/(VecF64 A, VecF64 B) {
    for (int I = 0; I < kLanes64; ++I)
      A.Lane[I] /= B.Lane[I];
    return A;
  }

  static VecF64 min(VecF64 A, VecF64 B) {
    for (int I = 0; I < kLanes64; ++I)
      A.Lane[I] = A.Lane[I] < B.Lane[I] ? A.Lane[I] : B.Lane[I];
    return A;
  }
  static VecF64 max(VecF64 A, VecF64 B) {
    for (int I = 0; I < kLanes64; ++I)
      A.Lane[I] = A.Lane[I] > B.Lane[I] ? A.Lane[I] : B.Lane[I];
    return A;
  }

  Mask16 eq(VecF64 O) const {
    Mask16 M = 0;
    for (int I = 0; I < kLanes64; ++I)
      if (Lane[I] == O.Lane[I])
        M |= laneBit(I);
    return M;
  }
  Mask16 lt(VecF64 O) const {
    Mask16 M = 0;
    for (int I = 0; I < kLanes64; ++I)
      if (Lane[I] < O.Lane[I])
        M |= laneBit(I);
    return M;
  }
  Mask16 gt(VecF64 O) const {
    Mask16 M = 0;
    for (int I = 0; I < kLanes64; ++I)
      if (Lane[I] > O.Lane[I])
        M |= laneBit(I);
    return M;
  }
};

//===----------------------------------------------------------------------===//
// AVX2 backend
//===----------------------------------------------------------------------===//

#if CFV_HAVE_AVX2

/// Expands the low 4 bits of \p M into a ymm 64-bit lane mask.
inline __m256i avx2MaskI64(Mask16 M) {
  const __m256i Bits = _mm256_setr_epi64x(1, 2, 4, 8);
  __m256i B =
      _mm256_and_si256(_mm256_set1_epi64x(static_cast<long long>(M)), Bits);
  return _mm256_cmpeq_epi64(B, Bits);
}

/// Collapses a ymm 64-bit compare result to Mask16 (low 4 bits).
inline Mask16 avx2ToMask64(__m256i V) {
  return static_cast<Mask16>(_mm256_movemask_pd(_mm256_castsi256_pd(V)));
}

/// 4 x int64_t backed by one ymm register.
template <> struct VecI64<backend::Avx2> {
  static constexpr int kLanes = backend::Avx2::kLanes64;

  __m256i Raw;

  VecI64() = default;
  explicit VecI64(__m256i R) : Raw(R) {}

  static VecI64 zero() { return VecI64(_mm256_setzero_si256()); }
  static VecI64 broadcast(int64_t X) {
    return VecI64(_mm256_set1_epi64x(X));
  }

  static VecI64 iota() { return VecI64(_mm256_setr_epi64x(0, 1, 2, 3)); }

  static VecI64 load(const int64_t *P) {
    return VecI64(
        _mm256_loadu_si256(reinterpret_cast<const __m256i *>(P)));
  }

  static VecI64 maskLoad(VecI64 Src, Mask16 M, const int64_t *P) {
    __m256i MV = avx2MaskI64(M);
    __m256i L =
        _mm256_maskload_epi64(reinterpret_cast<const long long *>(P), MV);
    return VecI64(_mm256_blendv_epi8(Src.Raw, L, MV));
  }

  static VecI64 gather(const int64_t *Base, VecI64 Idx) {
    return VecI64(_mm256_i64gather_epi64(
        reinterpret_cast<const long long *>(Base), Idx.Raw, 8));
  }

  static VecI64 maskGather(VecI64 Src, Mask16 M, const int64_t *Base,
                           VecI64 Idx) {
    return VecI64(_mm256_mask_i64gather_epi64(
        Src.Raw, reinterpret_cast<const long long *>(Base), Idx.Raw,
        avx2MaskI64(M), 8));
  }

  void store(int64_t *P) const {
    _mm256_storeu_si256(reinterpret_cast<__m256i *>(P), Raw);
  }

  void maskStore(Mask16 M, int64_t *P) const {
    _mm256_maskstore_epi64(reinterpret_cast<long long *>(P),
                           avx2MaskI64(M), Raw);
  }

  void scatter(int64_t *Base, VecI64 Idx) const {
    alignas(32) int64_t V[kLanes], X[kLanes];
    store(V);
    Idx.store(X);
    for (int I = 0; I < kLanes; ++I)
      Base[X[I]] = V[I];
  }

  void maskScatter(Mask16 M, int64_t *Base, VecI64 Idx) const {
    alignas(32) int64_t V[kLanes], X[kLanes];
    store(V);
    Idx.store(X);
    for (int I = 0; I < kLanes; ++I)
      if (testLane(M, I))
        Base[X[I]] = V[I];
  }

  int64_t extract(int L) const {
    assert(L >= 0 && L < kLanes && "lane out of range");
    alignas(32) int64_t Buf[kLanes];
    store(Buf);
    return Buf[L];
  }

  VecI64 broadcastLane(int L) const {
    switch (L & 3) {
    case 0:
      return VecI64(_mm256_permute4x64_epi64(Raw, 0x00));
    case 1:
      return VecI64(_mm256_permute4x64_epi64(Raw, 0x55));
    case 2:
      return VecI64(_mm256_permute4x64_epi64(Raw, 0xAA));
    default:
      return VecI64(_mm256_permute4x64_epi64(Raw, 0xFF));
    }
  }

  static VecI64 blend(Mask16 M, VecI64 A, VecI64 B) {
    return VecI64(_mm256_blendv_epi8(A.Raw, B.Raw, avx2MaskI64(M)));
  }

  static VecI64 compress(Mask16 M, VecI64 V) {
    alignas(32) int64_t In[kLanes], Out[kLanes] = {};
    V.store(In);
    int N = 0;
    for (int I = 0; I < kLanes; ++I)
      if (testLane(M, I))
        Out[N++] = In[I];
    return load(Out);
  }

  static VecI64 expand(Mask16 M, VecI64 V) {
    alignas(32) int64_t In[kLanes], Out[kLanes] = {};
    V.store(In);
    int N = 0;
    for (int I = 0; I < kLanes; ++I)
      if (testLane(M, I))
        Out[I] = In[N++];
    return load(Out);
  }

  int compressStore(Mask16 M, int64_t *P) const {
    alignas(32) int64_t In[kLanes];
    store(In);
    int N = 0;
    for (int I = 0; I < kLanes; ++I)
      if (testLane(M, I))
        P[N++] = In[I];
    return N;
  }

  friend VecI64 operator+(VecI64 A, VecI64 B) {
    return VecI64(_mm256_add_epi64(A.Raw, B.Raw));
  }
  friend VecI64 operator-(VecI64 A, VecI64 B) {
    return VecI64(_mm256_sub_epi64(A.Raw, B.Raw));
  }
  // AVX2 has no vpmullq; multiply through a spill loop.
  friend VecI64 operator*(VecI64 A, VecI64 B) {
    alignas(32) int64_t X[kLanes], Y[kLanes];
    A.store(X);
    B.store(Y);
    for (int I = 0; I < kLanes; ++I)
      X[I] = static_cast<int64_t>(static_cast<uint64_t>(X[I]) *
                                  static_cast<uint64_t>(Y[I]));
    return load(X);
  }
  friend VecI64 operator&(VecI64 A, VecI64 B) {
    return VecI64(_mm256_and_si256(A.Raw, B.Raw));
  }
  friend VecI64 operator|(VecI64 A, VecI64 B) {
    return VecI64(_mm256_or_si256(A.Raw, B.Raw));
  }

  // AVX2 has no vpmin/maxq; select with the 64-bit signed compare.
  static VecI64 min(VecI64 A, VecI64 B) {
    __m256i AGtB = _mm256_cmpgt_epi64(A.Raw, B.Raw);
    return VecI64(_mm256_blendv_epi8(A.Raw, B.Raw, AGtB));
  }
  static VecI64 max(VecI64 A, VecI64 B) {
    __m256i BGtA = _mm256_cmpgt_epi64(B.Raw, A.Raw);
    return VecI64(_mm256_blendv_epi8(A.Raw, B.Raw, BGtA));
  }

  Mask16 eq(VecI64 O) const {
    return avx2ToMask64(_mm256_cmpeq_epi64(Raw, O.Raw));
  }
  Mask16 lt(VecI64 O) const {
    return avx2ToMask64(_mm256_cmpgt_epi64(O.Raw, Raw));
  }
  Mask16 gt(VecI64 O) const {
    return avx2ToMask64(_mm256_cmpgt_epi64(Raw, O.Raw));
  }

  Mask16 maskEq(Mask16 Active, VecI64 O) const {
    return static_cast<Mask16>(eq(O) & Active);
  }
};

/// 4 x double backed by one ymm register.
template <> struct VecF64<backend::Avx2> {
  static constexpr int kLanes = backend::Avx2::kLanes64;

  __m256d Raw;

  using IdxVec = VecI64<backend::Avx2>;

  VecF64() = default;
  explicit VecF64(__m256d R) : Raw(R) {}

  static VecF64 zero() { return VecF64(_mm256_setzero_pd()); }
  static VecF64 broadcast(double X) { return VecF64(_mm256_set1_pd(X)); }

  static VecF64 load(const double *P) { return VecF64(_mm256_loadu_pd(P)); }

  static VecF64 maskLoad(VecF64 Src, Mask16 M, const double *P) {
    __m256i MV = avx2MaskI64(M);
    __m256d L = _mm256_maskload_pd(P, MV);
    return VecF64(_mm256_blendv_pd(Src.Raw, L, _mm256_castsi256_pd(MV)));
  }

  static VecF64 gather(const double *Base, IdxVec Idx) {
    return VecF64(_mm256_i64gather_pd(Base, Idx.Raw, 8));
  }

  static VecF64 maskGather(VecF64 Src, Mask16 M, const double *Base,
                           IdxVec Idx) {
    return VecF64(_mm256_mask_i64gather_pd(
        Src.Raw, Base, Idx.Raw, _mm256_castsi256_pd(avx2MaskI64(M)), 8));
  }

  void store(double *P) const { _mm256_storeu_pd(P, Raw); }

  void maskStore(Mask16 M, double *P) const {
    _mm256_maskstore_pd(P, avx2MaskI64(M), Raw);
  }

  void scatter(double *Base, IdxVec Idx) const {
    alignas(32) double V[kLanes];
    alignas(32) int64_t X[kLanes];
    store(V);
    Idx.store(X);
    for (int I = 0; I < kLanes; ++I)
      Base[X[I]] = V[I];
  }

  void maskScatter(Mask16 M, double *Base, IdxVec Idx) const {
    alignas(32) double V[kLanes];
    alignas(32) int64_t X[kLanes];
    store(V);
    Idx.store(X);
    for (int I = 0; I < kLanes; ++I)
      if (testLane(M, I))
        Base[X[I]] = V[I];
  }

  double extract(int L) const {
    assert(L >= 0 && L < kLanes && "lane out of range");
    alignas(32) double Buf[kLanes];
    store(Buf);
    return Buf[L];
  }

  VecF64 broadcastLane(int L) const {
    switch (L & 3) {
    case 0:
      return VecF64(_mm256_permute4x64_pd(Raw, 0x00));
    case 1:
      return VecF64(_mm256_permute4x64_pd(Raw, 0x55));
    case 2:
      return VecF64(_mm256_permute4x64_pd(Raw, 0xAA));
    default:
      return VecF64(_mm256_permute4x64_pd(Raw, 0xFF));
    }
  }

  static VecF64 blend(Mask16 M, VecF64 A, VecF64 B) {
    return VecF64(_mm256_blendv_pd(A.Raw, B.Raw,
                                   _mm256_castsi256_pd(avx2MaskI64(M))));
  }

  static VecF64 compress(Mask16 M, VecF64 V) {
    alignas(32) double In[kLanes], Out[kLanes] = {};
    V.store(In);
    int N = 0;
    for (int I = 0; I < kLanes; ++I)
      if (testLane(M, I))
        Out[N++] = In[I];
    return load(Out);
  }

  static VecF64 expand(Mask16 M, VecF64 V) {
    alignas(32) double In[kLanes], Out[kLanes] = {};
    V.store(In);
    int N = 0;
    for (int I = 0; I < kLanes; ++I)
      if (testLane(M, I))
        Out[I] = In[N++];
    return load(Out);
  }

  int compressStore(Mask16 M, double *P) const {
    alignas(32) double In[kLanes];
    store(In);
    int N = 0;
    for (int I = 0; I < kLanes; ++I)
      if (testLane(M, I))
        P[N++] = In[I];
    return N;
  }

  friend VecF64 operator+(VecF64 A, VecF64 B) {
    return VecF64(_mm256_add_pd(A.Raw, B.Raw));
  }
  friend VecF64 operator-(VecF64 A, VecF64 B) {
    return VecF64(_mm256_sub_pd(A.Raw, B.Raw));
  }
  friend VecF64 operator*(VecF64 A, VecF64 B) {
    return VecF64(_mm256_mul_pd(A.Raw, B.Raw));
  }
  friend VecF64 operator/(VecF64 A, VecF64 B) {
    return VecF64(_mm256_div_pd(A.Raw, B.Raw));
  }

  static VecF64 min(VecF64 A, VecF64 B) {
    return VecF64(_mm256_min_pd(A.Raw, B.Raw));
  }
  static VecF64 max(VecF64 A, VecF64 B) {
    return VecF64(_mm256_max_pd(A.Raw, B.Raw));
  }

  Mask16 eq(VecF64 O) const {
    return static_cast<Mask16>(
        _mm256_movemask_pd(_mm256_cmp_pd(Raw, O.Raw, _CMP_EQ_OQ)));
  }
  Mask16 lt(VecF64 O) const {
    return static_cast<Mask16>(
        _mm256_movemask_pd(_mm256_cmp_pd(Raw, O.Raw, _CMP_LT_OQ)));
  }
  Mask16 gt(VecF64 O) const {
    return static_cast<Mask16>(
        _mm256_movemask_pd(_mm256_cmp_pd(Raw, O.Raw, _CMP_GT_OQ)));
  }
};

#endif // CFV_HAVE_AVX2

//===----------------------------------------------------------------------===//
// AVX-512 backend
//===----------------------------------------------------------------------===//

#if CFV_HAVE_AVX512

/// 8 x int64_t backed by one zmm register.
template <> struct VecI64<backend::Avx512> {
  static constexpr int kLanes = backend::Avx512::kLanes64;

  __m512i Raw;

  VecI64() = default;
  explicit VecI64(__m512i R) : Raw(R) {}

  static VecI64 zero() { return VecI64(_mm512_setzero_si512()); }
  static VecI64 broadcast(int64_t X) { return VecI64(_mm512_set1_epi64(X)); }

  static VecI64 iota() {
    return VecI64(_mm512_setr_epi64(0, 1, 2, 3, 4, 5, 6, 7));
  }

  static VecI64 load(const int64_t *P) {
    return VecI64(_mm512_loadu_si512(P));
  }

  static VecI64 maskLoad(VecI64 Src, Mask16 M, const int64_t *P) {
    return VecI64(
        _mm512_mask_loadu_epi64(Src.Raw, static_cast<__mmask8>(M), P));
  }

  static VecI64 gather(const int64_t *Base, VecI64 Idx) {
    return VecI64(_mm512_i64gather_epi64(Idx.Raw, Base, 8));
  }

  static VecI64 maskGather(VecI64 Src, Mask16 M, const int64_t *Base,
                           VecI64 Idx) {
    return VecI64(_mm512_mask_i64gather_epi64(
        Src.Raw, static_cast<__mmask8>(M), Idx.Raw, Base, 8));
  }

  void store(int64_t *P) const { _mm512_storeu_si512(P, Raw); }

  void maskStore(Mask16 M, int64_t *P) const {
    _mm512_mask_storeu_epi64(P, static_cast<__mmask8>(M), Raw);
  }

  void scatter(int64_t *Base, VecI64 Idx) const {
    _mm512_i64scatter_epi64(Base, Idx.Raw, Raw, 8);
  }

  void maskScatter(Mask16 M, int64_t *Base, VecI64 Idx) const {
    _mm512_mask_i64scatter_epi64(Base, static_cast<__mmask8>(M), Idx.Raw,
                                 Raw, 8);
  }

  int64_t extract(int L) const {
    assert(L >= 0 && L < kLanes64 && "lane out of range");
    alignas(64) int64_t Buf[kLanes64];
    _mm512_store_si512(Buf, Raw);
    return Buf[L];
  }

  VecI64 broadcastLane(int L) const {
    return VecI64(_mm512_permutexvar_epi64(_mm512_set1_epi64(L), Raw));
  }

  static VecI64 blend(Mask16 M, VecI64 A, VecI64 B) {
    return VecI64(
        _mm512_mask_mov_epi64(A.Raw, static_cast<__mmask8>(M), B.Raw));
  }

  static VecI64 compress(Mask16 M, VecI64 V) {
    return VecI64(
        _mm512_maskz_compress_epi64(static_cast<__mmask8>(M), V.Raw));
  }

  static VecI64 expand(Mask16 M, VecI64 V) {
    return VecI64(
        _mm512_maskz_expand_epi64(static_cast<__mmask8>(M), V.Raw));
  }

  int compressStore(Mask16 M, int64_t *P) const {
    _mm512_mask_compressstoreu_epi64(P, static_cast<__mmask8>(M), Raw);
    return popcount(M);
  }

  friend VecI64 operator+(VecI64 A, VecI64 B) {
    return VecI64(_mm512_add_epi64(A.Raw, B.Raw));
  }
  friend VecI64 operator-(VecI64 A, VecI64 B) {
    return VecI64(_mm512_sub_epi64(A.Raw, B.Raw));
  }
  friend VecI64 operator*(VecI64 A, VecI64 B) {
    return VecI64(_mm512_mullo_epi64(A.Raw, B.Raw)); // AVX512DQ
  }
  friend VecI64 operator&(VecI64 A, VecI64 B) {
    return VecI64(_mm512_and_si512(A.Raw, B.Raw));
  }
  friend VecI64 operator|(VecI64 A, VecI64 B) {
    return VecI64(_mm512_or_si512(A.Raw, B.Raw));
  }

  static VecI64 min(VecI64 A, VecI64 B) {
    return VecI64(_mm512_min_epi64(A.Raw, B.Raw));
  }
  static VecI64 max(VecI64 A, VecI64 B) {
    return VecI64(_mm512_max_epi64(A.Raw, B.Raw));
  }

  Mask16 eq(VecI64 O) const { return _mm512_cmpeq_epi64_mask(Raw, O.Raw); }
  Mask16 lt(VecI64 O) const { return _mm512_cmplt_epi64_mask(Raw, O.Raw); }
  Mask16 gt(VecI64 O) const { return _mm512_cmpgt_epi64_mask(Raw, O.Raw); }

  Mask16 maskEq(Mask16 Active, VecI64 O) const {
    return _mm512_mask_cmpeq_epi64_mask(static_cast<__mmask8>(Active), Raw,
                                        O.Raw);
  }
};

/// 8 x double backed by one zmm register.
template <> struct VecF64<backend::Avx512> {
  static constexpr int kLanes = backend::Avx512::kLanes64;

  __m512d Raw;

  using IdxVec = VecI64<backend::Avx512>;

  VecF64() = default;
  explicit VecF64(__m512d R) : Raw(R) {}

  static VecF64 zero() { return VecF64(_mm512_setzero_pd()); }
  static VecF64 broadcast(double X) { return VecF64(_mm512_set1_pd(X)); }

  static VecF64 load(const double *P) { return VecF64(_mm512_loadu_pd(P)); }

  static VecF64 maskLoad(VecF64 Src, Mask16 M, const double *P) {
    return VecF64(
        _mm512_mask_loadu_pd(Src.Raw, static_cast<__mmask8>(M), P));
  }

  static VecF64 gather(const double *Base, IdxVec Idx) {
    return VecF64(_mm512_i64gather_pd(Idx.Raw, Base, 8));
  }

  static VecF64 maskGather(VecF64 Src, Mask16 M, const double *Base,
                           IdxVec Idx) {
    return VecF64(_mm512_mask_i64gather_pd(
        Src.Raw, static_cast<__mmask8>(M), Idx.Raw, Base, 8));
  }

  void store(double *P) const { _mm512_storeu_pd(P, Raw); }

  void maskStore(Mask16 M, double *P) const {
    _mm512_mask_storeu_pd(P, static_cast<__mmask8>(M), Raw);
  }

  void scatter(double *Base, IdxVec Idx) const {
    _mm512_i64scatter_pd(Base, Idx.Raw, Raw, 8);
  }

  void maskScatter(Mask16 M, double *Base, IdxVec Idx) const {
    _mm512_mask_i64scatter_pd(Base, static_cast<__mmask8>(M), Idx.Raw, Raw,
                              8);
  }

  double extract(int L) const {
    assert(L >= 0 && L < kLanes64 && "lane out of range");
    alignas(64) double Buf[kLanes64];
    _mm512_store_pd(Buf, Raw);
    return Buf[L];
  }

  VecF64 broadcastLane(int L) const {
    return VecF64(_mm512_permutexvar_pd(_mm512_set1_epi64(L), Raw));
  }

  static VecF64 blend(Mask16 M, VecF64 A, VecF64 B) {
    return VecF64(
        _mm512_mask_mov_pd(A.Raw, static_cast<__mmask8>(M), B.Raw));
  }

  static VecF64 compress(Mask16 M, VecF64 V) {
    return VecF64(
        _mm512_maskz_compress_pd(static_cast<__mmask8>(M), V.Raw));
  }

  static VecF64 expand(Mask16 M, VecF64 V) {
    return VecF64(_mm512_maskz_expand_pd(static_cast<__mmask8>(M), V.Raw));
  }

  int compressStore(Mask16 M, double *P) const {
    _mm512_mask_compressstoreu_pd(P, static_cast<__mmask8>(M), Raw);
    return popcount(M);
  }

  friend VecF64 operator+(VecF64 A, VecF64 B) {
    return VecF64(_mm512_add_pd(A.Raw, B.Raw));
  }
  friend VecF64 operator-(VecF64 A, VecF64 B) {
    return VecF64(_mm512_sub_pd(A.Raw, B.Raw));
  }
  friend VecF64 operator*(VecF64 A, VecF64 B) {
    return VecF64(_mm512_mul_pd(A.Raw, B.Raw));
  }
  friend VecF64 operator/(VecF64 A, VecF64 B) {
    return VecF64(_mm512_div_pd(A.Raw, B.Raw));
  }

  static VecF64 min(VecF64 A, VecF64 B) {
    return VecF64(_mm512_min_pd(A.Raw, B.Raw));
  }
  static VecF64 max(VecF64 A, VecF64 B) {
    return VecF64(_mm512_max_pd(A.Raw, B.Raw));
  }

  Mask16 eq(VecF64 O) const {
    return _mm512_cmp_pd_mask(Raw, O.Raw, _CMP_EQ_OQ);
  }
  Mask16 lt(VecF64 O) const {
    return _mm512_cmp_pd_mask(Raw, O.Raw, _CMP_LT_OQ);
  }
  Mask16 gt(VecF64 O) const {
    return _mm512_cmp_pd_mask(Raw, O.Raw, _CMP_GT_OQ);
  }
};

#endif // CFV_HAVE_AVX512

} // namespace simd
} // namespace cfv

#endif // CFV_SIMD_VEC64_H
