//===- tests/chaos_test.cpp - Chaos tier contracts ------------------------===//
//
// Part of the cfv project: reproduction of Jiang & Agrawal, CGO 2018.
//
//===----------------------------------------------------------------------===//
//
// Runs the verify/Chaos tier small: a golden round plus one fault round
// per point, asserting the run itself upholds its invariants (no hang,
// balanced books, Ok answers matching golden) and that it is
// deterministic -- the same seed produces the same traffic and the same
// fault decisions, which is what makes a chaos failure replayable.
//
//===----------------------------------------------------------------------===//

#include "verify/Chaos.h"

#include "resilience/Fault.h"

#include "gtest/gtest.h"

using namespace cfv;

namespace {

verify::ChaosOptions smallRun(uint64_t Seed) {
  verify::ChaosOptions O;
  O.Seed = Seed;
  O.Rounds = fault::kNumPoints; // feature every point once
  O.LinesPerRound = 80;
  O.Quiet = true;
  return O;
}

TEST(ChaosTest, FullRotationUpholdsInvariants) {
  const Expected<verify::ChaosStats> R = verify::runChaos(smallRun(99));
  ASSERT_TRUE(R.ok()) << R.status().toString();
  EXPECT_EQ(R->Rounds, fault::kNumPoints);
  EXPECT_GT(R->Requests, 0);
  EXPECT_GT(R->Ok, 0);
  // Traffic replays identically per round, so golden-round signatures
  // must recur in fault rounds and actually get cross-checked.
  EXPECT_GT(R->ChecksumsChecked, 0);
#if CFV_FAULTS
  EXPECT_GT(R->FaultsInjected, 0)
      << "a full rotation with every point armed must inject something";
#else
  EXPECT_EQ(R->FaultsInjected, 0);
#endif
  // The tier must leave the process-wide injector disarmed for whoever
  // runs next.
  EXPECT_FALSE(fault::Injector::instance().armed());
}

TEST(ChaosTest, SameSeedSameTrafficAndFaults) {
  const Expected<verify::ChaosStats> A = verify::runChaos(smallRun(123));
  const Expected<verify::ChaosStats> B = verify::runChaos(smallRun(123));
  ASSERT_TRUE(A.ok()) << A.status().toString();
  ASSERT_TRUE(B.ok()) << B.status().toString();
  // Lines and admitted requests are pure functions of the seed.  (Ok vs
  // Failed splits can differ: shedding and deadline races depend on
  // scheduling, which is exactly what chaos explores.)
  EXPECT_EQ(A->Lines, B->Lines);
  EXPECT_EQ(A->Requests, B->Requests);
  EXPECT_EQ(A->Rounds, B->Rounds);
}

} // namespace
