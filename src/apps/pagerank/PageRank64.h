//===- apps/pagerank/PageRank64.h - Double-precision PageRank ---*- C++ -*-===//
//
// Part of the cfv project: reproduction of Jiang & Agrawal, CGO 2018.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// PageRank with double-precision ranks over the library's 64-bit lane
/// extension (8 lanes, vpconflictq).  Single-precision rank mass loses
/// digits on large graphs -- per-vertex ranks sit near 1/N, and the
/// per-edge contributions near 1/(N * degree), below float's resolution
/// of the damping constant for N in the hundreds of millions -- so a
/// production PageRank wants fp64 accumulators.  This module demonstrates
/// that the paper's technique carries over: the same in-vector reduction,
/// half the lanes, conflict detection via the 64-bit vpconflictq.
///
/// Only the serial and in-vector versions are provided (the point is the
/// 64-bit data path, not another baseline sweep).
///
//===----------------------------------------------------------------------===//

#ifndef CFV_APPS_PAGERANK_PAGERANK64_H
#define CFV_APPS_PAGERANK_PAGERANK64_H

#include "apps/pagerank/PageRank.h"
#include "graph/Graph.h"

namespace cfv {
namespace apps {

/// Execution strategy of the fp64 variant.
enum class Pr64Version { Serial, Invec };

struct PageRank64Result {
  AlignedVector<double> Rank;
  int Iterations = 0;
  double ComputeSeconds = 0.0;
  double MeanD1 = 0.0; ///< Invec only (8-lane vectors)
  /// Per-pass D1 distribution over the 8-lane path (slots 0..8 used;
  /// empty unless Invec ran with observability compiled in).
  LaneHistogram D1Hist;
};

/// Runs double-precision PageRank on \p G with strategy \p V; options are
/// shared with the fp32 implementation (TileBlockBits is ignored -- the
/// fp64 variant runs on the untiled edge order).
PageRank64Result runPageRank64(const graph::EdgeList &G, Pr64Version V,
                               const PageRankOptions &O = {});

} // namespace apps
} // namespace cfv

#endif // CFV_APPS_PAGERANK_PAGERANK64_H
