//===- bench/ablation_amortization.cpp - Grouping amortization ------------===//
//
// Part of the cfv project: reproduction of Jiang & Agrawal, CGO 2018.
//
//===----------------------------------------------------------------------===//
//
// The inspector/executor literature "assumes the overhead of data
// reorganization is amortizable over the iterations" (§1); the paper's
// Moldyn result quantifies it as "nearly 1000 iterations to amortize an
// initial grouping".  This harness locates the amortization crossover on
// the build host, using the static-connectivity mesh solver (the
// friendliest case for grouping: the reorganization is done exactly
// once): total time of serial / invec / grouping as the sweep count
// grows, plus the break-even sweep count computed from the measured
// per-sweep rates.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "apps/mesh/MeshSolver.h"
#include "util/Prng.h"
#include "util/TablePrinter.h"

#include <cmath>
#include <cstdlib>

using namespace cfv;
using namespace cfv::apps;
using namespace cfv::bench;

namespace {

double envScaleLocal() {
  const char *S = std::getenv("CFV_SCALE");
  if (!S)
    return 1.0;
  const double V = std::atof(S);
  return V < 0.01 ? 0.01 : (V > 1000.0 ? 1000.0 : V);
}

} // namespace

int main() {
  banner("Ablation (§1 amortization)",
         "one-time grouping vs zero-reorganization invec on a static "
         "mesh");
  const double Scale = envScaleLocal();
  const int32_t Side = static_cast<int32_t>(192 * std::sqrt(Scale));
  const Mesh M = makeTriangulatedGrid(Side, Side, 0xA0);
  Xoshiro256 Rng(bench::benchSeed() ^ 0xA1);
  AlignedVector<float> U0(M.NumCells);
  for (float &X : U0)
    X = Rng.nextFloat();
  std::printf("mesh: %d cells, %lld edges\n", M.NumCells,
              static_cast<long long>(M.numEdges()));

  TablePrinter T({"sweeps", "serial(s)", "invec(s)", "grouping total(s)",
                  "grouping prep(s)", "best"});
  double InvecPerSweep = 0.0, GroupPerSweep = 0.0, GroupPrep = 0.0;
  for (const int Sweeps : {1, 5, 20, 100, 400}) {
    const MeshRunResult S =
        runMeshDiffusion(M, U0.data(), Sweeps, 0.4f, MeshVersion::Serial);
    const MeshRunResult I =
        runMeshDiffusion(M, U0.data(), Sweeps, 0.4f, MeshVersion::Invec);
    const MeshRunResult G = runMeshDiffusion(M, U0.data(), Sweeps, 0.4f,
                                             MeshVersion::Grouping);
    const double GTotal = G.ComputeSeconds + G.GroupSeconds;
    const char *Best = "serial";
    double BestT = S.ComputeSeconds;
    if (I.ComputeSeconds < BestT) {
      Best = "invec";
      BestT = I.ComputeSeconds;
    }
    if (GTotal < BestT)
      Best = "grouping";
    T.addRow({std::to_string(Sweeps), TablePrinter::fmt(S.ComputeSeconds),
              TablePrinter::fmt(I.ComputeSeconds),
              TablePrinter::fmt(GTotal), TablePrinter::fmt(G.GroupSeconds),
              Best});
    if (Sweeps == 400) {
      InvecPerSweep = I.ComputeSeconds / Sweeps;
      GroupPerSweep = G.ComputeSeconds / Sweeps;
      GroupPrep = G.GroupSeconds;
    }
  }
  T.print();

  if (GroupPerSweep < InvecPerSweep) {
    const double BreakEven = GroupPrep / (InvecPerSweep - GroupPerSweep);
    std::printf("grouping breaks even with invec after ~%.0f sweeps "
                "(prep %.3fs, per-sweep %.2fus vs %.2fus)\n",
                BreakEven, GroupPrep, GroupPerSweep * 1e6,
                InvecPerSweep * 1e6);
  } else {
    std::printf("grouping never amortizes on this host: per-sweep %.2fus "
                "vs invec %.2fus\n",
                GroupPerSweep * 1e6, InvecPerSweep * 1e6);
  }

  paperNote("the paper's Moldyn needed ~1000 iterations to amortize its "
            "grouping; our greedy inspector is far cheaper, so the "
            "crossover comes earlier -- the qualitative tradeoff (pay "
            "reorganization once vs pay in-register merges per sweep) is "
            "the invariant");
  return 0;
}
