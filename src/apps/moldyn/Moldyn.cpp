//===- apps/moldyn/Moldyn.cpp - Molecular dynamics (Moldyn) --------------===//
//
// Part of the cfv project: reproduction of Jiang & Agrawal, CGO 2018.
//
//===----------------------------------------------------------------------===//

#include "apps/moldyn/Moldyn.h"

#include "core/Backends.h"
#include "core/Dispatch.h"
#include "core/InvecReduce.h"
#include "core/Variant.h"
#include "simd/Traits.h"
#include "inspector/Grouping.h"
#include "inspector/Tiling.h"
#include "obs/Trace.h"
#include "util/Prng.h"
#include "util/Timer.h"

#include <cassert>
#include <cmath>

using namespace cfv;
using namespace cfv::apps;

using B = simd::NativeBackend;
using IVec = simd::VecI32<B>;
using FVec = simd::VecF32<B>;
using simd::Mask16;
constexpr int kLanes = B::kLanes;
constexpr Mask16 kAllLanes = simd::BackendTraits<B>::kFullMask;

#if CFV_VARIANT_PRIMARY
const char *apps::versionName(MdVersion V) {
  switch (V) {
  case MdVersion::TilingSerial:
    return "tiling_serial";
  case MdVersion::TilingGrouping:
    return "tiling_and_grouping";
  case MdVersion::TilingMask:
    return "tiling_and_mask";
  case MdVersion::TilingInvec:
    return "tiling_and_invec";
  }
  return "unknown";
}

MoldynSim::MoldynSim(const MoldynOptions &O) : Opt(O) {
  const int Cells = O.Cells;
  N = 4 * Cells * Cells * Cells;
  const float A = std::cbrt(4.0f / O.Density); // FCC cell edge
  Box = A * static_cast<float>(Cells);
  assert((Box > 2.0f * O.Cutoff || N <= 4096) &&
         "box must exceed twice the cutoff for cell lists; small boxes "
         "fall back to all-pairs");

  X.resize(N);
  Y.resize(N);
  Z.resize(N);
  Vx.resize(N);
  Vy.resize(N);
  Vz.resize(N);
  Fx.assign(N, 0.0f);
  Fy.assign(N, 0.0f);
  Fz.assign(N, 0.0f);

  // Perturbed FCC lattice: 4 basis atoms per cell.
  static const float Basis[4][3] = {
      {0.0f, 0.0f, 0.0f}, {0.0f, 0.5f, 0.5f},
      {0.5f, 0.0f, 0.5f}, {0.5f, 0.5f, 0.0f}};
  Xoshiro256 Rng(O.Seed);
  int32_t P = 0;
  for (int Cx = 0; Cx < Cells; ++Cx)
    for (int Cy = 0; Cy < Cells; ++Cy)
      for (int Cz = 0; Cz < Cells; ++Cz)
        for (const auto &Bs : Basis) {
          const float Jitter = 0.05f * A;
          X[P] = (Cx + Bs[0]) * A + (Rng.nextFloat() - 0.5f) * Jitter;
          Y[P] = (Cy + Bs[1]) * A + (Rng.nextFloat() - 0.5f) * Jitter;
          Z[P] = (Cz + Bs[2]) * A + (Rng.nextFloat() - 0.5f) * Jitter;
          ++P;
        }

  // Random velocities with the net momentum removed.
  double Mx = 0, My = 0, Mz = 0;
  for (int32_t I = 0; I < N; ++I) {
    Vx[I] = Rng.nextFloat() - 0.5f;
    Vy[I] = Rng.nextFloat() - 0.5f;
    Vz[I] = Rng.nextFloat() - 0.5f;
    Mx += Vx[I];
    My += Vy[I];
    Mz += Vz[I];
  }
  for (int32_t I = 0; I < N; ++I) {
    Vx[I] -= static_cast<float>(Mx / N);
    Vy[I] -= static_cast<float>(My / N);
    Vz[I] -= static_cast<float>(Mz / N);
  }
}

namespace {

/// Minimal-image displacement component.
inline float minImage(float D, float Box) {
  return D - Box * std::nearbyintf(D / Box);
}

} // namespace

MoldynSim::RebuildTimes MoldynSim::rebuildNeighborList() {
  RebuildTimes Times{0.0, 0.0};
  WallTimer TN;
  PairI.clear();
  PairJ.clear();
  Grouped = false;

  // A small skin keeps the list valid across the rebuild interval.
  const float Rc = Opt.Cutoff * 1.05f;
  const float Rc2 = Rc * Rc;
  const int NCell = static_cast<int>(Box / Rc);

  if (NCell < 3) {
    // Box too small for a half stencil without image aliasing: all pairs.
    for (int32_t I = 0; I < N; ++I)
      for (int32_t J = I + 1; J < N; ++J) {
        const float Dx = minImage(X[I] - X[J], Box);
        const float Dy = minImage(Y[I] - Y[J], Box);
        const float Dz = minImage(Z[I] - Z[J], Box);
        if (Dx * Dx + Dy * Dy + Dz * Dz < Rc2) {
          PairI.push_back(I);
          PairJ.push_back(J);
        }
      }
  } else {
    const float CellLen = Box / static_cast<float>(NCell);
    const int64_t NumCells =
        static_cast<int64_t>(NCell) * NCell * NCell;
    std::vector<std::vector<int32_t>> Cells(NumCells);
    auto CellOf = [&](int32_t A) {
      int Cx = static_cast<int>(X[A] / CellLen) % NCell;
      int Cy = static_cast<int>(Y[A] / CellLen) % NCell;
      int Cz = static_cast<int>(Z[A] / CellLen) % NCell;
      if (Cx < 0)
        Cx += NCell;
      if (Cy < 0)
        Cy += NCell;
      if (Cz < 0)
        Cz += NCell;
      return (static_cast<int64_t>(Cx) * NCell + Cy) * NCell + Cz;
    };
    for (int32_t A = 0; A < N; ++A)
      Cells[CellOf(A)].push_back(A);

    // Half stencil: same cell (I < J) plus 13 forward neighbor cells.
    static const int Stencil[13][3] = {
        {1, 0, 0},  {0, 1, 0},  {0, 0, 1},  {1, 1, 0},   {1, -1, 0},
        {1, 0, 1},  {1, 0, -1}, {0, 1, 1},  {0, 1, -1},  {1, 1, 1},
        {1, 1, -1}, {1, -1, 1}, {1, -1, -1}};
    auto TryPair = [&](int32_t I, int32_t J) {
      const float Dx = minImage(X[I] - X[J], Box);
      const float Dy = minImage(Y[I] - Y[J], Box);
      const float Dz = minImage(Z[I] - Z[J], Box);
      if (Dx * Dx + Dy * Dy + Dz * Dz < Rc2) {
        PairI.push_back(I < J ? I : J);
        PairJ.push_back(I < J ? J : I);
      }
    };
    for (int Cx = 0; Cx < NCell; ++Cx)
      for (int Cy = 0; Cy < NCell; ++Cy)
        for (int Cz = 0; Cz < NCell; ++Cz) {
          const auto &Home =
              Cells[(static_cast<int64_t>(Cx) * NCell + Cy) * NCell + Cz];
          for (std::size_t A = 0; A < Home.size(); ++A)
            for (std::size_t Bb = A + 1; Bb < Home.size(); ++Bb)
              TryPair(Home[A], Home[Bb]);
          for (const auto &St : Stencil) {
            const int Ox = (Cx + St[0] + NCell) % NCell;
            const int Oy = (Cy + St[1] + NCell) % NCell;
            const int Oz = (Cz + St[2] + NCell) % NCell;
            const auto &Other =
                Cells[(static_cast<int64_t>(Ox) * NCell + Oy) * NCell + Oz];
            for (const int32_t I : Home)
              for (const int32_t J : Other)
                TryPair(I, J);
          }
        }
  }
  Times.Neighbor = TN.seconds();

  // Tiling accompanies every rebuild (all versions, §4.3): bucket pairs
  // by the j-endpoint's block to localize the force-array updates.
  WallTimer TT;
  const inspector::TilingResult Tiling = inspector::tileByDestination(
      PairJ.data(), numPairs(), N, Opt.TileBlockBits);
  PairI = inspector::applyPermutation(Tiling.Order, PairI.data());
  PairJ = inspector::applyPermutation(Tiling.Order, PairJ.data());
  TileBegin = Tiling.TileBegin;
  Times.Tiling = TT.seconds();
  return Times;
}

double MoldynSim::regroupPairs(int Width) {
  WallTimer T;
  // The pair list is already tiled; group it as one tile per call site
  // (pair groups must keep both endpoints unique, so the packing is
  // looser than the single-index variant).  Groups are packed at the
  // lane width of the kernel set that will consume them -- this function
  // compiles once in the primary pass, whose file-scope kLanes is the
  // *baseline* backend's width, not necessarily the executing tier's.
  inspector::TilingResult Identity;
  Identity.BlockBits = 31;
  Identity.Order.resize(numPairs());
  for (int64_t E = 0; E < numPairs(); ++E)
    Identity.Order[E] = static_cast<int32_t>(E);
  Identity.TileBegin = {0, numPairs()};
  inspector::GroupingResult G = inspector::groupConflictFreePairs(
      PairI.data(), PairJ.data(), N, Identity, Width);
  GI = inspector::applyGrouping(G, PairI.data(), int32_t(0));
  GJ = inspector::applyGrouping(G, PairJ.data(), int32_t(0));
  GroupMask = std::move(G.GroupMask);
  NumGroups = G.NumGroups;
  GroupWidth = Width;
  Grouped = true;
  return T.seconds();
}

void MoldynSim::computeForcesSerialRange(int64_t Lo, int64_t Hi,
                                         core::FloatSink Ox,
                                         core::FloatSink Oy,
                                         core::FloatSink Oz,
                                         double &Pot) const {
  const float Rc2 = Opt.Cutoff * Opt.Cutoff;
  for (int64_t P = Lo; P < Hi; ++P) {
    const int32_t I = PairI[P];
    const int32_t J = PairJ[P];
    const float Dx = minImage(X[I] - X[J], Box);
    const float Dy = minImage(Y[I] - Y[J], Box);
    const float Dz = minImage(Z[I] - Z[J], Box);
    const float R2 = Dx * Dx + Dy * Dy + Dz * Dz;
    if (R2 >= Rc2)
      continue;
    const float R2i = 1.0f / R2;
    const float R6i = R2i * R2i * R2i;
    const float Ff = 48.0f * R6i * (R6i - 0.5f) * R2i;
    Ox.add(I, Ff * Dx);
    Oy.add(I, Ff * Dy);
    Oz.add(I, Ff * Dz);
    Ox.add(J, -(Ff * Dx));
    Oy.add(J, -(Ff * Dy));
    Oz.add(J, -(Ff * Dz));
    Pot += 4.0f * R6i * (R6i - 1.0f);
  }
}

void MoldynSim::computeForcesSerial() {
  computeForcesSerialRange(0, numPairs(), core::FloatSink::dense(Fx.data()),
                           core::FloatSink::dense(Fy.data()),
                           core::FloatSink::dense(Fz.data()), PotE);
}
#endif // CFV_VARIANT_PRIMARY

namespace {

/// Vector LJ kernel: given active lanes and pair endpoints, produces the
/// per-lane force components and the per-lane potential energy (zeroed
/// beyond the cutoff).
struct PairForces {
  FVec Fx, Fy, Fz, E;
};

PairForces ljForces(Mask16 Active, IVec VI, IVec VJ, const float *X,
                    const float *Y, const float *Z, float Box, float Rc2) {
  const FVec BoxV = FVec::broadcast(Box);
  const FVec InvBox = FVec::broadcast(1.0f / Box);
  auto MinImage = [&](FVec D) { return D - BoxV * (D * InvBox).round(); };

  const FVec Xi = FVec::maskGather(FVec::zero(), Active, X, VI);
  const FVec Yi = FVec::maskGather(FVec::zero(), Active, Y, VI);
  const FVec Zi = FVec::maskGather(FVec::zero(), Active, Z, VI);
  const FVec Xj = FVec::maskGather(FVec::zero(), Active, X, VJ);
  const FVec Yj = FVec::maskGather(FVec::zero(), Active, Y, VJ);
  const FVec Zj = FVec::maskGather(FVec::zero(), Active, Z, VJ);

  const FVec Dx = MinImage(Xi - Xj);
  const FVec Dy = MinImage(Yi - Yj);
  const FVec Dz = MinImage(Zi - Zj);
  const FVec R2 = Dx * Dx + Dy * Dy + Dz * Dz;

  // Lanes contributing force: active, inside the cutoff, and not
  // numerically coincident.  The reciprocal is guarded on all others.
  const Mask16 Cut = static_cast<Mask16>(
      R2.lt(FVec::broadcast(Rc2)) &
      R2.gt(FVec::broadcast(1e-12f)) & Active);
  const FVec R2i =
      FVec::broadcast(1.0f) / FVec::blend(Cut, FVec::broadcast(1.0f), R2);
  const FVec R6i = R2i * R2i * R2i;
  const FVec Ff = FVec::blend(Cut, FVec::zero(),
                              FVec::broadcast(48.0f) * R6i *
                                  (R6i - FVec::broadcast(0.5f)) * R2i);
  const FVec E = FVec::blend(Cut, FVec::zero(),
                             FVec::broadcast(4.0f) * R6i *
                                 (R6i - FVec::broadcast(1.0f)));
  return {Ff * Dx, Ff * Dy, Ff * Dz, E};
}

} // namespace

namespace cfv {
namespace apps {
namespace detail {
namespace CFV_VARIANT_NS {

/// This variant's force kernels, friended by MoldynSim so the vector
/// sweeps can touch the simulation state directly.  Each kernel covers a
/// pair-list (or group-list) chunk and routes its accumulations through
/// per-worker sinks; run() is the orchestrator that chunks the iteration
/// space, privatizes the force arrays, and merges.
struct MoldynKernels {
  static void run(MoldynSim &S, MdVersion V);
  static void mask(MoldynSim &S, int64_t Lo, int64_t Hi, core::FloatSink Ox,
                   core::FloatSink Oy, core::FloatSink Oz, double &Pot,
                   SimdUtilCounter &Util);
  static void invec(MoldynSim &S, int64_t Lo, int64_t Hi, core::FloatSink Ox,
                    core::FloatSink Oy, core::FloatSink Oz, double &Pot,
                    ConflictCounter &D1);
  static void grouped(MoldynSim &S, int64_t GLo, int64_t GHi,
                      core::FloatSink Ox, core::FloatSink Oy,
                      core::FloatSink Oz, double &Pot);
};

} // namespace CFV_VARIANT_NS
} // namespace detail
} // namespace apps
} // namespace cfv

using Kernels = apps::detail::CFV_VARIANT_NS::MoldynKernels;

void apps::detail::CFV_VARIANT_NS::MoldynKernels::mask(
    MoldynSim &S, int64_t Lo, int64_t Hi, core::FloatSink Ox,
    core::FloatSink Oy, core::FloatSink Oz, double &Pot,
    SimdUtilCounter &Util) {
  const float Rc2 = S.Opt.Cutoff * S.Opt.Cutoff;
  if (Lo >= Hi)
    return;

  IVec Pos = IVec::broadcast(static_cast<int32_t>(Lo)) + IVec::iota();
  int64_t Next = Lo + kLanes;
  const IVec Limit = IVec::broadcast(static_cast<int32_t>(Hi));
  Mask16 Active = Pos.lt(Limit);
  FVec PotV = FVec::zero();

  while (Active) {
    const IVec VI = IVec::maskGather(IVec::zero(), Active, S.PairI.data(), Pos);
    const IVec VJ = IVec::maskGather(IVec::zero(), Active, S.PairJ.data(), Pos);
    // A lane commits only if it is conflict free in *both* endpoint
    // vectors; the i-side and j-side updates are then done in two ordered
    // phases so cross conflicts (one lane's i == another's j) are safe.
    const Mask16 Safe = simd::conflictFreeSubset(
        simd::conflictFreeSubset(Active, VI), VJ);

    const PairForces F =
        ljForces(Safe, VI, VJ, S.X.data(), S.Y.data(), S.Z.data(), S.Box, Rc2);
    Ox.commit(Safe, VI, F.Fx);
    Oy.commit(Safe, VI, F.Fy);
    Oz.commit(Safe, VI, F.Fz);
    Ox.commit(Safe, VJ, FVec::zero() - F.Fx);
    Oy.commit(Safe, VJ, FVec::zero() - F.Fy);
    Oz.commit(Safe, VJ, FVec::zero() - F.Fz);
    PotV = PotV + F.E;

    Util.recordPass(simd::popcount(Safe), simd::popcount(Active));

    const int Refill = simd::popcount(Safe);
    IVec Fresh = IVec::broadcast(static_cast<int32_t>(Next)) + IVec::iota();
    Fresh = IVec::expand(Safe, Fresh);
    Pos = IVec::blend(Safe, Pos, Fresh);
    Next += Refill;
    Active = Pos.lt(Limit);
  }
  Pot += simd::maskedReduce<simd::OpAdd>(kAllLanes, PotV);
}

void apps::detail::CFV_VARIANT_NS::MoldynKernels::invec(
    MoldynSim &S, int64_t Lo, int64_t Hi, core::FloatSink Ox,
    core::FloatSink Oy, core::FloatSink Oz, double &Pot,
    ConflictCounter &D1) {
  const float Rc2 = S.Opt.Cutoff * S.Opt.Cutoff;
  FVec PotV = FVec::zero();

  for (int64_t P = Lo; P < Hi; P += kLanes) {
    const int64_t Left = Hi - P;
    const Mask16 Active =
        Left >= kLanes ? kAllLanes
                       : static_cast<Mask16>((1u << Left) - 1u);
    const IVec VI = IVec::maskLoad(IVec::zero(), Active, S.PairI.data() + P);
    const IVec VJ = IVec::maskLoad(IVec::zero(), Active, S.PairJ.data() + P);
    const PairForces F =
        ljForces(Active, VI, VJ, S.X.data(), S.Y.data(), S.Z.data(), S.Box, Rc2);

    // In-vector reduce the +F contributions by i, then the -F
    // contributions by j; the reductions work on copies because each
    // keying collapses lanes differently.
    FVec Ax = F.Fx, Ay = F.Fy, Az = F.Fz;
    const core::InvecResult Ri =
        core::invecReduce<simd::OpAdd>(Active, VI, Ax, Ay, Az);
    Ox.commit(Ri.Ret, VI, Ax);
    Oy.commit(Ri.Ret, VI, Ay);
    Oz.commit(Ri.Ret, VI, Az);

    FVec Bx = FVec::zero() - F.Fx, By = FVec::zero() - F.Fy,
         Bz = FVec::zero() - F.Fz;
    const core::InvecResult Rj =
        core::invecReduce<simd::OpAdd>(Active, VJ, Bx, By, Bz);
    Ox.commit(Rj.Ret, VJ, Bx);
    Oy.commit(Rj.Ret, VJ, By);
    Oz.commit(Rj.Ret, VJ, Bz);

    PotV = PotV + F.E;
    D1.add(static_cast<unsigned>(Ri.Distinct));
    D1.add(static_cast<unsigned>(Rj.Distinct));
  }
  Pot += simd::maskedReduce<simd::OpAdd>(kAllLanes, PotV);
}

void apps::detail::CFV_VARIANT_NS::MoldynKernels::grouped(
    MoldynSim &S, int64_t GLo, int64_t GHi, core::FloatSink Ox,
    core::FloatSink Oy, core::FloatSink Oz, double &Pot) {
  assert(S.Grouped && "regroupPairs() must run before the grouped kernel");
  assert(S.GroupWidth == kLanes &&
         "groups were packed for a different backend's lane width");
  const float Rc2 = S.Opt.Cutoff * S.Opt.Cutoff;
  FVec PotV = FVec::zero();

  for (int64_t G = GLo; G < GHi; ++G) {
    const Mask16 M = S.GroupMask[G];
    const IVec VI = IVec::load(S.GI.data() + G * kLanes);
    const IVec VJ = IVec::load(S.GJ.data() + G * kLanes);
    const PairForces F =
        ljForces(M, VI, VJ, S.X.data(), S.Y.data(), S.Z.data(), S.Box, Rc2);
    // Every atom appears at most once across both endpoint vectors of a
    // group: both sides scatter without conflict handling.
    Ox.commit(M, VI, F.Fx);
    Oy.commit(M, VI, F.Fy);
    Oz.commit(M, VI, F.Fz);
    Ox.commit(M, VJ, FVec::zero() - F.Fx);
    Oy.commit(M, VJ, FVec::zero() - F.Fy);
    Oz.commit(M, VJ, FVec::zero() - F.Fz);
    PotV = PotV + F.E;
  }
  Pot += simd::maskedReduce<simd::OpAdd>(kAllLanes, PotV);
}

/// Orchestrates one force evaluation: chunks the pair list (tile-aligned
/// where the inspector's tiling is available, so a cache tile is never
/// split across workers), privatizes Fx/Fy/Fz per the cost model, runs
/// this variant's kernels on the pool, and merges replicas / spill lists
/// and instrumentation in thread-id order.
void apps::detail::CFV_VARIANT_NS::MoldynKernels::run(MoldynSim &S,
                                                      MdVersion V) {
  const int64_t M = S.numPairs();
  const int NumThreads = core::resolveThreads(S.Opt.Threads);
  const bool UseGroups = V == MdVersion::TilingGrouping;

  std::vector<int64_t> Bounds;
  if (UseGroups)
    Bounds = core::chunkBounds(S.NumGroups, NumThreads, 1);
  else if (!S.TileBegin.empty())
    Bounds = core::chunkBoundsFromTilesSharded(S.TileBegin, NumThreads);
  else
    Bounds = core::chunkBounds(M, NumThreads, kLanes);

  // Each pair updates two atoms across three component arrays; treat the
  // (Fx, Fy, Fz) triple as one privatized array of 3-float elements.
  const bool Dense =
      NumThreads <= 1 ||
      core::useDensePrivatization(S.N, 3 * sizeof(float), 2 * M, NumThreads);
  const int Replicas = NumThreads > 1 ? NumThreads - 1 : 0;
  std::vector<AlignedVector<float>> PartsX(Dense ? Replicas : 0),
      PartsY(Dense ? Replicas : 0), PartsZ(Dense ? Replicas : 0);
  for (int R = 0; R < Replicas && Dense; ++R) {
    PartsX[R].assign(S.N, 0.0f);
    PartsY[R].assign(S.N, 0.0f);
    PartsZ[R].assign(S.N, 0.0f);
  }
  std::vector<core::SpillListF> SpillX(Dense ? 0 : Replicas),
      SpillY(Dense ? 0 : Replicas), SpillZ(Dense ? 0 : Replicas);
  std::vector<double> Pots(NumThreads, 0.0);
  std::vector<SimdUtilCounter> Utils(NumThreads);
  std::vector<ConflictCounter> D1s(NumThreads);

  const auto SinkFor = [&](int Tid, AlignedVector<float> &Base,
                           std::vector<AlignedVector<float>> &Parts,
                           std::vector<core::SpillListF> &Spills) {
    if (Tid == 0)
      return core::FloatSink::dense(Base.data());
    return Dense ? core::FloatSink::dense(Parts[Tid - 1].data())
                 : core::FloatSink::spill(&Spills[Tid - 1]);
  };
  const auto Body = [&](int Tid) {
    const core::FloatSink Ox = SinkFor(Tid, S.Fx, PartsX, SpillX);
    const core::FloatSink Oy = SinkFor(Tid, S.Fy, PartsY, SpillY);
    const core::FloatSink Oz = SinkFor(Tid, S.Fz, PartsZ, SpillZ);
    const int64_t Lo = Bounds[Tid], Hi = Bounds[Tid + 1];
    switch (V) {
    case MdVersion::TilingSerial:
      S.computeForcesSerialRange(Lo, Hi, Ox, Oy, Oz, Pots[Tid]);
      return;
    case MdVersion::TilingGrouping:
      grouped(S, Lo, Hi, Ox, Oy, Oz, Pots[Tid]);
      return;
    case MdVersion::TilingMask:
      mask(S, Lo, Hi, Ox, Oy, Oz, Pots[Tid], Utils[Tid]);
      return;
    case MdVersion::TilingInvec:
      invec(S, Lo, Hi, Ox, Oy, Oz, Pots[Tid], D1s[Tid]);
      return;
    }
  };
  core::ParallelEngine::instance().run(NumThreads, Body);

  if (Dense) {
    core::mergeTreeAdd(S.Fx.data(), PartsX, S.N);
    core::mergeTreeAdd(S.Fy.data(), PartsY, S.N);
    core::mergeTreeAdd(S.Fz.data(), PartsZ, S.N);
  } else {
    for (int R = 0; R < Replicas; ++R) {
      core::applySpillAdd(SpillX[R], S.Fx.data());
      core::applySpillAdd(SpillY[R], S.Fy.data());
      core::applySpillAdd(SpillZ[R], S.Fz.data());
    }
  }
  for (int T = 0; T < NumThreads; ++T) {
    S.PotE += Pots[T];
    S.Util.merge(Utils[T]);
    S.D1.merge(D1s[T]);
  }
}

// Per-variant dispatch entry: the force kernels compiled in this TU.
void apps::CFV_VARIANT_NS::moldynForces(MoldynSim &S, MdVersion V) {
  Kernels::run(S, V);
}

#if CFV_VARIANT_PRIMARY
void MoldynSim::computeForces(MdVersion V) {
  std::fill(Fx.begin(), Fx.end(), 0.0f);
  std::fill(Fy.begin(), Fy.end(), 0.0f);
  std::fill(Fz.begin(), Fz.end(), 0.0f);
  PotE = 0.0;
  (ForceFn ? ForceFn : core::dispatch().MoldynForces)(*this, V);
}

void MoldynSim::step(MdVersion V) {
  const float Dt = Opt.TimeStep;
  const float Half = 0.5f * Dt;
  // Kick (with the forces of the current positions), then drift ...
  for (int32_t I = 0; I < N; ++I) {
    Vx[I] += Half * Fx[I];
    Vy[I] += Half * Fy[I];
    Vz[I] += Half * Fz[I];
    X[I] += Dt * Vx[I];
    Y[I] += Dt * Vy[I];
    Z[I] += Dt * Vz[I];
    X[I] -= Box * std::floor(X[I] / Box);
    Y[I] -= Box * std::floor(Y[I] / Box);
    Z[I] -= Box * std::floor(Z[I] / Box);
  }
  // ... then recompute forces and finish the kick.
  computeForces(V);
  for (int32_t I = 0; I < N; ++I) {
    Vx[I] += Half * Fx[I];
    Vy[I] += Half * Fy[I];
    Vz[I] += Half * Fz[I];
  }
}

double MoldynSim::kineticEnergy() const {
  double E = 0.0;
  for (int32_t I = 0; I < N; ++I)
    E += 0.5 * (static_cast<double>(Vx[I]) * Vx[I] +
                static_cast<double>(Vy[I]) * Vy[I] +
                static_cast<double>(Vz[I]) * Vz[I]);
  return E;
}

double MoldynSim::simdUtil() const { return Util.utilization(); }

double MoldynSim::meanD1() const { return D1.mean(); }

MoldynResult apps::runMoldyn(const MoldynOptions &O, MdVersion V,
                             int Iterations, MoldynForceFn ForceFn,
                             int ForceLanes) {
  MoldynSim Sim(O);
  Sim.setForceDispatch(ForceFn);
  // Groups must be packed at the width of the kernel set that consumes
  // them; an explicit ForceFn comes with its table's lane count.
  const int Width = ForceLanes > 0 ? ForceLanes : core::dispatch().Lanes;
  MoldynResult R;
  R.Atoms = Sim.numAtoms();

  const MoldynSim::RebuildTimes Rebuild = Sim.rebuildNeighborList();
  R.NeighborSeconds = Rebuild.Neighbor;
  R.TilingSeconds = Rebuild.Tiling;
  obs::Tracer::instance().recordAt(
      "moldyn:neighbor", "inspector",
      monotonicSeconds() - R.NeighborSeconds - R.TilingSeconds,
      R.NeighborSeconds);
  obs::Tracer::instance().recordAt("moldyn:tile", "inspector",
                                   monotonicSeconds() - R.TilingSeconds,
                                   R.TilingSeconds);
  if (V == MdVersion::TilingGrouping) {
    R.GroupingSeconds = Sim.regroupPairs(Width);
    obs::Tracer::instance().recordAt("moldyn:group", "inspector",
                                     monotonicSeconds() - R.GroupingSeconds,
                                     R.GroupingSeconds);
  }
  R.Pairs = Sim.numPairs();

  WallTimer Compute;
  Sim.computeForces(V); // initial forces for velocity Verlet
  for (int It = 0; It < Iterations; ++It)
    Sim.step(V);
  R.ComputeSeconds = Compute.seconds();

  R.SimdUtil = Sim.simdUtil();
  R.MeanD1 = Sim.meanD1();
  R.D1Hist = Sim.d1Histogram();
  R.UtilHist = Sim.utilHistogram();
  R.FinalKinetic = Sim.kineticEnergy();
  R.FinalPotential = Sim.potentialEnergy();
  return R;
}
#endif // CFV_VARIANT_PRIMARY
