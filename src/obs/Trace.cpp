//===- obs/Trace.cpp - Span tracer implementation -------------------------===//
//
// Part of the cfv project (see obs/Trace.h for the design).
//
//===----------------------------------------------------------------------===//

#include "obs/Trace.h"

#if CFV_OBS

#include <cstdio>
#include <memory>
#include <mutex>

namespace cfv {
namespace obs {

namespace {

/// One thread's bounded span buffer.  Head is the next write slot; when
/// Count has reached capacity the write overwrites the oldest event.
struct Ring {
  std::mutex Mu;
  SpanEvent Events[kTraceRingCapacity];
  std::size_t Head = 0;
  std::size_t Count = 0;
  uint64_t Dropped = 0;
  int Tid = 0;

  void push(const char *Name, const char *Cat, double Start, double Dur) {
    std::lock_guard<std::mutex> Lock(Mu);
    SpanEvent &E = Events[Head];
    if (Count == kTraceRingCapacity)
      ++Dropped; // overwriting the oldest event
    else
      ++Count;
    E.Name = Name;
    E.Cat = Cat;
    E.StartSeconds = Start;
    E.DurSeconds = Dur;
    E.Tid = Tid;
    Head = (Head + 1) % kTraceRingCapacity;
  }
};

/// Global ring directory.  Rings are created once per thread and never
/// freed (the exporter may run after a worker exits); the directory
/// mutex is touched only on ring creation and collection.
struct RingDir {
  std::mutex Mu;
  std::vector<std::unique_ptr<Ring>> Rings;
};

RingDir &ringDir() {
  static RingDir *D = new RingDir();
  return *D;
}

Ring &myRing() {
  thread_local Ring *R = [] {
    RingDir &D = ringDir();
    std::lock_guard<std::mutex> Lock(D.Mu);
    D.Rings.emplace_back(new Ring());
    D.Rings.back()->Tid = static_cast<int>(D.Rings.size());
    return D.Rings.back().get();
  }();
  return *R;
}

} // namespace

Tracer &Tracer::instance() {
  static Tracer *T = new Tracer();
  return *T;
}

void Tracer::recordAt(const char *Name, const char *Cat, double StartSeconds,
                      double DurSeconds) {
  if (!enabled())
    return;
  myRing().push(Name, Cat, StartSeconds, DurSeconds);
}

std::vector<SpanEvent> Tracer::collect() const {
  RingDir &D = ringDir();
  std::vector<SpanEvent> Out;
  std::lock_guard<std::mutex> DirLock(D.Mu);
  for (const std::unique_ptr<Ring> &RP : D.Rings) {
    Ring &R = *RP;
    std::lock_guard<std::mutex> Lock(R.Mu);
    // Oldest-first: when full the oldest element sits at Head.
    const std::size_t First =
        R.Count == kTraceRingCapacity ? R.Head : 0;
    for (std::size_t I = 0; I < R.Count; ++I)
      Out.push_back(R.Events[(First + I) % kTraceRingCapacity]);
  }
  return Out;
}

uint64_t Tracer::droppedCount() const {
  RingDir &D = ringDir();
  uint64_t Sum = 0;
  std::lock_guard<std::mutex> DirLock(D.Mu);
  for (const std::unique_ptr<Ring> &RP : D.Rings) {
    std::lock_guard<std::mutex> Lock(RP->Mu);
    Sum += RP->Dropped;
  }
  return Sum;
}

void Tracer::clear() {
  RingDir &D = ringDir();
  std::lock_guard<std::mutex> DirLock(D.Mu);
  for (const std::unique_ptr<Ring> &RP : D.Rings) {
    std::lock_guard<std::mutex> Lock(RP->Mu);
    RP->Head = 0;
    RP->Count = 0;
    RP->Dropped = 0;
  }
}

namespace {

std::string jsonEscape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (char C : S) {
    if (C == '"' || C == '\\')
      Out.push_back('\\');
    if (static_cast<unsigned char>(C) < 0x20) {
      char Buf[8];
      std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
      Out += Buf;
      continue;
    }
    Out.push_back(C);
  }
  return Out;
}

} // namespace

std::string Tracer::renderChromeJson() const {
  const std::vector<SpanEvent> Events = collect();
  std::string Out = "{\"traceEvents\":[";
  char Buf[160];
  bool First = true;
  for (const SpanEvent &E : Events) {
    if (!First)
      Out += ",";
    First = false;
    // ts / dur are microseconds; complete ("X") events need no pairing.
    std::snprintf(Buf, sizeof(Buf),
                  "\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,\"pid\":1,"
                  "\"tid\":%d}",
                  E.StartSeconds * 1e6, E.DurSeconds * 1e6, E.Tid);
    Out += "\n{\"name\":\"" + jsonEscape(E.Name) + "\",\"cat\":\"" +
           jsonEscape(E.Cat) + "\",";
    Out += Buf;
  }
  Out += "\n]}\n";
  return Out;
}

bool Tracer::writeChromeJson(const std::string &Path) const {
  std::FILE *F = std::fopen(Path.c_str(), "w");
  if (!F) {
    std::fprintf(stderr, "cfv: cannot open trace file '%s'\n", Path.c_str());
    return false;
  }
  const std::string Json = renderChromeJson();
  const bool Ok =
      std::fwrite(Json.data(), 1, Json.size(), F) == Json.size();
  std::fclose(F);
  if (!Ok)
    std::fprintf(stderr, "cfv: short write to trace file '%s'\n",
                 Path.c_str());
  return Ok;
}

} // namespace obs
} // namespace cfv

#endif // CFV_OBS
