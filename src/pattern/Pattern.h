//===- pattern/Pattern.h - Index-stream pattern classes ---------*- C++ -*-===//
//
// Part of the cfv project: reproduction of Jiang & Agrawal, CGO 2018.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Data model of the pattern-classification subsystem (ROADMAP item 3,
/// the Intelligent-Unrolling / Autovesk direction): each tile of an
/// irregular index stream is scanned once during inspection and tagged
/// with one of five classes, and the executor dispatches a kernel
/// specialized to that class instead of paying the general
/// conflict-handling cost (the paper's 2 + 8*D1 / 7 + 8*D2) on every
/// vector.
///
/// The classification is a derived artifact with the same lifecycle as
/// the tiling schedule: computed once per dataset, attached to
/// inspector::TilingResult, memoized by graph::PreparedGraph, and cached
/// by service::DatasetCache so warm requests pay zero classify cost.
/// Because artifacts outlive the code that built them (LRU cache,
/// cross-request sharing), the result carries an explicit schema version;
/// consumers reject mismatches instead of misreading a stale layout.
///
/// Everything here is ISA-independent plain data.  The classifier lives
/// in pattern/Classify.h (baseline-compiled); the specialized kernels in
/// pattern/Dispatch.h (width-generic templates instantiated by the
/// variant-compiled app TUs).
///
//===----------------------------------------------------------------------===//

#ifndef CFV_PATTERN_PATTERN_H
#define CFV_PATTERN_PATTERN_H

#ifndef CFV_OBS
#define CFV_OBS 1
#endif

#include "util/Stats.h"

#include <cstdint>
#include <vector>

namespace cfv {
namespace pattern {

/// Bumped whenever TileInfo / PatternResult change layout or the
/// classifier's thresholds change meaning.  service::DatasetCache folds
/// this into its key (graph::kDerivedSchemaVersion), so a format change
/// invalidates persisted pattern/tiling artifacts instead of serving
/// them misinterpreted.
constexpr int kPatternSchemaVersion = 1;

/// Classes a tile's index stream can land in, in dispatch-precedence
/// order: the first class whose predicate holds wins, and earlier
/// classes have strictly cheaper kernels.
enum class TileClass : uint8_t {
  /// No duplicate index inside any aligned 16-lane window of the tile:
  /// the kernel is a pure gather/compute/scatter, no conflict handling
  /// at all.  Checked at 16 lanes (the widest backend), so the tag is
  /// valid for any lane width <= 16.
  ConflictFree,
  /// Non-decreasing indices: duplicates only in contiguous runs.  The
  /// kernel reduces each run with an in-register segmented scan
  /// (log2(lanes) shift/blend steps) and scatters once per run.
  Monotone,
  /// At most kMaxAlphabet distinct targets in the whole tile: the kernel
  /// privatizes into a register-resident accumulator tile and touches
  /// memory once per tile, not once per vector.
  SmallAlphabet,
  /// One dominant target absorbs most of the tile: its lanes fold into a
  /// scalar accumulator and the sparse remainder goes through Alg 1.
  HotBucket,
  /// No exploitable structure: the existing Alg1/Alg2/adaptive machinery
  /// runs unchanged.
  General,
};
constexpr int kNumTileClasses = 5;

/// Stable metric-label / JSON name for \p C ("conflict_free", ...).
const char *tileClassName(TileClass C);

/// ConflictFree is certified on aligned windows of this many lanes --
/// the widest compiled backend -- so every narrower backend's aligned
/// vectors are sub-windows of certified-distinct ones.
constexpr int kClassifyWindow = 16;

/// SmallAlphabet ceiling: one accumulator register tile's worth.
constexpr int kMaxAlphabet = 16;

/// HotBucket threshold: the dominant target must absorb strictly more
/// than this fraction of the tile's references.  Exactly 1/2 so a
/// single-pass majority vote (Boyer-Moore) finds the candidate without a
/// per-target count table, and the reference classifier in verify/Gen
/// provably agrees on every stream.
constexpr float kHotShareMin = 0.5f;

/// Per-tile classification outcome plus the stats that drove it.
struct TileInfo {
  TileClass Class = TileClass::General;
  /// Distinct targets referenced by the tile, exact up to
  /// kMaxAlphabet + 1 and saturated there ("more than an alphabet").
  int32_t Distinct = 0;
  /// Longest run of equal consecutive indices.
  int32_t MaxRun = 0;
  /// Mean duplicate-lane count per aligned 16-lane window (sampled): the
  /// D1 the paper's cost model would charge this tile.
  float D1Estimate = 0.0f;
  /// Dominant target and its share of the tile (valid when Class is
  /// HotBucket; best-effort stats otherwise).
  int32_t HotIdx = -1;
  float HotShare = 0.0f;
  /// The tile's distinct targets when Class is SmallAlphabet
  /// (AlphabetSize entries, ascending); unused otherwise.
  int32_t AlphabetSize = 0;
  int32_t Alphabet[kMaxAlphabet] = {};
};

/// Classification of one tiled (or pseudo-tiled) index stream.
struct PatternResult {
  int SchemaVersion = kPatternSchemaVersion;
  /// Block size the owning tiling used; -1 for pseudo-tiled flat streams
  /// (classifyStream), whose tiles are fixed-size windows.
  int BlockBits = -1;
  /// Pseudo-tile length when BlockBits == -1 (tile t spans
  /// [t*TileLen, min((t+1)*TileLen, N))); 0 for inspector tilings.
  int64_t TileLen = 0;
  /// One entry per tile, in tile order.
  std::vector<TileInfo> Tiles;
  /// Tiles per class, indexed by TileClass.
  int64_t Counts[kNumTileClasses] = {};

  int64_t numTiles() const { return static_cast<int64_t>(Tiles.size()); }

  /// Resident bytes, for the dataset cache's byte budget.
  int64_t approxBytes() const {
    return static_cast<int64_t>(Tiles.capacity() * sizeof(TileInfo) +
                                sizeof(PatternResult));
  }
};

/// Executor-side tally: tiles and vector passes routed to each class by
/// pattern::runTileSpecialized.  Workers accumulate locally and the run
/// facade flushes totals through obs (recordDispatch) once per run.
struct DispatchCounts {
  int64_t Tiles[kNumTileClasses] = {};
  int64_t Vectors[kNumTileClasses] = {};
  /// Useful lanes per vector pass, one histogram per class, so the
  /// per-class lane utilization is observable (cfv_pattern_useful_lanes).
  LaneHistogram Util[kNumTileClasses];
  /// 32-bit lanes of the executing backend; sizes the histogram buckets.
  int LaneWidth = 16;

  void merge(const DispatchCounts &O) {
    for (int C = 0; C < kNumTileClasses; ++C) {
      Tiles[C] += O.Tiles[C];
      Vectors[C] += O.Vectors[C];
      Util[C].merge(O.Util[C]);
    }
  }
  int64_t totalTiles() const {
    int64_t S = 0;
    for (int64_t T : Tiles)
      S += T;
    return S;
  }
};

/// Resolved subsystem mode.  RunOptions carries a request (core's
/// PatternMode, default "defer to CFV_PATTERN"); this is the answer.
enum class Mode {
  Off,          ///< no classification, no dispatch
  ClassifyOnly, ///< classify + export stats, run the general kernels
  On,           ///< classify + dispatch specialized kernels
};
const char *modeName(Mode M);

/// CFV_PATTERN=off|classify-only|on (unset -> On; unknown values note
/// once to stderr and fall back to On, following util/Env.h's contract).
Mode envMode();

// Out-of-line obs entry points (defined in Classify.cpp, baseline pass
// only) so variant-compiled TUs feed the one metrics registry -- the
// same linkage discipline as obs/Kernel.h.

#if CFV_OBS

/// Flushes cfv_pattern_tiles_total{class=...} once per classification.
void recordClassification(const PatternResult &R);

/// Flushes cfv_pattern_dispatch_total{class=...}, the per-class
/// vector-pass counters, and the per-class lane-utilization histograms
/// once per run.
void recordDispatch(const DispatchCounts &C);

#else

inline void recordClassification(const PatternResult &) {}
inline void recordDispatch(const DispatchCounts &) {}

#endif // CFV_OBS

} // namespace pattern
} // namespace cfv

#endif // CFV_PATTERN_PATTERN_H
