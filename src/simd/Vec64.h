//===- simd/Vec64.h - 8-lane 64-bit vectors ---------------------*- C++ -*-===//
//
// Part of the cfv project: reproduction of Jiang & Agrawal, CGO 2018.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// VecI64<Backend> and VecF64<Backend>: 8-lane vectors of int64_t /
/// double.  The paper evaluates 32-bit elements (16 lanes); AVX-512CD's
/// vpconflictq makes the same in-vector reduction work on 64-bit data --
/// double-precision forces or wide accumulators -- at half the width.
/// Masks reuse Mask16 with only the low 8 bits significant
/// (kAllLanes64); all helpers in Mask.h operate unchanged.
///
/// The API mirrors Vec.h lane for lane; gathers/scatters take 64-bit
/// index vectors (vpgatherqq addressing).
///
//===----------------------------------------------------------------------===//

#ifndef CFV_SIMD_VEC64_H
#define CFV_SIMD_VEC64_H

#include "simd/Backend.h"
#include "simd/Mask.h"

#include <cassert>
#include <cstdint>

namespace cfv {
namespace simd {

/// Number of 64-bit lanes in one vector.
inline constexpr int kLanes64 = 8;

/// All 8 lanes of a 64-bit vector active.
inline constexpr Mask16 kAllLanes64 = 0x00FF;

template <typename B> struct VecI64;
template <typename B> struct VecF64;

//===----------------------------------------------------------------------===//
// Scalar backend
//===----------------------------------------------------------------------===//

/// 8 x int64_t, portable emulation backend.
template <> struct VecI64<backend::Scalar> {
  alignas(64) int64_t Lane[kLanes64];

  static VecI64 zero() { return broadcast(0); }

  static VecI64 broadcast(int64_t X) {
    VecI64 R;
    for (int64_t &L : R.Lane)
      L = X;
    return R;
  }

  static VecI64 iota() {
    VecI64 R;
    for (int I = 0; I < kLanes64; ++I)
      R.Lane[I] = I;
    return R;
  }

  static VecI64 load(const int64_t *P) {
    VecI64 R;
    for (int I = 0; I < kLanes64; ++I)
      R.Lane[I] = P[I];
    return R;
  }

  static VecI64 maskLoad(VecI64 Src, Mask16 M, const int64_t *P) {
    for (int I = 0; I < kLanes64; ++I)
      if (testLane(M, I))
        Src.Lane[I] = P[I];
    return Src;
  }

  static VecI64 gather(const int64_t *Base, VecI64 Idx) {
    VecI64 R;
    for (int I = 0; I < kLanes64; ++I)
      R.Lane[I] = Base[Idx.Lane[I]];
    return R;
  }

  static VecI64 maskGather(VecI64 Src, Mask16 M, const int64_t *Base,
                           VecI64 Idx) {
    for (int I = 0; I < kLanes64; ++I)
      if (testLane(M, I))
        Src.Lane[I] = Base[Idx.Lane[I]];
    return Src;
  }

  void store(int64_t *P) const {
    for (int I = 0; I < kLanes64; ++I)
      P[I] = Lane[I];
  }

  void maskStore(Mask16 M, int64_t *P) const {
    for (int I = 0; I < kLanes64; ++I)
      if (testLane(M, I))
        P[I] = Lane[I];
  }

  void scatter(int64_t *Base, VecI64 Idx) const {
    for (int I = 0; I < kLanes64; ++I)
      Base[Idx.Lane[I]] = Lane[I];
  }

  void maskScatter(Mask16 M, int64_t *Base, VecI64 Idx) const {
    for (int I = 0; I < kLanes64; ++I)
      if (testLane(M, I))
        Base[Idx.Lane[I]] = Lane[I];
  }

  int64_t extract(int L) const {
    assert(L >= 0 && L < kLanes64 && "lane out of range");
    return Lane[L];
  }

  VecI64 broadcastLane(int L) const { return broadcast(extract(L)); }

  static VecI64 blend(Mask16 M, VecI64 A, VecI64 B) {
    for (int I = 0; I < kLanes64; ++I)
      if (testLane(M, I))
        A.Lane[I] = B.Lane[I];
    return A;
  }

  static VecI64 compress(Mask16 M, VecI64 V) {
    VecI64 R = zero();
    int Out = 0;
    for (int I = 0; I < kLanes64; ++I)
      if (testLane(M, I))
        R.Lane[Out++] = V.Lane[I];
    return R;
  }

  static VecI64 expand(Mask16 M, VecI64 V) {
    VecI64 R = zero();
    int In = 0;
    for (int I = 0; I < kLanes64; ++I)
      if (testLane(M, I))
        R.Lane[I] = V.Lane[In++];
    return R;
  }

  int compressStore(Mask16 M, int64_t *P) const {
    int Out = 0;
    for (int I = 0; I < kLanes64; ++I)
      if (testLane(M, I))
        P[Out++] = Lane[I];
    return Out;
  }

  friend VecI64 operator+(VecI64 A, VecI64 B) {
    for (int I = 0; I < kLanes64; ++I)
      A.Lane[I] += B.Lane[I];
    return A;
  }
  friend VecI64 operator-(VecI64 A, VecI64 B) {
    for (int I = 0; I < kLanes64; ++I)
      A.Lane[I] -= B.Lane[I];
    return A;
  }
  friend VecI64 operator*(VecI64 A, VecI64 B) {
    for (int I = 0; I < kLanes64; ++I)
      A.Lane[I] *= B.Lane[I];
    return A;
  }
  friend VecI64 operator&(VecI64 A, VecI64 B) {
    for (int I = 0; I < kLanes64; ++I)
      A.Lane[I] &= B.Lane[I];
    return A;
  }
  friend VecI64 operator|(VecI64 A, VecI64 B) {
    for (int I = 0; I < kLanes64; ++I)
      A.Lane[I] |= B.Lane[I];
    return A;
  }

  static VecI64 min(VecI64 A, VecI64 B) {
    for (int I = 0; I < kLanes64; ++I)
      A.Lane[I] = A.Lane[I] < B.Lane[I] ? A.Lane[I] : B.Lane[I];
    return A;
  }
  static VecI64 max(VecI64 A, VecI64 B) {
    for (int I = 0; I < kLanes64; ++I)
      A.Lane[I] = A.Lane[I] > B.Lane[I] ? A.Lane[I] : B.Lane[I];
    return A;
  }

  Mask16 eq(VecI64 O) const {
    Mask16 M = 0;
    for (int I = 0; I < kLanes64; ++I)
      if (Lane[I] == O.Lane[I])
        M |= laneBit(I);
    return M;
  }
  Mask16 lt(VecI64 O) const {
    Mask16 M = 0;
    for (int I = 0; I < kLanes64; ++I)
      if (Lane[I] < O.Lane[I])
        M |= laneBit(I);
    return M;
  }
  Mask16 gt(VecI64 O) const {
    Mask16 M = 0;
    for (int I = 0; I < kLanes64; ++I)
      if (Lane[I] > O.Lane[I])
        M |= laneBit(I);
    return M;
  }

  Mask16 maskEq(Mask16 Active, VecI64 O) const {
    return static_cast<Mask16>(eq(O) & Active);
  }
};

/// 8 x double, portable emulation backend.
template <> struct VecF64<backend::Scalar> {
  alignas(64) double Lane[kLanes64];

  using IdxVec = VecI64<backend::Scalar>;

  static VecF64 zero() { return broadcast(0.0); }

  static VecF64 broadcast(double X) {
    VecF64 R;
    for (double &L : R.Lane)
      L = X;
    return R;
  }

  static VecF64 load(const double *P) {
    VecF64 R;
    for (int I = 0; I < kLanes64; ++I)
      R.Lane[I] = P[I];
    return R;
  }

  static VecF64 maskLoad(VecF64 Src, Mask16 M, const double *P) {
    for (int I = 0; I < kLanes64; ++I)
      if (testLane(M, I))
        Src.Lane[I] = P[I];
    return Src;
  }

  static VecF64 gather(const double *Base, IdxVec Idx) {
    VecF64 R;
    for (int I = 0; I < kLanes64; ++I)
      R.Lane[I] = Base[Idx.Lane[I]];
    return R;
  }

  static VecF64 maskGather(VecF64 Src, Mask16 M, const double *Base,
                           IdxVec Idx) {
    for (int I = 0; I < kLanes64; ++I)
      if (testLane(M, I))
        Src.Lane[I] = Base[Idx.Lane[I]];
    return Src;
  }

  void store(double *P) const {
    for (int I = 0; I < kLanes64; ++I)
      P[I] = Lane[I];
  }

  void maskStore(Mask16 M, double *P) const {
    for (int I = 0; I < kLanes64; ++I)
      if (testLane(M, I))
        P[I] = Lane[I];
  }

  void scatter(double *Base, IdxVec Idx) const {
    for (int I = 0; I < kLanes64; ++I)
      Base[Idx.Lane[I]] = Lane[I];
  }

  void maskScatter(Mask16 M, double *Base, IdxVec Idx) const {
    for (int I = 0; I < kLanes64; ++I)
      if (testLane(M, I))
        Base[Idx.Lane[I]] = Lane[I];
  }

  double extract(int L) const {
    assert(L >= 0 && L < kLanes64 && "lane out of range");
    return Lane[L];
  }

  VecF64 broadcastLane(int L) const { return broadcast(extract(L)); }

  static VecF64 blend(Mask16 M, VecF64 A, VecF64 B) {
    for (int I = 0; I < kLanes64; ++I)
      if (testLane(M, I))
        A.Lane[I] = B.Lane[I];
    return A;
  }

  static VecF64 compress(Mask16 M, VecF64 V) {
    VecF64 R = zero();
    int Out = 0;
    for (int I = 0; I < kLanes64; ++I)
      if (testLane(M, I))
        R.Lane[Out++] = V.Lane[I];
    return R;
  }

  static VecF64 expand(Mask16 M, VecF64 V) {
    VecF64 R = zero();
    int In = 0;
    for (int I = 0; I < kLanes64; ++I)
      if (testLane(M, I))
        R.Lane[I] = V.Lane[In++];
    return R;
  }

  int compressStore(Mask16 M, double *P) const {
    int Out = 0;
    for (int I = 0; I < kLanes64; ++I)
      if (testLane(M, I))
        P[Out++] = Lane[I];
    return Out;
  }

  friend VecF64 operator+(VecF64 A, VecF64 B) {
    for (int I = 0; I < kLanes64; ++I)
      A.Lane[I] += B.Lane[I];
    return A;
  }
  friend VecF64 operator-(VecF64 A, VecF64 B) {
    for (int I = 0; I < kLanes64; ++I)
      A.Lane[I] -= B.Lane[I];
    return A;
  }
  friend VecF64 operator*(VecF64 A, VecF64 B) {
    for (int I = 0; I < kLanes64; ++I)
      A.Lane[I] *= B.Lane[I];
    return A;
  }
  friend VecF64 operator/(VecF64 A, VecF64 B) {
    for (int I = 0; I < kLanes64; ++I)
      A.Lane[I] /= B.Lane[I];
    return A;
  }

  static VecF64 min(VecF64 A, VecF64 B) {
    for (int I = 0; I < kLanes64; ++I)
      A.Lane[I] = A.Lane[I] < B.Lane[I] ? A.Lane[I] : B.Lane[I];
    return A;
  }
  static VecF64 max(VecF64 A, VecF64 B) {
    for (int I = 0; I < kLanes64; ++I)
      A.Lane[I] = A.Lane[I] > B.Lane[I] ? A.Lane[I] : B.Lane[I];
    return A;
  }

  Mask16 eq(VecF64 O) const {
    Mask16 M = 0;
    for (int I = 0; I < kLanes64; ++I)
      if (Lane[I] == O.Lane[I])
        M |= laneBit(I);
    return M;
  }
  Mask16 lt(VecF64 O) const {
    Mask16 M = 0;
    for (int I = 0; I < kLanes64; ++I)
      if (Lane[I] < O.Lane[I])
        M |= laneBit(I);
    return M;
  }
  Mask16 gt(VecF64 O) const {
    Mask16 M = 0;
    for (int I = 0; I < kLanes64; ++I)
      if (Lane[I] > O.Lane[I])
        M |= laneBit(I);
    return M;
  }
};

//===----------------------------------------------------------------------===//
// AVX-512 backend
//===----------------------------------------------------------------------===//

#if CFV_HAVE_AVX512

/// 8 x int64_t backed by one zmm register.
template <> struct VecI64<backend::Avx512> {
  __m512i Raw;

  VecI64() = default;
  explicit VecI64(__m512i R) : Raw(R) {}

  static VecI64 zero() { return VecI64(_mm512_setzero_si512()); }
  static VecI64 broadcast(int64_t X) { return VecI64(_mm512_set1_epi64(X)); }

  static VecI64 iota() {
    return VecI64(_mm512_setr_epi64(0, 1, 2, 3, 4, 5, 6, 7));
  }

  static VecI64 load(const int64_t *P) {
    return VecI64(_mm512_loadu_si512(P));
  }

  static VecI64 maskLoad(VecI64 Src, Mask16 M, const int64_t *P) {
    return VecI64(
        _mm512_mask_loadu_epi64(Src.Raw, static_cast<__mmask8>(M), P));
  }

  static VecI64 gather(const int64_t *Base, VecI64 Idx) {
    return VecI64(_mm512_i64gather_epi64(Idx.Raw, Base, 8));
  }

  static VecI64 maskGather(VecI64 Src, Mask16 M, const int64_t *Base,
                           VecI64 Idx) {
    return VecI64(_mm512_mask_i64gather_epi64(
        Src.Raw, static_cast<__mmask8>(M), Idx.Raw, Base, 8));
  }

  void store(int64_t *P) const { _mm512_storeu_si512(P, Raw); }

  void maskStore(Mask16 M, int64_t *P) const {
    _mm512_mask_storeu_epi64(P, static_cast<__mmask8>(M), Raw);
  }

  void scatter(int64_t *Base, VecI64 Idx) const {
    _mm512_i64scatter_epi64(Base, Idx.Raw, Raw, 8);
  }

  void maskScatter(Mask16 M, int64_t *Base, VecI64 Idx) const {
    _mm512_mask_i64scatter_epi64(Base, static_cast<__mmask8>(M), Idx.Raw,
                                 Raw, 8);
  }

  int64_t extract(int L) const {
    assert(L >= 0 && L < kLanes64 && "lane out of range");
    alignas(64) int64_t Buf[kLanes64];
    _mm512_store_si512(Buf, Raw);
    return Buf[L];
  }

  VecI64 broadcastLane(int L) const {
    return VecI64(_mm512_permutexvar_epi64(_mm512_set1_epi64(L), Raw));
  }

  static VecI64 blend(Mask16 M, VecI64 A, VecI64 B) {
    return VecI64(
        _mm512_mask_mov_epi64(A.Raw, static_cast<__mmask8>(M), B.Raw));
  }

  static VecI64 compress(Mask16 M, VecI64 V) {
    return VecI64(
        _mm512_maskz_compress_epi64(static_cast<__mmask8>(M), V.Raw));
  }

  static VecI64 expand(Mask16 M, VecI64 V) {
    return VecI64(
        _mm512_maskz_expand_epi64(static_cast<__mmask8>(M), V.Raw));
  }

  int compressStore(Mask16 M, int64_t *P) const {
    _mm512_mask_compressstoreu_epi64(P, static_cast<__mmask8>(M), Raw);
    return popcount(M);
  }

  friend VecI64 operator+(VecI64 A, VecI64 B) {
    return VecI64(_mm512_add_epi64(A.Raw, B.Raw));
  }
  friend VecI64 operator-(VecI64 A, VecI64 B) {
    return VecI64(_mm512_sub_epi64(A.Raw, B.Raw));
  }
  friend VecI64 operator*(VecI64 A, VecI64 B) {
    return VecI64(_mm512_mullo_epi64(A.Raw, B.Raw)); // AVX512DQ
  }
  friend VecI64 operator&(VecI64 A, VecI64 B) {
    return VecI64(_mm512_and_si512(A.Raw, B.Raw));
  }
  friend VecI64 operator|(VecI64 A, VecI64 B) {
    return VecI64(_mm512_or_si512(A.Raw, B.Raw));
  }

  static VecI64 min(VecI64 A, VecI64 B) {
    return VecI64(_mm512_min_epi64(A.Raw, B.Raw));
  }
  static VecI64 max(VecI64 A, VecI64 B) {
    return VecI64(_mm512_max_epi64(A.Raw, B.Raw));
  }

  Mask16 eq(VecI64 O) const { return _mm512_cmpeq_epi64_mask(Raw, O.Raw); }
  Mask16 lt(VecI64 O) const { return _mm512_cmplt_epi64_mask(Raw, O.Raw); }
  Mask16 gt(VecI64 O) const { return _mm512_cmpgt_epi64_mask(Raw, O.Raw); }

  Mask16 maskEq(Mask16 Active, VecI64 O) const {
    return _mm512_mask_cmpeq_epi64_mask(static_cast<__mmask8>(Active), Raw,
                                        O.Raw);
  }
};

/// 8 x double backed by one zmm register.
template <> struct VecF64<backend::Avx512> {
  __m512d Raw;

  using IdxVec = VecI64<backend::Avx512>;

  VecF64() = default;
  explicit VecF64(__m512d R) : Raw(R) {}

  static VecF64 zero() { return VecF64(_mm512_setzero_pd()); }
  static VecF64 broadcast(double X) { return VecF64(_mm512_set1_pd(X)); }

  static VecF64 load(const double *P) { return VecF64(_mm512_loadu_pd(P)); }

  static VecF64 maskLoad(VecF64 Src, Mask16 M, const double *P) {
    return VecF64(
        _mm512_mask_loadu_pd(Src.Raw, static_cast<__mmask8>(M), P));
  }

  static VecF64 gather(const double *Base, IdxVec Idx) {
    return VecF64(_mm512_i64gather_pd(Idx.Raw, Base, 8));
  }

  static VecF64 maskGather(VecF64 Src, Mask16 M, const double *Base,
                           IdxVec Idx) {
    return VecF64(_mm512_mask_i64gather_pd(
        Src.Raw, static_cast<__mmask8>(M), Idx.Raw, Base, 8));
  }

  void store(double *P) const { _mm512_storeu_pd(P, Raw); }

  void maskStore(Mask16 M, double *P) const {
    _mm512_mask_storeu_pd(P, static_cast<__mmask8>(M), Raw);
  }

  void scatter(double *Base, IdxVec Idx) const {
    _mm512_i64scatter_pd(Base, Idx.Raw, Raw, 8);
  }

  void maskScatter(Mask16 M, double *Base, IdxVec Idx) const {
    _mm512_mask_i64scatter_pd(Base, static_cast<__mmask8>(M), Idx.Raw, Raw,
                              8);
  }

  double extract(int L) const {
    assert(L >= 0 && L < kLanes64 && "lane out of range");
    alignas(64) double Buf[kLanes64];
    _mm512_store_pd(Buf, Raw);
    return Buf[L];
  }

  VecF64 broadcastLane(int L) const {
    return VecF64(_mm512_permutexvar_pd(_mm512_set1_epi64(L), Raw));
  }

  static VecF64 blend(Mask16 M, VecF64 A, VecF64 B) {
    return VecF64(
        _mm512_mask_mov_pd(A.Raw, static_cast<__mmask8>(M), B.Raw));
  }

  static VecF64 compress(Mask16 M, VecF64 V) {
    return VecF64(
        _mm512_maskz_compress_pd(static_cast<__mmask8>(M), V.Raw));
  }

  static VecF64 expand(Mask16 M, VecF64 V) {
    return VecF64(_mm512_maskz_expand_pd(static_cast<__mmask8>(M), V.Raw));
  }

  int compressStore(Mask16 M, double *P) const {
    _mm512_mask_compressstoreu_pd(P, static_cast<__mmask8>(M), Raw);
    return popcount(M);
  }

  friend VecF64 operator+(VecF64 A, VecF64 B) {
    return VecF64(_mm512_add_pd(A.Raw, B.Raw));
  }
  friend VecF64 operator-(VecF64 A, VecF64 B) {
    return VecF64(_mm512_sub_pd(A.Raw, B.Raw));
  }
  friend VecF64 operator*(VecF64 A, VecF64 B) {
    return VecF64(_mm512_mul_pd(A.Raw, B.Raw));
  }
  friend VecF64 operator/(VecF64 A, VecF64 B) {
    return VecF64(_mm512_div_pd(A.Raw, B.Raw));
  }

  static VecF64 min(VecF64 A, VecF64 B) {
    return VecF64(_mm512_min_pd(A.Raw, B.Raw));
  }
  static VecF64 max(VecF64 A, VecF64 B) {
    return VecF64(_mm512_max_pd(A.Raw, B.Raw));
  }

  Mask16 eq(VecF64 O) const {
    return _mm512_cmp_pd_mask(Raw, O.Raw, _CMP_EQ_OQ);
  }
  Mask16 lt(VecF64 O) const {
    return _mm512_cmp_pd_mask(Raw, O.Raw, _CMP_LT_OQ);
  }
  Mask16 gt(VecF64 O) const {
    return _mm512_cmp_pd_mask(Raw, O.Raw, _CMP_GT_OQ);
  }
};

#endif // CFV_HAVE_AVX512

} // namespace simd
} // namespace cfv

#endif // CFV_SIMD_VEC64_H
