//===- apps/mesh/MeshSolver.h - Unstructured-mesh edge solver ---*- C++ -*-===//
//
// Part of the cfv project: reproduction of Jiang & Agrawal, CGO 2018.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The unstructured-grid solver family §2.2 cites alongside Moldyn
/// ("unstructured grid-based solver like Euler"): a conservative
/// edge-based relaxation on a static mesh.  Every mesh edge computes a
/// flux from its two endpoint cells and accumulates it into both --
/// the same dual associative reduction as Moldyn's force loop, but with
/// *static* connectivity, which is inspector/executor's favorable case:
/// the one-time grouping amortizes over arbitrarily many sweeps.
///
///   Flux(e) = K[e] * (U[a] - U[b]);   Res[a] -= Flux;  Res[b] += Flux;
///   U[c] += dt * Res[c]
///
/// (a graph diffusion / explicit heat step; conservation of sum(U) is the
/// physical invariant the tests pin down).
///
//===----------------------------------------------------------------------===//

#ifndef CFV_APPS_MESH_MESHSOLVER_H
#define CFV_APPS_MESH_MESHSOLVER_H

#include "core/RunOptions.h"
#include "util/AlignedAlloc.h"
#include "util/Stats.h"

#include <cstdint>

namespace cfv {
namespace apps {

/// Execution strategies for the flux sweep.
enum class MeshVersion { Serial, Mask, Invec, Grouping };

const char *versionName(MeshVersion V);

/// A static unstructured mesh: cells plus undirected edges (A[e], B[e])
/// with per-edge conductivity K[e].
struct Mesh {
  int32_t NumCells = 0;
  AlignedVector<int32_t> EdgeA;
  AlignedVector<int32_t> EdgeB;
  AlignedVector<float> K;

  int64_t numEdges() const { return static_cast<int64_t>(EdgeA.size()); }
};

/// Builds a randomized triangulated 2D grid of Nx x Ny cells: the
/// 4-neighbor lattice edges plus one diagonal per quad (coin-flipped),
/// with conductivities in [KMin, KMax).  This is the shape of a typical
/// unstructured CFD mesh's dual graph.
Mesh makeTriangulatedGrid(int32_t Nx, int32_t Ny, uint64_t Seed,
                          float KMin = 0.05f, float KMax = 0.25f);

struct MeshRunResult {
  AlignedVector<float> U;   ///< final cell values
  double ComputeSeconds = 0.0;
  double GroupSeconds = 0.0; ///< one-time pair grouping (Grouping only)
  double SimdUtil = 1.0;     ///< Mask only
  double MeanD1 = 0.0;       ///< Invec only
  /// Per-pass D1 / useful-lane distributions (empty unless the version
  /// that ran records them and observability is compiled in).  Mesh D1
  /// counts both endpoint reductions per block (see MeanD1's / 2.0).
  LaneHistogram D1Hist;
  LaneHistogram UtilHist;
};

/// Runs \p Sweeps explicit diffusion steps from initial state \p U0
/// (NumCells entries) with time step \p Dt.  Stability requires
/// Dt * max_degree * max(K) < 1; the defaults of makeTriangulatedGrid
/// with Dt <= 0.5 are safe.  \p O carries the parallel-engine thread
/// count.
MeshRunResult runMeshDiffusion(const Mesh &M, const float *U0, int Sweeps,
                               float Dt, MeshVersion V,
                               const core::RunOptions &O);

/// Deprecated single-core convenience overload; prefer the RunOptions
/// overload or cfv::run (core/Api.h).
MeshRunResult runMeshDiffusion(const Mesh &M, const float *U0, int Sweeps,
                               float Dt, MeshVersion V);

} // namespace apps
} // namespace cfv

#endif // CFV_APPS_MESH_MESHSOLVER_H
