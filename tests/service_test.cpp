//===- tests/service_test.cpp - Serving layer end-to-end (in-process) -----===//
//
// Part of the cfv project: reproduction of Jiang & Agrawal, CGO 2018.
//
//===----------------------------------------------------------------------===//
//
// Drives service::Service directly (no subprocess): the cold->warm cache
// contract, schedule reuse across requests, structured rejection of
// unsupported apps, queue-full backpressure, in-queue deadline expiry,
// and the request/response JSON mapping shared with cfv_serve.
//
//===----------------------------------------------------------------------===//

#include "service/Service.h"

#include "gtest/gtest.h"

#include <chrono>
#include <thread>

using namespace cfv;
using namespace cfv::service;

namespace {

/// A small ring-of-cliques graph: enough structure that every graph app
/// terminates quickly but the inspector has real work to do.
graph::EdgeList testGraph(bool Weighted) {
  graph::EdgeList G;
  constexpr int32_t Cliques = 40, Size = 8;
  G.NumNodes = Cliques * Size;
  for (int32_t C = 0; C < Cliques; ++C) {
    const int32_t Base = C * Size;
    for (int32_t I = 0; I < Size; ++I)
      for (int32_t J = 0; J < Size; ++J)
        if (I != J) {
          G.Src.push_back(Base + I);
          G.Dst.push_back(Base + J);
        }
    G.Src.push_back(Base);
    G.Dst.push_back((Base + Size) % G.NumNodes);
  }
  if (Weighted) {
    G.Weight.resize(G.numEdges());
    for (int64_t I = 0; I < G.numEdges(); ++I)
      G.Weight[I] = 1.0f + static_cast<float>(I % 5);
  }
  return G;
}

Service::Config testConfig() {
  Service::Config C;
  C.CacheBytes = 0; // unlimited
  C.QueueDepth = 64;
  C.Workers = 1;
  C.Loader = [](const DatasetKey &K) {
    return Expected<graph::EdgeList>(testGraph(K.Weighted));
  };
  return C;
}

ServeRequest request(const std::string &App, const std::string &Id = "") {
  ServeRequest R;
  R.App = App;
  R.Id = Id;
  R.Iters = 5;
  return R;
}

TEST(ServiceTest, ColdThenWarm) {
  Service Svc(testConfig());

  const ServeResponse Cold = Svc.submit(request("pagerank", "c")).get();
  ASSERT_TRUE(Cold.Ok) << Cold.Error.toString();
  EXPECT_FALSE(Cold.CacheHit);
  EXPECT_EQ(Cold.Id, "c");
  EXPECT_GT(Cold.KernelSeconds, 0.0);

  const ServeResponse Warm = Svc.submit(request("pagerank", "w")).get();
  ASSERT_TRUE(Warm.Ok) << Warm.Error.toString();
  EXPECT_TRUE(Warm.CacheHit);
  EXPECT_EQ(Warm.LoadSeconds, 0.0) << "warm requests must not reload";
  EXPECT_EQ(Warm.Checksum, Cold.Checksum)
      << "cache reuse must not change results";

  const CacheStats S = Svc.cacheStats();
  EXPECT_EQ(S.Misses, 1);
  EXPECT_EQ(S.Hits, 1);
}

TEST(ServiceTest, AllGraphAppsServe) {
  Service Svc(testConfig());
  for (const char *App : {"pagerank", "pagerank64", "sssp", "sswp", "wcc",
                          "bfs", "rbk", "spmv"}) {
    const ServeResponse R = Svc.submit(request(App)).get();
    EXPECT_TRUE(R.Ok) << App << ": " << R.Error.toString();
    EXPECT_GT(R.Iterations, 0) << App;
  }
  // Weighted (sssp/sswp/spmv) and unweighted apps use differently-keyed
  // datasets; same-weightedness apps share.
  EXPECT_EQ(Svc.cacheStats().Entries, 2);
  EXPECT_GE(Svc.cacheStats().Hits, 4);
}

TEST(ServiceTest, UnsupportedAppsAreStructuredErrors) {
  Service Svc(testConfig());
  for (const char *App : {"moldyn", "agg", "mesh"}) {
    const ServeResponse R = Svc.submit(request(App)).get();
    EXPECT_FALSE(R.Ok) << App;
    EXPECT_EQ(R.Error.code(), ErrorCode::InvalidArgument) << App;
  }
  const ServeResponse R = Svc.submit(request("no-such-app")).get();
  EXPECT_FALSE(R.Ok);
}

TEST(ServiceTest, QueueFullRejectsImmediately) {
  Service::Config C = testConfig();
  C.QueueDepth = 1;
  C.Workers = 1;
  // Slow the load down so submissions pile up behind the first request.
  C.Loader = [](const DatasetKey &K) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    return Expected<graph::EdgeList>(testGraph(K.Weighted));
  };
  Service Svc(C);

  std::vector<std::future<ServeResponse>> Futures;
  for (int I = 0; I < 6; ++I)
    Futures.push_back(Svc.submit(request("pagerank", std::to_string(I))));

  int Ok = 0, Unavailable = 0;
  for (auto &F : Futures) {
    const ServeResponse R = F.get();
    if (R.Ok)
      ++Ok;
    else if (R.Error.code() == ErrorCode::Unavailable)
      ++Unavailable;
  }
  // The first request runs, at most one more fits the queue; the rest
  // must be rejected as structured backpressure, not dropped or hung.
  EXPECT_GE(Ok, 1);
  EXPECT_GE(Unavailable, 4);
  EXPECT_EQ(Ok + Unavailable, 6);
  EXPECT_EQ(Svc.schedulerStats().Rejected, Unavailable);
}

TEST(ServiceTest, DeadlineExpiresInQueue) {
  Service::Config C = testConfig();
  C.Workers = 1;
  C.Loader = [](const DatasetKey &K) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    return Expected<graph::EdgeList>(testGraph(K.Weighted));
  };
  Service Svc(C);

  // The first request occupies the worker for >= 100ms; the second's
  // 1ms deadline expires while it waits in the queue.
  std::future<ServeResponse> First = Svc.submit(request("pagerank"));
  ServeRequest Doomed = request("pagerank");
  Doomed.TimeoutMs = 1.0;
  const ServeResponse R = Svc.submit(Doomed).get();
  EXPECT_FALSE(R.Ok);
  EXPECT_EQ(R.Error.code(), ErrorCode::DeadlineExceeded);
  EXPECT_TRUE(First.get().Ok);
}

TEST(ServiceTest, ResponseJsonCarriesTheContract) {
  Service Svc(testConfig());
  (void)Svc.submit(request("pagerank")).get();
  const ServeResponse Warm = Svc.submit(request("pagerank", "w2")).get();
  ASSERT_TRUE(Warm.Ok);

  const std::string J = Warm.toJson();
  EXPECT_NE(J.find("\"id\":\"w2\""), std::string::npos) << J;
  EXPECT_NE(J.find("\"ok\":true"), std::string::npos) << J;
  EXPECT_NE(J.find("\"cache_hit\":true"), std::string::npos) << J;
  EXPECT_NE(J.find("\"load_seconds\":0,"), std::string::npos)
      << "exact zero on hits: " << J;

  // And the response parses back as JSON with matching fields.
  const Expected<json::Value> V = json::parse(J);
  ASSERT_TRUE(V.ok()) << V.status().toString();
  EXPECT_TRUE(V->getBool("ok", false));
  EXPECT_TRUE(V->getBool("cache_hit", false));
  EXPECT_EQ(V->getNumber("load_seconds", -1.0), 0.0);
  EXPECT_EQ(V->getString("app", ""), "pagerank");
}

TEST(ServiceTest, ParseRequestDialect) {
  const Expected<json::Value> V = json::parse(
      "{\"app\":\"sssp\",\"dataset\":\"d\",\"version\":\"mask\","
      "\"source\":3,\"iters\":7,\"threads\":2,\"scale\":0.5,"
      "\"timeout_ms\":250,\"id\":\"x\"}");
  ASSERT_TRUE(V.ok());
  const Expected<ServeRequest> R = parseRequest(*V);
  ASSERT_TRUE(R.ok()) << R.status().toString();
  EXPECT_EQ(R->App, "sssp");
  EXPECT_EQ(R->Dataset, "d");
  EXPECT_EQ(R->Version, "mask");
  EXPECT_EQ(R->Source, 3);
  EXPECT_EQ(R->Iters, 7);
  EXPECT_EQ(R->Threads, 2);
  EXPECT_EQ(R->Scale, 0.5);
  EXPECT_EQ(R->TimeoutMs, 250.0);
  EXPECT_EQ(R->Id, "x");

  // Missing "app" is the one hard requirement.
  const Expected<json::Value> NoApp = json::parse("{\"dataset\":\"d\"}");
  ASSERT_TRUE(NoApp.ok());
  EXPECT_FALSE(parseRequest(*NoApp).ok());

  // Malformed lines fail at the JSON layer with a byte offset.
  const Expected<json::Value> Bad = json::parse("{\"app\":}");
  ASSERT_FALSE(Bad.ok());
  EXPECT_EQ(Bad.status().code(), ErrorCode::ParseError);
}

} // namespace
