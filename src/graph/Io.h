//===- graph/Io.h - SNAP-format edge-list I/O -------------------*- C++ -*-===//
//
// Part of the cfv project: reproduction of Jiang & Agrawal, CGO 2018.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reading and writing edge lists in the SNAP text format the paper's
/// datasets ship in: '#'-prefixed comment lines followed by one
/// whitespace-separated "src dst [weight]" pair per line.  With network
/// access, the paper's exact higgs-twitter / soc-Pokec / amazon0312
/// inputs can be dropped in and run through every harness in place of
/// the synthetic stand-ins.
///
/// Vertex ids are compacted to [0, NumNodes); the mapping is dense over
/// the ids seen (SNAP files frequently skip ids).  The library is
/// exception free: failures come back as cfv::Status with a
/// line-numbered diagnostic ("parse_error: negative source id -3 at
/// graph.txt:17").
///
//===----------------------------------------------------------------------===//

#ifndef CFV_GRAPH_IO_H
#define CFV_GRAPH_IO_H

#include "graph/Graph.h"
#include "util/Status.h"

#include <string>

namespace cfv {
namespace graph {

/// Parses a SNAP edge list from \p Path.  The first edge line fixes the
/// column count (2 = unweighted, 3 = weighted); every later line must
/// match it.  Rejected with a path:line diagnostic: negative ids, ids or
/// weights out of range, more than 2^31-1 distinct vertices, rows with a
/// contradicting column count, trailing junk, and over-long lines.
Expected<EdgeList> readSnapEdgeList(const std::string &Path);

/// Writes \p G to \p Path in SNAP format (with a comment header).
Status writeSnapEdgeList(const std::string &Path, const EdgeList &G);

} // namespace graph
} // namespace cfv

#endif // CFV_GRAPH_IO_H
