//===- bench/serve_throughput.cpp - Serving layer latency harness ---------===//
//
// Part of the cfv project: reproduction of Jiang & Agrawal, CGO 2018.
//
//===----------------------------------------------------------------------===//
//
// Measures what the serving layer buys: end-to-end request latency cold
// (dataset load + inspector schedules + kernel) versus warm (cache hit,
// schedules reused, kernel only).  The paper amortizes inspector cost
// across iterations of one run; the dataset cache extends that across
// requests, so a warm request should be dominated by kernel time alone.
//
// Part 1 reports cold/warm latency and the speedup for pagerank and
// sssp, one JSON line each.  Part 2 drives a sustained sequence of mixed
// requests across four applications through one Service instance and
// reports aggregate throughput plus the cache counters.
//
//   $ bench/serve_throughput
//   {"bench":"serve_cold_warm","app":"pagerank",...,"speedup":57.1}
//   {"bench":"serve_cold_warm","app":"sssp",...,"speedup":21.9}
//   {"bench":"serve_sustained","requests":120,...}
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "service/Service.h"
#include "util/Timer.h"

#include <cstdio>
#include <string>
#include <vector>

using namespace cfv;
using namespace cfv::service;

namespace {

ServeRequest makeRequest(const std::string &App, const std::string &Dataset,
                         double Scale, int Iters) {
  ServeRequest R;
  R.App = App;
  R.Dataset = Dataset;
  R.Scale = Scale;
  R.Iters = Iters;
  return R;
}

/// Submits \p R and returns end-to-end wall latency; aborts on errors so
/// the bench never reports numbers for failed work.
double timedRequest(Service &Svc, const ServeRequest &R, ServeResponse *Out) {
  WallTimer T;
  const ServeResponse Resp = Svc.submit(R).get();
  const double Seconds = T.seconds();
  if (!Resp.Ok) {
    std::fprintf(stderr, "error: %s %s: %s\n", R.App.c_str(),
                 R.Dataset.c_str(), Resp.Error.toString().c_str());
    std::exit(1);
  }
  if (Out)
    *Out = Resp;
  return Seconds;
}

/// Cold-vs-warm latency for one app: a fresh Service per app so the
/// first request pays the full load, then the same request again.  Few
/// kernel iterations keep the load dominant, the serving-relevant
/// regime.
void coldWarm(const std::string &App, double Scale) {
  Service::Config C;
  C.CacheBytes = 0; // unlimited; eviction is the cache test's business
  Service Svc(C);

  const ServeRequest R = makeRequest(App, "higgs-twitter-sim", Scale, 2);
  ServeResponse Cold, Warm;
  const double ColdSeconds = timedRequest(Svc, R, &Cold);
  const double WarmSeconds = timedRequest(Svc, R, &Warm);

  std::printf("{\"bench\":\"serve_cold_warm\",\"app\":\"%s\","
              "\"scale\":%g,"
              "\"cold_seconds\":%.6f,\"warm_seconds\":%.6f,"
              "\"cold_load_seconds\":%.6f,\"warm_load_seconds\":%.6f,"
              "\"warm_cache_hit\":%s,\"speedup\":%.2f}\n",
              App.c_str(), Scale, ColdSeconds, WarmSeconds,
              Cold.LoadSeconds, Warm.LoadSeconds,
              Warm.CacheHit ? "true" : "false",
              WarmSeconds > 0.0 ? ColdSeconds / WarmSeconds : 0.0);
  std::fflush(stdout);
}

/// A sustained mixed-app sequence through one warm service: the steady
/// state a long-lived cfv_serve process reaches.
void sustained(int Requests, double Scale) {
  Service::Config C;
  C.CacheBytes = 0;
  Service Svc(C);

  const std::vector<ServeRequest> Mix = {
      makeRequest("pagerank", "higgs-twitter-sim", Scale, 3),
      makeRequest("sssp", "higgs-twitter-sim", Scale, 0),
      makeRequest("wcc", "soc-pokec-sim", Scale, 0),
      makeRequest("bfs", "amazon0312-sim", Scale, 0),
  };

  WallTimer T;
  double KernelSeconds = 0.0, LoadSeconds = 0.0;
  bench::LatencyRecorder Latency;
  for (int I = 0; I < Requests; ++I) {
    ServeResponse Resp;
    Latency.add(
        timedRequest(Svc, Mix[static_cast<size_t>(I) % Mix.size()], &Resp));
    KernelSeconds += Resp.KernelSeconds;
    LoadSeconds += Resp.LoadSeconds;
  }
  const double Wall = T.seconds();

  const CacheStats S = Svc.cacheStats();
  std::printf("{\"bench\":\"serve_sustained\",\"requests\":%d,"
              "\"apps\":%d,\"scale\":%g,"
              "\"wall_seconds\":%.6f,\"requests_per_second\":%.1f,"
              "\"kernel_seconds\":%.6f,\"load_seconds\":%.6f,"
              "\"p50_seconds\":%.6f,\"p95_seconds\":%.6f,"
              "\"p99_seconds\":%.6f,"
              "\"cache_hits\":%lld,\"cache_misses\":%lld,"
              "\"cache_resident_bytes\":%lld}\n",
              Requests, static_cast<int>(Mix.size()), Scale, Wall,
              Wall > 0.0 ? Requests / Wall : 0.0, KernelSeconds, LoadSeconds,
              Latency.quantile(0.50), Latency.quantile(0.95),
              Latency.quantile(0.99), static_cast<long long>(S.Hits),
              static_cast<long long>(S.Misses),
              static_cast<long long>(S.ResidentBytes));
  std::fflush(stdout);
}

} // namespace

int main(int Argc, char **Argv) {
  // Fixed small scale by default: the cold/warm contrast is about load
  // amortization, not kernel size.  argv[1] overrides the request count.
  const double Scale = 0.25;
  const int Requests = Argc > 1 ? std::atoi(Argv[1]) : 120;

  coldWarm("pagerank", Scale);
  coldWarm("sssp", Scale);
  sustained(Requests > 0 ? Requests : 120, Scale);
  return 0;
}
