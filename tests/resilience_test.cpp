//===- tests/resilience_test.cpp - Overload protection contracts ----------===//
//
// Part of the cfv project: reproduction of Jiang & Agrawal, CGO 2018.
//
//===----------------------------------------------------------------------===//
//
// The graceful-degradation surface: shed watermarks (queue depth and
// observed latency) with retry_after_ms hints, the drain/submit race,
// the stalled-worker watchdog (structured answer, freed worker, books
// that still balance), the per-dataset circuit breaker with its
// half-open probe, emergency cache eviction, and cooperative deadlines
// expiring mid-iteration in pagerank / sssp / wcc.
//
//===----------------------------------------------------------------------===//

#include "service/Service.h"

#include "graph/Generators.h"

#include "gtest/gtest.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <future>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

using namespace cfv;
using namespace cfv::service;

namespace {

/// Blocks the scheduler's single worker until release().
class Gate {
public:
  RequestScheduler::Task task() {
    return [this](const TaskInfo &) {
      std::unique_lock<std::mutex> Lock(Mu);
      Entered = true;
      Cv.notify_all();
      Cv.wait(Lock, [this] { return Released; });
    };
  }
  void awaitEntered() {
    std::unique_lock<std::mutex> Lock(Mu);
    Cv.wait(Lock, [this] { return Entered; });
  }
  void release() {
    std::lock_guard<std::mutex> Lock(Mu);
    Released = true;
    Cv.notify_all();
  }

private:
  std::mutex Mu;
  std::condition_variable Cv;
  bool Entered = false;
  bool Released = false;
};

RequestScheduler::Task noop() {
  return [](const TaskInfo &) {};
}

//===----------------------------------------------------------------------===//
// Load shedding
//===----------------------------------------------------------------------===//

TEST(SheddingTest, QueueWatermarkShedsWithRetryHint) {
  RequestScheduler::Config C;
  C.QueueDepth = 4;
  C.Workers = 1;
  C.ShedQueuePct = 50; // watermark: ceil(4 * 50%) = 2 queued
  RequestScheduler Sched(C);

  Gate G;
  ASSERT_TRUE(Sched.submit("gate", 0.0, G.task()).ok());
  G.awaitEntered(); // worker busy; the queue proper is empty

  ASSERT_TRUE(Sched.submit("k", 0.0, noop()).ok());
  ASSERT_TRUE(Sched.submit("k", 0.0, noop()).ok());

  // Two queued = at the watermark: shed with a structured Overloaded and
  // an actionable backoff hint, well before the hard queue-full wall.
  int64_t RetryMs = 0;
  RequestScheduler::SubmitExtras Extras;
  Extras.RetryAfterMs = &RetryMs;
  const Status Shed = Sched.submit("k", 0.0, noop(), Extras);
  ASSERT_FALSE(Shed.ok());
  EXPECT_EQ(Shed.code(), ErrorCode::Overloaded);
  EXPECT_GE(RetryMs, 10);
  EXPECT_LE(RetryMs, 5000);

  G.release();
  Sched.drain();
  const RequestScheduler::Stats S = Sched.stats();
  EXPECT_EQ(S.Shed, 1);
  EXPECT_EQ(S.Rejected, 0) << "shed must not be booked as a hard rejection";
  EXPECT_EQ(S.Submitted, S.Completed);
}

TEST(SheddingTest, LatencyWatermarkShedsWhenBacklogged) {
  RequestScheduler::Config C;
  C.QueueDepth = 16;
  C.Workers = 1;
  C.ShedQueuePct = 100;          // queue gate off
  C.ShedLatencySeconds = 0.002;  // 2ms: the slow task below trips it
  RequestScheduler Sched(C);

  // Teach the EWMA that tasks are slow.
  ASSERT_TRUE(Sched
                  .submit("warm", 0.0,
                          [](const TaskInfo &) {
                            std::this_thread::sleep_for(
                                std::chrono::milliseconds(25));
                          })
                  .ok());
  Sched.drain();

  Gate G;
  ASSERT_TRUE(Sched.submit("gate", 0.0, G.task()).ok());
  G.awaitEntered();
  // No backlog yet: latency alone must not shed (an idle service with a
  // slow history still takes work).
  ASSERT_TRUE(Sched.submit("k", 0.0, noop()).ok());

  const Status Shed = Sched.submit("k", 0.0, noop());
  ASSERT_FALSE(Shed.ok());
  EXPECT_EQ(Shed.code(), ErrorCode::Overloaded);

  G.release();
  Sched.drain();
  EXPECT_EQ(Sched.stats().Shed, 1);
}

//===----------------------------------------------------------------------===//
// Drain vs submit race
//===----------------------------------------------------------------------===//

TEST(DrainRaceTest, ConcurrentSubmitIsRefusedStructuredThenReadmitted) {
  RequestScheduler::Config C;
  C.Workers = 1;
  RequestScheduler Sched(C);

  Gate G;
  ASSERT_TRUE(Sched.submit("gate", 0.0, G.task()).ok());
  G.awaitEntered();

  std::thread Drainer([&] { Sched.drain(); });

  // Once drain has registered, a racing submit must bounce with a
  // structured ShuttingDown -- admitted-then-forgotten is the bug class
  // this guards against.
  Status S;
  for (int I = 0; I < 2000; ++I) {
    S = Sched.submit("k", 0.0, noop());
    if (!S.ok())
      break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_FALSE(S.ok()) << "drain never started refusing work";
  EXPECT_EQ(S.code(), ErrorCode::ShuttingDown);

  G.release();
  Drainer.join();

  // Admission reopens after the drain: the scheduler is reusable.
  std::atomic<bool> Ran{false};
  ASSERT_TRUE(
      Sched.submit("k", 0.0, [&](const TaskInfo &) { Ran = true; }).ok());
  Sched.drain();
  EXPECT_TRUE(Ran);
  EXPECT_EQ(Sched.stats().Submitted, Sched.stats().Completed);
}

//===----------------------------------------------------------------------===//
// Watchdog
//===----------------------------------------------------------------------===//

TEST(WatchdogTest, StallFiresOnStallOnceAndBooksBalance) {
  RequestScheduler::Config C;
  C.Workers = 1;
  C.WatchdogSeconds = 0.03;
  RequestScheduler Sched(C);

  std::promise<void> Stalled;
  std::atomic<int> StallCalls{0};
  RequestScheduler::SubmitExtras Extras;
  Extras.OnStall = [&] {
    if (StallCalls.fetch_add(1) == 0)
      Stalled.set_value();
  };
  ASSERT_TRUE(Sched
                  .submit("k", 0.0,
                          [](const TaskInfo &) {
                            std::this_thread::sleep_for(
                                std::chrono::milliseconds(150));
                          },
                          Extras)
                  .ok());

  // The stall is detected while the task still occupies the worker.
  ASSERT_EQ(Stalled.get_future().wait_for(std::chrono::seconds(5)),
            std::future_status::ready);

  Sched.drain();
  const RequestScheduler::Stats S = Sched.stats();
  EXPECT_EQ(StallCalls.load(), 1) << "one trip per stalled task";
  EXPECT_GE(S.WatchdogTrips, 1);
  EXPECT_EQ(S.Submitted, S.Completed)
      << "the stalled task still runs to completion";
}

TEST(WatchdogTest, ServiceAnswersStalledRequestAndFreesWorker) {
  std::atomic<int> Loads{0};
  Service::Config C;
  C.CacheBytes = 0;
  C.Workers = 1;
  C.WatchdogMs = 40.0;
  C.Loader = [&](const DatasetKey &) -> Expected<graph::EdgeList> {
    // The first load wedges well past the watchdog budget.
    if (Loads.fetch_add(1) == 0)
      std::this_thread::sleep_for(std::chrono::milliseconds(250));
    graph::EdgeList G;
    G.NumNodes = 32;
    for (int32_t I = 0; I < 31; ++I) {
      G.Src.push_back(I);
      G.Dst.push_back(I + 1);
    }
    return G;
  };
  Service Svc(C);

  ServeRequest R;
  R.App = "wcc";
  R.Dataset = "wedged";
  R.Id = "stall";

  std::future<ServeResponse> F = Svc.submit(R);
  ASSERT_EQ(F.wait_for(std::chrono::seconds(5)), std::future_status::ready)
      << "the watchdog must answer for a wedged worker";
  const ServeResponse Resp = F.get();
  EXPECT_FALSE(Resp.Ok);
  EXPECT_EQ(Resp.Error.code(), ErrorCode::Unavailable);
  EXPECT_NE(Resp.Error.message().find("watchdog"), std::string::npos)
      << Resp.Error.message();
  EXPECT_EQ(Resp.Id, "stall");

  // The worker comes back: a fresh request completes normally.
  R.Id = "after";
  R.Dataset = "healthy";
  const ServeResponse After = Svc.submit(R).get();
  EXPECT_TRUE(After.Ok) << After.Error.toString();

  Svc.drain();
  const RequestScheduler::Stats S = Svc.schedulerStats();
  EXPECT_EQ(S.Submitted, S.Completed);
  EXPECT_GE(S.WatchdogTrips, 1);
}

//===----------------------------------------------------------------------===//
// Circuit breaker
//===----------------------------------------------------------------------===//

TEST(CircuitBreakerTest, OpensAfterConsecutiveFailuresThenProbes) {
  ::setenv("CFV_CB_THRESHOLD", "2", 1);
  ::setenv("CFV_CB_BACKOFF_MS", "80", 1);
  std::atomic<int> Loads{0};
  std::atomic<bool> Failing{true};
  {
    DatasetCache Cache(0, [&](const DatasetKey &) -> Expected<graph::EdgeList> {
      Loads.fetch_add(1);
      if (Failing)
        return Status::error(ErrorCode::IoError, "backing store down");
      graph::EdgeList G;
      G.NumNodes = 4;
      G.Src = {0, 1, 2};
      G.Dst = {1, 2, 3};
      return G;
    });

    DatasetKey K;
    K.Source = "flaky";

    // Two consecutive failures reach the threshold and open the circuit.
    EXPECT_FALSE(Cache.get(K).ok());
    EXPECT_FALSE(Cache.get(K).ok());
    EXPECT_EQ(Loads.load(), 2);

    // Open circuit: fail fast, loader untouched.
    const Expected<CacheLookup> Fast = Cache.get(K);
    ASSERT_FALSE(Fast.ok());
    EXPECT_EQ(Fast.status().code(), ErrorCode::Unavailable);
    EXPECT_NE(Fast.status().message().find("circuit open"), std::string::npos)
        << Fast.status().message();
    EXPECT_EQ(Loads.load(), 2) << "an open circuit must not touch the loader";
    CacheStats St = Cache.stats();
    EXPECT_EQ(St.CircuitRejects, 1);
    EXPECT_EQ(St.OpenCircuits, 1);

    // Past the backoff the next arrival is the half-open probe; the
    // dataset has recovered, so the probe closes the circuit.
    std::this_thread::sleep_for(std::chrono::milliseconds(120));
    Failing = false;
    const Expected<CacheLookup> Probe = Cache.get(K);
    ASSERT_TRUE(Probe.ok()) << Probe.status().toString();
    EXPECT_EQ(Loads.load(), 3);
    St = Cache.stats();
    EXPECT_EQ(St.OpenCircuits, 0);

    // Fully closed: the entry is cached like any healthy dataset.
    const Expected<CacheLookup> Warm = Cache.get(K);
    ASSERT_TRUE(Warm.ok());
    EXPECT_TRUE(Warm->Hit);
  }
  ::unsetenv("CFV_CB_THRESHOLD");
  ::unsetenv("CFV_CB_BACKOFF_MS");
}

//===----------------------------------------------------------------------===//
// Emergency eviction
//===----------------------------------------------------------------------===//

graph::EdgeList chainGraph(int64_t Edges, bool Weighted = false) {
  graph::EdgeList G;
  G.NumNodes = static_cast<int32_t>(Edges + 1);
  G.Src.resize(Edges);
  G.Dst.resize(Edges);
  for (int64_t I = 0; I < Edges; ++I) {
    G.Src[I] = static_cast<int32_t>(I);
    G.Dst[I] = static_cast<int32_t>(I + 1);
  }
  if (Weighted) {
    G.Weight.resize(Edges);
    for (int64_t I = 0; I < Edges; ++I)
      G.Weight[I] = 1.0f;
  }
  return G;
}

DatasetCache::Loader chainLoader(int64_t Edges) {
  return [Edges](const DatasetKey &K) {
    return Expected<graph::EdgeList>(chainGraph(Edges, K.Weighted));
  };
}

DatasetKey keyFor(const std::string &Name) {
  DatasetKey K;
  K.Source = Name;
  return K;
}

TEST(EmergencyEvictTest, ShedsEveryIdleEntry) {
  DatasetCache Cache(0, chainLoader(512));
  ASSERT_TRUE(Cache.get(keyFor("a")).ok());
  ASSERT_TRUE(Cache.get(keyFor("b")).ok());
  EXPECT_EQ(Cache.stats().Entries, 2);

  Cache.emergencyEvict();
  const CacheStats St = Cache.stats();
  EXPECT_EQ(St.Entries, 0);
  EXPECT_EQ(St.EmergencyEvictions, 2);
  EXPECT_EQ(St.ResidentBytes, 0);
}

TEST(EmergencyEvictTest, PressureWatermarkMakesHeadroomBeforeLoading) {
  // Measure one dataset's footprint with an unlimited cache first.
  int64_t OneGraph = 0;
  {
    DatasetCache Probe(0, chainLoader(2048));
    ASSERT_TRUE(Probe.get(keyFor("probe")).ok());
    OneGraph = Probe.stats().ResidentBytes;
    ASSERT_GT(OneGraph, 0);
  }

  // Budget fits two graphs but 2x resident sits past the default 90%
  // pressure watermark, so the third load must pre-evict.
  DatasetCache Cache(2 * OneGraph + OneGraph / 5, chainLoader(2048));
  ASSERT_TRUE(Cache.get(keyFor("a")).ok());
  ASSERT_TRUE(Cache.get(keyFor("b")).ok());
  EXPECT_EQ(Cache.stats().EmergencyEvictions, 0);

  ASSERT_TRUE(Cache.get(keyFor("c")).ok());
  const CacheStats St = Cache.stats();
  EXPECT_GE(St.EmergencyEvictions, 1)
      << "byte pressure must evict before the load allocates";
  EXPECT_LE(St.ResidentBytes, 2 * OneGraph + OneGraph / 5);
}

//===----------------------------------------------------------------------===//
// Cooperative deadlines mid-iteration
//===----------------------------------------------------------------------===//

/// Serves three synthetic datasets: "deep" is a long chain (frontier
/// apps need its diameter's worth of iterations), "dense" a big uniform
/// graph (pagerank on a chain is already at its fixed point and stops in
/// one sweep; a random graph keeps the residual alive for a hundred-odd
/// iterations), anything else a small chain that finishes instantly.
Service::Config deadlineConfig() {
  Service::Config C;
  C.CacheBytes = 0;
  C.Workers = 1;
  C.Loader = [](const DatasetKey &K) -> Expected<graph::EdgeList> {
    if (K.Source == "dense") {
      graph::EdgeList G = graph::genUniform(20, int64_t(1) << 22, 7);
      if (K.Weighted && !G.isWeighted())
        G.Weight.assign(static_cast<size_t>(G.numEdges()), 1.0f);
      return G;
    }
    return chainGraph(K.Source == "deep" ? (int64_t(1) << 21) : 64,
                      K.Weighted);
  };
  return C;
}

/// Runs \p App against \p Dataset with a deadline that must expire
/// mid-run, then proves the failure is structured, prompt, and leaves a
/// healthy service behind.
void expectDeadlineMidIteration(const std::string &App,
                                const std::string &Dataset, int Iters) {
  Service Svc(deadlineConfig());

  ServeRequest R;
  R.App = App;
  R.Dataset = Dataset;
  R.Iters = Iters;
  R.TimeoutMs = 100.0;

  const auto T0 = std::chrono::steady_clock::now();
  std::future<ServeResponse> F = Svc.submit(R);
  ASSERT_EQ(F.wait_for(std::chrono::seconds(30)), std::future_status::ready);
  const ServeResponse Resp = F.get();
  const double Elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - T0)
          .count();

  ASSERT_FALSE(Resp.Ok) << App << " finished " << Resp.Iterations
                        << " iterations before the deadline; grow the input";
  EXPECT_EQ(Resp.Error.code(), ErrorCode::DeadlineExceeded)
      << Resp.Error.toString();
  // The loop noticed within an iteration of the deadline, not after
  // running to the end.  (On a slow host the deadline can even land
  // during load/prep, in which case zero iterations ran -- still a
  // prompt structured failure, which is the contract.)
  EXPECT_LT(Elapsed, 10.0);
  EXPECT_LT(Resp.Iterations, Iters);

  // The dataset survived the aborted run...
  EXPECT_GE(Svc.cacheStats().Entries, 1);
  // ...and the worker is free: a small request completes promptly.
  R.Dataset = "small";
  R.Iters = 2;
  R.TimeoutMs = 0.0;
  const ServeResponse After = Svc.submit(R).get();
  EXPECT_TRUE(After.Ok) << After.Error.toString();

  Svc.drain();
  const RequestScheduler::Stats S = Svc.schedulerStats();
  EXPECT_EQ(S.Submitted, S.Completed);
}

TEST(DeadlineMidIterationTest, PageRank) {
  expectDeadlineMidIteration("pagerank", "dense", 100000);
}

TEST(DeadlineMidIterationTest, Sssp) {
  expectDeadlineMidIteration("sssp", "deep", 1 << 20);
}

TEST(DeadlineMidIterationTest, Wcc) {
  expectDeadlineMidIteration("wcc", "deep", 1 << 20);
}

} // namespace
