//===- obs/Metrics.cpp - Metrics registry implementation ------------------===//
//
// Part of the cfv project (see obs/Metrics.h for the subsystem overview).
//
//===----------------------------------------------------------------------===//

#include "obs/Metrics.h"
#include "util/Env.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <memory>
#include <mutex>

namespace cfv {
namespace obs {

bool enabled() {
  static const bool On = env::boolVar("CFV_OBS", true);
  return On;
}

int shardId() {
  static std::atomic<int> Next{0};
  thread_local int Id =
      Next.fetch_add(1, std::memory_order_relaxed) % kMetricShards;
  return Id;
}

//===----------------------------------------------------------------------===//
// HistogramData
//===----------------------------------------------------------------------===//

std::size_t HistogramData::bucketIndex(double V) const {
  // Binary search for the first bound >= V; past-the-end is the overflow
  // bucket.
  return static_cast<std::size_t>(
      std::lower_bound(UpperBounds.begin(), UpperBounds.end(), V) -
      UpperBounds.begin());
}

void HistogramData::merge(const HistogramData &O) {
  if (UpperBounds.empty()) {
    *this = O;
    return;
  }
  if (O.TotalCount == 0)
    return;
  // Layouts must agree; merging mismatched layouts would silently
  // misattribute counts, so treat it as a programming error.
  if (O.UpperBounds.size() != UpperBounds.size()) {
    std::fprintf(stderr, "cfv: HistogramData::merge layout mismatch "
                         "(%zu vs %zu buckets); dropping merge\n",
                 O.UpperBounds.size(), UpperBounds.size());
    return;
  }
  for (std::size_t I = 0; I < Counts.size(); ++I)
    Counts[I] += O.Counts[I];
  TotalCount += O.TotalCount;
  Sum += O.Sum;
}

double HistogramData::quantile(double Q) const {
  if (TotalCount == 0)
    return 0.0;
  Q = std::min(1.0, std::max(0.0, Q));
  const double Rank = Q * static_cast<double>(TotalCount);
  uint64_t Cum = 0;
  for (std::size_t I = 0; I < Counts.size(); ++I) {
    Cum += Counts[I];
    if (static_cast<double>(Cum) < Rank)
      continue;
    if (I >= UpperBounds.size()) // overflow bucket: clamp to last bound
      return UpperBounds.empty() ? 0.0 : UpperBounds.back();
    const double Hi = UpperBounds[I];
    const double Lo = I == 0 ? 0.0 : UpperBounds[I - 1];
    if (Counts[I] == 0)
      return Hi;
    const double Before = static_cast<double>(Cum - Counts[I]);
    const double Frac = (Rank - Before) / static_cast<double>(Counts[I]);
    return Lo + (Hi - Lo) * std::min(1.0, std::max(0.0, Frac));
  }
  return UpperBounds.empty() ? 0.0 : UpperBounds.back();
}

std::vector<double> log2Bounds(double Min, int N) {
  std::vector<double> B;
  B.reserve(static_cast<std::size_t>(N));
  double V = Min;
  for (int I = 0; I < N; ++I, V *= 2.0)
    B.push_back(V);
  return B;
}

std::vector<double> laneBounds(int N) {
  std::vector<double> B;
  B.reserve(static_cast<std::size_t>(N) + 1);
  for (int I = 0; I <= N; ++I)
    B.push_back(static_cast<double>(I));
  return B;
}

#if CFV_OBS

//===----------------------------------------------------------------------===//
// Histogram
//===----------------------------------------------------------------------===//

namespace {

/// Portable atomic double accumulate (atomic<double>::fetch_add is
/// C++20-and-later and not universally lock-free; a CAS loop is).
void atomicAddDouble(std::atomic<double> &A, double V) {
  double Old = A.load(std::memory_order_relaxed);
  while (!A.compare_exchange_weak(Old, Old + V, std::memory_order_relaxed))
    ;
}

} // namespace

Histogram::Histogram(std::vector<double> Bounds)
    : UpperBounds(std::move(Bounds)), Shards(kMetricShards) {
  for (Shard &S : Shards)
    S.Counts = std::vector<std::atomic<uint64_t>>(UpperBounds.size() + 1);
}

void Histogram::observe(double V, uint64_t N) {
  const std::size_t I = static_cast<std::size_t>(
      std::lower_bound(UpperBounds.begin(), UpperBounds.end(), V) -
      UpperBounds.begin());
  Shard &S = Shards[static_cast<std::size_t>(shardId())];
  S.Counts[I].fetch_add(N, std::memory_order_relaxed);
  S.Total.fetch_add(N, std::memory_order_relaxed);
  atomicAddDouble(S.Sum, V * static_cast<double>(N));
}

HistogramData Histogram::snapshot() const {
  HistogramData D(UpperBounds);
  for (const Shard &S : Shards) {
    for (std::size_t I = 0; I < D.Counts.size(); ++I)
      D.Counts[I] += S.Counts[I].load(std::memory_order_relaxed);
    D.TotalCount += S.Total.load(std::memory_order_relaxed);
    D.Sum += S.Sum.load(std::memory_order_relaxed);
  }
  return D;
}

//===----------------------------------------------------------------------===//
// MetricsRegistry
//===----------------------------------------------------------------------===//

namespace {

/// (name, labels) key; ordered so scrapes render deterministically.
using Key = std::pair<std::string, std::string>;

struct GaugeEntry {
  std::function<double()> Read;
  std::string Help;
};

/// %.9g like the service JSON layer, so numbers render identically in
/// both expositions.
std::string num(double V) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.9g", V);
  return Buf;
}

/// Prometheus metric names allow [a-zA-Z0-9_:]; anything else would
/// corrupt the exposition, so sanitize at the registry boundary.
std::string sanitizeName(const std::string &Name) {
  std::string S = Name;
  for (char &C : S) {
    const bool Ok = (C >= 'a' && C <= 'z') || (C >= 'A' && C <= 'Z') ||
                    (C >= '0' && C <= '9') || C == '_' || C == ':';
    if (!Ok)
      C = '_';
  }
  if (S.empty() || (S[0] >= '0' && S[0] <= '9'))
    S.insert(S.begin(), '_');
  return S;
}

std::string jsonEscapeKey(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (char C : S) {
    if (C == '"' || C == '\\')
      Out.push_back('\\');
    if (static_cast<unsigned char>(C) < 0x20) {
      char Buf[8];
      std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
      Out += Buf;
      continue;
    }
    Out.push_back(C);
  }
  return Out;
}

} // namespace

struct MetricsRegistry::Impl {
  mutable std::mutex Mu;
  // unique_ptr values: the map may rehash/rebalance but the metrics
  // themselves must stay address-stable -- call sites cache references.
  std::map<Key, std::unique_ptr<Counter>> Counters;
  std::map<Key, std::unique_ptr<Histogram>> Histograms;
  std::map<Key, GaugeEntry> Gauges;
  std::map<Key, std::string> Help;
};

MetricsRegistry &MetricsRegistry::instance() {
  // Leaked singleton: metrics outlive static destruction order, so
  // worker threads can record during shutdown.
  static MetricsRegistry *R = new MetricsRegistry();
  return *R;
}

MetricsRegistry::Impl &MetricsRegistry::impl() const {
  static Impl *I = new Impl();
  return *I;
}

Counter &MetricsRegistry::counter(const std::string &Name,
                                  const std::string &Labels,
                                  const std::string &Help) {
  Impl &I = impl();
  std::lock_guard<std::mutex> Lock(I.Mu);
  const Key K{sanitizeName(Name), Labels};
  auto It = I.Counters.find(K);
  if (It == I.Counters.end()) {
    It = I.Counters.emplace(K, std::unique_ptr<Counter>(new Counter())).first;
    if (!Help.empty())
      I.Help[K] = Help;
  }
  return *It->second;
}

Histogram &MetricsRegistry::histogram(const std::string &Name,
                                      std::vector<double> Bounds,
                                      const std::string &Labels,
                                      const std::string &Help) {
  Impl &I = impl();
  std::lock_guard<std::mutex> Lock(I.Mu);
  const Key K{sanitizeName(Name), Labels};
  auto It = I.Histograms.find(K);
  if (It == I.Histograms.end()) {
    It = I.Histograms
             .emplace(K, std::unique_ptr<Histogram>(
                             new Histogram(std::move(Bounds))))
             .first;
    if (!Help.empty())
      I.Help[K] = Help;
  }
  return *It->second;
}

void MetricsRegistry::gauge(const std::string &Name,
                            std::function<double()> Read,
                            const std::string &Labels,
                            const std::string &Help) {
  Impl &I = impl();
  std::lock_guard<std::mutex> Lock(I.Mu);
  const Key K{sanitizeName(Name), Labels};
  I.Gauges[K] = GaugeEntry{std::move(Read), Help};
  if (!Help.empty())
    I.Help[K] = Help;
}

void MetricsRegistry::removeGauge(const std::string &Name,
                                  const std::string &Labels) {
  Impl &I = impl();
  std::lock_guard<std::mutex> Lock(I.Mu);
  I.Gauges.erase(Key{sanitizeName(Name), Labels});
}

std::vector<MetricSample> MetricsRegistry::collect() const {
  Impl &I = impl();
  std::vector<MetricSample> Out;
  std::vector<std::pair<Key, std::function<double()>>> GaugeReads;
  {
    std::lock_guard<std::mutex> Lock(I.Mu);
    for (const auto &KV : I.Counters) {
      MetricSample S;
      S.K = MetricSample::Kind::Counter;
      S.Name = KV.first.first;
      S.Labels = KV.first.second;
      auto H = I.Help.find(KV.first);
      if (H != I.Help.end())
        S.Help = H->second;
      S.Value = static_cast<double>(KV.second->value());
      Out.push_back(std::move(S));
    }
    for (const auto &KV : I.Histograms) {
      MetricSample S;
      S.K = MetricSample::Kind::Histogram;
      S.Name = KV.first.first;
      S.Labels = KV.first.second;
      auto H = I.Help.find(KV.first);
      if (H != I.Help.end())
        S.Help = H->second;
      S.Hist = KV.second->snapshot();
      Out.push_back(std::move(S));
    }
    for (const auto &KV : I.Gauges)
      GaugeReads.emplace_back(KV.first, KV.second.Read);
  }
  // Gauge callbacks run outside the registry lock: they reach into other
  // components (cache, scheduler) whose own locks must not nest under
  // ours.
  for (auto &G : GaugeReads) {
    MetricSample S;
    S.K = MetricSample::Kind::Gauge;
    S.Name = G.first.first;
    S.Labels = G.first.second;
    {
      std::lock_guard<std::mutex> Lock(I.Mu);
      auto H = I.Help.find(G.first);
      if (H != I.Help.end())
        S.Help = H->second;
    }
    S.Value = G.second ? G.second() : 0.0;
    Out.push_back(std::move(S));
  }
  std::sort(Out.begin(), Out.end(),
            [](const MetricSample &A, const MetricSample &B) {
              if (A.Name != B.Name)
                return A.Name < B.Name;
              return A.Labels < B.Labels;
            });
  return Out;
}

std::string MetricsRegistry::renderPrometheus() const {
  const std::vector<MetricSample> Samples = collect();
  std::string Out;
  Out.reserve(4096);
  std::string LastFamily;
  for (const MetricSample &S : Samples) {
    if (S.Name != LastFamily) {
      LastFamily = S.Name;
      if (!S.Help.empty())
        Out += "# HELP " + S.Name + " " + S.Help + "\n";
      const char *Type = S.K == MetricSample::Kind::Counter ? "counter"
                         : S.K == MetricSample::Kind::Gauge ? "gauge"
                                                            : "histogram";
      Out += "# TYPE " + S.Name + " " + Type + "\n";
    }
    const std::string LabelSuffix =
        S.Labels.empty() ? std::string() : "{" + S.Labels + "}";
    if (S.K == MetricSample::Kind::Histogram) {
      // Cumulative buckets with le labels, then +Inf, _sum, _count.
      const std::string Sep = S.Labels.empty() ? "" : S.Labels + ",";
      uint64_t Cum = 0;
      for (std::size_t I = 0; I < S.Hist.UpperBounds.size(); ++I) {
        Cum += S.Hist.Counts[I];
        Out += S.Name + "_bucket{" + Sep +
               "le=\"" + num(S.Hist.UpperBounds[I]) + "\"} " +
               std::to_string(Cum) + "\n";
      }
      Out += S.Name + "_bucket{" + Sep + "le=\"+Inf\"} " +
             std::to_string(S.Hist.TotalCount) + "\n";
      Out += S.Name + "_sum" + LabelSuffix + " " + num(S.Hist.Sum) + "\n";
      Out += S.Name + "_count" + LabelSuffix + " " +
             std::to_string(S.Hist.TotalCount) + "\n";
    } else {
      Out += S.Name + LabelSuffix + " " + num(S.Value) + "\n";
    }
  }
  return Out;
}

std::string MetricsRegistry::renderJson() const {
  const std::vector<MetricSample> Samples = collect();
  std::string Counters, Gauges, Hists;
  for (const MetricSample &S : Samples) {
    const std::string K =
        "\"" +
        jsonEscapeKey(S.Labels.empty() ? S.Name : S.Name + "{" + S.Labels +
                                                      "}") +
        "\":";
    switch (S.K) {
    case MetricSample::Kind::Counter:
      if (!Counters.empty())
        Counters += ",";
      Counters += K + num(S.Value);
      break;
    case MetricSample::Kind::Gauge:
      if (!Gauges.empty())
        Gauges += ",";
      Gauges += K + num(S.Value);
      break;
    case MetricSample::Kind::Histogram: {
      if (!Hists.empty())
        Hists += ",";
      std::string Buckets, Bounds;
      for (std::size_t I = 0; I < S.Hist.Counts.size(); ++I) {
        if (I)
          Buckets += ",";
        Buckets += std::to_string(S.Hist.Counts[I]);
      }
      for (std::size_t I = 0; I < S.Hist.UpperBounds.size(); ++I) {
        if (I)
          Bounds += ",";
        Bounds += num(S.Hist.UpperBounds[I]);
      }
      Hists += K + "{\"bounds\":[" + Bounds + "],\"counts\":[" + Buckets +
               "],\"count\":" + std::to_string(S.Hist.TotalCount) +
               ",\"sum\":" + num(S.Hist.Sum) +
               ",\"mean\":" + num(S.Hist.mean()) +
               ",\"p50\":" + num(S.Hist.quantile(0.50)) +
               ",\"p95\":" + num(S.Hist.quantile(0.95)) +
               ",\"p99\":" + num(S.Hist.quantile(0.99)) + "}";
      break;
    }
    }
  }
  return "{\"counters\":{" + Counters + "},\"gauges\":{" + Gauges +
         "},\"histograms\":{" + Hists + "}}";
}

#else // !CFV_OBS

// Stub registry still hands out real Counters (protocol state) from a
// leaked pool keyed by (name, labels).

MetricsRegistry &MetricsRegistry::instance() {
  static MetricsRegistry *R = new MetricsRegistry();
  return *R;
}

namespace {
struct StubPool {
  std::mutex Mu;
  std::map<std::pair<std::string, std::string>, std::unique_ptr<Counter>>
      Counters;
  std::map<std::pair<std::string, std::string>, std::unique_ptr<Histogram>>
      Histograms;
};
StubPool &stubPool() {
  static StubPool *P = new StubPool();
  return *P;
}
} // namespace

Counter &MetricsRegistry::counter(const std::string &Name,
                                  const std::string &Labels,
                                  const std::string &) {
  StubPool &P = stubPool();
  std::lock_guard<std::mutex> Lock(P.Mu);
  auto &Slot = P.Counters[{Name, Labels}];
  if (!Slot)
    Slot.reset(new Counter());
  return *Slot;
}

Histogram &MetricsRegistry::histogram(const std::string &Name,
                                      std::vector<double>,
                                      const std::string &Labels,
                                      const std::string &) {
  StubPool &P = stubPool();
  std::lock_guard<std::mutex> Lock(P.Mu);
  auto &Slot = P.Histograms[{Name, Labels}];
  if (!Slot)
    Slot.reset(new Histogram(std::vector<double>()));
  return *Slot;
}

#endif // CFV_OBS

} // namespace obs
} // namespace cfv
