//===- apps/frontier/FrontierEngine.cpp - Wave-frontier algorithms -------===//
//
// Part of the cfv project: reproduction of Jiang & Agrawal, CGO 2018.
//
//===----------------------------------------------------------------------===//

#include "apps/frontier/FrontierEngine.h"

#include "core/InvecReduce.h"
#include "core/ParallelEngine.h"
#include "graph/Frontier.h"
#include "graph/MappedCsr.h"
#include "inspector/Grouping.h"
#include "inspector/Tiling.h"
#include "masking/ConflictMask.h"
#include "core/Backends.h"
#include "core/Variant.h"
#include "simd/Traits.h"
#include "obs/Trace.h"
#include "util/Stats.h"
#include "util/Timer.h"

#include <cassert>
#include <limits>

using namespace cfv;
using namespace cfv::apps;

using B = simd::NativeBackend;
using IVec = simd::VecI32<B>;
using FVec = simd::VecF32<B>;
using simd::Mask16;
constexpr int kLanes = B::kLanes;
constexpr Mask16 kAllLanes = simd::BackendTraits<B>::kFullMask;

#if CFV_VARIANT_PRIMARY
const char *apps::appName(FrApp A) {
  switch (A) {
  case FrApp::Sssp:
    return "SSSP";
  case FrApp::Sswp:
    return "SSWP";
  case FrApp::Wcc:
    return "WCC";
  case FrApp::Bfs:
    return "BFS";
  }
  return "unknown";
}

const char *apps::versionName(FrVersion V) {
  switch (V) {
  case FrVersion::NontilingSerial:
    return "nontiling_serial";
  case FrVersion::NontilingMask:
    return "nontiling_and_mask";
  case FrVersion::NontilingInvec:
    return "nontiling_and_invec";
  case FrVersion::TilingGrouping:
    return "tiling_and_grouping";
  }
  return "unknown";
}
#endif // CFV_VARIANT_PRIMARY

namespace {

constexpr float kInf = std::numeric_limits<float>::infinity();

/// SSSP: dist(ny) = min(dist(ny), dist(nx) + w); start at Source = 0.
struct SsspPolicy {
  using ReduceOp = simd::OpMin;
  static constexpr bool NeedsWeight = true;
  static constexpr bool AllVerticesStart = false;
  static float farValue(int32_t) { return kInf; }
  static float sourceValue() { return 0.0f; }
  static float candidate(float Dx, float W) { return Dx + W; }
  static FVec candidate(FVec Dx, FVec W) { return Dx + W; }
  static bool better(float C, float Cur) { return C < Cur; }
  static Mask16 better(FVec C, FVec Cur) { return C.lt(Cur); }
};

/// SSWP: width(ny) = max(width(ny), min(width(nx), w)); source = +inf.
struct SswpPolicy {
  using ReduceOp = simd::OpMax;
  static constexpr bool NeedsWeight = true;
  static constexpr bool AllVerticesStart = false;
  static float farValue(int32_t) { return 0.0f; }
  static float sourceValue() { return kInf; }
  static float candidate(float Dx, float W) { return W < Dx ? W : Dx; }
  static FVec candidate(FVec Dx, FVec W) { return FVec::min(Dx, W); }
  static bool better(float C, float Cur) { return C > Cur; }
  static Mask16 better(FVec C, FVec Cur) { return C.gt(Cur); }
};

/// WCC by min-label propagation: label(ny) = min(label(ny), label(nx));
/// every vertex starts active with its own id as label.  Vertex ids are
/// stored as float, exact for graphs under 2^24 vertices.
struct WccPolicy {
  using ReduceOp = simd::OpMin;
  static constexpr bool NeedsWeight = false;
  static constexpr bool AllVerticesStart = true;
  static float farValue(int32_t V) { return static_cast<float>(V); }
  static float sourceValue() { return 0.0f; } // unused
  static float candidate(float Dx, float) { return Dx; }
  static FVec candidate(FVec Dx, FVec) { return Dx; }
  static bool better(float C, float Cur) { return C < Cur; }
  static Mask16 better(FVec C, FVec Cur) { return C.lt(Cur); }
};

/// BFS: level(ny) = min(level(ny), level(nx) + 1); hop counts as float.
struct BfsPolicy {
  using ReduceOp = simd::OpMin;
  static constexpr bool NeedsWeight = false;
  static constexpr bool AllVerticesStart = false;
  static float farValue(int32_t) { return kInf; }
  static float sourceValue() { return 0.0f; }
  static float candidate(float Dx, float) { return Dx + 1.0f; }
  static FVec candidate(FVec Dx, FVec) {
    return Dx + FVec::broadcast(1.0f);
  }
  static bool better(float C, float Cur) { return C < Cur; }
  static Mask16 better(FVec C, FVec Cur) { return C.lt(Cur); }
};

/// Active edge buffers, rebuilt from the frontier every iteration (the
/// paper's n1/n2 arrays over active edges).  Reused to avoid per-iteration
/// allocation.
struct ActiveEdges {
  AlignedVector<int32_t> Src;
  AlignedVector<int32_t> Dst;
  AlignedVector<float> W;

  void clear() {
    Src.clear();
    Dst.clear();
    W.clear();
  }
  int64_t size() const { return static_cast<int64_t>(Src.size()); }
};

/// Gathers the outgoing edges of every frontier vertex.  Works off a
/// CsrView so an in-core Csr and the mmap'd CSR sections of a MappedCsr
/// expand through the same loop; \p Mapped (may be null) receives
/// residency advice for each row about to stream.
void expand(const graph::CsrView &Adj, const graph::MappedCsr *Mapped,
            const graph::Frontier &Cur, bool NeedsWeight, ActiveEdges &Out) {
  Out.clear();
  for (const int32_t V : Cur.vertices()) {
    const int64_t Begin = Adj.RowBegin[V], End = Adj.RowBegin[V + 1];
    if (Mapped)
      Mapped->adviseCsrRange(Begin, End);
    for (int64_t E = Begin; E < End; ++E) {
      Out.Src.push_back(V);
      Out.Dst.push_back(Adj.Col[E]);
      if (NeedsWeight)
        Out.W.push_back(Adj.Weight[E]);
    }
  }
}

/// Everything one relaxation sweep needs.
struct SweepState {
  AlignedVector<float> &Val;    ///< stable values read via nx
  AlignedVector<float> &ValNew; ///< values being relaxed via ny
  graph::Frontier &Next;
};

template <typename Policy>
void sweepSerial(const ActiveEdges &A, SweepState S) {
  const int64_t M = A.size();
  for (int64_t J = 0; J < M; ++J) {
    const int32_t Nx = A.Src[J];
    const int32_t Ny = A.Dst[J];
    const float W = Policy::NeedsWeight ? A.W[J] : 0.0f;
    const float Cand = Policy::candidate(S.Val[Nx], W);
    if (Policy::better(Cand, S.ValNew[Ny])) {
      S.ValNew[Ny] = Cand;
      S.Next.add(Ny);
    }
  }
}

/// Appends the destinations of the lanes in \p M to the next frontier.
void addLanesToFrontier(Mask16 M, IVec Vny, graph::Frontier &Next) {
  alignas(64) int32_t Buf[kLanes];
  const int N = Vny.compressStore(M, Buf);
  for (int I = 0; I < N; ++I)
    Next.add(Buf[I]);
}

/// Conflict-masking sweep.  Every active edge performs the associative
/// update at its destination (relax-at-scatter, as the paper's
/// edge-centric mask versions do); a lane commits only when its
/// destination is conflict free in this pass, so the SIMD utilization is
/// dictated purely by the input's duplicate density.
template <typename Policy>
void sweepMask(const ActiveEdges &A, SweepState S, SimdUtilCounter &Util) {
  const float *WPtr = Policy::NeedsWeight ? A.W.data() : nullptr;

  auto LoadIdx = [&](IVec Pos, Mask16 Lanes) {
    return IVec::maskGather(IVec::zero(), Lanes, A.Dst.data(), Pos);
  };
  auto Commit = [&](Mask16 Safe, IVec Pos, IVec Idx) {
    const IVec Vnx = IVec::maskGather(IVec::zero(), Safe, A.Src.data(), Pos);
    const FVec Vdx = FVec::maskGather(FVec::zero(), Safe, S.Val.data(), Vnx);
    const FVec Vw = WPtr ? FVec::maskGather(FVec::zero(), Safe, WPtr, Pos)
                         : FVec::zero();
    const FVec Cand = Policy::candidate(Vdx, Vw);
    const FVec Cur = FVec::maskGather(FVec::zero(), Safe, S.ValNew.data(),
                                      Idx);
    const Mask16 Better =
        static_cast<Mask16>(Policy::better(Cand, Cur) & Safe);
    if (!Better)
      return;
    Cand.maskScatter(Better, S.ValNew.data(), Idx);
    addLanesToFrontier(Better, Idx, S.Next);
  };
  masking::maskedStreamLoop<B>(A.size(), LoadIdx,
                               masking::AllLanesNeedUpdate{}, Commit, &Util);
}

template <typename Policy>
void sweepInvec(const ActiveEdges &A, SweepState S, ConflictCounter &MeanD1) {
  using Op = typename Policy::ReduceOp;
  const float *WPtr = Policy::NeedsWeight ? A.W.data() : nullptr;
  const int64_t M = A.size();

  for (int64_t J = 0; J < M; J += kLanes) {
    const int64_t Left = M - J;
    const Mask16 Active =
        Left >= kLanes ? kAllLanes
                       : static_cast<Mask16>((1u << Left) - 1u);
    const IVec Vnx = IVec::maskLoad(IVec::zero(), Active, A.Src.data() + J);
    const IVec Vny = IVec::maskLoad(IVec::zero(), Active, A.Dst.data() + J);
    const FVec Vdx = FVec::maskGather(FVec::zero(), Active, S.Val.data(),
                                      Vnx);
    const FVec Vw = WPtr
                        ? FVec::maskLoad(FVec::zero(), Active, WPtr + J)
                        : FVec::zero();
    FVec Cand = Policy::candidate(Vdx, Vw);

    // In-vector reduction: duplicate destinations collapse to their first
    // lane, so the compare-and-scatter below is conflict free.
    const core::InvecResult R = core::invecReduce<Op>(Active, Vny, Cand);
    MeanD1.add(R.Distinct);

    const FVec Cur = FVec::maskGather(FVec::zero(), R.Ret, S.ValNew.data(),
                                      Vny);
    const Mask16 Better =
        static_cast<Mask16>(Policy::better(Cand, Cur) & R.Ret);
    if (!Better)
      continue;
    Cand.maskScatter(Better, S.ValNew.data(), Vny);
    addLanesToFrontier(Better, Vny, S.Next);
  }
}

/// The pre-grouped full edge list the tiling_and_grouping version reuses
/// across iterations.
struct GroupedEdgeSet {
  AlignedVector<int32_t> Src;
  AlignedVector<int32_t> Dst;
  AlignedVector<float> W;
  AlignedVector<Mask16> GroupMask;
  int64_t NumGroups = 0;
};

template <typename Policy>
void sweepGrouped(const GroupedEdgeSet &GE, const graph::Frontier &Cur,
                  SweepState S, int64_t &EdgesProcessed) {
  const int32_t *Flags = Cur.flags();
  for (int64_t G = 0; G < GE.NumGroups; ++G) {
    const Mask16 M = GE.GroupMask[G];
    const IVec Vnx = IVec::load(GE.Src.data() + G * kLanes);
    // Lanes whose source vertex is in the current frontier carry active
    // edges this iteration.
    const IVec InF = IVec::maskGather(IVec::zero(), M, Flags, Vnx);
    const Mask16 ActiveM = static_cast<Mask16>(InF.gt(IVec::zero()) & M);
    if (!ActiveM)
      continue;
    EdgesProcessed += simd::popcount(ActiveM);

    const IVec Vny = IVec::load(GE.Dst.data() + G * kLanes);
    const FVec Vdx = FVec::maskGather(FVec::zero(), ActiveM, S.Val.data(),
                                      Vnx);
    const FVec Vw = Policy::NeedsWeight
                        ? FVec::load(GE.W.data() + G * kLanes)
                        : FVec::zero();
    const FVec Cand = Policy::candidate(Vdx, Vw);
    const FVec CurV = FVec::maskGather(FVec::zero(), ActiveM,
                                       S.ValNew.data(), Vny);
    const Mask16 Better =
        static_cast<Mask16>(Policy::better(Cand, CurV) & ActiveM);
    if (!Better)
      continue;
    // Destinations are pairwise distinct within a group: scatter directly.
    Cand.maskScatter(Better, S.ValNew.data(), Vny);
    addLanesToFrontier(Better, Vny, S.Next);
  }
}

//===----------------------------------------------------------------------===//
// Parallel candidate sweeps (threads > 1)
//
// Workers read Val/ValNew strictly read-only and emit (destination,
// candidate) pairs into per-worker spill lists, pre-filtered against the
// stable ValNew; the serial merge re-applies Policy::better in thread-id
// order.  min/max relaxations are exact, so the merged ValNew equals the
// serial sweep's at any thread count, and a vertex enters Next exactly
// when its final value improved -- the same membership the serial sweep
// produces.  Each chunk kernel mirrors its serial counterpart's
// instruction pattern (and utilization / D1 accounting).
//===----------------------------------------------------------------------===//

template <typename Policy>
void sweepSerialChunk(const ActiveEdges &A, const AlignedVector<float> &Val,
                      const AlignedVector<float> &ValNew, int64_t Lo,
                      int64_t Hi, core::SpillListF &Out) {
  for (int64_t J = Lo; J < Hi; ++J) {
    const int32_t Nx = A.Src[J];
    const int32_t Ny = A.Dst[J];
    const float W = Policy::NeedsWeight ? A.W[J] : 0.0f;
    const float Cand = Policy::candidate(Val[Nx], W);
    if (Policy::better(Cand, ValNew[Ny]))
      Out.push(Ny, Cand);
  }
}

template <typename Policy>
void sweepMaskChunk(const ActiveEdges &A, const AlignedVector<float> &Val,
                    const AlignedVector<float> &ValNew, int64_t Lo, int64_t Hi,
                    core::SpillListF &Out, SimdUtilCounter &Util) {
  const float *WPtr = Policy::NeedsWeight ? A.W.data() : nullptr;

  auto LoadIdx = [&](IVec Pos, Mask16 Lanes) {
    return IVec::maskGather(IVec::zero(), Lanes, A.Dst.data() + Lo, Pos);
  };
  auto Commit = [&](Mask16 Safe, IVec Pos, IVec Idx) {
    const IVec Vnx =
        IVec::maskGather(IVec::zero(), Safe, A.Src.data() + Lo, Pos);
    const FVec Vdx = FVec::maskGather(FVec::zero(), Safe, Val.data(), Vnx);
    const FVec Vw = WPtr ? FVec::maskGather(FVec::zero(), Safe, WPtr + Lo, Pos)
                         : FVec::zero();
    const FVec Cand = Policy::candidate(Vdx, Vw);
    const FVec Cur = FVec::maskGather(FVec::zero(), Safe, ValNew.data(), Idx);
    const Mask16 Better =
        static_cast<Mask16>(Policy::better(Cand, Cur) & Safe);
    if (!Better)
      return;
    Out.push(Better, Idx, Cand);
  };
  masking::maskedStreamLoop<B>(Hi - Lo, LoadIdx, masking::AllLanesNeedUpdate{},
                               Commit, &Util);
}

template <typename Policy>
void sweepInvecChunk(const ActiveEdges &A, const AlignedVector<float> &Val,
                     const AlignedVector<float> &ValNew, int64_t Lo,
                     int64_t Hi, core::SpillListF &Out,
                     ConflictCounter &MeanD1) {
  using Op = typename Policy::ReduceOp;
  const float *WPtr = Policy::NeedsWeight ? A.W.data() : nullptr;

  for (int64_t J = Lo; J < Hi; J += kLanes) {
    const int64_t Left = Hi - J;
    const Mask16 Active =
        Left >= kLanes ? kAllLanes
                       : static_cast<Mask16>((1u << Left) - 1u);
    const IVec Vnx = IVec::maskLoad(IVec::zero(), Active, A.Src.data() + J);
    const IVec Vny = IVec::maskLoad(IVec::zero(), Active, A.Dst.data() + J);
    const FVec Vdx = FVec::maskGather(FVec::zero(), Active, Val.data(), Vnx);
    const FVec Vw = WPtr ? FVec::maskLoad(FVec::zero(), Active, WPtr + J)
                         : FVec::zero();
    FVec Cand = Policy::candidate(Vdx, Vw);
    const core::InvecResult R = core::invecReduce<Op>(Active, Vny, Cand);
    MeanD1.add(R.Distinct);
    const FVec Cur = FVec::maskGather(FVec::zero(), R.Ret, ValNew.data(),
                                      Vny);
    const Mask16 Better =
        static_cast<Mask16>(Policy::better(Cand, Cur) & R.Ret);
    if (!Better)
      continue;
    Out.push(Better, Vny, Cand);
  }
}

template <typename Policy>
void sweepGroupedChunk(const GroupedEdgeSet &GE, const graph::Frontier &Cur,
                       const AlignedVector<float> &Val,
                       const AlignedVector<float> &ValNew, int64_t GLo,
                       int64_t GHi, core::SpillListF &Out,
                       int64_t &EdgesProcessed) {
  const int32_t *Flags = Cur.flags();
  for (int64_t G = GLo; G < GHi; ++G) {
    const Mask16 M = GE.GroupMask[G];
    const IVec Vnx = IVec::load(GE.Src.data() + G * kLanes);
    const IVec InF = IVec::maskGather(IVec::zero(), M, Flags, Vnx);
    const Mask16 ActiveM = static_cast<Mask16>(InF.gt(IVec::zero()) & M);
    if (!ActiveM)
      continue;
    EdgesProcessed += simd::popcount(ActiveM);

    const IVec Vny = IVec::load(GE.Dst.data() + G * kLanes);
    const FVec Vdx = FVec::maskGather(FVec::zero(), ActiveM, Val.data(),
                                      Vnx);
    const FVec Vw = Policy::NeedsWeight
                        ? FVec::load(GE.W.data() + G * kLanes)
                        : FVec::zero();
    const FVec Cand = Policy::candidate(Vdx, Vw);
    const FVec CurV = FVec::maskGather(FVec::zero(), ActiveM, ValNew.data(),
                                       Vny);
    const Mask16 Better =
        static_cast<Mask16>(Policy::better(Cand, CurV) & ActiveM);
    if (!Better)
      continue;
    Out.push(Better, Vny, Cand);
  }
}

/// Applies the per-worker candidate lists in thread-id order.
template <typename Policy>
void mergeCandidates(std::vector<core::SpillListF> &Spills,
                     AlignedVector<float> &ValNew, graph::Frontier &Next) {
  for (core::SpillListF &L : Spills) {
    const int64_t K = L.size();
    for (int64_t I = 0; I < K; ++I) {
      const int32_t Ny = L.Idx[static_cast<size_t>(I)];
      const float Cand = L.Val[static_cast<size_t>(I)];
      if (Policy::better(Cand, ValNew[Ny])) {
        ValNew[Ny] = Cand;
        Next.add(Ny);
      }
    }
    L.clear();
  }
}

template <typename Policy>
FrontierResult runImpl(const graph::EdgeList &G, FrVersion V,
                       const FrontierOptions &O) {
  FrontierResult R;
  const int32_t N = G.NumNodes;
  // Out-of-core substitution: a compatible MappedCsr supplies both the
  // CSR adjacency (exact buildCsr output, so expansion is bit-identical)
  // and the original-order COO arrays the grouping inspector consumes;
  // it also serves a hollow EdgeList whose edges live only in the
  // mapping.
  const graph::MappedCsr *Mapped = O.SharedMapped;
  const bool UseMapped =
      Mapped && Mapped->numNodes() == N &&
      (G.numEdges() == 0 || G.numEdges() == Mapped->numEdges()) &&
      (!Policy::NeedsWeight || Mapped->isWeighted());
  assert((!Policy::NeedsWeight || G.isWeighted() || UseMapped) &&
         "this application requires edge weights");
  const int32_t *ESrc = UseMapped ? Mapped->edgeSrc() : G.Src.data();
  const int32_t *EDst = UseMapped ? Mapped->edgeDst() : G.Dst.data();
  const float *EWt = UseMapped ? Mapped->edgeWeight() : G.Weight.data();
  const int64_t NumEdges = UseMapped ? Mapped->numEdges() : G.numEdges();
  // Reuse a compatible precomputed adjacency (the mapped CSR sections,
  // or PreparedGraph's through the cfv::run facade) instead of
  // rebuilding CSR on every run.
  const bool ShareCsr = !UseMapped && O.SharedCsr &&
                        O.SharedCsr->NumNodes == N &&
                        O.SharedCsr->numEdges() == G.numEdges();
  graph::Csr LocalAdj;
  graph::CsrView Adj;
  if (UseMapped) {
    Adj = Mapped->csrView();
  } else if (ShareCsr) {
    Adj = graph::CsrView::of(*O.SharedCsr);
  } else {
    LocalAdj = graph::buildCsr(G);
    Adj = graph::CsrView::of(LocalAdj);
  }

  AlignedVector<float> Val(N), ValNew(N);
  for (int32_t I = 0; I < N; ++I)
    Val[I] = Policy::farValue(I);
  graph::Frontier Cur(N), Next(N);
  if (Policy::AllVerticesStart) {
    for (int32_t I = 0; I < N; ++I)
      Cur.add(I);
  } else {
    assert(O.Source >= 0 && O.Source < N && "source out of range");
    Val[O.Source] = Policy::sourceValue();
    Cur.add(O.Source);
  }
  ValNew = Val;

  // One-time data reorganization for the inspector/executor version: tile
  // then group the full edge list; iterations reuse it via the frontier
  // flags (the ICS'16 reuse technique).
  GroupedEdgeSet GE;
  if (V == FrVersion::TilingGrouping) {
    WallTimer TT;
    const inspector::TilingResult *SharedTiling =
        O.SharedTiling && O.SharedTiling->BlockBits == O.TileBlockBits &&
                static_cast<int64_t>(O.SharedTiling->Order.size()) == NumEdges
            ? O.SharedTiling
            : nullptr;
    // The inspector reads the whole COO; prime the mapped window once.
    if (UseMapped)
      Mapped->adviseEdgeRange(0, NumEdges);
    inspector::TilingResult LocalTiling;
    if (!SharedTiling)
      LocalTiling =
          inspector::tileByDestination(EDst, NumEdges, N, O.TileBlockBits);
    const inspector::TilingResult &Tiling =
        SharedTiling ? *SharedTiling : LocalTiling;
    R.TilingSeconds = TT.seconds();
    obs::Tracer::instance().recordAt("frontier:tile", "inspector",
                                     monotonicSeconds() - R.TilingSeconds,
                                     R.TilingSeconds);
    WallTimer TG;
    inspector::GroupingResult Grouping =
        inspector::groupConflictFree(EDst, N, Tiling, kLanes);
    GE.Src = inspector::applyGrouping(Grouping, ESrc, int32_t(0));
    GE.Dst = inspector::applyGrouping(Grouping, EDst, int32_t(0));
    if (Policy::NeedsWeight)
      GE.W = inspector::applyGrouping(Grouping, EWt, 0.0f);
    GE.GroupMask = std::move(Grouping.GroupMask);
    GE.NumGroups = Grouping.NumGroups;
    R.GroupingSeconds = TG.seconds();
    obs::Tracer::instance().recordAt(
        "frontier:group", "inspector",
        monotonicSeconds() - R.GroupingSeconds, R.GroupingSeconds);
  }

  ActiveEdges A;
  const int NumThreads = core::resolveThreads(O.Threads);
  std::vector<SimdUtilCounter> Utils(NumThreads);
  std::vector<ConflictCounter> D1s(NumThreads);
  std::vector<core::SpillListF> Spills(NumThreads > 1 ? NumThreads : 0);
  std::vector<int64_t> GroupEdges(NumThreads, 0);
  const std::vector<int64_t> GroupBounds =
      V == FrVersion::TilingGrouping && NumThreads > 1
          ? core::chunkBounds(GE.NumGroups, NumThreads, 1)
          : std::vector<int64_t>();
  core::ParallelEngine &Engine = core::ParallelEngine::instance();

  WallTimer Compute;
  while (!Cur.empty() && R.Iterations < O.MaxIterations) {
    if (core::shouldStop(O)) {
      R.TimedOut = true;
      break;
    }
    if (NumThreads > 1) {
      // Parallel candidate sweep + deterministic merge.
      if (V == FrVersion::TilingGrouping) {
        Engine.run(NumThreads, [&](int Tid) {
          sweepGroupedChunk<Policy>(GE, Cur, Val, ValNew, GroupBounds[Tid],
                                    GroupBounds[Tid + 1], Spills[Tid],
                                    GroupEdges[Tid]);
        });
      } else {
        expand(Adj, UseMapped ? Mapped : nullptr, Cur, Policy::NeedsWeight,
               A);
        R.EdgesProcessed += A.size();
        const std::vector<int64_t> Bounds =
            core::chunkBounds(A.size(), NumThreads, kLanes);
        Engine.run(NumThreads, [&](int Tid) {
          switch (V) {
          case FrVersion::NontilingSerial:
            sweepSerialChunk<Policy>(A, Val, ValNew, Bounds[Tid],
                                     Bounds[Tid + 1], Spills[Tid]);
            return;
          case FrVersion::NontilingMask:
            sweepMaskChunk<Policy>(A, Val, ValNew, Bounds[Tid],
                                   Bounds[Tid + 1], Spills[Tid], Utils[Tid]);
            return;
          case FrVersion::NontilingInvec:
            sweepInvecChunk<Policy>(A, Val, ValNew, Bounds[Tid],
                                    Bounds[Tid + 1], Spills[Tid], D1s[Tid]);
            return;
          case FrVersion::TilingGrouping:
            return; // handled above
          }
        });
      }
      mergeCandidates<Policy>(Spills, ValNew, Next);
    } else {
      SweepState S{Val, ValNew, Next};
      if (V == FrVersion::TilingGrouping) {
        sweepGrouped<Policy>(GE, Cur, S, R.EdgesProcessed);
      } else {
        expand(Adj, UseMapped ? Mapped : nullptr, Cur, Policy::NeedsWeight,
               A);
        R.EdgesProcessed += A.size();
        switch (V) {
        case FrVersion::NontilingSerial:
          sweepSerial<Policy>(A, S);
          break;
        case FrVersion::NontilingMask:
          sweepMask<Policy>(A, S, Utils[0]);
          break;
        case FrVersion::NontilingInvec:
          sweepInvec<Policy>(A, S, D1s[0]);
          break;
        case FrVersion::TilingGrouping:
          break; // handled above
        }
      }
    }
    // Publish this iteration's relaxations and advance the wave.
    for (const int32_t W : Next.vertices())
      Val[W] = ValNew[W];
    ++R.Iterations;
    Cur.clear();
    Cur.swap(Next);
  }
  R.ComputeSeconds = Compute.seconds();
  for (const int64_t E : GroupEdges)
    R.EdgesProcessed += E;

  R.Value = std::move(Val);
  SimdUtilCounter Util;
  for (const SimdUtilCounter &U : Utils)
    Util.merge(U);
  ConflictCounter MeanD1;
  for (const ConflictCounter &D : D1s)
    MeanD1.merge(D);
  R.SimdUtil = Util.utilization();
  R.UtilHist = Util.laneHistogram();
  R.MeanD1 = MeanD1.count() ? MeanD1.mean() : 0.0;
  R.D1Hist = MeanD1.histogram();
  return R;
}

} // namespace

// Compiled once per backend variant; the public apps::runFrontier
// forwards here through core::dispatch().
FrontierResult apps::CFV_VARIANT_NS::runFrontier(const graph::EdgeList &G,
                                                 FrApp A, FrVersion V,
                                                 const FrontierOptions &O) {
  switch (A) {
  case FrApp::Sssp:
    return runImpl<SsspPolicy>(G, V, O);
  case FrApp::Sswp:
    return runImpl<SswpPolicy>(G, V, O);
  case FrApp::Wcc:
    return runImpl<WccPolicy>(G, V, O);
  case FrApp::Bfs:
    return runImpl<BfsPolicy>(G, V, O);
  }
  assert(false && "unknown frontier application");
  return {};
}
