//===- tests/parallel_engine_test.cpp - Multi-core execution engine --------===//
//
// Part of the cfv project: reproduction of Jiang & Agrawal, CGO 2018.
//
//===----------------------------------------------------------------------===//
//
// Engine unit tests (thread-count policy, chunking, pool, privatization,
// deterministic merge) plus application-level equivalence: every app at
// threads {1, 2, 7, 16} on both backends must match the single-core
// scalar reference within the dispatch-test tolerances, a fixed thread
// count must be run-to-run deterministic (bitwise), and threads=1 must
// be bit-identical to the default serial run.
//
//===----------------------------------------------------------------------===//

#include "core/Dispatch.h"
#include "core/ParallelEngine.h"
#include "graph/Generators.h"
#include "workload/KeyGen.h"

#include "gtest/gtest.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

using namespace cfv;
using namespace cfv::apps;

namespace {

/// Scoped environment override restoring the prior value on destruction.
class ScopedEnv {
public:
  ScopedEnv(const char *Name, const char *Value) : Name(Name) {
    if (const char *Old = std::getenv(Name)) {
      Saved = Old;
      HadOld = true;
    }
    if (Value)
      ::setenv(Name, Value, 1);
    else
      ::unsetenv(Name);
  }
  ~ScopedEnv() {
    if (HadOld)
      ::setenv(Name.c_str(), Saved.c_str(), 1);
    else
      ::unsetenv(Name.c_str());
  }

private:
  std::string Name, Saved;
  bool HadOld = false;
};

const int kThreadCounts[] = {1, 2, 7, 16};

const core::BackendKind kBackends[] = {core::BackendKind::Scalar,
                                       core::BackendKind::Avx2,
                                       core::BackendKind::Avx512};

/// Relative-tolerance element comparison (the dispatch-test contract).
template <typename Vec>
void expectNearRel(const Vec &Got, const Vec &Want, double Tol,
                   const char *What) {
  ASSERT_EQ(Got.size(), Want.size()) << What;
  for (std::size_t I = 0; I < Want.size(); ++I) {
    if (std::isinf(Want[I])) {
      ASSERT_EQ(Got[I], Want[I]) << What << " elem " << I;
      continue;
    }
    ASSERT_NEAR(Got[I], Want[I], Tol * (1.0 + std::abs(double(Want[I]))))
        << What << " elem " << I;
  }
}

/// Bitwise equality (determinism checks).
template <typename Vec>
void expectBitEqual(const Vec &A, const Vec &B, const char *What) {
  ASSERT_EQ(A.size(), B.size()) << What;
  if (!A.empty()) {
    ASSERT_EQ(std::memcmp(A.data(), B.data(),
                          A.size() * sizeof(A[0])), 0)
        << What;
  }
}

} // namespace

//===----------------------------------------------------------------------===//
// Thread-count policy
//===----------------------------------------------------------------------===//

TEST(ResolveThreads, ExplicitRequestWins) {
  ScopedEnv Env("CFV_THREADS", "5");
  EXPECT_EQ(core::resolveThreads(1), 1);
  EXPECT_EQ(core::resolveThreads(3), 3);
  EXPECT_EQ(core::resolveThreads(core::kMaxThreads + 100), core::kMaxThreads);
}

TEST(ResolveThreads, EnvFallback) {
  {
    ScopedEnv Env("CFV_THREADS", nullptr);
    EXPECT_EQ(core::resolveThreads(0), 1);
    EXPECT_EQ(core::resolveThreads(-2), 1);
  }
  {
    ScopedEnv Env("CFV_THREADS", "4");
    EXPECT_EQ(core::resolveThreads(0), 4);
  }
  {
    ScopedEnv Env("CFV_THREADS", "banana");
    EXPECT_EQ(core::resolveThreads(0), 1);
  }
  {
    ScopedEnv Env("CFV_THREADS", "0");
    EXPECT_EQ(core::resolveThreads(0), core::hardwareThreads());
  }
}

//===----------------------------------------------------------------------===//
// Iteration-space partitioning
//===----------------------------------------------------------------------===//

TEST(ChunkBounds, CoversAndAligns) {
  for (const int64_t N : {int64_t(0), int64_t(7), int64_t(16), int64_t(333),
                          int64_t(100000)}) {
    for (const int T : {1, 2, 7, 16}) {
      const std::vector<int64_t> B = core::chunkBounds(N, T, 16);
      ASSERT_EQ(static_cast<int>(B.size()), T + 1);
      EXPECT_EQ(B.front(), 0);
      EXPECT_EQ(B.back(), N);
      for (int I = 1; I <= T; ++I) {
        EXPECT_GE(B[I], B[I - 1]);
        // Interior boundaries are SIMD-block aligned so only the final
        // chunk carries a tail.
        if (I < T && B[I] < N) {
          EXPECT_EQ(B[I] % 16, 0) << "N=" << N << " T=" << T << " i=" << I;
        }
      }
    }
  }
}

TEST(ChunkBounds, SingleThreadIsWholeRange) {
  const std::vector<int64_t> B = core::chunkBounds(12345, 1, 16);
  ASSERT_EQ(B.size(), 2u);
  EXPECT_EQ(B[0], 0);
  EXPECT_EQ(B[1], 12345);
}

TEST(ChunkBoundsFromTiles, SnapsToTileBoundaries) {
  const std::vector<int64_t> TileBegin = {0, 100, 220, 300, 1000, 1500};
  for (const int T : {1, 2, 3, 7}) {
    const std::vector<int64_t> B = core::chunkBoundsFromTiles(TileBegin, T);
    ASSERT_EQ(static_cast<int>(B.size()), T + 1);
    EXPECT_EQ(B.front(), 0);
    EXPECT_EQ(B.back(), 1500);
    for (int I = 0; I <= T; ++I) {
      EXPECT_TRUE(std::find(TileBegin.begin(), TileBegin.end(), B[I]) !=
                  TileBegin.end())
          << "bound " << B[I] << " is not a tile boundary";
      if (I > 0) {
        EXPECT_GE(B[I], B[I - 1]);
      }
    }
  }
}

//===----------------------------------------------------------------------===//
// Worker pool
//===----------------------------------------------------------------------===//

TEST(ParallelEnginePool, EveryThreadIdRunsOnce) {
  for (const int T : {1, 2, 7, 16}) {
    std::vector<std::atomic<int>> Hits(T);
    for (auto &H : Hits)
      H = 0;
    const std::thread::id Caller = std::this_thread::get_id();
    std::atomic<bool> Tid0OnCaller{false};
    core::ParallelEngine::instance().run(T, [&](int Tid) {
      ++Hits[Tid];
      if (Tid == 0 && std::this_thread::get_id() == Caller)
        Tid0OnCaller = true;
    });
    for (int I = 0; I < T; ++I)
      EXPECT_EQ(Hits[I].load(), 1) << "tid " << I << " at T=" << T;
    EXPECT_TRUE(Tid0OnCaller.load()) << "caller must participate as tid 0";
  }
}

TEST(ParallelEnginePool, NestedRunDegradesWithoutDeadlock) {
  std::atomic<int> Outer{0}, Inner{0};
  core::ParallelEngine::instance().run(4, [&](int) {
    ++Outer;
    core::ParallelEngine::instance().run(4, [&](int Tid) {
      // A nested run from a pool context executes only tid 0, serially.
      EXPECT_EQ(Tid, 0);
      ++Inner;
    });
  });
  EXPECT_EQ(Outer.load(), 4);
  EXPECT_EQ(Inner.load(), 4);
}

TEST(ParallelEnginePool, ManySmallRuns) {
  // Reuse stress: the pool must survive rapid successive jobs.
  std::atomic<int64_t> Sum{0};
  for (int I = 0; I < 200; ++I)
    core::ParallelEngine::instance().run(3, [&](int Tid) { Sum += Tid; });
  EXPECT_EQ(Sum.load(), 200 * (0 + 1 + 2));
}

//===----------------------------------------------------------------------===//
// Privatized accumulators and merges
//===----------------------------------------------------------------------===//

TEST(MergeTreeAdd, MatchesSerialSumAndResets) {
  const int64_t N = 5000;
  for (const int Replicas : {0, 1, 2, 3, 7, 15}) {
    AlignedVector<double> Base(N);
    std::vector<AlignedVector<double>> Parts(Replicas);
    AlignedVector<double> Want(N);
    for (int64_t J = 0; J < N; ++J) {
      Base[J] = double(J) * 0.25;
      Want[J] = Base[J];
    }
    for (int P = 0; P < Replicas; ++P) {
      Parts[P].assign(N, 0.0);
      for (int64_t J = 0; J < N; ++J) {
        Parts[P][J] = double(P + 1) + double(J) * 1e-3;
        Want[J] += Parts[P][J];
      }
    }
    core::mergeTreeAdd(Base.data(), Parts, N);
    for (int64_t J = 0; J < N; J += 97)
      ASSERT_NEAR(Base[J], Want[J], 1e-9) << "replicas=" << Replicas;
    for (const auto &P : Parts)
      for (int64_t J = 0; J < N; J += 131)
        ASSERT_EQ(P[J], 0.0) << "replica not reset";
  }
}

TEST(MergeTreeAdd, FixedPairingIsDeterministic) {
  const int64_t N = 8192; // large enough to take the pool path
  auto RunOnce = [&] {
    AlignedVector<float> Base(N, 0.0f);
    std::vector<AlignedVector<float>> Parts(7);
    for (int P = 0; P < 7; ++P) {
      Parts[P].assign(N, 0.0f);
      for (int64_t J = 0; J < N; ++J)
        Parts[P][J] = 0.1f * float(P + 1) + 1e-3f * float(J % 100);
    }
    core::mergeTreeAdd(Base.data(), Parts, N);
    return Base;
  };
  const AlignedVector<float> A = RunOnce();
  const AlignedVector<float> B = RunOnce();
  expectBitEqual(A, B, "mergeTreeAdd");
}

TEST(SpillList, AppendOrderFold) {
  core::SpillListF L;
  L.push(3, 1.0f);
  L.push(3, 2.0f);
  L.push(0, -1.5f);
  EXPECT_EQ(L.size(), 3);
  AlignedVector<float> Base(4, 10.0f);
  core::applySpillAdd(L, Base.data());
  EXPECT_FLOAT_EQ(Base[3], 13.0f);
  EXPECT_FLOAT_EQ(Base[0], 8.5f);
  L.clear();
  EXPECT_EQ(L.size(), 0);
}

TEST(SpillList, VectorPushCompresses) {
  core::SpillListF L;
  using IVec = simd::VecI32<simd::NativeBackend>;
  using FVec = simd::VecF32<simd::NativeBackend>;
  alignas(64) int32_t Idx[simd::kMaxLanes];
  alignas(64) float Val[simd::kMaxLanes];
  for (int I = 0; I < simd::kMaxLanes; ++I) {
    Idx[I] = I;
    Val[I] = float(I);
  }
  const simd::Mask16 M = 0b101;
  L.push(M, IVec::load(Idx), FVec::load(Val));
  ASSERT_EQ(L.size(), 2);
  EXPECT_EQ(L.Idx[0], 0);
  EXPECT_EQ(L.Idx[1], 2);
  EXPECT_FLOAT_EQ(L.Val[1], 2.0f);
}

TEST(UseDensePrivatization, ByteCapForcesSpill) {
  {
    ScopedEnv Env("CFV_PRIVATE_DENSE_MAX", "0");
    EXPECT_FALSE(core::useDensePrivatization(1024, 4, 1 << 20, 4));
  }
  {
    // Small array, heavy reuse: dense replication is the obvious win.
    ScopedEnv Env("CFV_PRIVATE_DENSE_MAX", nullptr);
    EXPECT_TRUE(core::useDensePrivatization(1024, 4, 1 << 20, 4));
  }
}

//===----------------------------------------------------------------------===//
// Application-level equivalence
//===----------------------------------------------------------------------===//

namespace {

core::RunOptions withThreads(int T) {
  core::RunOptions O;
  O.Threads = T;
  return O;
}

/// Shared inputs, built once.
struct Inputs {
  graph::EdgeList Pr = graph::genRmat(10, 6000, 42);
  graph::EdgeList Wg = graph::genRmat(10, 8000, 7, /*MaxWeight=*/16.0f);
  AlignedVector<int32_t> Keys =
      workload::genKeys(workload::KeyDist::Zipf, 50000, 512, 11);
  AlignedVector<float> Vals = workload::genValues(50000, 12);
  Mesh M = makeTriangulatedGrid(16, 16, 5);
  AlignedVector<float> U0;
  AlignedVector<float> X;
  Inputs() {
    U0.assign(M.NumCells, 0.0f);
    U0[0] = 100.0f;
    X.assign(Wg.NumNodes, 1.0f);
  }
  static const Inputs &get() {
    static Inputs I;
    return I;
  }
};

} // namespace

TEST(ParallelApps, PageRankMatchesScalarReference) {
  const Inputs &In = Inputs::get();
  PageRankOptions Ref;
  Ref.MaxIterations = 5;
  Ref.Tolerance = 0.0f;
  Ref.Threads = 1;
  const PageRankResult Want = core::dispatchFor(core::BackendKind::Scalar)
                                  .PageRank(In.Pr, PrVersion::TilingInvec, Ref);
  for (const core::BackendKind K : kBackends) {
    for (const int T : kThreadCounts) {
      PageRankOptions O = Ref;
      O.Threads = T;
      const PageRankResult Got =
          core::dispatchFor(K).PageRank(In.Pr, PrVersion::TilingInvec, O);
      EXPECT_EQ(Got.Iterations, Want.Iterations);
      expectNearRel(Got.Rank, Want.Rank, 2e-4, "pagerank");
    }
  }
}

TEST(ParallelApps, PageRankThreads1BitIdenticalToDefault) {
  const Inputs &In = Inputs::get();
  ScopedEnv Env("CFV_THREADS", nullptr);
  PageRankOptions O;
  O.MaxIterations = 5;
  O.Tolerance = 0.0f;
  O.Threads = 0; // default serial path
  const PageRankResult A =
      core::dispatchFor(core::BackendKind::Scalar)
          .PageRank(In.Pr, PrVersion::TilingInvec, O);
  O.Threads = 1; // explicit single-thread engine path
  const PageRankResult B =
      core::dispatchFor(core::BackendKind::Scalar)
          .PageRank(In.Pr, PrVersion::TilingInvec, O);
  expectBitEqual(A.Rank, B.Rank, "pagerank T=1 vs default");
}

TEST(ParallelApps, PageRank64MatchesScalarReference) {
  const Inputs &In = Inputs::get();
  PageRankOptions Ref;
  Ref.MaxIterations = 5;
  Ref.Tolerance = 0.0f;
  Ref.Threads = 1;
  const PageRank64Result Want =
      core::dispatchFor(core::BackendKind::Scalar)
          .PageRank64(In.Pr, Pr64Version::Invec, Ref);
  for (const core::BackendKind K : kBackends) {
    for (const int T : kThreadCounts) {
      PageRankOptions O = Ref;
      O.Threads = T;
      const PageRank64Result Got =
          core::dispatchFor(K).PageRank64(In.Pr, Pr64Version::Invec, O);
      expectNearRel(Got.Rank, Want.Rank, 1e-9, "pagerank64");
    }
  }
}

TEST(ParallelApps, FrontierAppsMatchScalarReference) {
  const Inputs &In = Inputs::get();
  // Min/max reductions are exact regardless of merge order, so every
  // thread count must reproduce the reference values exactly.
  for (const FrApp App : {FrApp::Sssp, FrApp::Sswp, FrApp::Wcc}) {
    FrontierOptions Ref;
    Ref.Threads = 1;
    const FrontierResult Want =
        core::dispatchFor(core::BackendKind::Scalar)
            .Frontier(In.Wg, App, FrVersion::NontilingInvec, Ref);
    for (const core::BackendKind K : kBackends) {
      for (const int T : kThreadCounts) {
        FrontierOptions O = Ref;
        O.Threads = T;
        const FrontierResult Got = core::dispatchFor(K).Frontier(
            In.Wg, App, FrVersion::NontilingInvec, O);
        ASSERT_EQ(Got.Value.size(), Want.Value.size());
        for (std::size_t I = 0; I < Want.Value.size(); ++I)
          ASSERT_EQ(Got.Value[I], Want.Value[I])
              << appName(App) << " T=" << T << " vertex " << I;
      }
    }
  }
}

TEST(ParallelApps, MoldynMatchesScalarReference) {
  MoldynOptions Ref;
  Ref.Cells = 4;
  Ref.Threads = 1;
  const MoldynResult Want =
      runMoldyn(Ref, MdVersion::TilingInvec, 2,
                core::dispatchFor(core::BackendKind::Scalar).MoldynForces);
  for (const core::BackendKind K : kBackends) {
    for (const int T : kThreadCounts) {
      MoldynOptions O = Ref;
      O.Threads = T;
      const MoldynResult Got = runMoldyn(
          O, MdVersion::TilingInvec, 2, core::dispatchFor(K).MoldynForces);
      EXPECT_EQ(Got.Atoms, Want.Atoms);
      EXPECT_EQ(Got.Pairs, Want.Pairs);
      EXPECT_NEAR(Got.FinalKinetic, Want.FinalKinetic,
                  1e-3 * (1.0 + std::abs(Want.FinalKinetic)))
          << "T=" << T;
      EXPECT_NEAR(Got.FinalPotential, Want.FinalPotential,
                  1e-3 * (1.0 + std::abs(Want.FinalPotential)))
          << "T=" << T;
    }
  }
}

TEST(ParallelApps, AggregationMatchesScalarReference) {
  const Inputs &In = Inputs::get();
  const AggResult Want =
      core::dispatchFor(core::BackendKind::Scalar)
          .Aggregation(In.Keys.data(), In.Vals.data(), 50000, 512,
                       AggVersion::LinearInvec, withThreads(1));
  for (const core::BackendKind K : kBackends) {
    for (const int T : kThreadCounts) {
      const AggResult Got = core::dispatchFor(K).Aggregation(
          In.Keys.data(), In.Vals.data(), 50000, 512, AggVersion::LinearInvec,
          withThreads(T));
      ASSERT_EQ(Got.Groups.size(), Want.Groups.size()) << "T=" << T;
      for (std::size_t I = 0; I < Want.Groups.size(); ++I) {
        ASSERT_EQ(Got.Groups[I].Key, Want.Groups[I].Key);
        ASSERT_EQ(Got.Groups[I].Cnt, Want.Groups[I].Cnt);
        ASSERT_NEAR(Got.Groups[I].Sum, Want.Groups[I].Sum,
                    1e-4f * (1.0f + std::abs(Want.Groups[I].Sum)));
      }
    }
  }
}

TEST(ParallelApps, ReduceByKeyMatchesScalarReference) {
  const Inputs &In = Inputs::get();
  const RbkResult Want = core::dispatchFor(core::BackendKind::Scalar)
                             .RbkComparison(In.Wg, 2, withThreads(1));
  for (const core::BackendKind K : kBackends) {
    for (const int T : kThreadCounts) {
      const RbkResult Got =
          core::dispatchFor(K).RbkComparison(In.Wg, 2, withThreads(T));
      EXPECT_NEAR(Got.InvecChecksum, Want.InvecChecksum,
                  1e-4 * (1.0 + std::abs(Want.InvecChecksum)))
          << "T=" << T;
      EXPECT_NEAR(Got.InvecChecksum, Got.FusedSerialChecksum,
                  1e-4 * (1.0 + std::abs(Got.FusedSerialChecksum)))
          << "T=" << T;
    }
  }
}

TEST(ParallelApps, SpmvMatchesScalarReference) {
  const Inputs &In = Inputs::get();
  for (const SpmvVersion V :
       {SpmvVersion::CooInvec, SpmvVersion::CsrSerial, SpmvVersion::CooMask}) {
    const SpmvResult Want =
        core::dispatchFor(core::BackendKind::Scalar)
            .Spmv(In.Wg, In.X.data(), V, 1, withThreads(1));
    for (const core::BackendKind K : kBackends) {
      for (const int T : kThreadCounts) {
        const SpmvResult Got =
            core::dispatchFor(K).Spmv(In.Wg, In.X.data(), V, 1,
                                      withThreads(T));
        expectNearRel(Got.Y, Want.Y, 1e-4, versionName(V));
      }
    }
  }
}

TEST(ParallelApps, MeshMatchesScalarReference) {
  const Inputs &In = Inputs::get();
  const MeshRunResult Want =
      core::dispatchFor(core::BackendKind::Scalar)
          .MeshDiffusion(In.M, In.U0.data(), 10, 0.2f, MeshVersion::Invec,
                         withThreads(1));
  for (const core::BackendKind K : kBackends) {
    for (const int T : kThreadCounts) {
      const MeshRunResult Got = core::dispatchFor(K).MeshDiffusion(
          In.M, In.U0.data(), 10, 0.2f, MeshVersion::Invec, withThreads(T));
      expectNearRel(Got.U, Want.U, 1e-4, "mesh");
    }
  }
}

TEST(ParallelApps, FixedThreadCountIsDeterministic) {
  const Inputs &In = Inputs::get();
  // Static chunking + fixed merge pairing: two runs at the same thread
  // count must agree bit for bit, for every app with float output.
  const int T = 8;
  {
    PageRankOptions O;
    O.MaxIterations = 5;
    O.Tolerance = 0.0f;
    O.Threads = T;
    const auto &Tbl = core::dispatch();
    const PageRankResult A = Tbl.PageRank(In.Pr, PrVersion::TilingInvec, O);
    const PageRankResult B = Tbl.PageRank(In.Pr, PrVersion::TilingInvec, O);
    expectBitEqual(A.Rank, B.Rank, "pagerank T=8 determinism");
  }
  {
    const auto &Tbl = core::dispatch();
    const SpmvResult A =
        Tbl.Spmv(In.Wg, In.X.data(), SpmvVersion::CooInvec, 1, withThreads(T));
    const SpmvResult B =
        Tbl.Spmv(In.Wg, In.X.data(), SpmvVersion::CooInvec, 1, withThreads(T));
    expectBitEqual(A.Y, B.Y, "spmv T=8 determinism");
  }
  {
    const auto &Tbl = core::dispatch();
    const MeshRunResult A = Tbl.MeshDiffusion(
        In.M, In.U0.data(), 10, 0.2f, MeshVersion::Invec, withThreads(T));
    const MeshRunResult B = Tbl.MeshDiffusion(
        In.M, In.U0.data(), 10, 0.2f, MeshVersion::Invec, withThreads(T));
    expectBitEqual(A.U, B.U, "mesh T=8 determinism");
  }
  {
    MoldynOptions O;
    O.Cells = 4;
    O.Threads = T;
    const auto Forces = core::dispatch().MoldynForces;
    const MoldynResult A = runMoldyn(O, MdVersion::TilingInvec, 2, Forces);
    const MoldynResult B = runMoldyn(O, MdVersion::TilingInvec, 2, Forces);
    EXPECT_EQ(A.FinalKinetic, B.FinalKinetic);
    EXPECT_EQ(A.FinalPotential, B.FinalPotential);
  }
}

TEST(ParallelApps, ForcedSpillPathMatchesReference) {
  const Inputs &In = Inputs::get();
  // CFV_PRIVATE_DENSE_MAX=0 rejects every dense replica, forcing the
  // sparse spill lists; results must still match.
  const SpmvResult Want =
      core::dispatchFor(core::BackendKind::Scalar)
          .Spmv(In.Wg, In.X.data(), SpmvVersion::CooInvec, 1, withThreads(1));
  ScopedEnv Env("CFV_PRIVATE_DENSE_MAX", "0");
  for (const int T : {2, 7}) {
    const SpmvResult Got =
        core::dispatchFor(core::BackendKind::Scalar)
            .Spmv(In.Wg, In.X.data(), SpmvVersion::CooInvec, 1,
                  withThreads(T));
    expectNearRel(Got.Y, Want.Y, 1e-4, "spmv spill");
  }
  PageRankOptions O;
  O.MaxIterations = 5;
  O.Tolerance = 0.0f;
  O.Threads = 1;
  const PageRankResult PrWant =
      core::dispatchFor(core::BackendKind::Scalar)
          .PageRank(In.Pr, PrVersion::TilingInvec, O);
  O.Threads = 7;
  const PageRankResult PrGot =
      core::dispatchFor(core::BackendKind::Scalar)
          .PageRank(In.Pr, PrVersion::TilingInvec, O);
  expectNearRel(PrGot.Rank, PrWant.Rank, 2e-4, "pagerank spill");
}
