//===- service/RequestScheduler.cpp - Bounded fair work queue -------------===//
//
// Part of the cfv project: reproduction of Jiang & Agrawal, CGO 2018.
//
//===----------------------------------------------------------------------===//

#include "service/RequestScheduler.h"

#include "obs/Metrics.h"
#include "resilience/Fault.h"
#include "util/Clock.h"

#include <algorithm>
#include <chrono>

using namespace cfv;
using namespace cfv::service;

namespace {

/// All queue timing runs on the shared monotonic clock (util/Clock.h), so
/// deadlines, spans, and metrics agree on one time source.
double nowSeconds() { return monotonicSeconds(); }

/// Process-wide mirrors of the per-scheduler Stats (same contract as the
/// DatasetCache mirrors: stats() stays per-instance, the registry
/// aggregates for scraping).
struct SchedCounters {
  obs::Counter &Submitted;
  obs::Counter &Rejected;
  obs::Counter &Completed;
  obs::Counter &Expired;
  obs::Counter &Shed;
  obs::Counter &WatchdogTrips;
  obs::Histogram &QueueSeconds;

  static SchedCounters &get() {
    static SchedCounters C{
        obs::MetricsRegistry::instance().counter(
            "cfv_sched_submitted_total", "", "Tasks admitted to the queue"),
        obs::MetricsRegistry::instance().counter(
            "cfv_sched_rejected_total", "",
            "Tasks rejected with backpressure (queue full)"),
        obs::MetricsRegistry::instance().counter(
            "cfv_sched_completed_total", "", "Tasks run to completion"),
        obs::MetricsRegistry::instance().counter(
            "cfv_sched_expired_total", "",
            "Tasks whose deadline expired while queued"),
        obs::MetricsRegistry::instance().counter(
            "cfv_shed_total", "",
            "Tasks shed by the overload watermarks (overloaded rejections)"),
        obs::MetricsRegistry::instance().counter(
            "cfv_watchdog_trips_total", "",
            "Stalled-task detections by the scheduler watchdog"),
        obs::MetricsRegistry::instance().histogram(
            "cfv_sched_queue_seconds", obs::log2Bounds(1e-6, 26), "",
            "Seconds a task waited in the queue before running")};
    return C;
  }
};

/// EWMA smoothing for the observed-latency watermark: heavy enough on
/// history to ride out one slow task, light enough to track a regime
/// change within a handful of completions.
constexpr double kEwmaAlpha = 0.2;

} // namespace

RequestScheduler::RequestScheduler(Config C) : Cfg(C) {
  obs::MetricsRegistry::instance().gauge(
      "cfv_sched_queue_depth",
      [this] {
        std::lock_guard<std::mutex> Lock(Mu);
        return static_cast<double>(QueuedCount);
      },
      "", "Tasks admitted but not yet running");
  const int N = std::max(1, Cfg.Workers);
  Slots.resize(static_cast<size_t>(N));
  Workers.reserve(N);
  for (int I = 0; I < N; ++I)
    Workers.emplace_back([this, I] { workerLoop(I); });
  if (Cfg.WatchdogSeconds > 0.0)
    Watchdog = std::thread([this] { watchdogLoop(); });
}

RequestScheduler::~RequestScheduler() {
  // The gauge callback captures `this`; drop it before teardown.
  obs::MetricsRegistry::instance().removeGauge("cfv_sched_queue_depth");
  {
    std::lock_guard<std::mutex> Lock(Mu);
    Stop = true;
  }
  CvWork.notify_all();
  CvStop.notify_all();
  for (std::thread &W : Workers)
    W.join();
  if (Watchdog.joinable())
    Watchdog.join();
}

Status RequestScheduler::submit(const std::string &Key, double TimeoutSeconds,
                                Task T) {
  return submit(Key, TimeoutSeconds, std::move(T), SubmitExtras{});
}

Status RequestScheduler::submit(const std::string &Key, double TimeoutSeconds,
                                Task T, const SubmitExtras &Extras) {
  {
    std::lock_guard<std::mutex> Lock(Mu);
    if (Stop || DrainWaiters > 0)
      return Status::error(ErrorCode::ShuttingDown,
                           "scheduler draining; not admitting work");
    if (QueuedCount >= Cfg.QueueDepth) {
      ++Counters.Rejected;
      SchedCounters::get().Rejected.inc();
      return Status::error(ErrorCode::Unavailable,
                           "queue full (" + std::to_string(Cfg.QueueDepth) +
                               " requests pending); retry later");
    }

    // Overload watermarks: shed with a backoff hint while the queue
    // still has headroom, so well-behaved clients never see the hard
    // full-queue wall.  Both gates are off by default.
    if (shedDecisionLocked(Extras.RetryAfterMs)) {
      ++Counters.Shed;
      SchedCounters::get().Shed.inc();
      const int64_t ShedAt =
          (static_cast<int64_t>(Cfg.QueueDepth) * Cfg.ShedQueuePct + 99) / 100;
      const bool QueueShed = Cfg.ShedQueuePct < 100 && QueuedCount >= ShedAt;
      return Status::error(
          ErrorCode::Overloaded,
          QueueShed ? "shedding load (queue past " +
                          std::to_string(Cfg.ShedQueuePct) + "% watermark)"
                    : "shedding load (observed latency past watermark)");
    }

    Pending P;
    P.Run = std::move(T);
    P.OnStall = Extras.OnStall;
    P.EnqueuedAt = nowSeconds();
    P.Deadline = TimeoutSeconds > 0.0 ? P.EnqueuedAt + TimeoutSeconds : 0.0;
    auto It = Queues.find(Key);
    if (It == Queues.end()) {
      Queues.emplace(Key, std::deque<Pending>{}).first->second.push_back(
          std::move(P));
      KeyOrder.push_back(Key);
    } else {
      It->second.push_back(std::move(P));
    }
    ++QueuedCount;
    ++Counters.Submitted;
    SchedCounters::get().Submitted.inc();
    Counters.Queued = QueuedCount;
  }
  CvWork.notify_one();
  return Status();
}

bool RequestScheduler::shedDecisionLocked(int64_t *RetryAfterMs) const {
  const int64_t ShedAt =
      (static_cast<int64_t>(Cfg.QueueDepth) * Cfg.ShedQueuePct + 99) / 100;
  const bool QueueShed = Cfg.ShedQueuePct < 100 && QueuedCount >= ShedAt;
  const bool LatencyShed = Cfg.ShedLatencySeconds > 0.0 &&
                           EwmaTaskSeconds > Cfg.ShedLatencySeconds &&
                           QueuedCount > 0;
  if (!QueueShed && !LatencyShed)
    return false;
  // Backoff hint: the time for the current backlog to clear at the
  // observed per-task latency, floored so a cold EWMA still asks for a
  // real pause and capped so the hint stays actionable.
  const double PerTask = std::max(EwmaTaskSeconds, 0.005);
  const double Workers = static_cast<double>(std::max(1, Cfg.Workers));
  const int64_t HintMs = static_cast<int64_t>(
      static_cast<double>(QueuedCount + 1) * PerTask / Workers * 1000.0);
  if (RetryAfterMs)
    *RetryAfterMs = std::clamp<int64_t>(HintMs, 10, 5000);
  return true;
}

bool RequestScheduler::wouldShed(int64_t *RetryAfterMs) const {
  std::lock_guard<std::mutex> Lock(Mu);
  if (shedDecisionLocked(RetryAfterMs))
    return true;
  if (QueuedCount >= Cfg.QueueDepth) {
    // The hard bound counts as "shed" for the pre-parse gate: a request
    // admitted past it would only be refused with Unavailable anyway.
    if (RetryAfterMs) {
      const double PerTask = std::max(EwmaTaskSeconds, 0.005);
      const double Workers = static_cast<double>(std::max(1, Cfg.Workers));
      const int64_t HintMs = static_cast<int64_t>(
          static_cast<double>(QueuedCount + 1) * PerTask / Workers * 1000.0);
      *RetryAfterMs = std::clamp<int64_t>(HintMs, 10, 5000);
    }
    return true;
  }
  return false;
}

bool RequestScheduler::popLocked(Pending &Out) {
  if (KeyOrder.empty())
    return false;
  Cursor %= KeyOrder.size();
  std::deque<Pending> &Q = Queues[KeyOrder[Cursor]];
  Out = std::move(Q.front());
  Q.pop_front();
  if (Q.empty()) {
    Queues.erase(KeyOrder[Cursor]);
    KeyOrder.erase(KeyOrder.begin() + static_cast<ptrdiff_t>(Cursor));
    // Cursor now points at the next key in the ring.
  } else {
    ++Cursor;
  }
  --QueuedCount;
  Counters.Queued = QueuedCount;
  return true;
}

void RequestScheduler::workerLoop(int Slot) {
  std::unique_lock<std::mutex> Lock(Mu);
  while (true) {
    CvWork.wait(Lock, [this] { return Stop || QueuedCount > 0; });
    Pending P;
    if (!popLocked(P)) {
      if (Stop) {
        // A drain() racing with destruction must still see its final
        // wakeup: this worker leaving can be the event that makes the
        // pool idle.
        CvIdle.notify_all();
        return;
      }
      continue;
    }
    ++Running;
    TaskInfo Info;
    const double Now = nowSeconds();
    Info.QueueSeconds = std::max(0.0, Now - P.EnqueuedAt);
    Info.DeadlineExpired = P.Deadline > 0.0 && Now >= P.Deadline;
    if (Info.DeadlineExpired) {
      ++Counters.Expired;
      SchedCounters::get().Expired.inc();
    }
    SchedCounters::get().QueueSeconds.observe(Info.QueueSeconds);
    WorkerSlot &S = Slots[static_cast<size_t>(Slot)];
    S.Active = true;
    S.Tripped = false;
    S.StartedAt = Now;
    S.OnStall = std::move(P.OnStall);
    Lock.unlock();
    // sched.worker_stall simulates a wedged worker: sleep past the
    // watchdog budget (or a flat 50ms when no watchdog is armed) before
    // the task runs, so the watchdog path gets exercised end to end.
    if (fault::fire(fault::Point::SchedWorkerStall)) {
      const double Budget = Cfg.WatchdogSeconds > 0.0
                                ? Cfg.WatchdogSeconds * 1.5
                                : 0.05;
      std::this_thread::sleep_for(
          std::chrono::milliseconds(static_cast<int64_t>(Budget * 1000.0)));
    }
    P.Run(Info);
    Lock.lock();
    S.Active = false;
    S.OnStall = nullptr;
    const double TaskSeconds = std::max(0.0, nowSeconds() - S.StartedAt);
    EwmaTaskSeconds = EwmaTaskSeconds == 0.0
                          ? TaskSeconds
                          : (1.0 - kEwmaAlpha) * EwmaTaskSeconds +
                                kEwmaAlpha * TaskSeconds;
    --Running;
    ++Counters.Completed;
    SchedCounters::get().Completed.inc();
    if (QueuedCount == 0 && Running == 0)
      CvIdle.notify_all();
  }
}

void RequestScheduler::watchdogLoop() {
  // Tick at a quarter of the budget (floored at 10ms) so a stall is
  // detected within ~1.25 budgets of its start.
  const auto Tick = std::chrono::milliseconds(std::max<int64_t>(
      10, static_cast<int64_t>(Cfg.WatchdogSeconds * 250.0)));
  std::unique_lock<std::mutex> Lock(Mu);
  while (!Stop) {
    CvStop.wait_for(Lock, Tick, [this] { return Stop; });
    if (Stop)
      return;
    const double Now = nowSeconds();
    for (WorkerSlot &S : Slots) {
      if (!S.Active || S.Tripped || Now - S.StartedAt < Cfg.WatchdogSeconds)
        continue;
      S.Tripped = true;
      ++Counters.WatchdogTrips;
      SchedCounters::get().WatchdogTrips.inc();
      // The callback completes the caller-visible request (promise,
      // cancel flag) and may take arbitrary time; run it off-lock.  The
      // slot reference stays valid (Slots never resizes) and Tripped
      // prevents a second fire for the same task.
      std::function<void()> Cb = S.OnStall;
      if (Cb) {
        Lock.unlock();
        Cb();
        Lock.lock();
      }
    }
  }
}

void RequestScheduler::drain() {
  std::unique_lock<std::mutex> Lock(Mu);
  // Close admission for the duration: a submit racing with drain is
  // either already queued (we wait for it below) or refused with a
  // structured ShuttingDown -- never admitted-then-forgotten.
  ++DrainWaiters;
  CvIdle.wait(Lock, [this] { return QueuedCount == 0 && Running == 0; });
  // Admission reopens when the last concurrent drain leaves; submitters
  // fail fast rather than block, so nobody needs a wakeup here.
  --DrainWaiters;
}

RequestScheduler::Stats RequestScheduler::stats() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Counters;
}
