//===- apps/moldyn/Moldyn.h - Molecular dynamics (Moldyn) ------*- C++ -*-===//
//
// Part of the cfv project: reproduction of Jiang & Agrawal, CGO 2018.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's particle-simulation application (Figure 12): Lennard-Jones
/// molecular dynamics in reduced units with periodic boundaries.  Each
/// step updates coordinates, computes pair forces over a cutoff-bounded
/// neighbor list, and integrates velocities (velocity Verlet).  The force
/// loop is a *double* irregular reduction -- every pair accumulates +F
/// into atom i and -F into atom j -- making it the hardest conflict
/// pattern in the evaluation.
///
/// The neighbor list is rebuilt every MoldynOptions::RebuildInterval
/// iterations via cell binning; every rebuild is followed by tiling of the
/// pair list (all four versions, as in §4.3), and the grouping version
/// additionally re-groups.  Inputs are generated on a perturbed FCC
/// lattice, the same family as the original Moldyn distribution's
/// generator (the paper's 16-3.0r / 32-3.0r inputs are not
/// redistributable; see DESIGN.md §2).
///
//===----------------------------------------------------------------------===//

#ifndef CFV_APPS_MOLDYN_MOLDYN_H
#define CFV_APPS_MOLDYN_MOLDYN_H

#include "core/ParallelEngine.h"
#include "core/RunOptions.h"
#include "util/AlignedAlloc.h"
#include "util/Stats.h"

#include <cstdint>
#include <vector>

namespace cfv {
namespace apps {

/// The four execution strategies of Figure 12 (all run on tiled pair
/// lists; tiling accompanies every neighbor-list rebuild).
enum class MdVersion {
  TilingSerial,
  TilingGrouping,
  TilingMask,
  TilingInvec,
};

const char *versionName(MdVersion V);

namespace detail {
// Per-backend-variant force kernels (see core/Variant.h).  Each
// compilation of Moldyn.cpp defines the struct for its own variant; the
// runtime dispatch table routes MoldynSim::computeForces to the right
// one through apps::<variant>::moldynForces.
namespace b_scalar {
struct MoldynKernels;
} // namespace b_scalar
namespace b_avx2 {
struct MoldynKernels;
} // namespace b_avx2
namespace b_avx512 {
struct MoldynKernels;
} // namespace b_avx512
} // namespace detail

struct MoldynOptions : core::RunOptions {
  /// FCC cells per box edge; the atom count is 4 * Cells^3.
  int Cells = 8;
  /// Force cutoff radius in sigma units (the inputs' "3.0r").
  float Cutoff = 3.0f;
  /// Number density in reduced units (classic LJ liquid state point).
  float Density = 0.8442f;
  float TimeStep = 0.002f;
  /// Neighbor list rebuild period in iterations (§4.3 uses 20).
  int RebuildInterval = 20;
  uint64_t Seed = 0x6d6f6cULL;
  int TileBlockBits = 12;
};

/// Signature of a per-backend force dispatch entry (the MoldynForces slot
/// of core::DispatchTable).
class MoldynSim;
using MoldynForceFn = void (*)(MoldynSim &, MdVersion);

/// Simulation state and per-version force kernels, exposed as a class so
/// tests can drive single force evaluations and inspect the state.
class MoldynSim {
public:
  explicit MoldynSim(const MoldynOptions &O);

  /// Pins force evaluation to an explicit backend entry instead of the
  /// process-wide core::dispatch() selection (used by the cfv::run facade
  /// so a per-request backend choice does not mutate global state).
  void setForceDispatch(MoldynForceFn Fn) { ForceFn = Fn; }

  int32_t numAtoms() const { return N; }
  int64_t numPairs() const { return static_cast<int64_t>(PairI.size()); }
  float boxLength() const { return Box; }

  /// Rebuilds the cutoff neighbor list (cell binning) and re-tiles it.
  /// \returns seconds spent {building, tiling}.
  struct RebuildTimes {
    double Neighbor;
    double Tiling;
  };
  RebuildTimes rebuildNeighborList();

  /// Re-groups the tiled pair list for the grouping executor, packing
  /// groups of \p Width pairs (the lane width of the kernel set that
  /// will consume them, DispatchTable::Lanes); returns seconds spent.
  /// Must follow rebuildNeighborList().
  double regroupPairs(int Width);

  /// Evaluates forces into Fx/Fy/Fz with the given strategy; also
  /// accumulates potential energy.  Grouping requires regroupPairs().
  void computeForces(MdVersion V);

  /// One velocity-Verlet step around computeForces: drift, force, kick.
  void step(MdVersion V);

  double kineticEnergy() const;
  double potentialEnergy() const { return PotE; }

  /// Mean SIMD utilization recorded by mask-version force sweeps.
  double simdUtil() const;
  /// Mean D1 recorded by invec-version force sweeps.
  double meanD1() const;
  /// Distribution of D1 per in-vector reduction (both endpoint keyings
  /// count separately); empty when observability is compiled out.
  const LaneHistogram &d1Histogram() const { return D1.histogram(); }
  /// Distribution of useful lanes per mask-version pass.
  const LaneHistogram &utilHistogram() const { return Util.laneHistogram(); }

  const AlignedVector<float> &fx() const { return Fx; }
  const AlignedVector<float> &fy() const { return Fy; }
  const AlignedVector<float> &fz() const { return Fz; }
  const AlignedVector<float> &x() const { return X; }

private:
  friend struct detail::b_scalar::MoldynKernels;
  friend struct detail::b_avx2::MoldynKernels;
  friend struct detail::b_avx512::MoldynKernels;

  void computeForcesSerial();
  /// Serial pair-force sweep over [Lo, Hi) routing the accumulations
  /// through sinks (the parallel engine's privatized targets); the
  /// full-range dense call is computeForcesSerial's implementation.
  void computeForcesSerialRange(int64_t Lo, int64_t Hi, core::FloatSink Ox,
                                core::FloatSink Oy, core::FloatSink Oz,
                                double &Pot) const;

  MoldynOptions Opt;
  MoldynForceFn ForceFn = nullptr;
  int32_t N = 0;
  float Box = 0.0f;

  AlignedVector<float> X, Y, Z;    ///< positions
  AlignedVector<float> Vx, Vy, Vz; ///< velocities
  AlignedVector<float> Fx, Fy, Fz; ///< forces

  AlignedVector<int32_t> PairI, PairJ; ///< tiled neighbor pairs (i < j)
  std::vector<int64_t> TileBegin;      ///< pair-list tile boundaries

  // Grouped pair list (grouping version only).
  AlignedVector<int32_t> GI, GJ;
  AlignedVector<uint16_t> GroupMask;
  int64_t NumGroups = 0;
  int GroupWidth = 0; ///< lane width the groups were packed for
  bool Grouped = false;

  double PotE = 0.0;

  // Instrumentation.
  SimdUtilCounter Util;
  ConflictCounter D1;
};

/// Figure 12 driver: runs \p Iterations steps (one neighbor rebuild, as
/// in the paper's 20-iteration measurement window) and reports per-phase
/// times.
struct MoldynResult {
  int32_t Atoms = 0;
  int64_t Pairs = 0;
  double ComputeSeconds = 0.0;
  double NeighborSeconds = 0.0;
  double TilingSeconds = 0.0;
  double GroupingSeconds = 0.0;
  double SimdUtil = 1.0;
  double MeanD1 = 0.0;
  double FinalKinetic = 0.0;
  double FinalPotential = 0.0;
  /// Per-pass D1 / useful-lane distributions (empty unless the version
  /// that ran records them and observability is compiled in).
  LaneHistogram D1Hist;
  LaneHistogram UtilHist;

  double totalSeconds() const {
    return ComputeSeconds + TilingSeconds + GroupingSeconds;
  }
};

/// \p ForceFn optionally pins force evaluation to one backend's dispatch
/// entry (see MoldynSim::setForceDispatch); nullptr uses core::dispatch().
/// \p ForceLanes is that entry's 32-bit lane width (DispatchTable::Lanes)
/// so the grouping inspector packs groups of the width the executing
/// kernel consumes; 0 reads it from core::dispatch().
MoldynResult runMoldyn(const MoldynOptions &O, MdVersion V,
                       int Iterations = 20, MoldynForceFn ForceFn = nullptr,
                       int ForceLanes = 0);

} // namespace apps
} // namespace cfv

#endif // CFV_APPS_MOLDYN_MOLDYN_H
