//===- tests/simd_vec64_test.cpp - 64-bit lane extension ------------------===//
//
// Part of the cfv project: reproduction of Jiang & Agrawal, CGO 2018.
//
//===----------------------------------------------------------------------===//
//
// The 8-lane 64-bit extension (vpconflictq path): vector semantics,
// conflict detection, masked reductions, and the full in-vector
// reduction on double / int64 payloads, on every backend in the build.
//
//===----------------------------------------------------------------------===//

#include "TestHelpers.h"

#include "core/Api.h"
#include "core/InvecReduce.h"
#include "simd/Vec64.h"

#include <array>
#include <numeric>

using namespace cfv;
using namespace cfv::core;
using namespace cfv::simd;
using namespace cfv::test;

namespace {

using Lane8i = std::array<int64_t, kLanes64>;
using Lane8d = std::array<double, kLanes64>;

template <typename B> VecI64<B> loadIdx64(const Lane8i &L) {
  return VecI64<B>::load(L.data());
}
template <typename B> VecF64<B> loadF64(const Lane8d &L) {
  return VecF64<B>::load(L.data());
}
template <typename B> Lane8i toArray64(VecI64<B> V) {
  Lane8i L;
  V.store(L.data());
  return L;
}
template <typename B> Lane8d toArray64(VecF64<B> V) {
  Lane8d L;
  V.store(L.data());
  return L;
}

Lane8i randomIdx64(Xoshiro256 &Rng, uint32_t Universe) {
  Lane8i L;
  for (int64_t &X : L)
    X = static_cast<int64_t>(Rng.nextBounded(Universe));
  return L;
}

Mask16 randomMask8(Xoshiro256 &Rng) {
  return static_cast<Mask16>(Rng.next() & 0xFF);
}

} // namespace

template <typename B> class Vec64Test : public ::testing::Test {};
TYPED_TEST_SUITE(Vec64Test, AllBackends, );

TYPED_TEST(Vec64Test, BroadcastIotaLoadStore) {
  using B = TypeParam;
  const Lane8i L = toArray64(VecI64<B>::broadcast(int64_t(1) << 40));
  for (int64_t X : L)
    EXPECT_EQ(X, int64_t(1) << 40);
  const Lane8i I = toArray64(VecI64<B>::iota());
  for (int K = 0; K < kLanes64; ++K)
    EXPECT_EQ(I[K], K);

  Lane8d D;
  for (int K = 0; K < kLanes64; ++K)
    D[K] = K * 0.25;
  EXPECT_EQ(toArray64(loadF64<B>(D)), D);
}

TYPED_TEST(Vec64Test, GatherScatterRoundTrip) {
  using B = TypeParam;
  alignas(64) int64_t Base[16];
  for (int I = 0; I < 16; ++I)
    Base[I] = I * 100;
  Lane8i Idx = {7, 0, 3, 3, 15, 2, 9, 1};
  const Lane8i G = toArray64(VecI64<B>::gather(Base, loadIdx64<B>(Idx)));
  for (int I = 0; I < kLanes64; ++I)
    EXPECT_EQ(G[I], Idx[I] * 100);

  alignas(64) double Out[16] = {0};
  Lane8d Val;
  for (int I = 0; I < kLanes64; ++I)
    Val[I] = I + 0.5;
  Lane8i Distinct = {0, 2, 4, 6, 8, 10, 12, 14};
  loadF64<B>(Val).scatter(Out, loadIdx64<B>(Distinct));
  for (int I = 0; I < kLanes64; ++I)
    EXPECT_EQ(Out[2 * I], I + 0.5);
}

TYPED_TEST(Vec64Test, ScatterHighestLaneWinsOnOverlap) {
  using B = TypeParam;
  alignas(64) int64_t Out[4] = {0};
  Lane8i Idx = {1, 2, 1, 3, 0, 1, 2, 0};
  Lane8i Val;
  std::iota(Val.begin(), Val.end(), 10);
  loadIdx64<B>(Val).scatter(Out, loadIdx64<B>(Idx));
  EXPECT_EQ(Out[1], 15);
  EXPECT_EQ(Out[0], 17);
  EXPECT_EQ(Out[2], 16);
  EXPECT_EQ(Out[3], 13);
}

TYPED_TEST(Vec64Test, MaskedOpsAndBlend) {
  using B = TypeParam;
  Lane8i Src;
  std::iota(Src.begin(), Src.end(), 0);
  const Mask16 M = 0x0F;
  const Lane8i L = toArray64(
      VecI64<B>::maskLoad(VecI64<B>::broadcast(-1), M, Src.data()));
  for (int I = 0; I < kLanes64; ++I)
    EXPECT_EQ(L[I], I < 4 ? I : -1);

  const Lane8i Bl = toArray64(VecI64<B>::blend(
      0x03, VecI64<B>::broadcast(5), VecI64<B>::broadcast(9)));
  EXPECT_EQ(Bl[0], 9);
  EXPECT_EQ(Bl[7], 5);
}

TYPED_TEST(Vec64Test, CompressExpandCompressStore) {
  using B = TypeParam;
  Lane8i Src;
  std::iota(Src.begin(), Src.end(), 20);
  const Mask16 M = 0xA1; // lanes 0, 5, 7
  const Lane8i C = toArray64(VecI64<B>::compress(M, loadIdx64<B>(Src)));
  EXPECT_EQ(C[0], 20);
  EXPECT_EQ(C[1], 25);
  EXPECT_EQ(C[2], 27);
  EXPECT_EQ(C[3], 0);

  const Lane8i E = toArray64(VecI64<B>::expand(M, loadIdx64<B>(Src)));
  EXPECT_EQ(E[0], 20);
  EXPECT_EQ(E[5], 21);
  EXPECT_EQ(E[7], 22);
  EXPECT_EQ(E[1], 0);

  alignas(64) int64_t Out[kLanes64];
  EXPECT_EQ(loadIdx64<B>(Src).compressStore(M, Out), 3);
  EXPECT_EQ(Out[2], 27);
}

TYPED_TEST(Vec64Test, ArithmeticAndCompare) {
  using B = TypeParam;
  const auto A = VecI64<B>::broadcast(int64_t(3) << 33);
  const auto Bv = VecI64<B>::broadcast(int64_t(1) << 33);
  EXPECT_EQ(toArray64(A + Bv)[0], int64_t(4) << 33);
  EXPECT_EQ(toArray64(A - Bv)[0], int64_t(2) << 33);
  EXPECT_EQ(toArray64(VecI64<B>::min(A, Bv))[0], int64_t(1) << 33);
  EXPECT_EQ(toArray64(VecI64<B>::max(A, Bv))[0], int64_t(3) << 33);
  EXPECT_EQ(A.gt(Bv), kAllLanes64);
  EXPECT_EQ(A.lt(Bv), 0);
  EXPECT_EQ(A.eq(A), kAllLanes64);

  const auto Fa = VecF64<B>::broadcast(2.5);
  const auto Fb = VecF64<B>::broadcast(0.5);
  EXPECT_EQ(toArray64(Fa * Fb)[3], 1.25);
  EXPECT_EQ(toArray64(Fa / Fb)[3], 5.0);
  EXPECT_EQ(Fa.gt(Fb), kAllLanes64);
}

TYPED_TEST(Vec64Test, BroadcastLaneAndMaskEq) {
  using B = TypeParam;
  Lane8i Src;
  std::iota(Src.begin(), Src.end(), 100);
  const Lane8i L = toArray64(loadIdx64<B>(Src).broadcastLane(6));
  for (int64_t X : L)
    EXPECT_EQ(X, 106);

  const auto V = loadIdx64<B>(Src);
  EXPECT_EQ(V.maskEq(0x0F, V.broadcastLane(2)), 0x04);
}

TYPED_TEST(Vec64Test, ConflictDetection64) {
  using B = TypeParam;
  // 64-bit values that collide only in their full width (same low 32
  // bits, different high bits) must NOT be reported as conflicts.
  Lane8i Idx;
  for (int I = 0; I < kLanes64; ++I)
    Idx[I] = (int64_t(I) << 32) | 7;
  EXPECT_EQ(conflictFreeSubset<B>(kAllLanes64, loadIdx64<B>(Idx)),
            kAllLanes64);

  // Genuine duplicates behave like the 32-bit path.
  const Lane8i Dup = {5, 9, 5, 9, 5, 1, 1, 2};
  EXPECT_EQ(conflictFreeSubset<B>(kAllLanes64, loadIdx64<B>(Dup)),
            static_cast<Mask16>(0b10100011));
}

TYPED_TEST(Vec64Test, ConflictSubsetMatchesReferenceRandomly) {
  using B = TypeParam;
  Xoshiro256 Rng(0x64);
  for (const uint32_t Universe : {1u, 2u, 4u, 32u}) {
    for (int Trial = 0; Trial < 100; ++Trial) {
      const Lane8i Idx = randomIdx64(Rng, Universe);
      const Mask16 Active = randomMask8(Rng);
      Mask16 Want = 0;
      for (int I = 0; I < kLanes64; ++I) {
        if (!testLane(Active, I))
          continue;
        bool First = true;
        for (int J = 0; J < I; ++J)
          if (testLane(Active, J) && Idx[J] == Idx[I])
            First = false;
        if (First)
          Want |= laneBit(I);
      }
      ASSERT_EQ(conflictFreeSubset<B>(Active, loadIdx64<B>(Idx)), Want);
    }
  }
}

TYPED_TEST(Vec64Test, MaskedReduce64) {
  using B = TypeParam;
  Lane8d D;
  for (int I = 0; I < kLanes64; ++I)
    D[I] = I + 1.0;
  EXPECT_DOUBLE_EQ(maskedReduce<OpAdd>(kAllLanes64, loadF64<B>(D)), 36.0);
  EXPECT_DOUBLE_EQ(maskedReduce<OpMin>(0xFE, loadF64<B>(D)), 2.0);
  EXPECT_DOUBLE_EQ(maskedReduce<OpMax>(0x0F, loadF64<B>(D)), 4.0);

  Lane8i N;
  for (int I = 0; I < kLanes64; ++I)
    N[I] = int64_t(1) << (I + 32); // overflows 32-bit accumulation
  EXPECT_EQ(maskedReduce<OpAdd>(0x05, loadIdx64<B>(N)),
            (int64_t(1) << 32) + (int64_t(1) << 34));
}

TYPED_TEST(Vec64Test, InvecReduceOnDoubles) {
  using B = TypeParam;
  Xoshiro256 Rng(0x6464);
  for (const uint32_t Universe : {1u, 2u, 3u, 8u, 64u}) {
    for (int Trial = 0; Trial < 100; ++Trial) {
      const Lane8i Idx = randomIdx64(Rng, Universe);
      Lane8d Val;
      for (double &X : Val)
        X = Rng.nextDouble() - 0.5;
      const Mask16 Active = randomMask8(Rng);

      auto Data = loadF64<B>(Val);
      const InvecResult R =
          invecReduce<OpAdd>(Active, loadIdx64<B>(Idx), Data);

      // Lane-order oracle.
      Mask16 WantRet = 0;
      Lane8d Want = Val;
      for (int I = 0; I < kLanes64; ++I) {
        if (!testLane(Active, I))
          continue;
        bool First = true;
        for (int J = 0; J < I; ++J)
          if (testLane(Active, J) && Idx[J] == Idx[I])
            First = false;
        if (!First)
          continue;
        WantRet |= laneBit(I);
        double Acc = 0.0;
        for (int J = 0; J < kLanes64; ++J)
          if (testLane(Active, J) && Idx[J] == Idx[I])
            Acc += Val[J];
        Want[I] = Acc;
      }
      ASSERT_EQ(R.Ret, WantRet);
      const Lane8d Out = toArray64(Data);
      for (int I = 0; I < kLanes64; ++I) {
        if (!testLane(WantRet, I))
          continue;
        ASSERT_NEAR(Out[I], Want[I], 1e-12)
            << "universe " << Universe << " trial " << Trial;
      }
    }
  }
}

TYPED_TEST(Vec64Test, InvecReduce2ProtocolOnInt64) {
  using B = TypeParam;
  Xoshiro256 Rng(0x6465);
  constexpr int kArr = 32;
  for (int Trial = 0; Trial < 100; ++Trial) {
    const Lane8i Idx = randomIdx64(Rng, kArr);
    Lane8i Val;
    for (int64_t &X : Val)
      X = static_cast<int64_t>(Rng.nextBounded(1000)) << 32;
    const Mask16 Active = randomMask8(Rng);

    AlignedVector<int64_t> ArrA(kArr, 0), ArrB(kArr, 0), Aux(kArr, 0);
    {
      auto D = loadIdx64<B>(Val);
      const InvecResult R =
          invecReduce<OpAdd>(Active, loadIdx64<B>(Idx), D);
      accumulateScatter<OpAdd>(R.Ret, loadIdx64<B>(Idx), D, ArrA.data());
    }
    {
      auto D = loadIdx64<B>(Val);
      const Invec2Result R =
          invecReduce2<OpAdd>(Active, loadIdx64<B>(Idx), D);
      accumulateScatter<OpAdd>(R.Ret1, loadIdx64<B>(Idx), D, ArrB.data());
      accumulateScatter<OpAdd>(R.Ret2, loadIdx64<B>(Idx), D, Aux.data());
      mergeAux<OpAdd>(ArrB.data(), Aux.data(), kArr);
    }
    ASSERT_EQ(ArrA, ArrB) << "trial " << Trial;
  }
}

// The public vlong/vdouble aliases follow NativeBackend, whose 64-bit
// width is 8 on the 512-bit-shaped backends but 4 on AVX2 -- so these
// facade tests derive everything from vlong::kLanes instead of the
// widest-shape simd::kLanes64 constants.
TEST(Api64, InvecAddOnDoubles) {
  constexpr int L = vlong::kLanes;
  const mask Full = static_cast<mask>((1u << L) - 1u);
  // Lanes 2k and 2k+1 reduce into the same index k.
  alignas(64) int64_t Idx[kLanes64] = {};
  for (int I = 0; I < L; ++I)
    Idx[I] = I / 2;
  vdouble Data = vdouble::broadcast(0.5);
  const mask M = invec_add(Full, vlong::load(Idx), Data);
  mask Want = 0;
  for (int I = 0; I < L; I += 2)
    Want = static_cast<mask>(Want | (1u << I));
  EXPECT_EQ(M, Want);
  alignas(64) double Out[kLanes64];
  Data.store(Out);
  for (int I = 0; I < L; ++I)
    EXPECT_DOUBLE_EQ(Out[I], I % 2 == 0 ? 1.0 : 0.5) << "lane " << I;
}

TEST(Api64, InvecMinMaxOnInt64) {
  constexpr int L = vlong::kLanes;
  const mask Full = static_cast<mask>((1u << L) - 1u);
  alignas(64) int64_t Idx[kLanes64] = {};
  alignas(64) int64_t Val[kLanes64] = {};
  for (int I = 0; I < L; ++I) {
    Idx[I] = 4;
    Val[I] = 100 - I;
  }
  vlong DataMin = vlong::load(Val);
  EXPECT_EQ(invec_min(Full, vlong::load(Idx), DataMin), 0x01);
  EXPECT_EQ(DataMin.extract(0), 100 - (L - 1));
  vlong DataMax = vlong::load(Val);
  EXPECT_EQ(invec_max(Full, vlong::load(Idx), DataMax), 0x01);
  EXPECT_EQ(DataMax.extract(0), 100);
}
