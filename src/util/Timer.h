//===- util/Timer.h - Wall-clock timing helpers -----------------*- C++ -*-===//
//
// Part of the cfv project (see AlignedAlloc.h for the project banner).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Wall-clock timers used by the benchmark harnesses.  The paper reports
/// per-phase times (computing / tiling / grouping); PhaseTimer accumulates
/// named phases so a harness can print the same decomposition.
///
//===----------------------------------------------------------------------===//

#ifndef CFV_UTIL_TIMER_H
#define CFV_UTIL_TIMER_H

#include "util/Clock.h"

#include <cassert>
#include <chrono>

namespace cfv {

/// Simple wall-clock stopwatch on the canonical monotonic clock
/// (util/Clock.h) -- the same time source as deadlines and trace spans.
class WallTimer {
public:
  WallTimer() : Start(MonotonicClock::now()) {}

  void reset() { Start = MonotonicClock::now(); }

  /// Seconds elapsed since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(MonotonicClock::now() - Start)
        .count();
  }

private:
  MonotonicClock::time_point Start;
};

/// Accumulates wall time into separately named phases (computing, tiling,
/// grouping, ...).  Phases are identified by small integer ids chosen by
/// the caller.
template <int NumPhases> class PhaseTimer {
public:
  PhaseTimer() {
    for (double &S : Total)
      S = 0.0;
  }

  /// Runs \p Fn and charges its wall time to phase \p Phase.
  template <typename Fn> void time(int Phase, Fn &&F) {
    assert(Phase >= 0 && Phase < NumPhases && "phase id out of range");
    WallTimer T;
    F();
    Total[Phase] += T.seconds();
  }

  void add(int Phase, double Seconds) {
    assert(Phase >= 0 && Phase < NumPhases && "phase id out of range");
    Total[Phase] += Seconds;
  }

  double seconds(int Phase) const {
    assert(Phase >= 0 && Phase < NumPhases && "phase id out of range");
    return Total[Phase];
  }

  double total() const {
    double Sum = 0.0;
    for (double S : Total)
      Sum += S;
    return Sum;
  }

private:
  double Total[NumPhases];
};

} // namespace cfv

#endif // CFV_UTIL_TIMER_H
