//===- tests/rbk_test.cpp - reduce_by_key --------------------------------===//
//
// Part of the cfv project: reproduction of Jiang & Agrawal, CGO 2018.
//
//===----------------------------------------------------------------------===//

#include "apps/rbk/ReduceByKey.h"

#include "graph/Generators.h"
#include "util/Prng.h"

#include "gtest/gtest.h"

#include <algorithm>

using namespace cfv;
using namespace cfv::apps;

namespace {

/// Sorted random key sequence with controlled run lengths.
AlignedVector<int32_t> sortedKeys(int64_t N, uint32_t Universe,
                                  uint64_t Seed) {
  Xoshiro256 Rng(Seed);
  AlignedVector<int32_t> Keys(N);
  for (int32_t &K : Keys)
    K = static_cast<int32_t>(Rng.nextBounded(Universe));
  std::sort(Keys.begin(), Keys.end());
  return Keys;
}

} // namespace

TEST(ReduceByKeySerial, SingleRun) {
  const int32_t Keys[4] = {5, 5, 5, 5};
  const float Vals[4] = {1, 2, 3, 4};
  int32_t OutK[4];
  float OutV[4];
  EXPECT_EQ(reduceByKeySerial(Keys, Vals, 4, OutK, OutV), 1);
  EXPECT_EQ(OutK[0], 5);
  EXPECT_EQ(OutV[0], 10.0f);
}

TEST(ReduceByKeySerial, AlternatingKeysKeepRunsSeparate) {
  // Thrust semantics: non-adjacent equal keys are separate runs.
  const int32_t Keys[5] = {1, 2, 1, 2, 1};
  const float Vals[5] = {1, 1, 1, 1, 1};
  int32_t OutK[5];
  float OutV[5];
  EXPECT_EQ(reduceByKeySerial(Keys, Vals, 5, OutK, OutV), 5);
  for (int I = 0; I < 5; ++I)
    EXPECT_EQ(OutV[I], 1.0f);
}

TEST(ReduceByKeySerial, EmptyInput) {
  EXPECT_EQ(reduceByKeySerial(nullptr, nullptr, 0, nullptr, nullptr), 0);
}

TEST(ReduceByKeyInvec, MatchesSerialOnSortedInputs) {
  for (const uint32_t Universe : {1u, 2u, 7u, 64u, 1024u}) {
    for (const int64_t N : {1, 15, 16, 17, 100, 5000}) {
      const auto Keys = sortedKeys(N, Universe, Universe * 7 + N);
      Xoshiro256 Rng(99);
      AlignedVector<float> Vals(N);
      for (float &V : Vals)
        V = Rng.nextFloat();

      AlignedVector<int32_t> Ka(N), Kb(N);
      AlignedVector<float> Va(N), Vb(N);
      const int64_t Na =
          reduceByKeySerial(Keys.data(), Vals.data(), N, Ka.data(),
                            Va.data());
      const int64_t Nb = reduceByKeyInvec(Keys.data(), Vals.data(), N,
                                          Kb.data(), Vb.data());
      ASSERT_EQ(Na, Nb) << "universe " << Universe << " N " << N;
      for (int64_t I = 0; I < Na; ++I) {
        ASSERT_EQ(Ka[I], Kb[I]);
        ASSERT_NEAR(Va[I], Vb[I], 1e-3) << "run " << I;
      }
    }
  }
}

TEST(ReduceByKeyInvec, RunSpanningManyBlocks) {
  // One key spanning 10 blocks plus a tail key.
  const int64_t N = 161;
  AlignedVector<int32_t> Keys(N, 3);
  Keys[N - 1] = 4;
  AlignedVector<float> Vals(N, 1.0f);
  AlignedVector<int32_t> OutK(N);
  AlignedVector<float> OutV(N);
  const int64_t Runs =
      reduceByKeyInvec(Keys.data(), Vals.data(), N, OutK.data(),
                       OutV.data());
  ASSERT_EQ(Runs, 2);
  EXPECT_EQ(OutK[0], 3);
  EXPECT_FLOAT_EQ(OutV[0], 160.0f);
  EXPECT_EQ(OutK[1], 4);
  EXPECT_FLOAT_EQ(OutV[1], 1.0f);
}

TEST(ReduceByKeyLibraryStyle, MatchesFusedSerial) {
  for (const uint32_t Universe : {1u, 5u, 300u}) {
    const int64_t N = 2000;
    const auto Keys = sortedKeys(N, Universe, Universe);
    Xoshiro256 Rng(17);
    AlignedVector<float> Vals(N);
    for (float &V : Vals)
      V = Rng.nextFloat();
    AlignedVector<int32_t> Ka(N), Kb(N), Scratch(N);
    AlignedVector<float> Va(N), Vb(N);
    const int64_t Na = reduceByKeySerial(Keys.data(), Vals.data(), N,
                                         Ka.data(), Va.data());
    const int64_t Nb = reduceByKeyLibraryStyle(
        Keys.data(), Vals.data(), N, Scratch.data(), Kb.data(), Vb.data());
    ASSERT_EQ(Na, Nb);
    for (int64_t I = 0; I < Na; ++I) {
      ASSERT_EQ(Ka[I], Kb[I]);
      ASSERT_NEAR(Va[I], Vb[I], 1e-3);
    }
  }
}

TEST(RbkComparison, ChecksumsAgreeBetweenPaths) {
  const graph::EdgeList G = graph::genRmat(9, 4000, 0x1B, 8.0f);
  const RbkResult R = runRbkComparison(G, /*Iterations=*/3);
  EXPECT_GT(R.InvecChecksum, 0.0);
  EXPECT_NEAR(R.InvecChecksum, R.ThrustLikeChecksum,
              1e-4 * R.ThrustLikeChecksum);
  EXPECT_NEAR(R.InvecChecksum, R.FusedSerialChecksum,
              1e-4 * R.FusedSerialChecksum);
  EXPECT_GT(R.InvecSeconds, 0.0);
  EXPECT_GT(R.ThrustLikeSeconds, 0.0);
  EXPECT_GT(R.FusedSerialSeconds, 0.0);
}

TEST(RbkComparison, UnweightedGraphUsesUnitValues) {
  const graph::EdgeList G = graph::genUniform(8, 2000, 0x1C);
  const RbkResult R = runRbkComparison(G, /*Iterations=*/2);
  // Every edge contributes 1 per iteration: checksum = 2 * edges.
  EXPECT_NEAR(R.ThrustLikeChecksum, 2.0 * G.numEdges(), 1.0);
  EXPECT_NEAR(R.InvecChecksum, 2.0 * G.numEdges(), 1.0);
}
