//===- simd/Vec.h - 16-lane integer and float vectors -----------*- C++ -*-===//
//
// Part of the cfv project: reproduction of Jiang & Agrawal, CGO 2018.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// VecI32<Backend> and VecF32<Backend>: vectors of int32_t / float with the
/// load/store/gather/scatter and masked operations the paper's programming
/// interface (§3.5) builds on.  Lane width is per-backend (a `kLanes`
/// static on every vector type): 16 for Scalar and Avx512, 8 for Avx2.
/// The Avx512 specializations map 1:1 onto AVX-512F instructions; the Avx2
/// specializations cover the same API over ymm registers, emulating the
/// primitives the ISA lacks (scatter, compress, expand) through small
/// stack buffers with identical lane-ordering; the Scalar specializations
/// are bit-exact emulations whose loops double as documentation of each
/// instruction's semantics (notably the lane-ordering of scatter: on
/// overlap, the highest lane's value survives).
///
//===----------------------------------------------------------------------===//

#ifndef CFV_SIMD_VEC_H
#define CFV_SIMD_VEC_H

#include "simd/Backend.h"
#include "simd/Mask.h"

#include <cassert>
#include <cmath>
#include <cstdint>

namespace cfv {
namespace simd {

template <typename B> struct VecI32;
template <typename B> struct VecF32;

//===----------------------------------------------------------------------===//
// Scalar backend
//===----------------------------------------------------------------------===//

/// 16 x int32_t, portable emulation backend.
template <> struct VecI32<backend::Scalar> {
  static constexpr int kLanes = backend::Scalar::kLanes;

  alignas(64) int32_t Lane[kLanes];

  static VecI32 zero() { return broadcast(0); }

  static VecI32 broadcast(int32_t X) {
    VecI32 R;
    for (int32_t &L : R.Lane)
      L = X;
    return R;
  }

  /// Lanes 0, 1, ..., 15.
  static VecI32 iota() {
    VecI32 R;
    for (int I = 0; I < kLanes; ++I)
      R.Lane[I] = I;
    return R;
  }

  static VecI32 load(const int32_t *P) {
    VecI32 R;
    for (int I = 0; I < kLanes; ++I)
      R.Lane[I] = P[I];
    return R;
  }

  /// Lanes set in \p M are loaded from \p P, others keep \p Src.
  static VecI32 maskLoad(VecI32 Src, Mask16 M, const int32_t *P) {
    for (int I = 0; I < kLanes; ++I)
      if (testLane(M, I))
        Src.Lane[I] = P[I];
    return Src;
  }

  static VecI32 gather(const int32_t *Base, VecI32 Idx) {
    VecI32 R;
    for (int I = 0; I < kLanes; ++I)
      R.Lane[I] = Base[Idx.Lane[I]];
    return R;
  }

  static VecI32 maskGather(VecI32 Src, Mask16 M, const int32_t *Base,
                           VecI32 Idx) {
    for (int I = 0; I < kLanes; ++I)
      if (testLane(M, I))
        Src.Lane[I] = Base[Idx.Lane[I]];
    return Src;
  }

  void store(int32_t *P) const {
    for (int I = 0; I < kLanes; ++I)
      P[I] = Lane[I];
  }

  void maskStore(Mask16 M, int32_t *P) const {
    for (int I = 0; I < kLanes; ++I)
      if (testLane(M, I))
        P[I] = Lane[I];
  }

  /// Scatter writes proceed from lane 0 upward, so on index overlap the
  /// highest lane's value survives -- matching vpscatterdd.
  void scatter(int32_t *Base, VecI32 Idx) const {
    for (int I = 0; I < kLanes; ++I)
      Base[Idx.Lane[I]] = Lane[I];
  }

  void maskScatter(Mask16 M, int32_t *Base, VecI32 Idx) const {
    for (int I = 0; I < kLanes; ++I)
      if (testLane(M, I))
        Base[Idx.Lane[I]] = Lane[I];
  }

  int32_t extract(int L) const {
    assert(L >= 0 && L < kLanes && "lane out of range");
    return Lane[L];
  }

  /// All lanes take the value of lane \p L (vpermd with a splat index).
  VecI32 broadcastLane(int L) const { return broadcast(extract(L)); }

  /// Result lane = (M set ? B : A); AVX-512 mask_mov semantics.
  static VecI32 blend(Mask16 M, VecI32 A, VecI32 B) {
    for (int I = 0; I < kLanes; ++I)
      if (testLane(M, I))
        A.Lane[I] = B.Lane[I];
    return A;
  }

  /// Packs the lanes set in \p M into the low lanes, zeroing the rest
  /// (vpcompressd, zero-masked form).
  static VecI32 compress(Mask16 M, VecI32 V) {
    VecI32 R = zero();
    int Out = 0;
    for (int I = 0; I < kLanes; ++I)
      if (testLane(M, I))
        R.Lane[Out++] = V.Lane[I];
    return R;
  }

  /// Distributes the low popcount(M) lanes of \p V to the lanes set in
  /// \p M, zeroing the rest (vpexpandd, zero-masked form).
  static VecI32 expand(Mask16 M, VecI32 V) {
    VecI32 R = zero();
    int In = 0;
    for (int I = 0; I < kLanes; ++I)
      if (testLane(M, I))
        R.Lane[I] = V.Lane[In++];
    return R;
  }

  /// Stores the lanes set in \p M contiguously at \p P
  /// (vpcompressstoreu); returns the number of lanes written.
  int compressStore(Mask16 M, int32_t *P) const {
    int Out = 0;
    for (int I = 0; I < kLanes; ++I)
      if (testLane(M, I))
        P[Out++] = Lane[I];
    return Out;
  }

  // Arithmetic wraps like the hardware (vpaddd/vpsubd/vpmulld keep the
  // low 32 bits); compute in uint32_t since signed overflow is UB.
  friend VecI32 operator+(VecI32 A, VecI32 B) {
    for (int I = 0; I < kLanes; ++I)
      A.Lane[I] = static_cast<int32_t>(static_cast<uint32_t>(A.Lane[I]) +
                                       static_cast<uint32_t>(B.Lane[I]));
    return A;
  }
  friend VecI32 operator-(VecI32 A, VecI32 B) {
    for (int I = 0; I < kLanes; ++I)
      A.Lane[I] = static_cast<int32_t>(static_cast<uint32_t>(A.Lane[I]) -
                                       static_cast<uint32_t>(B.Lane[I]));
    return A;
  }
  friend VecI32 operator*(VecI32 A, VecI32 B) {
    for (int I = 0; I < kLanes; ++I)
      A.Lane[I] = static_cast<int32_t>(static_cast<uint32_t>(A.Lane[I]) *
                                       static_cast<uint32_t>(B.Lane[I]));
    return A;
  }
  friend VecI32 operator&(VecI32 A, VecI32 B) {
    for (int I = 0; I < kLanes; ++I)
      A.Lane[I] &= B.Lane[I];
    return A;
  }
  friend VecI32 operator|(VecI32 A, VecI32 B) {
    for (int I = 0; I < kLanes; ++I)
      A.Lane[I] |= B.Lane[I];
    return A;
  }

  /// Logical (unsigned) right shift by an immediate count.
  VecI32 shrl(int Count) const {
    VecI32 R;
    for (int I = 0; I < kLanes; ++I)
      R.Lane[I] = static_cast<int32_t>(static_cast<uint32_t>(Lane[I]) >>
                                       Count);
    return R;
  }

  /// Left shift by an immediate count.
  VecI32 shl(int Count) const {
    VecI32 R;
    for (int I = 0; I < kLanes; ++I)
      R.Lane[I] = static_cast<int32_t>(static_cast<uint32_t>(Lane[I])
                                       << Count);
    return R;
  }

  static VecI32 min(VecI32 A, VecI32 B) {
    for (int I = 0; I < kLanes; ++I)
      A.Lane[I] = A.Lane[I] < B.Lane[I] ? A.Lane[I] : B.Lane[I];
    return A;
  }
  static VecI32 max(VecI32 A, VecI32 B) {
    for (int I = 0; I < kLanes; ++I)
      A.Lane[I] = A.Lane[I] > B.Lane[I] ? A.Lane[I] : B.Lane[I];
    return A;
  }

  Mask16 eq(VecI32 O) const {
    Mask16 M = 0;
    for (int I = 0; I < kLanes; ++I)
      if (Lane[I] == O.Lane[I])
        M |= laneBit(I);
    return M;
  }
  Mask16 lt(VecI32 O) const {
    Mask16 M = 0;
    for (int I = 0; I < kLanes; ++I)
      if (Lane[I] < O.Lane[I])
        M |= laneBit(I);
    return M;
  }
  Mask16 gt(VecI32 O) const {
    Mask16 M = 0;
    for (int I = 0; I < kLanes; ++I)
      if (Lane[I] > O.Lane[I])
        M |= laneBit(I);
    return M;
  }

  /// Masked compare-equal: lanes outside \p Active report 0.
  Mask16 maskEq(Mask16 Active, VecI32 O) const {
    return static_cast<Mask16>(eq(O) & Active);
  }
};

/// 16 x float, portable emulation backend.
template <> struct VecF32<backend::Scalar> {
  static constexpr int kLanes = backend::Scalar::kLanes;

  alignas(64) float Lane[kLanes];

  using IdxVec = VecI32<backend::Scalar>;

  static VecF32 zero() { return broadcast(0.0f); }

  static VecF32 broadcast(float X) {
    VecF32 R;
    for (float &L : R.Lane)
      L = X;
    return R;
  }

  static VecF32 load(const float *P) {
    VecF32 R;
    for (int I = 0; I < kLanes; ++I)
      R.Lane[I] = P[I];
    return R;
  }

  static VecF32 maskLoad(VecF32 Src, Mask16 M, const float *P) {
    for (int I = 0; I < kLanes; ++I)
      if (testLane(M, I))
        Src.Lane[I] = P[I];
    return Src;
  }

  static VecF32 gather(const float *Base, IdxVec Idx) {
    VecF32 R;
    for (int I = 0; I < kLanes; ++I)
      R.Lane[I] = Base[Idx.Lane[I]];
    return R;
  }

  static VecF32 maskGather(VecF32 Src, Mask16 M, const float *Base,
                           IdxVec Idx) {
    for (int I = 0; I < kLanes; ++I)
      if (testLane(M, I))
        Src.Lane[I] = Base[Idx.Lane[I]];
    return Src;
  }

  void store(float *P) const {
    for (int I = 0; I < kLanes; ++I)
      P[I] = Lane[I];
  }

  void maskStore(Mask16 M, float *P) const {
    for (int I = 0; I < kLanes; ++I)
      if (testLane(M, I))
        P[I] = Lane[I];
  }

  void scatter(float *Base, IdxVec Idx) const {
    for (int I = 0; I < kLanes; ++I)
      Base[Idx.Lane[I]] = Lane[I];
  }

  void maskScatter(Mask16 M, float *Base, IdxVec Idx) const {
    for (int I = 0; I < kLanes; ++I)
      if (testLane(M, I))
        Base[Idx.Lane[I]] = Lane[I];
  }

  float extract(int L) const {
    assert(L >= 0 && L < kLanes && "lane out of range");
    return Lane[L];
  }

  VecF32 broadcastLane(int L) const { return broadcast(extract(L)); }

  static VecF32 blend(Mask16 M, VecF32 A, VecF32 B) {
    for (int I = 0; I < kLanes; ++I)
      if (testLane(M, I))
        A.Lane[I] = B.Lane[I];
    return A;
  }

  static VecF32 compress(Mask16 M, VecF32 V) {
    VecF32 R = zero();
    int Out = 0;
    for (int I = 0; I < kLanes; ++I)
      if (testLane(M, I))
        R.Lane[Out++] = V.Lane[I];
    return R;
  }

  static VecF32 expand(Mask16 M, VecF32 V) {
    VecF32 R = zero();
    int In = 0;
    for (int I = 0; I < kLanes; ++I)
      if (testLane(M, I))
        R.Lane[I] = V.Lane[In++];
    return R;
  }

  int compressStore(Mask16 M, float *P) const {
    int Out = 0;
    for (int I = 0; I < kLanes; ++I)
      if (testLane(M, I))
        P[Out++] = Lane[I];
    return Out;
  }

  friend VecF32 operator+(VecF32 A, VecF32 B) {
    for (int I = 0; I < kLanes; ++I)
      A.Lane[I] += B.Lane[I];
    return A;
  }
  friend VecF32 operator-(VecF32 A, VecF32 B) {
    for (int I = 0; I < kLanes; ++I)
      A.Lane[I] -= B.Lane[I];
    return A;
  }
  friend VecF32 operator*(VecF32 A, VecF32 B) {
    for (int I = 0; I < kLanes; ++I)
      A.Lane[I] *= B.Lane[I];
    return A;
  }
  friend VecF32 operator/(VecF32 A, VecF32 B) {
    for (int I = 0; I < kLanes; ++I)
      A.Lane[I] /= B.Lane[I];
    return A;
  }

  /// Round to nearest integer, ties to even (vrndscaleps semantics).
  VecF32 round() const {
    VecF32 R;
    for (int I = 0; I < kLanes; ++I)
      R.Lane[I] = std::nearbyintf(Lane[I]);
    return R;
  }

  static VecF32 min(VecF32 A, VecF32 B) {
    for (int I = 0; I < kLanes; ++I)
      A.Lane[I] = A.Lane[I] < B.Lane[I] ? A.Lane[I] : B.Lane[I];
    return A;
  }
  static VecF32 max(VecF32 A, VecF32 B) {
    for (int I = 0; I < kLanes; ++I)
      A.Lane[I] = A.Lane[I] > B.Lane[I] ? A.Lane[I] : B.Lane[I];
    return A;
  }

  Mask16 eq(VecF32 O) const {
    Mask16 M = 0;
    for (int I = 0; I < kLanes; ++I)
      if (Lane[I] == O.Lane[I])
        M |= laneBit(I);
    return M;
  }
  Mask16 lt(VecF32 O) const {
    Mask16 M = 0;
    for (int I = 0; I < kLanes; ++I)
      if (Lane[I] < O.Lane[I])
        M |= laneBit(I);
    return M;
  }
  Mask16 gt(VecF32 O) const {
    Mask16 M = 0;
    for (int I = 0; I < kLanes; ++I)
      if (Lane[I] > O.Lane[I])
        M |= laneBit(I);
    return M;
  }
};

/// Truncating float-to-int conversion (vcvttps2dq).
inline VecI32<backend::Scalar> toInt(VecF32<backend::Scalar> V) {
  VecI32<backend::Scalar> R;
  for (int I = 0; I < backend::Scalar::kLanes; ++I)
    R.Lane[I] = static_cast<int32_t>(V.Lane[I]);
  return R;
}

/// Int-to-float conversion (vcvtdq2ps).
inline VecF32<backend::Scalar> toFloat(VecI32<backend::Scalar> V) {
  VecF32<backend::Scalar> R;
  for (int I = 0; I < backend::Scalar::kLanes; ++I)
    R.Lane[I] = static_cast<float>(V.Lane[I]);
  return R;
}

//===----------------------------------------------------------------------===//
// AVX2 backend
//===----------------------------------------------------------------------===//

#if CFV_HAVE_AVX2

/// Expands the low 8 bits of \p M into a ymm lane mask (lane i all-ones
/// when bit i is set): broadcast, isolate each lane's bit, compare.  This
/// is the bridge between the universal Mask16 representation and AVX2,
/// which has no mask registers.
inline __m256i avx2MaskI32(Mask16 M) {
  const __m256i Bits = _mm256_setr_epi32(1, 2, 4, 8, 16, 32, 64, 128);
  __m256i B = _mm256_and_si256(_mm256_set1_epi32(static_cast<int>(M)), Bits);
  return _mm256_cmpeq_epi32(B, Bits);
}

/// Collapses a ymm compare result (all-ones / all-zeros lanes) to Mask16.
inline Mask16 avx2ToMask(__m256i V) {
  return static_cast<Mask16>(_mm256_movemask_ps(_mm256_castsi256_ps(V)));
}

/// 8 x int32_t backed by one ymm register.
template <> struct VecI32<backend::Avx2> {
  static constexpr int kLanes = backend::Avx2::kLanes;

  __m256i Raw;

  VecI32() = default;
  explicit VecI32(__m256i R) : Raw(R) {}

  static VecI32 zero() { return VecI32(_mm256_setzero_si256()); }
  static VecI32 broadcast(int32_t X) { return VecI32(_mm256_set1_epi32(X)); }

  static VecI32 iota() {
    return VecI32(_mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7));
  }

  static VecI32 load(const int32_t *P) {
    return VecI32(
        _mm256_loadu_si256(reinterpret_cast<const __m256i *>(P)));
  }

  /// vmaskmovd reads only the enabled lanes, so like the AVX-512 masked
  /// load this is safe when the disabled tail runs past the buffer end.
  static VecI32 maskLoad(VecI32 Src, Mask16 M, const int32_t *P) {
    __m256i MV = avx2MaskI32(M);
    __m256i L = _mm256_maskload_epi32(P, MV);
    return VecI32(_mm256_blendv_epi8(Src.Raw, L, MV));
  }

  static VecI32 gather(const int32_t *Base, VecI32 Idx) {
    return VecI32(_mm256_i32gather_epi32(Base, Idx.Raw, 4));
  }

  static VecI32 maskGather(VecI32 Src, Mask16 M, const int32_t *Base,
                           VecI32 Idx) {
    return VecI32(
        _mm256_mask_i32gather_epi32(Src.Raw, Base, Idx.Raw, avx2MaskI32(M), 4));
  }

  void store(int32_t *P) const {
    _mm256_storeu_si256(reinterpret_cast<__m256i *>(P), Raw);
  }

  void maskStore(Mask16 M, int32_t *P) const {
    _mm256_maskstore_epi32(P, avx2MaskI32(M), Raw);
  }

  /// AVX2 has no scatter; the spill loop walks lane 0 upward so on index
  /// overlap the highest lane's value survives, matching vpscatterdd.
  void scatter(int32_t *Base, VecI32 Idx) const {
    alignas(32) int32_t V[kLanes], X[kLanes];
    store(V);
    Idx.store(X);
    for (int I = 0; I < kLanes; ++I)
      Base[X[I]] = V[I];
  }

  void maskScatter(Mask16 M, int32_t *Base, VecI32 Idx) const {
    alignas(32) int32_t V[kLanes], X[kLanes];
    store(V);
    Idx.store(X);
    for (int I = 0; I < kLanes; ++I)
      if (testLane(M, I))
        Base[X[I]] = V[I];
  }

  int32_t extract(int L) const {
    assert(L >= 0 && L < kLanes && "lane out of range");
    alignas(32) int32_t Buf[kLanes];
    store(Buf);
    return Buf[L];
  }

  VecI32 broadcastLane(int L) const {
    return VecI32(_mm256_permutevar8x32_epi32(Raw, _mm256_set1_epi32(L)));
  }

  static VecI32 blend(Mask16 M, VecI32 A, VecI32 B) {
    return VecI32(_mm256_blendv_epi8(A.Raw, B.Raw, avx2MaskI32(M)));
  }

  /// vpcompressd emulation (zero-masked form).
  static VecI32 compress(Mask16 M, VecI32 V) {
    alignas(32) int32_t In[kLanes], Out[kLanes] = {};
    V.store(In);
    int N = 0;
    for (int I = 0; I < kLanes; ++I)
      if (testLane(M, I))
        Out[N++] = In[I];
    return load(Out);
  }

  /// vpexpandd emulation (zero-masked form).
  static VecI32 expand(Mask16 M, VecI32 V) {
    alignas(32) int32_t In[kLanes], Out[kLanes] = {};
    V.store(In);
    int N = 0;
    for (int I = 0; I < kLanes; ++I)
      if (testLane(M, I))
        Out[I] = In[N++];
    return load(Out);
  }

  /// vpcompressstoreu emulation; returns the number of lanes written.
  int compressStore(Mask16 M, int32_t *P) const {
    alignas(32) int32_t In[kLanes];
    store(In);
    int N = 0;
    for (int I = 0; I < kLanes; ++I)
      if (testLane(M, I))
        P[N++] = In[I];
    return N;
  }

  friend VecI32 operator+(VecI32 A, VecI32 B) {
    return VecI32(_mm256_add_epi32(A.Raw, B.Raw));
  }
  friend VecI32 operator-(VecI32 A, VecI32 B) {
    return VecI32(_mm256_sub_epi32(A.Raw, B.Raw));
  }
  friend VecI32 operator*(VecI32 A, VecI32 B) {
    return VecI32(_mm256_mullo_epi32(A.Raw, B.Raw));
  }
  friend VecI32 operator&(VecI32 A, VecI32 B) {
    return VecI32(_mm256_and_si256(A.Raw, B.Raw));
  }
  friend VecI32 operator|(VecI32 A, VecI32 B) {
    return VecI32(_mm256_or_si256(A.Raw, B.Raw));
  }

  /// Logical (unsigned) right shift by an immediate count.
  VecI32 shrl(int Count) const {
    return VecI32(_mm256_srli_epi32(Raw, Count));
  }

  /// Left shift by an immediate count.
  VecI32 shl(int Count) const {
    return VecI32(_mm256_slli_epi32(Raw, Count));
  }

  static VecI32 min(VecI32 A, VecI32 B) {
    return VecI32(_mm256_min_epi32(A.Raw, B.Raw));
  }
  static VecI32 max(VecI32 A, VecI32 B) {
    return VecI32(_mm256_max_epi32(A.Raw, B.Raw));
  }

  Mask16 eq(VecI32 O) const {
    return avx2ToMask(_mm256_cmpeq_epi32(Raw, O.Raw));
  }
  Mask16 lt(VecI32 O) const {
    return avx2ToMask(_mm256_cmpgt_epi32(O.Raw, Raw));
  }
  Mask16 gt(VecI32 O) const {
    return avx2ToMask(_mm256_cmpgt_epi32(Raw, O.Raw));
  }

  Mask16 maskEq(Mask16 Active, VecI32 O) const {
    return static_cast<Mask16>(eq(O) & Active);
  }
};

/// 8 x float backed by one ymm register.
template <> struct VecF32<backend::Avx2> {
  static constexpr int kLanes = backend::Avx2::kLanes;

  __m256 Raw;

  using IdxVec = VecI32<backend::Avx2>;

  VecF32() = default;
  explicit VecF32(__m256 R) : Raw(R) {}

  static VecF32 zero() { return VecF32(_mm256_setzero_ps()); }
  static VecF32 broadcast(float X) { return VecF32(_mm256_set1_ps(X)); }

  static VecF32 load(const float *P) { return VecF32(_mm256_loadu_ps(P)); }

  static VecF32 maskLoad(VecF32 Src, Mask16 M, const float *P) {
    __m256i MV = avx2MaskI32(M);
    __m256 L = _mm256_maskload_ps(P, MV);
    return VecF32(_mm256_blendv_ps(Src.Raw, L, _mm256_castsi256_ps(MV)));
  }

  static VecF32 gather(const float *Base, IdxVec Idx) {
    return VecF32(_mm256_i32gather_ps(Base, Idx.Raw, 4));
  }

  static VecF32 maskGather(VecF32 Src, Mask16 M, const float *Base,
                           IdxVec Idx) {
    return VecF32(_mm256_mask_i32gather_ps(
        Src.Raw, Base, Idx.Raw, _mm256_castsi256_ps(avx2MaskI32(M)), 4));
  }

  void store(float *P) const { _mm256_storeu_ps(P, Raw); }

  void maskStore(Mask16 M, float *P) const {
    _mm256_maskstore_ps(P, avx2MaskI32(M), Raw);
  }

  void scatter(float *Base, IdxVec Idx) const {
    alignas(32) float V[kLanes];
    alignas(32) int32_t X[kLanes];
    store(V);
    Idx.store(X);
    for (int I = 0; I < kLanes; ++I)
      Base[X[I]] = V[I];
  }

  void maskScatter(Mask16 M, float *Base, IdxVec Idx) const {
    alignas(32) float V[kLanes];
    alignas(32) int32_t X[kLanes];
    store(V);
    Idx.store(X);
    for (int I = 0; I < kLanes; ++I)
      if (testLane(M, I))
        Base[X[I]] = V[I];
  }

  float extract(int L) const {
    assert(L >= 0 && L < kLanes && "lane out of range");
    alignas(32) float Buf[kLanes];
    store(Buf);
    return Buf[L];
  }

  VecF32 broadcastLane(int L) const {
    return VecF32(_mm256_permutevar8x32_ps(Raw, _mm256_set1_epi32(L)));
  }

  static VecF32 blend(Mask16 M, VecF32 A, VecF32 B) {
    return VecF32(
        _mm256_blendv_ps(A.Raw, B.Raw, _mm256_castsi256_ps(avx2MaskI32(M))));
  }

  static VecF32 compress(Mask16 M, VecF32 V) {
    alignas(32) float In[kLanes], Out[kLanes] = {};
    V.store(In);
    int N = 0;
    for (int I = 0; I < kLanes; ++I)
      if (testLane(M, I))
        Out[N++] = In[I];
    return load(Out);
  }

  static VecF32 expand(Mask16 M, VecF32 V) {
    alignas(32) float In[kLanes], Out[kLanes] = {};
    V.store(In);
    int N = 0;
    for (int I = 0; I < kLanes; ++I)
      if (testLane(M, I))
        Out[I] = In[N++];
    return load(Out);
  }

  int compressStore(Mask16 M, float *P) const {
    alignas(32) float In[kLanes];
    store(In);
    int N = 0;
    for (int I = 0; I < kLanes; ++I)
      if (testLane(M, I))
        P[N++] = In[I];
    return N;
  }

  friend VecF32 operator+(VecF32 A, VecF32 B) {
    return VecF32(_mm256_add_ps(A.Raw, B.Raw));
  }
  friend VecF32 operator-(VecF32 A, VecF32 B) {
    return VecF32(_mm256_sub_ps(A.Raw, B.Raw));
  }
  friend VecF32 operator*(VecF32 A, VecF32 B) {
    return VecF32(_mm256_mul_ps(A.Raw, B.Raw));
  }
  friend VecF32 operator/(VecF32 A, VecF32 B) {
    return VecF32(_mm256_div_ps(A.Raw, B.Raw));
  }

  /// Round to nearest integer, ties to even.
  VecF32 round() const {
    return VecF32(
        _mm256_round_ps(Raw, _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC));
  }

  static VecF32 min(VecF32 A, VecF32 B) {
    return VecF32(_mm256_min_ps(A.Raw, B.Raw));
  }
  static VecF32 max(VecF32 A, VecF32 B) {
    return VecF32(_mm256_max_ps(A.Raw, B.Raw));
  }

  Mask16 eq(VecF32 O) const {
    return static_cast<Mask16>(
        _mm256_movemask_ps(_mm256_cmp_ps(Raw, O.Raw, _CMP_EQ_OQ)));
  }
  Mask16 lt(VecF32 O) const {
    return static_cast<Mask16>(
        _mm256_movemask_ps(_mm256_cmp_ps(Raw, O.Raw, _CMP_LT_OQ)));
  }
  Mask16 gt(VecF32 O) const {
    return static_cast<Mask16>(
        _mm256_movemask_ps(_mm256_cmp_ps(Raw, O.Raw, _CMP_GT_OQ)));
  }
};

inline VecI32<backend::Avx2> toInt(VecF32<backend::Avx2> V) {
  return VecI32<backend::Avx2>(_mm256_cvttps_epi32(V.Raw));
}

inline VecF32<backend::Avx2> toFloat(VecI32<backend::Avx2> V) {
  return VecF32<backend::Avx2>(_mm256_cvtepi32_ps(V.Raw));
}

#endif // CFV_HAVE_AVX2

//===----------------------------------------------------------------------===//
// AVX-512 backend
//===----------------------------------------------------------------------===//

#if CFV_HAVE_AVX512

/// 16 x int32_t backed by one zmm register.
template <> struct VecI32<backend::Avx512> {
  static constexpr int kLanes = backend::Avx512::kLanes;

  __m512i Raw;

  VecI32() = default;
  explicit VecI32(__m512i R) : Raw(R) {}

  static VecI32 zero() { return VecI32(_mm512_setzero_si512()); }
  static VecI32 broadcast(int32_t X) { return VecI32(_mm512_set1_epi32(X)); }

  static VecI32 iota() {
    return VecI32(_mm512_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12,
                                    13, 14, 15));
  }

  static VecI32 load(const int32_t *P) {
    return VecI32(_mm512_loadu_si512(P));
  }

  static VecI32 maskLoad(VecI32 Src, Mask16 M, const int32_t *P) {
    return VecI32(_mm512_mask_loadu_epi32(Src.Raw, M, P));
  }

  static VecI32 gather(const int32_t *Base, VecI32 Idx) {
    return VecI32(_mm512_i32gather_epi32(Idx.Raw, Base, 4));
  }

  static VecI32 maskGather(VecI32 Src, Mask16 M, const int32_t *Base,
                           VecI32 Idx) {
    return VecI32(_mm512_mask_i32gather_epi32(Src.Raw, M, Idx.Raw, Base, 4));
  }

  void store(int32_t *P) const { _mm512_storeu_si512(P, Raw); }

  void maskStore(Mask16 M, int32_t *P) const {
    _mm512_mask_storeu_epi32(P, M, Raw);
  }

  void scatter(int32_t *Base, VecI32 Idx) const {
    _mm512_i32scatter_epi32(Base, Idx.Raw, Raw, 4);
  }

  void maskScatter(Mask16 M, int32_t *Base, VecI32 Idx) const {
    _mm512_mask_i32scatter_epi32(Base, M, Idx.Raw, Raw, 4);
  }

  int32_t extract(int L) const {
    assert(L >= 0 && L < kLanes && "lane out of range");
    alignas(64) int32_t Buf[kLanes];
    _mm512_store_si512(Buf, Raw);
    return Buf[L];
  }

  VecI32 broadcastLane(int L) const {
    return VecI32(
        _mm512_permutexvar_epi32(_mm512_set1_epi32(L), Raw));
  }

  static VecI32 blend(Mask16 M, VecI32 A, VecI32 B) {
    return VecI32(_mm512_mask_mov_epi32(A.Raw, M, B.Raw));
  }

  static VecI32 compress(Mask16 M, VecI32 V) {
    return VecI32(_mm512_maskz_compress_epi32(M, V.Raw));
  }

  static VecI32 expand(Mask16 M, VecI32 V) {
    return VecI32(_mm512_maskz_expand_epi32(M, V.Raw));
  }

  int compressStore(Mask16 M, int32_t *P) const {
    _mm512_mask_compressstoreu_epi32(P, M, Raw);
    return popcount(M);
  }

  friend VecI32 operator+(VecI32 A, VecI32 B) {
    return VecI32(_mm512_add_epi32(A.Raw, B.Raw));
  }
  friend VecI32 operator-(VecI32 A, VecI32 B) {
    return VecI32(_mm512_sub_epi32(A.Raw, B.Raw));
  }
  friend VecI32 operator*(VecI32 A, VecI32 B) {
    return VecI32(_mm512_mullo_epi32(A.Raw, B.Raw));
  }
  friend VecI32 operator&(VecI32 A, VecI32 B) {
    return VecI32(_mm512_and_si512(A.Raw, B.Raw));
  }
  friend VecI32 operator|(VecI32 A, VecI32 B) {
    return VecI32(_mm512_or_si512(A.Raw, B.Raw));
  }

  /// Logical (unsigned) right shift by an immediate count.
  VecI32 shrl(int Count) const {
    return VecI32(_mm512_srli_epi32(Raw, static_cast<unsigned>(Count)));
  }

  /// Left shift by an immediate count.
  VecI32 shl(int Count) const {
    return VecI32(_mm512_slli_epi32(Raw, static_cast<unsigned>(Count)));
  }

  static VecI32 min(VecI32 A, VecI32 B) {
    return VecI32(_mm512_min_epi32(A.Raw, B.Raw));
  }
  static VecI32 max(VecI32 A, VecI32 B) {
    return VecI32(_mm512_max_epi32(A.Raw, B.Raw));
  }

  Mask16 eq(VecI32 O) const { return _mm512_cmpeq_epi32_mask(Raw, O.Raw); }
  Mask16 lt(VecI32 O) const { return _mm512_cmplt_epi32_mask(Raw, O.Raw); }
  Mask16 gt(VecI32 O) const { return _mm512_cmpgt_epi32_mask(Raw, O.Raw); }

  Mask16 maskEq(Mask16 Active, VecI32 O) const {
    return _mm512_mask_cmpeq_epi32_mask(Active, Raw, O.Raw);
  }
};

/// 16 x float backed by one zmm register.
template <> struct VecF32<backend::Avx512> {
  static constexpr int kLanes = backend::Avx512::kLanes;

  __m512 Raw;

  using IdxVec = VecI32<backend::Avx512>;

  VecF32() = default;
  explicit VecF32(__m512 R) : Raw(R) {}

  static VecF32 zero() { return VecF32(_mm512_setzero_ps()); }
  static VecF32 broadcast(float X) { return VecF32(_mm512_set1_ps(X)); }

  static VecF32 load(const float *P) { return VecF32(_mm512_loadu_ps(P)); }

  static VecF32 maskLoad(VecF32 Src, Mask16 M, const float *P) {
    return VecF32(_mm512_mask_loadu_ps(Src.Raw, M, P));
  }

  static VecF32 gather(const float *Base, IdxVec Idx) {
    return VecF32(_mm512_i32gather_ps(Idx.Raw, Base, 4));
  }

  static VecF32 maskGather(VecF32 Src, Mask16 M, const float *Base,
                           IdxVec Idx) {
    return VecF32(_mm512_mask_i32gather_ps(Src.Raw, M, Idx.Raw, Base, 4));
  }

  void store(float *P) const { _mm512_storeu_ps(P, Raw); }

  void maskStore(Mask16 M, float *P) const {
    _mm512_mask_storeu_ps(P, M, Raw);
  }

  void scatter(float *Base, IdxVec Idx) const {
    _mm512_i32scatter_ps(Base, Idx.Raw, Raw, 4);
  }

  void maskScatter(Mask16 M, float *Base, IdxVec Idx) const {
    _mm512_mask_i32scatter_ps(Base, M, Idx.Raw, Raw, 4);
  }

  float extract(int L) const {
    assert(L >= 0 && L < kLanes && "lane out of range");
    alignas(64) float Buf[kLanes];
    _mm512_store_ps(Buf, Raw);
    return Buf[L];
  }

  VecF32 broadcastLane(int L) const {
    return VecF32(_mm512_permutexvar_ps(_mm512_set1_epi32(L), Raw));
  }

  static VecF32 blend(Mask16 M, VecF32 A, VecF32 B) {
    return VecF32(_mm512_mask_mov_ps(A.Raw, M, B.Raw));
  }

  static VecF32 compress(Mask16 M, VecF32 V) {
    return VecF32(_mm512_maskz_compress_ps(M, V.Raw));
  }

  static VecF32 expand(Mask16 M, VecF32 V) {
    return VecF32(_mm512_maskz_expand_ps(M, V.Raw));
  }

  int compressStore(Mask16 M, float *P) const {
    _mm512_mask_compressstoreu_ps(P, M, Raw);
    return popcount(M);
  }

  friend VecF32 operator+(VecF32 A, VecF32 B) {
    return VecF32(_mm512_add_ps(A.Raw, B.Raw));
  }
  friend VecF32 operator-(VecF32 A, VecF32 B) {
    return VecF32(_mm512_sub_ps(A.Raw, B.Raw));
  }
  friend VecF32 operator*(VecF32 A, VecF32 B) {
    return VecF32(_mm512_mul_ps(A.Raw, B.Raw));
  }
  friend VecF32 operator/(VecF32 A, VecF32 B) {
    return VecF32(_mm512_div_ps(A.Raw, B.Raw));
  }

  /// Round to nearest integer, ties to even.
  VecF32 round() const {
    return VecF32(_mm512_roundscale_ps(
        Raw, _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC));
  }

  static VecF32 min(VecF32 A, VecF32 B) {
    return VecF32(_mm512_min_ps(A.Raw, B.Raw));
  }
  static VecF32 max(VecF32 A, VecF32 B) {
    return VecF32(_mm512_max_ps(A.Raw, B.Raw));
  }

  Mask16 eq(VecF32 O) const {
    return _mm512_cmp_ps_mask(Raw, O.Raw, _CMP_EQ_OQ);
  }
  Mask16 lt(VecF32 O) const {
    return _mm512_cmp_ps_mask(Raw, O.Raw, _CMP_LT_OQ);
  }
  Mask16 gt(VecF32 O) const {
    return _mm512_cmp_ps_mask(Raw, O.Raw, _CMP_GT_OQ);
  }
};

inline VecI32<backend::Avx512> toInt(VecF32<backend::Avx512> V) {
  return VecI32<backend::Avx512>(_mm512_cvttps_epi32(V.Raw));
}

inline VecF32<backend::Avx512> toFloat(VecI32<backend::Avx512> V) {
  return VecF32<backend::Avx512>(_mm512_cvtepi32_ps(V.Raw));
}

#endif // CFV_HAVE_AVX512

//===----------------------------------------------------------------------===//
// Element-type dispatch
//===----------------------------------------------------------------------===//

/// Maps an element type to its vector type for backend \p B.
template <typename T, typename B> struct VecFor;
template <typename B> struct VecFor<int32_t, B> {
  using type = VecI32<B>;
};
template <typename B> struct VecFor<float, B> {
  using type = VecF32<B>;
};

template <typename T, typename B> using VecForT = typename VecFor<T, B>::type;

} // namespace simd
} // namespace cfv

#endif // CFV_SIMD_VEC_H
