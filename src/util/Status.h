//===- util/Status.h - Structured error handling ----------------*- C++ -*-===//
//
// Part of the cfv project: reproduction of Jiang & Agrawal, CGO 2018.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// cfv::Status and cfv::Expected<T>: the library's exception-free error
/// channel.  Fallible operations (file parsing, dataset lookup, CLI
/// argument validation) return Expected<T> carrying either the value or a
/// Status with an error code and a human-readable, location-annotated
/// message.  This replaces the bare std::optional returns that forced
/// callers to invent their own diagnostics.
///
/// The types are deliberately minimal -- no inheritance, no allocation
/// beyond the message string -- because they cross the hot-path boundary
/// only on the failure side.
///
//===----------------------------------------------------------------------===//

#ifndef CFV_UTIL_STATUS_H
#define CFV_UTIL_STATUS_H

#include <cassert>
#include <string>
#include <utility>

namespace cfv {

/// Coarse error taxonomy; the message string carries the specifics
/// (path, line number, offending value).
enum class ErrorCode {
  Ok = 0,
  InvalidArgument, ///< caller-supplied value out of contract
  NotFound,        ///< unknown dataset / missing file
  IoError,         ///< open/read/write failure
  ParseError,      ///< malformed input content
  OutOfRange,      ///< value exceeds a representable bound
  Unavailable,     ///< requested facility not present (e.g. backend)
  DeadlineExceeded, ///< request expired before/while running
  Overloaded,      ///< shed under load; retry after backing off
  ShuttingDown,    ///< service draining; no new work admitted
};

/// Returns the canonical lower-case name of \p C ("parse_error", ...).
inline const char *errorCodeName(ErrorCode C) {
  switch (C) {
  case ErrorCode::Ok:
    return "ok";
  case ErrorCode::InvalidArgument:
    return "invalid_argument";
  case ErrorCode::NotFound:
    return "not_found";
  case ErrorCode::IoError:
    return "io_error";
  case ErrorCode::ParseError:
    return "parse_error";
  case ErrorCode::OutOfRange:
    return "out_of_range";
  case ErrorCode::Unavailable:
    return "unavailable";
  case ErrorCode::DeadlineExceeded:
    return "deadline_exceeded";
  case ErrorCode::Overloaded:
    return "overloaded";
  case ErrorCode::ShuttingDown:
    return "shutting_down";
  }
  return "unknown";
}

/// An error code plus diagnostic message; ErrorCode::Ok means success.
class Status {
public:
  /// Default-constructed == success.
  Status() = default;

  static Status error(ErrorCode C, std::string Message) {
    assert(C != ErrorCode::Ok && "error status needs a non-Ok code");
    Status S;
    S.Code = C;
    S.Msg = std::move(Message);
    return S;
  }

  bool ok() const { return Code == ErrorCode::Ok; }
  ErrorCode code() const { return Code; }
  const std::string &message() const { return Msg; }

  /// "parse_error: bad row at graph.txt:17" -- the form the CLI prints.
  std::string toString() const {
    if (ok())
      return "ok";
    return std::string(errorCodeName(Code)) + ": " + Msg;
  }

private:
  ErrorCode Code = ErrorCode::Ok;
  std::string Msg;
};

/// Either a T or the Status explaining why there is no T.
template <typename T> class Expected {
public:
  /*implicit*/ Expected(T Value) : Val(std::move(Value)), HasVal(true) {}

  /*implicit*/ Expected(Status S) : Err(std::move(S)), HasVal(false) {
    assert(!Err.ok() && "Expected error must carry a non-Ok status");
  }

  bool ok() const { return HasVal; }
  explicit operator bool() const { return HasVal; }

  T &value() & {
    assert(HasVal && "value() on an error Expected");
    return Val;
  }
  const T &value() const & {
    assert(HasVal && "value() on an error Expected");
    return Val;
  }
  T &&value() && {
    assert(HasVal && "value() on an error Expected");
    return std::move(Val);
  }

  T *operator->() { return &value(); }
  const T *operator->() const { return &value(); }
  T &operator*() & { return value(); }
  const T &operator*() const & { return value(); }
  T &&operator*() && { return std::move(*this).value(); }

  /// The failure Status; Status::ok() when a value is present.
  const Status &status() const {
    static const Status OkStatus;
    return HasVal ? OkStatus : Err;
  }

private:
  // T and Status are both cheap to default-construct relative to the
  // failure paths these travel on; a tagged pair keeps the type simple
  // (no manual union lifetime management in an assert-checked class).
  T Val{};
  Status Err;
  bool HasVal;
};

} // namespace cfv

#endif // CFV_UTIL_STATUS_H
