//===- graph/Graph.h - Edge-list and CSR graph structures -------*- C++ -*-===//
//
// Part of the cfv project: reproduction of Jiang & Agrawal, CGO 2018.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Graph substrate for the paper's four graph applications.  Graphs are
/// stored primarily as COO edge lists (the paper's n1/n2 indirection
/// arrays, the "non-zeros of the sparse matrix" in its Sparse Matrix
/// View), with a CSR form for frontier expansion and reference
/// algorithms.  Vertex ids are int32_t; edge counts are int64_t.
///
//===----------------------------------------------------------------------===//

#ifndef CFV_GRAPH_GRAPH_H
#define CFV_GRAPH_GRAPH_H

#include "util/AlignedAlloc.h"

#include <cstdint>

namespace cfv {
namespace graph {

/// COO edge list; Weight may be empty for unweighted graphs.
struct EdgeList {
  int32_t NumNodes = 0;
  AlignedVector<int32_t> Src;
  AlignedVector<int32_t> Dst;
  AlignedVector<float> Weight;

  int64_t numEdges() const { return static_cast<int64_t>(Src.size()); }
  bool isWeighted() const { return !Weight.empty(); }
};

/// Compressed sparse rows over the source vertex.
struct Csr {
  int32_t NumNodes = 0;
  std::vector<int64_t> RowBegin; // NumNodes + 1 offsets
  AlignedVector<int32_t> Col;
  AlignedVector<float> Weight; // empty when unweighted

  int64_t numEdges() const { return static_cast<int64_t>(Col.size()); }
  int64_t degree(int32_t V) const { return RowBegin[V + 1] - RowBegin[V]; }
};

/// Non-owning view of a CSR adjacency.  The frontier engine and the
/// reference kernels walk this instead of a concrete Csr so the same
/// code serves an in-core Csr and the mmap'd out-of-core backing
/// (graph::MappedCsr) without copies.
struct CsrView {
  int32_t NumNodes = 0;
  const int64_t *RowBegin = nullptr; // NumNodes + 1 offsets
  const int32_t *Col = nullptr;
  const float *Weight = nullptr; // nullptr when unweighted
  int64_t NumEdges = 0;

  static CsrView of(const Csr &C) {
    CsrView V;
    V.NumNodes = C.NumNodes;
    V.RowBegin = C.RowBegin.data();
    V.Col = C.Col.data();
    V.Weight = C.Weight.empty() ? nullptr : C.Weight.data();
    V.NumEdges = C.numEdges();
    return V;
  }

  bool isWeighted() const { return Weight != nullptr; }
  int64_t degree(int32_t V) const { return RowBegin[V + 1] - RowBegin[V]; }
};

/// Builds a CSR adjacency (by source) from an edge list.
Csr buildCsr(const EdgeList &E);

/// Out-degree of every vertex (the paper's nneighbor array; vertices
/// without outgoing edges report 0).
AlignedVector<int32_t> outDegrees(const EdgeList &E);

/// Pointer form for edge arrays that do not live in an EdgeList (the
/// mmap'd COO sections of a MappedCsr).
AlignedVector<int32_t> outDegrees(const int32_t *Src, int64_t NumEdges,
                                  int32_t NumNodes);

/// Sorts the edges by destination (stable), the layout reduce_by_key
/// requires for its "reduction on the columns of the sparse matrix"
/// simulation (§4.5).
EdgeList sortByDestination(const EdgeList &E);

} // namespace graph
} // namespace cfv

#endif // CFV_GRAPH_GRAPH_H
