//===- service/Json.h - Minimal JSON parsing and writing --------*- C++ -*-===//
//
// Part of the cfv project: reproduction of Jiang & Agrawal, CGO 2018.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The small JSON layer behind the serving protocol: cfv_serve speaks
/// newline-delimited JSON requests/responses, and the test harnesses
/// parse the responses back.  Deliberately minimal -- a strict
/// recursive-descent parser into a variant-style Value plus a compact
/// object writer -- because the protocol only needs flat objects of
/// strings, numbers, and booleans; no external dependency is available
/// in this environment.
///
/// Parsing is exception free: failures come back as cfv::Status with a
/// byte-offset diagnostic ("parse_error: expected ':' at offset 17"), so
/// a malformed request line becomes a structured error response instead
/// of killing the server.
///
//===----------------------------------------------------------------------===//

#ifndef CFV_SERVICE_JSON_H
#define CFV_SERVICE_JSON_H

#include "util/Status.h"

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace cfv {
namespace json {

/// A parsed JSON value.  Objects preserve no duplicate keys (last one
/// wins, like every practical reader) and arrays preserve order.
class Value {
public:
  enum class Kind { Null, Bool, Number, String, Array, Object };

  Value() = default;

  Kind kind() const { return K; }
  bool isNull() const { return K == Kind::Null; }
  bool isBool() const { return K == Kind::Bool; }
  bool isNumber() const { return K == Kind::Number; }
  bool isString() const { return K == Kind::String; }
  bool isArray() const { return K == Kind::Array; }
  bool isObject() const { return K == Kind::Object; }

  bool boolean() const { return B; }
  double number() const { return Num; }
  const std::string &str() const { return Str; }
  const std::vector<Value> &array() const { return Arr; }
  const std::vector<std::pair<std::string, Value>> &object() const {
    return Obj;
  }

  /// Object member lookup; nullptr when absent or not an object.
  const Value *find(const std::string &Key) const;

  /// Typed member getters with defaults (absent or wrongly-typed members
  /// yield the default -- the serving protocol treats every field as
  /// optional).
  std::string getString(const std::string &Key,
                        const std::string &Default) const;
  double getNumber(const std::string &Key, double Default) const;
  int64_t getInt(const std::string &Key, int64_t Default) const;
  bool getBool(const std::string &Key, bool Default) const;

  static Value makeNull() { return Value(); }
  static Value makeBool(bool V);
  static Value makeNumber(double V);
  static Value makeString(std::string V);
  static Value makeArray(std::vector<Value> V);
  static Value makeObject(std::vector<std::pair<std::string, Value>> V);

private:
  Kind K = Kind::Null;
  bool B = false;
  double Num = 0.0;
  std::string Str;
  std::vector<Value> Arr;
  std::vector<std::pair<std::string, Value>> Obj;
};

/// Parses \p Text as one JSON document (trailing whitespace allowed,
/// trailing content rejected).  Errors carry a byte offset.
Expected<Value> parse(const std::string &Text);

/// Escapes \p S for embedding in a JSON string literal (quotes not
/// included).
std::string escape(const std::string &S);

/// Builds one compact JSON object field by field; insertion order is
/// output order.  Numbers print with up to 9 significant digits (%.9g),
/// so exact zeros print as "0" -- the warm-request contract the serve
/// tests assert on.
class ObjectWriter {
public:
  ObjectWriter &field(const char *Key, const std::string &V);
  ObjectWriter &field(const char *Key, const char *V);
  ObjectWriter &field(const char *Key, double V);
  ObjectWriter &field(const char *Key, int64_t V);
  ObjectWriter &field(const char *Key, int V) {
    return field(Key, static_cast<int64_t>(V));
  }
  ObjectWriter &field(const char *Key, uint64_t V);
  ObjectWriter &field(const char *Key, bool V);
  /// Emits \p Raw verbatim as the member value (pre-serialized JSON).
  ObjectWriter &fieldRaw(const char *Key, const std::string &Raw);

  /// The closed object, e.g. {"a":1,"b":"x"}.
  std::string str() const { return Out + "}"; }

private:
  void key(const char *Key);
  std::string Out = "{";
  bool First = true;
};

} // namespace json
} // namespace cfv

#endif // CFV_SERVICE_JSON_H
