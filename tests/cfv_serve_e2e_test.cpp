//===- tests/cfv_serve_e2e_test.cpp - cfv_serve subprocess tests ----------===//
//
// Part of the cfv project: reproduction of Jiang & Agrawal, CGO 2018.
//
//===----------------------------------------------------------------------===//
//
// Drives the installed cfv_serve binary (path injected as CFV_SERVE_BIN
// by CMake) end to end over the NDJSON protocol: warm-vs-cold caching
// (cache_hit flag, exactly-zero load time on the second request),
// malformed input answered with a structured error while the server
// keeps serving, queue-full backpressure under --queue-depth 1, and the
// observability verbs -- stats answered immediately while a cold load
// is still in flight (the scrape-mid-load contract), the embedded
// metrics registry, and the Prometheus metrics verb.
//
// Two drivers: runServe() pipes a whole request file through a server
// (fine when response order doesn't matter), InteractiveServe keeps
// bidirectional pipes open so a test can synchronize on individual
// responses -- required since stats/metrics answer out of band.
//
//===----------------------------------------------------------------------===//

#include "resilience/Fault.h" // CFV_FAULTS: the --faults test adapts

#include "gtest/gtest.h"

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <sys/wait.h>
#include <unistd.h>
#include <vector>

namespace {

#ifndef CFV_SERVE_BIN
#error "CFV_SERVE_BIN must be defined to the cfv_serve binary path"
#endif

struct ServeRun {
  int ExitCode = -1;
  std::vector<std::string> Lines; ///< stdout, one response per entry
};

/// Writes \p Requests to a file, pipes it through cfv_serve with the
/// given extra \p Flags / \p EnvPrefix, and collects the response lines.
ServeRun runServe(const std::string &Requests, const std::string &Flags = "",
                  const std::string &EnvPrefix = "") {
  const std::string Dir = ::testing::TempDir();
  const std::string InPath = Dir + "cfv_serve_in.txt";
  const std::string OutPath = Dir + "cfv_serve_out.txt";
  {
    std::ofstream In(InPath);
    In << Requests;
  }
  const std::string Cmd = EnvPrefix + " \"" + CFV_SERVE_BIN + "\" " + Flags +
                          " < " + InPath + " > " + OutPath + " 2>/dev/null";
  const int Rc = std::system(Cmd.c_str());

  ServeRun R;
  if (Rc != -1 && WIFEXITED(Rc))
    R.ExitCode = WEXITSTATUS(Rc);
  std::ifstream Out(OutPath);
  std::string Line;
  while (std::getline(Out, Line))
    if (!Line.empty())
      R.Lines.push_back(Line);
  std::remove(InPath.c_str());
  std::remove(OutPath.c_str());
  return R;
}

bool contains(const std::string &S, const std::string &Needle) {
  return S.find(Needle) != std::string::npos;
}

/// A cfv_serve child with both pipe ends held open: send() writes one
/// request line, recv() blocks for one response line.  Reading a
/// request's response is the only synchronization the protocol offers,
/// and it is enough: once the response arrived, the work (and its
/// counter updates) happened.
class InteractiveServe {
public:
  explicit InteractiveServe(const std::vector<std::string> &Args = {}) {
    int ToChild[2], FromChild[2];
    if (::pipe(ToChild) != 0 || ::pipe(FromChild) != 0)
      return;
    Pid = ::fork();
    if (Pid == 0) {
      ::dup2(ToChild[0], 0);
      ::dup2(FromChild[1], 1);
      ::close(ToChild[0]);
      ::close(ToChild[1]);
      ::close(FromChild[0]);
      ::close(FromChild[1]);
      std::vector<const char *> Argv = {CFV_SERVE_BIN};
      for (const std::string &A : Args)
        Argv.push_back(A.c_str());
      Argv.push_back(nullptr);
      ::execv(CFV_SERVE_BIN, const_cast<char *const *>(Argv.data()));
      std::_Exit(127);
    }
    ::close(ToChild[0]);
    ::close(FromChild[1]);
    In = ::fdopen(ToChild[1], "w");
    Out = ::fdopen(FromChild[0], "r");
  }

  ~InteractiveServe() {
    if (In)
      std::fclose(In);
    if (Out)
      std::fclose(Out);
    if (Pid > 0) {
      int St = 0;
      ::waitpid(Pid, &St, 0);
    }
  }

  bool alive() const { return Pid > 0 && In && Out; }

  void send(const std::string &Line) {
    std::fputs(Line.c_str(), In);
    std::fputc('\n', In);
    std::fflush(In);
  }

  /// Blocks for the next response line ("" on EOF).
  std::string recv() {
    std::string L;
    int C;
    while ((C = std::fgetc(Out)) != EOF && C != '\n')
      L.push_back(static_cast<char>(C));
    return L;
  }

  /// Sends shutdown, drains to EOF, and reaps; returns the exit code.
  int shutdown() {
    send("{\"cmd\":\"shutdown\"}");
    while (!recv().empty())
      ;
    return waitExit();
  }

  pid_t pid() const { return Pid; }

  /// Drains stdout to EOF, closes the pipes, and reaps; returns the exit
  /// code.  Used by the signal tests, where the server decides on its
  /// own to leave.
  int waitExit() {
    while (!recv().empty())
      ;
    std::fclose(In);
    In = nullptr;
    std::fclose(Out);
    Out = nullptr;
    int St = 0;
    ::waitpid(Pid, &St, 0);
    Pid = -1;
    return WIFEXITED(St) ? WEXITSTATUS(St) : -1;
  }

private:
  pid_t Pid = -1;
  std::FILE *In = nullptr;
  std::FILE *Out = nullptr;
};

// Small synthetic inputs keep the whole suite fast while still loading
// a real dataset through the registry.
const char *kPagerank =
    "{\"app\":\"pagerank\",\"dataset\":\"higgs-twitter-sim\","
    "\"scale\":0.05,\"iters\":3";

TEST(CfvServeE2e, WarmRequestHitsTheCache) {
  std::ostringstream In;
  In << kPagerank << ",\"id\":\"cold\"}\n";
  In << kPagerank << ",\"id\":\"warm\"}\n";
  In << "{\"cmd\":\"shutdown\"}\n";
  const ServeRun R = runServe(In.str());

  ASSERT_EQ(R.ExitCode, 0);
  ASSERT_EQ(R.Lines.size(), 3u);

  EXPECT_TRUE(contains(R.Lines[0], "\"id\":\"cold\"")) << R.Lines[0];
  EXPECT_TRUE(contains(R.Lines[0], "\"ok\":true")) << R.Lines[0];
  EXPECT_TRUE(contains(R.Lines[0], "\"cache_hit\":false")) << R.Lines[0];

  EXPECT_TRUE(contains(R.Lines[1], "\"id\":\"warm\"")) << R.Lines[1];
  EXPECT_TRUE(contains(R.Lines[1], "\"ok\":true")) << R.Lines[1];
  EXPECT_TRUE(contains(R.Lines[1], "\"cache_hit\":true")) << R.Lines[1];
  EXPECT_TRUE(contains(R.Lines[1], "\"load_seconds\":0,"))
      << "warm load time must be exactly zero: " << R.Lines[1];

  EXPECT_TRUE(contains(R.Lines[2], "\"bye\":true")) << R.Lines[2];
}

TEST(CfvServeE2e, MalformedLineAnswersErrorAndKeepsServing) {
  std::ostringstream In;
  In << "this is not json\n";
  In << "{\"app\":\"nope\",\"id\":\"bad-app\"}\n";
  In << kPagerank << ",\"id\":\"after\"}\n";
  In << "{\"cmd\":\"shutdown\"}\n";
  const ServeRun R = runServe(In.str());

  ASSERT_EQ(R.ExitCode, 0);
  ASSERT_EQ(R.Lines.size(), 4u);
  EXPECT_TRUE(contains(R.Lines[0], "\"ok\":false")) << R.Lines[0];
  EXPECT_TRUE(contains(R.Lines[0], "\"error\":\"parse_error\""))
      << R.Lines[0];
  // An unknown app is a request-level error with the id echoed back.
  EXPECT_TRUE(contains(R.Lines[1], "\"ok\":false")) << R.Lines[1];
  EXPECT_TRUE(contains(R.Lines[1], "\"id\":\"bad-app\"")) << R.Lines[1];
  // The server survived both and answered the valid request.
  EXPECT_TRUE(contains(R.Lines[2], "\"id\":\"after\"")) << R.Lines[2];
  EXPECT_TRUE(contains(R.Lines[2], "\"ok\":true")) << R.Lines[2];
}

TEST(CfvServeE2e, StatsReportsCacheCounters) {
  // Interactive: reading each response synchronizes with the worker, so
  // by the time stats is asked the counters are deterministic.
  InteractiveServe S;
  ASSERT_TRUE(S.alive());
  S.send(std::string(kPagerank) + "}");
  EXPECT_TRUE(contains(S.recv(), "\"ok\":true"));
  S.send(std::string(kPagerank) + "}");
  EXPECT_TRUE(contains(S.recv(), "\"cache_hit\":true"));
  S.send("{\"cmd\":\"stats\"}");
  const std::string Stats = S.recv();
  EXPECT_TRUE(contains(Stats, "\"cache_hits\":1")) << Stats;
  EXPECT_TRUE(contains(Stats, "\"cache_misses\":1")) << Stats;
  EXPECT_TRUE(contains(Stats, "\"cache_entries\":1")) << Stats;
  EXPECT_EQ(S.shutdown(), 0);
}

TEST(CfvServeE2e, StatsAnswersImmediatelyMidLoad) {
  // A cold request at a heavier scale keeps the worker busy loading for
  // a while; the stats line sent right behind it must be answered
  // first -- introspection does not queue behind work.
  InteractiveServe S;
  ASSERT_TRUE(S.alive());
  S.send("{\"app\":\"pagerank\",\"dataset\":\"higgs-twitter-sim\","
         "\"scale\":0.6,\"iters\":2,\"id\":\"slow\"}");
  S.send("{\"cmd\":\"stats\"}");
  const std::string First = S.recv();
  EXPECT_TRUE(contains(First, "\"cache_hits\""))
      << "stats must answer before the in-flight request: " << First;
  EXPECT_FALSE(contains(First, "\"id\":\"slow\"")) << First;
  // The merged registry rides along in the stats response.
  EXPECT_TRUE(contains(First, "\"metrics\":{")) << First;
  EXPECT_TRUE(contains(First, "\"counters\"")) << First;
  EXPECT_TRUE(contains(First, "\"gauges\"")) << First;
  EXPECT_TRUE(contains(First, "\"histograms\"")) << First;
  // The request still completes and answers afterwards.
  const std::string Second = S.recv();
  EXPECT_TRUE(contains(Second, "\"id\":\"slow\"")) << Second;
  EXPECT_TRUE(contains(Second, "\"ok\":true")) << Second;
  EXPECT_EQ(S.shutdown(), 0);
}

// The registry-content tests need the subsystem compiled in; the test
// binary and cfv_serve share one build tree, so this flag matches the
// server's.  (The stats/metrics verbs themselves exist either way --
// the compiled-out registry renders the same empty schema.)
#ifndef CFV_OBS
#define CFV_OBS 1
#endif
#if CFV_OBS

TEST(CfvServeE2e, StatsCarriesKernelDistributionsAfterARun) {
  // After one completed invec run the registry must hold the kernel
  // conflict telemetry (D1 / lane-utilization histograms) and the
  // request-level series -- the acceptance shape of the stats verb.
  InteractiveServe S;
  ASSERT_TRUE(S.alive());
  // invec records the D1 distribution; mask records lane utilization.
  S.send(std::string(kPagerank) + ",\"version\":\"invec\"}");
  EXPECT_TRUE(contains(S.recv(), "\"ok\":true"));
  S.send(std::string(kPagerank) + ",\"version\":\"mask\"}");
  EXPECT_TRUE(contains(S.recv(), "\"ok\":true"));
  S.send("{\"cmd\":\"stats\"}");
  const std::string Stats = S.recv();
  EXPECT_TRUE(contains(Stats, "cfv_kernel_d1_lanes")) << Stats;
  EXPECT_TRUE(contains(Stats, "cfv_kernel_useful_lanes")) << Stats;
  EXPECT_TRUE(contains(Stats, "cfv_requests_total")) << Stats;
  EXPECT_TRUE(contains(Stats, "cfv_run_kernel_seconds")) << Stats;
  EXPECT_TRUE(contains(Stats, "\"p99\":")) << Stats;
  EXPECT_EQ(S.shutdown(), 0);
}

TEST(CfvServeE2e, MetricsVerbReturnsPrometheusText) {
  InteractiveServe S;
  ASSERT_TRUE(S.alive());
  S.send(std::string(kPagerank) + "}");
  EXPECT_TRUE(contains(S.recv(), "\"ok\":true"));
  S.send("{\"cmd\":\"metrics\"}");
  const std::string M = S.recv();
  EXPECT_TRUE(contains(M, "\"ok\":true")) << M;
  EXPECT_TRUE(contains(M, "\"prometheus\":\"")) << M;
  // The exposition text rides JSON-escaped: newlines as \n literals.
  EXPECT_TRUE(contains(M, "# TYPE cfv_requests_total counter")) << M;
  EXPECT_TRUE(contains(M, "\\n")) << M;
  EXPECT_EQ(S.shutdown(), 0);
}

#endif // CFV_OBS

TEST(CfvServeE2e, QueueFullAnswersUnavailable) {
  // One-deep queue and a flood of requests: the reader admits them far
  // faster than the worker can serve them, so most must come back as
  // structured unavailable responses -- and every line gets an answer.
  std::ostringstream In;
  constexpr int N = 8;
  for (int I = 0; I < N; ++I)
    In << kPagerank << ",\"id\":\"q" << I << "\"}\n";
  In << "{\"cmd\":\"shutdown\"}\n";
  const ServeRun R = runServe(In.str(), "--queue-depth 1");

  ASSERT_EQ(R.ExitCode, 0);
  ASSERT_EQ(R.Lines.size(), static_cast<size_t>(N + 1));
  int Ok = 0, Unavailable = 0;
  for (int I = 0; I < N; ++I) {
    if (contains(R.Lines[I], "\"ok\":true"))
      ++Ok;
    if (contains(R.Lines[I], "\"error\":\"unavailable\""))
      ++Unavailable;
  }
  EXPECT_GE(Ok, 1);
  EXPECT_GE(Unavailable, 1) << "backpressure must reject, not stall";
  EXPECT_EQ(Ok + Unavailable, N);
}

TEST(CfvServeE2e, SigtermDrainsGracefully) {
  // SIGTERM is the supervisor's "wrap it up": stop admitting, answer
  // everything in flight, flush, and exit 0 -- never a killed worker or
  // a silently dropped response.
  InteractiveServe S;
  ASSERT_TRUE(S.alive());
  S.send(std::string(kPagerank) + ",\"id\":\"pre\"}");
  const std::string Pre = S.recv();
  EXPECT_TRUE(contains(Pre, "\"id\":\"pre\"")) << Pre;
  EXPECT_TRUE(contains(Pre, "\"ok\":true")) << Pre;

  ASSERT_EQ(::kill(S.pid(), SIGTERM), 0);
  // The drain epilogue closes stdout; waitExit() sees EOF and reaps.
  EXPECT_EQ(S.waitExit(), 0);
}

TEST(CfvServeE2e, SigtermStillAnswersInFlightRequest) {
  InteractiveServe S;
  ASSERT_TRUE(S.alive());
  // A round-trip first: proves the server is up with its signal handlers
  // installed before we deliver SIGTERM.
  S.send(std::string(kPagerank) + ",\"id\":\"warm\"}");
  ASSERT_TRUE(contains(S.recv(), "\"id\":\"warm\""));
  // A heavier cold load keeps the worker busy while the signal lands.
  S.send("{\"app\":\"pagerank\",\"dataset\":\"higgs-twitter-sim\","
         "\"scale\":0.4,\"iters\":2,\"id\":\"inflight\"}");
  ::usleep(100 * 1000); // let the reader admit it before the signal
  ASSERT_EQ(::kill(S.pid(), SIGTERM), 0);
  // The admitted request still gets its one structured reply (either a
  // completed result or a structured failure -- but never silence).
  const std::string R = S.recv();
  EXPECT_TRUE(contains(R, "\"id\":\"inflight\"")) << R;
  EXPECT_TRUE(contains(R, "\"ok\":")) << R;
  EXPECT_EQ(S.waitExit(), 0);
}

TEST(CfvServeE2e, FaultsFlagInjectsStructuredFailures) {
  // cache.alloc_fail:always makes every dataset load fail at the
  // injected allocation; the server must answer each request with a
  // structured error and keep serving.
  std::ostringstream In;
  In << kPagerank << ",\"id\":\"f1\"}\n";
  In << kPagerank << ",\"id\":\"f2\"}\n";
  In << "{\"cmd\":\"shutdown\"}\n";
  const ServeRun R = runServe(In.str(), "--faults cache.alloc_fail:always");

  ASSERT_EQ(R.ExitCode, 0);
  ASSERT_EQ(R.Lines.size(), 3u);
  for (int I = 0; I < 2; ++I) {
#if CFV_FAULTS
    EXPECT_TRUE(contains(R.Lines[I], "\"ok\":false")) << R.Lines[I];
    EXPECT_TRUE(contains(R.Lines[I], "injected allocation failure") ||
                contains(R.Lines[I], "circuit open"))
        << R.Lines[I];
#else
    // Compiled out: the spec still validates, but no point ever fires.
    EXPECT_TRUE(contains(R.Lines[I], "\"ok\":true")) << R.Lines[I];
#endif
  }
  EXPECT_TRUE(contains(R.Lines[2], "\"bye\":true")) << R.Lines[2];
}

TEST(CfvServeE2e, BadFaultsSpecIsAUsageError) {
  const ServeRun R = runServe("", "--faults cache.alloc_fail:sometimes");
  EXPECT_EQ(R.ExitCode, 2);
  EXPECT_TRUE(R.Lines.empty());
}

TEST(CfvServeE2e, CacheBudgetIsHonored) {
  // A tiny byte budget (1 MB) forces eviction between the two datasets;
  // the stats line must show a bounded resident size.  Interactive so
  // the stats question follows the completed evictions, not the queue.
  ::setenv("CFV_CACHE_BYTES", "1000000", 1);
  InteractiveServe S;
  ::unsetenv("CFV_CACHE_BYTES");
  ASSERT_TRUE(S.alive());
  S.send(std::string(kPagerank) + "}");
  EXPECT_TRUE(contains(S.recv(), "\"ok\":true"));
  S.send("{\"app\":\"wcc\",\"dataset\":\"amazon0312-sim\",\"scale\":0.05}");
  EXPECT_TRUE(contains(S.recv(), "\"ok\":true"));
  S.send(std::string(kPagerank) + "}");
  EXPECT_TRUE(contains(S.recv(), "\"ok\":true"));
  S.send("{\"cmd\":\"stats\"}");
  const std::string Stats = S.recv();
  EXPECT_TRUE(contains(Stats, "\"cache_entries\":1")) << Stats;
  EXPECT_EQ(S.shutdown(), 0);
}

} // namespace
