//===- core/Dispatch.cpp - Runtime backend dispatch -----------------------===//
//
// Part of the cfv project: reproduction of Jiang & Agrawal, CGO 2018.
//
//===----------------------------------------------------------------------===//
//
// Binds the per-variant kernel sets (core/Backends.h) into dispatch
// tables, resolves which one runs, and defines the public apps API as
// thin forwarders through the selected table.
//
//===----------------------------------------------------------------------===//

#include "core/Dispatch.h"

#include "core/Backends.h"
#include "simd/CpuId.h"

#include <cstdio>
#include <cstdlib>

using namespace cfv;
using namespace cfv::core;

namespace {

constexpr DispatchTable ScalarTable = {
    BackendKind::Scalar,
    "scalar",
    16,
    &apps::b_scalar::runPageRank,
    &apps::b_scalar::runPageRank64,
    &apps::b_scalar::runFrontier,
    &apps::b_scalar::moldynForces,
    &apps::b_scalar::runAggregation,
    &apps::b_scalar::reduceByKeyInvec,
    &apps::b_scalar::runRbkComparison,
    &apps::b_scalar::runSpmv,
    &apps::b_scalar::runMeshDiffusion,
};

#if CFV_BUILD_AVX2
constexpr DispatchTable Avx2Table = {
    BackendKind::Avx2,
    "avx2",
    8,
    &apps::b_avx2::runPageRank,
    &apps::b_avx2::runPageRank64,
    &apps::b_avx2::runFrontier,
    &apps::b_avx2::moldynForces,
    &apps::b_avx2::runAggregation,
    &apps::b_avx2::reduceByKeyInvec,
    &apps::b_avx2::runRbkComparison,
    &apps::b_avx2::runSpmv,
    &apps::b_avx2::runMeshDiffusion,
};
#endif

#if CFV_BUILD_AVX512
constexpr DispatchTable Avx512Table = {
    BackendKind::Avx512,
    "avx512",
    16,
    &apps::b_avx512::runPageRank,
    &apps::b_avx512::runPageRank64,
    &apps::b_avx512::runFrontier,
    &apps::b_avx512::moldynForces,
    &apps::b_avx512::runAggregation,
    &apps::b_avx512::reduceByKeyInvec,
    &apps::b_avx512::runRbkComparison,
    &apps::b_avx512::runSpmv,
    &apps::b_avx512::runMeshDiffusion,
};
#endif

// Cached selection state.
const DispatchTable *Selected = nullptr;
bool HaveOverride = false;
BackendKind Override = BackendKind::Scalar;

void noteOnce(const char *Message) {
  static bool Printed = false;
  if (Printed)
    return;
  Printed = true;
  std::fprintf(stderr, "cfv: %s\n", Message);
}

} // namespace

const char *core::backendName(BackendKind K) {
  switch (K) {
  case BackendKind::Avx512:
    return "avx512";
  case BackendKind::Avx2:
    return "avx2";
  case BackendKind::Scalar:
    break;
  }
  return "scalar";
}

Expected<BackendKind> core::parseBackendKind(const std::string &Name) {
  if (Name == "scalar")
    return BackendKind::Scalar;
  if (Name == "avx2")
    return BackendKind::Avx2;
  if (Name == "avx512")
    return BackendKind::Avx512;
  return Status::error(ErrorCode::InvalidArgument,
                       "unknown backend '" + Name +
                           "' (expected scalar|avx2|avx512)");
}

bool core::avx512Available() {
#if CFV_BUILD_AVX512
  return simd::caps().hasAvx512();
#else
  return false;
#endif
}

const char *core::avx512UnavailableReason() {
#if CFV_BUILD_AVX512
  const simd::Caps &C = simd::caps();
  if (C.hasAvx512())
    return nullptr;
  if (!C.Avx512F)
    return "CPU lacks AVX-512F";
  if (!C.Avx512Cd)
    return "CPU lacks AVX-512CD (vpconflictd)";
  return "OS has not enabled AVX-512 (zmm/opmask) register state";
#else
  return "AVX-512 kernels not compiled into this binary";
#endif
}

bool core::avx2Available() {
#if CFV_BUILD_AVX2
  return simd::caps().hasAvx2();
#else
  return false;
#endif
}

const char *core::avx2UnavailableReason() {
#if CFV_BUILD_AVX2
  const simd::Caps &C = simd::caps();
  if (C.hasAvx2())
    return nullptr;
  if (!C.Avx2)
    return "CPU lacks AVX2";
  return "OS has not enabled AVX (ymm) register state";
#else
  return "AVX2 kernels not compiled into this binary";
#endif
}

std::vector<BackendInfo> core::backendInfos() {
  std::vector<BackendInfo> Infos;
  Infos.push_back({BackendKind::Scalar, "scalar", 16,
                   "emulated (portable C++)", true, true, nullptr});
  Infos.push_back({BackendKind::Avx2, "avx2", 8,
                   "synthesized (rotate/compare network)",
#if CFV_BUILD_AVX2
                   true,
#else
                   false,
#endif
                   avx2Available(), avx2UnavailableReason()});
  Infos.push_back({BackendKind::Avx512, "avx512", 16,
                   "native (vpconflictd)",
#if CFV_BUILD_AVX512
                   true,
#else
                   false,
#endif
                   avx512Available(), avx512UnavailableReason()});
  return Infos;
}

const DispatchTable &core::dispatchFor(BackendKind K) {
  if (K == BackendKind::Avx512) {
#if CFV_BUILD_AVX512
    if (simd::caps().hasAvx512())
      return Avx512Table;
#endif
    // Degrade one tier at a time: avx512 -> avx2 -> scalar.
    static bool Warned = false;
    if (!Warned) {
      Warned = true;
      std::fprintf(stderr,
                   "cfv: avx512 backend requested but unavailable (%s); "
                   "falling back to %s\n",
                   avx512UnavailableReason(),
                   avx2Available() ? "avx2" : "scalar");
    }
#if CFV_BUILD_AVX2
    if (simd::caps().hasAvx2())
      return Avx2Table;
#endif
    return ScalarTable;
  }
  if (K == BackendKind::Avx2) {
#if CFV_BUILD_AVX2
    if (simd::caps().hasAvx2())
      return Avx2Table;
#endif
    static bool Warned = false;
    if (!Warned) {
      Warned = true;
      std::fprintf(stderr,
                   "cfv: avx2 backend requested but unavailable (%s); "
                   "falling back to scalar\n",
                   avx2UnavailableReason());
    }
  }
  return ScalarTable;
}

BackendKind core::resolveBackendKind(const char *EnvValue, bool HaveAvx512,
                                     bool HaveAvx2, std::string *Note) {
  if (EnvValue && *EnvValue) {
    const Expected<BackendKind> K = parseBackendKind(EnvValue);
    if (K.ok())
      return *K;
    if (Note)
      *Note = "ignoring CFV_BACKEND: " + K.status().message();
  }
  if (HaveAvx512)
    return BackendKind::Avx512;
  return HaveAvx2 ? BackendKind::Avx2 : BackendKind::Scalar;
}

const DispatchTable &core::dispatch() {
  if (Selected)
    return *Selected;
  BackendKind K;
  if (HaveOverride) {
    K = Override;
  } else {
    std::string Note;
    K = resolveBackendKind(std::getenv("CFV_BACKEND"), avx512Available(),
                           avx2Available(), &Note);
    if (!Note.empty())
      noteOnce(Note.c_str());
  }
  Selected = &dispatchFor(K);
  return *Selected;
}

void core::setBackend(BackendKind K) {
  HaveOverride = true;
  Override = K;
  Selected = nullptr;
}

void core::resetBackendForTest() {
  HaveOverride = false;
  Selected = nullptr;
}

//===----------------------------------------------------------------------===//
// Public apps API: forwarders through the selected dispatch table.
//===----------------------------------------------------------------------===//

namespace cfv {
namespace apps {

PageRankResult runPageRank(const graph::EdgeList &G, PrVersion V,
                           const PageRankOptions &O) {
  return dispatch().PageRank(G, V, O);
}

PageRank64Result runPageRank64(const graph::EdgeList &G, Pr64Version V,
                               const PageRankOptions &O) {
  return dispatch().PageRank64(G, V, O);
}

FrontierResult runFrontier(const graph::EdgeList &G, FrApp A, FrVersion V,
                           const FrontierOptions &O) {
  return dispatch().Frontier(G, A, V, O);
}

AggResult runAggregation(const int32_t *Keys, const float *Vals, int64_t N,
                         int64_t Cardinality, AggVersion V,
                         const core::RunOptions &O) {
  return dispatch().Aggregation(Keys, Vals, N, Cardinality, V, O);
}

AggResult runAggregation(const int32_t *Keys, const float *Vals, int64_t N,
                         int64_t Cardinality, AggVersion V) {
  return dispatch().Aggregation(Keys, Vals, N, Cardinality, V,
                                core::RunOptions{});
}

AggResult runAggregationWithPolicy(const int32_t *Keys, const float *Vals,
                                   int64_t N, int64_t Cardinality,
                                   InvecPolicy Policy) {
  core::RunOptions O;
  O.Policy = Policy;
  return dispatch().Aggregation(Keys, Vals, N, Cardinality,
                                AggVersion::LinearInvec, O);
}

int64_t reduceByKeyInvec(const int32_t *Keys, const float *Vals, int64_t N,
                         int32_t *OutKeys, float *OutVals) {
  return dispatch().ReduceByKeyInvec(Keys, Vals, N, OutKeys, OutVals);
}

RbkResult runRbkComparison(const graph::EdgeList &G, int Iterations,
                           const core::RunOptions &O) {
  return dispatch().RbkComparison(G, Iterations, O);
}

RbkResult runRbkComparison(const graph::EdgeList &G, int Iterations) {
  return dispatch().RbkComparison(G, Iterations, core::RunOptions{});
}

SpmvResult runSpmv(const graph::EdgeList &A, const float *X, SpmvVersion V,
                   int Repeats, const core::RunOptions &O) {
  return dispatch().Spmv(A, X, V, Repeats, O);
}

SpmvResult runSpmv(const graph::EdgeList &A, const float *X, SpmvVersion V,
                   int Repeats) {
  return dispatch().Spmv(A, X, V, Repeats, core::RunOptions{});
}

MeshRunResult runMeshDiffusion(const Mesh &M, const float *U0, int Sweeps,
                               float Dt, MeshVersion V,
                               const core::RunOptions &O) {
  return dispatch().MeshDiffusion(M, U0, Sweeps, Dt, V, O);
}

MeshRunResult runMeshDiffusion(const Mesh &M, const float *U0, int Sweeps,
                               float Dt, MeshVersion V) {
  return dispatch().MeshDiffusion(M, U0, Sweeps, Dt, V, core::RunOptions{});
}

} // namespace apps
} // namespace cfv
