//===- pattern/Classify.h - Per-tile index-stream classifier ----*- C++ -*-===//
//
// Part of the cfv project: reproduction of Jiang & Agrawal, CGO 2018.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The inspector side of the pattern subsystem: one linear scan per tile
/// assigns a TileClass plus the stats in pattern::TileInfo.  Everything
/// is scalar and ISA-independent -- classification happens once per
/// dataset and is cached, so simplicity and exactness beat vectorizing
/// the analysis itself.
///
/// Certification contract: ConflictFree means *no aligned 16-lane window
/// measured from the tile's first element contains a duplicate index*.
/// Executors must therefore walk each tile from its own start in
/// lane-aligned steps (every tile-aligned 8- or 16-lane vector is then a
/// sub-window of a certified window); the engine's chunk bounds are tile-
/// or lane-aligned already, so this holds for every dispatch site.
///
//===----------------------------------------------------------------------===//

#ifndef CFV_PATTERN_CLASSIFY_H
#define CFV_PATTERN_CLASSIFY_H

#include "core/RunOptions.h"
#include "inspector/Tiling.h"
#include "pattern/Pattern.h"

#include <cstdint>

namespace cfv {
namespace pattern {

/// Pseudo-tile length for flat (untiled) streams: long enough to
/// amortize per-tile dispatch, short enough that one misbehaving stretch
/// cannot drag a whole stream to General.  Must stay a multiple of
/// kClassifyWindow so pseudo-tile starts are window-aligned.
constexpr int64_t kStreamTileLen = 4096;

/// Classifies one contiguous index range as a single tile.  Exposed as
/// the unit the tests and the verify reference classifier check against.
TileInfo classifyRange(const int32_t *Idx, int64_t N);

/// Classifies a flat stream in fixed pseudo-tiles of \p TileLen
/// (BlockBits = -1 in the result).  Used for streams that have no
/// inspector tiling: SpMV's COO row stream, aggregation keys, and the
/// verification pipelines.
PatternResult classifyStream(const int32_t *Idx, int64_t N,
                             int64_t TileLen = kStreamTileLen);

/// Classifies an inspector tiling: element p of the tiled stream is
/// Values[T.Order[p]], tile t spans [T.TileBegin[t], T.TileBegin[t+1]).
/// This is what graph::PreparedGraph memoizes, applying the permutation
/// on the fly so the permuted copy never needs to be materialized.
PatternResult classifyTiling(const inspector::TilingResult &T,
                             const int32_t *Values);

/// Same, over an already-permuted stream (apps that materialized the
/// tiled order locally).
PatternResult classifyTiles(const int32_t *TiledIdx,
                            const std::vector<int64_t> &TileBegin,
                            int BlockBits);

/// Resolves a per-run request against the process-wide CFV_PATTERN
/// default (core::PatternMode::Env defers to envMode()).
Mode resolveMode(core::PatternMode Request);

/// True when \p R is usable by this binary: schema version matches and
/// the tile table is present.  Stale cached artifacts fail this and the
/// caller re-classifies instead of misreading them.
inline bool compatible(const PatternResult *R) {
  return R && R->SchemaVersion == kPatternSchemaVersion && !R->Tiles.empty();
}

} // namespace pattern
} // namespace cfv

#endif // CFV_PATTERN_CLASSIFY_H
