//===- tests/pagerank_test.cpp - PageRank, all five versions -------------===//
//
// Part of the cfv project: reproduction of Jiang & Agrawal, CGO 2018.
//
//===----------------------------------------------------------------------===//

#include "apps/pagerank/PageRank.h"
#include "apps/pagerank/PageRank64.h"

#include "graph/Generators.h"
#include "util/Prng.h"

#include "gtest/gtest.h"

#include <cmath>

using namespace cfv;
using namespace cfv::apps;
using namespace cfv::graph;

namespace {

constexpr PrVersion kAllVersions[] = {
    PrVersion::NontilingSerial, PrVersion::TilingSerial,
    PrVersion::TilingGrouping, PrVersion::TilingMask,
    PrVersion::TilingInvec};

void expectRanksClose(const AlignedVector<float> &A,
                      const AlignedVector<float> &B, float Tol) {
  ASSERT_EQ(A.size(), B.size());
  for (std::size_t I = 0; I < A.size(); ++I)
    ASSERT_NEAR(A[I], B[I], Tol) << "vertex " << I;
}

} // namespace

class PageRankVersions : public ::testing::TestWithParam<PrVersion> {};

TEST_P(PageRankVersions, MatchesSerialOnSkewedGraph) {
  const EdgeList G = genRmat(10, 8000, 0x91);
  const PageRankResult Ref =
      runPageRank(G, PrVersion::NontilingSerial);
  const PageRankResult Got = runPageRank(G, GetParam());
  expectRanksClose(Got.Rank, Ref.Rank, 1e-4f);
  EXPECT_NEAR(Got.Iterations, Ref.Iterations, 2)
      << "float reassociation may shift convergence by an iteration";
}

TEST_P(PageRankVersions, MatchesSerialOnUniformGraph) {
  const EdgeList G = genUniform(10, 6000, 0x92);
  const PageRankResult Ref =
      runPageRank(G, PrVersion::NontilingSerial);
  const PageRankResult Got = runPageRank(G, GetParam());
  expectRanksClose(Got.Rank, Ref.Rank, 1e-4f);
}

TEST_P(PageRankVersions, HotspotGraphMaximizesConflicts) {
  // Every edge points at vertex 0: the worst case for conflict handling.
  EdgeList G;
  G.NumNodes = 64;
  for (int32_t V = 1; V < 64; ++V)
    for (int R = 0; R < 4; ++R) {
      G.Src.push_back(V);
      G.Dst.push_back(0);
    }
  const PageRankResult Ref =
      runPageRank(G, PrVersion::NontilingSerial);
  const PageRankResult Got = runPageRank(G, GetParam());
  expectRanksClose(Got.Rank, Ref.Rank, 1e-4f);
}

TEST_P(PageRankVersions, TinyGraphsAndTails) {
  // Edge counts that exercise the sub-16 tail handling.
  for (const int64_t M : {1, 5, 15, 16, 17, 33}) {
    const EdgeList G = genUniform(4, M, static_cast<uint64_t>(M));
    const PageRankResult Ref =
        runPageRank(G, PrVersion::NontilingSerial);
    const PageRankResult Got = runPageRank(G, GetParam());
    expectRanksClose(Got.Rank, Ref.Rank, 1e-4f);
  }
}

INSTANTIATE_TEST_SUITE_P(AllVersions, PageRankVersions,
                         ::testing::ValuesIn(kAllVersions),
                         [](const auto &Info) {
                           return versionName(Info.param);
                         });

TEST(PageRank, RankMassIsConserved) {
  const EdgeList G = genRmat(9, 6000, 0x93);
  const PageRankResult R = runPageRank(G, PrVersion::TilingInvec);
  double Mass = 0.0;
  for (float X : R.Rank)
    Mass += X;
  // Dangling vertices leak some mass; it must stay within (0, 1].
  EXPECT_GT(Mass, 0.2);
  EXPECT_LE(Mass, 1.0 + 1e-3);
}

TEST(PageRank, ConvergesWithinIterationCap) {
  const EdgeList G = genRmat(9, 6000, 0x94);
  PageRankOptions O;
  O.MaxIterations = 100;
  const PageRankResult R = runPageRank(G, PrVersion::NontilingSerial, O);
  EXPECT_LT(R.Iterations, 100) << "0.1% tolerance should converge quickly";
  EXPECT_GT(R.Iterations, 2);
}

TEST(PageRank, MaskVersionReportsUtilization) {
  const EdgeList G = genRmat(9, 6000, 0x95);
  const PageRankResult R = runPageRank(G, PrVersion::TilingMask);
  EXPECT_GT(R.SimdUtil, 0.0);
  EXPECT_LE(R.SimdUtil, 1.0);
}

TEST(PageRank, InvecVersionReportsD1AndStaysOnAlg1ForGraphs) {
  const EdgeList G = genUniform(12, 20000, 0x96);
  const PageRankResult R = runPageRank(G, PrVersion::TilingInvec);
  // §3.4: "the graph applications have a very small D1" -- a uniform
  // graph over 4096 vertices has almost no in-vector duplicates.
  EXPECT_LT(R.MeanD1, 1.0);
  EXPECT_FALSE(R.UsedAlg2);
}

TEST(PageRank, HotspotGraphTriggersAlg2) {
  EdgeList G;
  G.NumNodes = 16;
  Xoshiro256 Rng(0x97);
  for (int64_t E = 0; E < 4096; ++E) {
    G.Src.push_back(static_cast<int32_t>(Rng.nextBounded(16)));
    G.Dst.push_back(static_cast<int32_t>(Rng.nextBounded(2)));
  }
  // This pins the *adaptive* policy, so the pattern dispatcher must sit
  // out: a 2-destination stream classifies SmallAlphabet and would be
  // folded in registers before the Alg1/Alg2 machinery ever saw it.
  PageRankOptions O;
  O.Pattern = core::PatternMode::Off;
  const PageRankResult R = runPageRank(G, PrVersion::TilingInvec, O);
  EXPECT_GT(R.MeanD1, 1.0);
  EXPECT_TRUE(R.UsedAlg2);
}

TEST(PageRank64, InvecMatchesSerialDoubles) {
  const EdgeList G = genRmat(10, 8000, 0x99);
  const PageRank64Result Ref = runPageRank64(G, Pr64Version::Serial);
  const PageRank64Result Got = runPageRank64(G, Pr64Version::Invec);
  ASSERT_EQ(Got.Rank.size(), Ref.Rank.size());
  for (std::size_t I = 0; I < Ref.Rank.size(); ++I)
    ASSERT_NEAR(Got.Rank[I], Ref.Rank[I], 1e-10) << "vertex " << I;
  EXPECT_EQ(Got.Iterations, Ref.Iterations)
      << "fp64 reassociation noise should not move convergence";
}

TEST(PageRank64, AgreesWithFp32WithinFloatPrecision) {
  const EdgeList G = genUniform(9, 5000, 0x9A);
  const PageRankResult F32 = runPageRank(G, PrVersion::NontilingSerial);
  const PageRank64Result F64 = runPageRank64(G, Pr64Version::Serial);
  for (int32_t V = 0; V < G.NumNodes; ++V)
    ASSERT_NEAR(F64.Rank[V], static_cast<double>(F32.Rank[V]), 1e-4);
}

TEST(PageRank64, HandlesConflictHeavyGraphAndTails) {
  // 8-lane blocks with duplicate destinations plus a non-multiple tail.
  EdgeList G;
  G.NumNodes = 8;
  Xoshiro256 Rng(0x9B);
  for (int64_t E = 0; E < 999; ++E) {
    G.Src.push_back(static_cast<int32_t>(Rng.nextBounded(8)));
    G.Dst.push_back(static_cast<int32_t>(Rng.nextBounded(2)));
  }
  const PageRank64Result Ref = runPageRank64(G, Pr64Version::Serial);
  const PageRank64Result Got = runPageRank64(G, Pr64Version::Invec);
  for (int32_t V = 0; V < G.NumNodes; ++V)
    ASSERT_NEAR(Got.Rank[V], Ref.Rank[V], 1e-9);
  EXPECT_GT(Got.MeanD1, 1.0) << "two hot destinations per 8-lane vector";
}

TEST(PageRank, PhaseTimesAreReported) {
  const EdgeList G = genRmat(9, 6000, 0x98);
  const PageRankResult R = runPageRank(G, PrVersion::TilingGrouping);
  EXPECT_GT(R.ComputeSeconds, 0.0);
  EXPECT_GT(R.TilingSeconds, 0.0);
  EXPECT_GT(R.GroupingSeconds, 0.0);
  EXPECT_DOUBLE_EQ(R.totalSeconds(),
                   R.ComputeSeconds + R.TilingSeconds + R.GroupingSeconds);

  const PageRankResult S = runPageRank(G, PrVersion::NontilingSerial);
  EXPECT_EQ(S.TilingSeconds, 0.0);
  EXPECT_EQ(S.GroupingSeconds, 0.0);
}
