//===- tools/cfv_run.cpp - Command-line application driver ----------------===//
//
// Part of the cfv project: reproduction of Jiang & Agrawal, CGO 2018.
//
//===----------------------------------------------------------------------===//
//
// Runs any of the library's applications on a named synthetic dataset or
// a SNAP edge-list file, with any execution strategy -- the command-line
// counterpart of the original artifact's run.sh scripts.
//
//   cfv_run pagerank --dataset higgs-twitter-sim --version invec
//   cfv_run sssp     --file soc-pokec.txt --version mask --source 3
//   cfv_run wcc      --dataset amazon0312-sim --version grouping
//   cfv_run moldyn   --cells 10 --version invec --iters 20
//   cfv_run agg      --dist zipf --cardinality 65536 --rows 4000000
//                    --version bucket_invec     (one line)
//   cfv_run spmv     --dataset higgs-twitter-sim --version invec
//
// Run `cfv_run --help` for the full grammar.
//
//===----------------------------------------------------------------------===//

#include "apps/agg/Aggregation.h"
#include "core/Dispatch.h"
#include "apps/frontier/FrontierEngine.h"
#include "apps/mesh/MeshSolver.h"
#include "apps/moldyn/Moldyn.h"
#include "apps/pagerank/PageRank.h"
#include "apps/spmv/Spmv.h"
#include "graph/Datasets.h"
#include "graph/Io.h"
#include "util/Prng.h"
#include "workload/KeyGen.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>

using namespace cfv;

namespace {

[[noreturn]] void usage(int Code) {
  std::fprintf(
      Code ? stderr : stdout,
      "usage: cfv_run <app> [options]\n"
      "\n"
      "apps:\n"
      "  pagerank | sssp | sswp | wcc | bfs | moldyn | agg | spmv | mesh\n"
      "\n"
      "graph inputs (pagerank/sssp/sswp/wcc/bfs/spmv):\n"
      "  --dataset <name>     higgs-twitter-sim | soc-pokec-sim |\n"
      "                       amazon0312-sim   (default higgs-twitter-sim)\n"
      "  --file <path>        SNAP edge list instead of a synthetic input\n"
      "  --scale <x>          synthetic workload scale (default $CFV_SCALE)\n"
      "\n"
      "strategy:\n"
      "  --version <v>        serial | tiling_serial | grouping | mask |\n"
      "                       invec (graph apps; default invec)\n"
      "                       serial | grouping | mask | invec (moldyn)\n"
      "                       linear_serial | linear_mask | bucket_mask |\n"
      "                       linear_invec | bucket_invec (agg)\n"
      "                       coo_serial | csr_serial | coo_mask |\n"
      "                       coo_invec | coo_grouping (spmv)\n"
      "\n"
      "backend:\n"
      "  --backend <b>        scalar | avx512 (default: best available;\n"
      "                       CFV_BACKEND=<b> is equivalent; requesting\n"
      "                       avx512 on an unsupported CPU falls back to\n"
      "                       scalar with a note)\n"
      "\n"
      "app options:\n"
      "  --source <v>         source vertex (sssp/sswp/bfs; default 0)\n"
      "  --iters <n>          iteration cap / moldyn steps (default app)\n"
      "  --cells <n>          moldyn FCC cells per edge (default 8)\n"
      "  --rows <n>           agg input rows (default 4000000)\n"
      "  --cardinality <n>    agg group count (default 65536)\n"
      "  --dist <d>           agg keys: hh | zipf | mc | uniform\n"
      "  --seed <n>           generator seed override\n"
      "\n"
      "environment:\n"
      "  CFV_BACKEND=<b>      backend override (see --backend)\n"
      "  CFV_VALIDATE=1       re-check every in-vector reduction batch\n"
      "                       against scalar-order semantics (slow)\n"
      "  CFV_SCALE=<x>        synthetic workload scale\n");
  std::exit(Code);
}

struct Options {
  std::string App;
  std::string Dataset = "higgs-twitter-sim";
  std::string File;
  std::string Version = "invec";
  std::string Dist = "zipf";
  double Scale = graph::envScale();
  int32_t Source = 0;
  int Iters = -1;
  int Cells = 8;
  int64_t Rows = 4000000;
  int64_t Cardinality = 65536;
  uint64_t Seed = 0xCF5EEDULL;
};

/// Strict numeric flag parsing: the whole token must convert, and range
/// errors are fatal rather than silently saturating like atoi.
long long parseIntFlag(const std::string &Flag, const char *Text) {
  char *End = nullptr;
  errno = 0;
  const long long V = std::strtoll(Text, &End, 0);
  if (End == Text || *End != '\0' || errno == ERANGE) {
    std::fprintf(stderr, "error: %s needs an integer, got '%s'\n",
                 Flag.c_str(), Text);
    usage(2);
  }
  return V;
}

uint64_t parseSeedFlag(const std::string &Flag, const char *Text) {
  char *End = nullptr;
  errno = 0;
  const unsigned long long V = std::strtoull(Text, &End, 0);
  if (End == Text || *End != '\0' || errno == ERANGE) {
    std::fprintf(stderr, "error: %s needs an unsigned integer, got '%s'\n",
                 Flag.c_str(), Text);
    usage(2);
  }
  return V;
}

double parseFloatFlag(const std::string &Flag, const char *Text) {
  char *End = nullptr;
  errno = 0;
  const double V = std::strtod(Text, &End);
  if (End == Text || *End != '\0' || errno == ERANGE) {
    std::fprintf(stderr, "error: %s needs a number, got '%s'\n",
                 Flag.c_str(), Text);
    usage(2);
  }
  return V;
}

Options parseArgs(int Argc, char **Argv) {
  if (Argc < 2)
    usage(2);
  Options O;
  O.App = Argv[1];
  if (O.App == "--help" || O.App == "-h")
    usage(0);
  for (int I = 2; I < Argc; ++I) {
    const std::string Arg = Argv[I];
    auto Value = [&]() -> const char * {
      if (I + 1 >= Argc) {
        std::fprintf(stderr, "error: %s needs a value\n", Arg.c_str());
        usage(2);
      }
      return Argv[++I];
    };
    if (Arg == "--dataset")
      O.Dataset = Value();
    else if (Arg == "--file")
      O.File = Value();
    else if (Arg == "--version")
      O.Version = Value();
    else if (Arg == "--dist")
      O.Dist = Value();
    else if (Arg == "--backend") {
      const Expected<core::BackendKind> K = core::parseBackendKind(Value());
      if (!K.ok()) {
        std::fprintf(stderr, "error: %s\n", K.status().toString().c_str());
        usage(2);
      }
      core::setBackend(*K);
    } else if (Arg == "--scale")
      O.Scale = parseFloatFlag(Arg, Value());
    else if (Arg == "--source")
      O.Source = static_cast<int32_t>(parseIntFlag(Arg, Value()));
    else if (Arg == "--iters")
      O.Iters = static_cast<int>(parseIntFlag(Arg, Value()));
    else if (Arg == "--cells")
      O.Cells = static_cast<int>(parseIntFlag(Arg, Value()));
    else if (Arg == "--rows")
      O.Rows = parseIntFlag(Arg, Value());
    else if (Arg == "--cardinality")
      O.Cardinality = parseIntFlag(Arg, Value());
    else if (Arg == "--seed")
      O.Seed = parseSeedFlag(Arg, Value());
    else if (Arg == "--help" || Arg == "-h")
      usage(0);
    else {
      std::fprintf(stderr, "error: unknown option '%s'\n", Arg.c_str());
      usage(2);
    }
  }
  return O;
}

graph::EdgeList loadGraph(const Options &O, bool Weighted) {
  if (!O.File.empty()) {
    auto G = graph::readSnapEdgeList(O.File);
    if (!G.ok()) {
      std::fprintf(stderr, "error: %s\n", G.status().toString().c_str());
      std::exit(1);
    }
    if (Weighted && !G->isWeighted()) {
      // Attach deterministic weights so path algorithms work on
      // unweighted SNAP files, as the paper's artifact does.
      Xoshiro256 Rng(O.Seed);
      G->Weight.resize(G->numEdges());
      for (float &W : G->Weight)
        W = 1.0f + Rng.nextFloat() * 63.0f;
      std::fprintf(stderr,
                   "note: attached uniform [1,64) weights to '%s'\n",
                   O.File.c_str());
    }
    return std::move(*G);
  }
  auto D = graph::makeGraphDataset(O.Dataset, O.Scale, Weighted);
  if (!D.ok()) {
    std::fprintf(stderr, "error: %s\n", D.status().toString().c_str());
    std::exit(2);
  }
  return std::move(D->Edges);
}

template <typename T>
T pickVersion(const Options &O, const std::map<std::string, T> &Table) {
  const auto It = Table.find(O.Version);
  if (It != Table.end())
    return It->second;
  std::fprintf(stderr, "error: unknown version '%s' for %s; choices:",
               O.Version.c_str(), O.App.c_str());
  for (const auto &[Name, V] : Table)
    std::fprintf(stderr, " %s", Name.c_str());
  std::fprintf(stderr, "\n");
  std::exit(2);
}

int runPageRankCmd(const Options &O) {
  const graph::EdgeList G = loadGraph(O, false);
  const auto V = pickVersion<apps::PrVersion>(
      O, {{"serial", apps::PrVersion::NontilingSerial},
          {"tiling_serial", apps::PrVersion::TilingSerial},
          {"grouping", apps::PrVersion::TilingGrouping},
          {"mask", apps::PrVersion::TilingMask},
          {"invec", apps::PrVersion::TilingInvec}});
  apps::PageRankOptions PO;
  if (O.Iters > 0)
    PO.MaxIterations = O.Iters;
  const apps::PageRankResult R = apps::runPageRank(G, V, PO);
  std::printf("pagerank %s: %d vertices, %lld edges\n",
              apps::versionName(V), G.NumNodes,
              static_cast<long long>(G.numEdges()));
  std::printf("  computing %.3fs  tiling %.3fs  grouping %.3fs  "
              "(%d iterations)\n",
              R.ComputeSeconds, R.TilingSeconds, R.GroupingSeconds,
              R.Iterations);
  if (V == apps::PrVersion::TilingMask)
    std::printf("  simd_util %.2f%%\n", R.SimdUtil * 100.0);
  if (V == apps::PrVersion::TilingInvec)
    std::printf("  mean D1 %.4f (%s)\n", R.MeanD1,
                R.UsedAlg2 ? "Algorithm 2" : "Algorithm 1");
  double Mass = 0.0;
  for (float X : R.Rank)
    Mass += X;
  std::printf("  rank mass %.4f\n", Mass);
  return 0;
}

int runFrontierCmd(const Options &O, apps::FrApp App) {
  const bool Weighted = App == apps::FrApp::Sssp || App == apps::FrApp::Sswp;
  const graph::EdgeList G = loadGraph(O, Weighted);
  const auto V = pickVersion<apps::FrVersion>(
      O, {{"serial", apps::FrVersion::NontilingSerial},
          {"mask", apps::FrVersion::NontilingMask},
          {"invec", apps::FrVersion::NontilingInvec},
          {"grouping", apps::FrVersion::TilingGrouping}});
  apps::FrontierOptions FO;
  FO.Source = O.Source;
  if (O.Iters > 0)
    FO.MaxIterations = O.Iters;
  if (FO.Source < 0 || FO.Source >= G.NumNodes) {
    std::fprintf(stderr, "error: source %d out of range [0, %d)\n",
                 FO.Source, G.NumNodes);
    return 1;
  }
  const apps::FrontierResult R = apps::runFrontier(G, App, V, FO);
  std::printf("%s %s: %d vertices, %lld edges, source %d\n",
              apps::appName(App), apps::versionName(V), G.NumNodes,
              static_cast<long long>(G.numEdges()), FO.Source);
  std::printf("  computing %.3fs  prep %.3fs  (%d wave iterations, %lld "
              "edge relaxations)\n",
              R.ComputeSeconds, R.TilingSeconds + R.GroupingSeconds,
              R.Iterations, static_cast<long long>(R.EdgesProcessed));
  if (V == apps::FrVersion::NontilingMask)
    std::printf("  simd_util %.2f%%\n", R.SimdUtil * 100.0);
  if (V == apps::FrVersion::NontilingInvec)
    std::printf("  mean D1 %.4f\n", R.MeanD1);
  return 0;
}

int runMoldynCmd(const Options &O) {
  const auto V = pickVersion<apps::MdVersion>(
      O, {{"serial", apps::MdVersion::TilingSerial},
          {"grouping", apps::MdVersion::TilingGrouping},
          {"mask", apps::MdVersion::TilingMask},
          {"invec", apps::MdVersion::TilingInvec}});
  apps::MoldynOptions MO;
  MO.Cells = O.Cells;
  MO.Seed = O.Seed;
  const int Iters = O.Iters > 0 ? O.Iters : 20;
  const apps::MoldynResult R = apps::runMoldyn(MO, V, Iters);
  std::printf("moldyn %s: %d atoms, %lld pairs, %d steps\n",
              apps::versionName(V), R.Atoms,
              static_cast<long long>(R.Pairs), Iters);
  std::printf("  computing %.3fs  neighbor %.3fs  tiling %.3fs  "
              "grouping %.3fs\n",
              R.ComputeSeconds, R.NeighborSeconds, R.TilingSeconds,
              R.GroupingSeconds);
  if (V == apps::MdVersion::TilingMask)
    std::printf("  simd_util %.2f%%\n", R.SimdUtil * 100.0);
  if (V == apps::MdVersion::TilingInvec)
    std::printf("  mean D1 %.3f\n", R.MeanD1);
  std::printf("  kinetic %.2f  potential %.2f\n", R.FinalKinetic,
              R.FinalPotential);
  return 0;
}

int runAggCmd(const Options &O) {
  const auto V = pickVersion<apps::AggVersion>(
      O, {{"linear_serial", apps::AggVersion::LinearSerial},
          {"linear_mask", apps::AggVersion::LinearMask},
          {"bucket_mask", apps::AggVersion::BucketMask},
          {"linear_invec", apps::AggVersion::LinearInvec},
          {"bucket_invec", apps::AggVersion::BucketInvec}});
  const std::map<std::string, workload::KeyDist> Dists = {
      {"hh", workload::KeyDist::HeavyHitter},
      {"zipf", workload::KeyDist::Zipf},
      {"mc", workload::KeyDist::MovingCluster},
      {"uniform", workload::KeyDist::Uniform}};
  const auto DistIt = Dists.find(O.Dist);
  if (DistIt == Dists.end()) {
    std::fprintf(stderr, "error: unknown distribution '%s'\n",
                 O.Dist.c_str());
    return 2;
  }
  if (O.Cardinality <= 0 || O.Cardinality > (int64_t(1) << 24) ||
      O.Rows <= 0) {
    std::fprintf(stderr,
                 "error: --cardinality must be in [1, 2^24] and --rows "
                 "positive\n");
    return 2;
  }
  const auto Keys = workload::genKeys(
      DistIt->second, O.Rows, static_cast<int32_t>(O.Cardinality), O.Seed);
  const auto Vals = workload::genValues(O.Rows, O.Seed ^ 1);
  const apps::AggResult R = apps::runAggregation(
      Keys.data(), Vals.data(), O.Rows, O.Cardinality, V);
  std::printf("agg %s: %lld rows, %s keys, cardinality %lld\n",
              apps::versionName(V), static_cast<long long>(O.Rows),
              workload::distName(DistIt->second),
              static_cast<long long>(O.Cardinality));
  std::printf("  %.3fs build, %.1f Mrows/s, %lld groups\n", R.Seconds,
              R.MRowsPerSec, static_cast<long long>(R.numGroups()));
  return 0;
}

int runSpmvCmd(const Options &O) {
  const graph::EdgeList A = loadGraph(O, true);
  const auto V = pickVersion<apps::SpmvVersion>(
      O, {{"coo_serial", apps::SpmvVersion::CooSerial},
          {"csr_serial", apps::SpmvVersion::CsrSerial},
          {"coo_mask", apps::SpmvVersion::CooMask},
          {"coo_invec", apps::SpmvVersion::CooInvec},
          {"coo_grouping", apps::SpmvVersion::CooGrouping}});
  Xoshiro256 Rng(O.Seed);
  AlignedVector<float> X(A.NumNodes);
  for (float &E : X)
    E = Rng.nextFloat();
  const int Repeats = O.Iters > 0 ? O.Iters : 10;
  const apps::SpmvResult R = apps::runSpmv(A, X.data(), V, Repeats);
  double Norm = 0.0;
  for (float Y : R.Y)
    Norm += static_cast<double>(Y) * Y;
  std::printf("spmv %s: %d rows, %lld nonzeros, %d repeats\n",
              apps::versionName(V), A.NumNodes,
              static_cast<long long>(A.numEdges()), Repeats);
  std::printf("  multiply %.3fs  prep %.3fs  |y|^2 %.4g\n", R.Seconds,
              R.PrepSeconds, Norm);
  return 0;
}

int runMeshCmd(const Options &O) {
  const auto V = pickVersion<apps::MeshVersion>(
      O, {{"serial", apps::MeshVersion::Serial},
          {"mask", apps::MeshVersion::Mask},
          {"invec", apps::MeshVersion::Invec},
          {"grouping", apps::MeshVersion::Grouping}});
  // Square grid sized from --cells (cells per edge, like moldyn).
  const int32_t Side = std::max(4, O.Cells * 16);
  const apps::Mesh M = apps::makeTriangulatedGrid(Side, Side, O.Seed);
  Xoshiro256 Rng(O.Seed ^ 2);
  AlignedVector<float> U0(M.NumCells);
  for (float &X : U0)
    X = Rng.nextFloat();
  const int Sweeps = O.Iters > 0 ? O.Iters : 50;
  const apps::MeshRunResult R =
      apps::runMeshDiffusion(M, U0.data(), Sweeps, 0.4f, V);
  std::printf("mesh %s: %d cells, %lld edges, %d sweeps\n",
              apps::versionName(V), M.NumCells,
              static_cast<long long>(M.numEdges()), Sweeps);
  std::printf("  computing %.3fs  grouping %.3fs\n", R.ComputeSeconds,
              R.GroupSeconds);
  if (V == apps::MeshVersion::Mask)
    std::printf("  simd_util %.2f%%\n", R.SimdUtil * 100.0);
  if (V == apps::MeshVersion::Invec)
    std::printf("  mean D1 %.3f\n", R.MeanD1);
  double Total = 0.0;
  for (float X : R.U)
    Total += X;
  std::printf("  conserved total %.2f\n", Total);
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  const Options O = parseArgs(Argc, Argv);
  if (O.App == "pagerank")
    return runPageRankCmd(O);
  if (O.App == "sssp")
    return runFrontierCmd(O, apps::FrApp::Sssp);
  if (O.App == "sswp")
    return runFrontierCmd(O, apps::FrApp::Sswp);
  if (O.App == "wcc")
    return runFrontierCmd(O, apps::FrApp::Wcc);
  if (O.App == "bfs")
    return runFrontierCmd(O, apps::FrApp::Bfs);
  if (O.App == "moldyn")
    return runMoldynCmd(O);
  if (O.App == "agg")
    return runAggCmd(O);
  if (O.App == "spmv")
    return runSpmvCmd(O);
  if (O.App == "mesh")
    return runMeshCmd(O);
  std::fprintf(stderr, "error: unknown app '%s'\n", O.App.c_str());
  usage(2);
}
