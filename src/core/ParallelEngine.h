//===- core/ParallelEngine.h - Multi-core execution engine ------*- C++ -*-===//
//
// Part of the cfv project: reproduction of Jiang & Agrawal, CGO 2018.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The cross-core half of two-level conflict freedom.  In-vector reduction
/// (core/InvecReduce.h) removes conflicts *within* a SIMD register; this
/// engine removes conflicts *across* cores by the classic associative
/// trick the paper's reductions already rely on: each worker runs the
/// unmodified per-backend SIMD kernel over a contiguous chunk of the
/// iteration space, writing into a privatized accumulator, and the
/// partial results are merged deterministically afterwards.
///
/// Components:
///  - ParallelEngine: a dependency-free persistent worker pool
///    (std::thread + condition_variable).  Static chunk-to-thread
///    assignment, caller participates as thread 0, so a run at a fixed
///    thread count is deterministic.
///  - resolveThreads / chunkBounds / chunkBoundsFromTiles: thread-count
///    and iteration-space partitioning policy.  Chunk boundaries are
///    SIMD-block aligned (or inspector/Tiling tile aligned) so each
///    worker executes the same whole-block + tail structure the serial
///    kernel would; with one thread the single chunk is the full range
///    and the kernel runs bit-identically to the serial path.
///  - FloatSink / SpillListF: the two privatization strategies chosen by
///    core::privatizeDense (core/CostModel.h).  Dense replication gives
///    every worker its own copy of the value array; a sparse spill list
///    records (index, addend) pairs instead when replicas would be too
///    large, at one append per update.
///  - mergeTreeAdd: tree-structured parallel merge of dense replicas
///    with a fixed pairing, so the merged sum is bit-identical no matter
///    how the pair combines are scheduled.
///
/// Workers must not call core::dispatch() (its cached selection is not
/// synchronized); callers resolve the kernel table before entering the
/// parallel region and capture it.
///
//===----------------------------------------------------------------------===//

#ifndef CFV_CORE_PARALLELENGINE_H
#define CFV_CORE_PARALLELENGINE_H

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "core/InvecReduce.h"
#include "numa/Topology.h"
#include "obs/Trace.h"
#include "simd/Backend.h"
#include "simd/Ops.h"
#include "util/AlignedAlloc.h"
#include "util/Timer.h"

namespace cfv {
namespace core {

//===----------------------------------------------------------------------===//
// Thread-count policy
//===----------------------------------------------------------------------===//

/// Number of hardware threads, at least 1.
int hardwareThreads();

/// Resolves a requested thread count to the number of workers to run.
/// Requested >= 1 wins as-is (capped at kMaxThreads).  Requested <= 0
/// defers to the CFV_THREADS environment variable: unset or unparsable
/// keeps the library serial (1); a positive value is used directly; 0 or
/// a negative value means "all hardware threads".
int resolveThreads(int Requested);

/// Upper bound on the worker count; requests above it are clamped.
inline constexpr int kMaxThreads = 512;

//===----------------------------------------------------------------------===//
// Iteration-space partitioning
//===----------------------------------------------------------------------===//

/// Splits [0, N) into \p Threads contiguous chunks with boundaries
/// rounded up to \p Align (the SIMD block width, so only the final chunk
/// carries a tail).  Returns Threads + 1 monotone bounds with front() == 0
/// and back() == N; chunks may be empty when N is small.
std::vector<int64_t> chunkBounds(int64_t N, int Threads, int64_t Align);

/// Like chunkBounds but snaps every boundary to an inspector/Tiling tile
/// boundary, so a cache-sized tile is never split across workers.
/// \p TileBegin is TilingResult::TileBegin (numTiles() + 1 entries).
std::vector<int64_t> chunkBoundsFromTiles(const std::vector<int64_t> &TileBegin,
                                          int Threads);

/// Topology-aware variant: when a NUMA shard plan is active
/// (numa::currentPlan), tiles are first sharded across nodes
/// proportionally to each node's worker count and then split across the
/// node's workers, so a node's workers walk one contiguous, node-local
/// region; otherwise identical to chunkBoundsFromTiles.  The tiled apps
/// chunk through this entry point.
std::vector<int64_t>
chunkBoundsFromTilesSharded(const std::vector<int64_t> &TileBegin,
                            int Threads);

//===----------------------------------------------------------------------===//
// Privatized accumulator targets
//===----------------------------------------------------------------------===//

/// A sparse spill list: (index, addend) pairs appended during the sweep
/// and applied to the base array in thread-id order afterwards.  The
/// vector push uses compress-store, preserving the SIMD character of the
/// kernel that produced the updates.
struct SpillListF {
  AlignedVector<int32_t> Idx;
  AlignedVector<float> Val;

  void clear() {
    Idx.clear();
    Val.clear();
  }
  int64_t size() const { return static_cast<int64_t>(Idx.size()); }

  void push(int32_t I, float V) {
    Idx.push_back(I);
    Val.push_back(V);
  }

  void push(simd::Mask16 M, simd::VecI32<simd::NativeBackend> I,
            simd::VecF32<simd::NativeBackend> V) {
    alignas(64) int32_t TmpI[simd::kMaxLanes];
    alignas(64) float TmpV[simd::kMaxLanes];
    const int K = I.compressStore(M, TmpI);
    V.compressStore(M, TmpV);
    for (int L = 0; L < K; ++L) {
      Idx.push_back(TmpI[L]);
      Val.push_back(TmpV[L]);
    }
  }
};

/// Folds a spill list into \p Base in append order.
void applySpillAdd(const SpillListF &L, float *Base);

/// Where a worker's additive float updates land: either a dense array
/// (the shared base for thread 0, a private replica for the rest) or a
/// sparse spill list.  The dense commit is core::accumulateScatter, which
/// performs the same gather + add + scatter the hand-written kernels use,
/// so routing a kernel through a dense sink does not change arithmetic.
class FloatSink {
public:
  static FloatSink dense(float *Base) {
    FloatSink S;
    S.Base = Base;
    return S;
  }
  static FloatSink spill(SpillListF *List) {
    FloatSink S;
    S.List = List;
    return S;
  }

  bool isDense() const { return Base != nullptr; }
  float *densePtr() const { return Base; }

  void add(int32_t I, float V) const {
    if (Base)
      Base[I] += V;
    else
      List->push(I, V);
  }

  void commit(simd::Mask16 M, simd::VecI32<simd::NativeBackend> I,
              simd::VecF32<simd::NativeBackend> V) const {
    if (Base)
      core::accumulateScatter<simd::OpAdd>(M, I, V, Base);
    else
      List->push(M, I, V);
  }

private:
  float *Base = nullptr;
  SpillListF *List = nullptr;
};

/// Chooses between dense replication and sparse spill lists for a
/// privatized array of \p Elems elements of \p ElemBytes each receiving
/// \p TotalUpdates updates spread over \p Threads workers.  Applies the
/// core::privatizeDense cost model plus a per-replica byte cap
/// (CFV_PRIVATE_DENSE_MAX, default 256 MiB; read per call so tests can
/// force the spill path).
bool useDensePrivatization(int64_t Elems, int64_t ElemBytes,
                           int64_t TotalUpdates, int Threads);

//===----------------------------------------------------------------------===//
// Worker pool
//===----------------------------------------------------------------------===//

/// Process-wide persistent worker pool.  run(T, Body) invokes Body(0)
/// on the calling thread and Body(1..T-1) on pool workers, returning
/// once all have finished.  Concurrent run() calls from different
/// threads serialize on an internal mutex; a nested run() from inside a
/// worker degrades to Body(0) on that worker (no deadlock, still every
/// index covered because the nesting caller owns its outer chunk).
class ParallelEngine {
public:
  static ParallelEngine &instance();

  void run(int Threads, const std::function<void(int)> &Body);

  ~ParallelEngine();

  ParallelEngine(const ParallelEngine &) = delete;
  ParallelEngine &operator=(const ParallelEngine &) = delete;

private:
  ParallelEngine() = default;

  void ensureWorkers(int Needed);
  void workerLoop(int Slot, uint64_t StartGen);

  std::mutex RunMu; // serializes whole run() invocations

  std::mutex Mu; // guards everything below
  std::condition_variable CvJob;
  std::condition_variable CvDone;
  std::vector<std::thread> Workers;
  const std::function<void(int)> *Job = nullptr;
  int JobThreads = 0;
  int Remaining = 0;
  uint64_t Generation = 0;
  bool Quit = false;
  /// NUMA shard plan of the job being executed (nullptr = flat).  Workers
  /// read it when they pick up the job and pin/unpin themselves to their
  /// assigned CPU; pin failures are tolerated (restricted containers).
  std::shared_ptr<const numa::ShardPlan> ActivePlan;
};

//===----------------------------------------------------------------------===//
// Deterministic tree merge
//===----------------------------------------------------------------------===//

/// Two-level variant under an active NUMA shard plan: the fixed-pairing
/// stride-doubling tree runs *within* each node's replica list (replica
/// i belongs to worker i + 1, so a node's replicas stay node-local),
/// then the per-node heads fold into \p Base serially in node order --
/// the single deterministic cross-node pass, timed and accounted as the
/// remote-access estimate.  The pairing is still a pure function of
/// (thread count, plan), so results stay run-to-run deterministic; for
/// the tile-sharded apps every cross-worker add is an exact zero (each
/// destination tile is owned by one worker), so the merged sum is
/// bit-identical to serial at any topology.
template <typename T>
void mergeTreeAddTwoLevel(T *Base, std::vector<AlignedVector<T>> &Parts,
                          int64_t N, const numa::ShardPlan &Plan) {
  obs::Span MergeSpan("engine:merge", "merge");
  const auto Combine = [&Parts, N](int A, int B) {
    T *X = Parts[A].data();
    T *Y = Parts[B].data();
    for (int64_t J = 0; J < N; ++J) {
      X[J] += Y[J];
      Y[J] = T(0);
    }
  };
  std::vector<int> Heads; // one surviving replica per node, node order
  for (int Node = 0; Node < Plan.Nodes; ++Node) {
    std::vector<int> Replicas;
    for (const int W : Plan.WorkersOfNode[Node])
      if (W >= 1 && W - 1 < static_cast<int>(Parts.size()))
        Replicas.push_back(W - 1);
    if (Replicas.empty())
      continue;
    const int R = static_cast<int>(Replicas.size());
    for (int Stride = 1; Stride < R; Stride *= 2) {
      std::vector<std::pair<int, int>> Pairs;
      for (int I = 0; I + Stride < R; I += 2 * Stride)
        Pairs.emplace_back(Replicas[I], Replicas[I + Stride]);
      if (Pairs.size() > 1 && N >= 4096) {
        ParallelEngine::instance().run(
            static_cast<int>(Pairs.size()),
            [&](int K) { Combine(Pairs[K].first, Pairs[K].second); });
      } else {
        for (const auto &[A, B] : Pairs)
          Combine(A, B);
      }
    }
    Heads.push_back(Replicas[0]);
  }
  WallTimer Cross;
  for (const int H : Heads) {
    T *X = Parts[H].data();
    for (int64_t J = 0; J < N; ++J) {
      Base[J] += X[J];
      X[J] = T(0);
    }
  }
  numa::noteCrossNodeMerge(Cross.seconds(),
                           static_cast<int64_t>(Heads.size()) * N *
                               static_cast<int64_t>(sizeof(T)));
}

/// Folds the dense replicas in \p Parts into \p Base with a fixed-pairing
/// tree reduction and resets every replica to zero for reuse.  The
/// pairing (stride doubling over the replica index) is independent of
/// how the pair combines are scheduled, so the result is bit-identical
/// whether the rounds run serially or on the pool; thread-0 updates are
/// already in Base, and Parts[i] holds thread i+1's partial sums, so the
/// final fold appends the merged tree onto Base exactly once.  Under an
/// active NUMA plan (CFV_NUMA, numa::currentPlan) the merge routes to
/// the two-level intra-node/cross-node variant above.
template <typename T>
void mergeTreeAdd(T *Base, std::vector<AlignedVector<T>> &Parts, int64_t N) {
  const int P = static_cast<int>(Parts.size());
  if (P == 0 || N == 0)
    return;
  if (const std::shared_ptr<const numa::ShardPlan> Plan =
          numa::currentPlan(P + 1)) {
    mergeTreeAddTwoLevel(Base, Parts, N, *Plan);
    return;
  }
  obs::Span MergeSpan("engine:merge", "merge");
  const auto Combine = [&Parts, N](int A, int B) {
    T *X = Parts[A].data();
    T *Y = Parts[B].data();
    for (int64_t J = 0; J < N; ++J) {
      X[J] += Y[J];
      Y[J] = T(0);
    }
  };
  for (int Stride = 1; Stride < P; Stride *= 2) {
    std::vector<std::pair<int, int>> Pairs;
    for (int I = 0; I + Stride < P; I += 2 * Stride)
      Pairs.emplace_back(I, I + Stride);
    if (Pairs.size() > 1 && N >= 4096) {
      ParallelEngine::instance().run(
          static_cast<int>(Pairs.size()),
          [&](int K) { Combine(Pairs[K].first, Pairs[K].second); });
    } else {
      for (const auto &[A, B] : Pairs)
        Combine(A, B);
    }
  }
  T *X = Parts[0].data();
  for (int64_t J = 0; J < N; ++J) {
    Base[J] += X[J];
    X[J] = T(0);
  }
}

} // namespace core
} // namespace cfv

#endif // CFV_CORE_PARALLELENGINE_H
