//===- tests/obs_trace_test.cpp - Span tracer unit tests ------------------===//
//
// Part of the cfv project: reproduction of Jiang & Agrawal, CGO 2018.
//
//===----------------------------------------------------------------------===//
//
// The span tracer: disabled-by-default behavior, RAII spans, retroactive
// recordAt spans, ring-buffer overflow (oldest events overwritten, loss
// counted), multi-thread collection, and the chrome://tracing JSON
// export -- validated as real JSON through the service parser, since
// the export's one job is to load in an external viewer.
//
// The tracer is process-wide, so every test clears it and restores the
// disabled state on exit.
//
//===----------------------------------------------------------------------===//

#include "obs/Trace.h"
#include "service/Json.h"
#include "util/Clock.h"

#include "gtest/gtest.h"

#include <string>
#include <thread>
#include <vector>

using namespace cfv;
using namespace cfv::obs;

#if CFV_OBS

namespace {

/// Enables tracing for one test body and restores the default
/// (disabled, empty rings) afterwards.
struct ScopedTracing {
  ScopedTracing() {
    Tracer::instance().clear();
    Tracer::instance().setEnabled(true);
  }
  ~ScopedTracing() {
    Tracer::instance().setEnabled(false);
    Tracer::instance().clear();
  }
};

bool hasSpan(const std::vector<SpanEvent> &Events, const std::string &Name) {
  for (const SpanEvent &E : Events)
    if (E.Name == Name)
      return true;
  return false;
}

TEST(ObsTrace, DisabledRecordsNothing) {
  Tracer &T = Tracer::instance();
  T.clear();
  ASSERT_FALSE(T.enabled()) << "tracing must be off by default";
  T.recordAt("never", "test", 0.0, 1.0);
  { Span S("never_raii", "test"); }
  EXPECT_TRUE(T.collect().empty());
}

TEST(ObsTrace, RecordAtKeepsExternallyMeasuredTimes) {
  ScopedTracing Guard;
  Tracer::instance().recordAt("retro", "test", 12.25, 0.5);
  const std::vector<SpanEvent> Events = Tracer::instance().collect();
  ASSERT_EQ(Events.size(), 1u);
  EXPECT_EQ(Events[0].Name, "retro");
  EXPECT_EQ(Events[0].Cat, "test");
  EXPECT_DOUBLE_EQ(Events[0].StartSeconds, 12.25);
  EXPECT_DOUBLE_EQ(Events[0].DurSeconds, 0.5);
  EXPECT_GT(Events[0].Tid, 0);
}

TEST(ObsTrace, RaiiSpanMeasuresItsScope) {
  ScopedTracing Guard;
  const double Before = monotonicSeconds();
  { Span S("scoped", "test"); }
  const double After = monotonicSeconds();
  const std::vector<SpanEvent> Events = Tracer::instance().collect();
  ASSERT_EQ(Events.size(), 1u);
  EXPECT_GE(Events[0].StartSeconds, Before);
  EXPECT_LE(Events[0].StartSeconds + Events[0].DurSeconds, After);
  EXPECT_GE(Events[0].DurSeconds, 0.0);
}

TEST(ObsTrace, RingOverflowDropsOldestAndCountsLoss) {
  ScopedTracing Guard;
  Tracer &T = Tracer::instance();
  constexpr std::size_t Extra = 5;
  // Unique names mark the first Extra events; they must be the victims.
  std::vector<std::string> Early;
  for (std::size_t I = 0; I < Extra; ++I)
    Early.push_back("early" + std::to_string(I));
  for (std::size_t I = 0; I < Extra; ++I)
    T.recordAt(Early[I].c_str(), "test", double(I), 1.0);
  for (std::size_t I = 0; I < kTraceRingCapacity; ++I)
    T.recordAt("bulk", "test", double(Extra + I), 1.0);

  const std::vector<SpanEvent> Events = T.collect();
  EXPECT_EQ(Events.size(), kTraceRingCapacity)
      << "ring must cap at its capacity";
  EXPECT_EQ(T.droppedCount(), Extra);
  for (const std::string &E : Early)
    EXPECT_FALSE(hasSpan(Events, E)) << E << " should have been overwritten";
  // Oldest-first order: the first surviving event is the oldest kept.
  ASSERT_FALSE(Events.empty());
  EXPECT_DOUBLE_EQ(Events.front().StartSeconds, double(Extra));
  EXPECT_DOUBLE_EQ(Events.back().StartSeconds,
                   double(Extra + kTraceRingCapacity - 1));
  T.clear();
  EXPECT_EQ(T.droppedCount(), 0u);
  EXPECT_TRUE(T.collect().empty());
}

TEST(ObsTrace, ThreadsGetDistinctTids) {
  ScopedTracing Guard;
  Tracer &T = Tracer::instance();
  T.recordAt("main_thread", "test", 0.0, 1.0);
  std::thread W([&] { T.recordAt("worker_thread", "test", 0.0, 1.0); });
  W.join();
  const std::vector<SpanEvent> Events = T.collect();
  ASSERT_EQ(Events.size(), 2u);
  int MainTid = 0, WorkerTid = 0;
  for (const SpanEvent &E : Events) {
    if (E.Name == "main_thread")
      MainTid = E.Tid;
    if (E.Name == "worker_thread")
      WorkerTid = E.Tid;
  }
  EXPECT_GT(MainTid, 0);
  EXPECT_GT(WorkerTid, 0);
  EXPECT_NE(MainTid, WorkerTid);
}

TEST(ObsTrace, ChromeJsonExportIsLoadable) {
  ScopedTracing Guard;
  Tracer &T = Tracer::instance();
  T.recordAt("phase_a", "kernel", 1.0, 0.25);
  T.recordAt("phase_b", "merge", 1.25, 0.125);
  const std::string Json = T.renderChromeJson();

  // It must be real JSON -- the entire point is loading in an external
  // viewer -- with the trace-event envelope and complete ("X") events.
  const Expected<json::Value> V = json::parse(Json);
  ASSERT_TRUE(V.ok()) << V.status().toString() << "\n" << Json;
  EXPECT_NE(Json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(Json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(Json.find("\"name\":\"phase_a\""), std::string::npos);
  EXPECT_NE(Json.find("\"name\":\"phase_b\""), std::string::npos);
  EXPECT_NE(Json.find("\"cat\":\"kernel\""), std::string::npos);
  // Times are microseconds: 0.25s -> 250000us.
  EXPECT_NE(Json.find("\"dur\":250000"), std::string::npos) << Json;
}

TEST(ObsTrace, WriteChromeJsonReportsIoFailure) {
  ScopedTracing Guard;
  EXPECT_FALSE(Tracer::instance().writeChromeJson(
      "/nonexistent-dir/trace.json"));
  const std::string Path = ::testing::TempDir() + "obs_trace_out.json";
  EXPECT_TRUE(Tracer::instance().writeChromeJson(Path));
  std::remove(Path.c_str());
}

} // namespace

#else // !CFV_OBS

TEST(ObsTrace, CompiledOutStubsAreInert) {
  Tracer &T = Tracer::instance();
  T.setEnabled(true);
  T.recordAt("x", "y", 0.0, 1.0);
  EXPECT_FALSE(T.enabled());
  EXPECT_TRUE(T.collect().empty());
  EXPECT_EQ(T.droppedCount(), 0u);
}

#endif // CFV_OBS
