//===- core/Backends.h - Per-backend kernel entry points --------*- C++ -*-===//
//
// Part of the cfv project: reproduction of Jiang & Agrawal, CGO 2018.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Declarations of every application entry point in both backend-variant
/// namespaces (see core/Variant.h).  The application translation units
/// define these -- each compilation of an app .cpp defines the set for
/// its own variant -- and core/Dispatch.cpp binds them into the runtime
/// dispatch table.  The b_avx512 set only has definitions when the build
/// compiled the AVX-512 object library (CFV_BUILD_AVX512); the
/// declarations are always safe.
///
/// This header sits above the apps layer on purpose: it is the one
/// sanctioned inversion that lets the dispatch table name concrete
/// kernels (see src/CMakeLists.txt).  Likewise the b_avx2 set
/// (CFV_BUILD_AVX2).
///
//===----------------------------------------------------------------------===//

#ifndef CFV_CORE_BACKENDS_H
#define CFV_CORE_BACKENDS_H

#include "apps/agg/Aggregation.h"
#include "apps/frontier/FrontierEngine.h"
#include "apps/mesh/MeshSolver.h"
#include "apps/moldyn/Moldyn.h"
#include "apps/pagerank/PageRank.h"
#include "apps/pagerank/PageRank64.h"
#include "apps/rbk/ReduceByKey.h"
#include "apps/spmv/Spmv.h"
#include "core/RunOptions.h"

namespace cfv {
namespace apps {

// One entry per dispatched kernel set.  Signatures mirror the public
// apps API with a core::RunOptions (threads + invec policy) where the
// public signature lacks an options struct; moldynForces is the
// per-backend force kernel MoldynSim::computeForces routes through.
#define CFV_BACKEND_ENTRY_DECLS                                              \
  PageRankResult runPageRank(const graph::EdgeList &G, PrVersion V,          \
                             const PageRankOptions &O);                      \
  PageRank64Result runPageRank64(const graph::EdgeList &G, Pr64Version V,    \
                                 const PageRankOptions &O);                  \
  FrontierResult runFrontier(const graph::EdgeList &G, FrApp A,              \
                             FrVersion V, const FrontierOptions &O);         \
  void moldynForces(MoldynSim &S, MdVersion V);                              \
  AggResult runAggregation(const int32_t *Keys, const float *Vals,           \
                           int64_t N, int64_t Cardinality, AggVersion V,     \
                           const core::RunOptions &O);                       \
  int64_t reduceByKeyInvec(const int32_t *Keys, const float *Vals,           \
                           int64_t N, int32_t *OutKeys, float *OutVals);     \
  RbkResult runRbkComparison(const graph::EdgeList &G, int Iterations,       \
                             const core::RunOptions &O);                     \
  SpmvResult runSpmv(const graph::EdgeList &A, const float *X,               \
                     SpmvVersion V, int Repeats,                             \
                     const core::RunOptions &O);                             \
  MeshRunResult runMeshDiffusion(const Mesh &M, const float *U0,             \
                                 int Sweeps, float Dt, MeshVersion V,        \
                                 const core::RunOptions &O);

namespace b_scalar {
CFV_BACKEND_ENTRY_DECLS
} // namespace b_scalar

namespace b_avx2 {
CFV_BACKEND_ENTRY_DECLS
} // namespace b_avx2

namespace b_avx512 {
CFV_BACKEND_ENTRY_DECLS
} // namespace b_avx512

#undef CFV_BACKEND_ENTRY_DECLS

} // namespace apps
} // namespace cfv

#endif // CFV_CORE_BACKENDS_H
