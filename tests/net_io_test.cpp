//===-- tests/net_io_test.cpp - non-blocking socket I/O helpers -----------===//
//
// service/NetIo.h under real socketpairs: partial writes with a shrunken
// send buffer, EAGAIN round trips on non-blocking fds, EINTR survival,
// and the Gone classification for closed peers.  These are the exact
// paths the event-loop server (src/net/) leans on for write
// backpressure and connection teardown.
//
//===----------------------------------------------------------------------===//

#include "service/NetIo.h"

#include <gtest/gtest.h>

#include <csignal>
#include <cstring>
#include <string>
#include <sys/socket.h>
#include <sys/types.h>
#include <thread>
#include <unistd.h>
#include <vector>

using namespace cfv::service::netio;

namespace {

struct SocketPair {
  int A = -1, B = -1;
  SocketPair() { EXPECT_EQ(0, ::socketpair(AF_UNIX, SOCK_STREAM, 0, Fds)); }
  ~SocketPair() {
    if (A >= 0)
      ::close(A);
    if (B >= 0)
      ::close(B);
  }
  int *Fds = &A;
};

/// Shrinks both kernel buffers so a modest payload forces EAGAIN.
void shrinkBuffers(int Fd) {
  const int Small = 4096;
  ::setsockopt(Fd, SOL_SOCKET, SO_SNDBUF, &Small, sizeof(Small));
  ::setsockopt(Fd, SOL_SOCKET, SO_RCVBUF, &Small, sizeof(Small));
}

TEST(NetIoTest, SetNonBlocking) {
  SocketPair P;
  EXPECT_TRUE(setNonBlocking(P.A));
  char Buf[8];
  // Nothing written yet: a non-blocking read must come back WouldBlock
  // instead of parking the thread.
  const IoResult R = readSome(P.A, Buf, sizeof(Buf));
  EXPECT_EQ(IoStatus::WouldBlock, R.St);
  EXPECT_EQ(0u, R.Bytes);
  EXPECT_FALSE(setNonBlocking(-1));
}

TEST(NetIoTest, WriteSomeDoneAndReadBack) {
  SocketPair P;
  ASSERT_TRUE(setNonBlocking(P.A));
  ASSERT_TRUE(setNonBlocking(P.B));
  const std::string Msg = "hello over the wire\n";
  const IoResult W = writeSome(P.A, Msg.data(), Msg.size());
  EXPECT_EQ(IoStatus::Done, W.St);
  EXPECT_EQ(Msg.size(), W.Bytes);
  // readSome drains until the buffer fills or the fd runs dry; with 64
  // bytes of room and 20 on the wire it stops at EAGAIN -- WouldBlock,
  // but carrying everything that arrived.
  char Buf[64];
  const IoResult R = readSome(P.B, Buf, sizeof(Buf));
  EXPECT_EQ(IoStatus::WouldBlock, R.St);
  ASSERT_EQ(Msg.size(), R.Bytes);
  EXPECT_EQ(Msg, std::string(Buf, R.Bytes));
  // An exactly-sized buffer fills and reports Done instead.
  ASSERT_EQ(IoStatus::Done, writeSome(P.A, Msg.data(), Msg.size()).St);
  char Exact[20];
  static_assert(sizeof(Exact) == 20, "matches Msg length");
  const IoResult R2 = readSome(P.B, Exact, Msg.size());
  EXPECT_EQ(IoStatus::Done, R2.St);
  EXPECT_EQ(Msg.size(), R2.Bytes);
}

TEST(NetIoTest, WriteSomePartialThenWouldBlock) {
  SocketPair P;
  shrinkBuffers(P.A);
  shrinkBuffers(P.B);
  ASSERT_TRUE(setNonBlocking(P.A));
  // Much more than the shrunken buffers hold: the write must stop at
  // WouldBlock with partial progress, never spin or fail.
  const std::vector<char> Big(1 << 20, 'x');
  const IoResult W1 = writeSome(P.A, Big.data(), Big.size());
  ASSERT_EQ(IoStatus::WouldBlock, W1.St);
  ASSERT_GT(W1.Bytes, 0u);
  ASSERT_LT(W1.Bytes, Big.size());

  // Drain the reader side, then the continuation picks up exactly where
  // the cursor stopped -- the server's EPOLLOUT resume path.
  std::size_t Drained = 0;
  char Buf[8192];
  ASSERT_TRUE(setNonBlocking(P.B));
  for (;;) {
    const IoResult R = readSome(P.B, Buf, sizeof(Buf));
    Drained += R.Bytes;
    if (R.St != IoStatus::Done || R.Bytes < sizeof(Buf))
      break;
  }
  EXPECT_EQ(W1.Bytes, Drained);
  const IoResult W2 =
      writeSome(P.A, Big.data() + W1.Bytes, Big.size() - W1.Bytes);
  EXPECT_GT(W2.Bytes, 0u);
}

TEST(NetIoTest, WriteSomeGoneOnClosedPeer) {
  ::signal(SIGPIPE, SIG_IGN);
  SocketPair P;
  ASSERT_TRUE(setNonBlocking(P.A));
  ::close(P.B);
  P.B = -1;
  const std::string Msg = "into the void";
  // The first write may land in the kernel buffer; looping must reach
  // Gone (EPIPE) quickly once the peer reset propagates.
  IoResult W;
  for (int I = 0; I < 16; ++I) {
    W = writeSome(P.A, Msg.data(), Msg.size());
    if (W.St == IoStatus::Gone)
      break;
  }
  EXPECT_EQ(IoStatus::Gone, W.St);
}

TEST(NetIoTest, ReadSomeGoneOnEofButDoneWithData) {
  SocketPair P;
  const std::string Msg = "last words";
  ASSERT_EQ(IoStatus::Done, writeSome(P.A, Msg.data(), Msg.size()).St);
  ::close(P.A);
  P.A = -1;
  ASSERT_TRUE(setNonBlocking(P.B));
  char Buf[64];
  // Data plus EOF in one call: the data must be surfaced (Done), and the
  // EOF only reported once the stream is truly empty.
  const IoResult R1 = readSome(P.B, Buf, sizeof(Buf));
  EXPECT_EQ(IoStatus::Done, R1.St);
  EXPECT_EQ(Msg.size(), R1.Bytes);
  const IoResult R2 = readSome(P.B, Buf, sizeof(Buf));
  EXPECT_EQ(IoStatus::Gone, R2.St);
  EXPECT_EQ(0u, R2.Bytes);
}

TEST(NetIoTest, WriteAllSurvivesEintr) {
  // A blocking writeAll interrupted by a harmless signal must retry, not
  // fail: install a no-op handler (no SA_RESTART, so the syscall really
  // sees EINTR) and pepper the writer from another thread.
  struct sigaction SA;
  std::memset(&SA, 0, sizeof(SA));
  SA.sa_handler = [](int) {};
  sigemptyset(&SA.sa_mask);
  ASSERT_EQ(0, ::sigaction(SIGUSR1, &SA, nullptr));

  SocketPair P;
  shrinkBuffers(P.A);
  shrinkBuffers(P.B);
  const std::vector<char> Big(1 << 20, 'y');
  const pthread_t Writer = ::pthread_self();
  std::thread Reader([&] {
    // Interrupt the writer while slowly draining its payload.
    std::size_t Seen = 0;
    char Buf[4096];
    while (Seen < Big.size()) {
      ::pthread_kill(Writer, SIGUSR1);
      const ssize_t N = ::read(P.B, Buf, sizeof(Buf));
      if (N <= 0)
        break;
      Seen += static_cast<std::size_t>(N);
    }
    EXPECT_EQ(Big.size(), Seen);
  });
  EXPECT_TRUE(writeAll(P.A, Big.data(), Big.size()));
  Reader.join();
}

} // namespace
