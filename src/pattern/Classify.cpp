//===- pattern/Classify.cpp - Per-tile index-stream classifier ------------===//
//
// Part of the cfv project: reproduction of Jiang & Agrawal, CGO 2018.
//
//===----------------------------------------------------------------------===//

#include "pattern/Classify.h"

#include "util/Env.h"

#include <algorithm>
#include <cstring>

#if CFV_OBS
#include "obs/Metrics.h"
#endif

using namespace cfv;
using namespace cfv::pattern;

const char *pattern::tileClassName(TileClass C) {
  switch (C) {
  case TileClass::ConflictFree:
    return "conflict_free";
  case TileClass::Monotone:
    return "monotone";
  case TileClass::SmallAlphabet:
    return "small_alphabet";
  case TileClass::HotBucket:
    return "hot_bucket";
  case TileClass::General:
    return "general";
  }
  return "unknown";
}

const char *pattern::modeName(Mode M) {
  switch (M) {
  case Mode::Off:
    return "off";
  case Mode::ClassifyOnly:
    return "classify-only";
  case Mode::On:
    return "on";
  }
  return "unknown";
}

Mode pattern::envMode() {
  static const Mode M = [] {
    const char *V = std::getenv("CFV_PATTERN");
    if (!V || !*V)
      return Mode::On;
    const auto Is = [V](const char *S) { return std::strcmp(V, S) == 0; };
    if (Is("off") || Is("0") || Is("false"))
      return Mode::Off;
    if (Is("classify-only") || Is("classify_only") || Is("stats"))
      return Mode::ClassifyOnly;
    if (Is("on") || Is("1") || Is("true"))
      return Mode::On;
    env::detail::noteOnce("CFV_PATTERN",
                          std::string("CFV_PATTERN='") + V +
                              "' is not off|classify-only|on; using on");
    return Mode::On;
  }();
  return M;
}

Mode pattern::resolveMode(core::PatternMode Request) {
  switch (Request) {
  case core::PatternMode::Off:
    return Mode::Off;
  case core::PatternMode::ClassifyOnly:
    return Mode::ClassifyOnly;
  case core::PatternMode::On:
    return Mode::On;
  case core::PatternMode::Env:
    break;
  }
  return envMode();
}

namespace {

/// One scan of tile elements A(0..N-1): monotonicity, run lengths,
/// aligned-window duplicates, distinct set up to kMaxAlphabet, and a
/// Boyer-Moore majority candidate.  A second pass counts the candidate
/// exactly, but only when the cheaper classes have been ruled out.
template <typename AccessFn> TileInfo classifyOne(AccessFn A, int64_t N) {
  TileInfo Info;
  if (N <= 0) {
    // An empty tile trivially has no conflicts; the dispatcher's
    // conflict-free path is a no-op over zero vectors.
    Info.Class = TileClass::ConflictFree;
    return Info;
  }

  bool Mono = true;
  bool CF = true;
  int32_t Prev = 0;
  int32_t Run = 0, MaxRun = 1;

  int32_t Alpha[kMaxAlphabet];
  int AlphaN = 0;
  bool AlphaOver = false;

  int32_t Cand = 0;
  int64_t Vote = 0;

  int64_t DupLanes = 0, Windows = 0;
  int32_t Win[kClassifyWindow];

  for (int64_t Base = 0; Base < N; Base += kClassifyWindow) {
    const int64_t End = std::min<int64_t>(N, Base + kClassifyWindow);
    int Dup = 0;
    for (int64_t I = Base; I < End; ++I) {
      const int32_t X = A(I);
      const int W = static_cast<int>(I - Base);
      bool Seen = false;
      for (int J = 0; J < W; ++J)
        if (Win[J] == X) {
          Seen = true;
          break;
        }
      Win[W] = X;
      if (Seen)
        ++Dup;

      if (I == 0) {
        Run = 1;
      } else if (X == Prev) {
        if (++Run > MaxRun)
          MaxRun = Run;
      } else {
        if (X < Prev)
          Mono = false;
        Run = 1;
      }
      Prev = X;

      if (Vote == 0) {
        Cand = X;
        Vote = 1;
      } else {
        Vote += X == Cand ? 1 : -1;
      }

      if (!AlphaOver) {
        int32_t *Pos = std::lower_bound(Alpha, Alpha + AlphaN, X);
        if (Pos == Alpha + AlphaN || *Pos != X) {
          if (AlphaN == kMaxAlphabet) {
            AlphaOver = true;
          } else {
            std::memmove(Pos + 1, Pos,
                         static_cast<size_t>(Alpha + AlphaN - Pos) *
                             sizeof(int32_t));
            *Pos = X;
            ++AlphaN;
          }
        }
      }
    }
    if (Dup)
      CF = false;
    DupLanes += Dup;
    ++Windows;
  }

  Info.MaxRun = MaxRun;
  Info.D1Estimate =
      static_cast<float>(static_cast<double>(DupLanes) /
                         static_cast<double>(Windows));
  Info.Distinct = AlphaOver ? kMaxAlphabet + 1 : AlphaN;

  if (CF) {
    Info.Class = TileClass::ConflictFree;
  } else if (Mono) {
    Info.Class = TileClass::Monotone;
  } else if (!AlphaOver) {
    Info.Class = TileClass::SmallAlphabet;
    Info.AlphabetSize = AlphaN;
    std::memcpy(Info.Alphabet, Alpha,
                static_cast<size_t>(AlphaN) * sizeof(int32_t));
  } else {
    // Majority vote: if any target holds a strict majority, Cand is it.
    int64_t Cnt = 0;
    for (int64_t I = 0; I < N; ++I)
      if (A(I) == Cand)
        ++Cnt;
    if (Cnt * 2 > N) {
      Info.Class = TileClass::HotBucket;
      Info.HotIdx = Cand;
      Info.HotShare = static_cast<float>(static_cast<double>(Cnt) /
                                         static_cast<double>(N));
    } else {
      Info.Class = TileClass::General;
    }
  }
  return Info;
}

template <typename AccessFn>
PatternResult classifyAllTiles(AccessFn A, const std::vector<int64_t> &Begin,
                               int BlockBits, int64_t TileLen) {
  PatternResult R;
  R.BlockBits = BlockBits;
  R.TileLen = TileLen;
  const int64_t Tiles = static_cast<int64_t>(Begin.size()) - 1;
  R.Tiles.reserve(static_cast<size_t>(Tiles > 0 ? Tiles : 0));
  for (int64_t T = 0; T < Tiles; ++T) {
    const int64_t Lo = Begin[static_cast<size_t>(T)];
    const int64_t Hi = Begin[static_cast<size_t>(T) + 1];
    TileInfo Info =
        classifyOne([&](int64_t I) { return A(Lo + I); }, Hi - Lo);
    ++R.Counts[static_cast<int>(Info.Class)];
    R.Tiles.push_back(Info);
  }
  recordClassification(R);
  return R;
}

std::vector<int64_t> pseudoTileBounds(int64_t N, int64_t TileLen) {
  std::vector<int64_t> Begin;
  Begin.push_back(0);
  for (int64_t Lo = 0; Lo < N; Lo += TileLen)
    Begin.push_back(std::min<int64_t>(N, Lo + TileLen));
  return Begin;
}

} // namespace

TileInfo pattern::classifyRange(const int32_t *Idx, int64_t N) {
  return classifyOne([Idx](int64_t I) { return Idx[I]; }, N);
}

PatternResult pattern::classifyStream(const int32_t *Idx, int64_t N,
                                      int64_t TileLen) {
  // Pseudo-tile starts must be window-aligned (the certification
  // contract in Classify.h), so round odd lengths up.
  if (TileLen < kClassifyWindow)
    TileLen = kClassifyWindow;
  TileLen = (TileLen + kClassifyWindow - 1) / kClassifyWindow *
            kClassifyWindow;
  return classifyAllTiles([Idx](int64_t I) { return Idx[I]; },
                          pseudoTileBounds(N, TileLen), /*BlockBits=*/-1,
                          TileLen);
}

PatternResult pattern::classifyTiling(const inspector::TilingResult &T,
                                      const int32_t *Values) {
  const int32_t *Order = T.Order.data();
  return classifyAllTiles(
      [Order, Values](int64_t I) { return Values[Order[I]]; }, T.TileBegin,
      T.BlockBits, /*TileLen=*/0);
}

PatternResult pattern::classifyTiles(const int32_t *TiledIdx,
                                     const std::vector<int64_t> &TileBegin,
                                     int BlockBits) {
  return classifyAllTiles([TiledIdx](int64_t I) { return TiledIdx[I]; },
                          TileBegin, BlockBits, /*TileLen=*/0);
}

//===----------------------------------------------------------------------===//
// Metrics flush (baseline pass only; see Pattern.h for the contract)
//===----------------------------------------------------------------------===//

#if CFV_OBS

void pattern::recordClassification(const PatternResult &R) {
  if (!obs::enabled())
    return;
  obs::MetricsRegistry &Reg = obs::MetricsRegistry::instance();
  for (int C = 0; C < kNumTileClasses; ++C) {
    if (!R.Counts[C])
      continue;
    const std::string Label = std::string("class=\"") +
                              tileClassName(static_cast<TileClass>(C)) +
                              "\"";
    Reg.counter("cfv_pattern_tiles_total", Label,
                "Tiles classified per pattern class")
        .inc(static_cast<uint64_t>(R.Counts[C]));
  }
}

void pattern::recordDispatch(const DispatchCounts &C) {
  if (!obs::enabled())
    return;
  obs::MetricsRegistry &Reg = obs::MetricsRegistry::instance();
  for (int I = 0; I < kNumTileClasses; ++I) {
    const char *Name = tileClassName(static_cast<TileClass>(I));
    const std::string Label = std::string("class=\"") + Name + "\"";
    if (C.Tiles[I])
      Reg.counter("cfv_pattern_dispatch_total", Label,
                  "Tiles routed to a class kernel by pattern dispatch")
          .inc(static_cast<uint64_t>(C.Tiles[I]));
    if (C.Vectors[I])
      Reg.counter("cfv_pattern_dispatch_vectors_total", Label,
                  "Vector passes executed by each class kernel")
          .inc(static_cast<uint64_t>(C.Vectors[I]));
    if (C.Util[I].total()) {
      obs::Histogram &H = Reg.histogram(
          "cfv_pattern_useful_lanes",
          obs::laneBounds(C.LaneWidth > 0 ? C.LaneWidth : 16), Label,
          "Useful lanes per vector pass, per pattern class");
      for (unsigned S = 0; S < LaneHistogram::kSlots; ++S)
        if (C.Util[I].count(S))
          H.observe(static_cast<double>(S), C.Util[I].count(S));
    }
  }
}

#endif // CFV_OBS
