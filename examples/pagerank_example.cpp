//===- examples/pagerank_example.cpp - PageRank on a social graph ---------===//
//
// Part of the cfv project: reproduction of Jiang & Agrawal, CGO 2018.
//
//===----------------------------------------------------------------------===//
//
// Runs the paper's motivating application end to end: PageRank over a
// skewed synthetic social graph, comparing the serial baseline with the
// conflict-masking and in-vector-reduction vectorizations, and printing
// the top-ranked vertices (which also cross-checks the three versions).
//
// Build & run:  ./examples/pagerank_example
//
//===----------------------------------------------------------------------===//

#include "apps/pagerank/PageRank.h"
#include "graph/Generators.h"

#include <algorithm>
#include <cstdio>
#include <vector>

using namespace cfv;
using namespace cfv::apps;

int main() {
  // A Twitter-like graph: 65K vertices, 1M edges, heavy-tailed degrees.
  const graph::EdgeList G = graph::genRmat(/*ScaleBits=*/16,
                                           /*NumEdges=*/1000000,
                                           /*Seed=*/42);
  std::printf("graph: %d vertices, %lld edges (R-MAT)\n", G.NumNodes,
              static_cast<long long>(G.numEdges()));

  const PrVersion Versions[] = {PrVersion::TilingSerial,
                                PrVersion::TilingMask,
                                PrVersion::TilingInvec};
  PageRankResult Results[3];
  for (int I = 0; I < 3; ++I) {
    Results[I] = runPageRank(G, Versions[I]);
    std::printf("%-22s %6.3fs compute (+%5.3fs tiling), %d iterations\n",
                versionName(Versions[I]), Results[I].ComputeSeconds,
                Results[I].TilingSeconds, Results[I].Iterations);
  }
  std::printf("in-vector reduction speedup over serial: %.2fx, over "
              "conflict-masking: %.2fx\n",
              Results[0].ComputeSeconds / Results[2].ComputeSeconds,
              Results[1].ComputeSeconds / Results[2].ComputeSeconds);

  // Top five vertices by rank, agreeing across versions.
  std::vector<int32_t> Order(G.NumNodes);
  for (int32_t V = 0; V < G.NumNodes; ++V)
    Order[V] = V;
  const auto &Rank = Results[2].Rank;
  std::partial_sort(Order.begin(), Order.begin() + 5, Order.end(),
                    [&](int32_t A, int32_t B) { return Rank[A] > Rank[B]; });
  std::printf("top vertices by rank:\n");
  for (int I = 0; I < 5; ++I) {
    const int32_t V = Order[I];
    std::printf("  vertex %6d  rank %.6f (serial %.6f)\n", V, Rank[V],
                Results[0].Rank[V]);
  }
  return 0;
}
