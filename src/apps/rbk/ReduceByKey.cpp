//===- apps/rbk/ReduceByKey.cpp - reduce_by_key comparator ---------------===//
//
// Part of the cfv project: reproduction of Jiang & Agrawal, CGO 2018.
//
//===----------------------------------------------------------------------===//

#include "apps/rbk/ReduceByKey.h"

#include "core/Backends.h"
#include "core/InvecReduce.h"
#include "core/ParallelEngine.h"
#include "core/Variant.h"
#include "simd/Traits.h"
#include "util/Timer.h"

#include <cassert>
#include <vector>

using namespace cfv;
using namespace cfv::apps;

using B = simd::NativeBackend;
using IVec = simd::VecI32<B>;
using FVec = simd::VecF32<B>;
using simd::Mask16;
constexpr int kLanes = B::kLanes;
constexpr Mask16 kAllLanes = simd::BackendTraits<B>::kFullMask;

#if CFV_VARIANT_PRIMARY
int64_t apps::reduceByKeySerial(const int32_t *Keys, const float *Vals,
                                int64_t N, int32_t *OutKeys,
                                float *OutVals) {
  if (N == 0)
    return 0;
  int64_t Out = 0;
  int32_t RunKey = Keys[0];
  float RunSum = Vals[0];
  for (int64_t I = 1; I < N; ++I) {
    if (Keys[I] == RunKey) {
      RunSum += Vals[I];
      continue;
    }
    OutKeys[Out] = RunKey;
    OutVals[Out] = RunSum;
    ++Out;
    RunKey = Keys[I];
    RunSum = Vals[I];
  }
  OutKeys[Out] = RunKey;
  OutVals[Out] = RunSum;
  return Out + 1;
}
#endif // CFV_VARIANT_PRIMARY

// Compiled once per backend variant; the public apps::reduceByKeyInvec
// forwards here through core::dispatch().
int64_t apps::CFV_VARIANT_NS::reduceByKeyInvec(const int32_t *Keys,
                                               const float *Vals, int64_t N,
                                               int32_t *OutKeys,
                                               float *OutVals) {
  // Each block's duplicate keys collapse to their first lane; compress
  // preserves lane order, so for sorted keys the per-block outputs come
  // out sorted and at most the first entry can continue the previous
  // block's run.  (For exact Thrust semantics the keys must not repeat in
  // non-adjacent runs inside one 16-lane block -- sorted input
  // guarantees this.)
  int64_t Out = 0;
  alignas(64) int32_t TmpK[kLanes];
  alignas(64) float TmpV[kLanes];

  for (int64_t I = 0; I < N; I += kLanes) {
    const int64_t Left = N - I;
    const Mask16 Active =
        Left >= kLanes ? kAllLanes
                       : static_cast<Mask16>((1u << Left) - 1u);
    const IVec K = IVec::maskLoad(IVec::broadcast(-1), Active, Keys + I);
    FVec V = FVec::maskLoad(FVec::zero(), Active, Vals + I);
    const core::InvecResult R =
        core::invecReduce<simd::OpAdd>(Active, K, V);
    const int Produced = K.compressStore(R.Ret, TmpK);
    V.compressStore(R.Ret, TmpV);

    int First = 0;
    if (Out > 0 && Produced > 0 && TmpK[0] == OutKeys[Out - 1]) {
      OutVals[Out - 1] += TmpV[0];
      First = 1;
    }
    for (int P = First; P < Produced; ++P) {
      OutKeys[Out] = TmpK[P];
      OutVals[Out] = TmpV[P];
      ++Out;
    }
  }
  return Out;
}

#if CFV_VARIANT_PRIMARY
int64_t apps::reduceByKeyLibraryStyle(const int32_t *Keys, const float *Vals,
                                      int64_t N, int32_t *SegmentScratch,
                                      int32_t *OutKeys, float *OutVals) {
  if (N == 0)
    return 0;
  // Pass 1+2 fused: head flags scanned into 0-based segment ids.  (A real
  // library runs these as separate parallel primitives; fusing them here
  // is already a concession to the baseline.)
  int32_t Seg = 0;
  SegmentScratch[0] = 0;
  for (int64_t I = 1; I < N; ++I) {
    if (Keys[I] != Keys[I - 1])
      ++Seg;
    SegmentScratch[I] = Seg;
  }
  const int64_t Runs = Seg + 1;
  // Pass 3: initialize outputs.
  for (int64_t R = 0; R < Runs; ++R)
    OutVals[R] = 0.0f;
  // Pass 4: scatter keys and accumulate values by segment id.
  for (int64_t I = 0; I < N; ++I) {
    OutKeys[SegmentScratch[I]] = Keys[I];
    OutVals[SegmentScratch[I]] += Vals[I];
  }
  return Runs;
}
#endif // CFV_VARIANT_PRIMARY

namespace {

/// One chunk of the in-vector contender's edge sweep, routed through a
/// privatized sink so chunks can run on different cores.
void rbkInvecChunk(const int32_t *Dst, const float *Vals, int64_t Lo,
                   int64_t Hi, core::FloatSink Out, ConflictCounter &D1) {
  for (int64_t I = Lo; I < Hi; I += kLanes) {
    const int64_t Left = Hi - I;
    const Mask16 Active =
        Left >= kLanes ? kAllLanes
                       : static_cast<Mask16>((1u << Left) - 1u);
    const IVec K = IVec::maskLoad(IVec::zero(), Active, Dst + I);
    FVec V = FVec::maskLoad(FVec::zero(), Active, Vals + I);
    const core::InvecResult Red = core::invecReduce<simd::OpAdd>(Active, K, V);
    D1.add(static_cast<unsigned>(Red.Distinct));
    Out.commit(Red.Ret, K, V);
  }
}

} // namespace

// Compiled once per backend variant like reduceByKeyInvec above.
RbkResult apps::CFV_VARIANT_NS::runRbkComparison(const graph::EdgeList &G,
                                                 int Iterations,
                                                 const core::RunOptions &O) {
  RbkResult R;
  const graph::EdgeList Sorted = graph::sortByDestination(G);
  const int64_t M = Sorted.numEdges();
  const int32_t N = Sorted.NumNodes;

  // One value per edge; weights when present, else 1.
  AlignedVector<float> Vals(M, 1.0f);
  if (Sorted.isWeighted())
    Vals = Sorted.Weight;

  // --- Library-style path: multi-pass reduce_by_key, then scatter-add --
  {
    AlignedVector<float> Sum(N, 0.0f);
    AlignedVector<int32_t> OutK(M), Scratch(M);
    AlignedVector<float> OutV(M);
    WallTimer W;
    for (int It = 0; It < Iterations; ++It) {
      const int64_t Runs = reduceByKeyLibraryStyle(
          Sorted.Dst.data(), Vals.data(), M, Scratch.data(), OutK.data(),
          OutV.data());
      for (int64_t P = 0; P < Runs; ++P)
        Sum[OutK[P]] += OutV[P];
    }
    R.ThrustLikeSeconds = W.seconds();
    double Check = 0.0;
    for (int32_t V = 0; V < N; ++V)
      Check += Sum[V];
    R.ThrustLikeChecksum = Check;
  }

  // --- Fused scalar path: the tightest possible sequential loop --------
  {
    AlignedVector<float> Sum(N, 0.0f);
    AlignedVector<int32_t> OutK(M);
    AlignedVector<float> OutV(M);
    WallTimer W;
    for (int It = 0; It < Iterations; ++It) {
      const int64_t Runs = reduceByKeySerial(Sorted.Dst.data(), Vals.data(),
                                             M, OutK.data(), OutV.data());
      for (int64_t P = 0; P < Runs; ++P)
        Sum[OutK[P]] += OutV[P];
    }
    R.FusedSerialSeconds = W.seconds();
    double Check = 0.0;
    for (int32_t V = 0; V < N; ++V)
      Check += Sum[V];
    R.FusedSerialChecksum = Check;
  }

  // --- In-vector reduction path: straight into the destination array ---
  // The only multi-core contender: the library-style and fused-serial
  // baselines above stay single-core by design.
  {
    AlignedVector<float> Sum(N, 0.0f);
    const int NumThreads = core::resolveThreads(O.Threads);
    const std::vector<int64_t> Bounds =
        core::chunkBounds(M, NumThreads, kLanes);
    const bool Dense =
        NumThreads <= 1 ||
        core::useDensePrivatization(N, sizeof(float), M, NumThreads);
    const int Replicas = NumThreads > 1 ? NumThreads - 1 : 0;
    std::vector<AlignedVector<float>> Parts(Dense ? Replicas : 0);
    for (auto &P : Parts)
      P.assign(N, 0.0f);
    std::vector<core::SpillListF> Spills(Dense ? 0 : Replicas);
    std::vector<ConflictCounter> D1s(NumThreads);
    core::ParallelEngine &Engine = core::ParallelEngine::instance();

    WallTimer W;
    for (int It = 0; It < Iterations; ++It) {
      Engine.run(NumThreads, [&](int Tid) {
        const core::FloatSink Out =
            Tid == 0 ? core::FloatSink::dense(Sum.data())
            : Dense  ? core::FloatSink::dense(Parts[Tid - 1].data())
                     : core::FloatSink::spill(&Spills[Tid - 1]);
        rbkInvecChunk(Sorted.Dst.data(), Vals.data(), Bounds[Tid],
                      Bounds[Tid + 1], Out, D1s[Tid]);
      });
      if (Dense) {
        core::mergeTreeAdd(Sum.data(), Parts, N);
      } else {
        for (auto &L : Spills) {
          core::applySpillAdd(L, Sum.data());
          L.clear();
        }
      }
    }
    R.InvecSeconds = W.seconds();
    ConflictCounter D1;
    for (const ConflictCounter &D : D1s)
      D1.merge(D);
    R.MeanD1 = D1.count() ? D1.mean() : 0.0;
    R.D1Hist = D1.histogram();
    double Check = 0.0;
    for (int32_t V = 0; V < N; ++V)
      Check += Sum[V];
    R.InvecChecksum = Check;
  }
  return R;
}
