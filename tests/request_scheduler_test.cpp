//===- tests/request_scheduler_test.cpp - Scheduler contracts -------------===//
//
// Part of the cfv project: reproduction of Jiang & Agrawal, CGO 2018.
//
//===----------------------------------------------------------------------===//
//
// Admission control (deterministic queue-full rejection via a gated
// worker), per-key FIFO with round-robin fairness across keys, in-queue
// deadline expiry, and drain semantics.
//
//===----------------------------------------------------------------------===//

#include "service/RequestScheduler.h"

#include "gtest/gtest.h"

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

using namespace cfv;
using namespace cfv::service;

namespace {

/// Blocks the scheduler's single worker until release() so later
/// submissions queue up deterministically.
class Gate {
public:
  RequestScheduler::Task task() {
    return [this](const TaskInfo &) {
      std::unique_lock<std::mutex> Lock(Mu);
      Entered = true;
      Cv.notify_all();
      Cv.wait(Lock, [this] { return Released; });
    };
  }

  /// Waits until the worker is inside the gate (the queue is empty).
  void awaitEntered() {
    std::unique_lock<std::mutex> Lock(Mu);
    Cv.wait(Lock, [this] { return Entered; });
  }

  void release() {
    std::lock_guard<std::mutex> Lock(Mu);
    Released = true;
    Cv.notify_all();
  }

private:
  std::mutex Mu;
  std::condition_variable Cv;
  bool Entered = false;
  bool Released = false;
};

/// Thread-safe execution-order recorder.
class Order {
public:
  RequestScheduler::Task task(std::string Name) {
    return [this, Name = std::move(Name)](const TaskInfo &) {
      std::lock_guard<std::mutex> Lock(Mu);
      Ran.push_back(Name);
    };
  }
  std::vector<std::string> names() {
    std::lock_guard<std::mutex> Lock(Mu);
    return Ran;
  }

private:
  std::mutex Mu;
  std::vector<std::string> Ran;
};

TEST(RequestSchedulerTest, RejectsWhenQueueFull) {
  RequestScheduler::Config C;
  C.QueueDepth = 1;
  C.Workers = 1;
  RequestScheduler Sched(C);

  Gate G;
  ASSERT_TRUE(Sched.submit("gate", 0.0, G.task()).ok());
  G.awaitEntered(); // worker busy, queue empty

  Order O;
  ASSERT_TRUE(Sched.submit("k", 0.0, O.task("queued")).ok());

  // Depth 1 and one task queued: the next submission must bounce with a
  // structured Unavailable, not block or drop silently.
  const Status Rejected = Sched.submit("k", 0.0, O.task("rejected"));
  ASSERT_FALSE(Rejected.ok());
  EXPECT_EQ(Rejected.code(), ErrorCode::Unavailable);

  G.release();
  Sched.drain();
  EXPECT_EQ(O.names(), std::vector<std::string>({"queued"}));

  const RequestScheduler::Stats S = Sched.stats();
  EXPECT_EQ(S.Submitted, 2);
  EXPECT_EQ(S.Rejected, 1);
  EXPECT_EQ(S.Completed, 2);
}

TEST(RequestSchedulerTest, FifoWithinOneKey) {
  RequestScheduler::Config C;
  C.QueueDepth = 16;
  C.Workers = 1;
  RequestScheduler Sched(C);

  Gate G;
  ASSERT_TRUE(Sched.submit("gate", 0.0, G.task()).ok());
  G.awaitEntered();

  Order O;
  ASSERT_TRUE(Sched.submit("k", 0.0, O.task("1")).ok());
  ASSERT_TRUE(Sched.submit("k", 0.0, O.task("2")).ok());
  ASSERT_TRUE(Sched.submit("k", 0.0, O.task("3")).ok());

  G.release();
  Sched.drain();
  EXPECT_EQ(O.names(), std::vector<std::string>({"1", "2", "3"}));
}

TEST(RequestSchedulerTest, RoundRobinAcrossKeys) {
  RequestScheduler::Config C;
  C.QueueDepth = 16;
  C.Workers = 1;
  RequestScheduler Sched(C);

  Gate G;
  ASSERT_TRUE(Sched.submit("gate", 0.0, G.task()).ok());
  G.awaitEntered();

  // A burst of one app must not starve another's single request: with
  // round-robin key service, b1 runs after a1, not after a3.
  Order O;
  ASSERT_TRUE(Sched.submit("a", 0.0, O.task("a1")).ok());
  ASSERT_TRUE(Sched.submit("a", 0.0, O.task("a2")).ok());
  ASSERT_TRUE(Sched.submit("a", 0.0, O.task("a3")).ok());
  ASSERT_TRUE(Sched.submit("b", 0.0, O.task("b1")).ok());

  G.release();
  Sched.drain();
  EXPECT_EQ(O.names(),
            std::vector<std::string>({"a1", "b1", "a2", "a3"}));
}

TEST(RequestSchedulerTest, DeadlineExpiresInQueue) {
  RequestScheduler::Config C;
  C.QueueDepth = 16;
  C.Workers = 1;
  RequestScheduler Sched(C);

  Gate G;
  ASSERT_TRUE(Sched.submit("gate", 0.0, G.task()).ok());
  G.awaitEntered();

  bool Expired = false;
  bool Fresh = true;
  ASSERT_TRUE(Sched
                  .submit("k", /*TimeoutSeconds=*/0.001,
                          [&](const TaskInfo &Info) {
                            Expired = Info.DeadlineExpired;
                          })
                  .ok());
  ASSERT_TRUE(Sched
                  .submit("k", /*TimeoutSeconds=*/60.0,
                          [&](const TaskInfo &Info) {
                            Fresh = !Info.DeadlineExpired;
                          })
                  .ok());

  // Outwait the first deadline while both tasks sit in the queue.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  G.release();
  Sched.drain();

  // Expired tasks still run (to emit their structured error); they are
  // just told that their deadline passed.
  EXPECT_TRUE(Expired);
  EXPECT_TRUE(Fresh);
  EXPECT_EQ(Sched.stats().Expired, 1);
}

TEST(RequestSchedulerTest, QueueSecondsIsMeasured) {
  RequestScheduler::Config C;
  C.Workers = 1;
  RequestScheduler Sched(C);

  Gate G;
  ASSERT_TRUE(Sched.submit("gate", 0.0, G.task()).ok());
  G.awaitEntered();

  double Waited = -1.0;
  ASSERT_TRUE(Sched
                  .submit("k", 0.0,
                          [&](const TaskInfo &Info) {
                            Waited = Info.QueueSeconds;
                          })
                  .ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  G.release();
  Sched.drain();
  EXPECT_GE(Waited, 0.015) << "queue wait must cover the gated period";
}

TEST(RequestSchedulerTest, AdmittedTasksRunOnShutdown) {
  Order O;
  {
    RequestScheduler::Config C;
    C.Workers = 1;
    RequestScheduler Sched(C);
    Gate G;
    ASSERT_TRUE(Sched.submit("gate", 0.0, G.task()).ok());
    G.awaitEntered();
    ASSERT_TRUE(Sched.submit("k", 0.0, O.task("late")).ok());
    G.release();
    // Destructor joins the workers; the admitted task must still run --
    // every accepted request owes its caller a response.
  }
  EXPECT_EQ(O.names(), std::vector<std::string>({"late"}));
}

} // namespace
