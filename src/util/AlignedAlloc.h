//===- util/AlignedAlloc.h - 64-byte aligned containers ---------*- C++ -*-===//
//
// Part of the cfv project: reproduction of Jiang & Agrawal, "Conflict-Free
// Vectorization of Associative Irregular Applications with Recent SIMD
// Architectural Advances", CGO 2018.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Allocation helpers that guarantee 64-byte alignment, the natural
/// alignment of one 512-bit SIMD register and of one cache line.  All bulk
/// arrays handed to gather/scatter kernels use AlignedVector so that full
/// width aligned loads/stores are always legal.
///
//===----------------------------------------------------------------------===//

#ifndef CFV_UTIL_ALIGNEDALLOC_H
#define CFV_UTIL_ALIGNEDALLOC_H

#include <cstddef>
#include <cstdlib>
#include <new>
#include <vector>

namespace cfv {

/// Alignment used for all SIMD-visible allocations (bytes).
inline constexpr std::size_t kSimdAlignment = 64;

/// Minimal C++17 allocator returning 64-byte aligned storage.
template <typename T> struct AlignedAllocator {
  using value_type = T;

  AlignedAllocator() = default;
  template <typename U> AlignedAllocator(const AlignedAllocator<U> &) {}

  T *allocate(std::size_t N) {
    if (N == 0)
      return nullptr;
    void *P = ::operator new(N * sizeof(T),
                             std::align_val_t(kSimdAlignment));
    return static_cast<T *>(P);
  }

  void deallocate(T *P, std::size_t) noexcept {
    ::operator delete(P, std::align_val_t(kSimdAlignment));
  }

  template <typename U> bool operator==(const AlignedAllocator<U> &) const {
    return true;
  }
  template <typename U> bool operator!=(const AlignedAllocator<U> &) const {
    return false;
  }
};

/// A std::vector whose data() is 64-byte aligned.
template <typename T>
using AlignedVector = std::vector<T, AlignedAllocator<T>>;

/// Rounds \p N up to the next multiple of \p Multiple.
constexpr std::size_t roundUp(std::size_t N, std::size_t Multiple) {
  return (N + Multiple - 1) / Multiple * Multiple;
}

} // namespace cfv

#endif // CFV_UTIL_ALIGNEDALLOC_H
