//===- bench/FrontierBench.h - Shared Figures 9-11 harness -----*- C++ -*-===//
//
// Part of the cfv project: reproduction of Jiang & Agrawal, CGO 2018.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Figures 9, 10 and 11 share a layout -- four versions of a
/// wave-frontier algorithm across the three graphs, log-scale time with
/// computing / tiling / grouping decomposition -- so the three harness
/// mains delegate here.
///
//===----------------------------------------------------------------------===//

#ifndef CFV_BENCH_FRONTIERBENCH_H
#define CFV_BENCH_FRONTIERBENCH_H

#include "BenchCommon.h"

#include "apps/frontier/FrontierEngine.h"
#include "graph/Datasets.h"
#include "util/TablePrinter.h"

namespace cfv {
namespace bench {

inline int runFrontierFigure(const char *Figure, apps::FrApp App,
                             const char *PaperShape) {
  banner(Figure, (std::string(apps::appName(App)) +
                  ": overall performance of four versions")
                     .c_str());
  const double Scale = graph::envScale();
  std::printf("workload scale: %.2f (set CFV_SCALE to change)\n", Scale);

  const apps::FrVersion Versions[] = {
      apps::FrVersion::NontilingSerial, apps::FrVersion::NontilingMask,
      apps::FrVersion::NontilingInvec, apps::FrVersion::TilingGrouping};

  const char *PanelOf[] = {"(a)", "(c)", "(b)"};
  int Panel = 0;
  for (const auto &Name : graph::graphDatasetNames()) {
    const graph::Dataset D = *graph::makeGraphDataset(Name, Scale, true);

    TablePrinter T({"version", "computing(s)", "tiling(s)", "grouping(s)",
                    "total(s)", "vs serial", "notes"});
    double SerialTotal = 0.0;
    int ConvIter = 0;
    for (const apps::FrVersion V : Versions) {
      const apps::FrontierResult R = apps::runFrontier(D.Edges, App, V);
      if (V == apps::FrVersion::NontilingSerial) {
        SerialTotal = R.totalSeconds();
        ConvIter = R.Iterations;
      }
      std::string Notes;
      if (V == apps::FrVersion::NontilingMask)
        Notes = "simd_util=" + percent(R.SimdUtil);
      if (V == apps::FrVersion::NontilingInvec)
        Notes = "mean D1=" + TablePrinter::fmt(R.MeanD1, 4);
      if (V == apps::FrVersion::TilingGrouping)
        Notes = "reused groups";
      T.addRow({apps::versionName(V), TablePrinter::fmt(R.ComputeSeconds),
                TablePrinter::fmt(R.TilingSeconds),
                TablePrinter::fmt(R.GroupingSeconds),
                TablePrinter::fmt(R.totalSeconds()),
                speedup(SerialTotal, R.totalSeconds()), Notes});
    }
    sectionHeader(std::string(PanelOf[Panel]) + " " + D.Name +
                  "  [stand-in for " + D.PaperName + ", " + D.PaperDims +
                  ", NNZ " + D.PaperNnz + "]  conv_iter=" +
                  std::to_string(ConvIter));
    T.print();
    ++Panel;
  }
  paperNote(PaperShape);
  return 0;
}

} // namespace bench
} // namespace cfv

#endif // CFV_BENCH_FRONTIERBENCH_H
