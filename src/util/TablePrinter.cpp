//===- util/TablePrinter.cpp - ASCII tables for bench output -------------===//
//
// Part of the cfv project (see AlignedAlloc.h for the project banner).
//
//===----------------------------------------------------------------------===//

#include "util/TablePrinter.h"

#include <algorithm>
#include <cassert>

using namespace cfv;

TablePrinter::TablePrinter(std::vector<std::string> Header) {
  Rows.push_back(std::move(Header));
  Separator.push_back(false);
  addSeparator();
}

void TablePrinter::addRow(std::vector<std::string> Cells) {
  Rows.push_back(std::move(Cells));
  Separator.push_back(false);
}

void TablePrinter::addSeparator() {
  Rows.emplace_back();
  Separator.push_back(true);
}

void TablePrinter::print(std::FILE *Out) const {
  assert(Rows.size() == Separator.size());
  std::size_t NumCols = 0;
  for (const auto &Row : Rows)
    NumCols = std::max(NumCols, Row.size());

  std::vector<std::size_t> Width(NumCols, 0);
  for (const auto &Row : Rows)
    for (std::size_t C = 0; C < Row.size(); ++C)
      Width[C] = std::max(Width[C], Row[C].size());

  for (std::size_t R = 0; R < Rows.size(); ++R) {
    if (Separator[R]) {
      for (std::size_t C = 0; C < NumCols; ++C) {
        std::fputs(C == 0 ? "+" : "-+", Out);
        for (std::size_t I = 0; I < Width[C] + 2; ++I)
          std::fputc('-', Out);
      }
      std::fputs("-+\n", Out);
      continue;
    }
    for (std::size_t C = 0; C < NumCols; ++C) {
      const std::string Cell = C < Rows[R].size() ? Rows[R][C] : "";
      std::fprintf(Out, "| %-*s ", static_cast<int>(Width[C]), Cell.c_str());
    }
    std::fputs("|\n", Out);
  }
}

std::string TablePrinter::fmt(double Value, int Precision) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.*f", Precision, Value);
  return Buf;
}

std::string TablePrinter::fmt(long long Value) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%lld", Value);
  return Buf;
}
