//===- core/Variant.h - Per-backend compilation variant ---------*- C++ -*-===//
//
// Part of the cfv project: reproduction of Jiang & Agrawal, CGO 2018.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The fat-binary build compiles every application translation unit once
/// per backend tier: at the baseline architecture (simd::NativeBackend
/// resolves to backend::Scalar), with -mavx2 (resolves to backend::Avx2),
/// and with -mavx512f -mavx512cd (resolves to backend::Avx512).  Each
/// compilation places its kernels in a distinct namespace so all sets can
/// coexist in one binary and be selected at runtime by core::Dispatch:
///
///   cfv::apps::b_scalar::runPageRank   baseline-arch instantiation
///   cfv::apps::b_avx2::runPageRank     AVX2 instantiation
///   cfv::apps::b_avx512::runPageRank   AVX-512 instantiation
///
/// CFV_VARIANT_NS names the namespace for the current compilation and
/// CFV_VARIANT_PRIMARY marks the single compilation that also emits the
/// backend-independent definitions (version-name tables, scalar-only
/// helpers, class members).  The build system defines both for the
/// AVX2/AVX-512 object libraries; everything else gets the defaults
/// below.
///
//===----------------------------------------------------------------------===//

#ifndef CFV_CORE_VARIANT_H
#define CFV_CORE_VARIANT_H

#include "simd/Backend.h"

#ifndef CFV_VARIANT_NS
#define CFV_VARIANT_NS b_scalar
#endif

#ifndef CFV_VARIANT_PRIMARY
#define CFV_VARIANT_PRIMARY 1
#endif

// Catch build-system misconfiguration: a variant namespace is
// meaningless unless this TU is actually compiled with the matching ISA.
#define CFV_VARIANT_CAT(A, B) A##B

#define CFV_VARIANT_EXPECT_AVX512_b_scalar 0
#define CFV_VARIANT_EXPECT_AVX512_b_avx2 0
#define CFV_VARIANT_EXPECT_AVX512_b_avx512 1
#define CFV_VARIANT_EXPECT(NS) CFV_VARIANT_CAT(CFV_VARIANT_EXPECT_AVX512_, NS)
#if CFV_VARIANT_EXPECT(CFV_VARIANT_NS) && !CFV_HAVE_AVX512
#error "b_avx512 variant must be compiled with -mavx512f -mavx512cd"
#endif

// The AVX2 variant additionally requires that AVX-512 is *not* enabled:
// if it were, simd::NativeBackend would resolve to backend::Avx512 and
// the b_avx2 symbols would silently contain 512-bit code.
#define CFV_VARIANT_EXPECT_AVX2_b_scalar 0
#define CFV_VARIANT_EXPECT_AVX2_b_avx2 1
#define CFV_VARIANT_EXPECT_AVX2_b_avx512 0
#define CFV_VARIANT_EXPECT2(NS) CFV_VARIANT_CAT(CFV_VARIANT_EXPECT_AVX2_, NS)
#if CFV_VARIANT_EXPECT2(CFV_VARIANT_NS) && !CFV_HAVE_AVX2
#error "b_avx2 variant must be compiled with -mavx2"
#endif
#if CFV_VARIANT_EXPECT2(CFV_VARIANT_NS) && CFV_HAVE_AVX512
#error "b_avx2 variant must not be compiled with AVX-512 enabled"
#endif

#endif // CFV_CORE_VARIANT_H
