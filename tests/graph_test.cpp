//===- tests/graph_test.cpp - Graph substrate ----------------------------===//
//
// Part of the cfv project: reproduction of Jiang & Agrawal, CGO 2018.
//
//===----------------------------------------------------------------------===//

#include "graph/Datasets.h"
#include "graph/Generators.h"
#include "graph/Graph.h"

#include "gtest/gtest.h"

#include <map>
#include <set>

using namespace cfv;
using namespace cfv::graph;

TEST(Generators, RmatRespectsRanges) {
  const EdgeList G = genRmat(10, 5000, 1);
  EXPECT_EQ(G.NumNodes, 1024);
  EXPECT_EQ(G.numEdges(), 5000);
  EXPECT_FALSE(G.isWeighted());
  for (int64_t E = 0; E < G.numEdges(); ++E) {
    ASSERT_GE(G.Src[E], 0);
    ASSERT_LT(G.Src[E], G.NumNodes);
    ASSERT_GE(G.Dst[E], 0);
    ASSERT_LT(G.Dst[E], G.NumNodes);
  }
}

TEST(Generators, RmatIsDeterministic) {
  const EdgeList A = genRmat(8, 1000, 42);
  const EdgeList B = genRmat(8, 1000, 42);
  EXPECT_EQ(A.Src, B.Src);
  EXPECT_EQ(A.Dst, B.Dst);
  const EdgeList C = genRmat(8, 1000, 43);
  EXPECT_NE(A.Src, C.Src);
}

TEST(Generators, RmatIsSkewed) {
  // R-MAT with the classic parameters concentrates edges on low ids;
  // compare top-decile degree mass against a uniform graph.
  const int Scale = 12;
  const int64_t M = 50000;
  auto MassTop = [&](const EdgeList &G) {
    auto Deg = outDegrees(G);
    std::sort(Deg.begin(), Deg.end(), std::greater<>());
    int64_t Top = 0, Total = 0;
    for (std::size_t I = 0; I < Deg.size(); ++I) {
      Total += Deg[I];
      if (I < Deg.size() / 10)
        Top += Deg[I];
    }
    return static_cast<double>(Top) / static_cast<double>(Total);
  };
  const double RmatMass = MassTop(genRmat(Scale, M, 7));
  const double UniMass = MassTop(genUniform(Scale, M, 7));
  EXPECT_GT(RmatMass, UniMass + 0.15)
      << "R-MAT must be visibly heavier-tailed than uniform";
}

TEST(Generators, WeightsInRange) {
  const EdgeList G = genUniform(8, 2000, 3, /*MaxWeight=*/64.0f);
  ASSERT_TRUE(G.isWeighted());
  for (float W : G.Weight) {
    ASSERT_GE(W, 1.0f);
    ASSERT_LT(W, 64.0f);
  }
}

TEST(Csr, RoundTripsEdges) {
  const EdgeList G = genUniform(8, 3000, 9, 8.0f);
  const Csr C = buildCsr(G);
  ASSERT_EQ(C.numEdges(), G.numEdges());
  ASSERT_EQ(C.RowBegin.front(), 0);
  ASSERT_EQ(C.RowBegin.back(), G.numEdges());

  // Multiset of (src, dst, w) must match.
  std::multiset<std::tuple<int32_t, int32_t, float>> A, B;
  for (int64_t E = 0; E < G.numEdges(); ++E)
    A.insert({G.Src[E], G.Dst[E], G.Weight[E]});
  for (int32_t V = 0; V < C.NumNodes; ++V)
    for (int64_t E = C.RowBegin[V]; E < C.RowBegin[V + 1]; ++E)
      B.insert({V, C.Col[E], C.Weight[E]});
  EXPECT_EQ(A, B);
}

TEST(Csr, DegreesMatch) {
  const EdgeList G = genRmat(9, 4000, 11);
  const Csr C = buildCsr(G);
  const auto Deg = outDegrees(G);
  for (int32_t V = 0; V < G.NumNodes; ++V)
    ASSERT_EQ(C.degree(V), Deg[V]);
}

TEST(Graph, SortByDestinationIsSortedAndComplete) {
  const EdgeList G = genRmat(9, 4000, 13, 16.0f);
  const EdgeList S = sortByDestination(G);
  ASSERT_EQ(S.numEdges(), G.numEdges());
  for (int64_t E = 1; E < S.numEdges(); ++E)
    ASSERT_LE(S.Dst[E - 1], S.Dst[E]);
  std::multiset<std::tuple<int32_t, int32_t, float>> A, B;
  for (int64_t E = 0; E < G.numEdges(); ++E) {
    A.insert({G.Src[E], G.Dst[E], G.Weight[E]});
    B.insert({S.Src[E], S.Dst[E], S.Weight[E]});
  }
  EXPECT_EQ(A, B);
}

TEST(Datasets, RegistryProvidesAllThreeGraphs) {
  const auto Names = graphDatasetNames();
  ASSERT_EQ(Names.size(), 3u);
  for (const auto &Name : Names) {
    const auto Made = makeGraphDataset(Name, /*Scale=*/0.02, true);
    ASSERT_TRUE(Made.ok()) << Made.status().toString();
    const Dataset &D = *Made;
    EXPECT_EQ(D.Name, Name);
    EXPECT_FALSE(D.PaperName.empty());
    EXPECT_FALSE(D.PaperNnz.empty());
    EXPECT_GT(D.Edges.numEdges(), 0);
    EXPECT_TRUE(D.Edges.isWeighted());
  }
}

TEST(Datasets, ScaleScalesEdgeCount) {
  const Dataset Small = *makeGraphDataset("amazon0312-sim", 0.02, false);
  const Dataset Large = *makeGraphDataset("amazon0312-sim", 0.04, false);
  EXPECT_NEAR(static_cast<double>(Large.Edges.numEdges()) /
                  static_cast<double>(Small.Edges.numEdges()),
              2.0, 0.01);
  EXPECT_FALSE(Small.Edges.isWeighted());
}

TEST(Datasets, RejectsUnknownNameAndBadScale) {
  const auto Unknown = makeGraphDataset("not-a-dataset", 1.0, false);
  ASSERT_FALSE(Unknown.ok());
  EXPECT_EQ(Unknown.status().code(), ErrorCode::NotFound);
  EXPECT_NE(Unknown.status().message().find("higgs-twitter-sim"),
            std::string::npos)
      << "diagnostic lists the accepted names";

  const auto BadScale = makeGraphDataset("higgs-twitter-sim", 0.0, false);
  ASSERT_FALSE(BadScale.ok());
  EXPECT_EQ(BadScale.status().code(), ErrorCode::InvalidArgument);
}

TEST(Datasets, EnvScaleDefaultsAndClamps) {
  unsetenv("CFV_SCALE");
  EXPECT_DOUBLE_EQ(envScale(), 1.0);
  setenv("CFV_SCALE", "2.5", 1);
  EXPECT_DOUBLE_EQ(envScale(), 2.5);
  setenv("CFV_SCALE", "0.0001", 1);
  EXPECT_DOUBLE_EQ(envScale(), 0.01);
  setenv("CFV_SCALE", "1e9", 1);
  EXPECT_DOUBLE_EQ(envScale(), 1000.0);
  unsetenv("CFV_SCALE");
}
