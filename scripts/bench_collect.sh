#!/usr/bin/env sh
# Folds the bench harnesses' JSON lines into one machine-readable
# BENCH_<rev>.json, the unit of the perf trajectory: one file per
# revision, committed nowhere, uploaded as a CI artifact and diffed
# across revisions by whatever regression gate consumes them.
#
#   scripts/bench_collect.sh [build-dir] [out-file]
#
# Defaults: build-dir "build", out-file "BENCH_<short-rev>.json".
# CFV_BENCH_REQUESTS scales the serve_throughput request count (CI uses
# a small value so the job stays fast; the overload contrast doubles it).
#
# Only harnesses whose stdout is pure JSON-lines participate; the
# fig*/ablation* harnesses print human tables and join the trajectory
# when they grow a --json mode.
set -eu

BUILD=${1:-build}
OUT=${2:-}
REV=$(git -C "$(dirname "$0")" rev-parse --short HEAD 2>/dev/null || echo unknown)
[ -n "$OUT" ] || OUT="BENCH_${REV}.json"

TMP=$(mktemp)
trap 'rm -f "$TMP"' EXIT

run() {
  echo "bench_collect: $*" >&2
  "$@" >>"$TMP"
}

run "$BUILD"/bench/serve_throughput "${CFV_BENCH_REQUESTS:-120}"

{
  printf '{"rev":"%s","date":"%s","host":"%s","results":[\n' \
    "$REV" "$(date -u +%Y-%m-%dT%H:%M:%SZ)" "$(uname -srm)"
  awk 'NR > 1 { printf ",\n" } { printf "%s", $0 } END { printf "\n" }' "$TMP"
  printf ']}\n'
} >"$OUT"

echo "bench_collect: wrote $OUT ($(wc -l <"$TMP") result lines)" >&2
