//===- service/RequestScheduler.cpp - Bounded fair work queue -------------===//
//
// Part of the cfv project: reproduction of Jiang & Agrawal, CGO 2018.
//
//===----------------------------------------------------------------------===//

#include "service/RequestScheduler.h"

#include "obs/Metrics.h"
#include "util/Clock.h"

#include <algorithm>

using namespace cfv;
using namespace cfv::service;

namespace {

/// All queue timing runs on the shared monotonic clock (util/Clock.h), so
/// deadlines, spans, and metrics agree on one time source.
double nowSeconds() { return monotonicSeconds(); }

/// Process-wide mirrors of the per-scheduler Stats (same contract as the
/// DatasetCache mirrors: stats() stays per-instance, the registry
/// aggregates for scraping).
struct SchedCounters {
  obs::Counter &Submitted;
  obs::Counter &Rejected;
  obs::Counter &Completed;
  obs::Counter &Expired;
  obs::Histogram &QueueSeconds;

  static SchedCounters &get() {
    static SchedCounters C{
        obs::MetricsRegistry::instance().counter(
            "cfv_sched_submitted_total", "", "Tasks admitted to the queue"),
        obs::MetricsRegistry::instance().counter(
            "cfv_sched_rejected_total", "",
            "Tasks rejected with backpressure (queue full)"),
        obs::MetricsRegistry::instance().counter(
            "cfv_sched_completed_total", "", "Tasks run to completion"),
        obs::MetricsRegistry::instance().counter(
            "cfv_sched_expired_total", "",
            "Tasks whose deadline expired while queued"),
        obs::MetricsRegistry::instance().histogram(
            "cfv_sched_queue_seconds", obs::log2Bounds(1e-6, 26), "",
            "Seconds a task waited in the queue before running")};
    return C;
  }
};

} // namespace

RequestScheduler::RequestScheduler(Config C) : Cfg(C) {
  obs::MetricsRegistry::instance().gauge(
      "cfv_sched_queue_depth",
      [this] {
        std::lock_guard<std::mutex> Lock(Mu);
        return static_cast<double>(QueuedCount);
      },
      "", "Tasks admitted but not yet running");
  const int N = std::max(1, Cfg.Workers);
  Workers.reserve(N);
  for (int I = 0; I < N; ++I)
    Workers.emplace_back([this] { workerLoop(); });
}

RequestScheduler::~RequestScheduler() {
  // The gauge callback captures `this`; drop it before teardown.
  obs::MetricsRegistry::instance().removeGauge("cfv_sched_queue_depth");
  {
    std::lock_guard<std::mutex> Lock(Mu);
    Stop = true;
  }
  CvWork.notify_all();
  for (std::thread &W : Workers)
    W.join();
}

Status RequestScheduler::submit(const std::string &Key, double TimeoutSeconds,
                                Task T) {
  {
    std::lock_guard<std::mutex> Lock(Mu);
    if (Stop)
      return Status::error(ErrorCode::Unavailable, "scheduler shutting down");
    if (QueuedCount >= Cfg.QueueDepth) {
      ++Counters.Rejected;
      SchedCounters::get().Rejected.inc();
      return Status::error(ErrorCode::Unavailable,
                           "queue full (" + std::to_string(Cfg.QueueDepth) +
                               " requests pending); retry later");
    }
    Pending P;
    P.Run = std::move(T);
    P.EnqueuedAt = nowSeconds();
    P.Deadline = TimeoutSeconds > 0.0 ? P.EnqueuedAt + TimeoutSeconds : 0.0;
    auto It = Queues.find(Key);
    if (It == Queues.end()) {
      Queues.emplace(Key, std::deque<Pending>{}).first->second.push_back(
          std::move(P));
      KeyOrder.push_back(Key);
    } else {
      It->second.push_back(std::move(P));
    }
    ++QueuedCount;
    ++Counters.Submitted;
    SchedCounters::get().Submitted.inc();
    Counters.Queued = QueuedCount;
  }
  CvWork.notify_one();
  return Status();
}

bool RequestScheduler::popLocked(Pending &Out) {
  if (KeyOrder.empty())
    return false;
  Cursor %= KeyOrder.size();
  std::deque<Pending> &Q = Queues[KeyOrder[Cursor]];
  Out = std::move(Q.front());
  Q.pop_front();
  if (Q.empty()) {
    Queues.erase(KeyOrder[Cursor]);
    KeyOrder.erase(KeyOrder.begin() + static_cast<ptrdiff_t>(Cursor));
    // Cursor now points at the next key in the ring.
  } else {
    ++Cursor;
  }
  --QueuedCount;
  Counters.Queued = QueuedCount;
  return true;
}

void RequestScheduler::workerLoop() {
  std::unique_lock<std::mutex> Lock(Mu);
  while (true) {
    CvWork.wait(Lock, [this] { return Stop || QueuedCount > 0; });
    Pending P;
    if (!popLocked(P)) {
      if (Stop)
        return;
      continue;
    }
    ++Running;
    TaskInfo Info;
    const double Now = nowSeconds();
    Info.QueueSeconds = std::max(0.0, Now - P.EnqueuedAt);
    Info.DeadlineExpired = P.Deadline > 0.0 && Now >= P.Deadline;
    if (Info.DeadlineExpired) {
      ++Counters.Expired;
      SchedCounters::get().Expired.inc();
    }
    SchedCounters::get().QueueSeconds.observe(Info.QueueSeconds);
    Lock.unlock();
    P.Run(Info);
    Lock.lock();
    --Running;
    ++Counters.Completed;
    SchedCounters::get().Completed.inc();
    if (QueuedCount == 0 && Running == 0)
      CvIdle.notify_all();
  }
}

void RequestScheduler::drain() {
  std::unique_lock<std::mutex> Lock(Mu);
  CvIdle.wait(Lock, [this] { return QueuedCount == 0 && Running == 0; });
}

RequestScheduler::Stats RequestScheduler::stats() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Counters;
}
