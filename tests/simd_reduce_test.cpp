//===- tests/simd_reduce_test.cpp - Masked horizontal reductions ---------===//
//
// Part of the cfv project: reproduction of Jiang & Agrawal, CGO 2018.
//
//===----------------------------------------------------------------------===//

#include "TestHelpers.h"

#include "simd/Reduce.h"

#include <cmath>
#include <limits>

using namespace cfv;
using namespace cfv::simd;
using namespace cfv::test;

template <typename B> class ReduceTest : public ::testing::Test {};
TYPED_TEST_SUITE(ReduceTest, AllBackends, );

TYPED_TEST(ReduceTest, AddFullMask) {
  using B = TypeParam;
  Lane16f F;
  for (int I = 0; I < kMaxLanes; ++I)
    F[I] = static_cast<float>(I + 1);
  EXPECT_FLOAT_EQ(maskedReduce<OpAdd>(kAllLanes, loadF<B>(F)), 136.0f);

  Lane16i N;
  for (int I = 0; I < kMaxLanes; ++I)
    N[I] = I + 1;
  EXPECT_EQ(maskedReduce<OpAdd>(kAllLanes, loadIdx<B>(N)), 136);
}

TYPED_TEST(ReduceTest, AddPartialMask) {
  using B = TypeParam;
  Lane16i N;
  for (int I = 0; I < kMaxLanes; ++I)
    N[I] = 1 << I;
  EXPECT_EQ(maskedReduce<OpAdd>(0x0005, loadIdx<B>(N)), 1 + 4);
  EXPECT_EQ(maskedReduce<OpAdd>(0x8000, loadIdx<B>(N)), 1 << 15);
}

TYPED_TEST(ReduceTest, EmptyMaskGivesIdentity) {
  using B = TypeParam;
  const auto F = VecF32<B>::broadcast(42.0f);
  EXPECT_EQ(maskedReduce<OpAdd>(0, F), 0.0f);
  EXPECT_EQ(maskedReduce<OpMul>(0, F), 1.0f);
  EXPECT_EQ(maskedReduce<OpMin>(0, F),
            std::numeric_limits<float>::infinity());
  EXPECT_EQ(maskedReduce<OpMax>(0, F),
            -std::numeric_limits<float>::infinity());

  const auto N = VecI32<B>::broadcast(42);
  EXPECT_EQ(maskedReduce<OpAdd>(0, N), 0);
  EXPECT_EQ(maskedReduce<OpMul>(0, N), 1);
  EXPECT_EQ(maskedReduce<OpMin>(0, N), std::numeric_limits<int32_t>::max());
  EXPECT_EQ(maskedReduce<OpMax>(0, N),
            std::numeric_limits<int32_t>::lowest());
}

TYPED_TEST(ReduceTest, MinMaxPickExtremesOfMaskedLanes) {
  using B = TypeParam;
  Lane16f F;
  for (int I = 0; I < kMaxLanes; ++I)
    F[I] = static_cast<float>((I * 7) % 16) - 8.0f;
  // F[I] = (7*I mod 16) - 8: minimum -8 at lane 0, maximum 7 at lane 9.
  EXPECT_EQ(maskedReduce<OpMin>(kAllLanes, loadF<B>(F)), -8.0f);
  EXPECT_EQ(maskedReduce<OpMax>(kAllLanes, loadF<B>(F)), 7.0f);
  // Exclude lane 0 (the -8) and lane 9 (the 7): next extremes are the -7
  // at lane 7 and the 6 at lane 2.
  const Mask16 NoExtremes = static_cast<Mask16>(kAllLanes & ~0x0201);
  EXPECT_EQ(maskedReduce<OpMin>(NoExtremes, loadF<B>(F)), -7.0f);
  EXPECT_EQ(maskedReduce<OpMax>(NoExtremes, loadF<B>(F)), 6.0f);
}

TYPED_TEST(ReduceTest, MulOfSelectedLanes) {
  using B = TypeParam;
  Lane16i N;
  for (int I = 0; I < kMaxLanes; ++I)
    N[I] = I + 1;
  EXPECT_EQ(maskedReduce<OpMul>(0x000E, loadIdx<B>(N)), 2 * 3 * 4);
}

TYPED_TEST(ReduceTest, MatchesLaneOrderOracleExactlyForExactOps) {
  using B = TypeParam;
  Xoshiro256 Rng(0x0DD);
  for (int Trial = 0; Trial < 200; ++Trial) {
    const Mask16 M = randomMask(Rng);
    const Lane16i N = randomInts(Rng, 100);
    int32_t WantMin = OpMin::identity<int32_t>();
    int32_t WantMax = OpMax::identity<int32_t>();
    int32_t WantAdd = 0;
    for (int I = 0; I < kMaxLanes; ++I) {
      if (!testLane(M, I))
        continue;
      WantMin = OpMin::apply(WantMin, N[I]);
      WantMax = OpMax::apply(WantMax, N[I]);
      WantAdd += N[I];
    }
    const auto V = loadIdx<B>(N);
    ASSERT_EQ(maskedReduce<OpMin>(M, V), WantMin);
    ASSERT_EQ(maskedReduce<OpMax>(M, V), WantMax);
    ASSERT_EQ(maskedReduce<OpAdd>(M, V), WantAdd);
  }
}

TYPED_TEST(ReduceTest, FloatAddMatchesOracleWithinTolerance) {
  using B = TypeParam;
  Xoshiro256 Rng(0xF1A);
  for (int Trial = 0; Trial < 200; ++Trial) {
    const Mask16 M = randomMask(Rng);
    const Lane16f F = randomFloats(Rng);
    double Want = 0.0;
    for (int I = 0; I < kMaxLanes; ++I)
      if (testLane(M, I))
        Want += F[I];
    // The fold order differs between backends; add is reassociated.
    ASSERT_NEAR(maskedReduce<OpAdd>(M, loadF<B>(F)), Want, 1e-4);
  }
}

TYPED_TEST(ReduceTest, BitwiseAndOr) {
  using B = TypeParam;
  Lane16i N;
  for (int I = 0; I < kMaxLanes; ++I)
    N[I] = (1 << I) | 0x10000;
  // OR over lanes 0..3 collects their bits; AND keeps the shared bit.
  EXPECT_EQ(maskedReduce<OpOr>(0x000F, loadIdx<B>(N)), 0x1000F);
  EXPECT_EQ(maskedReduce<OpAnd>(0x000F, loadIdx<B>(N)), 0x10000);
  EXPECT_EQ(maskedReduce<OpOr>(0, loadIdx<B>(N)), 0);
  EXPECT_EQ(maskedReduce<OpAnd>(0, loadIdx<B>(N)), -1);
}

TYPED_TEST(ReduceTest, BitwiseMatchesOracle) {
  using B = TypeParam;
  Xoshiro256 Rng(0xB17);
  for (int Trial = 0; Trial < 100; ++Trial) {
    const Mask16 M = randomMask(Rng);
    Lane16i N;
    for (int32_t &X : N)
      X = static_cast<int32_t>(Rng.next());
    int32_t WantOr = 0, WantAnd = -1;
    for (int I = 0; I < kMaxLanes; ++I) {
      if (!testLane(M, I))
        continue;
      WantOr |= N[I];
      WantAnd &= N[I];
    }
    ASSERT_EQ(maskedReduce<OpOr>(M, loadIdx<B>(N)), WantOr);
    ASSERT_EQ(maskedReduce<OpAnd>(M, loadIdx<B>(N)), WantAnd);
  }
}

TEST(Ops, IdentityAndApply) {
  EXPECT_EQ(OpAdd::identity<int32_t>(), 0);
  EXPECT_EQ(OpMul::identity<float>(), 1.0f);
  EXPECT_TRUE(std::isinf(OpMin::identity<float>()));
  EXPECT_EQ(OpMin::identity<int32_t>(), std::numeric_limits<int32_t>::max());
  EXPECT_EQ(OpAdd::apply(3, 4), 7);
  EXPECT_EQ(OpMin::apply(3.0f, -1.0f), -1.0f);
  EXPECT_EQ(OpMax::apply(3, 9), 9);
  EXPECT_EQ(OpMul::apply(3, 9), 27);
  EXPECT_STREQ(OpAdd::name(), "add");
  EXPECT_STREQ(OpMin::name(), "min");
}
