//===- tests/json_test.cpp - Minimal JSON layer -----------------------------===//
//
// Part of the cfv project: reproduction of Jiang & Agrawal, CGO 2018.
//
//===----------------------------------------------------------------------===//
//
// The serving protocol's JSON layer: strict parsing with byte-offset
// diagnostics, string escapes (including \uXXXX), typed getters with
// defaults, and the ObjectWriter round trip.
//
//===----------------------------------------------------------------------===//

#include "service/Json.h"

#include "gtest/gtest.h"

#include <limits>
#include <string>

using namespace cfv;
using namespace cfv::json;

namespace {

TEST(JsonParseTest, Scalars) {
  EXPECT_TRUE(parse("null")->isNull());
  EXPECT_TRUE(parse("true")->boolean());
  EXPECT_FALSE(parse("false")->boolean());
  EXPECT_DOUBLE_EQ(parse("42")->number(), 42.0);
  EXPECT_DOUBLE_EQ(parse("-2.5e3")->number(), -2500.0);
  EXPECT_EQ(parse("\"hi\"")->str(), "hi");
}

TEST(JsonParseTest, ObjectsAndArrays) {
  const Expected<Value> V =
      parse("{\"a\":1, \"b\":[true,\"x\",{\"c\":null}], \"a\":2}");
  ASSERT_TRUE(V.ok()) << V.status().toString();
  // Duplicate keys: last one wins.
  EXPECT_EQ(V->getInt("a", -1), 2);
  const Value *B = V->find("b");
  ASSERT_NE(B, nullptr);
  ASSERT_TRUE(B->isArray());
  ASSERT_EQ(B->array().size(), 3u);
  EXPECT_TRUE(B->array()[0].boolean());
  EXPECT_EQ(B->array()[1].str(), "x");
  EXPECT_TRUE(B->array()[2].find("c")->isNull());
}

TEST(JsonParseTest, TypedGettersDefaultOnAbsenceAndTypeMismatch) {
  const Expected<Value> V = parse("{\"s\":\"x\",\"n\":3,\"b\":true}");
  ASSERT_TRUE(V.ok());
  EXPECT_EQ(V->getString("s", "d"), "x");
  EXPECT_EQ(V->getString("missing", "d"), "d");
  EXPECT_EQ(V->getString("n", "d"), "d"); // wrong type -> default
  EXPECT_EQ(V->getInt("n", -1), 3);
  EXPECT_EQ(V->getInt("s", -1), -1);
  EXPECT_TRUE(V->getBool("b", false));
  EXPECT_TRUE(V->getBool("missing", true));
}

TEST(JsonParseTest, StringEscapes) {
  EXPECT_EQ(parse("\"a\\n\\t\\\"b\\\\\"")->str(), "a\n\t\"b\\");
  EXPECT_EQ(parse("\"\\u0041\"")->str(), "A");
  EXPECT_EQ(parse("\"\\u00e9\"")->str(), "\xc3\xa9");     // e-acute, 2 bytes
  EXPECT_EQ(parse("\"\\u4e2d\"")->str(), "\xe4\xb8\xad"); // CJK, 3 bytes
  // Surrogate pair -> 4-byte UTF-8.
  EXPECT_EQ(parse("\"\\ud83d\\ude00\"")->str(), "\xf0\x9f\x98\x80");
}

TEST(JsonParseTest, ErrorsCarryByteOffsets) {
  for (const char *Bad :
       {"", "{", "{\"a\":}", "[1,]", "tru", "\"unterminated", "1 2",
        "{\"a\" 1}", "{\"a\":1,}", "nul", "\"\\q\"", "\"\\u12g4\"",
        "{1:2}", "\x01"}) {
    const Expected<Value> V = parse(Bad);
    EXPECT_FALSE(V.ok()) << "should reject: " << Bad;
    if (!V.ok()) {
      EXPECT_EQ(V.status().code(), ErrorCode::ParseError) << Bad;
      EXPECT_NE(V.status().message().find("offset"), std::string::npos)
          << V.status().toString();
    }
  }
}

TEST(JsonParseTest, RejectsTrailingContentButAllowsWhitespace) {
  EXPECT_TRUE(parse("  {\"a\":1}  \n")->isObject());
  EXPECT_FALSE(parse("{\"a\":1} x").ok());
}

TEST(JsonParseTest, DepthLimitStopsRunawayNesting) {
  std::string Deep;
  for (int I = 0; I < 200; ++I)
    Deep += "[";
  EXPECT_FALSE(parse(Deep).ok());
}

TEST(JsonWriteTest, ObjectWriterRoundTrips) {
  ObjectWriter W;
  W.field("s", "a\"b\n")
      .field("i", int64_t(-7))
      .field("d", 2.5)
      .field("zero", 0.0)
      .field("b", true);
  const std::string S = W.str();

  // Exact zero prints as "0" -- the warm-request telemetry contract.
  EXPECT_NE(S.find("\"zero\":0,"), std::string::npos) << S;

  const Expected<Value> V = parse(S);
  ASSERT_TRUE(V.ok()) << S << " -> " << V.status().toString();
  EXPECT_EQ(V->getString("s", ""), "a\"b\n");
  EXPECT_EQ(V->getInt("i", 0), -7);
  EXPECT_DOUBLE_EQ(V->getNumber("d", 0.0), 2.5);
  EXPECT_TRUE(V->getBool("b", false));
}

TEST(JsonWriteTest, EscapeControlCharacters) {
  EXPECT_EQ(escape("a\x01z"), "a\\u0001z");
  EXPECT_EQ(escape("tab\there"), "tab\\there");
  EXPECT_EQ(escape("quote\""), "quote\\\"");
}

TEST(JsonWriteTest, NonFiniteNumbersBecomeNull) {
  ObjectWriter W;
  W.field("inf", std::numeric_limits<double>::infinity());
  EXPECT_NE(W.str().find("\"inf\":null"), std::string::npos);
}

} // namespace
