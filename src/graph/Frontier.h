//===- graph/Frontier.h - Active-vertex frontier ----------------*- C++ -*-===//
//
// Part of the cfv project: reproduction of Jiang & Agrawal, CGO 2018.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The active-vertex set of the wave-frontier algorithms (Figure 2's
/// active_vertices list).  Vertices are deduplicated on insertion via a
/// flags array; the flags are stored as int32_t so SIMD kernels can
/// gather membership directly (AVX-512 gathers are 32-bit granular).
///
//===----------------------------------------------------------------------===//

#ifndef CFV_GRAPH_FRONTIER_H
#define CFV_GRAPH_FRONTIER_H

#include "util/AlignedAlloc.h"

#include <cassert>
#include <cstdint>

namespace cfv {
namespace graph {

/// Deduplicating set of active vertices with O(1) insert and gatherable
/// membership flags.
class Frontier {
public:
  explicit Frontier(int32_t NumNodes)
      : InSet(static_cast<std::size_t>(NumNodes), 0) {}

  /// Adds \p V unless already present.
  void add(int32_t V) {
    assert(V >= 0 && V < static_cast<int32_t>(InSet.size()));
    if (InSet[V])
      return;
    InSet[V] = 1;
    Members.push_back(V);
  }

  bool contains(int32_t V) const { return InSet[V] != 0; }
  bool empty() const { return Members.empty(); }
  int64_t size() const { return static_cast<int64_t>(Members.size()); }

  const AlignedVector<int32_t> &vertices() const { return Members; }

  /// Membership flags (1/0 per vertex), gatherable with 32-bit indices.
  const int32_t *flags() const { return InSet.data(); }

  void clear() {
    for (int32_t V : Members)
      InSet[V] = 0;
    Members.clear();
  }

  /// Swaps contents with \p Other in O(1).
  void swap(Frontier &Other) {
    InSet.swap(Other.InSet);
    Members.swap(Other.Members);
  }

private:
  AlignedVector<int32_t> InSet;
  AlignedVector<int32_t> Members;
};

} // namespace graph
} // namespace cfv

#endif // CFV_GRAPH_FRONTIER_H
