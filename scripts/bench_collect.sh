#!/usr/bin/env sh
# Folds the bench harnesses' JSON lines into one machine-readable
# BENCH_<rev>.json, the unit of the perf trajectory: one file per
# revision, committed nowhere, uploaded as a CI artifact and diffed
# across revisions by whatever regression gate consumes them.
#
#   scripts/bench_collect.sh [--baseline] [build-dir] [out-file]
#
# Defaults: build-dir "build", out-file "BENCH_<short-rev>.json".
# --baseline writes BENCH_baseline.json instead -- the file committed at
# the repo root that tools/cfv_bench_compare gates CI revisions against.
# CFV_BENCH_REQUESTS scales the serve_throughput request count (CI uses
# a small value so the job stays fast; the overload contrast doubles it);
# CFV_BENCH_CLIENTS / CFV_BENCH_CLIENT_REQUESTS size its multi-client
# TCP part.
#
# Only harnesses whose stdout is pure JSON-lines participate; the
# fig*/ablation* harnesses print human tables and join the trajectory
# when they grow a --json mode.
set -eu

# Suite schema: bump whenever the set of folded harnesses, their
# workloads, or their request counts change shape.  cfv_bench_compare
# refuses to diff files with different schema values -- a cross-schema
# delta measures the suite, not the code.
SCHEMA=1

BASELINE=0
if [ "${1:-}" = "--baseline" ]; then
  BASELINE=1
  shift
fi

BUILD=${1:-build}
OUT=${2:-}
REV=$(git -C "$(dirname "$0")" rev-parse --short HEAD 2>/dev/null || echo unknown)
# The revision that last touched the suite itself (harness sources plus
# this script): recorded alongside "schema" so a stale committed
# baseline is diagnosable at a glance.
SUITE_REV=$(git -C "$(dirname "$0")/.." log -1 --format=%h -- bench scripts/bench_collect.sh 2>/dev/null || echo unknown)
[ -n "$SUITE_REV" ] || SUITE_REV=unknown
if [ -n "$OUT" ]; then
  :
elif [ "$BASELINE" = 1 ]; then
  OUT="BENCH_baseline.json"
else
  OUT="BENCH_${REV}.json"
fi

TMP=$(mktemp)
trap 'rm -f "$TMP"' EXIT

run() {
  echo "bench_collect: $*" >&2
  "$@" >>"$TMP"
}

run "$BUILD"/bench/serve_throughput "${CFV_BENCH_REQUESTS:-120}"

# NUMA shard-vs-flat contrast under synthetic 2/4-node topologies plus
# the in-core-vs-mapped (out-of-core CFVM) contrast; see
# bench/scale_numa.cpp for the row vocabulary.
run "$BUILD"/bench/scale_numa

# Per-class pattern-dispatch speedup breakdown: for each generator
# family landing in a specialized tile class, adaptive baseline vs
# classify-then-dispatch ns/element and the speedup the acceptance gate
# reads (>= 1.3x on conflict-free/monotone, general within 2%).
run "$BUILD"/bench/pattern_bench

# Multi-client serving percentiles: N concurrent TCP clients pipelining
# warm same-dataset requests through the epoll front-end, reporting
# p50/p95/p99 latency, throughput, and the micro-batch hit rate.
run "$BUILD"/bench/serve_throughput --clients "${CFV_BENCH_CLIENTS:-8}" \
  "${CFV_BENCH_CLIENT_REQUESTS:-25}"

# Cross-backend in-vector micro-kernel contrast: every compiled tier
# (scalar always; avx2/avx512 when the build carries them) times the
# same invec kernels, so the trajectory records how each revision's
# SIMD tiers compare.  Google Benchmark's CSV is one row per case;
# rewrite rows as JSON lines to join the fold.
if [ -x "$BUILD"/bench/micro_invec ]; then
  # One invocation per filter: the CSV reporter requires every run to
  # carry the same user counters, and the suites differ (meanD1 /
  # meanD2 / none).
  for FILTER in 'bmInvecReduce<' 'bmInvecReduce2<' 'bmHistogramInvec<'; do
    echo "bench_collect: micro_invec backend contrast ($FILTER)" >&2
    "$BUILD"/bench/micro_invec \
      --benchmark_filter="$FILTER" \
      --benchmark_format=csv --benchmark_min_time=0.05 2>/dev/null |
      awk -F, '/^"bm/ {
        Name = $1; gsub(/"/, "", Name)
        printf "{\"bench\":\"micro_invec\",\"name\":\"%s\",\"real_ns\":%s,\"cpu_ns\":%s}\n", Name, $3, $4
      }' >>"$TMP"
  done
fi

{
  printf '{"rev":"%s","date":"%s","host":"%s","schema":%s,"suite_rev":"%s","results":[\n' \
    "$REV" "$(date -u +%Y-%m-%dT%H:%M:%SZ)" "$(uname -srm)" \
    "$SCHEMA" "$SUITE_REV"
  awk 'NR > 1 { printf ",\n" } { printf "%s", $0 } END { printf "\n" }' "$TMP"
  printf ']}\n'
} >"$OUT"

echo "bench_collect: wrote $OUT ($(wc -l <"$TMP") result lines)" >&2
