//===- tests/simd_traits_test.cpp - BackendTraits facade contract ---------===//
//
// Part of the cfv project: reproduction of Jiang & Agrawal, CGO 2018.
//
//===----------------------------------------------------------------------===//
//
// The BackendTraits<B> contract, checked per backend against scalar
// reference semantics computed lane by lane: geometry (lane counts and
// full masks), conflict detection (native vpconflictd, the AVX2
// rotate/compare synthesis, and the portable emulation must all agree
// with the O(lanes^2) definition), the conflict-free subset, masked
// horizontal reductions, and the gather/scatter/compress/expand
// primitive set.  This is the suite that pins the AVX2 synthesis to the
// vpconflictd bit semantics.
//
//===----------------------------------------------------------------------===//

#include "simd/Traits.h"
#include "util/Prng.h"

#include "gtest/gtest.h"

#include <cstring>
#include <string>

using namespace cfv;
using namespace cfv::simd;

namespace {

template <typename B> class SimdTraits : public ::testing::Test {};

#if CFV_HAVE_AVX2 && CFV_HAVE_AVX512
using TraitsBackends =
    ::testing::Types<backend::Scalar, backend::Avx2, backend::Avx512>;
#elif CFV_HAVE_AVX2
using TraitsBackends = ::testing::Types<backend::Scalar, backend::Avx2>;
#elif CFV_HAVE_AVX512
using TraitsBackends = ::testing::Types<backend::Scalar, backend::Avx512>;
#else
using TraitsBackends = ::testing::Types<backend::Scalar>;
#endif
TYPED_TEST_SUITE(SimdTraits, TraitsBackends);

constexpr int kTrials = 200;

} // namespace

TYPED_TEST(SimdTraits, LaneGeometry) {
  using T = BackendTraits<TypeParam>;
  static_assert(T::kLanes == 8 || T::kLanes == 16);
  static_assert(T::kLanes64 == T::kLanes / 2);
  static_assert(T::kLanes <= kMaxLanes);
  EXPECT_EQ(popcount(T::kFullMask), T::kLanes);
  EXPECT_EQ(popcount(T::kFullMask64), T::kLanes64);
  const std::string Name = T::kName;
  EXPECT_TRUE(Name == "scalar" || Name == "avx2" || Name == "avx512");
}

TYPED_TEST(SimdTraits, ConflictBitsMatchDefinition) {
  using T = BackendTraits<TypeParam>;
  Xoshiro256 Rng(0x51D);
  for (int Trial = 0; Trial < kTrials; ++Trial) {
    // A small universe forces heavy duplication; a larger one exercises
    // the mostly-distinct case.
    const uint32_t Universe = Trial % 2 ? 4 : 64;
    alignas(64) int32_t Idx[kMaxLanes] = {};
    for (int I = 0; I < T::kLanes; ++I)
      Idx[I] = static_cast<int32_t>(Rng.nextBounded(Universe));
    const typename T::I32 C = T::conflict(T::I32::load(Idx));
    for (int I = 0; I < T::kLanes; ++I) {
      int32_t Want = 0;
      for (int J = 0; J < I; ++J)
        if (Idx[J] == Idx[I])
          Want |= 1 << J;
      ASSERT_EQ(C.extract(I), Want) << "lane " << I << " trial " << Trial;
    }
  }
}

TYPED_TEST(SimdTraits, ConflictBits64MatchDefinition) {
  using T = BackendTraits<TypeParam>;
  Xoshiro256 Rng(0x51D64);
  for (int Trial = 0; Trial < kTrials; ++Trial) {
    const uint32_t Universe = Trial % 2 ? 3 : 64;
    alignas(64) int64_t Idx[kMaxLanes] = {};
    for (int I = 0; I < T::kLanes64; ++I)
      Idx[I] = static_cast<int64_t>(Rng.nextBounded(Universe)) - 1;
    const typename T::I64 C = T::conflict(T::I64::load(Idx));
    for (int I = 0; I < T::kLanes64; ++I) {
      int64_t Want = 0;
      for (int J = 0; J < I; ++J)
        if (Idx[J] == Idx[I])
          Want |= int64_t(1) << J;
      ASSERT_EQ(C.extract(I), Want) << "lane " << I << " trial " << Trial;
    }
  }
}

TYPED_TEST(SimdTraits, ConflictFreeSubsetIsFirstActiveOccurrence) {
  using T = BackendTraits<TypeParam>;
  Xoshiro256 Rng(0xF1257);
  for (int Trial = 0; Trial < kTrials; ++Trial) {
    alignas(64) int32_t Idx[kMaxLanes] = {};
    for (int I = 0; I < T::kLanes; ++I)
      Idx[I] = static_cast<int32_t>(Rng.nextBounded(5));
    const Mask16 Active = static_cast<Mask16>(Rng.next()) & T::kFullMask;
    const Mask16 Got = T::conflictFree(Active, T::I32::load(Idx));
    Mask16 Want = 0;
    for (int I = 0; I < T::kLanes; ++I) {
      if (!testLane(Active, I))
        continue;
      bool First = true;
      for (int J = 0; J < I; ++J)
        if (testLane(Active, J) && Idx[J] == Idx[I])
          First = false;
      if (First)
        Want |= laneBit(I);
    }
    ASSERT_EQ(Got, Want) << "trial " << Trial << " active " << Active;
    EXPECT_EQ(Got & ~Active, 0) << "subset must lie inside Active";
  }
}

TYPED_TEST(SimdTraits, MaskedReduceFoldsActiveLanes) {
  using T = BackendTraits<TypeParam>;
  Xoshiro256 Rng(0x4ED);
  for (int Trial = 0; Trial < kTrials; ++Trial) {
    alignas(64) int32_t Vi[kMaxLanes] = {};
    alignas(64) float Vf[kMaxLanes] = {};
    for (int I = 0; I < T::kLanes; ++I) {
      Vi[I] = static_cast<int32_t>(Rng.nextBounded(1000)) - 500;
      Vf[I] = (Rng.nextFloat() - 0.5f) * 8.0f;
    }
    const Mask16 M = static_cast<Mask16>(Rng.next()) & T::kFullMask;
    const typename T::I32 IV = T::I32::load(Vi);
    const typename T::F32 FV = T::F32::load(Vf);

    int32_t SumI = 0, MinI = OpMin::identity<int32_t>(),
            MaxI = OpMax::identity<int32_t>();
    float SumF = 0.0f, MinF = OpMin::identity<float>();
    for (int I = 0; I < T::kLanes; ++I) {
      if (!testLane(M, I))
        continue;
      SumI += Vi[I];
      MinI = MinI < Vi[I] ? MinI : Vi[I];
      MaxI = MaxI > Vi[I] ? MaxI : Vi[I];
      SumF += Vf[I];
      MinF = MinF < Vf[I] ? MinF : Vf[I];
    }
    EXPECT_EQ(T::template reduce<OpAdd>(M, IV), SumI);
    EXPECT_EQ(T::template reduce<OpMin>(M, IV), MinI);
    EXPECT_EQ(T::template reduce<OpMax>(M, IV), MaxI);
    // Min/max are order-insensitive; float add may reassociate (the
    // AVX-512 tree fold), so it gets a tolerance.
    EXPECT_EQ(T::template reduce<OpMin>(M, FV), MinF);
    EXPECT_NEAR(T::template reduce<OpAdd>(M, FV), SumF, 1e-4f);
  }
}

TYPED_TEST(SimdTraits, GatherScatterRoundTrip) {
  using T = BackendTraits<TypeParam>;
  Xoshiro256 Rng(0x6A7);
  constexpr int32_t TableN = 64;
  alignas(64) float Table[TableN];
  for (int32_t I = 0; I < TableN; ++I)
    Table[I] = static_cast<float>(I) * 0.5f;
  for (int Trial = 0; Trial < kTrials; ++Trial) {
    alignas(64) int32_t Idx[kMaxLanes] = {};
    for (int I = 0; I < T::kLanes; ++I)
      Idx[I] = static_cast<int32_t>(Rng.nextBounded(TableN));
    const typename T::I32 IV = T::I32::load(Idx);
    const typename T::F32 G = T::F32::gather(Table, IV);
    for (int I = 0; I < T::kLanes; ++I)
      ASSERT_EQ(G.extract(I), Table[Idx[I]]) << "lane " << I;

    // maskGather keeps Src in inactive lanes.
    const Mask16 M = static_cast<Mask16>(Rng.next()) & T::kFullMask;
    const typename T::F32 Src = T::F32::broadcast(-7.0f);
    const typename T::F32 MG = T::F32::maskGather(Src, M, Table, IV);
    for (int I = 0; I < T::kLanes; ++I)
      ASSERT_EQ(MG.extract(I), testLane(M, I) ? Table[Idx[I]] : -7.0f);

    // maskStore writes only active lanes.
    alignas(64) float Out[kMaxLanes];
    for (int I = 0; I < T::kLanes; ++I)
      Out[I] = -1.0f;
    G.maskStore(M, Out);
    for (int I = 0; I < T::kLanes; ++I)
      ASSERT_EQ(Out[I], testLane(M, I) ? Table[Idx[I]] : -1.0f);
  }
}

TYPED_TEST(SimdTraits, CompressExpandBlend) {
  using T = BackendTraits<TypeParam>;
  Xoshiro256 Rng(0xCEB);
  for (int Trial = 0; Trial < kTrials; ++Trial) {
    alignas(64) int32_t V[kMaxLanes] = {};
    for (int I = 0; I < T::kLanes; ++I)
      V[I] = static_cast<int32_t>(Rng.nextBounded(1 << 20));
    const Mask16 M = static_cast<Mask16>(Rng.next()) & T::kFullMask;
    const typename T::I32 In = T::I32::load(V);

    // compress packs the active lanes in lane order.
    const typename T::I32 C = T::I32::compress(M, In);
    int Slot = 0;
    for (int I = 0; I < T::kLanes; ++I)
      if (testLane(M, I))
        ASSERT_EQ(C.extract(Slot++), V[I]) << "compressed lane";

    // expand is its inverse: compressed values return to their lanes.
    const typename T::I32 E = T::I32::expand(M, C);
    for (int I = 0; I < T::kLanes; ++I)
      if (testLane(M, I))
        ASSERT_EQ(E.extract(I), V[I]) << "expanded lane " << I;

    // blend has mask_mov semantics: result lane = (M set ? B : A).
    const typename T::I32 B2 = T::I32::broadcast(-9);
    const typename T::I32 Bl = T::I32::blend(M, In, B2);
    for (int I = 0; I < T::kLanes; ++I)
      ASSERT_EQ(Bl.extract(I), testLane(M, I) ? -9 : V[I]);
  }
}
