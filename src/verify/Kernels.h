//===-- verify/Kernels.h - Variant-compiled oracle pipelines ----*- C++ -*-===//
//
// Pipeline executors for the differential oracle, compiled once per backend
// variant exactly like the application kernels (see core/Variant.h and
// src/CMakeLists.txt): the baseline pass defines verify::b_scalar::*, the
// AVX2 object-library pass verify::b_avx2::*, and the AVX-512 pass
// verify::b_avx512::*.  Oracle.cpp binds them at runtime behind
// core::avx2Available()/avx512Available(), so one cfv_check binary
// differentially tests the real intrinsics paths (at 8 and 16 lanes)
// against the scalar emulation on the same stream.
//
// Each pipeline is the full composition the applications rely on -- block
// loop, tail masking, in-vector reduction (Alg 1 or 2), conflict-masking
// retry loop, or the adaptive policy -- plus chunked privatized execution
// (identity-filled private arrays merged in order) mirroring what the
// ParallelEngine does across workers.
//
// InjectedBug deliberately breaks a pipeline in a paper-relevant way so the
// harness can prove the oracle catches and shrinks real kernel bugs; the
// production kernels are never touched.
//
//===----------------------------------------------------------------------===//

#ifndef CFV_VERIFY_KERNELS_H
#define CFV_VERIFY_KERNELS_H

#include "util/AlignedAlloc.h"
#include "util/Status.h"
#include "verify/Gen.h"

#include <string>

namespace cfv {
namespace verify {

/// The kernel compositions under differential test.
enum class Pipeline {
  Invec1,  ///< block loop + invecReduce (Algorithm 1) + scatter
  Invec2,  ///< invecReduce2 two-subset protocol + mergeAux (Algorithm 2)
  Masking, ///< conflict-masking retry loop (maskedStreamLoop)
  Adaptive,///< AdaptiveReducer policy (Alg1 window, may commit to Alg2)
  Pattern  ///< classify small pseudo-tiles, dispatch class kernels
           ///< (pattern::runTileSpecialized), General tiles -> Alg1
};
constexpr int kNumPipelines = 5;
const char *pipelineName(Pipeline P);

/// Associative operators exercised.  Add is inexact under reassociation
/// (tolerance model applies); Min/Max are exact in any association.
enum class OpKind { Add, Min, Max };
constexpr int kNumOpKinds = 3;
const char *opKindName(OpKind K);

/// Deliberate kernel defects for oracle self-tests and cfv_check --inject.
enum class InjectedBug {
  None,
  DropConflictLane, ///< drop one conflict-free lane from the commit mask
                    ///< whenever the vector had conflicts (Alg 1/2)
  SkipTail,         ///< process only full vector-width blocks, drop the tail
  NoAuxMerge        ///< Algorithm 2 / adaptive skip the final mergeAux
};
const char *injectedBugName(InjectedBug B);
Expected<InjectedBug> parseInjectedBug(const std::string &Name);

// Per-variant entry points.  \p Chunks splits the stream into that many
// contiguous privatized chunks merged deterministically (1 = the plain
// single-accumulator loop).  The integer overload derives its payload via
// intPayload(W) so float and integer runs replay from one corpus file.
#define CFV_VERIFY_KERNEL_DECLS                                              \
  AlignedVector<float> runPipelineF32(Pipeline P, OpKind Op,                 \
                                      const Workload &W, int Chunks,         \
                                      InjectedBug Bug);                      \
  AlignedVector<int32_t> runPipelineI32(Pipeline P, OpKind Op,               \
                                        const Workload &W, int Chunks,       \
                                        InjectedBug Bug);

namespace b_scalar {
CFV_VERIFY_KERNEL_DECLS
} // namespace b_scalar

namespace b_avx2 {
CFV_VERIFY_KERNEL_DECLS
} // namespace b_avx2

namespace b_avx512 {
CFV_VERIFY_KERNEL_DECLS
} // namespace b_avx512

#undef CFV_VERIFY_KERNEL_DECLS

} // namespace verify
} // namespace cfv

#endif // CFV_VERIFY_KERNELS_H
