//===- core/RunOptions.h - Shared execution options -------------*- C++ -*-===//
//
// Part of the cfv project: reproduction of Jiang & Agrawal, CGO 2018.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The option vocabulary every application run shares: which compiled-in
/// kernel set to use, how many cores to spread the irregular reduction
/// over (core/ParallelEngine.h), an iteration cap, and the Algorithm 1/2
/// policy of §3.4.  Per-app option structs (PageRankOptions,
/// FrontierOptions, MoldynOptions) derive from RunOptions so the unified
/// cfv::run facade (core/Api.h) can populate them uniformly; apps whose
/// entry points take no option struct receive a RunOptions directly.
///
//===----------------------------------------------------------------------===//

#ifndef CFV_CORE_RUNOPTIONS_H
#define CFV_CORE_RUNOPTIONS_H

#include "util/Clock.h"

#include <atomic>

namespace cfv {

// Derived-schedule types live above core in the layering; RunOptions only
// carries borrowed pointers to them, so forward declarations suffice.
namespace inspector {
struct TilingResult;
}
namespace graph {
struct Csr;
class MappedCsr;
}
namespace pattern {
struct PatternResult;
}

namespace core {

/// A concrete kernel set compiled into the fat binary.
enum class BackendKind { Scalar, Avx2, Avx512 };

/// A backend *request*: Auto defers to the process-wide selection
/// (setBackend / CFV_BACKEND / best available, see core/Dispatch.h).
enum class BackendChoice { Auto, Scalar, Avx2, Avx512 };

/// Which in-vector reduction variant the invec versions use (§3.4):
/// Algorithm 1, Algorithm 2, or the paper's sampling policy that starts
/// on Algorithm 1 and switches when the observed mean D1 exceeds 1.
enum class InvecPolicy { Alg1, Alg2, Adaptive };

/// Pattern-classification subsystem request (src/pattern/): Env defers
/// to the process-wide CFV_PATTERN knob; the other values override it
/// per run.  pattern::resolveMode turns this into the effective mode.
enum class PatternMode { Env, Off, ClassifyOnly, On };

/// NUMA-sharded execution request (src/numa/): Env defers to the
/// process-wide CFV_NUMA knob; the other values override it per run
/// (numa::ScopedMode inside the cfv::run facade).
enum class NumaChoice { Env, Off, Auto, Interleave };

/// Options common to every application run.
struct RunOptions {
  BackendChoice Backend = BackendChoice::Auto;
  /// Worker threads for the parallel engine.  0 defers to CFV_THREADS
  /// (which defaults to 1, keeping library behavior serial unless asked);
  /// 1 is the exact single-core path; N > 1 privatizes accumulators
  /// across N workers.  See core::resolveThreads.
  int Threads = 0;
  /// Iteration cap / repeat count; 0 means the application's default.
  /// Derived option structs overwrite this with their own default.
  int MaxIterations = 0;
  /// Algorithm 1/2 policy for the invec versions that consult it
  /// (aggregation; the other apps use the adaptive sampler internally).
  InvecPolicy Policy = InvecPolicy::Adaptive;

  /// Absolute deadline in steadyNowSeconds() terms (0 = none).  Apps with
  /// convergence loops (PageRank, the frontier algorithms) check between
  /// iterations and stop early, reporting TimedOut on their result; apps
  /// without an iteration structure ignore it.  The serving layer sets
  /// this from per-request timeouts so a stuck request cancels
  /// gracefully instead of occupying a scheduler worker forever.
  double DeadlineSteadySeconds = 0.0;

  /// External cancellation flag (borrowed; nullptr = none).  Checked at
  /// the same iteration boundaries as the deadline: the scheduler's
  /// watchdog raises it when it has already failed the request, so the
  /// abandoned run stops burning cores instead of finishing a result
  /// nobody will read.  The flag must outlive the run.
  const std::atomic<bool> *CancelFlag = nullptr;

  /// Precomputed destination-block tiling to reuse instead of running the
  /// tiling inspector (borrowed; graph::PreparedGraph::tiling memoizes
  /// one per block size).  Apps verify compatibility (matching BlockBits
  /// and edge count) and fall back to their own inspector otherwise.
  const inspector::TilingResult *SharedTiling = nullptr;

  /// Precomputed CSR adjacency to reuse instead of graph::buildCsr
  /// (borrowed, must describe the same graph).  Consumed by the frontier
  /// engine's expansion and SpMV's csr_serial version.
  const graph::Csr *SharedCsr = nullptr;

  /// Pattern-classification request for the invec executors; see
  /// PatternMode.
  PatternMode Pattern = PatternMode::Env;

  /// Precomputed pattern classification of the app's *flat* index stream
  /// (borrowed; graph::PreparedGraph::streamPattern memoizes it).  Used
  /// by stream-shaped consumers (SpMV COO); tiled consumers read the
  /// classification attached to SharedTiling instead.  Apps verify
  /// schema/shape compatibility and re-classify locally otherwise.
  const pattern::PatternResult *SharedPattern = nullptr;

  /// Out-of-core backing to stream edges from instead of the in-core
  /// EdgeList arrays (borrowed; graph::PreparedGraph::mappedCsr memoizes
  /// one per dataset).  Apps verify the node count matches and that the
  /// edge count matches or the EdgeList is hollow (numEdges() == 0, the
  /// fully out-of-core shape), substitute the mapped COO/CSR pointers,
  /// and advise the residency window along their tile schedule.  Results
  /// are bit-identical to the in-core path: same edges, same order.
  const graph::MappedCsr *SharedMapped = nullptr;

  /// NUMA-sharded execution request; see NumaChoice.
  NumaChoice Numa = NumaChoice::Env;
};

/// Monotonic clock reading in seconds, the time base for
/// RunOptions::DeadlineSteadySeconds.  Delegates to the canonical clock
/// (util/Clock.h) so deadlines, timers, and trace spans agree on "now".
inline double steadyNowSeconds() { return monotonicSeconds(); }

/// True when \p O carries a deadline that has already passed.
inline bool deadlinePassed(const RunOptions &O) {
  return O.DeadlineSteadySeconds > 0.0 &&
         steadyNowSeconds() >= O.DeadlineSteadySeconds;
}

/// The cooperative stop check for iteration loops: deadline expired or
/// cancellation requested.  Apps treat both identically (stop now, report
/// TimedOut with the work done so far).
inline bool shouldStop(const RunOptions &O) {
  if (O.CancelFlag && O.CancelFlag->load(std::memory_order_relaxed))
    return true;
  return deadlinePassed(O);
}

} // namespace core
} // namespace cfv

#endif // CFV_CORE_RUNOPTIONS_H
