//===- tests/masking_test.cpp - Conflict-masking driver ------------------===//
//
// Part of the cfv project: reproduction of Jiang & Agrawal, CGO 2018.
//
//===----------------------------------------------------------------------===//

#include "TestHelpers.h"

#include "masking/ConflictMask.h"
#include "util/AlignedAlloc.h"

using namespace cfv;
using namespace cfv::masking;
using namespace cfv::simd;
using namespace cfv::test;

namespace {

/// Histogram via the conflict-masking driver: counts[Keys[i]] += 1.
template <typename B>
AlignedVector<int32_t> maskedHistogram(const AlignedVector<int32_t> &Keys,
                                       int32_t Buckets,
                                       SimdUtilCounter *Util = nullptr) {
  AlignedVector<int32_t> Counts(Buckets, 0);
  using IVec = VecI32<B>;
  auto LoadIdx = [&](IVec Pos, Mask16 Lanes) {
    return IVec::maskGather(IVec::zero(), Lanes, Keys.data(), Pos);
  };
  auto Commit = [&](Mask16 Safe, IVec, IVec Idx) {
    const IVec Old = IVec::maskGather(IVec::zero(), Safe, Counts.data(),
                                      Idx);
    (Old + IVec::broadcast(1)).maskScatter(Safe, Counts.data(), Idx);
  };
  maskedStreamLoop<B>(static_cast<int64_t>(Keys.size()), LoadIdx,
                      AllLanesNeedUpdate{}, Commit, Util);
  return Counts;
}

AlignedVector<int32_t> refHistogram(const AlignedVector<int32_t> &Keys,
                                    int32_t Buckets) {
  AlignedVector<int32_t> Counts(Buckets, 0);
  for (int32_t K : Keys)
    ++Counts[K];
  return Counts;
}

} // namespace

template <typename B> class MaskingTest : public ::testing::Test {};
TYPED_TEST_SUITE(MaskingTest, AllBackends, );

TYPED_TEST(MaskingTest, EmptyStreamDoesNothing) {
  using B = TypeParam;
  AlignedVector<int32_t> Keys;
  const auto Counts = maskedHistogram<B>(Keys, 4);
  for (int32_t C : Counts)
    EXPECT_EQ(C, 0);
}

TYPED_TEST(MaskingTest, ShortStreamUnderOneVector) {
  using B = TypeParam;
  AlignedVector<int32_t> Keys = {1, 1, 1, 2, 0};
  const auto Counts = maskedHistogram<B>(Keys, 4);
  EXPECT_EQ(Counts[0], 1);
  EXPECT_EQ(Counts[1], 3);
  EXPECT_EQ(Counts[2], 1);
  EXPECT_EQ(Counts[3], 0);
}

TYPED_TEST(MaskingTest, HistogramMatchesReferenceAcrossDensities) {
  using B = TypeParam;
  Xoshiro256 Rng(0x4A5);
  for (const uint32_t Buckets : {1u, 2u, 7u, 64u, 1024u}) {
    AlignedVector<int32_t> Keys(3000);
    for (int32_t &K : Keys)
      K = static_cast<int32_t>(Rng.nextBounded(Buckets));
    const auto Got = maskedHistogram<B>(Keys, static_cast<int32_t>(Buckets));
    const auto Want = refHistogram(Keys, static_cast<int32_t>(Buckets));
    ASSERT_EQ(Got, Want) << "buckets " << Buckets;
  }
}

TYPED_TEST(MaskingTest, WorstCaseSingleBucketSerializes) {
  using B = TypeParam;
  // All keys identical: each pass commits exactly one lane (§1's "almost
  // the same as sequential execution").
  AlignedVector<int32_t> Keys(160, 0);
  SimdUtilCounter Util;
  const auto Counts = maskedHistogram<B>(Keys, 1, &Util);
  EXPECT_EQ(Counts[0], 160);
  EXPECT_NEAR(Util.utilization(), 1.0 / 16.0, 0.01);
}

TYPED_TEST(MaskingTest, CleanStreamHasFullUtilization) {
  using B = TypeParam;
  AlignedVector<int32_t> Keys(1600);
  for (std::size_t I = 0; I < Keys.size(); ++I)
    Keys[I] = static_cast<int32_t>(I % 1600);
  SimdUtilCounter Util;
  maskedHistogram<B>(Keys, 1600, &Util);
  EXPECT_DOUBLE_EQ(Util.utilization(), 1.0);
}

TYPED_TEST(MaskingTest, UtilizationDegradesWithDuplication) {
  using B = TypeParam;
  Xoshiro256 Rng(0x111);
  double Prev = 1.1;
  for (const uint32_t Buckets : {4096u, 16u, 4u, 1u}) {
    AlignedVector<int32_t> Keys(4096);
    for (int32_t &K : Keys)
      K = static_cast<int32_t>(Rng.nextBounded(Buckets));
    SimdUtilCounter Util;
    maskedHistogram<B>(Keys, static_cast<int32_t>(Buckets), &Util);
    EXPECT_LT(Util.utilization(), Prev)
        << "utilization must fall as duplicates rise (buckets=" << Buckets
        << ")";
    Prev = Util.utilization();
  }
  EXPECT_NEAR(Prev, 1.0 / 16.0, 0.01) << "single bucket ~ serial";
}

TYPED_TEST(MaskingTest, NeedsFunctionDropsLanesWithoutWriting) {
  using B = TypeParam;
  using IVec = VecI32<B>;
  // Only even keys need updates; odd keys must be consumed silently.
  AlignedVector<int32_t> Keys(320);
  for (std::size_t I = 0; I < Keys.size(); ++I)
    Keys[I] = static_cast<int32_t>(I % 10);
  AlignedVector<int32_t> Counts(10, 0);

  auto LoadIdx = [&](IVec Pos, Mask16 Lanes) {
    return IVec::maskGather(IVec::zero(), Lanes, Keys.data(), Pos);
  };
  auto Needs = [&](Mask16 Lanes, IVec, IVec Idx) -> Mask16 {
    const IVec Odd = Idx & IVec::broadcast(1);
    return static_cast<Mask16>(Odd.eq(IVec::zero()) & Lanes);
  };
  auto Commit = [&](Mask16 Safe, IVec, IVec Idx) {
    const IVec Old = IVec::maskGather(IVec::zero(), Safe, Counts.data(),
                                      Idx);
    (Old + IVec::broadcast(1)).maskScatter(Safe, Counts.data(), Idx);
  };
  maskedStreamLoop<B>(static_cast<int64_t>(Keys.size()), LoadIdx, Needs,
                      Commit);
  for (int K = 0; K < 10; ++K)
    EXPECT_EQ(Counts[K], K % 2 == 0 ? 32 : 0) << "key " << K;
}

TYPED_TEST(MaskingTest, EveryItemProcessedExactlyOnce) {
  using B = TypeParam;
  using IVec = VecI32<B>;
  // Commit records which stream positions were consumed.
  AlignedVector<int32_t> Keys(500);
  Xoshiro256 Rng(0x222);
  for (int32_t &K : Keys)
    K = static_cast<int32_t>(Rng.nextBounded(3));
  AlignedVector<int32_t> Hits(Keys.size(), 0);

  auto LoadIdx = [&](IVec Pos, Mask16 Lanes) {
    return IVec::maskGather(IVec::zero(), Lanes, Keys.data(), Pos);
  };
  auto Commit = [&](Mask16 Safe, IVec Pos, IVec) {
    const IVec Old =
        IVec::maskGather(IVec::zero(), Safe, Hits.data(), Pos);
    (Old + IVec::broadcast(1)).maskScatter(Safe, Hits.data(), Pos);
  };
  maskedStreamLoop<B>(static_cast<int64_t>(Keys.size()), LoadIdx,
                      AllLanesNeedUpdate{}, Commit);
  for (std::size_t I = 0; I < Hits.size(); ++I)
    ASSERT_EQ(Hits[I], 1) << "position " << I;
}
