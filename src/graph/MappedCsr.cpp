//===- graph/MappedCsr.cpp - Out-of-core mmap'd graph backing -------------===//
//
// Part of the cfv project: reproduction of Jiang & Agrawal, CGO 2018.
//
//===----------------------------------------------------------------------===//

#include "graph/MappedCsr.h"

#include "resilience/Fault.h"
#include "util/Env.h"

#include <algorithm>
#include <cstdio>
#include <cstring>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/mman.h>
#include <sys/stat.h>
#include <fcntl.h>
#include <unistd.h>
#define CFV_HAVE_MMAP 1
#else
#define CFV_HAVE_MMAP 0
#endif

namespace cfv {
namespace graph {

namespace {

constexpr char kMagic[4] = {'C', 'F', 'V', 'M'};
constexpr uint32_t kVersion = 1;
constexpr uint32_t kFlagWeighted = 1u << 0;
constexpr int64_t kAlign = 64;

/// Fixed-layout file header; sections follow at 64-byte-aligned offsets.
struct Header {
  char Magic[4];
  uint32_t Version;
  uint32_t Flags;
  uint32_t Pad;
  int64_t NumNodes;
  int64_t NumEdges;
};
static_assert(sizeof(Header) == 32, "CFVM header layout");

int64_t alignUp(int64_t V) { return (V + kAlign - 1) / kAlign * kAlign; }

/// Section offsets for a graph of (N, M, weighted); Total is the exact
/// file size a well-formed CFVM file must have.
struct Layout {
  int64_t RowBegin, Col, CsrWt, Src, Dst, EdgeWt, Total;
};

Layout layoutFor(int64_t N, int64_t M, bool Weighted) {
  Layout L;
  int64_t Off = alignUp(static_cast<int64_t>(sizeof(Header)));
  L.RowBegin = Off;
  Off = alignUp(Off + (N + 1) * static_cast<int64_t>(sizeof(int64_t)));
  L.Col = Off;
  Off = alignUp(Off + M * static_cast<int64_t>(sizeof(int32_t)));
  L.CsrWt = Weighted ? Off : 0;
  if (Weighted)
    Off = alignUp(Off + M * static_cast<int64_t>(sizeof(float)));
  L.Src = Off;
  Off = alignUp(Off + M * static_cast<int64_t>(sizeof(int32_t)));
  L.Dst = Off;
  Off = alignUp(Off + M * static_cast<int64_t>(sizeof(int32_t)));
  L.EdgeWt = Weighted ? Off : 0;
  if (Weighted)
    Off = alignUp(Off + M * static_cast<int64_t>(sizeof(float)));
  L.Total = Off;
  return L;
}

Status ioError(const std::string &Msg) {
  return Status::error(ErrorCode::IoError, Msg);
}

/// Writes \p Bytes at file offset \p Off, zero-padding any gap left by
/// section alignment (fseek past EOF + write extends with zeros).
bool writeAt(std::FILE *F, int64_t Off, const void *Data, int64_t Bytes) {
  if (std::fseek(F, static_cast<long>(Off), SEEK_SET) != 0)
    return false;
  if (Bytes == 0)
    return true;
  return std::fwrite(Data, 1, static_cast<size_t>(Bytes), F) ==
         static_cast<size_t>(Bytes);
}

void adviseRange(void *Base, int64_t Bytes, int64_t Off, int64_t Len,
                 bool WillNeed) {
#if CFV_HAVE_MMAP
  const int64_t Page = static_cast<int64_t>(sysconf(_SC_PAGESIZE));
  int64_t Lo = std::max<int64_t>(0, Off) / Page * Page;
  int64_t Hi = std::min(Bytes, Off + Len);
  if (Hi <= Lo)
    return;
  posix_madvise(static_cast<char *>(Base) + Lo, static_cast<size_t>(Hi - Lo),
                WillNeed ? POSIX_MADV_WILLNEED : POSIX_MADV_DONTNEED);
#else
  (void)Base;
  (void)Bytes;
  (void)Off;
  (void)Len;
  (void)WillNeed;
#endif
}

} // namespace

int64_t mapBytesBudget() {
  return env::intVar("CFV_MAP_BYTES", /*Default=*/0,
                     /*Min=*/0, /*Max=*/int64_t(1) << 46);
}

//===----------------------------------------------------------------------===//
// ResidencyWindow
//===----------------------------------------------------------------------===//

ResidencyWindow::ResidencyWindow(void *Base, int64_t Bytes, int64_t BudgetBytes,
                                 int64_t SegmentBytes)
    : Base(Base), Bytes(Bytes),
      SegmentBytes(std::max<int64_t>(SegmentBytes, 4096)) {
  BudgetSegments = std::max<int64_t>(1, BudgetBytes / this->SegmentBytes);
  const int64_t Segments =
      Bytes > 0 ? (Bytes + this->SegmentBytes - 1) / this->SegmentBytes : 0;
  State.assign(static_cast<size_t>(Segments), 0);
}

void ResidencyWindow::touch(int64_t Offset, int64_t Len) {
  if (Len <= 0 || State.empty())
    return;
  const int64_t Lo = std::max<int64_t>(0, Offset) / SegmentBytes;
  const int64_t Hi =
      std::min<int64_t>(static_cast<int64_t>(State.size()) - 1,
                        (std::min(Bytes, Offset + Len) - 1) / SegmentBytes);
  std::lock_guard<std::mutex> Lock(Mu);
  for (int64_t S = Lo; S <= Hi; ++S) {
    int64_t &St = State[static_cast<size_t>(S)];
    if (St > 0) {
      // Already resident: refresh its LRU position.
      St = ++Stamp;
      const auto It = std::find(Lru.begin(), Lru.end(), static_cast<int32_t>(S));
      if (It != Lru.end()) {
        Lru.erase(It);
        Lru.push_back(static_cast<int32_t>(S));
      }
      continue;
    }
    if (St == -1)
      ++Refaults_;
    St = ++Stamp;
    ++Advised_;
    adviseRange(Base, Bytes, S * SegmentBytes, SegmentBytes,
                /*WillNeed=*/true);
    Lru.push_back(static_cast<int32_t>(S));
    while (static_cast<int64_t>(Lru.size()) > BudgetSegments) {
      const int32_t Victim = Lru.front();
      Lru.erase(Lru.begin());
      State[static_cast<size_t>(Victim)] = -1;
      ++Evictions_;
      adviseRange(Base, Bytes, static_cast<int64_t>(Victim) * SegmentBytes,
                  SegmentBytes, /*WillNeed=*/false);
    }
  }
}

int64_t ResidencyWindow::advised() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Advised_;
}

int64_t ResidencyWindow::evictions() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Evictions_;
}

int64_t ResidencyWindow::refaults() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Refaults_;
}

//===----------------------------------------------------------------------===//
// MappedCsr
//===----------------------------------------------------------------------===//

MappedCsr::~MappedCsr() {
#if CFV_HAVE_MMAP
  if (Map)
    munmap(Map, static_cast<size_t>(MapBytes));
#endif
}

Status MappedCsr::write(const std::string &Path, const EdgeList &E) {
  const int64_t N = E.NumNodes;
  const int64_t M = E.numEdges();
  const bool Weighted = E.isWeighted();
  const Layout L = layoutFor(N, M, Weighted);

  const Csr C = buildCsr(E);

  std::FILE *F = std::fopen(Path.c_str(), "wb");
  if (!F)
    return ioError("mapped-csr write: cannot create '" + Path + "'");
  bool Ok = true;
  Header H;
  std::memcpy(H.Magic, kMagic, 4);
  H.Version = kVersion;
  H.Flags = Weighted ? kFlagWeighted : 0;
  H.Pad = 0;
  H.NumNodes = N;
  H.NumEdges = M;
  Ok = Ok && writeAt(F, 0, &H, sizeof(H));
  Ok = Ok && writeAt(F, L.RowBegin, C.RowBegin.data(),
                     (N + 1) * static_cast<int64_t>(sizeof(int64_t)));
  Ok = Ok && writeAt(F, L.Col, C.Col.data(),
                     M * static_cast<int64_t>(sizeof(int32_t)));
  if (Weighted)
    Ok = Ok && writeAt(F, L.CsrWt, C.Weight.data(),
                       M * static_cast<int64_t>(sizeof(float)));
  Ok = Ok && writeAt(F, L.Src, E.Src.data(),
                     M * static_cast<int64_t>(sizeof(int32_t)));
  Ok = Ok && writeAt(F, L.Dst, E.Dst.data(),
                     M * static_cast<int64_t>(sizeof(int32_t)));
  if (Weighted)
    Ok = Ok && writeAt(F, L.EdgeWt, E.Weight.data(),
                       M * static_cast<int64_t>(sizeof(float)));
  // Alignment may leave the file shorter than Total when the last
  // section ends before its aligned boundary; pad to the exact size the
  // reader validates against.  Only when a gap actually exists: when the
  // last section already ends on the alignment boundary, Total equals
  // its end and the pad byte would overwrite the last payload byte.
  int64_t End = L.RowBegin + (N + 1) * static_cast<int64_t>(sizeof(int64_t));
  if (M > 0) {
    // Zero-length sections write nothing: their aligned offsets must not
    // count as data, or an edgeless graph would skip the pad entirely.
    End = std::max(End, L.Dst + M * static_cast<int64_t>(sizeof(int32_t)));
    if (Weighted)
      End = std::max(End, L.EdgeWt + M * static_cast<int64_t>(sizeof(float)));
  }
  if (Ok && L.Total > End) {
    const char Zero = 0;
    Ok = writeAt(F, L.Total - 1, &Zero, 1);
  }
  if (std::fclose(F) != 0)
    Ok = false;
  if (!Ok) {
    std::remove(Path.c_str());
    return ioError("mapped-csr write: short write to '" + Path + "'");
  }
  return Status();
}

Expected<std::shared_ptr<MappedCsr>> MappedCsr::open(const std::string &Path) {
#if !CFV_HAVE_MMAP
  return ioError("mapped-csr: mmap unavailable on this platform");
#else
  // io.map_fail models ulimit pressure / exhausted address space: the
  // chaos tier proves every caller degrades to the in-core loader.
  if (fault::fire(fault::Point::IoMapFail))
    return ioError("mapped-csr: injected map failure (io.map_fail)");

  const int Fd = ::open(Path.c_str(), O_RDONLY);
  if (Fd < 0)
    return ioError("mapped-csr: cannot open '" + Path + "'");
  struct stat St;
  if (fstat(Fd, &St) != 0) {
    ::close(Fd);
    return ioError("mapped-csr: cannot stat '" + Path + "'");
  }
  const int64_t FileBytes = static_cast<int64_t>(St.st_size);
  if (FileBytes < static_cast<int64_t>(sizeof(Header))) {
    ::close(Fd);
    return ioError("mapped-csr: '" + Path + "' shorter than the header");
  }

  Header H;
  if (pread(Fd, &H, sizeof(H), 0) != static_cast<ssize_t>(sizeof(H))) {
    ::close(Fd);
    return ioError("mapped-csr: cannot read header of '" + Path + "'");
  }
  if (std::memcmp(H.Magic, kMagic, 4) != 0) {
    ::close(Fd);
    return ioError("mapped-csr: '" + Path + "' is not a CFVM file");
  }
  if (H.Version != kVersion) {
    ::close(Fd);
    return ioError("mapped-csr: unsupported CFVM version " +
                   std::to_string(H.Version));
  }
  if (H.NumNodes < 0 || H.NumNodes > INT32_MAX || H.NumEdges < 0) {
    ::close(Fd);
    return ioError("mapped-csr: implausible header counts in '" + Path + "'");
  }
  const bool Weighted = (H.Flags & kFlagWeighted) != 0;
  const Layout L = layoutFor(H.NumNodes, H.NumEdges, Weighted);
  if (FileBytes < L.Total) {
    ::close(Fd);
    return ioError("mapped-csr: '" + Path + "' truncated (" +
                   std::to_string(FileBytes) + " bytes, need " +
                   std::to_string(L.Total) + ")");
  }

  void *Map =
      mmap(nullptr, static_cast<size_t>(L.Total), PROT_READ, MAP_PRIVATE, Fd, 0);
  ::close(Fd); // the mapping keeps the file alive
  if (Map == MAP_FAILED)
    return ioError("mapped-csr: mmap of '" + Path + "' failed");

  std::shared_ptr<MappedCsr> G(new MappedCsr());
  G->Map = Map;
  G->MapBytes = L.Total;
  G->NumNodes = static_cast<int32_t>(H.NumNodes);
  G->NumEdges = H.NumEdges;
  G->Weighted = Weighted;
  const char *B = static_cast<const char *>(Map);
  G->RowBegin = reinterpret_cast<const int64_t *>(B + L.RowBegin);
  G->Col = reinterpret_cast<const int32_t *>(B + L.Col);
  G->CsrWt = Weighted ? reinterpret_cast<const float *>(B + L.CsrWt) : nullptr;
  G->Src = reinterpret_cast<const int32_t *>(B + L.Src);
  G->Dst = reinterpret_cast<const int32_t *>(B + L.Dst);
  G->EdgeWt =
      Weighted ? reinterpret_cast<const float *>(B + L.EdgeWt) : nullptr;
  G->CsrOffset = L.RowBegin;
  G->CooOffset = L.Src;

  const int64_t Budget = mapBytesBudget();
  if (Budget > 0 && Budget < L.Total) {
    // Segment size scales down with tiny test budgets so eviction is
    // actually exercised (default 1 MiB segments, at least a page).
    const int64_t Seg = std::max<int64_t>(4096, Budget / 4);
    G->Window.reset(new ResidencyWindow(Map, L.Total, Budget,
                                        std::min<int64_t>(Seg, int64_t(1)
                                                                   << 20)));
  }
  return G;
#endif
}

CsrView MappedCsr::csrView() const {
  CsrView V;
  V.NumNodes = NumNodes;
  V.RowBegin = RowBegin;
  V.Col = Col;
  V.Weight = CsrWt;
  V.NumEdges = NumEdges;
  return V;
}

void MappedCsr::adviseEdgeRange(int64_t Lo, int64_t Hi) const {
  if (!Window || Hi <= Lo)
    return;
  const int64_t B = static_cast<int64_t>(sizeof(int32_t));
  // Src and Dst stream together; weights ride along when present.
  const int64_t SrcOff = CooOffset;
  Window->touch(SrcOff + Lo * B, (Hi - Lo) * B);
  const int64_t DstOff =
      reinterpret_cast<const char *>(Dst) - static_cast<const char *>(Map);
  Window->touch(DstOff + Lo * B, (Hi - Lo) * B);
  if (EdgeWt) {
    const int64_t WtOff =
        reinterpret_cast<const char *>(EdgeWt) - static_cast<const char *>(Map);
    Window->touch(WtOff + Lo * B, (Hi - Lo) * B);
  }
}

void MappedCsr::adviseCsrRange(int64_t Lo, int64_t Hi) const {
  if (!Window || Hi <= Lo)
    return;
  const int64_t B = static_cast<int64_t>(sizeof(int32_t));
  const int64_t ColOff =
      reinterpret_cast<const char *>(Col) - static_cast<const char *>(Map);
  Window->touch(ColOff + Lo * B, (Hi - Lo) * B);
  if (CsrWt) {
    const int64_t WtOff =
        reinterpret_cast<const char *>(CsrWt) - static_cast<const char *>(Map);
    Window->touch(WtOff + Lo * B, (Hi - Lo) * B);
  }
}

int64_t MappedCsr::windowAdvised() const {
  return Window ? Window->advised() : 0;
}
int64_t MappedCsr::windowEvictions() const {
  return Window ? Window->evictions() : 0;
}
int64_t MappedCsr::windowRefaults() const {
  return Window ? Window->refaults() : 0;
}

} // namespace graph
} // namespace cfv
