//===- inspector/Grouping.h - Conflict-free edge grouping -------*- C++ -*-===//
//
// Part of the cfv project: reproduction of Jiang & Agrawal, CGO 2018.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The "grouping" half of the inspector/executor baseline: within each
/// tile, edges are packed into groups of Width lanes (the consuming
/// backend's vector width: 16 for scalar/AVX-512, 8 for AVX2) whose
/// destinations are pairwise distinct, so the executor can scatter a
/// whole group without any conflict handling (the DOALL guarantee of
/// §1).  Incomplete groups are padded with masked-off lanes.
///
/// This is the data-reorganization step whose overhead the paper's
/// in-vector reduction eliminates; the benchmark harnesses time it as the
/// separate "grouping" phase of Figures 8-12.
///
//===----------------------------------------------------------------------===//

#ifndef CFV_INSPECTOR_GROUPING_H
#define CFV_INSPECTOR_GROUPING_H

#include "inspector/Tiling.h"
#include "simd/Backend.h"
#include "simd/Mask.h"
#include "util/AlignedAlloc.h"

#include <cstdint>

namespace cfv {
namespace inspector {

/// Result of the grouping inspector.
struct GroupingResult {
  /// NumGroups * Width entries; Slot[g*Width + l] is the original edge id
  /// in lane l of group g, or -1 for a padded lane.
  AlignedVector<int32_t> Slot;
  /// Per-group validity mask (bit l set iff lane l holds a real edge).
  AlignedVector<simd::Mask16> GroupMask;
  int64_t NumGroups = 0;
  int64_t NumEdges = 0;
  /// Lanes per group; the vector width of the backend the schedule was
  /// built for.  A schedule built at one width cannot be consumed at
  /// another.
  int Width = simd::kMaxLanes;

  /// Lane-slot efficiency: NumEdges / (NumGroups * Width).
  double packingEfficiency() const {
    return NumGroups == 0 ? 1.0
                          : static_cast<double>(NumEdges) /
                                static_cast<double>(NumGroups * Width);
  }

  /// Resident bytes of the schedule, for cache byte-budget accounting.
  int64_t approxBytes() const {
    return static_cast<int64_t>(Slot.size() * sizeof(int32_t) +
                                GroupMask.size() * sizeof(simd::Mask16));
  }
};

/// Greedily packs the edges of each tile of \p Tiling into conflict-free
/// groups of \p Width lanes by destination \p Dst (original edge order
/// arrays).  \p Width must match the consuming backend's vector width
/// (BackendTraits<B>::kLanes).  Groups never span tiles, preserving the
/// tiling locality.
GroupingResult groupConflictFree(const int32_t *Dst, int32_t NumNodes,
                                 const TilingResult &Tiling,
                                 int Width = simd::kMaxLanes);

/// Convenience overload treating the whole edge list as one tile (the
/// nontiling + grouping configuration).
GroupingResult groupConflictFree(const int32_t *Dst, int64_t NumEdges,
                                 int32_t NumNodes,
                                 int Width = simd::kMaxLanes);

/// Pair variant for symmetric interactions (Moldyn's force pairs update
/// both endpoints): within a group every atom appears at most once across
/// *both* endpoint vectors (same-side and cross-side duplicates are
/// excluded), so each side can be updated with a plain
/// gather/combine/scatter in any order.
GroupingResult groupConflictFreePairs(const int32_t *I, const int32_t *J,
                                      int32_t NumNodes,
                                      const TilingResult &Tiling,
                                      int Width = simd::kMaxLanes);

/// Materializes one payload array in grouped, padded order; padded lanes
/// receive \p Pad (pick a value that is safe to gather through, e.g. 0).
template <typename T>
AlignedVector<T> applyGrouping(const GroupingResult &G, const T *Values,
                               T Pad) {
  AlignedVector<T> Out(G.Slot.size());
  for (std::size_t P = 0; P < G.Slot.size(); ++P)
    Out[P] = G.Slot[P] < 0 ? Pad : Values[G.Slot[P]];
  return Out;
}

} // namespace inspector
} // namespace cfv

#endif // CFV_INSPECTOR_GROUPING_H
