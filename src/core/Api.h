//===- core/Api.h - The paper's programming interface (§3.5) ----*- C++ -*-===//
//
// Part of the cfv project: reproduction of Jiang & Agrawal, CGO 2018.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Figure-7 style programming interface.  The paper embeds in-vector
/// reduction into a SIMD programming framework (Huo et al., ICS'14) as
/// functions with the prototype
///
///     mask invec_op(mask active, vint idx, vtype data)
///
/// where op is the reduction operator, data is reduced in place, and the
/// returned mask marks the conflict-free lanes holding partial results.
/// This header provides those entry points over the fastest backend
/// available in the build (vint/vfloat/mask aliases included), so user
/// code can be written exactly like the paper's vectorized PageRank:
///
/// \code
///   vint Vny = vint::load(N2 + J);
///   vfloat Vadd = vfloat::gather(Rank, Vnx) / vfloat::gather(Nn, Vnx);
///   mask M = invec_add(simd::kAllLanes, Vny, Vadd);
///   cfv::core::accumulateScatter<simd::OpAdd>(M, Vny, Vadd, Sum);
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef CFV_CORE_API_H
#define CFV_CORE_API_H

#include "core/InvecReduce.h"

namespace cfv {

/// Convenience aliases over the fastest backend in this build.
using vint = simd::VecI32<simd::NativeBackend>;
using vfloat = simd::VecF32<simd::NativeBackend>;
using mask = simd::Mask16;

/// In-vector summation; returns the conflict-free scatter mask.
inline mask invec_add(mask Active, vint Idx, vfloat &Data) {
  return core::invecReduce<simd::OpAdd>(Active, Idx, Data).Ret;
}
inline mask invec_add(mask Active, vint Idx, vint &Data) {
  return core::invecReduce<simd::OpAdd>(Active, Idx, Data).Ret;
}

/// In-vector minimum (e.g. SSSP distance relaxation).
inline mask invec_min(mask Active, vint Idx, vfloat &Data) {
  return core::invecReduce<simd::OpMin>(Active, Idx, Data).Ret;
}
inline mask invec_min(mask Active, vint Idx, vint &Data) {
  return core::invecReduce<simd::OpMin>(Active, Idx, Data).Ret;
}

/// In-vector maximum (e.g. SSWP width relaxation).
inline mask invec_max(mask Active, vint Idx, vfloat &Data) {
  return core::invecReduce<simd::OpMax>(Active, Idx, Data).Ret;
}
inline mask invec_max(mask Active, vint Idx, vint &Data) {
  return core::invecReduce<simd::OpMax>(Active, Idx, Data).Ret;
}

/// In-vector product.
inline mask invec_mul(mask Active, vint Idx, vfloat &Data) {
  return core::invecReduce<simd::OpMul>(Active, Idx, Data).Ret;
}
inline mask invec_mul(mask Active, vint Idx, vint &Data) {
  return core::invecReduce<simd::OpMul>(Active, Idx, Data).Ret;
}

//===----------------------------------------------------------------------===//
// 64-bit extension (8 lanes, vpconflictq)
//===----------------------------------------------------------------------===//

/// 8-lane 64-bit vectors for double-precision / wide-accumulator
/// reductions; only the low 8 mask bits are significant
/// (simd::kAllLanes64).
using vlong = simd::VecI64<simd::NativeBackend>;
using vdouble = simd::VecF64<simd::NativeBackend>;

inline mask invec_add(mask Active, vlong Idx, vdouble &Data) {
  return core::invecReduce<simd::OpAdd>(Active, Idx, Data).Ret;
}
inline mask invec_add(mask Active, vlong Idx, vlong &Data) {
  return core::invecReduce<simd::OpAdd>(Active, Idx, Data).Ret;
}
inline mask invec_min(mask Active, vlong Idx, vdouble &Data) {
  return core::invecReduce<simd::OpMin>(Active, Idx, Data).Ret;
}
inline mask invec_min(mask Active, vlong Idx, vlong &Data) {
  return core::invecReduce<simd::OpMin>(Active, Idx, Data).Ret;
}
inline mask invec_max(mask Active, vlong Idx, vdouble &Data) {
  return core::invecReduce<simd::OpMax>(Active, Idx, Data).Ret;
}
inline mask invec_max(mask Active, vlong Idx, vlong &Data) {
  return core::invecReduce<simd::OpMax>(Active, Idx, Data).Ret;
}

} // namespace cfv

//===----------------------------------------------------------------------===//
// The unified run facade
//===----------------------------------------------------------------------===//
//
// One entry point over all nine applications: fill an AppRequest, call
// cfv::run, receive an AppResult or a Status describing what was wrong
// with the request.  The per-app free functions (apps::runPageRank,
// apps::runFrontier, ...) remain as thin wrappers, but new callers --
// cfv_run, the benchmarks, external users -- should come through here:
// the facade validates inputs up front, resolves the backend without
// mutating process-global dispatch state, threads the RunOptions base
// (backend / threads / iterations / invec policy) into every app
// uniformly, and reports what actually ran (backend, worker count).

#include "core/Dispatch.h"
#include "util/Stats.h"

#include <cstdint>
#include <string>
#include <vector>

namespace cfv {

namespace graph {
class PreparedGraph; // graph/Prepared.h
class MappedCsr;     // graph/MappedCsr.h
}

/// The nine applications of the evaluation (frontier-based graph
/// traversal counts once per algorithm).
enum class AppId {
  PageRank,
  PageRank64,
  Sssp,
  Sswp,
  Wcc,
  Bfs,
  Moldyn,
  Agg,
  Rbk,
  Spmv,
  Mesh,
};

/// Execution-strategy vocabulary shared across applications.  Each app
/// accepts a subset (run() rejects the rest with InvalidArgument):
///
///   PageRank   : Serial TilingSerial Grouping Mask Invec
///   PageRank64 : Serial Invec
///   Sssp/Sswp/Wcc/Bfs : Serial Mask Invec Grouping
///   Moldyn     : Serial Grouping Mask Invec
///   Agg        : Serial Mask BucketMask Invec BucketInvec
///   Rbk        : Default only (runs the fixed three-way comparison)
///   Spmv       : Serial CsrSerial Mask Invec Grouping
///   Mesh       : Serial Mask Invec Grouping
///
/// Default picks the paper's headline strategy for the app (in-vector
/// reduction wherever it exists).
enum class AppVersion {
  Default,
  Serial,
  TilingSerial,
  Grouping,
  Mask,
  Invec,
  BucketMask,
  BucketInvec,
  CsrSerial,
};

/// Canonical CLI spelling ("pagerank", "sssp", ...).
const char *appIdName(AppId A);

/// Parses an application name as cfv_run spells them.
Expected<AppId> parseAppId(const std::string &Name);

/// Parses a version name for \p App.  Accepts the unified spellings
/// ("serial", "mask", "invec", "grouping", ...) plus the historical
/// per-app ones ("tiling_and_invec", "bucket_invec", "csr_serial",
/// "default").
Expected<AppVersion> parseAppVersion(AppId App, const std::string &Name);

/// Everything cfv::run needs.  Fill the fields your application reads;
/// the rest are ignored.  Pointers are borrowed, never owned.
struct AppRequest {
  AppId App = AppId::PageRank;
  AppVersion Version = AppVersion::Default;

  /// Backend / threads / iteration cap / invec policy.  MaxIterations 0
  /// defers to the app default (PageRank 200, frontier apps 1000, Moldyn
  /// 20, Mesh 50, Rbk 1000, Spmv 1 repeat).
  core::RunOptions Options;

  /// Graph input (PageRank, PageRank64, Sssp, Sswp, Wcc, Bfs, Rbk, Spmv).
  /// Sssp/Sswp/Spmv require edge weights.
  const graph::EdgeList *Graph = nullptr;
  /// Prepared-dataset handle (graph/Prepared.h): an alternative to Graph
  /// that additionally shares memoized derived schedules (CSR adjacency,
  /// inspector tiling) across runs, the serving layer's amortization
  /// path.  When set, Graph may be left null; run() wires the prepared
  /// artifacts into RunOptions::SharedTiling / SharedCsr for the apps
  /// that consume them and charges any first-use materialization to
  /// AppResult::PrepSeconds.  Borrowed, never owned: the caller (for the
  /// serving layer, a shared_ptr from service::DatasetCache) must keep it
  /// alive for the duration of the run.
  const graph::PreparedGraph *Prepared = nullptr;
  /// Out-of-core backing for the graph apps (graph/MappedCsr.h): when
  /// set, apps stream edges from the mapping instead of the EdgeList
  /// arrays (which may then be hollow -- numEdges() == 0).  Usually
  /// wired automatically from Prepared when CFV_MAP_BYTES > 0; set it
  /// explicitly to force out-of-core execution.  Borrowed, never owned.
  const graph::MappedCsr *Mapped = nullptr;
  /// Source vertex for the frontier apps.
  int32_t Source = 0;

  /// Dense input vector for Spmv (numNodes entries); null uses ones.
  const float *X = nullptr;

  /// Key/value streams for Agg.
  const int32_t *Keys = nullptr;
  const float *Vals = nullptr;
  int64_t Rows = 0;
  /// Key cardinality for Agg (table sizing); must be in [1, 2^24].
  int64_t Cardinality = 0;

  /// Simulation parameters for Moldyn (its RunOptions base is ignored in
  /// favor of AppRequest::Options).
  apps::MoldynOptions Moldyn;

  /// Mesh input for Mesh.
  const apps::Mesh *MeshIn = nullptr;
  /// Initial cell values for Mesh (NumCells entries).
  const float *U0 = nullptr;
  /// Diffusion time step for Mesh.
  float Dt = 0.4f;
};

/// What ran and what came out.  Per-app payloads live in the dedicated
/// fields; scalar metrics are filled whenever the app reports them.
struct AppResult {
  AppId App = AppId::PageRank;
  /// The concrete per-app version name that ran ("tiling_and_invec",
  /// "bucket_invec", ...).
  std::string VersionName;
  /// The backend that actually executed (after graceful degradation).
  core::BackendKind Backend = core::BackendKind::Scalar;
  /// Worker threads the parallel engine used.
  int Threads = 1;

  int Iterations = 0;
  double ComputeSeconds = 0.0;
  /// Inspector time (tiling + grouping / CSR build), where applicable;
  /// includes first-use materialization of prepared-dataset artifacts.
  double PrepSeconds = 0.0;
  double SimdUtil = 1.0;
  double MeanD1 = 0.0;
  int64_t EdgesProcessed = 0;
  /// Whether RunOptions::DeadlineSteadySeconds stopped the app's
  /// iteration loop before convergence (PageRank, frontier apps).
  bool TimedOut = false;
  /// Whether the adaptive policy committed to Algorithm 2 anywhere in
  /// this run.
  bool UsedAlg2 = false;
  /// Distribution of distinct conflicting lanes (D1) per vector pass and
  /// of useful lanes per pass, merged across workers.  Empty when the
  /// version that ran does not track them or when observability is
  /// compiled out; the run facade flushes them into the metrics registry.
  LaneHistogram D1Hist;
  LaneHistogram UtilHist;
  /// Tiles (or pseudo-tiles) per pattern class, indexed by
  /// pattern::TileClass order (ConflictFree, Monotone, SmallAlphabet,
  /// HotBucket, General); all zero when classification was off or the
  /// app/version does not consult the pattern subsystem.
  int64_t PatternTiles[5] = {};
  /// Effective pattern mode of the run ("off", "classify-only", "on"),
  /// after resolving RunOptions::Pattern against CFV_PATTERN.
  std::string PatternModeName;
  /// NUMA nodes the sharded engine planned for (1 = flat execution:
  /// CFV_NUMA=off, a single-node topology, or a serial run).
  int NumaNodes = 1;
  /// Whether the run streamed its edges from an out-of-core MappedCsr.
  bool UsedMappedCsr = false;

  /// PageRank ranks, frontier values, Spmv y, Mesh final state.
  AlignedVector<float> Values;
  /// PageRank64 ranks.
  AlignedVector<double> Values64;
  /// Agg per-group aggregates.
  std::vector<apps::GroupAgg> Groups;
  /// Rbk three-way comparison timings/checksums.
  apps::RbkResult Rbk;
  /// Moldyn phase times and energies.
  apps::MoldynResult Moldyn;
};

/// Runs one application described by \p R.  Returns InvalidArgument for
/// malformed requests (missing inputs, version not available for the
/// app, negative thread count, ...); never mutates process-global
/// dispatch state.
Expected<AppResult> run(const AppRequest &R);

/// A scalar summarizing \p R's output so runs are comparable at a glance
/// (rank mass, |y|^2, group-sum, checksums...).  Shared by cfv_run's
/// report/JSON output and the serving layer's response digests;
/// non-finite entries (unreachable vertices hold +/-inf) are skipped so
/// the value is always a valid JSON number.
double resultChecksum(const AppResult &R);

} // namespace cfv

#endif // CFV_CORE_API_H
