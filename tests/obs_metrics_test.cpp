//===- tests/obs_metrics_test.cpp - Metrics registry unit tests -----------===//
//
// Part of the cfv project: reproduction of Jiang & Agrawal, CGO 2018.
//
//===----------------------------------------------------------------------===//
//
// The observability metrics layer: counter shard merge under concurrent
// writers (the TSan job runs this suite), histogram bucket boundaries
// and quantiles, the bounds layouts, the registry's find-or-create
// contract, gauges, and both render formats.  Registry-backed tests use
// test-unique metric names: the registry is process-wide and entries
// live for the process lifetime.
//
//===----------------------------------------------------------------------===//

#include "obs/Metrics.h"
#include "service/Json.h"

#include "gtest/gtest.h"

#include <atomic>
#include <cmath>
#include <string>
#include <thread>
#include <vector>

using namespace cfv;
using namespace cfv::obs;

namespace {

//===----------------------------------------------------------------------===//
// Counter (always compiled in, even under CFV_OBS=0)
//===----------------------------------------------------------------------===//

TEST(ObsCounter, SingleThreadCounts) {
  Counter C;
  EXPECT_EQ(C.value(), 0u);
  C.inc();
  C.inc(41);
  EXPECT_EQ(C.value(), 42u);
  C.reset();
  EXPECT_EQ(C.value(), 0u);
}

TEST(ObsCounter, ShardMergeUnderConcurrentWriters) {
  // More threads than shards so slots are shared: the merge must still
  // be exact.  TSan validates the lock-free write discipline here.
  Counter C;
  constexpr int Threads = 48;
  constexpr int PerThread = 10000;
  std::atomic<bool> Go{false};
  std::vector<std::thread> Pool;
  Pool.reserve(Threads);
  for (int T = 0; T < Threads; ++T)
    Pool.emplace_back([&] {
      while (!Go.load(std::memory_order_acquire))
        std::this_thread::yield();
      for (int I = 0; I < PerThread; ++I)
        C.inc();
    });
  Go.store(true, std::memory_order_release);
  for (std::thread &T : Pool)
    T.join();
  EXPECT_EQ(C.value(), static_cast<uint64_t>(Threads) * PerThread);
}

//===----------------------------------------------------------------------===//
// HistogramData
//===----------------------------------------------------------------------===//

TEST(ObsHistogramData, BucketBoundariesAreInclusiveUpper) {
  // Bucket I counts V <= UpperBounds[I]: a value exactly on a bound
  // belongs to that bound's bucket (the Prometheus le= convention).
  HistogramData H({1.0, 2.0, 4.0});
  ASSERT_EQ(H.Counts.size(), 4u); // 3 bounds + overflow
  EXPECT_EQ(H.bucketIndex(0.5), 0u);
  EXPECT_EQ(H.bucketIndex(1.0), 0u); // on-bound -> lower bucket
  EXPECT_EQ(H.bucketIndex(1.5), 1u);
  EXPECT_EQ(H.bucketIndex(2.0), 1u);
  EXPECT_EQ(H.bucketIndex(4.0), 2u);
  EXPECT_EQ(H.bucketIndex(4.1), 3u); // overflow
  EXPECT_EQ(H.bucketIndex(1e30), 3u);

  H.add(1.0);
  H.add(3.0, 2);
  H.add(100.0);
  EXPECT_EQ(H.TotalCount, 4u);
  EXPECT_EQ(H.Counts[0], 1u);
  EXPECT_EQ(H.Counts[1], 0u);
  EXPECT_EQ(H.Counts[2], 2u);
  EXPECT_EQ(H.Counts[3], 1u);
  EXPECT_DOUBLE_EQ(H.Sum, 1.0 + 3.0 * 2 + 100.0);
  EXPECT_DOUBLE_EQ(H.mean(), 107.0 / 4.0);
}

TEST(ObsHistogramData, MergeAddsBucketwise) {
  HistogramData A({1.0, 2.0});
  HistogramData B({1.0, 2.0});
  A.add(0.5);
  B.add(1.5);
  B.add(9.0);
  A.merge(B);
  EXPECT_EQ(A.TotalCount, 3u);
  EXPECT_EQ(A.Counts[0], 1u);
  EXPECT_EQ(A.Counts[1], 1u);
  EXPECT_EQ(A.Counts[2], 1u);
  EXPECT_DOUBLE_EQ(A.Sum, 0.5 + 1.5 + 9.0);
}

TEST(ObsHistogramData, QuantileInterpolatesAndClamps) {
  HistogramData H({1.0, 2.0, 4.0});
  EXPECT_DOUBLE_EQ(H.quantile(0.5), 0.0); // empty
  for (int I = 0; I < 100; ++I)
    H.add(1.5); // all mass in bucket (1, 2]
  const double P50 = H.quantile(0.5);
  EXPECT_GT(P50, 1.0);
  EXPECT_LE(P50, 2.0);
  // Overflow observations clamp to the last finite bound.
  HistogramData O({1.0, 2.0});
  O.add(50.0);
  EXPECT_DOUBLE_EQ(O.quantile(0.99), 2.0);
}

TEST(ObsHistogramData, BoundsLayouts) {
  const std::vector<double> L = log2Bounds(1e-6, 26);
  ASSERT_EQ(L.size(), 26u);
  EXPECT_DOUBLE_EQ(L[0], 1e-6);
  for (std::size_t I = 1; I < L.size(); ++I)
    EXPECT_DOUBLE_EQ(L[I], L[I - 1] * 2.0);
  EXPECT_GT(L.back(), 30.0); // spans out past 30s

  const std::vector<double> B = laneBounds(16);
  ASSERT_EQ(B.size(), 17u); // 0..16 inclusive
  for (int I = 0; I <= 16; ++I)
    EXPECT_DOUBLE_EQ(B[static_cast<std::size_t>(I)], double(I));
}

#if CFV_OBS

//===----------------------------------------------------------------------===//
// Sharded Histogram
//===----------------------------------------------------------------------===//

TEST(ObsHistogram, ShardMergeUnderConcurrentWriters) {
  Histogram H(laneBounds(16));
  constexpr int Threads = 48;
  constexpr int PerThread = 5000;
  std::atomic<bool> Go{false};
  std::vector<std::thread> Pool;
  Pool.reserve(Threads);
  for (int T = 0; T < Threads; ++T)
    Pool.emplace_back([&, T] {
      while (!Go.load(std::memory_order_acquire))
        std::this_thread::yield();
      for (int I = 0; I < PerThread; ++I)
        H.observe(double((T + I) % 17));
    });
  Go.store(true, std::memory_order_release);
  for (std::thread &T : Pool)
    T.join();
  const HistogramData S = H.snapshot();
  EXPECT_EQ(S.TotalCount, static_cast<uint64_t>(Threads) * PerThread);
  uint64_t BucketSum = 0;
  for (uint64_t C : S.Counts)
    BucketSum += C;
  EXPECT_EQ(BucketSum, S.TotalCount);
  // Every thread walks the same 17-value residue cycle, so each bucket
  // holds PerThread/17 observations per thread, +/- one cycle remainder.
  EXPECT_NEAR(double(S.Counts[5]), double(Threads) * PerThread / 17.0,
              double(Threads));
}

TEST(ObsHistogram, ObserveWithWeight) {
  Histogram H(laneBounds(4));
  H.observe(2.0, 10);
  const HistogramData S = H.snapshot();
  EXPECT_EQ(S.TotalCount, 10u);
  EXPECT_EQ(S.Counts[2], 10u);
  EXPECT_DOUBLE_EQ(S.Sum, 20.0);
}

//===----------------------------------------------------------------------===//
// MetricsRegistry
//===----------------------------------------------------------------------===//

TEST(ObsRegistry, CounterFindOrCreateIsStable) {
  MetricsRegistry &M = MetricsRegistry::instance();
  Counter &A = M.counter("test_reg_stable_total", "", "help text");
  Counter &B = M.counter("test_reg_stable_total");
  EXPECT_EQ(&A, &B) << "same name must yield the same counter";
  Counter &L = M.counter("test_reg_stable_total", "app=\"x\"");
  EXPECT_NE(&A, &L) << "distinct labels are distinct series";
  A.inc(7);
  bool Found = false;
  for (const MetricSample &S : M.collect())
    if (S.Name == "test_reg_stable_total" && S.Labels.empty()) {
      Found = true;
      EXPECT_EQ(S.K, MetricSample::Kind::Counter);
      EXPECT_DOUBLE_EQ(S.Value, 7.0);
      EXPECT_EQ(S.Help, "help text");
    }
  EXPECT_TRUE(Found);
}

TEST(ObsRegistry, ConcurrentFindOrCreateYieldsOneSeries) {
  // Many threads race the registry lookup for one name and all count on
  // whatever reference they get; the merged value must see every inc.
  MetricsRegistry &M = MetricsRegistry::instance();
  constexpr int Threads = 16;
  constexpr int PerThread = 2000;
  std::atomic<bool> Go{false};
  std::vector<std::thread> Pool;
  for (int T = 0; T < Threads; ++T)
    Pool.emplace_back([&] {
      while (!Go.load(std::memory_order_acquire))
        std::this_thread::yield();
      Counter &C = M.counter("test_reg_race_total");
      for (int I = 0; I < PerThread; ++I)
        C.inc();
    });
  Go.store(true, std::memory_order_release);
  for (std::thread &T : Pool)
    T.join();
  EXPECT_EQ(M.counter("test_reg_race_total").value(),
            static_cast<uint64_t>(Threads) * PerThread);
}

TEST(ObsRegistry, GaugeReadsLiveAndRemoveStopsIt) {
  MetricsRegistry &M = MetricsRegistry::instance();
  double Level = 3.5;
  M.gauge("test_reg_gauge", [&] { return Level; }, "", "a test gauge");
  auto Find = [&]() -> double {
    for (const MetricSample &S : M.collect())
      if (S.Name == "test_reg_gauge")
        return S.Value;
    return std::nan("");
  };
  EXPECT_DOUBLE_EQ(Find(), 3.5);
  Level = 9.0;
  EXPECT_DOUBLE_EQ(Find(), 9.0) << "gauges sample at collect time";
  M.removeGauge("test_reg_gauge");
  EXPECT_TRUE(std::isnan(Find())) << "removed gauge must not be collected";
}

TEST(ObsRegistry, PrometheusExpositionFormat) {
  MetricsRegistry &M = MetricsRegistry::instance();
  M.counter("test_expo_total", "app=\"demo\"", "Exposition test counter")
      .inc(3);
  M.histogram("test_expo_seconds", {0.5, 1.0}, "", "Exposition test hist")
      .observe(0.25, 4);
  const std::string Text = M.renderPrometheus();

  EXPECT_NE(Text.find("# HELP test_expo_total Exposition test counter"),
            std::string::npos)
      << Text;
  EXPECT_NE(Text.find("# TYPE test_expo_total counter"), std::string::npos);
  EXPECT_NE(Text.find("test_expo_total{app=\"demo\"} 3"), std::string::npos);

  EXPECT_NE(Text.find("# TYPE test_expo_seconds histogram"),
            std::string::npos);
  // Cumulative le buckets, the +Inf bucket equal to _count, and the sum.
  EXPECT_NE(Text.find("test_expo_seconds_bucket{le=\"0.5\"} 4"),
            std::string::npos)
      << Text;
  EXPECT_NE(Text.find("test_expo_seconds_bucket{le=\"+Inf\"} 4"),
            std::string::npos);
  EXPECT_NE(Text.find("test_expo_seconds_count 4"), std::string::npos);
  EXPECT_NE(Text.find("test_expo_seconds_sum 1"), std::string::npos);
}

TEST(ObsRegistry, HistogramBucketsAreCumulativeInExposition) {
  MetricsRegistry &M = MetricsRegistry::instance();
  Histogram &H =
      M.histogram("test_expo_cum", {1.0, 2.0, 4.0}, "", "cumulative check");
  H.observe(0.5);
  H.observe(1.5);
  H.observe(3.0);
  H.observe(99.0);
  const std::string Text = M.renderPrometheus();
  EXPECT_NE(Text.find("test_expo_cum_bucket{le=\"1\"} 1"), std::string::npos)
      << Text;
  EXPECT_NE(Text.find("test_expo_cum_bucket{le=\"2\"} 2"), std::string::npos);
  EXPECT_NE(Text.find("test_expo_cum_bucket{le=\"4\"} 3"), std::string::npos);
  EXPECT_NE(Text.find("test_expo_cum_bucket{le=\"+Inf\"} 4"),
            std::string::npos);
}

TEST(ObsRegistry, RenderJsonIsValidJson) {
  MetricsRegistry &M = MetricsRegistry::instance();
  M.counter("test_json_total").inc();
  M.histogram("test_json_seconds", log2Bounds(1e-6, 8)).observe(1e-4);
  const std::string Json = M.renderJson();
  const Expected<json::Value> V = json::parse(Json);
  ASSERT_TRUE(V.ok()) << V.status().toString() << "\n" << Json;
  // The stats-verb schema: three top-level maps.
  EXPECT_NE(Json.find("\"counters\""), std::string::npos);
  EXPECT_NE(Json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(Json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(Json.find("\"test_json_total\""), std::string::npos);
  // Histogram entries carry the derived quantiles the serve layer shows.
  EXPECT_NE(Json.find("\"p99\""), std::string::npos);
}

#endif // CFV_OBS

} // namespace
