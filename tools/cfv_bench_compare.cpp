//===- tools/cfv_bench_compare.cpp - Perf-regression gate -----------------===//
//
// Part of the cfv project: reproduction of Jiang & Agrawal, CGO 2018.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Compares two BENCH_<rev>.json files (scripts/bench_collect.sh output)
/// and fails when the newer one regressed past a noise threshold.  This
/// is the gate that turns the per-revision perf trajectory into an
/// enforced contract: CI collects a fresh BENCH file, compares it to the
/// committed BENCH_baseline.json, and a regression fails the job the same
/// way a broken test would.
///
/// Rows pair up by a stable key built from their identifying fields
/// (bench, name, app, version, family, tile_class, backend, clients,
/// threads, ...), never by position -- reordering benches or inserting a
/// new one must not misalign the comparison.  Each paired row is judged
/// on its highest-priority metric present in both files (real_ns,
/// cpu_ns, p99_seconds, ..., requests_per_second), with lower-is-better
/// or higher-is-better direction per metric.
///
/// Exit codes:
///   0  no regression beyond threshold (improvements always pass)
///   1  at least one regression beyond threshold
///   2  malformed input, schema mismatch, or usage error
///
/// Rows present in only one file warn to stderr but never fail: renaming
/// a bench or adding a new one is not a perf regression.
///
//===----------------------------------------------------------------------===//

#include "service/Json.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

using cfv::json::Value;

namespace {

/// Fields that identify a row rather than measure it.  The order here is
/// the order they appear in the key, so keys are stable and readable.
const char *const kKeyFields[] = {
    "bench",   "name",     "app",     "version", "part",
    "class",   "family",   "tile_class", "backend", "distribution",
    "shedding", "mode",    "numa",    "nodes",   "map",     "clients",
    "threads", "scale",    "n",
};

/// Metrics in gating priority order.  LowerIsBetter decides the
/// regression direction; Threshold (percent) is the default noise
/// allowance, overridable via --threshold / --metric NAME=PCT.
struct MetricSpec {
  const char *Name;
  bool LowerIsBetter;
};

const MetricSpec kMetrics[] = {
    {"real_ns", true},
    {"cpu_ns", true},
    {"p99_seconds", true},
    {"p95_seconds", true},
    {"p50_seconds", true},
    {"kernel_seconds", true},
    {"compute_seconds", true},
    {"wall_seconds", true},
    {"cold_seconds", true},
    {"warm_seconds", true},
    {"seconds", true},
    {"pattern_ns_per_elem", true},
    {"adaptive_ns_per_elem", true},
    {"ns_per_element", true},
    {"requests_per_second", false},
    {"speedup", false},
};

std::string rowKey(const Value &Row) {
  std::string Key;
  for (const char *F : kKeyFields) {
    const Value *V = Row.find(F);
    if (!V)
      continue;
    if (!Key.empty())
      Key += " ";
    Key += F;
    Key += "=";
    if (V->isString()) {
      Key += V->str();
    } else if (V->isNumber()) {
      char Buf[32];
      std::snprintf(Buf, sizeof(Buf), "%g", V->number());
      Key += Buf;
    } else if (V->isBool()) {
      Key += V->boolean() ? "true" : "false";
    }
  }
  return Key;
}

/// Reads a whole file; empty optional-style: Ok=false on I/O failure.
bool readFile(const char *Path, std::string &Out) {
  std::FILE *F = std::fopen(Path, "rb");
  if (!F)
    return false;
  char Buf[1 << 16];
  size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), F)) > 0)
    Out.append(Buf, N);
  const bool Ok = std::ferror(F) == 0;
  std::fclose(F);
  return Ok;
}

struct BenchFile {
  std::string Rev;
  int64_t Schema = 0;
  std::map<std::string, Value> Rows;
};

/// Parses one BENCH_<rev>.json into keyed rows.  Returns false (after
/// printing a diagnostic) on I/O failure, parse failure, or a missing
/// "results" array -- all exit-2 conditions for the gate.
bool loadBenchFile(const char *Path, BenchFile &Out) {
  std::string Text;
  if (!readFile(Path, Text)) {
    std::fprintf(stderr, "cfv_bench_compare: cannot read %s\n", Path);
    return false;
  }
  auto Parsed = cfv::json::parse(Text);
  if (!Parsed.ok()) {
    std::fprintf(stderr, "cfv_bench_compare: %s: %s\n", Path,
                 Parsed.status().toString().c_str());
    return false;
  }
  const Value &Doc = Parsed.value();
  const Value *Results = Doc.find("results");
  if (!Results || !Results->isArray()) {
    std::fprintf(stderr, "cfv_bench_compare: %s: no \"results\" array\n",
                 Path);
    return false;
  }
  Out.Rev = Doc.getString("rev", "unknown");
  Out.Schema = Doc.getInt("schema", 0);
  for (const Value &Row : Results->array()) {
    if (!Row.isObject())
      continue;
    const std::string Key = rowKey(Row);
    if (Key.empty()) {
      std::fprintf(stderr,
                   "cfv_bench_compare: %s: row with no identifying fields, "
                   "skipped\n",
                   Path);
      continue;
    }
    if (!Out.Rows.emplace(Key, Row).second)
      std::fprintf(stderr, "cfv_bench_compare: %s: duplicate row key '%s', "
                           "keeping the first\n",
                   Path, Key.c_str());
  }
  return true;
}

void usage() {
  std::fprintf(
      stderr,
      "usage: cfv_bench_compare [options] BASELINE.json CURRENT.json\n"
      "\n"
      "Compares two bench_collect.sh outputs; exits 1 when CURRENT\n"
      "regressed past the noise threshold on any paired row, 2 on\n"
      "malformed input or a bench-suite schema mismatch, 0 otherwise.\n"
      "\n"
      "  --threshold PCT     default noise allowance in percent (default 20)\n"
      "  --metric NAME=PCT   per-metric threshold override (repeatable)\n"
      "  --verbose           print every paired row, not just regressions\n");
}

} // namespace

int main(int argc, char **argv) {
  double DefaultThreshold = 20.0;
  std::map<std::string, double> PerMetric;
  bool Verbose = false;
  std::vector<const char *> Files;

  for (int I = 1; I < argc; ++I) {
    const char *A = argv[I];
    if (std::strcmp(A, "--threshold") == 0 && I + 1 < argc) {
      DefaultThreshold = std::atof(argv[++I]);
    } else if (std::strcmp(A, "--metric") == 0 && I + 1 < argc) {
      const char *Spec = argv[++I];
      const char *Eq = std::strchr(Spec, '=');
      if (!Eq || Eq == Spec) {
        std::fprintf(stderr, "cfv_bench_compare: bad --metric '%s' "
                             "(want NAME=PCT)\n",
                     Spec);
        return 2;
      }
      PerMetric[std::string(Spec, static_cast<size_t>(Eq - Spec))] =
          std::atof(Eq + 1);
    } else if (std::strcmp(A, "--verbose") == 0) {
      Verbose = true;
    } else if (std::strcmp(A, "--help") == 0 || std::strcmp(A, "-h") == 0) {
      usage();
      return 0;
    } else if (A[0] == '-') {
      std::fprintf(stderr, "cfv_bench_compare: unknown option '%s'\n", A);
      usage();
      return 2;
    } else {
      Files.push_back(A);
    }
  }
  if (Files.size() != 2) {
    usage();
    return 2;
  }

  BenchFile Base, Cur;
  if (!loadBenchFile(Files[0], Base) || !loadBenchFile(Files[1], Cur))
    return 2;

  // Cross-schema comparisons are meaningless: the suite itself changed
  // shape (different workloads, different request counts), so a delta
  // says nothing about the code.  Refuse rather than mislead.
  if (Base.Schema != Cur.Schema) {
    std::fprintf(stderr,
                 "cfv_bench_compare: bench-suite schema mismatch "
                 "(baseline %lld, current %lld); re-collect the baseline\n",
                 static_cast<long long>(Base.Schema),
                 static_cast<long long>(Cur.Schema));
    return 2;
  }

  std::printf("cfv_bench_compare: baseline %s (%zu rows) vs current %s "
              "(%zu rows), default threshold %.1f%%\n",
              Base.Rev.c_str(), Base.Rows.size(), Cur.Rev.c_str(),
              Cur.Rows.size(), DefaultThreshold);

  int Regressions = 0, Compared = 0, Improved = 0;
  for (const auto &KV : Base.Rows) {
    const auto It = Cur.Rows.find(KV.first);
    if (It == Cur.Rows.end()) {
      std::fprintf(stderr,
                   "cfv_bench_compare: warning: row missing from current: "
                   "%s\n",
                   KV.first.c_str());
      continue;
    }
    // Highest-priority metric present (and positive) in both rows.
    const MetricSpec *Spec = nullptr;
    double B = 0.0, C = 0.0;
    for (const MetricSpec &M : kMetrics) {
      const Value *BV = KV.second.find(M.Name);
      const Value *CV = It->second.find(M.Name);
      if (BV && CV && BV->isNumber() && CV->isNumber() &&
          BV->number() > 0.0 && CV->number() > 0.0) {
        Spec = &M;
        B = BV->number();
        C = CV->number();
        break;
      }
    }
    if (!Spec) {
      std::fprintf(stderr,
                   "cfv_bench_compare: warning: no comparable metric for "
                   "%s\n",
                   KV.first.c_str());
      continue;
    }
    ++Compared;
    // Positive delta = worse, in percent of baseline.
    const double Delta =
        (Spec->LowerIsBetter ? (C - B) : (B - C)) / B * 100.0;
    const auto Ovr = PerMetric.find(Spec->Name);
    const double Threshold =
        Ovr != PerMetric.end() ? Ovr->second : DefaultThreshold;
    const bool Regressed = Delta > Threshold;
    if (Regressed)
      ++Regressions;
    else if (Delta < 0.0)
      ++Improved;
    if (Regressed || Verbose)
      std::printf("%s  %s: %s %g -> %g (%+.1f%% %s, threshold %.1f%%)\n",
                  Regressed ? "REGRESSION" : "ok        ",
                  KV.first.c_str(), Spec->Name, B, C, Delta,
                  Spec->LowerIsBetter ? "slower" : "lost", Threshold);
  }
  for (const auto &KV : Cur.Rows)
    if (Base.Rows.find(KV.first) == Base.Rows.end())
      std::fprintf(stderr,
                   "cfv_bench_compare: warning: new row not in baseline: "
                   "%s\n",
                   KV.first.c_str());

  std::printf("cfv_bench_compare: %d compared, %d improved, %d regressed\n",
              Compared, Improved, Regressions);
  return Regressions > 0 ? 1 : 0;
}
