//===- bench/fig12_moldyn.cpp - Figure 12 harness -------------------------===//
//
// Part of the cfv project: reproduction of Jiang & Agrawal, CGO 2018.
//
//===----------------------------------------------------------------------===//
//
// Regenerates Figure 12 (a-b): 20 iterations of Molecular Dynamics on two
// inputs, four versions, with one neighbor-list rebuild (plus tiling, and
// grouping for the inspector/executor version) charged to the run as the
// paper does.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "apps/moldyn/Moldyn.h"
#include "util/TablePrinter.h"

#include <cmath>
#include <cstdlib>

using namespace cfv;
using namespace cfv::apps;
using namespace cfv::bench;

namespace {

double envScaleLocal() {
  const char *S = std::getenv("CFV_SCALE");
  if (!S)
    return 1.0;
  const double V = std::atof(S);
  return V < 0.01 ? 0.01 : (V > 1000.0 ? 1000.0 : V);
}

} // namespace

int main() {
  banner("Figure 12", "Molecular Dynamics: 20 iterations, four versions");
  const double Scale = envScaleLocal();
  std::printf("workload scale: %.2f (set CFV_SCALE to change)\n", Scale);

  struct Input {
    const char *Panel;
    const char *Name;
    const char *PaperInput;
    const char *PaperSize;
    int Cells;
  };
  // Cell counts scale with cbrt so atom counts scale linearly.
  const int C1 = std::max(4, static_cast<int>(10 * std::cbrt(Scale)));
  const int C2 = std::max(5, static_cast<int>(14 * std::cbrt(Scale)));
  const Input Inputs[] = {
      {"(a)", "16-3.0r-sim", "16-3.0r", "131K molecules / 11M pairs", C1},
      {"(b)", "32-3.0r-sim", "32-3.0r", "365K molecules / 30M pairs", C2}};

  const MdVersion Versions[] = {
      MdVersion::TilingSerial, MdVersion::TilingGrouping,
      MdVersion::TilingMask, MdVersion::TilingInvec};

  for (const Input &In : Inputs) {
    MoldynOptions O;
    O.Cells = In.Cells;

    TablePrinter T({"version", "computing(s)", "tiling(s)", "grouping(s)",
                    "total(s)", "vs serial", "notes"});
    double SerialTotal = 0.0;
    int64_t Pairs = 0;
    int32_t Atoms = 0;
    for (const MdVersion V : Versions) {
      const MoldynResult R = runMoldyn(O, V, /*Iterations=*/20);
      Pairs = R.Pairs;
      Atoms = R.Atoms;
      if (V == MdVersion::TilingSerial)
        SerialTotal = R.totalSeconds();
      std::string Notes;
      if (V == MdVersion::TilingMask)
        Notes = "simd_util=" + percent(R.SimdUtil);
      if (V == MdVersion::TilingInvec)
        Notes = "mean D1=" + TablePrinter::fmt(R.MeanD1, 3);
      T.addRow({versionName(V), TablePrinter::fmt(R.ComputeSeconds),
                TablePrinter::fmt(R.TilingSeconds),
                TablePrinter::fmt(R.GroupingSeconds),
                TablePrinter::fmt(R.totalSeconds()),
                speedup(SerialTotal, R.totalSeconds()), Notes});
    }
    sectionHeader(std::string(In.Panel) + " " + In.Name + "  [stand-in for " +
                  In.PaperInput + ", " + In.PaperSize + "]  atoms=" +
                  std::to_string(Atoms) + " pairs=" + std::to_string(Pairs) +
                  " iter=20");
    T.print();
  }

  paperNote(
      "tiling_and_grouping has the best computing time (2.69x / 5.46x over "
      "serial) but needs ~1000 iterations to amortize grouping; "
      "tiling_and_mask slower than serial (9-19% SIMD util; double "
      "reduction conflicts); tiling_and_invec close to grouping's compute "
      "speed at 2.59x / 4.43x over serial with no grouping cost");
  return 0;
}
