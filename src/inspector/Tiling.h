//===- inspector/Tiling.h - Cache tiling of irregular updates ---*- C++ -*-===//
//
// Part of the cfv project: reproduction of Jiang & Agrawal, CGO 2018.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The "tiling" half of the inspector/executor baseline (Chen et al.,
/// CGO'16): edges are re-ordered so that edges updating the same block of
/// the reduction array are processed together, keeping the randomly
/// accessed region cache-resident.  The paper's tiling_serial /
/// tiling_and_* versions all run on data prepared this way, and the
/// harnesses report the tiling wall time as a separate phase exactly as
/// Figures 8-12 do.
///
/// The inspector produces a *permutation* of edge ids rather than moving
/// payloads itself, so applications can apply it to any number of
/// parallel arrays (sources, destinations, weights, ...).
///
//===----------------------------------------------------------------------===//

#ifndef CFV_INSPECTOR_TILING_H
#define CFV_INSPECTOR_TILING_H

#include "util/AlignedAlloc.h"

#include <cstdint>
#include <memory>
#include <vector>

namespace cfv {

// The pattern subsystem sits above the inspector in the layering; the
// tiling only carries shared ownership of an opaque classification, so a
// forward declaration suffices.
namespace pattern {
struct PatternResult;
}

namespace inspector {

/// Result of the tiling inspector: a permutation of edge ids grouped into
/// tiles of destination blocks.
struct TilingResult {
  /// Permutation: position p of the tiled order holds original edge
  /// Order[p].
  AlignedVector<int32_t> Order;
  /// Tile boundaries into Order; tile t spans
  /// [TileBegin[t], TileBegin[t+1]).  Size = numTiles() + 1.
  std::vector<int64_t> TileBegin;
  /// Destination block size is 1 << BlockBits reduction-array entries.
  int BlockBits = 0;
  /// Per-tile index-stream classification (pattern/Classify.h), attached
  /// by whoever built the schedule when the pattern subsystem is
  /// enabled; nullptr when classification was skipped.  Shared ownership
  /// so executors holding a borrowed TilingResult keep the
  /// classification alive with it.  Set before the TilingResult is
  /// published to other threads (PreparedGraph attaches it under its
  /// artifact mutex); immutable afterwards.
  std::shared_ptr<const pattern::PatternResult> Pattern;

  int64_t numTiles() const {
    return static_cast<int64_t>(TileBegin.size()) - 1;
  }

  /// Resident bytes of the schedule, for cache byte-budget accounting
  /// (graph::PreparedGraph / service::DatasetCache).
  int64_t approxBytes() const {
    return static_cast<int64_t>(Order.size() * sizeof(int32_t) +
                                TileBegin.size() * sizeof(int64_t));
  }
};

/// Buckets \p NumEdges edges by destination block Dst[e] >> BlockBits
/// (stable counting sort, O(E + tiles)).  The default block of 2^16
/// entries keeps one float reduction block at 256 KiB, comfortably inside
/// a per-core L2.
TilingResult tileByDestination(const int32_t *Dst, int64_t NumEdges,
                               int32_t NumNodes, int BlockBits = 16);

/// Materializes one payload array in tiled order:
/// result[p] = Values[Order[p]].
template <typename T>
AlignedVector<T> applyPermutation(const AlignedVector<int32_t> &Order,
                                  const T *Values) {
  AlignedVector<T> Out(Order.size());
  for (std::size_t P = 0; P < Order.size(); ++P)
    Out[P] = Values[Order[P]];
  return Out;
}

} // namespace inspector
} // namespace cfv

#endif // CFV_INSPECTOR_TILING_H
