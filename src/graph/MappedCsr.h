//===- graph/MappedCsr.h - Out-of-core mmap'd graph backing -----*- C++ -*-===//
//
// Part of the cfv project: reproduction of Jiang & Agrawal, CGO 2018.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Out-of-core backing store for graphs too large to hold in RAM.  A
/// MappedCsr is one mmap'd file holding both representations every app
/// consumes, each 64-byte aligned:
///
///   header   magic "CFVM", version, flags, NumNodes, NumEdges
///   CSR      RowBegin i64[N+1], Col i32[M], Weight f32[M] (weighted only)
///   COO      Src i32[M], Dst i32[M], Weight f32[M] (weighted only)
///
/// The COO sections preserve the ORIGINAL edge order of the EdgeList the
/// file was written from, so an app that substitutes the mapped pointers
/// for EdgeList::Src/Dst/Weight computes bit-identical results: same
/// edges, same order, same floats.  The CSR sections are the exact
/// buildCsr() output, so frontier expansion over csrView() is likewise
/// bit-identical to the in-core path.
///
/// Residency is advisory, never load-bearing: a ResidencyWindow tracks a
/// byte budget (CFV_MAP_BYTES) over fixed-size segments, issuing
/// madvise(WILLNEED) ahead of the executor's tile schedule and
/// madvise(DONTNEED) on LRU eviction.  The kernel remains free to ignore
/// every hint; correctness only ever depends on the mapping itself.
///
/// Failure injection: opening evaluates the io.map_fail fault point, so
/// the chaos tier can prove callers degrade to the in-core loader.
///
//===----------------------------------------------------------------------===//

#ifndef CFV_GRAPH_MAPPEDCSR_H
#define CFV_GRAPH_MAPPEDCSR_H

#include "graph/Graph.h"
#include "util/Status.h"

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace cfv {
namespace graph {

/// The CFV_MAP_BYTES residency budget in bytes; 0 (the default) means
/// out-of-core execution is not requested and callers should stay on the
/// in-core path.
int64_t mapBytesBudget();

/// LRU residency window over an mmap'd range.  Advisory-only: tracks
/// which fixed-size segments have been advised WILLNEED, and when the
/// byte budget would overflow, advises the least-recently-touched
/// segment DONTNEED.  Thread-safe; cheap when the budget covers the file.
class ResidencyWindow {
public:
  /// Window over \p Bytes bytes starting at \p Base, \p BudgetBytes of
  /// which may be resident at once.  Segments are \p SegmentBytes long
  /// (clamped to at least one page).
  ResidencyWindow(void *Base, int64_t Bytes, int64_t BudgetBytes,
                  int64_t SegmentBytes = int64_t(1) << 20);

  /// Notes that [Offset, Offset+Len) is about to be read; advises
  /// WILLNEED on its segments and evicts LRU segments past the budget.
  void touch(int64_t Offset, int64_t Len);

  /// Counters for tests and metrics.
  int64_t advised() const;
  int64_t evictions() const;
  int64_t refaults() const; ///< touches of a previously evicted segment

private:
  void *Base;
  int64_t Bytes;
  int64_t BudgetSegments;
  int64_t SegmentBytes;

  mutable std::mutex Mu;
  /// Per-segment state: 0 never touched, >0 resident (LRU stamp),
  /// -1 evicted (a later touch is a refault).
  std::vector<int64_t> State;
  std::vector<int32_t> Lru; ///< resident segment ids, LRU first
  int64_t Stamp = 0;
  int64_t Advised_ = 0;
  int64_t Evictions_ = 0;
  int64_t Refaults_ = 0;
};

/// An open out-of-core graph mapping.  Immutable after open(); the COO
/// and CSR accessors return pointers into the mapping, valid for the
/// object's lifetime.
class MappedCsr {
public:
  ~MappedCsr();
  MappedCsr(const MappedCsr &) = delete;
  MappedCsr &operator=(const MappedCsr &) = delete;

  /// Serializes \p E to \p Path in the CFVM format.
  static Status write(const std::string &Path, const EdgeList &E);

  /// Maps \p Path.  Validates magic, version, and that the file is large
  /// enough for every section (truncated or odd-length files are an
  /// IoError, never a crash).  Evaluates the io.map_fail fault point.
  static Expected<std::shared_ptr<MappedCsr>> open(const std::string &Path);

  int32_t numNodes() const { return NumNodes; }
  int64_t numEdges() const { return NumEdges; }
  bool isWeighted() const { return Weighted; }

  // COO sections, original edge order.
  const int32_t *edgeSrc() const { return Src; }
  const int32_t *edgeDst() const { return Dst; }
  const float *edgeWeight() const { return EdgeWt; } ///< nullptr unweighted

  /// CSR view over the mapped sections.
  CsrView csrView() const;

  /// Advises the window that COO edges [Lo, Hi) are about to stream.
  void adviseEdgeRange(int64_t Lo, int64_t Hi) const;
  /// Advises the window that CSR rows of edges [Lo, Hi) are coming.
  void adviseCsrRange(int64_t Lo, int64_t Hi) const;

  /// Residency counters (zeros when no budget / no window).
  int64_t windowAdvised() const;
  int64_t windowEvictions() const;
  int64_t windowRefaults() const;

  /// Total mapped bytes (for cache accounting).
  int64_t mappedBytes() const { return MapBytes; }

private:
  MappedCsr() = default;

  void *Map = nullptr;
  int64_t MapBytes = 0;
  int32_t NumNodes = 0;
  int64_t NumEdges = 0;
  bool Weighted = false;

  const int64_t *RowBegin = nullptr;
  const int32_t *Col = nullptr;
  const float *CsrWt = nullptr;
  const int32_t *Src = nullptr;
  const int32_t *Dst = nullptr;
  const float *EdgeWt = nullptr;

  int64_t CooOffset = 0; ///< file offset of the Src section
  int64_t CsrOffset = 0; ///< file offset of the RowBegin section
  std::unique_ptr<ResidencyWindow> Window;
};

} // namespace graph
} // namespace cfv

#endif // CFV_GRAPH_MAPPEDCSR_H
