//===- util/Env.h - Environment-variable parsing ----------------*- C++ -*-===//
//
// Part of the cfv project (see AlignedAlloc.h for the project banner).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared parsing of the CFV_* environment knobs.  Before this header the
/// same strtol-and-shrug pattern was duplicated across CFV_THREADS
/// (core/ParallelEngine.cpp), CFV_VALIDATE (core/Guard.cpp), CFV_SCALE
/// (graph/Datasets.cpp), and CFV_PRIVATE_DENSE_MAX, each with subtly
/// different error behavior.  These helpers centralize the contract:
///
///   - unset variables return the caller's default silently;
///   - unparsable values return the default with a one-time stderr note
///     naming the variable and the offending text;
///   - out-of-range values clamp to the caller's [Min, Max] with a
///     one-time stderr note, so a typo degrades a run instead of
///     silently misconfiguring it.
///
/// Notes are emitted once per variable per process: the serving layer
/// resolves knobs per request and must not spam a misconfigured log.
///
//===----------------------------------------------------------------------===//

#ifndef CFV_UTIL_ENV_H
#define CFV_UTIL_ENV_H

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <set>
#include <string>

namespace cfv {
namespace env {

namespace detail {

/// Emits \p Msg to stderr at most once per \p Name per process.
inline void noteOnce(const char *Name, const std::string &Msg) {
  static std::mutex Mu;
  static std::set<std::string> Noted;
  std::lock_guard<std::mutex> Lock(Mu);
  if (Noted.insert(Name).second)
    std::fprintf(stderr, "cfv: %s\n", Msg.c_str());
}

} // namespace detail

/// Parses integer environment variable \p Name.  Unset or unparsable
/// values yield \p Default (with a stderr note when set but unparsable);
/// parsable values clamp to [\p Min, \p Max] with a note when they fall
/// outside.
inline long long intVar(const char *Name, long long Default, long long Min,
                        long long Max) {
  const char *V = std::getenv(Name);
  if (!V || !*V)
    return Default;
  char *End = nullptr;
  errno = 0;
  const long long X = std::strtoll(V, &End, 0);
  if (End == V || *End != '\0' || errno == ERANGE) {
    detail::noteOnce(Name, std::string(Name) + "='" + V +
                               "' is not an integer; using default " +
                               std::to_string(Default));
    return Default;
  }
  if (X < Min || X > Max) {
    const long long Clamped = X < Min ? Min : Max;
    detail::noteOnce(Name, std::string(Name) + "=" + std::to_string(X) +
                               " out of range [" + std::to_string(Min) + ", " +
                               std::to_string(Max) + "]; clamping to " +
                               std::to_string(Clamped));
    return Clamped;
  }
  return X;
}

/// Parses floating-point environment variable \p Name with the same
/// default / clamp / diagnose contract as intVar.
inline double floatVar(const char *Name, double Default, double Min,
                       double Max) {
  const char *V = std::getenv(Name);
  if (!V || !*V)
    return Default;
  char *End = nullptr;
  errno = 0;
  const double X = std::strtod(V, &End);
  if (End == V || *End != '\0' || errno == ERANGE) {
    detail::noteOnce(Name, std::string(Name) + "='" + V +
                               "' is not a number; using default " +
                               std::to_string(Default));
    return Default;
  }
  if (X < Min || X > Max) {
    const double Clamped = X < Min ? Min : Max;
    detail::noteOnce(Name, std::string(Name) + "=" + std::string(V) +
                               " out of range; clamping to " +
                               std::to_string(Clamped));
    return Clamped;
  }
  return X;
}

/// Parses boolean environment variable \p Name.  Unset or empty yields
/// \p Default; "0" / "off" / "no" / "false" disable; "1" / "on" / "yes" /
/// "true" enable; anything else yields \p Default with a stderr note.
inline bool boolVar(const char *Name, bool Default) {
  const char *V = std::getenv(Name);
  if (!V || !*V)
    return Default;
  const auto Is = [V](const char *S) { return std::strcmp(V, S) == 0; };
  if (Is("0") || Is("off") || Is("no") || Is("false"))
    return false;
  if (Is("1") || Is("on") || Is("yes") || Is("true"))
    return true;
  detail::noteOnce(Name, std::string(Name) + "='" + V +
                             "' is not a boolean; using default " +
                             (Default ? "on" : "off"));
  return Default;
}

} // namespace env
} // namespace cfv

#endif // CFV_UTIL_ENV_H
