//===- simd/CpuId.cpp - Runtime CPU capability detection ------------------===//
//
// Part of the cfv project: reproduction of Jiang & Agrawal, CGO 2018.
//
//===----------------------------------------------------------------------===//

#include "simd/CpuId.h"

#include <cstdint>

#if defined(__x86_64__) || defined(__i386__)
#include <cpuid.h>
#define CFV_CPUID_X86 1
#else
#define CFV_CPUID_X86 0
#endif

using namespace cfv;
using namespace cfv::simd;

namespace {

#if CFV_CPUID_X86

// CPUID.1.ECX bit 27: the OS has set CR4.OSXSAVE, making xgetbv legal.
constexpr uint32_t kOsxsaveBit = 1u << 27;
// CPUID.7.0.EBX feature bits.
constexpr uint32_t kAvx2Bit = 1u << 5;
constexpr uint32_t kAvx512FBit = 1u << 16;
constexpr uint32_t kAvx512CdBit = 1u << 28;
// XCR0 state-component bits AVX-512 execution requires: opmask (5),
// zmm_hi256 (6), hi16_zmm (7) -- plus the legacy sse/avx pair (1, 2)
// without which the upper bits are meaningless.
constexpr uint64_t kXcr0AvxState = (1u << 1) | (1u << 2);
constexpr uint64_t kXcr0ZmmState = (1u << 5) | (1u << 6) | (1u << 7);

uint64_t readXcr0() {
  // Plain `xgetbv` (xcr index in ecx) rather than the <immintrin.h>
  // _xgetbv wrapper, which requires compiling this file with -mxsave.
  uint32_t Eax, Edx;
  asm volatile(".byte 0x0f, 0x01, 0xd0" // xgetbv
               : "=a"(Eax), "=d"(Edx)
               : "c"(0));
  return (static_cast<uint64_t>(Edx) << 32) | Eax;
}

#endif // CFV_CPUID_X86

} // namespace

Caps simd::detectCaps() {
  Caps C;
#if CFV_CPUID_X86
  unsigned Eax = 0, Ebx = 0, Ecx = 0, Edx = 0;
  if (!__get_cpuid(1, &Eax, &Ebx, &Ecx, &Edx))
    return C;
  C.Osxsave = (Ecx & kOsxsaveBit) != 0;
  if (C.Osxsave) {
    const uint64_t Xcr0 = readXcr0();
    C.OsYmm = (Xcr0 & kXcr0AvxState) == kXcr0AvxState;
    C.OsZmm = (Xcr0 & (kXcr0AvxState | kXcr0ZmmState)) ==
              (kXcr0AvxState | kXcr0ZmmState);
  }
  if (__get_cpuid_count(7, 0, &Eax, &Ebx, &Ecx, &Edx)) {
    C.Avx2 = (Ebx & kAvx2Bit) != 0;
    C.Avx512F = (Ebx & kAvx512FBit) != 0;
    C.Avx512Cd = (Ebx & kAvx512CdBit) != 0;
  }
#endif
  return C;
}

const Caps &simd::caps() {
  static const Caps C = detectCaps();
  return C;
}
