//===- tests/mesh_test.cpp - Unstructured-mesh diffusion solver -----------===//
//
// Part of the cfv project: reproduction of Jiang & Agrawal, CGO 2018.
//
//===----------------------------------------------------------------------===//

#include "apps/mesh/MeshSolver.h"

#include "util/Prng.h"

#include "gtest/gtest.h"

#include <cmath>

using namespace cfv;
using namespace cfv::apps;

namespace {

constexpr MeshVersion kAllVersions[] = {MeshVersion::Serial,
                                        MeshVersion::Mask,
                                        MeshVersion::Invec,
                                        MeshVersion::Grouping};

AlignedVector<float> randomState(int32_t N, uint64_t Seed) {
  Xoshiro256 Rng(Seed);
  AlignedVector<float> U(N);
  for (float &X : U)
    X = Rng.nextFloat() * 10.0f;
  return U;
}

double sum(const AlignedVector<float> &U) {
  double S = 0.0;
  for (float X : U)
    S += X;
  return S;
}

} // namespace

TEST(Mesh, TriangulatedGridShape) {
  const Mesh M = makeTriangulatedGrid(10, 8, 1);
  EXPECT_EQ(M.NumCells, 80);
  // Horizontal 9*8 + vertical 10*7 + one diagonal per quad 9*7.
  EXPECT_EQ(M.numEdges(), 9 * 8 + 10 * 7 + 9 * 7);
  for (int64_t E = 0; E < M.numEdges(); ++E) {
    ASSERT_GE(M.EdgeA[E], 0);
    ASSERT_LT(M.EdgeA[E], 80);
    ASSERT_GE(M.EdgeB[E], 0);
    ASSERT_LT(M.EdgeB[E], 80);
    ASSERT_NE(M.EdgeA[E], M.EdgeB[E]) << "no self loops";
    ASSERT_GE(M.K[E], 0.05f);
    ASSERT_LT(M.K[E], 0.25f);
  }
}

TEST(Mesh, GridIsDeterministicPerSeed) {
  const Mesh A = makeTriangulatedGrid(6, 6, 42);
  const Mesh Bm = makeTriangulatedGrid(6, 6, 42);
  EXPECT_EQ(A.EdgeA, Bm.EdgeA);
  EXPECT_EQ(A.EdgeB, Bm.EdgeB);
  EXPECT_EQ(A.K, Bm.K);
}

class MeshVersions : public ::testing::TestWithParam<MeshVersion> {};

TEST_P(MeshVersions, MatchesSerialSweeps) {
  const Mesh M = makeTriangulatedGrid(24, 18, 7);
  const auto U0 = randomState(M.NumCells, 1);
  const MeshRunResult Ref =
      runMeshDiffusion(M, U0.data(), /*Sweeps=*/5, 0.4f,
                       MeshVersion::Serial);
  const MeshRunResult Got =
      runMeshDiffusion(M, U0.data(), 5, 0.4f, GetParam());
  for (int32_t C = 0; C < M.NumCells; ++C)
    ASSERT_NEAR(Got.U[C], Ref.U[C], 1e-3)
        << versionName(GetParam()) << " cell " << C;
}

TEST_P(MeshVersions, DiffusionConservesTotal) {
  // Fluxes are antisymmetric: sum(U) is invariant for every strategy.
  const Mesh M = makeTriangulatedGrid(16, 16, 9);
  const auto U0 = randomState(M.NumCells, 2);
  const double Before = sum(U0);
  const MeshRunResult R =
      runMeshDiffusion(M, U0.data(), 10, 0.4f, GetParam());
  EXPECT_NEAR(sum(R.U), Before, 1e-2 + 1e-5 * std::fabs(Before))
      << versionName(GetParam());
}

TEST_P(MeshVersions, RelaxesTowardUniform) {
  const Mesh M = makeTriangulatedGrid(12, 12, 11);
  AlignedVector<float> U0(M.NumCells, 0.0f);
  U0[0] = 1000.0f; // a hot spot
  auto Variance = [&](const AlignedVector<float> &U) {
    const double Mean = sum(U) / U.size();
    double Var = 0.0;
    for (float X : U)
      Var += (X - Mean) * (X - Mean);
    return Var;
  };
  const double V0 = Variance(U0);
  const MeshRunResult R =
      runMeshDiffusion(M, U0.data(), 50, 0.4f, GetParam());
  EXPECT_LT(Variance(R.U), 0.5 * V0)
      << versionName(GetParam()) << ": diffusion must smooth the field";
}

TEST_P(MeshVersions, ZeroSweepsIsIdentity) {
  const Mesh M = makeTriangulatedGrid(4, 4, 13);
  const auto U0 = randomState(M.NumCells, 3);
  const MeshRunResult R =
      runMeshDiffusion(M, U0.data(), 0, 0.4f, GetParam());
  EXPECT_EQ(R.U, U0);
}

INSTANTIATE_TEST_SUITE_P(AllVersions, MeshVersions,
                         ::testing::ValuesIn(kAllVersions),
                         [](const auto &Info) {
                           return versionName(Info.param);
                         });

TEST(Mesh, LatticeEdgesConflictHeavily) {
  // Consecutive lattice edges share endpoints: the mask version must see
  // real conflict pressure and invec must report D1 > 0.
  const Mesh M = makeTriangulatedGrid(32, 32, 17);
  const auto U0 = randomState(M.NumCells, 4);
  const MeshRunResult Mask =
      runMeshDiffusion(M, U0.data(), 2, 0.4f, MeshVersion::Mask);
  EXPECT_LT(Mask.SimdUtil, 0.75);
  const MeshRunResult Invec =
      runMeshDiffusion(M, U0.data(), 2, 0.4f, MeshVersion::Invec);
  EXPECT_GT(Invec.MeanD1, 0.5);
  const MeshRunResult Grp =
      runMeshDiffusion(M, U0.data(), 2, 0.4f, MeshVersion::Grouping);
  EXPECT_GT(Grp.GroupSeconds, 0.0);
}
