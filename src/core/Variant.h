//===- core/Variant.h - Per-backend compilation variant ---------*- C++ -*-===//
//
// Part of the cfv project: reproduction of Jiang & Agrawal, CGO 2018.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The fat-binary build compiles every application translation unit
/// twice: once at the baseline architecture (simd::NativeBackend resolves
/// to backend::Scalar) and once with -mavx512f -mavx512cd (resolves to
/// backend::Avx512).  Each compilation places its kernels in a distinct
/// namespace so both sets can coexist in one binary and be selected at
/// runtime by core::Dispatch:
///
///   cfv::apps::b_scalar::runPageRank   baseline-arch instantiation
///   cfv::apps::b_avx512::runPageRank   AVX-512 instantiation
///
/// CFV_VARIANT_NS names the namespace for the current compilation and
/// CFV_VARIANT_PRIMARY marks the single compilation that also emits the
/// backend-independent definitions (version-name tables, scalar-only
/// helpers, class members).  The build system defines both for the
/// AVX-512 object library; everything else gets the defaults below.
///
//===----------------------------------------------------------------------===//

#ifndef CFV_CORE_VARIANT_H
#define CFV_CORE_VARIANT_H

#include "simd/Backend.h"

#ifndef CFV_VARIANT_NS
#define CFV_VARIANT_NS b_scalar
#endif

#ifndef CFV_VARIANT_PRIMARY
#define CFV_VARIANT_PRIMARY 1
#endif

// Catch build-system misconfiguration: the AVX-512 variant namespace is
// meaningless unless this TU is actually compiled with AVX-512F/CD.
#define CFV_VARIANT_EXPECT_AVX512_b_scalar 0
#define CFV_VARIANT_EXPECT_AVX512_b_avx512 1
#define CFV_VARIANT_CAT(A, B) A##B
#define CFV_VARIANT_EXPECT(NS) CFV_VARIANT_CAT(CFV_VARIANT_EXPECT_AVX512_, NS)
#if CFV_VARIANT_EXPECT(CFV_VARIANT_NS) && !CFV_HAVE_AVX512
#error "b_avx512 variant must be compiled with -mavx512f -mavx512cd"
#endif

#endif // CFV_CORE_VARIANT_H
