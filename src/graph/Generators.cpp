//===- graph/Generators.cpp - Synthetic graph generators -----------------===//
//
// Part of the cfv project: reproduction of Jiang & Agrawal, CGO 2018.
//
//===----------------------------------------------------------------------===//

#include "graph/Generators.h"

#include "util/Prng.h"

#include <cassert>

using namespace cfv;
using namespace cfv::graph;

static void attachWeights(EdgeList &E, Xoshiro256 &Rng, float MaxWeight) {
  if (MaxWeight <= 0.0f)
    return;
  E.Weight.resize(E.numEdges());
  for (float &W : E.Weight)
    W = 1.0f + Rng.nextFloat() * (MaxWeight - 1.0f);
}

EdgeList graph::genRmat(int ScaleBits, int64_t NumEdges, uint64_t Seed,
                        float MaxWeight, double A, double B, double C) {
  assert(ScaleBits > 0 && ScaleBits < 31 && "scale out of range");
  assert(A + B + C < 1.0 && "quadrant probabilities must leave room for D");
  EdgeList E;
  E.NumNodes = int32_t(1) << ScaleBits;
  E.Src.resize(NumEdges);
  E.Dst.resize(NumEdges);

  Xoshiro256 Rng(Seed);
  for (int64_t I = 0; I < NumEdges; ++I) {
    uint32_t Row = 0, Col = 0;
    for (int Bit = 0; Bit < ScaleBits; ++Bit) {
      const double R = Rng.nextDouble();
      Row <<= 1;
      Col <<= 1;
      if (R < A) {
        // top-left: nothing to add
      } else if (R < A + B) {
        Col |= 1;
      } else if (R < A + B + C) {
        Row |= 1;
      } else {
        Row |= 1;
        Col |= 1;
      }
    }
    E.Src[I] = static_cast<int32_t>(Row);
    E.Dst[I] = static_cast<int32_t>(Col);
  }
  attachWeights(E, Rng, MaxWeight);
  return E;
}

EdgeList graph::genClustered(int ScaleBits, int64_t NumEdges, uint64_t Seed,
                             int32_t Window, double LongLinkFraction,
                             float MaxWeight) {
  assert(ScaleBits > 0 && ScaleBits < 31 && "scale out of range");
  assert(Window > 0 && "window must be positive");
  EdgeList E;
  E.NumNodes = int32_t(1) << ScaleBits;
  E.Src.resize(NumEdges);
  E.Dst.resize(NumEdges);

  Xoshiro256 Rng(Seed);
  const uint32_t N = static_cast<uint32_t>(E.NumNodes);
  // Sources walk the vertex range so that bursts of edges from one
  // neighborhood appear consecutively, as a CSR edge list of a
  // co-purchase graph does.
  for (int64_t I = 0; I < NumEdges; ++I) {
    const uint32_t Community =
        static_cast<uint32_t>((static_cast<uint64_t>(I) * N) /
                              static_cast<uint64_t>(NumEdges));
    const uint32_t Src =
        (Community + Rng.nextBounded(static_cast<uint32_t>(Window))) % N;
    uint32_t Dst;
    if (Rng.nextDouble() < LongLinkFraction)
      Dst = Rng.nextBounded(N);
    else
      Dst = (Src + 1 + Rng.nextBounded(static_cast<uint32_t>(Window))) % N;
    E.Src[I] = static_cast<int32_t>(Src);
    E.Dst[I] = static_cast<int32_t>(Dst);
  }
  attachWeights(E, Rng, MaxWeight);
  return E;
}

EdgeList graph::genUniform(int ScaleBits, int64_t NumEdges, uint64_t Seed,
                           float MaxWeight) {
  assert(ScaleBits > 0 && ScaleBits < 31 && "scale out of range");
  EdgeList E;
  E.NumNodes = int32_t(1) << ScaleBits;
  E.Src.resize(NumEdges);
  E.Dst.resize(NumEdges);

  Xoshiro256 Rng(Seed);
  const uint32_t N = static_cast<uint32_t>(E.NumNodes);
  for (int64_t I = 0; I < NumEdges; ++I) {
    E.Src[I] = static_cast<int32_t>(Rng.nextBounded(N));
    E.Dst[I] = static_cast<int32_t>(Rng.nextBounded(N));
  }
  attachWeights(E, Rng, MaxWeight);
  return E;
}
