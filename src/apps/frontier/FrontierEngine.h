//===- apps/frontier/FrontierEngine.h - Wave-frontier algorithms -*- C++ -*-=//
//
// Part of the cfv project: reproduction of Jiang & Agrawal, CGO 2018.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The shared engine behind the paper's three wave-frontier graph
/// algorithms (Figures 9-11): SSSP, SSWP and WCC.  All three follow
/// Figure 2's pattern -- iterate over the active edges, compute a
/// candidate value from the source endpoint, and relax the destination
/// with an associative operator (min for SSSP/WCC, max for SSWP), adding
/// improved destinations to the next frontier.  The engine implements the
/// four versions the paper evaluates:
///
///   nontiling_serial     Figure 2 verbatim.
///   nontiling_and_mask   conflict-masking (Figure 3) on the active edges.
///   nontiling_and_invec  in-vector reduction (invec_min / invec_max).
///   tiling_and_grouping  one up-front tiling+grouping of the full edge
///                        list, reused every iteration by scanning groups
///                        and masking off lanes whose source is inactive
///                        (the reuse technique of Jiang et al., ICS'16);
///                        its preparation cost is reported separately.
///
/// The relaxations are exact (min/max never reassociate lossily), so all
/// four versions produce bit-identical results.
///
//===----------------------------------------------------------------------===//

#ifndef CFV_APPS_FRONTIER_FRONTIERENGINE_H
#define CFV_APPS_FRONTIER_FRONTIERENGINE_H

#include "core/RunOptions.h"
#include "graph/Graph.h"
#include "util/Stats.h"

namespace cfv {
namespace apps {

/// Which wave-frontier application to run.  BFS (level = hop count) is
/// SSSP over unit weights, included as the classic wave-frontier kernel
/// the paper's §1 cites.
enum class FrApp { Sssp, Sswp, Wcc, Bfs };

/// The four execution strategies of Figures 9-11.
enum class FrVersion {
  NontilingSerial,
  NontilingMask,
  NontilingInvec,
  TilingGrouping,
};

const char *appName(FrApp A);
const char *versionName(FrVersion V);

struct FrontierOptions : core::RunOptions {
  FrontierOptions() { MaxIterations = 1000; }

  int32_t Source = 0; ///< ignored by WCC (all vertices start active)
  int TileBlockBits = 16;
};

struct FrontierResult {
  /// Converged per-vertex value: distance (SSSP), width (SSWP), or
  /// component label (WCC).
  AlignedVector<float> Value;
  int Iterations = 0;
  /// Total active edges relaxed across all iterations.
  int64_t EdgesProcessed = 0;
  double ComputeSeconds = 0.0;
  double TilingSeconds = 0.0;
  double GroupingSeconds = 0.0;
  double SimdUtil = 1.0; ///< mask version only
  double MeanD1 = 0.0;   ///< invec version only
  /// Whether RunOptions::DeadlineSteadySeconds stopped iteration early.
  bool TimedOut = false;
  /// Per-pass D1 / useful-lane distributions (empty unless the version
  /// that ran records them and observability is compiled in).
  LaneHistogram D1Hist;
  LaneHistogram UtilHist;

  double totalSeconds() const {
    return ComputeSeconds + TilingSeconds + GroupingSeconds;
  }
};

/// Runs application \p A on \p G with strategy \p V until the frontier
/// empties.  SSSP and SSWP require edge weights on \p G.
FrontierResult runFrontier(const graph::EdgeList &G, FrApp A, FrVersion V,
                           const FrontierOptions &O = {});

} // namespace apps
} // namespace cfv

#endif // CFV_APPS_FRONTIER_FRONTIERENGINE_H
