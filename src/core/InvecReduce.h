//===- core/InvecReduce.h - In-vector reduction (Algorithms 1 & 2) -*- C++ -*-//
//
// Part of the cfv project: reproduction of Jiang & Agrawal, CGO 2018.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's primary contribution.  Given a vector of reduction indices
/// and one or more payload vectors, lanes that share an index are merged
/// *inside the register* using the associative operator, leaving partial
/// results on a conflict-free subset of lanes that can be scattered to
/// memory safely.
///
/// invecReduce    implements Algorithm 1: every group of duplicate lanes
///                is folded into its first occurrence.  Cost model:
///                about 2 + 8*D1 instructions, where D1 is the number of
///                distinct conflicting lanes (§3.3).
/// invecReduce2   implements Algorithm 2: the lanes are split into two
///                conflict-free subsets destined for two reduction arrays;
///                only third-and-later occurrences are folded.  Cost
///                about 7 + 8*D2 with D2 <= floor(16/3) (§3.4).
///
/// Note: the paper's Algorithm 1 pseudo-code compares the *data* vector
/// against vdata[i]; grouping is by reduction index (as Figures 4-6 and
/// the accompanying text make clear), so these implementations compare the
/// *index* vector.
///
//===----------------------------------------------------------------------===//

#ifndef CFV_CORE_INVECREDUCE_H
#define CFV_CORE_INVECREDUCE_H

#include "core/Guard.h"
#include "simd/Conflict.h"
#include "simd/Mask.h"
#include "simd/Ops.h"
#include "simd/Reduce.h"
#include "simd/Traits.h"
#include "simd/Vec.h"

#include <cassert>
#include <cstddef>
#include <tuple>

namespace cfv {
namespace core {

using simd::Mask16;

/// Outcome of one Algorithm 2 invocation.
struct Invec2Result {
  /// First conflict-free subset: scatter to the primary reduction array.
  Mask16 Ret1;
  /// Second conflict-free subset: accumulate into the auxiliary reduction
  /// array (lanes carry pairwise-distinct indices).
  Mask16 Ret2;
  /// Merge iterations executed (the paper's D2).
  int Distinct;
};

/// Outcome of one Algorithm 1 invocation.
struct InvecResult {
  /// Conflict-free lanes now holding the partial reduction results; these
  /// are the lanes the caller scatters to the reduction array.
  Mask16 Ret;
  /// Number of merge iterations executed == number of distinct conflicting
  /// lanes (the paper's D1).  Zero when the indices were already distinct.
  int Distinct;
};

namespace detail {

/// Folds the \p MReduce lanes of one payload vector and deposits the
/// result into the single lane selected by \p Pos.
template <typename Op, typename V>
inline void foldPayload(Mask16 MReduce, Mask16 Pos, V &Data) {
  auto Res = simd::maskedReduce<Op>(MReduce, Data);
  Data = V::blend(Pos, Data, V::broadcast(Res));
}

/// Algorithm 1 proper; the public invecReduce wraps this with the
/// optional differential guard.
template <typename Op, typename IdxVec, typename... Vs>
inline InvecResult invecReduceImpl(Mask16 Active, IdxVec Idx, Vs &...Data) {
  // Line 1: the non-conflicting subset; holds every index's first
  // occurrence and will absorb the merged values.
  const Mask16 Ret = simd::conflictFreeSubset(Active, Idx);

  // Lines 3-9: iterate over the conflicting lanes, lowest first.
  Mask16 Todo = static_cast<Mask16>(Active & ~Ret);
  int Distinct = 0;
  while (Todo) {
    const int I = simd::firstLane(Todo);
    // All active lanes holding the same index as lane I ...
    const IdxVec Pivot = Idx.broadcastLane(I);
    const Mask16 MReduce = Idx.maskEq(Active, Pivot);
    assert((MReduce & Ret) != 0 && "group must contain its first occurrence");
    // ... merge into the first of them (a Ret lane by construction).
    const Mask16 Pos = simd::lowestBit(MReduce);
    (detail::foldPayload<Op>(MReduce, Pos, Data), ...);
    Todo = static_cast<Mask16>(Todo & ~MReduce);
    ++Distinct;
  }
  return {Ret, Distinct};
}

/// Algorithm 2 proper; the public invecReduce2 wraps this with the
/// optional differential guard.
template <typename Op, typename IdxVec, typename... Vs>
inline Invec2Result invecReduce2Impl(Mask16 Active, IdxVec Idx, Vs &...Data) {
  const Mask16 Ret1 = simd::conflictFreeSubset(Active, Idx);
  const Mask16 Ret2 = simd::conflictFreeSubset(
      static_cast<Mask16>(Active & ~Ret1), Idx);

  // Lanes eligible to be merged: everything active except subset 2, whose
  // lanes must survive unmodified (paper line 6's "excluding those in the
  // second subset").
  const Mask16 Eligible = static_cast<Mask16>(Active & ~Ret2);

  Mask16 Todo = static_cast<Mask16>(Active & ~Ret1 & ~Ret2);
  int Distinct = 0;
  while (Todo) {
    const int I = simd::firstLane(Todo);
    const IdxVec Pivot = Idx.broadcastLane(I);
    const Mask16 MReduce = Idx.maskEq(Eligible, Pivot);
    assert((simd::lowestBit(MReduce) & Ret1) != 0 &&
           "merge target must be a subset-1 lane");
    const Mask16 Pos = simd::lowestBit(MReduce);
    (detail::foldPayload<Op>(MReduce, Pos, Data), ...);
    Todo = static_cast<Mask16>(Todo & ~MReduce);
    ++Distinct;
  }
  return {Ret1, Ret2, Distinct};
}

/// Guarded Algorithm 1: snapshot the lanes, run the real kernel, then
/// replay the merge on plain arrays and abort on disagreement.
template <typename Op, typename IdxVec, typename... Vs>
inline InvecResult invecReduceGuarded(Mask16 Active, IdxVec Idx, Vs &...Data) {
  using IdxT = guard::LaneT<IdxVec>;
  constexpr int NumLanes = guard::kLaneCount<IdxVec>;
  alignas(64) IdxT IdxA[simd::kMaxLanes] = {};
  Idx.store(IdxA);
  std::tuple<guard::Lanes<Vs>...> Before;
  guard::snapshot(Before, Data...);

  const InvecResult R = invecReduceImpl<Op>(Active, Idx, Data...);

  const guard::RefGroups G =
      guard::analyze(/*Alg2=*/false, Active, IdxA, NumLanes);
  if (R.Ret != G.Ret1)
    guard::reportMaskMismatch("invec_reduce", Op::name(), "ret", G.Ret1,
                              R.Ret);
  if (R.Distinct != G.Distinct)
    guard::reportCountMismatch("invec_reduce", Op::name(), G.Distinct,
                               R.Distinct);
  guard::checkPayloads<Op>("invec_reduce", G, IdxA, NumLanes, Before,
                           Data...);
  return R;
}

/// Guarded Algorithm 2; see invecReduceGuarded.
template <typename Op, typename IdxVec, typename... Vs>
inline Invec2Result invecReduce2Guarded(Mask16 Active, IdxVec Idx,
                                        Vs &...Data) {
  using IdxT = guard::LaneT<IdxVec>;
  constexpr int NumLanes = guard::kLaneCount<IdxVec>;
  alignas(64) IdxT IdxA[simd::kMaxLanes] = {};
  Idx.store(IdxA);
  std::tuple<guard::Lanes<Vs>...> Before;
  guard::snapshot(Before, Data...);

  const Invec2Result R = invecReduce2Impl<Op>(Active, Idx, Data...);

  const guard::RefGroups G =
      guard::analyze(/*Alg2=*/true, Active, IdxA, NumLanes);
  if (R.Ret1 != G.Ret1)
    guard::reportMaskMismatch("invec_reduce2", Op::name(), "ret1", G.Ret1,
                              R.Ret1);
  if (R.Ret2 != G.Ret2)
    guard::reportMaskMismatch("invec_reduce2", Op::name(), "ret2", G.Ret2,
                              R.Ret2);
  if (R.Distinct != G.Distinct)
    guard::reportCountMismatch("invec_reduce2", Op::name(), G.Distinct,
                               R.Distinct);
  guard::checkPayloads<Op>("invec_reduce2", G, IdxA, NumLanes, Before,
                           Data...);
  return R;
}

} // namespace detail

/// Algorithm 1.  Reduces every group of \p Active lanes sharing an index
/// in \p Idx into the group's first lane, in place, across all payload
/// vectors.  Returns the conflict-free scatter mask and the D1 count.
///
/// All payloads are reduced with the same operator \p Op under the same
/// index vector; pass several payloads for multi-column reductions (e.g.
/// aggregation's count/sum/sum-of-squares).
///
/// Under CFV_VALIDATE=1 every invocation is differentially checked
/// against a scalar-order replay (core/Guard.h) and mismatches abort.
template <typename Op, typename IdxVec, typename... Vs>
inline InvecResult invecReduce(Mask16 Active, IdxVec Idx, Vs &...Data) {
  // Only the low IdxVec::kLanes bits are significant: a mask built for a
  // wider shape (e.g. simd::kAllLanes64 handed to an AVX2 4-lane vector)
  // must not spin the merge loop on lanes the vector does not have.
  Active = static_cast<Mask16>(Active & ((1u << IdxVec::kLanes) - 1u));
  if (guard::enabled())
    return detail::invecReduceGuarded<Op>(Active, Idx, Data...);
  return detail::invecReduceImpl<Op>(Active, Idx, Data...);
}

/// Algorithm 2.  Splits the active lanes into two conflict-free subsets;
/// third-and-later occurrences of an index are folded into the subset-1
/// lane while subset-2 lanes are left untouched for the caller to
/// accumulate into an auxiliary array (see accumulateScatter/mergeAux).
///
/// Under CFV_VALIDATE=1 every invocation is differentially checked
/// against a scalar-order replay (core/Guard.h) and mismatches abort.
template <typename Op, typename IdxVec, typename... Vs>
inline Invec2Result invecReduce2(Mask16 Active, IdxVec Idx, Vs &...Data) {
  // See invecReduce: drop phantom bits beyond the vector's lane count.
  Active = static_cast<Mask16>(Active & ((1u << IdxVec::kLanes) - 1u));
  if (guard::enabled())
    return detail::invecReduce2Guarded<Op>(Active, Idx, Data...);
  return detail::invecReduce2Impl<Op>(Active, Idx, Data...);
}

/// Read-modify-write scatter: Array[Idx[l]] = Op(Array[Idx[l]], Data[l])
/// for every lane l in \p M.  The lanes in \p M must carry pairwise
/// distinct indices (e.g. a mask returned by invecReduce/invecReduce2),
/// otherwise the gather-combine-scatter is not atomic with respect to
/// in-register duplicates.
template <typename Op, typename IdxVec, typename V, typename T>
inline void accumulateScatter(Mask16 M, IdxVec Idx, V Data, T *Array) {
  assert((simd::conflictFreeSubset(M, Idx) == M) &&
         "accumulateScatter requires pairwise distinct indices");
  V Old = V::maskGather(V::broadcast(Op::template identity<T>()), M, Array,
                        Idx);
  V New = Op::template combine<V>(Old, Data);
  New.maskScatter(M, Array, Idx);
}

/// Folds an auxiliary reduction array back into the primary one and
/// resets the auxiliary entries to the operator's identity, completing
/// the Algorithm 2 protocol ("the two reduction arrays need to be merged
/// later to achieve the final results", §3.4).
template <typename Op, typename T>
inline void mergeAux(T *Main, T *Aux, std::size_t N) {
  const T Id = Op::template identity<T>();
  for (std::size_t I = 0; I < N; ++I) {
    Main[I] = Op::template apply<T>(Main[I], Aux[I]);
    Aux[I] = Id;
  }
}

/// Fills \p Array with the operator's identity (initializing an auxiliary
/// reduction array).
template <typename Op, typename T>
inline void fillIdentity(T *Array, std::size_t N) {
  const T Id = Op::template identity<T>();
  for (std::size_t I = 0; I < N; ++I)
    Array[I] = Id;
}

} // namespace core
} // namespace cfv

#endif // CFV_CORE_INVECREDUCE_H
