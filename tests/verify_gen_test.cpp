//===- tests/verify_gen_test.cpp - Adversarial generator library ---------===//
//
// Part of the cfv project: reproduction of Jiang & Agrawal, CGO 2018.
//
//===----------------------------------------------------------------------===//
//
// Properties of the verify/Gen.h generator library: determinism (spec ->
// workload is pure), per-pattern shape guarantees, enumeration coverage
// (every pattern and every tail residue reached), SNAP lifting validity,
// and exact corpus round-trips through the hexfloat format.
//
//===----------------------------------------------------------------------===//

#include "verify/Gen.h"

#include "gtest/gtest.h"

#include <cmath>
#include <cstdio>
#include <set>
#include <string>

using namespace cfv;
using namespace cfv::verify;

namespace {

std::string tempPath(const char *Name) {
  return std::string(::testing::TempDir()) + Name;
}

TEST(VerifyGen, DeterministicAcrossCalls) {
  for (uint64_t CaseNo : {0u, 7u, 23u, 100u}) {
    const CaseSpec S = specForCase(42, CaseNo);
    const Workload A = genWorkload(S);
    const Workload B = genWorkload(S);
    ASSERT_EQ(A.Idx.size(), B.Idx.size());
    for (std::size_t I = 0; I < A.Idx.size(); ++I) {
      EXPECT_EQ(A.Idx[I], B.Idx[I]);
      // Bitwise: the generators must not depend on ambient FP state.
      EXPECT_EQ(std::signbit(A.Val[I]), std::signbit(B.Val[I]));
      EXPECT_EQ(A.Val[I], B.Val[I]);
    }
  }
}

TEST(VerifyGen, SeedChangesTheStream) {
  const CaseSpec A = specForCase(1, 50);
  const CaseSpec B = specForCase(2, 50);
  EXPECT_NE(A.Seed, B.Seed);
}

TEST(VerifyGen, IndicesAlwaysInUniverse) {
  for (uint64_t CaseNo = 0; CaseNo < 200; ++CaseNo) {
    const Workload W = genWorkload(specForCase(0xABCDEF, CaseNo));
    ASSERT_EQ(W.Idx.size(), static_cast<std::size_t>(W.Spec.N));
    for (int32_t I : W.Idx) {
      ASSERT_GE(I, 0);
      ASSERT_LT(I, W.Spec.Universe);
    }
  }
}

TEST(VerifyGen, ValuesAlwaysFinite) {
  // The oracle's notion of agreement is undefined for NaN and the
  // tolerance model assumes finite sums, so no generator may emit them.
  for (uint64_t CaseNo = 0; CaseNo < 200; ++CaseNo) {
    const Workload W = genWorkload(specForCase(99, CaseNo));
    for (float V : W.Val)
      ASSERT_TRUE(std::isfinite(V)) << "case " << CaseNo;
  }
}

TEST(VerifyGen, AllConflictHitsOneIndex) {
  CaseSpec S;
  S.Seed = 7;
  S.N = 100;
  S.Universe = 64;
  S.Idx = IdxPattern::AllConflict;
  const Workload W = genWorkload(S);
  std::set<int32_t> Distinct(W.Idx.begin(), W.Idx.end());
  EXPECT_EQ(Distinct.size(), 1u);
}

TEST(VerifyGen, AlternatingPairUsesTwoIndices) {
  CaseSpec S;
  S.Seed = 8;
  S.N = 64;
  S.Universe = 64;
  S.Idx = IdxPattern::AlternatingPair;
  const Workload W = genWorkload(S);
  std::set<int32_t> Distinct(W.Idx.begin(), W.Idx.end());
  EXPECT_LE(Distinct.size(), 2u);
  // Strict alternation: position parity determines the index.
  for (int64_t I = 2; I < S.N; ++I)
    EXPECT_EQ(W.Idx[I], W.Idx[I - 2]);
}

TEST(VerifyGen, MonotoneIsSorted) {
  CaseSpec S;
  S.Seed = 9;
  S.N = 200;
  S.Universe = 509;
  S.Idx = IdxPattern::Monotone;
  const Workload W = genWorkload(S);
  for (int64_t I = 1; I < S.N; ++I)
    EXPECT_LE(W.Idx[I - 1], W.Idx[I]);
}

TEST(VerifyGen, DistinctRoundRobinIsConflictFree) {
  CaseSpec S;
  S.Seed = 10;
  S.N = 64;
  S.Universe = 64;
  S.Idx = IdxPattern::DistinctRoundRobin;
  const Workload W = genWorkload(S);
  // Any 16 consecutive elements (one vector) carry 16 distinct indices.
  for (int64_t Base = 0; Base + 16 <= S.N; ++Base) {
    std::set<int32_t> Block(W.Idx.begin() + Base, W.Idx.begin() + Base + 16);
    EXPECT_EQ(Block.size(), 16u) << "window at " << Base;
  }
}

TEST(VerifyGen, EnumerationCoversPatternsAndTails) {
  std::set<int> IdxSeen, ValSeen;
  std::set<int64_t> Residues;
  bool SawEmpty = false, SawLarge = false;
  for (uint64_t CaseNo = 0; CaseNo < 500; ++CaseNo) {
    const CaseSpec S = specForCase(5, CaseNo);
    IdxSeen.insert(static_cast<int>(S.Idx));
    ValSeen.insert(static_cast<int>(S.Val));
    Residues.insert(S.N % 16);
    SawEmpty |= S.N == 0;
    SawLarge |= S.N > 16;
  }
  EXPECT_EQ(IdxSeen.size(), static_cast<std::size_t>(kNumIdxPatterns));
  EXPECT_EQ(ValSeen.size(), static_cast<std::size_t>(kNumValPatterns));
  // Every residue class modulo the vector width appears, so tail-masking
  // code sees each possible partial final block.
  EXPECT_EQ(Residues.size(), 16u);
  EXPECT_TRUE(SawEmpty);
  EXPECT_TRUE(SawLarge);
}

TEST(VerifyGen, IntPayloadBoundedAndDeterministic) {
  const Workload W = genWorkload(specForCase(11, 30));
  const AlignedVector<int32_t> A = intPayload(W);
  const AlignedVector<int32_t> B = intPayload(W);
  ASSERT_EQ(A.size(), W.Idx.size());
  for (std::size_t I = 0; I < A.size(); ++I) {
    EXPECT_EQ(A[I], B[I]);
    // Bounded so int32 sums cannot overflow for any generated stream.
    EXPECT_GE(A[I], -500);
    EXPECT_LE(A[I], 500);
  }
}

TEST(VerifyGen, ToEdgeListShapesValidGraph) {
  const Workload W = genWorkload(specForCase(12, 40));
  ASSERT_GT(W.Spec.N, 0);
  const graph::EdgeList G = toEdgeList(W, /*Weighted=*/true);
  EXPECT_EQ(G.numEdges(), W.Spec.N);
  ASSERT_TRUE(G.isWeighted());
  for (int64_t E = 0; E < G.numEdges(); ++E) {
    EXPECT_GE(G.Src[E], 0);
    EXPECT_LT(G.Src[E], G.NumNodes);
    EXPECT_GE(G.Dst[E], 0);
    EXPECT_LT(G.Dst[E], G.NumNodes);
    EXPECT_GT(G.Weight[E], 0.0f);
    EXPECT_TRUE(std::isfinite(G.Weight[E]));
  }
}

TEST(VerifyGen, CorpusRoundTripIsExact) {
  // Denormals and signed zeros are the reason the format uses hexfloat:
  // printf %.6g would destroy them.
  for (ValPattern VP : {ValPattern::Denormal, ValPattern::SignedZeroOnes,
                        ValPattern::HugeMagnitude}) {
    CaseSpec S;
    S.Seed = 13;
    S.N = 47;
    S.Universe = 17;
    S.Idx = IdxPattern::Zipf;
    S.Val = VP;
    const Workload W = genWorkload(S);
    const std::string Path = tempPath("cfv_gen_roundtrip.snap");
    ASSERT_TRUE(writeCorpus(Path, W).ok());
    const Expected<Workload> R = readCorpus(Path);
    ASSERT_TRUE(R.ok()) << R.status().toString();
    ASSERT_EQ(R->Idx.size(), W.Idx.size());
    for (std::size_t I = 0; I < W.Idx.size(); ++I) {
      EXPECT_EQ(R->Idx[I], W.Idx[I]);
      // Bit-exact, including -0.0 vs +0.0 and subnormals.
      EXPECT_EQ(std::signbit(R->Val[I]), std::signbit(W.Val[I]));
      EXPECT_EQ(R->Val[I], W.Val[I]);
    }
    EXPECT_EQ(R->Spec.Universe, W.Spec.Universe);
    EXPECT_EQ(R->Spec.N, W.Spec.N);
    std::remove(Path.c_str());
  }
}

TEST(VerifyGen, ReadCorpusRejectsGarbage) {
  const std::string Path = tempPath("cfv_gen_garbage.snap");
  std::FILE *F = std::fopen(Path.c_str(), "w");
  ASSERT_NE(F, nullptr);
  std::fputs("this is not a corpus file\n", F);
  std::fclose(F);
  EXPECT_FALSE(readCorpus(Path).ok());
  EXPECT_FALSE(readCorpus(tempPath("cfv_gen_does_not_exist.snap")).ok());
  std::remove(Path.c_str());
}

TEST(VerifyGen, SpecToStringNamesEverything) {
  const CaseSpec S = specForCase(77, 13);
  const std::string T = S.toString();
  EXPECT_NE(T.find(idxPatternName(S.Idx)), std::string::npos);
  EXPECT_NE(T.find(valPatternName(S.Val)), std::string::npos);
}

} // namespace
