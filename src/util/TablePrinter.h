//===- util/TablePrinter.h - ASCII tables for bench output ------*- C++ -*-===//
//
// Part of the cfv project (see AlignedAlloc.h for the project banner).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small column-aligned table printer.  Every benchmark harness prints
/// one table per paper figure/table, with a row per (version, input) cell,
/// so that bench_output.txt can be compared side by side with the paper.
///
//===----------------------------------------------------------------------===//

#ifndef CFV_UTIL_TABLEPRINTER_H
#define CFV_UTIL_TABLEPRINTER_H

#include <cstdio>
#include <string>
#include <vector>

namespace cfv {

/// Collects rows of strings and prints them with columns padded to the
/// widest cell.  Cheap and allocation-heavy by design: this runs once per
/// experiment, never on a hot path.
class TablePrinter {
public:
  explicit TablePrinter(std::vector<std::string> Header);

  /// Appends one row; missing cells print as empty.
  void addRow(std::vector<std::string> Cells);

  /// Convenience for a horizontal separator row.
  void addSeparator();

  /// Writes the table to \p Out (defaults to stdout).
  void print(std::FILE *Out = stdout) const;

  /// Formats a double with \p Precision digits after the point.
  static std::string fmt(double Value, int Precision = 3);

  /// Formats an integer count.
  static std::string fmt(long long Value);

private:
  std::vector<std::vector<std::string>> Rows;
  std::vector<bool> Separator;
};

} // namespace cfv

#endif // CFV_UTIL_TABLEPRINTER_H
