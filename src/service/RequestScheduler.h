//===- service/RequestScheduler.h - Bounded fair work queue -----*- C++ -*-===//
//
// Part of the cfv project: reproduction of Jiang & Agrawal, CGO 2018.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The serving layer's admission-controlled work queue.  Requests enter
/// a bounded queue (submit() rejects with Unavailable when full -- the
/// caller turns that into a structured backpressure response instead of
/// an unbounded pileup); worker threads drain it with per-key fairness:
/// requests are FIFO within one fairness key (typically the application
/// name), and keys are served round-robin, so a burst of pagerank
/// requests cannot starve a single queued sssp.
///
/// Overload protection sits in front of the hard queue bound.  Two
/// watermarks shed load early with a structured Overloaded rejection and
/// a retry_after_ms hint, so clients back off while the queue still has
/// headroom instead of slamming into the full-queue wall:
///  - queue depth: admission stops at ShedQueuePct% of QueueDepth
///    (100 = disabled, the default);
///  - observed latency: when the EWMA of completed-task latency exceeds
///    ShedLatencySeconds and a backlog exists, new work is shed
///    (0 = disabled, the default).
///
/// Deadlines are cooperative.  A task whose deadline passes while still
/// queued is not dropped: it runs with TaskInfo::DeadlineExpired set so
/// it can emit a structured deadline_exceeded response -- every accepted
/// request produces exactly one response.  In-run cancellation is the
/// app's job via core::RunOptions::DeadlineSteadySeconds / CancelFlag.
///
/// The watchdog (WatchdogSeconds > 0) closes the remaining gap: a task
/// that ignores its deadline and occupies a worker past the budget is
/// detected and its OnStall callback fired, letting the owner complete
/// the request with a structured error (and raise the task's cancel
/// flag) while the worker is still busy.  The worker itself is never
/// killed -- cancellation stays cooperative -- but the caller stops
/// waiting on a wedged request.
///
/// drain() is a quiesce barrier: while it waits, new submissions are
/// refused with ShuttingDown, so "drained" means drained -- a task
/// racing with drain is either admitted before it (and waited for) or
/// rejected with a structured reply, never silently lost.
///
/// The scheduler owns plain worker threads, not the parallel engine:
/// each task runs cfv::run, which dispatches onto the per-run
/// ParallelEngine pool internally.  One scheduler worker (the default)
/// serializes kernels -- the right choice when each kernel already uses
/// every core.
///
//===----------------------------------------------------------------------===//

#ifndef CFV_SERVICE_REQUEST_SCHEDULER_H
#define CFV_SERVICE_REQUEST_SCHEDULER_H

#include "util/Env.h"
#include "util/Status.h"

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace cfv {
namespace service {

/// What the scheduler tells a task when it finally runs.
struct TaskInfo {
  /// Wall seconds the task sat in the queue.
  double QueueSeconds = 0.0;
  /// True when the task's timeout elapsed before it was dequeued; the
  /// task should answer deadline_exceeded without doing the work.
  bool DeadlineExpired = false;
};

class RequestScheduler {
public:
  using Task = std::function<void(const TaskInfo &)>;

  struct Config {
    /// Maximum queued (admitted, not yet running) tasks.
    int QueueDepth = 64;
    /// Worker threads draining the queue.
    int Workers = 1;
    /// Shed watermark as a percentage of QueueDepth; admissions stop
    /// with Overloaded once the queue reaches this fill.  100 disables
    /// (only the hard full-queue Unavailable remains).
    int ShedQueuePct = static_cast<int>(
        env::intVar("CFV_SHED_QUEUE_PCT", 100, 1, 100));
    /// Latency watermark: shed when the EWMA of completed-task seconds
    /// exceeds this and a backlog exists.  0 disables.
    double ShedLatencySeconds =
        env::floatVar("CFV_SHED_LATENCY_MS", 0.0, 0.0, 6e5) / 1000.0;
    /// Watchdog budget: a task running longer than this is declared
    /// stalled and its OnStall callback fires.  0 disables.
    double WatchdogSeconds =
        env::floatVar("CFV_WATCHDOG_MS", 0.0, 0.0, 6e5) / 1000.0;
  };

  struct Stats {
    int64_t Submitted = 0;
    int64_t Rejected = 0;
    int64_t Completed = 0;
    /// Tasks whose deadline expired while queued.
    int64_t Expired = 0;
    /// Tasks shed by the overload watermarks (not counted in Rejected).
    int64_t Shed = 0;
    /// Stalled-task detections by the watchdog.
    int64_t WatchdogTrips = 0;
    /// Currently queued (not yet running).
    int64_t Queued = 0;
  };

  /// Optional per-submission extras; the plain submit() overload passes
  /// none of them.
  struct SubmitExtras {
    /// Invoked (once, off-lock, from the watchdog thread) when this task
    /// has occupied a worker past the watchdog budget.  The callback
    /// typically completes the caller-visible request with a structured
    /// error and raises the task's cancel flag.
    std::function<void()> OnStall;
    /// Out-parameter: on an Overloaded rejection, receives the
    /// retry_after_ms backoff hint.  Untouched otherwise.
    int64_t *RetryAfterMs = nullptr;
  };

  explicit RequestScheduler(Config C);
  ~RequestScheduler();

  /// Admits \p T under fairness key \p Key.  \p TimeoutSeconds > 0 sets
  /// an in-queue deadline (measured from now).  The task was NOT
  /// admitted when the result is:
  ///  - Unavailable: queue full (hard bound);
  ///  - Overloaded: shed by a watermark (Extras.RetryAfterMs hints the
  ///    backoff);
  ///  - ShuttingDown: draining or destroyed.
  Status submit(const std::string &Key, double TimeoutSeconds, Task T);
  Status submit(const std::string &Key, double TimeoutSeconds, Task T,
                const SubmitExtras &Extras);

  /// Blocks until every admitted task has completed.  While waiting, new
  /// submissions are refused with ShuttingDown; admission reopens when
  /// the last concurrent drain() returns.
  void drain();

  /// Whether a submit() issued right now would be refused by the
  /// overload watermarks or the hard queue bound, without mutating any
  /// counter.  The network front-end uses this to shed a request before
  /// spending parse work on its bytes; \p RetryAfterMs (may be null)
  /// receives the same backoff hint an Overloaded rejection carries.
  bool wouldShed(int64_t *RetryAfterMs) const;

  Stats stats() const;

  RequestScheduler(const RequestScheduler &) = delete;
  RequestScheduler &operator=(const RequestScheduler &) = delete;

private:
  struct Pending {
    Task Run;
    std::function<void()> OnStall;
    double EnqueuedAt = 0.0; ///< steady seconds
    double Deadline = 0.0;   ///< steady seconds; 0 = none
  };

  /// One scheduler worker's watchdog-visible state (all under Mu).
  struct WorkerSlot {
    bool Active = false;   ///< a task is running on this worker
    bool Tripped = false;  ///< watchdog already fired for this task
    double StartedAt = 0.0;
    std::function<void()> OnStall;
  };

  void workerLoop(int Slot);
  void watchdogLoop();
  /// Caller holds Mu.  Pops the next task round-robin across keys; false
  /// when the queue is empty.
  bool popLocked(Pending &Out);
  /// Caller holds Mu.  The watermark decision for a submission arriving
  /// now; on true, \p RetryAfterMs (may be null) gets the backoff hint.
  bool shedDecisionLocked(int64_t *RetryAfterMs) const;

  const Config Cfg;

  mutable std::mutex Mu;
  std::condition_variable CvWork;  ///< work available / shutting down
  std::condition_variable CvIdle;  ///< queue drained and workers idle
  std::condition_variable CvStop;  ///< watchdog shutdown (its own cv so
                                   ///< submit's notify_one wakes a worker)
  std::map<std::string, std::deque<Pending>> Queues;
  std::vector<std::string> KeyOrder; ///< round-robin ring of active keys
  size_t Cursor = 0;
  int64_t QueuedCount = 0;
  int Running = 0;
  bool Stop = false;
  int DrainWaiters = 0; ///< > 0 while drain() blocks; gates admission
  double EwmaTaskSeconds = 0.0; ///< observed-latency watermark input
  Stats Counters;
  std::vector<WorkerSlot> Slots;

  std::vector<std::thread> Workers;
  std::thread Watchdog;
};

} // namespace service
} // namespace cfv

#endif // CFV_SERVICE_REQUEST_SCHEDULER_H
