//===- tests/simd_conflict_test.cpp - vpconflictd semantics --------------===//
//
// Part of the cfv project: reproduction of Jiang & Agrawal, CGO 2018.
//
//===----------------------------------------------------------------------===//

#include "TestHelpers.h"

#include "simd/Conflict.h"

using namespace cfv;
using namespace cfv::simd;
using namespace cfv::test;

namespace {

/// Independent reference for the conflict bits of lane I.
int32_t refConflictBits(const Lane16i &Idx, int I) {
  int32_t Bits = 0;
  for (int J = 0; J < I; ++J)
    if (Idx[J] == Idx[I])
      Bits |= 1 << J;
  return Bits;
}

/// Independent reference for the conflict-free subset.
Mask16 refConflictFree(Mask16 Active, const Lane16i &Idx) {
  Mask16 R = 0;
  for (int I = 0; I < kMaxLanes; ++I) {
    if (!testLane(Active, I))
      continue;
    bool First = true;
    for (int J = 0; J < I; ++J)
      if (testLane(Active, J) && Idx[J] == Idx[I])
        First = false;
    if (First)
      R |= laneBit(I);
  }
  return R;
}

} // namespace

template <typename B> class ConflictTest : public ::testing::Test {};
TYPED_TEST_SUITE(ConflictTest, AllBackends, );

TYPED_TEST(ConflictTest, PaperFigure5Vector) {
  using B = TypeParam;
  // The index vector of Figures 5/6; its non-conflicting lanes are
  // 0, 1, 4, 8 (first occurrences of 0, 1, 2, 5).
  const Lane16i Idx = {0, 1, 1, 1, 2, 2, 2, 2, 5, 0, 1, 1, 1, 5, 5, 5};
  EXPECT_EQ(conflictFreeSubset<B>(kAllLanes, loadIdx<B>(Idx)), 0x0113);
}

TYPED_TEST(ConflictTest, AllDistinctIsFullyConflictFree) {
  using B = TypeParam;
  Lane16i Idx;
  for (int I = 0; I < kMaxLanes; ++I)
    Idx[I] = 100 - I;
  EXPECT_EQ(conflictFreeSubset<B>(kAllLanes, loadIdx<B>(Idx)), kAllLanes);
}

TYPED_TEST(ConflictTest, AllIdenticalLeavesOnlyLaneZero) {
  using B = TypeParam;
  const auto Idx = VecI32<B>::broadcast(3);
  EXPECT_EQ(conflictFreeSubset<B>(kAllLanes, Idx), 0x0001);
}

TYPED_TEST(ConflictTest, InactiveLanesDoNotShadow) {
  using B = TypeParam;
  // Lane 0 and lane 5 share index 9, but lane 0 is inactive: lane 5 is
  // the first *active* occurrence and must be reported conflict free.
  Lane16i Idx{};
  Idx[0] = 9;
  Idx[5] = 9;
  for (int I = 1; I < kMaxLanes; ++I)
    if (I != 5)
      Idx[I] = I + 100;
  const Mask16 Active = static_cast<Mask16>(kAllLanes & ~laneBit(0));
  const Mask16 R = conflictFreeSubset<B>(Active, loadIdx<B>(Idx));
  EXPECT_TRUE(testLane(R, 5));
  EXPECT_FALSE(testLane(R, 0));
}

TYPED_TEST(ConflictTest, EmptyActiveMaskGivesEmptySubset) {
  using B = TypeParam;
  EXPECT_EQ(conflictFreeSubset<B>(0, VecI32<B>::broadcast(1)), 0);
}

TYPED_TEST(ConflictTest, ConflictBitsMatchReference) {
  using B = TypeParam;
  Xoshiro256 Rng(0x51D);
  for (const uint32_t Universe : {2u, 4u, 16u, 1000u}) {
    for (int Trial = 0; Trial < 100; ++Trial) {
      const Lane16i Idx = randomIndices(Rng, Universe);
      const Lane16i Bits = toArray(conflictBits(loadIdx<B>(Idx)));
      for (int I = 0; I < kMaxLanes; ++I)
        ASSERT_EQ(Bits[I], refConflictBits(Idx, I))
            << "universe " << Universe << " trial " << Trial << " lane "
            << I;
    }
  }
}

TYPED_TEST(ConflictTest, SubsetMatchesReferenceUnderRandomMasks) {
  using B = TypeParam;
  Xoshiro256 Rng(0xFACE);
  for (const uint32_t Universe : {2u, 3u, 8u, 64u}) {
    for (int Trial = 0; Trial < 200; ++Trial) {
      const Lane16i Idx = randomIndices(Rng, Universe);
      const Mask16 Active = randomMask(Rng);
      const Mask16 Got = conflictFreeSubset<B>(Active, loadIdx<B>(Idx));
      ASSERT_EQ(Got, refConflictFree(Active, Idx))
          << "universe " << Universe << " trial " << Trial;
      // Structural properties: subset of active; indices pairwise
      // distinct within the subset; every active index represented.
      ASSERT_EQ(Got & ~Active, 0);
      for (int I = 0; I < kMaxLanes; ++I) {
        for (int J = I + 1; J < kMaxLanes; ++J) {
          if (testLane(Got, I) && testLane(Got, J)) {
            ASSERT_NE(Idx[I], Idx[J]);
          }
        }
      }
      for (int I = 0; I < kMaxLanes; ++I) {
        if (!testLane(Active, I))
          continue;
        bool Covered = false;
        for (int J = 0; J < kMaxLanes; ++J)
          if (testLane(Got, J) && Idx[J] == Idx[I])
            Covered = true;
        ASSERT_TRUE(Covered) << "index of lane " << I << " unrepresented";
      }
    }
  }
}

TYPED_TEST(ConflictTest, SubsetIsIdempotent) {
  using B = TypeParam;
  Xoshiro256 Rng(0xBEE);
  for (int Trial = 0; Trial < 100; ++Trial) {
    const Lane16i Idx = randomIndices(Rng, 6);
    const auto V = loadIdx<B>(Idx);
    const Mask16 Once = conflictFreeSubset<B>(kAllLanes, V);
    EXPECT_EQ(conflictFreeSubset<B>(Once, V), Once)
        << "a conflict-free set must be a fixpoint";
  }
}
