//===- core/Adaptive.h - Adaptive Algorithm 1/2 selection -------*- C++ -*-===//
//
// Part of the cfv project: reproduction of Jiang & Agrawal, CGO 2018.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The framework policy of §3.4: "we decide the underlying implementation
/// of in-vector reduction between Algorithm 1 and 2 based on the average
/// number of distinct conflicting lanes in the first few iterations of an
/// application ... we use Algorithm 1 as default implementation and simply
/// change the invocation to Algorithm 2 when D1 is greater than 1."
///
/// AdaptiveReducer wraps the two algorithms behind one reduce() call.  It
/// runs Algorithm 1 for a sampling window, tracking the mean D1; once the
/// window closes it commits to Algorithm 2 if mean D1 > 1.  When
/// Algorithm 2 is active, subset-2 lanes are accumulated into the
/// auxiliary array handed to the constructor, and the caller folds the
/// auxiliary array back with mergeAux() when the kernel finishes.
///
//===----------------------------------------------------------------------===//

#ifndef CFV_CORE_ADAPTIVE_H
#define CFV_CORE_ADAPTIVE_H

#include "core/CostModel.h"
#include "core/InvecReduce.h"
#include "obs/Kernel.h"
#include "util/Stats.h"

#include <cassert>
#include <cstddef>

namespace cfv {
namespace core {

/// Adaptive single-payload in-vector reducer.
///
/// \tparam Op  associative operator (simd::OpAdd, OpMin, ...)
/// \tparam T   element type (float or int32_t)
/// \tparam B   SIMD backend
template <typename Op, typename T, typename B> class AdaptiveReducer {
public:
  using Vec = simd::VecForT<T, B>;
  using IdxVec = simd::VecI32<B>;

  /// \p Aux is the auxiliary reduction array used if the policy selects
  /// Algorithm 2; it must alias-match the primary reduction array's
  /// indexing and be pre-filled with the operator identity
  /// (fillIdentity).  \p SampleWindow is the number of invocations
  /// measured before committing.
  AdaptiveReducer(T *Aux, std::size_t AuxSize, unsigned SampleWindow = 64)
      : Aux(Aux), AuxSize(AuxSize), Window(SampleWindow) {
    assert(Aux != nullptr && "adaptive reducer needs an auxiliary array");
  }

  /// In-vector reduction with the currently selected algorithm.  Returns
  /// the conflict-free mask the caller scatters to the *primary* array;
  /// subset-2 lanes (Algorithm 2 only) are accumulated into the auxiliary
  /// array internally.
  Mask16 reduce(Mask16 Active, IdxVec Idx, Vec &Data) {
    if (UseAlg2) {
      Invec2Result R = invecReduce2<Op>(Active, Idx, Data);
      accumulateScatter<Op>(R.Ret2, Idx, Data, Aux);
      AuxDirty |= R.Ret2 != 0;
#if CFV_OBS
      D2Hist.add(static_cast<unsigned>(R.Distinct));
#endif
      return R.Ret1;
    }
    InvecResult R = invecReduce<Op>(Active, Idx, Data);
#if CFV_OBS
    // Whole-run D1 distribution, independent of the sampling window: a
    // single increment on an L1-resident array, cheap enough for the
    // per-pass hot path.
    D1Hist.add(static_cast<unsigned>(R.Distinct));
#endif
    if (Sampled < Window) {
      MeanD1.add(R.Distinct);
      if (++Sampled == Window) {
        UseAlg2 = preferAlg2(MeanD1.mean());
        // The §3.4 decision as an observable event: count which
        // algorithm won and the D1 value that decided it.
        obs::recordAdaptiveDecision(UseAlg2, MeanD1.mean());
      }
    }
    return R.Ret;
  }

  /// True when the auxiliary array holds unmerged partial results.
  bool needsMerge() const { return AuxDirty; }

  /// Folds the auxiliary array into \p Main (which must have at least
  /// AuxSize entries) and resets it, finishing the Algorithm 2 protocol.
  void mergeInto(T *Main) {
    if (!AuxDirty)
      return;
    mergeAux<Op>(Main, Aux, AuxSize);
    AuxDirty = false;
  }

  /// Whether the policy has committed to Algorithm 2.
  bool usingAlg2() const { return UseAlg2; }

  /// Mean D1 observed during the sampling window so far.
  double meanD1() const { return MeanD1.mean(); }

  /// Distribution of distinct conflicting lanes per Algorithm 1 pass
  /// over the whole run (not just the sampling window); empty when
  /// observability is compiled out.
  const LaneHistogram &d1Histogram() const { return D1Hist; }

  /// Distribution of distinct lanes per Algorithm 2 pass (D2 telemetry);
  /// empty while Algorithm 1 is active or when observability is
  /// compiled out.
  const LaneHistogram &d2Histogram() const { return D2Hist; }

private:
  T *Aux;
  std::size_t AuxSize;
  unsigned Window;
  unsigned Sampled = 0;
  bool UseAlg2 = false;
  bool AuxDirty = false;
  RunningMean MeanD1;
  LaneHistogram D1Hist; // only written under CFV_OBS
  LaneHistogram D2Hist; // only written under CFV_OBS
};

} // namespace core
} // namespace cfv

#endif // CFV_CORE_ADAPTIVE_H
